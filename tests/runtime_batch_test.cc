/**
 * @file
 * Tests for the batch dimension of the lowering and executor: weight
 * bytes charged once per batched kernel, activation traffic and work
 * scaled by the batch, exact amortisation on the baseline flow, and
 * the RunRequest descriptor plumbing.
 */

#include <gtest/gtest.h>

#include "runtime/executor.hh"
#include "runtime/lowering.hh"

namespace {

using namespace mflstm;
using namespace mflstm::runtime;

const gpu::GpuConfig kCfg = gpu::GpuConfig::tegraX1();

NetworkShape
shape2x512()
{
    return NetworkShape::stacked(512, 512, 2, 10);
}

ExecutionPlan
drsPlan(std::size_t layers, double skip, PlanKind kind)
{
    ExecutionPlan plan;
    plan.kind = kind;
    plan.intra.assign(layers, LayerIntraPlan{skip});
    return plan;
}

TEST(BatchedLowering, BaselineWeightBytesChargedOnce)
{
    const Lowering lowering(kCfg);
    const ExecutionPlan plan;  // Baseline
    const gpu::KernelTrace one = lowering.lower(shape2x512(), plan, 1);
    const gpu::KernelTrace four = lowering.lower(shape2x512(), plan, 4);
    ASSERT_EQ(one.size(), four.size());

    for (std::size_t i = 0; i < one.size(); ++i) {
        const gpu::KernelDesc &a = one[i];
        const gpu::KernelDesc &b = four[i];
        // Weights stream once per kernel, whatever the batch.
        EXPECT_DOUBLE_EQ(b.dramWeightBytes, a.dramWeightBytes) << a.name;
        // Work and activation traffic scale with the batch.
        EXPECT_DOUBLE_EQ(b.flops, 4.0 * a.flops) << a.name;
        EXPECT_DOUBLE_EQ(b.dramReadBytes - b.dramWeightBytes,
                         4.0 * (a.dramReadBytes - a.dramWeightBytes))
            << a.name;
        EXPECT_DOUBLE_EQ(b.dramWriteBytes, 4.0 * a.dramWriteBytes)
            << a.name;
        EXPECT_EQ(b.ctas, 4u * a.ctas) << a.name;
        // Batched kernels are visibly tagged.
        EXPECT_NE(b.name.find(" x4"), std::string::npos) << b.name;
        EXPECT_EQ(a.name.find(" x4"), std::string::npos) << a.name;
    }
}

TEST(BatchedLowering, WeightShareStaysWithinReads)
{
    const Lowering lowering(kCfg);
    for (PlanKind kind :
         {PlanKind::Baseline, PlanKind::IntraCellSw,
          PlanKind::IntraCellHw}) {
        const ExecutionPlan plan = drsPlan(2, 0.4, kind);
        for (std::size_t b : {1u, 3u, 8u}) {
            for (const gpu::KernelDesc &k :
                 lowering.lower(shape2x512(), plan, b)) {
                EXPECT_GE(k.dramWeightBytes, 0.0) << k.name;
                EXPECT_LE(k.dramWeightBytes, k.dramReadBytes + 1e-9)
                    << k.name << " batch " << b;
            }
        }
    }
}

TEST(BatchedLowering, ZeroBatchRejected)
{
    const Lowering lowering(kCfg);
    EXPECT_THROW(lowering.lower(shape2x512(), ExecutionPlan{}, 0),
                 std::invalid_argument);

    const NetworkExecutor ex(kCfg);
    RunRequest req = RunRequest::network(shape2x512(), ExecutionPlan{});
    req.batch = 0;
    EXPECT_THROW(ex.run(req), std::invalid_argument);
}

TEST(BatchedExecutor, TraceAccumulatesWeightBytes)
{
    const NetworkExecutor ex(kCfg);
    const ExecutionPlan plan = drsPlan(2, 0.3, PlanKind::IntraCellHw);
    const RunReport rep =
        ex.run(RunRequest::network(shape2x512(), plan, 3));

    double expected = 0.0;
    for (const gpu::KernelDesc &k :
         ex.lowering().lower(shape2x512(), plan, 3))
        expected += k.dramWeightBytes;
    EXPECT_DOUBLE_EQ(rep.result.weightDramBytes, expected);
    EXPECT_GT(rep.result.weightDramBytes, 0.0);
    EXPECT_EQ(rep.batch, 3u);
}

TEST(BatchedExecutor, BaselineAmortisationIsExact)
{
    const NetworkExecutor ex(kCfg);
    const RunReport one =
        ex.run(RunRequest::network(shape2x512(), ExecutionPlan{}, 1));
    for (std::size_t b : {2u, 4u, 8u}) {
        const RunReport rep = ex.run(
            RunRequest::network(shape2x512(), ExecutionPlan{}, b));
        // Baseline weight traffic is batch-invariant, so per-sequence
        // bytes divide exactly.
        EXPECT_DOUBLE_EQ(rep.result.weightDramBytes,
                         one.result.weightDramBytes);
        EXPECT_DOUBLE_EQ(rep.weightDramBytesPerSequence(),
                         one.result.weightDramBytes /
                             static_cast<double>(b));
    }
}

TEST(BatchedExecutor, DrsOverlapKeepsPerSequenceMonotone)
{
    // With DRS, a weight row stays on the bus unless *every* sequence
    // in the batch skips it, so total weight traffic grows with the
    // batch — but per-sequence traffic must still fall.
    const NetworkExecutor ex(kCfg);
    const ExecutionPlan plan = drsPlan(2, 0.5, PlanKind::IntraCellHw);

    double prev_total = 0.0;
    double prev_per_seq = 0.0;
    for (std::size_t b = 1; b <= 8; ++b) {
        const RunReport rep =
            ex.run(RunRequest::network(shape2x512(), plan, b));
        const double total = rep.result.weightDramBytes;
        const double per_seq = rep.weightDramBytesPerSequence();
        if (b > 1) {
            EXPECT_GE(total, prev_total) << "batch " << b;
            EXPECT_LT(per_seq, prev_per_seq) << "batch " << b;
        }
        prev_total = total;
        prev_per_seq = per_seq;
    }
}

TEST(BatchedExecutor, BatchOneMatchesLegacyEntryPoints)
{
    const NetworkExecutor ex(kCfg);
    const ExecutionPlan plan = drsPlan(2, 0.4, PlanKind::IntraCellSw);

    const RunReport legacy = ex.run(shape2x512(), plan);
    const RunReport req =
        ex.run(RunRequest::network(shape2x512(), plan, 1));
    EXPECT_DOUBLE_EQ(legacy.result.timeUs, req.result.timeUs);
    EXPECT_DOUBLE_EQ(legacy.result.weightDramBytes,
                     req.result.weightDramBytes);

    const LstmLayerShape layer{512, 512, 10};
    const RunReport legacy_layer = ex.runLayer(layer, plan, 1);
    const RunReport req_layer =
        ex.run(RunRequest::layer(layer, plan, 1));
    EXPECT_DOUBLE_EQ(legacy_layer.result.timeUs,
                     req_layer.result.timeUs);
}

} // namespace
