/**
 * @file
 * Tests for the SM timing model (roofline + stall attribution), the
 * energy model, and the Simulator facade.
 */

#include <gtest/gtest.h>

#include "gpu/energy.hh"
#include "gpu/simulator.hh"
#include "gpu/sm.hh"

namespace {

using namespace mflstm::gpu;

KernelDesc
memoryBoundKernel()
{
    // Sgemv(U, h) at H = 512 on the TX1: 4.19 MB of weights, 2.1 MFLOP.
    KernelDesc k;
    k.name = "sgemv";
    k.klass = KernelClass::Sgemv;
    k.flops = 2.0 * 4 * 512 * 512;
    k.dramReadBytes = 4.0 * 512 * 512 * 4;
    k.l2AccessBytes = k.dramReadBytes;
    k.sharedBytes = 4.0 * 512 * 512 * 4;
    k.ctas = 16;
    k.threadsPerCta = 128;
    k.syncsPerCta = 2;
    return k;
}

KernelDesc
computeBoundKernel()
{
    KernelDesc k;
    k.name = "gemm";
    k.klass = KernelClass::Sgemm;
    k.flops = 1.0e9;
    k.dramReadBytes = 1.0e6;
    k.l2AccessBytes = 2.0e6;
    k.sharedBytes = 1.0e6;
    k.ctas = 64;
    k.threadsPerCta = 128;
    return k;
}

TEST(SmTiming, MemoryBoundKernelIsDramLimited)
{
    const GpuConfig cfg = GpuConfig::tegraX1();
    const KernelTiming t = timeKernel(cfg, memoryBoundKernel());

    const double dram_cycles = t.dramBytes / cfg.dramBytesPerCycle();
    EXPECT_GT(t.cycles, dram_cycles);            // plus sync/latency
    EXPECT_LT(t.cycles, dram_cycles * 1.05);     // but barely
    EXPECT_GT(t.dramUtilization, 0.9);
    EXPECT_LT(t.sharedUtilization, 0.3);         // Fig. 6 shape
}

TEST(SmTiming, MemoryBoundStallsAreOffChip)
{
    const GpuConfig cfg = GpuConfig::tegraX1();
    const KernelTiming t = timeKernel(cfg, memoryBoundKernel());
    const StallBreakdown &s = t.stalls;
    EXPECT_GT(s.offChipMemory / s.total(), 0.6);  // Fig. 4 shape
    EXPECT_GT(s.offChipMemory, s.onChipBandwidth);
    EXPECT_GT(s.offChipMemory, s.synchronization);
}

TEST(SmTiming, ComputeBoundKernelTracksFlops)
{
    const GpuConfig cfg = GpuConfig::tegraX1();
    const KernelTiming t = timeKernel(cfg, computeBoundKernel());
    const double compute_cycles = 1.0e9 / cfg.flopsPerCycle();
    EXPECT_NEAR(t.computeCycles, compute_cycles, 1.0);
    EXPECT_LT(t.cycles, compute_cycles * 1.1);
    EXPECT_FALSE(t.reconfigured);
}

TEST(SmTiming, SharedOvercommitTriggersReconfiguration)
{
    const GpuConfig cfg = GpuConfig::tegraX1();
    KernelDesc k = computeBoundKernel();
    k.sharedBytes = 1.0e9;  // on-chip demand dominates everything
    const KernelTiming t = timeKernel(cfg, k);
    EXPECT_TRUE(t.reconfigured);

    const double shared_cycles = 1.0e9 / cfg.sharedBytesPerCycle();
    EXPECT_GT(t.cycles, shared_cycles * cfg.reconfigPenalty * 0.99);
}

TEST(SmTiming, DivergenceInflatesComputeUnlessCrmApplied)
{
    const GpuConfig cfg = GpuConfig::tegraX1();
    KernelDesc k = computeBoundKernel();
    k.divergenceFactor = 2.0;

    const KernelTiming divergent = timeKernel(cfg, k, false);
    const KernelTiming compacted = timeKernel(cfg, k, true);
    EXPECT_NEAR(divergent.computeCycles / compacted.computeCycles, 2.0,
                1e-9);
    EXPECT_GT(divergent.cycles, compacted.cycles);
}

TEST(SmTiming, CoalescingInflatesDramTraffic)
{
    const GpuConfig cfg = GpuConfig::tegraX1();
    KernelDesc k = memoryBoundKernel();
    k.coalescingFactor = 1.5;
    const KernelTiming t = timeKernel(cfg, k);
    EXPECT_NEAR(t.dramBytes, k.dramReadBytes * 1.5, 1.0);
}

TEST(SmTiming, LaunchOverheadAlwaysCharged)
{
    const GpuConfig cfg = GpuConfig::tegraX1();
    KernelDesc empty;
    empty.ctas = 1;
    empty.threadsPerCta = 32;
    const KernelTiming t = timeKernel(cfg, empty);
    EXPECT_GE(t.timeUs, cfg.kernelLaunchUs);
}

TEST(SmTiming, StallsSumToNonComputeCycles)
{
    const GpuConfig cfg = GpuConfig::tegraX1();
    for (const KernelDesc &k :
         {memoryBoundKernel(), computeBoundKernel()}) {
        const KernelTiming t = timeKernel(cfg, k);
        EXPECT_NEAR(t.stalls.total(), t.cycles - t.computeCycles,
                    t.cycles * 1e-9);
    }
}

TEST(Energy, ComponentsAddUp)
{
    const GpuConfig cfg = GpuConfig::tegraX1();
    ActivitySummary a;
    a.timeSeconds = 0.01;
    a.flops = 1e9;
    a.dramBytes = 1e8;
    a.l2Bytes = 2e8;
    a.sharedBytes = 5e8;
    a.issueBusyFraction = 0.1;
    a.crmPresent = true;
    a.crmDynamicJ = 1e-6;

    const EnergyReport e = computeEnergy(cfg, a);
    EXPECT_DOUBLE_EQ(e.totalJ(), e.staticJ + e.gpuDynamicJ + e.dramJ +
                                     e.onChipJ + e.crmJ);
    EXPECT_DOUBLE_EQ(e.staticJ,
                     (cfg.socStaticW + cfg.gpuIdleW) * 0.01);
    EXPECT_GT(e.dramJ, 0.0);
    EXPECT_GT(e.crmJ, 1e-6);  // dynamic + static share
}

TEST(Energy, NoCrmNoStaticAdder)
{
    const GpuConfig cfg = GpuConfig::tegraX1();
    ActivitySummary a;
    a.timeSeconds = 1.0;
    a.crmPresent = false;
    const EnergyReport e = computeEnergy(cfg, a);
    EXPECT_DOUBLE_EQ(e.crmJ, 0.0);
}

TEST(Simulator, TraceAggregatesKernels)
{
    Simulator sim(GpuConfig::tegraX1());
    KernelTrace trace = {memoryBoundKernel(), computeBoundKernel(),
                         memoryBoundKernel()};
    const TraceResult res = sim.runTrace(trace);

    EXPECT_EQ(res.kernelCount, 3u);
    EXPECT_EQ(res.kernelsPerClass.at(KernelClass::Sgemv), 2u);
    EXPECT_EQ(res.kernelsPerClass.at(KernelClass::Sgemm), 1u);
    // The 1 GFLOP compute-bound Sgemm dominates two ~170 us Sgemvs.
    EXPECT_GT(res.classShare(KernelClass::Sgemm),
              res.classShare(KernelClass::Sgemv));
    EXPECT_NEAR(res.classShare(KernelClass::Sgemv) +
                    res.classShare(KernelClass::Sgemm),
                1.0, 1e-9);
    EXPECT_GT(res.energy.totalJ(), 0.0);
}

TEST(Simulator, CrmChargedOnRowSkipKernels)
{
    Simulator with_crm(GpuConfig::tegraX1(), true);
    Simulator without_crm(GpuConfig::tegraX1(), false);

    KernelDesc k = memoryBoundKernel();
    k.hasRowSkipArg = true;
    k.disabledThreads = 1024;
    k.divergenceFactor = 1.6;

    const KernelTiming hw = with_crm.runKernel(k);
    const KernelTiming sw = without_crm.runKernel(k);
    EXPECT_GT(hw.crmCycles, 0.0);
    EXPECT_DOUBLE_EQ(sw.crmCycles, 0.0);
    // CRM removes the divergence penalty; for this memory-bound kernel
    // the effect on total time is small but compute cycles shrink.
    EXPECT_LT(hw.computeCycles, sw.computeCycles);
}

TEST(Simulator, EmptyTraceIsEmptyResult)
{
    Simulator sim(GpuConfig::tegraX1());
    const TraceResult res = sim.runTrace({});
    EXPECT_EQ(res.kernelCount, 0u);
    EXPECT_DOUBLE_EQ(res.timeUs, 0.0);
    EXPECT_DOUBLE_EQ(res.classShare(KernelClass::Sgemv), 0.0);
}

TEST(GpuConfig, DerivedQuantities)
{
    const GpuConfig cfg = GpuConfig::tegraX1();
    EXPECT_DOUBLE_EQ(cfg.flopsPerCycle(), 512.0);
    EXPECT_NEAR(cfg.dramBytesPerCycle(), 25.6 / 0.998, 1e-9);
    EXPECT_DOUBLE_EQ(cfg.sharedBytesPerCycle(), 256.0);
    EXPECT_NEAR(cfg.cyclesPerUs(), 998.0, 1e-9);
}

} // namespace
