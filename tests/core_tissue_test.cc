/**
 * @file
 * Tests for tissue formation, tissue alignment (Section IV-C) and the
 * MTS finder, including property-based sweeps over random sub-layer
 * multisets: alignment must always cover every cell, never exceed the
 * MTS, and never schedule two cells of one sub-layer in one tissue.
 */

#include <numeric>

#include <gtest/gtest.h>

#include "core/tissue.hh"
#include "tensor/rng.hh"

namespace {

using namespace mflstm;
using namespace mflstm::core;

TEST(TissueFormation, PaperFigure8Example)
{
    // Fig. 8: sub-layers of lengths {3, 1, 3, 2} (cells 0-2 | 3 | 4-6 |
    // 7-8): tissue 0 takes one cell from each -> 4; tissue 1 from the
    // three long ones -> 3; tissue 2 from the two of length 3 -> 2.
    EXPECT_EQ(formTissues({3, 1, 3, 2}),
              (std::vector<std::size_t>{4, 3, 2}));
}

TEST(TissueFormation, SingleSubLayerIsAllOnes)
{
    EXPECT_EQ(formTissues({4}), (std::vector<std::size_t>{1, 1, 1, 1}));
}

TEST(TissueFormation, EmptyInput)
{
    EXPECT_TRUE(formTissues({}).empty());
}

TEST(TissueAlignment, RespectsMtsOnFigure8Example)
{
    // With MTS = 3 the fat first tissue (4 cells) must shed a cell.
    const auto tissues = alignTissues({3, 1, 3, 2}, 3);
    const std::size_t total =
        std::accumulate(tissues.begin(), tissues.end(), std::size_t{0});
    EXPECT_EQ(total, 9u);
    for (std::size_t t : tissues)
        EXPECT_LE(t, 3u);
    // N >= max(longest sub-layer, ceil(9/3)) = 3; the schedule must use
    // exactly that minimum here.
    EXPECT_EQ(tissues.size(), 3u);
}

TEST(TissueAlignment, MinimalTissueCountEq7)
{
    // Perfectly divisible case: Eq. 7's N_min = ceil(n / MTS).
    const auto tissues = alignTissues({5, 5, 5, 5}, 4);
    EXPECT_EQ(tissues.size(), 5u);  // max length 5 dominates ceil(20/4)=5
    const std::size_t total =
        std::accumulate(tissues.begin(), tissues.end(), std::size_t{0});
    EXPECT_EQ(total, 20u);
}

TEST(TissueAlignment, LongSubLayerDictatesCount)
{
    // One sub-layer of 10 forces >= 10 tissues regardless of MTS.
    const auto tissues = alignTissues({10, 2}, 6);
    EXPECT_EQ(tissues.size(), 10u);
}

TEST(TissueAlignment, MtsOneSerialises)
{
    const auto tissues = alignTissues({3, 2}, 1);
    EXPECT_EQ(tissues.size(), 5u);
    for (std::size_t t : tissues)
        EXPECT_EQ(t, 1u);
}

TEST(TissueAlignment, RejectsZeroMts)
{
    EXPECT_THROW(alignTissues({3}, 0), std::invalid_argument);
}

/** Property sweep: random sub-layer multisets, all MTS values. */
class TissueAlignmentProperty
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(TissueAlignmentProperty, InvariantsHold)
{
    tensor::Rng rng(GetParam());
    const auto n_subs =
        static_cast<std::size_t>(rng.integer(1, 12));
    std::vector<std::size_t> lens;
    std::size_t total = 0;
    std::size_t longest = 0;
    for (std::size_t i = 0; i < n_subs; ++i) {
        const auto len = static_cast<std::size_t>(rng.integer(1, 40));
        lens.push_back(len);
        total += len;
        longest = std::max(longest, len);
    }

    for (std::size_t mts = 1; mts <= 8; ++mts) {
        const auto tissues = alignTissues(lens, mts);

        // (1) covers every cell
        EXPECT_EQ(std::accumulate(tissues.begin(), tissues.end(),
                                  std::size_t{0}),
                  total);
        // (2) never exceeds MTS
        for (std::size_t t : tissues)
            EXPECT_LE(t, mts);
        // (3) a sub-layer contributes <= 1 cell per tissue, so the
        //     tissue count is at least the longest sub-layer, and the
        //     schedule meets the Eq. 7 lower bound exactly
        const std::size_t n_min = std::max(
            longest, (total + mts - 1) / mts);
        EXPECT_EQ(tissues.size(), n_min);
    }
}

INSTANTIATE_TEST_SUITE_P(RandomSubLayers, TissueAlignmentProperty,
                         ::testing::Range<std::uint64_t>(1, 25));

TEST(FindMts, PicksThePerformancePeak)
{
    runtime::NetworkExecutor ex(gpu::GpuConfig::tegraX1());
    const runtime::LstmLayerShape layer{512, 512, 80};
    const MtsResult res = findMts(ex, layer, 10);

    // Fig. 9 on the TX1 at H = 512: the peak sits at 5.
    EXPECT_EQ(res.mts, 5u);
    ASSERT_EQ(res.timesUs.size(), 10u);
    // Performance first improves...
    EXPECT_LT(res.timesUs[4], res.timesUs[0]);
    // ...then droops past the MTS.
    EXPECT_GT(res.timesUs[5], res.timesUs[4]);
    // Shared-memory utilisation climbs toward saturation at the MTS.
    EXPECT_GT(res.sharedUtilization[4], res.sharedUtilization[0]);
    EXPECT_GT(res.sharedUtilization[4], 0.75);
}

TEST(FindMts, SmallHiddenSizeGetsLargerMts)
{
    runtime::NetworkExecutor ex(gpu::GpuConfig::tegraX1());
    const MtsResult small = findMts(ex, {256, 256, 86}, 10);
    const MtsResult large = findMts(ex, {650, 650, 200}, 10);
    EXPECT_EQ(small.mts, 6u);  // BABI/MR in Fig. 9
    EXPECT_EQ(large.mts, 5u);  // PTB
}

TEST(FindMts, DrsReliefExtendsMts)
{
    // The combined scheme's row skipping cuts the tissue GEMM's on-chip
    // traffic, pushing the bandwidth crossover outward.
    runtime::NetworkExecutor ex(gpu::GpuConfig::tegraX1());
    const MtsResult plain = findMts(ex, {512, 512, 80}, 12, 0.0);
    const MtsResult skipped = findMts(ex, {512, 512, 80}, 12, 0.5);
    EXPECT_GT(skipped.mts, plain.mts);
}

TEST(FindMts, RejectsZeroMaxK)
{
    runtime::NetworkExecutor ex(gpu::GpuConfig::tegraX1());
    EXPECT_THROW(findMts(ex, {512, 512, 80}, 0),
                 std::invalid_argument);
}

} // namespace
