/**
 * @file
 * End-to-end fleet tests (DESIGN.md §16) with real engines: replica 0
 * seeds the shared artifact store and siblings warm-boot from it with
 * bit-identical outputs; a crash fails queued work over to a survivor
 * with zero lost requests; a corrupt warm-state restart quarantines
 * the artifact and cold-rebuilds; a Degraded replica gets hedged;
 * the governor ladder redistributes over survivors one rung at a
 * time; and a full ChaosPlan::standard run completes every submitted
 * request.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "fleet/fleet.hh"
#include "tensor/rng.hh"

namespace {

using namespace mflstm;

nn::ModelConfig
clsConfig()
{
    nn::ModelConfig cfg;
    cfg.task = nn::TaskKind::Classification;
    cfg.vocab = 20;
    cfg.embedSize = 8;
    cfg.hiddenSize = 12;
    cfg.numLayers = 2;
    cfg.numClasses = 2;
    return cfg;
}

std::vector<std::vector<std::int32_t>>
seqs(std::size_t n, std::size_t len, std::uint64_t seed)
{
    tensor::Rng rng(seed);
    std::vector<std::vector<std::int32_t>> out(n);
    for (auto &s : out)
        for (std::size_t t = 0; t < len; ++t)
            s.push_back(static_cast<std::int32_t>(rng.integer(0, 19)));
    return out;
}

class FleetTest : public ::testing::Test
{
  protected:
    FleetTest()
        : model(clsConfig(), 77),
          mf(model, {gpu::GpuConfig::tegraX1(),
                     runtime::NetworkShape::stacked(512, 512, 2, 40)})
    {
        mf.calibrate(seqs(4, 8, 5));
        const auto ladder = mf.calibration().ladder();
        mf.setThresholds(ladder[ladder.size() / 2]);
        for (const auto &s : seqs(4, 8, 11))
            mf.runner().classify(s);
    }

    void SetUp() override
    {
        dir_ = std::filesystem::temp_directory_path() /
               ("mflstm_fleet_test_" + std::to_string(::getpid()) +
                "_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
        std::filesystem::create_directories(dir_);
    }
    void TearDown() override
    {
        std::error_code ec;
        std::filesystem::remove_all(dir_, ec);
    }

    fleet::FleetOptions fleetOptions() const
    {
        fleet::FleetOptions o;
        o.replicas = 2;
        o.storeDir = (dir_ / "store").string();
        o.engine.maxBatch = 4;
        o.engine.workers = 1;
        o.engine.plan = runtime::PlanKind::Combined;
        return o;
    }

    /**
     * Session ids whose affinity hash pins them to @p replica, pinned
     * in the router as a side effect (so later submits stick).
     */
    std::vector<std::string> sessionsPinnedTo(fleet::Fleet &fleet,
                                              std::size_t replica,
                                              std::size_t want)
    {
        std::vector<fleet::ReplicaSnapshot> snaps(2);
        snaps[0].index = 0;
        snaps[1].index = 1;
        std::vector<std::string> out;
        for (int i = 0; out.size() < want && i < 256; ++i) {
            const std::string sid = "session-" + std::to_string(i);
            if (fleet.router().route(sid, snaps) == replica)
                out.push_back(sid);
        }
        return out;
    }

    nn::LstmModel model;
    core::MemoryFriendlyLstm mf;
    std::filesystem::path dir_;
};

TEST_F(FleetTest, BootSeedsStoreAndServesBitIdentically)
{
    fleet::Fleet fleet(mf, fleetOptions());
    EXPECT_EQ(fleet.replicaCount(), 2u);

    // Replica 0 seeded the shared store; replica 1 warm-booted from
    // it (no cold recovery was needed on either side).
    EXPECT_TRUE(fleet.store().exists(fleet::kEngineStateArtifact));
    EXPECT_EQ(fleet.replica(0).counters().coldRecoveries, 0u);
    EXPECT_EQ(fleet.replica(1).counters().coldRecoveries, 0u);

    // Whatever replica serves a request, the logits are bit-identical
    // to a solo runner (warm boot preserves the plan/ladder exactly).
    core::ApproxRunner solo = mf.runner();
    const auto inputs = seqs(8, 10, 23);
    std::vector<tensor::Vector> expected;
    for (const auto &s : inputs)
        expected.push_back(solo.classify(s));

    std::map<std::uint64_t, std::size_t> which;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        fleet::FleetRequest req;
        req.tokens = inputs[i];
        req.sessionId = "session-" + std::to_string(i);
        which[fleet.submit(req)] = i;
    }
    fleet.drain();

    const auto responses = fleet.takeCompleted();
    ASSERT_EQ(responses.size(), inputs.size());
    for (const fleet::FleetResponse &r : responses) {
        EXPECT_EQ(r.response.status, serve::Status::Ok);
        ASSERT_TRUE(which.count(r.fleetId));
        EXPECT_EQ(r.response.logits, expected[which[r.fleetId]])
            << "fleet id " << r.fleetId;
    }
    EXPECT_EQ(fleet.stats().submitted, inputs.size());
    EXPECT_EQ(fleet.stats().completed, inputs.size());
    EXPECT_DOUBLE_EQ(fleet.availability(), 1.0);
}

TEST_F(FleetTest, CrashFailsQueuedWorkOverWithZeroLoss)
{
    auto opts = fleetOptions();
    opts.engine.maxBatch = 1;  // keep work queued on the victim
    fleet::Fleet fleet(mf, opts);

    const auto on_r0 = sessionsPinnedTo(fleet, 0, 4);
    ASSERT_EQ(on_r0.size(), 4u);

    // Slow the victim so its queue is guaranteed non-empty at the
    // kill, then strand the queued requests.
    fleet.replica(0).setBrownout(30.0);
    const auto inputs = seqs(4, 10, 31);
    std::size_t submitted = 0;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        fleet::FleetRequest req;
        req.tokens = inputs[i];
        req.sessionId = on_r0[i];
        fleet.submit(req);
        ++submitted;
    }
    fleet.replica(0).kill(/*corrupt_state=*/false);
    EXPECT_FALSE(fleet.replica(0).alive());
    EXPECT_EQ(fleet.replica(0).state(), fleet::ReplicaState::Down);

    fleet.drain();

    // Zero lost: every accepted request reached a terminal response,
    // and the stranded ones were re-dispatched to the survivor.
    const auto responses = fleet.takeCompleted();
    ASSERT_EQ(responses.size(), submitted);
    for (const fleet::FleetResponse &r : responses)
        EXPECT_EQ(r.response.status, serve::Status::Ok);
    EXPECT_EQ(fleet.stats().failed, 0u);
    EXPECT_GE(fleet.stats().failovers, 1u);
    EXPECT_DOUBLE_EQ(fleet.availability(), 1.0);
    EXPECT_GE(fleet.observer()
                  .metrics()
                  .counter("fleet.failover_total")
                  .value(),
              1.0);
}

TEST_F(FleetTest, WithoutFailoverStrandedRequestsFailTerminally)
{
    auto opts = fleetOptions();
    opts.failover = false;
    opts.engine.maxBatch = 1;
    fleet::Fleet fleet(mf, opts);

    const auto on_r0 = sessionsPinnedTo(fleet, 0, 4);
    ASSERT_EQ(on_r0.size(), 4u);

    fleet.replica(0).setBrownout(30.0);
    const auto inputs = seqs(4, 10, 31);
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        fleet::FleetRequest req;
        req.tokens = inputs[i];
        req.sessionId = on_r0[i];
        fleet.submit(req);
    }
    fleet.replica(0).kill(/*corrupt_state=*/false);
    fleet.drain();

    // Still zero *lost* — every future resolved — but the strands are
    // terminal failures: the control experiment the bench gate runs.
    const auto responses = fleet.takeCompleted();
    ASSERT_EQ(responses.size(), inputs.size());
    std::size_t failed = 0;
    for (const fleet::FleetResponse &r : responses)
        if (r.response.status == serve::Status::Failed) {
            EXPECT_EQ(r.response.error, serve::kEngineKilledError);
            ++failed;
        }
    EXPECT_GE(failed, 1u);
    EXPECT_EQ(fleet.stats().failovers, 0u);
    EXPECT_LT(fleet.availability(), 1.0);
}

TEST_F(FleetTest, CorruptRestartQuarantinesAndColdRebuilds)
{
    fleet::Fleet fleet(mf, fleetOptions());

    fleet.replica(0).kill(/*corrupt_state=*/true);
    fleet.replica(0).restart();

    // The restart hit the corrupted artifact: quarantine-and-recompute
    // (DESIGN.md §11) — the damaged file is set aside, the replica
    // cold-rebuilds and heals the shared store.
    EXPECT_EQ(fleet.replica(0).counters().restarts, 1u);
    EXPECT_EQ(fleet.replica(0).counters().coldRecoveries, 1u);
    EXPECT_EQ(fleet.replica(0).state(), fleet::ReplicaState::Recovering);
    const std::string artifact =
        fleet.store().path(fleet::kEngineStateArtifact);
    EXPECT_TRUE(std::filesystem::exists(artifact + ".corrupt"));
    EXPECT_TRUE(fleet.store().exists(fleet::kEngineStateArtifact));
    EXPECT_GE(fleet.observer()
                  .metrics()
                  .counter("fleet.cold_recovery_total",
                           {{"replica", "r0"}})
                  .value(),
              1.0);

    // One clean probe brings it back (recoverAfter = 1), and the
    // cold-rebuilt replica still serves bit-identical outputs.
    fleet.replica(0).heartbeat();
    EXPECT_EQ(fleet.replica(0).state(), fleet::ReplicaState::Healthy);

    core::ApproxRunner solo = mf.runner();
    const auto input = seqs(1, 10, 41).front();
    fleet::FleetRequest req;
    req.tokens = input;
    req.sessionId = "post-recovery";
    fleet.submit(req);
    fleet.drain();
    const auto responses = fleet.takeCompleted();
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0].response.status, serve::Status::Ok);
    EXPECT_EQ(responses[0].response.logits, solo.classify(input));
}

TEST_F(FleetTest, DegradedReplicaGetsHedged)
{
    auto opts = fleetOptions();
    opts.hedgeAfterMs = 0.5;
    // Impossible probe SLO: every heartbeat misses on latency, so the
    // replicas degrade (but never go Down — misses stay below
    // downAfter) and hedging becomes legal.
    opts.heartbeatSloMs = 1e-9;
    opts.degradedAfter = 1;
    opts.downAfter = 1000000;
    fleet::Fleet fleet(mf, opts);

    const auto on_r0 = sessionsPinnedTo(fleet, 0, 1);
    ASSERT_EQ(on_r0.size(), 1u);

    fleet.replica(0).setBrownout(150.0);
    fleet.replica(0).heartbeat();  // one miss: Healthy -> Degraded
    ASSERT_EQ(fleet.replica(0).state(), fleet::ReplicaState::Degraded);

    fleet::FleetRequest req;
    req.tokens = seqs(1, 10, 43).front();
    req.sessionId = on_r0.front();
    fleet.submit(req);

    // The primary sits in the 150 ms brownout; the pump must hedge it
    // to the other replica once the request ages past hedgeAfterMs.
    for (int i = 0; i < 2000 && fleet.stats().hedges == 0; ++i) {
        fleet.pump();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_GE(fleet.stats().hedges, 1u);
    EXPECT_GE(fleet.observer()
                  .metrics()
                  .counter("fleet.hedge_total")
                  .value(),
              1.0);

    fleet.drain();
    const auto responses = fleet.takeCompleted();
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0].response.status, serve::Status::Ok);
}

TEST_F(FleetTest, GovernorFloorRedistributesOverSurvivors)
{
    auto opts = fleetOptions();
    opts.engine.governorLadder = mf.calibration().ladder();
    opts.engine.planningSequences = seqs(2, 8, 5);
    const std::size_t rungs = opts.engine.governorLadder.size();
    ASSERT_GE(rungs, 2u);
    fleet::Fleet fleet(mf, opts);

    serve::InferenceEngine &survivor = *fleet.replica(1).engine();
    EXPECT_EQ(survivor.activeRung(), 0u);

    fleet.replica(0).kill(/*corrupt_state=*/false);

    // One replica of two is down: the survivor pre-degrades along the
    // ladder to ceil((rungs-1)/2). The climb is monotone and stops at
    // the floor; the never-skip invariant shows in the step counters
    // (every recorded transition is exactly one rung, so their
    // difference equals the final rung).
    const std::size_t floor =
        std::min(rungs - 1, ((rungs - 1) * 1 + 2 - 1) / 2);
    std::size_t prev = survivor.activeRung();
    for (std::size_t t = 0; t < rungs + 2; ++t) {
        fleet.tick();
        const std::size_t cur = survivor.activeRung();
        EXPECT_GE(cur, prev) << "relaxed below the floor climb";
        EXPECT_LE(cur, floor) << "overshot the floor at tick " << t;
        prev = cur;
    }
    EXPECT_EQ(prev, floor);
    const serve::InferenceEngine::Stats st = survivor.stats();
    EXPECT_EQ(st.governorStepsUp - st.governorStepsDown,
              static_cast<std::uint64_t>(prev));
    EXPECT_DOUBLE_EQ(fleet.observer()
                         .metrics()
                         .gauge("fleet.governor_floor")
                         .value(),
                     static_cast<double>(floor));

    // Recovery lowers the floor again.
    fleet.replica(0).restart();
    fleet.replica(0).heartbeat();
    ASSERT_EQ(fleet.replica(0).state(), fleet::ReplicaState::Healthy);
    fleet.tick();
    EXPECT_DOUBLE_EQ(fleet.observer()
                         .metrics()
                         .gauge("fleet.governor_floor")
                         .value(),
                     0.0);
}

TEST_F(FleetTest, StandardChaosPlanCompletesEverythingSubmitted)
{
    auto opts = fleetOptions();
    opts.restartAfterTicks = 1;
    fleet::Fleet fleet(mf, opts);
    fleet.setChaosPlan(fleet::ChaosPlan::standard(9, 2, 16));

    // Replay check: regenerating from the recorded seed is
    // bit-identical (what the bench gate asserts from its JSON).
    EXPECT_EQ(fleet.chaosPlan().describe(),
              fleet::ChaosPlan::standard(9, 2, 16).describe());

    const auto inputs = seqs(64, 8, 51);
    std::size_t next = 0;
    std::size_t applied = 0;
    for (std::uint64_t t = 0; t < 16; ++t) {
        const fleet::Fleet::TickReport report = fleet.tick();
        applied += report.applied.size();
        // One steady arrival per tick plus the flash-crowd burst.
        for (std::size_t k = 0; k < 1 + report.flashCrowdBurst; ++k) {
            fleet::FleetRequest req;
            req.tokens = inputs[next % inputs.size()];
            req.sessionId = "session-" + std::to_string(next % 6);
            req.tenant = next % 2 == 0 ? "batch" : "interactive";
            fleet.submit(req);
            ++next;
        }
    }
    EXPECT_EQ(applied, 4u);  // crash, brownout, corrupt, flash crowd

    // A few quiet ticks let scheduled restarts land, then drain.
    for (int t = 0; t < 4; ++t)
        fleet.tick();
    fleet.drain();

    // The headline invariant: zero lost requests — every submit got a
    // terminal response — and with failover on, nothing failed.
    EXPECT_EQ(fleet.stats().submitted, next);
    EXPECT_EQ(fleet.stats().completed, next);
    EXPECT_EQ(fleet.takeCompleted().size(), next);
    EXPECT_EQ(fleet.stats().failed, 0u);
    EXPECT_DOUBLE_EQ(fleet.availability(), 1.0);
    EXPECT_DOUBLE_EQ(fleet.observer()
                         .metrics()
                         .counter("fleet.chaos_applied_total")
                         .value(),
                     4.0);
    // The corrupt-restart event forced one quarantine-and-recompute.
    const double cold =
        fleet.observer()
            .metrics()
            .counter("fleet.cold_recovery_total", {{"replica", "r0"}})
            .value() +
        fleet.observer()
            .metrics()
            .counter("fleet.cold_recovery_total", {{"replica", "r1"}})
            .value();
    EXPECT_GE(cold, 1.0);
}

} // namespace
