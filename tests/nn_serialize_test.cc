/**
 * @file
 * Tests for the binary model serialization used by the bench cache.
 */

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "nn/serialize.hh"

namespace {

using namespace mflstm;
using namespace mflstm::nn;

class SerializeTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        path_ = (std::filesystem::temp_directory_path() /
                 "mflstm_serialize_test.bin")
                    .string();
    }
    void TearDown() override { std::remove(path_.c_str()); }

    std::string path_;
};

ModelConfig
someConfig()
{
    ModelConfig cfg;
    cfg.task = TaskKind::Classification;
    cfg.vocab = 18;
    cfg.embedSize = 7;
    cfg.hiddenSize = 9;
    cfg.numLayers = 2;
    cfg.numClasses = 3;
    cfg.sigmoid = SigmoidKind::Hard;
    return cfg;
}

TEST_F(SerializeTest, RoundTripPreservesEverything)
{
    const LstmModel original(someConfig(), 99);
    saveModel(original, path_);
    const LstmModel loaded = loadModel(path_);

    // Config round-trips.
    EXPECT_EQ(loaded.config().task, original.config().task);
    EXPECT_EQ(loaded.config().vocab, original.config().vocab);
    EXPECT_EQ(loaded.config().hiddenSize, original.config().hiddenSize);
    EXPECT_EQ(loaded.config().numLayers, original.config().numLayers);
    EXPECT_EQ(loaded.config().numClasses, original.config().numClasses);
    EXPECT_EQ(loaded.config().sigmoid, original.config().sigmoid);

    // Weights round-trip bit-for-bit.
    EXPECT_EQ(loaded.embedding().table, original.embedding().table);
    for (std::size_t l = 0; l < 2; ++l) {
        EXPECT_EQ(loaded.layers()[l].uf, original.layers()[l].uf);
        EXPECT_EQ(loaded.layers()[l].wc, original.layers()[l].wc);
        EXPECT_EQ(loaded.layers()[l].bo, original.layers()[l].bo);
    }
    EXPECT_EQ(loaded.head().w, original.head().w);

    // And therefore outputs are identical.
    const std::int32_t toks[] = {1, 4, 9, 2};
    EXPECT_EQ(loaded.classify(toks), original.classify(toks));
}

TEST_F(SerializeTest, LanguageModelRoundTrip)
{
    ModelConfig cfg;
    cfg.task = TaskKind::LanguageModel;
    cfg.vocab = 12;
    cfg.embedSize = 5;
    cfg.hiddenSize = 6;
    cfg.numLayers = 1;
    const LstmModel original(cfg, 7);
    saveModel(original, path_);
    const LstmModel loaded = loadModel(path_);
    EXPECT_EQ(loaded.config().task, TaskKind::LanguageModel);

    const std::int32_t toks[] = {1, 2, 3};
    const auto a = original.lmLogits(toks);
    const auto b = loaded.lmLogits(toks);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t t = 0; t < a.size(); ++t)
        EXPECT_EQ(a[t], b[t]);
}

TEST_F(SerializeTest, IsModelFileChecksMagic)
{
    EXPECT_FALSE(isModelFile(path_));  // missing

    const LstmModel m(someConfig(), 1);
    saveModel(m, path_);
    EXPECT_TRUE(isModelFile(path_));

    // Corrupt the magic.
    {
        std::FILE *f = std::fopen(path_.c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        const char junk[4] = {0, 0, 0, 0};
        std::fwrite(junk, 1, 4, f);
        std::fclose(f);
    }
    EXPECT_FALSE(isModelFile(path_));
    EXPECT_THROW(loadModel(path_), std::runtime_error);
}

TEST_F(SerializeTest, TruncatedFileRejected)
{
    const LstmModel m(someConfig(), 1);
    saveModel(m, path_);
    std::filesystem::resize_file(path_, 64);
    EXPECT_THROW(loadModel(path_), std::runtime_error);
}

TEST_F(SerializeTest, MissingFileRejected)
{
    EXPECT_THROW(loadModel("/nonexistent/dir/model.bin"),
                 std::runtime_error);
    EXPECT_THROW(saveModel(LstmModel(someConfig(), 1),
                           "/nonexistent/dir/model.bin"),
                 std::runtime_error);
}

} // namespace
