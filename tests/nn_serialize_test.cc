/**
 * @file
 * Tests for the binary model serialization used by the bench cache:
 * round trips over the v2 artifact container, the legacy v1 migration
 * path, and the corruption matrix — every damaged input must raise a
 * typed io::ArtifactError before any dangerous allocation, never
 * produce a partial model.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "nn/serialize.hh"
#include "obs/observer.hh"

namespace {

using namespace mflstm;
using namespace mflstm::nn;

class SerializeTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        // Per-process name: ctest runs test cases concurrently.
        path_ = (std::filesystem::temp_directory_path() /
                 ("mflstm_serialize_test_" +
                  std::to_string(::getpid()) + ".bin"))
                    .string();
    }
    void TearDown() override { std::remove(path_.c_str()); }

    std::string path_;
};

ModelConfig
someConfig()
{
    ModelConfig cfg;
    cfg.task = TaskKind::Classification;
    cfg.vocab = 18;
    cfg.embedSize = 7;
    cfg.hiddenSize = 9;
    cfg.numLayers = 2;
    cfg.numClasses = 3;
    cfg.sigmoid = SigmoidKind::Hard;
    return cfg;
}

TEST_F(SerializeTest, RoundTripPreservesEverything)
{
    const LstmModel original(someConfig(), 99);
    saveModel(original, path_);
    const LstmModel loaded = loadModel(path_);

    // Config round-trips.
    EXPECT_EQ(loaded.config().task, original.config().task);
    EXPECT_EQ(loaded.config().vocab, original.config().vocab);
    EXPECT_EQ(loaded.config().hiddenSize, original.config().hiddenSize);
    EXPECT_EQ(loaded.config().numLayers, original.config().numLayers);
    EXPECT_EQ(loaded.config().numClasses, original.config().numClasses);
    EXPECT_EQ(loaded.config().sigmoid, original.config().sigmoid);

    // Weights round-trip bit-for-bit.
    EXPECT_EQ(loaded.embedding().table, original.embedding().table);
    for (std::size_t l = 0; l < 2; ++l) {
        EXPECT_EQ(loaded.layers()[l].uf, original.layers()[l].uf);
        EXPECT_EQ(loaded.layers()[l].wc, original.layers()[l].wc);
        EXPECT_EQ(loaded.layers()[l].bo, original.layers()[l].bo);
    }
    EXPECT_EQ(loaded.head().w, original.head().w);

    // And therefore outputs are identical.
    const std::int32_t toks[] = {1, 4, 9, 2};
    EXPECT_EQ(loaded.classify(toks), original.classify(toks));
}

TEST_F(SerializeTest, LanguageModelRoundTrip)
{
    ModelConfig cfg;
    cfg.task = TaskKind::LanguageModel;
    cfg.vocab = 12;
    cfg.embedSize = 5;
    cfg.hiddenSize = 6;
    cfg.numLayers = 1;
    const LstmModel original(cfg, 7);
    saveModel(original, path_);
    const LstmModel loaded = loadModel(path_);
    EXPECT_EQ(loaded.config().task, TaskKind::LanguageModel);

    const std::int32_t toks[] = {1, 2, 3};
    const auto a = original.lmLogits(toks);
    const auto b = loaded.lmLogits(toks);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t t = 0; t < a.size(); ++t)
        EXPECT_EQ(a[t], b[t]);
}

TEST_F(SerializeTest, IsModelFileChecksMagic)
{
    EXPECT_FALSE(isModelFile(path_));  // missing

    const LstmModel m(someConfig(), 1);
    saveModel(m, path_);
    EXPECT_TRUE(isModelFile(path_));

    // Corrupt the magic.
    {
        std::FILE *f = std::fopen(path_.c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        const char junk[4] = {0, 0, 0, 0};
        std::fwrite(junk, 1, 4, f);
        std::fclose(f);
    }
    EXPECT_FALSE(isModelFile(path_));
    EXPECT_THROW(loadModel(path_), std::runtime_error);
}

TEST_F(SerializeTest, TruncatedFileRejected)
{
    const LstmModel m(someConfig(), 1);
    saveModel(m, path_);
    std::filesystem::resize_file(path_, 64);
    EXPECT_THROW(loadModel(path_), std::runtime_error);
}

TEST_F(SerializeTest, MissingFileRejected)
{
    EXPECT_THROW(loadModel("/nonexistent/dir/model.bin"),
                 std::runtime_error);
    EXPECT_THROW(saveModel(LstmModel(someConfig(), 1),
                           "/nonexistent/dir/model.bin"),
                 std::runtime_error);
}

// ----------------------------------------------------------------------
// Corruption matrix (v2 container)

io::ErrorKind
loadKind(const std::string &path,
         const io::ArtifactLimits &limits = {})
{
    try {
        (void)loadModel(path, limits);
    } catch (const io::ArtifactError &e) {
        return e.kind();
    }
    ADD_FAILURE() << "corrupt model file " << path << " loaded";
    return io::ErrorKind::Io;
}

TEST_F(SerializeTest, SaveWritesArtifactContainer)
{
    saveModel(LstmModel(someConfig(), 3), path_);
    std::uint32_t kind = 0;
    ASSERT_TRUE(io::isArtifactFile(path_, &kind));
    EXPECT_EQ(kind, io::kSchemaModel);
    EXPECT_NO_THROW(verifyModelFile(path_));
}

TEST_F(SerializeTest, TruncationAtChunkBoundariesRejected)
{
    saveModel(LstmModel(someConfig(), 3), path_);
    const std::uintmax_t full = std::filesystem::file_size(path_);
    // Header edge, chunk-table edge, mid-payload, one byte short.
    for (const std::uintmax_t len :
         {std::uintmax_t(0), std::uintmax_t(12), std::uintmax_t(31),
          std::uintmax_t(32), full / 3, full / 2, full - 1}) {
        saveModel(LstmModel(someConfig(), 3), path_);
        std::filesystem::resize_file(path_, len);
        EXPECT_THROW(loadModel(path_), io::ArtifactError)
            << "truncation to " << len << " bytes parsed";
        EXPECT_THROW(verifyModelFile(path_), io::ArtifactError);
    }
}

TEST_F(SerializeTest, WeightPayloadBitFlipIsChecksumMismatch)
{
    saveModel(LstmModel(someConfig(), 3), path_);
    const std::uintmax_t size = std::filesystem::file_size(path_);
    {
        std::fstream f(path_, std::ios::binary | std::ios::in |
                                  std::ios::out);
        f.seekp(static_cast<std::streamoff>(size - 7));
        char b = 0;
        f.seekg(static_cast<std::streamoff>(size - 7));
        f.read(&b, 1);
        b = static_cast<char>(b ^ 0x10);
        f.seekp(static_cast<std::streamoff>(size - 7));
        f.write(&b, 1);
    }
    EXPECT_EQ(loadKind(path_), io::ErrorKind::ChecksumMismatch);
}

TEST_F(SerializeTest, HugeDimsRejectedBeforeAllocation)
{
    // A handcrafted container whose header demands a petabyte-scale
    // model. The chunk CRCs are valid, so the only defence is the
    // pre-allocation dimension check — if it misses, the test dies
    // trying to allocate.
    io::ArtifactWriter w(io::kSchemaModel, 2);
    io::ByteWriter &c = w.chunk(io::fourcc('M', 'C', 'F', 'G'));
    c.u32(0);                 // task
    c.u64(1ull << 40);        // vocab
    c.u64(1ull << 40);        // embedSize
    c.u64(1ull << 40);        // hiddenSize
    c.u64(4);                 // numLayers
    c.u64(2);                 // numClasses
    c.u32(0);                 // sigmoid
    w.commit(path_);
    EXPECT_EQ(loadKind(path_), io::ErrorKind::LimitExceeded);
}

TEST_F(SerializeTest, ParameterCountOverflowRejected)
{
    // Dims individually under maxDim but whose product overflows the
    // element budget: caught by checked arithmetic, not by wrapping.
    io::ArtifactWriter w(io::kSchemaModel, 2);
    io::ByteWriter &c = w.chunk(io::fourcc('M', 'C', 'F', 'G'));
    c.u32(0);
    c.u64((1ull << 24) - 1);  // vocab, just under maxDim
    c.u64((1ull << 24) - 1);  // embedSize
    c.u64((1ull << 24) - 1);  // hiddenSize
    c.u64((1ull << 24) - 1);  // numLayers
    c.u64(2);
    c.u32(0);
    w.commit(path_);
    EXPECT_EQ(loadKind(path_), io::ErrorKind::LimitExceeded);
}

TEST_F(SerializeTest, BadEnumValuesRejected)
{
    io::ArtifactWriter w(io::kSchemaModel, 2);
    io::ByteWriter &c = w.chunk(io::fourcc('M', 'C', 'F', 'G'));
    c.u32(99);  // no such task
    c.u64(4);
    c.u64(3);
    c.u64(3);
    c.u64(1);
    c.u64(2);
    c.u32(0);
    w.commit(path_);
    EXPECT_EQ(loadKind(path_), io::ErrorKind::Malformed);
}

TEST_F(SerializeTest, UnknownSchemaVersionRejected)
{
    io::ArtifactWriter w(io::kSchemaModel, 3);  // future version
    w.chunk(io::fourcc('M', 'C', 'F', 'G')).u32(0);
    w.commit(path_);
    EXPECT_EQ(loadKind(path_), io::ErrorKind::BadVersion);
}

TEST_F(SerializeTest, WrongTensorSizeRejected)
{
    // Valid container, valid config, but the embedding chunk holds the
    // wrong number of floats.
    const ModelConfig cfg = someConfig();
    io::ArtifactWriter w(io::kSchemaModel, 2);
    io::ByteWriter &c = w.chunk(io::fourcc('M', 'C', 'F', 'G'));
    c.u32(0);
    c.u64(cfg.vocab);
    c.u64(cfg.embedSize);
    c.u64(cfg.hiddenSize);
    c.u64(cfg.numLayers);
    c.u64(cfg.numClasses);
    c.u32(1);
    const std::vector<float> short_tbl(3, 0.5f);
    w.chunk(io::fourcc('M', 'E', 'M', 'B')).f32Array(short_tbl);
    w.commit(path_);
    EXPECT_EQ(loadKind(path_), io::ErrorKind::Malformed);
}

TEST_F(SerializeTest, NanWeightRejectedAndCounted)
{
    LstmModel m(someConfig(), 3);
    m.layers()[0].wf.data()[1] =
        std::numeric_limits<float>::quiet_NaN();
    saveModel(m, path_);

    obs::Observer obs;
    try {
        (void)loadModel(path_, io::ArtifactLimits{}, &obs);
        FAIL() << "NaN weights loaded";
    } catch (const io::ArtifactError &e) {
        EXPECT_EQ(e.kind(), io::ErrorKind::NonFinite);
    }
    EXPECT_EQ(obs.metrics()
                  .counter("artifact_load_rejected_total")
                  .value(),
              1.0);
    EXPECT_EQ(
        obs.metrics()
            .counter(
                "artifact_load_rejected_total{reason=non_finite}")
            .value(),
        1.0);
}

TEST_F(SerializeTest, InfinityWeightRejected)
{
    LstmModel m(someConfig(), 3);
    m.head().b.data()[0] = std::numeric_limits<float>::infinity();
    saveModel(m, path_);
    EXPECT_EQ(loadKind(path_), io::ErrorKind::NonFinite);
}

// ----------------------------------------------------------------------
// Legacy v1 migration

void
putU32(std::ofstream &os, std::uint32_t v)
{
    const std::uint8_t b[4] = {
        static_cast<std::uint8_t>(v),
        static_cast<std::uint8_t>(v >> 8),
        static_cast<std::uint8_t>(v >> 16),
        static_cast<std::uint8_t>(v >> 24)};
    os.write(reinterpret_cast<const char *>(b), 4);
}

void
putTensor(std::ofstream &os, const float *data, std::size_t n)
{
    os.write(reinterpret_cast<const char *>(data),
             static_cast<std::streamsize>(n * sizeof(float)));
}

/** Emit @p m in the original raw v1 dump format. */
void
writeLegacyV1(const LstmModel &m, const std::string &path)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    const ModelConfig &cfg = m.config();
    putU32(os, 0x4d464c31);  // "MFL1"
    putU32(os, 1);
    putU32(os, cfg.task == TaskKind::LanguageModel ? 1 : 0);
    putU32(os, static_cast<std::uint32_t>(cfg.vocab));
    putU32(os, static_cast<std::uint32_t>(cfg.embedSize));
    putU32(os, static_cast<std::uint32_t>(cfg.hiddenSize));
    putU32(os, static_cast<std::uint32_t>(cfg.numLayers));
    putU32(os, static_cast<std::uint32_t>(cfg.numClasses));
    putU32(os, cfg.sigmoid == SigmoidKind::Hard ? 1 : 0);

    putTensor(os, m.embedding().table.data(),
              m.embedding().table.size());
    for (const LstmLayerParams &p : m.layers()) {
        for (const tensor::Matrix *mat :
             {&p.wf, &p.wi, &p.wc, &p.wo, &p.uf, &p.ui, &p.uc, &p.uo})
            putTensor(os, mat->data(), mat->size());
        for (const tensor::Vector *v : {&p.bf, &p.bi, &p.bc, &p.bo})
            putTensor(os, v->data(), v->size());
    }
    putTensor(os, m.head().w.data(), m.head().w.size());
    putTensor(os, m.head().b.data(), m.head().b.size());
}

TEST_F(SerializeTest, LegacyV1FilesStillLoad)
{
    const LstmModel original(someConfig(), 21);
    writeLegacyV1(original, path_);

    ASSERT_TRUE(isModelFile(path_));
    const LstmModel migrated = loadModel(path_);
    EXPECT_EQ(migrated.config().hiddenSize,
              original.config().hiddenSize);
    EXPECT_EQ(migrated.embedding().table, original.embedding().table);
    EXPECT_EQ(migrated.layers()[1].uo, original.layers()[1].uo);
    const std::int32_t toks[] = {3, 1, 4, 1, 5};
    EXPECT_EQ(migrated.classify(toks), original.classify(toks));

    // Re-saving migrates to the v2 container.
    saveModel(migrated, path_);
    EXPECT_TRUE(io::isArtifactFile(path_));
    const LstmModel reloaded = loadModel(path_);
    EXPECT_EQ(reloaded.classify(toks), original.classify(toks));
}

TEST_F(SerializeTest, LegacyV1TruncationRejected)
{
    writeLegacyV1(LstmModel(someConfig(), 21), path_);
    const std::uintmax_t full = std::filesystem::file_size(path_);
    std::filesystem::resize_file(path_, full - 5);
    EXPECT_EQ(loadKind(path_), io::ErrorKind::Truncated);
}

TEST_F(SerializeTest, LegacyV1TrailingBytesRejected)
{
    writeLegacyV1(LstmModel(someConfig(), 21), path_);
    {
        std::ofstream os(path_, std::ios::binary | std::ios::app);
        os << "extra";
    }
    EXPECT_EQ(loadKind(path_), io::ErrorKind::Malformed);
}

TEST_F(SerializeTest, LegacyV1NanRejected)
{
    LstmModel m(someConfig(), 21);
    m.layers()[1].bc.data()[0] =
        std::numeric_limits<float>::quiet_NaN();
    writeLegacyV1(m, path_);
    EXPECT_EQ(loadKind(path_), io::ErrorKind::NonFinite);
}

TEST_F(SerializeTest, LegacyV1HugeDimsRejectedBeforeAllocation)
{
    // Header demands ~10^18 parameters; the payload is absent. The
    // dimension check must fire before the model is allocated.
    std::ofstream os(path_, std::ios::binary | std::ios::trunc);
    putU32(os, 0x4d464c31);
    putU32(os, 1);
    putU32(os, 0);
    putU32(os, 0xFFFFFF);  // vocab
    putU32(os, 0xFFFFFF);  // embedSize
    putU32(os, 0xFFFFFF);  // hiddenSize
    putU32(os, 64);        // numLayers
    putU32(os, 2);
    putU32(os, 0);
    os.close();
    EXPECT_EQ(loadKind(path_), io::ErrorKind::LimitExceeded);
}

} // namespace
