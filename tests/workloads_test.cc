/**
 * @file
 * Tests for the Table II registry and the synthetic task generators:
 * shapes, label consistency, determinism, and the structural properties
 * the paper's optimisations rely on (episodic boundaries, overwriting
 * facts, mapped translation halves).
 */

#include <gtest/gtest.h>

#include "workloads/benchmarks.hh"
#include "workloads/datagen.hh"

namespace {

using namespace mflstm;
using namespace mflstm::workloads;

TEST(TableII, SixBenchmarksWithPaperConfigs)
{
    const auto &specs = tableII();
    ASSERT_EQ(specs.size(), 6u);

    const BenchmarkSpec &imdb = benchmarkByName("IMDB");
    EXPECT_EQ(imdb.hiddenSize, 512u);
    EXPECT_EQ(imdb.numLayers, 3u);
    EXPECT_EQ(imdb.length, 80u);
    EXPECT_EQ(imdb.abbrev, "SC");

    const BenchmarkSpec &ptb = benchmarkByName("PTB");
    EXPECT_EQ(ptb.hiddenSize, 650u);
    EXPECT_EQ(ptb.numLayers, 3u);
    EXPECT_EQ(ptb.length, 200u);
    EXPECT_TRUE(ptb.isLanguageModel());

    const BenchmarkSpec &mt = benchmarkByName("MT");
    EXPECT_EQ(mt.hiddenSize, 500u);
    EXPECT_EQ(mt.numLayers, 4u);
    EXPECT_EQ(mt.length, 50u);

    EXPECT_EQ(benchmarkByName("MR").hiddenSize, 256u);
    EXPECT_EQ(benchmarkByName("BABI").length, 86u);
    EXPECT_EQ(benchmarkByName("SNLI").hiddenSize, 300u);

    EXPECT_THROW(benchmarkByName("nope"), std::out_of_range);
}

TEST(TableII, TimingShapeMatchesSpec)
{
    const auto shape = benchmarkByName("SNLI").timingShape();
    ASSERT_EQ(shape.layers.size(), 2u);
    EXPECT_EQ(shape.layers[0].hiddenSize, 300u);
    EXPECT_EQ(shape.layers[0].length, 100u);
    EXPECT_EQ(shape.layers[1].inputSize, 300u);
}

TEST(TableII, AccuracyModelMirrorsLayerCount)
{
    for (const BenchmarkSpec &spec : tableII()) {
        const nn::ModelConfig cfg = spec.accuracyModelConfig();
        EXPECT_EQ(cfg.numLayers, spec.numLayers) << spec.name;
        EXPECT_EQ(cfg.hiddenSize, spec.modelHidden) << spec.name;
        EXPECT_EQ(cfg.task == nn::TaskKind::LanguageModel,
                  spec.isLanguageModel())
            << spec.name;
    }
}

TEST(Datagen, SentimentLabelsMatchWeightedScore)
{
    const auto data = makeSentimentTask(48, 24, 50, 20, 1);
    EXPECT_EQ(data.train.size(), 50u);
    EXPECT_EQ(data.test.size(), 20u);

    const std::int32_t reset = 47;
    for (const nn::Sample &s : data.train) {
        EXPECT_EQ(s.tokens.size(), 24u);
        int seg = 0, global = 0;
        for (std::int32_t t : s.tokens) {
            if (t == reset) {
                seg = 0;
            } else if (t < 12) {
                ++seg;
                ++global;
            } else if (t < 24) {
                --seg;
                --global;
            }
        }
        const int score = 2 * seg + global;
        EXPECT_NE(score, 0);
        EXPECT_EQ(s.label, score > 0 ? 1 : 0);
    }
}

TEST(Datagen, SentimentHasEpisodicBoundaries)
{
    const auto data = makeSentimentTask(48, 24, 100, 1, 2);
    std::size_t resets = 0, tokens = 0;
    for (const nn::Sample &s : data.train) {
        tokens += s.tokens.size();
        for (std::int32_t t : s.tokens)
            resets += t == 47;
    }
    const double rate = static_cast<double>(resets) / tokens;
    EXPECT_GT(rate, 0.05);
    EXPECT_LT(rate, 0.25);
}

TEST(Datagen, QaAnswerIsLatestFact)
{
    const auto data = makeQaTask(56, 4, 26, 60, 10, 3);
    for (const nn::Sample &s : data.train) {
        ASSERT_EQ(s.tokens.size(), 26u);
        EXPECT_EQ(s.tokens.back(), 5);  // query token = classes + 1
        // Scan for the last [key, value] fact; it must equal the label.
        std::int32_t last_value = -1;
        for (std::size_t t = 0; t + 1 < s.tokens.size(); ++t) {
            if (s.tokens[t] == 4)  // key token == classes
                last_value = s.tokens[t + 1];
        }
        ASSERT_NE(last_value, -1);
        EXPECT_EQ(last_value, s.label);
        EXPECT_GE(s.label, 0);
        EXPECT_LT(s.label, 4);
    }
}

TEST(Datagen, EntailmentSegmentsEncodeLabel)
{
    const auto data = makeEntailmentTask(48, 24, 60, 10, 4);
    auto group_of = [](std::int32_t tok) {
        return (tok - 1) / ((48 - 1) / 4);
    };
    for (const nn::Sample &s : data.train) {
        // Find the separator.
        std::size_t sep = 0;
        for (std::size_t t = 0; t < s.tokens.size(); ++t) {
            if (s.tokens[t] == 0) {
                sep = t;
                break;
            }
        }
        ASSERT_GT(sep, 0u);
        const int ga = group_of(s.tokens[0]);
        const int gb = group_of(s.tokens[sep + 1]);
        if (s.label == 0)
            EXPECT_EQ(gb, ga);
        else if (s.label == 1)
            EXPECT_EQ(gb, ga ^ 1);
        else
            EXPECT_NE(gb & ~1, ga & ~1);  // different pair
    }
}

TEST(Datagen, LanguageModelHasSentenceBoundaries)
{
    const auto data = makeLanguageModelTask(40, 32, 40, 5, 5);
    std::size_t boundaries = 0, tokens = 0;
    for (const auto &seq : data.train) {
        EXPECT_EQ(seq.size(), 32u);
        for (std::int32_t t : seq) {
            EXPECT_GE(t, 0);
            EXPECT_LT(t, 40);
            boundaries += t == 0;
        }
        tokens += seq.size();
    }
    const double rate = static_cast<double>(boundaries) / tokens;
    EXPECT_GT(rate, 0.03);
    EXPECT_LT(rate, 0.2);
}

TEST(Datagen, TranslationTargetIsMappedSource)
{
    const auto data = makeTranslationTask(36, 24, 30, 5, 6);
    for (const auto &seq : data.train) {
        ASSERT_EQ(seq.size(), 24u);
        const std::size_t half = 11;  // (24 - 1) / 2
        EXPECT_EQ(seq[half], 0);      // separator
        for (std::size_t i = 0; i < half; ++i) {
            const auto src = static_cast<std::size_t>(seq[i]);
            const std::int32_t expect =
                static_cast<std::int32_t>(1 + (src * 7 + 3) % 35);
            EXPECT_EQ(seq[half + 1 + i], expect);
        }
        // Even lengths are padded with the separator token.
        EXPECT_EQ(seq[23], 0);
    }
}

TEST(Datagen, GeneratorsAreDeterministic)
{
    const auto a = makeQaTask(56, 4, 26, 10, 5, 42);
    const auto b = makeQaTask(56, 4, 26, 10, 5, 42);
    for (std::size_t i = 0; i < a.train.size(); ++i) {
        EXPECT_EQ(a.train[i].tokens, b.train[i].tokens);
        EXPECT_EQ(a.train[i].label, b.train[i].label);
    }
    const auto c = makeQaTask(56, 4, 26, 10, 5, 43);
    EXPECT_NE(a.train[0].tokens, c.train[0].tokens);
}

TEST(Datagen, MakeTaskDispatchesFamilies)
{
    for (const BenchmarkSpec &spec : tableII()) {
        const TaskData data = makeTask(spec, 8, 4);
        EXPECT_EQ(data.isLm, spec.isLanguageModel()) << spec.name;
        if (data.isLm) {
            EXPECT_EQ(data.lm.train.size(), 8u);
            EXPECT_TRUE(data.cls.train.empty());
        } else {
            EXPECT_EQ(data.cls.train.size(), 8u);
            EXPECT_TRUE(data.lm.train.empty());
        }
        EXPECT_EQ(data.calibrationSequences(3).size(), 3u);
        EXPECT_EQ(data.calibrationSequences(100).size(), 8u);
    }
}

TEST(Datagen, TrainedModelBeatsChanceQuickly)
{
    // A cheap sanity check (the full training runs live in bench/): a
    // few epochs on the QA task must clearly beat the 1/4 chance rate.
    BenchmarkSpec spec = benchmarkByName("BABI");
    spec.modelHidden = 32;
    spec.modelLength = 16;
    const TaskData data = makeTask(spec, 120, 40);
    const nn::LstmModel model = trainAccuracyModel(spec, data, 6);
    EXPECT_GT(exactAccuracy(model, data), 0.5);
}

TEST(Datagen, GeneratorsValidateConfigs)
{
    EXPECT_THROW(makeSentimentTask(4, 10, 1, 1, 1),
                 std::invalid_argument);
    EXPECT_THROW(makeQaTask(6, 4, 26, 1, 1, 1), std::invalid_argument);
    EXPECT_THROW(makeEntailmentTask(8, 24, 1, 1, 1),
                 std::invalid_argument);
    EXPECT_THROW(makeLanguageModelTask(4, 10, 1, 1, 1),
                 std::invalid_argument);
    EXPECT_THROW(makeTranslationTask(36, 4, 1, 1, 1),
                 std::invalid_argument);
}

} // namespace
