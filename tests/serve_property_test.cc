/**
 * @file
 * Property-based tests for the bounded RequestQueue (DESIGN.md §10).
 * A seeded random op-mix (push / popWait / drain / shedExpired) runs
 * against a reference model under every admission policy, checking the
 * structural invariants the engine's exactly-once promise contract
 * rests on:
 *
 *   - the queue never holds more than its capacity;
 *   - every pushed item leaves the queue through exactly one exit
 *     (pop, drain, shed, bounce, eviction, or the final close drain);
 *   - pops come out priority-descending with FIFO ties;
 *   - the backpressure counters reconcile with the observed exits.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <random>
#include <vector>

#include "serve/queue.hh"

namespace {

using namespace mflstm;
using namespace mflstm::serve;

QueuedRequest
makeItem(std::uint64_t seq, int priority, double deadline_ms = 0.0)
{
    QueuedRequest item;
    item.request.tokens = {1};
    item.request.priority = priority;
    item.request.deadlineMs = deadline_ms;
    item.id = seq + 1;
    item.seq = seq;
    item.enqueued = std::chrono::steady_clock::now();
    return item;
}

/// Where each pushed seq ended up; every seq must land exactly once.
enum class Exit
{
    Popped,
    Drained,
    Shed,
    Bounced,   // push rejected, the new item came back
    Evicted,   // DropOldest victim, came back through bounced
};

struct RandomRun
{
    std::size_t pushed = 0;
    std::map<std::uint64_t, Exit> exits;

    void record(std::uint64_t seq, Exit e)
    {
        ASSERT_TRUE(exits.emplace(seq, e).second)
            << "seq " << seq << " left the queue twice";
    }
};

void
runRandomOps(AdmissionPolicy policy, std::uint64_t seed, RandomRun &run)
{
    constexpr std::size_t kCapacity = 8;
    constexpr std::size_t kOps = 600;

    // A short block timeout keeps BlockWithTimeout runs fast: this is
    // single-threaded, so a blocked push can only ever time out.
    RequestQueue q({kCapacity, policy, 0.05});
    std::mt19937_64 rng(seed);
    std::uint64_t next_seq = 0;

    for (std::size_t op = 0; op < kOps; ++op) {
        ASSERT_LE(q.size(), kCapacity);
        const int roll = static_cast<int>(rng() % 10);
        if (roll < 6) {  // push (the majority, to exercise overload)
            const std::uint64_t seq = next_seq++;
            const int priority = static_cast<int>(rng() % 4);
            // ~1 in 8 items is born expired so shedExpired has prey.
            const bool expired = (rng() % 8) == 0;
            QueuedRequest item =
                makeItem(seq, priority, expired ? 1e-9 : 0.0);
            if (expired)
                item.enqueued -= std::chrono::milliseconds(1);
            ++run.pushed;

            std::vector<QueuedRequest> bounced;
            const auto outcome = q.push(std::move(item), &bounced);
            ASSERT_NE(outcome, RequestQueue::PushOutcome::Closed);
            if (outcome == RequestQueue::PushOutcome::RejectedCapacity) {
                ASSERT_EQ(bounced.size(), 1u);
                ASSERT_EQ(bounced[0].seq, seq);
                run.record(seq, Exit::Bounced);
            } else {
                for (QueuedRequest &victim : bounced) {
                    ASSERT_EQ(policy, AdmissionPolicy::DropOldest);
                    run.record(victim.seq, Exit::Evicted);
                }
            }
        } else if (roll < 8) {  // pop one (never blocks: queue nonempty
                                // or we skip)
            if (q.size() == 0)
                continue;
            QueuedRequest out;
            ASSERT_TRUE(q.popWait(out));
            run.record(out.seq, Exit::Popped);
        } else if (roll < 9) {  // drain a few
            std::vector<QueuedRequest> out;
            const std::size_t want = 1 + rng() % 4;
            const std::size_t got = q.drain(out, want);
            ASSERT_EQ(got, out.size());
            ASSERT_LE(got, want);
            for (QueuedRequest &item : out) {
                run.record(item.seq, Exit::Drained);
            }
        } else {  // shed expired
            std::vector<QueuedRequest> out;
            q.shedExpired(std::chrono::steady_clock::now(), out);
            for (QueuedRequest &item : out)
                run.record(item.seq, Exit::Shed);
        }
    }

    // Close drains the remainder: whatever is still queued must come
    // out exactly once more, and then the queue is empty forever.
    q.close();
    for (;;) {
        QueuedRequest out;
        if (!q.popWait(out))
            break;
        run.record(out.seq, Exit::Popped);
    }
    ASSERT_EQ(q.size(), 0u);

    // Conservation: every pushed seq exited exactly once.
    ASSERT_EQ(run.exits.size(), run.pushed);

    // Counter reconciliation.
    const RequestQueue::Counters c = q.counters();
    std::map<Exit, std::uint64_t> tally;
    for (const auto &[seq, e] : run.exits)
        ++tally[e];
    EXPECT_EQ(c.rejected, tally[Exit::Bounced]);
    EXPECT_EQ(c.evicted, tally[Exit::Evicted]);
    EXPECT_EQ(c.shed, tally[Exit::Shed]);
    EXPECT_EQ(c.admitted, run.pushed - tally[Exit::Bounced]);
    EXPECT_LE(c.highWater, kCapacity);
}

class QueueProperty
    : public ::testing::TestWithParam<AdmissionPolicy>
{};

TEST_P(QueueProperty, RandomOpsPreserveInvariants)
{
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        RandomRun run;
        runRandomOps(GetParam(), seed, run);
        if (::testing::Test::HasFatalFailure())
            FAIL() << "policy " << toString(GetParam()) << " seed "
                   << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, QueueProperty,
    ::testing::Values(AdmissionPolicy::RejectNew,
                      AdmissionPolicy::DropOldest,
                      AdmissionPolicy::BlockWithTimeout),
    [](const auto &info) -> std::string {
        switch (info.param) {
        case AdmissionPolicy::RejectNew:
            return "RejectNew";
        case AdmissionPolicy::DropOldest:
            return "DropOldest";
        case AdmissionPolicy::BlockWithTimeout:
            return "BlockWithTimeout";
        }
        return "Unknown";
    });

// Pop order is a property of the heap, not of any one op-mix: pour a
// random population in (unbounded, so admission can't interfere),
// drain it all, and check priority-descending with FIFO ties.
TEST(QueueProperty, DrainOrderIsPriorityDescFifoTied)
{
    for (std::uint64_t seed = 100; seed < 106; ++seed) {
        RequestQueue q;
        std::mt19937_64 rng(seed);
        const std::size_t n = 50 + rng() % 100;
        std::map<std::uint64_t, int> prio;
        for (std::uint64_t s = 0; s < n; ++s) {
            const int p = static_cast<int>(rng() % 5);
            prio[s] = p;
            ASSERT_EQ(q.push(makeItem(s, p)),
                      RequestQueue::PushOutcome::Admitted);
        }

        std::vector<QueuedRequest> out;
        ASSERT_EQ(q.drain(out, n), n);
        for (std::size_t i = 1; i < out.size(); ++i) {
            const int pa = prio[out[i - 1].seq];
            const int pb = prio[out[i].seq];
            ASSERT_GE(pa, pb) << "seed " << seed << " position " << i;
            if (pa == pb) {
                ASSERT_LT(out[i - 1].seq, out[i].seq)
                    << "FIFO tie broken at position " << i;
            }
        }
    }
}

} // namespace
