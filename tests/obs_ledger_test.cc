/**
 * @file
 * Unit tests for the traffic-attribution ledger (DESIGN.md §13): the
 * per-sample decomposition into cause nodes, the bit-exact whole-run
 * conservation check, the per-kernel bottleneck aggregation, and — the
 * reason the ledger exists — a deliberately re-introduced CRM
 * double-count fixture that must be rejected by the ledger itself, not
 * by manual inspection of byte totals (the PR 5 bug class).
 */

#include <gtest/gtest.h>

#include "obs/ledger.hh"

namespace {

using namespace mflstm;
using obs::MatrixStream;
using obs::TrafficCause;
using obs::TrafficLedger;
using obs::TrafficSample;

TrafficSample
sampleSgemv()
{
    TrafficSample s;
    s.layer = 1;
    s.matrix = MatrixStream::U;
    s.kernel = "Sgemv(U_fic, h, R)";
    s.kernelClass = "Sgemv";
    s.totalDramBytes = 1000.0;
    s.weightBytes = 600.0;
    s.scaleBytes = 100.0;
    s.crmMetaBytes = 50.0;
    s.spillBytes = 0.0;
    s.timeUs = 12.5;
    s.bottleneck = "bandwidth";
    return s;
}

TEST(TrafficLedger, DecomposesSampleIntoCauseNodes)
{
    TrafficLedger ledger;
    ledger.record(sampleSgemv());

    const auto traffic = ledger.traffic();
    // weight + scale + crm + activation residual = 4 nodes.
    ASSERT_EQ(traffic.size(), 4u);

    const auto at = [&](MatrixStream m, TrafficCause c) {
        TrafficLedger::NodeKey k;
        k.layer = 1;
        k.matrix = m;
        k.kernel = "Sgemv(U_fic, h, R)";
        k.cause = c;
        const auto it = traffic.find(k);
        return it == traffic.end() ? -1.0 : it->second;
    };
    EXPECT_DOUBLE_EQ(at(MatrixStream::U, TrafficCause::Weight), 600.0);
    // The scale stream is re-labelled to its own matrix stream.
    EXPECT_DOUBLE_EQ(
        at(MatrixStream::ScaleStream, TrafficCause::Dequant), 100.0);
    EXPECT_DOUBLE_EQ(at(MatrixStream::None, TrafficCause::CrmMetadata),
                     50.0);
    // Activations get the residual: 1000 - 600 - 100 - 50.
    EXPECT_DOUBLE_EQ(at(MatrixStream::None, TrafficCause::Activation),
                     250.0);

    EXPECT_EQ(ledger.samples(), 1u);
    EXPECT_DOUBLE_EQ(ledger.attributedDramBytes(), 1000.0);
    EXPECT_TRUE(ledger.violations().empty());
    EXPECT_TRUE(ledger.verifyConservation(1000.0).empty());
}

TEST(TrafficLedger, ZeroSubStreamsCreateNoNodes)
{
    TrafficLedger ledger;
    TrafficSample s;
    s.layer = 0;
    s.kernel = "lstm_ew";
    s.kernelClass = "ElementWise";
    s.totalDramBytes = 400.0;
    s.spillBytes = 400.0;  // everything is spill, residual is zero
    ledger.record(s);

    const auto traffic = ledger.traffic();
    ASSERT_EQ(traffic.size(), 1u);
    EXPECT_EQ(traffic.begin()->first.cause, TrafficCause::Spill);
    EXPECT_DOUBLE_EQ(traffic.begin()->second, 400.0);
}

TEST(TrafficLedger, ConservationIsBitExact)
{
    TrafficLedger ledger;
    ledger.record(sampleSgemv());
    ledger.record(sampleSgemv());

    EXPECT_TRUE(ledger.verifyConservation(2000.0).empty());
    // Off by any amount — even what an epsilon comparison would let
    // through — is a conservation failure.
    EXPECT_FALSE(ledger.verifyConservation(2000.0 + 1e-6).empty());
    EXPECT_FALSE(ledger.verifyConservation(1999.0).empty());
}

/**
 * The PR 5 bug class, reintroduced as a fixture: the lowering counted
 * the CRM relevance-flag bytes inside the kernel's DRAM total AND added
 * them again as a separate stream, inflating attribution beyond what
 * the timing model charged. The named sub-streams then exceed the
 * sample total and the activation residual goes negative — the ledger
 * must reject this on its own.
 */
TEST(TrafficLedger, RejectsCrmDoubleCountFixture)
{
    TrafficSample doubled = sampleSgemv();
    // weight 600 + scale 100 already in the total; duplicating the CRM
    // metadata stream on top of its in-total share (50 -> 350) pushes
    // the decomposition past totalDramBytes = 1000.
    doubled.crmMetaBytes += 300.0;

    TrafficLedger ledger;
    ledger.record(doubled);

    ASSERT_FALSE(ledger.violations().empty());
    // The violation carries the kernel so the double-count is
    // attributable without a manual byte audit.
    EXPECT_NE(ledger.violations()[0].find("Sgemv(U_fic, h, R)"),
              std::string::npos);
    // Conservation fails even though the *total* still matches: the
    // per-sample decomposition check is what catches double-counts.
    EXPECT_FALSE(ledger.verifyConservation(1000.0).empty());
}

/**
 * ISSUE 8: a persistent kernel's weight stream splits three ways —
 * first-fetch codes, first-fetch scales, and the overflow the pinned
 * budget re-streamed. The reload lands on the sample's matrix axis
 * under its own cause, and still counts toward the decomposition.
 */
TEST(TrafficLedger, AttributesResidencyReloadOnMatrixAxis)
{
    TrafficSample s;
    s.layer = 2;
    s.matrix = MatrixStream::U;
    s.kernel = "persistent(U_fico) [regfile]";
    s.kernelClass = "Persistent";
    s.totalDramBytes = 1000.0;
    s.weightBytes = 500.0;
    s.scaleBytes = 60.0;
    s.residencyReloadBytes = 340.0;

    TrafficLedger ledger;
    ledger.record(s);
    EXPECT_TRUE(ledger.violations().empty());
    EXPECT_TRUE(ledger.verifyConservation(1000.0).empty());

    const auto traffic = ledger.traffic();
    TrafficLedger::NodeKey k;
    k.layer = 2;
    k.matrix = MatrixStream::U;
    k.kernel = s.kernel;
    k.cause = TrafficCause::ResidencyReload;
    ASSERT_TRUE(traffic.count(k));
    EXPECT_DOUBLE_EQ(traffic.at(k), 340.0);

    // Reload inflating past the total is the same double-count class
    // the ledger exists to reject.
    TrafficSample doubled = s;
    doubled.residencyReloadBytes += 200.0;
    TrafficLedger strict;
    strict.record(doubled);
    EXPECT_FALSE(strict.violations().empty());
}

TEST(TrafficLedger, AggregatesKernelBottlenecks)
{
    TrafficLedger ledger;
    TrafficSample a = sampleSgemv();
    TrafficSample b = sampleSgemv();
    b.bottleneck = "dequant-issue";
    TrafficSample c = sampleSgemv();
    ledger.record(a);
    ledger.record(b);
    ledger.record(c);

    const auto kernels = ledger.kernels();
    ASSERT_EQ(kernels.size(), 1u);
    const TrafficLedger::KernelStats &st = kernels.begin()->second;
    EXPECT_EQ(st.launches, 3u);
    EXPECT_DOUBLE_EQ(st.timeUs, 3 * 12.5);
    EXPECT_DOUBLE_EQ(st.dramBytes, 3000.0);
    EXPECT_EQ(st.bottlenecks.at("bandwidth"), 2u);
    EXPECT_EQ(st.bottlenecks.at("dequant-issue"), 1u);
}

TEST(TrafficLedger, ResetClearsEverything)
{
    TrafficLedger ledger;
    ledger.record(sampleSgemv());
    ledger.reset();

    EXPECT_EQ(ledger.samples(), 0u);
    EXPECT_DOUBLE_EQ(ledger.attributedDramBytes(), 0.0);
    EXPECT_TRUE(ledger.traffic().empty());
    EXPECT_TRUE(ledger.kernels().empty());
    EXPECT_TRUE(ledger.verifyConservation(0.0).empty());
}

TEST(TrafficLedger, EnumNamesAreStable)
{
    // The JSON schema serialises these strings; renames are breaking.
    EXPECT_STREQ(obs::toString(TrafficCause::Weight), "weight");
    EXPECT_STREQ(obs::toString(TrafficCause::Dequant), "dequant");
    EXPECT_STREQ(obs::toString(TrafficCause::Activation), "activation");
    EXPECT_STREQ(obs::toString(TrafficCause::CrmMetadata),
                 "crm-metadata");
    EXPECT_STREQ(obs::toString(TrafficCause::Spill), "spill");
    EXPECT_STREQ(obs::toString(TrafficCause::ResidencyReload),
                 "residency-reload");
    EXPECT_STREQ(obs::toString(MatrixStream::None), "none");
    EXPECT_STREQ(obs::toString(MatrixStream::W), "W");
    EXPECT_STREQ(obs::toString(MatrixStream::U), "U");
    EXPECT_STREQ(obs::toString(MatrixStream::Bias), "bias");
    EXPECT_STREQ(obs::toString(MatrixStream::ScaleStream),
                 "scale-stream");
}

} // namespace
