/**
 * @file
 * Hammer tests for the adaptive threshold governor (DESIGN.md §10,
 * §16). The ladder invariant: every transition moves exactly one rung
 * — stepsUp - stepsDown always equals the current rung, and the rung
 * never leaves [0, rungCount). Verified directly under concurrent
 * observe/setRungFloor/rung pressure (the tsan chaos slice), and
 * end-to-end through an engine serving a concurrent submit/shed flood
 * where every executed response must be bit-identical to a solo
 * runner pinned at the rung the response reports.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/engine.hh"
#include "tensor/rng.hh"

namespace {

using namespace mflstm;

TEST(GovernorHammer, ConcurrentObserveKeepsTheLadderInvariant)
{
    serve::AdaptiveThresholdGovernor::Config cfg;
    cfg.rungCount = 5;
    cfg.highQueuePerWorker = 8.0;
    cfg.lowQueuePerWorker = 2.0;
    cfg.dwellTicks = 2;
    serve::AdaptiveThresholdGovernor gov(cfg);

    std::atomic<bool> stop{false};
    std::atomic<bool> violated{false};

    // Readers race the writers on the hot-path atomic.
    std::vector<std::thread> threads;
    for (int r = 0; r < 2; ++r)
        threads.emplace_back([&] {
            while (!stop.load()) {
                if (gov.rung() >= cfg.rungCount)
                    violated.store(true);
            }
        });

    // Writers alternate pressure and calm so the governor walks both
    // directions; a deterministic per-thread pattern, no wall clock.
    for (int w = 0; w < 4; ++w)
        threads.emplace_back([&, w] {
            for (int i = 0; i < 4000; ++i) {
                const std::size_t depth =
                    ((i >> 5) + w) % 2 == 0 ? 100 : 0;
                gov.observe(depth, 2, 0.0);
            }
        });

    // A floor writer mimics the fleet redistributing over survivors.
    threads.emplace_back([&] {
        for (int i = 0; i < 1000; ++i)
            gov.setRungFloor(static_cast<std::size_t>(i) % cfg.rungCount);
    });

    for (std::size_t i = 2; i < threads.size(); ++i)
        threads[i].join();
    stop.store(true);
    threads[0].join();
    threads[1].join();
    EXPECT_FALSE(violated.load());

    // The ladder never skipped: each recorded transition is exactly
    // one rung, so the net steps equal the rung everywhere it landed.
    const serve::AdaptiveThresholdGovernor::Stats st = gov.stats();
    EXPECT_EQ(st.stepsUp - st.stepsDown,
              static_cast<std::uint64_t>(gov.rung()));
    EXPECT_LT(gov.rung(), cfg.rungCount);

    // Raising the floor converges one rung per call, never a jump.
    gov.setRungFloor(cfg.rungCount - 1);
    std::size_t prev = gov.rung();
    while (gov.rung() < cfg.rungCount - 1) {
        gov.observe(0, 2, 0.0);
        EXPECT_LE(gov.rung(), prev + 1);
        ASSERT_GE(gov.rung(), prev);  // bounded loop: monotone climb
        prev = gov.rung();
    }
    EXPECT_EQ(gov.rungFloor(), cfg.rungCount - 1);
    const serve::AdaptiveThresholdGovernor::Stats end = gov.stats();
    EXPECT_EQ(end.stepsUp - end.stepsDown,
              static_cast<std::uint64_t>(gov.rung()));
}

nn::ModelConfig
clsConfig()
{
    nn::ModelConfig cfg;
    cfg.task = nn::TaskKind::Classification;
    cfg.vocab = 20;
    cfg.embedSize = 8;
    cfg.hiddenSize = 12;
    cfg.numLayers = 2;
    cfg.numClasses = 2;
    return cfg;
}

std::vector<std::vector<std::int32_t>>
seqs(std::size_t n, std::size_t len, std::uint64_t seed)
{
    tensor::Rng rng(seed);
    std::vector<std::vector<std::int32_t>> out(n);
    for (auto &s : out)
        for (std::size_t t = 0; t < len; ++t)
            s.push_back(static_cast<std::int32_t>(rng.integer(0, 19)));
    return out;
}

TEST(GovernorHammer, SnapshotRungsStayConsistentUnderSubmitAndShed)
{
    nn::LstmModel model(clsConfig(), 77);
    core::MemoryFriendlyLstm mf(
        model, {gpu::GpuConfig::tegraX1(),
                runtime::NetworkShape::stacked(512, 512, 2, 40)});
    mf.calibrate(seqs(4, 8, 5));
    const auto ladder = mf.calibration().ladder();
    ASSERT_GE(ladder.size(), 2u);

    // Solo reference per (rung, input): whatever rung the governor
    // lands a batch on, the executed outputs must be bit-identical to
    // a runner pinned at that rung's thresholds.
    const auto inputs = seqs(6, 10, 61);
    std::vector<std::vector<tensor::Vector>> expected(ladder.size());
    for (std::size_t r = 0; r < ladder.size(); ++r) {
        mf.setThresholds(ladder[r]);
        core::ApproxRunner solo = mf.runner();
        for (const auto &s : inputs)
            expected[r].push_back(solo.classify(s));
    }
    mf.setThresholds(ladder[ladder.size() / 2]);
    for (const auto &s : seqs(4, 8, 11))
        mf.runner().classify(s);

    serve::InferenceEngine::Options opts;
    opts.maxBatch = 4;
    opts.workers = 2;
    opts.governorLadder = ladder;
    opts.planningSequences = seqs(2, 8, 5);
    // A twitchy governor: tiny hysteresis band and no dwell to force
    // many transitions while the flood runs.
    opts.governor.highQueuePerWorker = 3.0;
    opts.governor.lowQueuePerWorker = 1.0;
    opts.governor.dwellTicks = 1;
    serve::InferenceEngine engine(mf, opts);

    struct Tagged
    {
        std::size_t input = 0;
        std::future<serve::Response> fut;
    };
    std::mutex mu;
    std::vector<Tagged> futures;
    std::vector<std::thread> producers;
    for (int p = 0; p < 3; ++p) {
        producers.emplace_back([&, p] {
            // Bounded flood: enough to swing the governor both ways
            // without building an undrainable backlog in CI.
            for (int i = 0; i < 300; ++i) {
                const std::size_t which =
                    static_cast<std::size_t>(p + i) % inputs.size();
                serve::Request req;
                req.tokens = inputs[which];
                // A third of the flood carries a tight deadline, so
                // shedding races the governor transitions.
                if (i % 3 == 0)
                    req.deadlineMs = 0.05;
                try {
                    Tagged t;
                    t.input = which;
                    t.fut = engine.submit(std::move(req));
                    std::lock_guard<std::mutex> lock(mu);
                    futures.push_back(std::move(t));
                } catch (const std::runtime_error &) {
                    break;
                }
            }
        });
    }
    for (std::thread &t : producers)
        t.join();
    engine.shutdown();

    std::size_t executed = 0;
    std::size_t shed = 0;
    for (Tagged &t : futures) {
        ASSERT_TRUE(t.fut.valid());
        const serve::Response r = t.fut.get();
        ASSERT_LT(r.rung, ladder.size());
        if (r.status == serve::Status::ShedDeadline && !r.executed) {
            ++shed;
            continue;
        }
        if (!r.executed)
            continue;
        ++executed;
        EXPECT_EQ(r.logits, expected[r.rung][t.input])
            << "rung " << r.rung << " input " << t.input;
    }
    EXPECT_GE(executed, 1u);

    // Net transitions equal the final rung: the ladder walked one
    // rung at a time through the whole flood.
    const serve::InferenceEngine::Stats st = engine.stats();
    EXPECT_EQ(st.governorStepsUp - st.governorStepsDown,
              static_cast<std::uint64_t>(engine.activeRung()));
    EXPECT_EQ(st.completed, futures.size());
    EXPECT_EQ(st.shedBeforeRun + st.lateCompletions,
              st.deadlineMisses);
}

} // namespace
