/**
 * @file
 * Tests for the CTA-reorganization module (Section V-B, Fig. 12): DTID
 * decoding, prefix-sum STID -> HTID compaction, pipeline timing, and the
 * GMU routing that decides which kernels pass through it.
 */

#include <gtest/gtest.h>

#include "gpu/crm.hh"
#include "gpu/gmu.hh"

namespace {

using namespace mflstm::gpu;

class CrmTest : public ::testing::Test
{
  protected:
    GpuConfig cfg = GpuConfig::tegraX1();
    CtaReorgModule crm{cfg};
};

TEST_F(CrmTest, DecodeDisabledOneThreadPerRow)
{
    const auto mask = crm.decodeDisabled({1, 3}, 1, 6);
    const std::vector<bool> expect = {false, true, false, true, false,
                                      false};
    EXPECT_EQ(mask, expect);
}

TEST_F(CrmTest, DecodeDisabledMultipleThreadsPerRow)
{
    const auto mask = crm.decodeDisabled({1}, 4, 12);
    for (std::uint32_t t = 0; t < 12; ++t) {
        EXPECT_EQ(mask[t], t >= 4 && t < 8) << "thread " << t;
    }
}

TEST_F(CrmTest, DecodeRejectsZeroThreadsPerRow)
{
    EXPECT_THROW(crm.decodeDisabled({0}, 0, 4), std::invalid_argument);
}

TEST_F(CrmTest, ReorganizeCompactsHtids)
{
    // Rows 0 and 2 trivial out of 5 single-thread rows.
    const CrmResult res = crm.reorganize({0, 2}, 1, 5);
    EXPECT_EQ(res.activeThreads, 3u);
    EXPECT_EQ(res.disabledThreads, 2u);

    EXPECT_EQ(res.htidOf[0], CrmResult::kDisabled);
    EXPECT_EQ(res.htidOf[1], 0u);
    EXPECT_EQ(res.htidOf[2], CrmResult::kDisabled);
    EXPECT_EQ(res.htidOf[3], 1u);
    EXPECT_EQ(res.htidOf[4], 2u);
}

TEST_F(CrmTest, CompactionIsDenseAndOrderPreserving)
{
    // Arbitrary skip set: surviving HTIDs must be 0..k-1 in STID order.
    const CrmResult res = crm.reorganize({3, 4, 5, 10, 31, 32, 63}, 1,
                                         128);
    std::uint32_t expect = 0;
    for (std::uint32_t stid = 0; stid < 128; ++stid) {
        if (res.htidOf[stid] == CrmResult::kDisabled)
            continue;
        EXPECT_EQ(res.htidOf[stid], expect++);
    }
    EXPECT_EQ(expect, res.activeThreads);
    EXPECT_EQ(res.activeThreads + res.disabledThreads, 128u);
}

TEST_F(CrmTest, FullWarpsAfterCompaction)
{
    // Disable exactly one whole warp's worth of scattered rows: the
    // surviving threads pack into one fewer warp.
    std::vector<std::uint32_t> rows;
    for (std::uint32_t r = 0; r < 64; r += 2)
        rows.push_back(r);
    const CrmResult res = crm.reorganize(rows, 1, 64);
    EXPECT_EQ(res.activeThreads, 32u);
    // Every surviving HTID is below 32: one fully populated warp.
    for (std::uint32_t stid = 0; stid < 64; ++stid) {
        if (res.htidOf[stid] != CrmResult::kDisabled) {
            EXPECT_LT(res.htidOf[stid], 32u);
        }
    }
}

TEST_F(CrmTest, PipelineCyclesScaleWithThreads)
{
    const double small = crm.pipelineCycles(32);
    const double large = crm.pipelineCycles(3200);
    EXPECT_DOUBLE_EQ(small, cfg.crmPipelineCycles + 1.0);
    EXPECT_DOUBLE_EQ(large, cfg.crmPipelineCycles + 100.0);
}

TEST_F(CrmTest, SummaryMatchesFullPass)
{
    const CrmResult full = crm.reorganize({1, 2, 3}, 1, 100);
    const CrmResult sum = crm.reorganizeSummary(3, 100);
    EXPECT_EQ(full.activeThreads, sum.activeThreads);
    EXPECT_DOUBLE_EQ(full.cycles, sum.cycles);
    EXPECT_DOUBLE_EQ(full.energyJ, sum.energyJ);
}

TEST_F(CrmTest, EnergyProportionalToThreads)
{
    const CrmResult a = crm.reorganizeSummary(0, 1000);
    const CrmResult b = crm.reorganizeSummary(0, 2000);
    EXPECT_NEAR(b.energyJ / a.energyJ, 2.0, 1e-9);
}

TEST(GmuTest, RoutesOnlyRowSkipKernels)
{
    GpuConfig cfg = GpuConfig::tegraX1();
    GridManagementUnit gmu(cfg, true);

    KernelDesc plain;
    plain.ctas = 4;
    plain.threadsPerCta = 128;
    const DispatchInfo d1 = gmu.dispatch(plain);
    EXPECT_FALSE(d1.routedThroughCrm);
    EXPECT_EQ(d1.activeThreads, 512u);

    KernelDesc skip = plain;
    skip.hasRowSkipArg = true;
    skip.disabledThreads = 100;
    const DispatchInfo d2 = gmu.dispatch(skip);
    EXPECT_TRUE(d2.routedThroughCrm);
    EXPECT_EQ(d2.activeThreads, 412u);
    EXPECT_GT(d2.crmCycles, 0.0);

    EXPECT_EQ(gmu.kernelsDispatched(), 2u);
    EXPECT_EQ(gmu.kernelsThroughCrm(), 1u);
}

TEST(GmuTest, NoCrmHardwareMeansNoRouting)
{
    GpuConfig cfg = GpuConfig::tegraX1();
    GridManagementUnit gmu(cfg, false);

    KernelDesc skip;
    skip.ctas = 1;
    skip.threadsPerCta = 128;
    skip.hasRowSkipArg = true;
    skip.disabledThreads = 64;
    const DispatchInfo d = gmu.dispatch(skip);
    EXPECT_FALSE(d.routedThroughCrm);
    EXPECT_EQ(d.activeThreads, 128u);
    EXPECT_DOUBLE_EQ(d.crmCycles, 0.0);
}

} // namespace
