/**
 * @file
 * Tests for the quantized weight container and its dequantize-in-register
 * reference kernels: the per-row error bound, canonical int4 packing,
 * exact agreement between the quantized kernels and a dense GEMV over
 * the dequantized matrix, and the row-skip contract DRS relies on.
 */

#include <cmath>
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/ops.hh"
#include "tensor/qmatrix.hh"

namespace {

using namespace mflstm;
using namespace mflstm::tensor;
using quant::QuantMode;

Matrix
patternMatrix(std::size_t rows, std::size_t cols, unsigned seed = 7)
{
    // Deterministic mixed-sign, mixed-magnitude values.
    Matrix m(rows, cols);
    unsigned state = seed;
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            state = state * 1664525u + 1013904223u;
            const float u =
                static_cast<float>(state >> 8) /
                static_cast<float>(1u << 24);  // [0, 1)
            m.at(r, c) = (u - 0.5f) * 2.0f * (1.0f + 0.1f * r);
        }
    }
    return m;
}

Vector
patternVector(std::size_t n, unsigned seed = 3)
{
    Vector v(n);
    unsigned state = seed;
    for (std::size_t i = 0; i < n; ++i) {
        state = state * 1664525u + 1013904223u;
        v[i] = static_cast<float>(state >> 8) /
                   static_cast<float>(1u << 24) -
               0.5f;
    }
    return v;
}

TEST(QuantizedMatrix, Int8ErrorWithinHalfScale)
{
    const Matrix m = patternMatrix(9, 13);
    const QuantizedMatrix q = QuantizedMatrix::quantize(m, QuantMode::Int8);
    ASSERT_EQ(q.rows(), 9u);
    ASSERT_EQ(q.cols(), 13u);
    for (std::size_t r = 0; r < m.rows(); ++r) {
        for (std::size_t c = 0; c < m.cols(); ++c) {
            EXPECT_LE(std::fabs(q.dequant(r, c) - m.at(r, c)),
                      q.scale(r) / 2.0f + 1e-7f)
                << "at (" << r << ", " << c << ")";
        }
    }
}

TEST(QuantizedMatrix, Int4ErrorWithinHalfScale)
{
    const Matrix m = patternMatrix(6, 7);  // odd cols exercise packing
    const QuantizedMatrix q = QuantizedMatrix::quantize(m, QuantMode::Int4);
    for (std::size_t r = 0; r < m.rows(); ++r) {
        for (std::size_t c = 0; c < m.cols(); ++c) {
            EXPECT_LE(std::fabs(q.dequant(r, c) - m.at(r, c)),
                      q.scale(r) / 2.0f + 1e-7f);
        }
    }
}

TEST(QuantizedMatrix, CodesStayInSymmetricRange)
{
    const Matrix m = patternMatrix(8, 8);
    const QuantizedMatrix q8 = QuantizedMatrix::quantize(m, QuantMode::Int8);
    const QuantizedMatrix q4 = QuantizedMatrix::quantize(m, QuantMode::Int4);
    for (std::size_t r = 0; r < m.rows(); ++r) {
        for (std::size_t c = 0; c < m.cols(); ++c) {
            EXPECT_GE(q8.code(r, c), -127);
            EXPECT_LE(q8.code(r, c), 127);
            EXPECT_GE(q4.code(r, c), -7);
            EXPECT_LE(q4.code(r, c), 7);
        }
    }
}

TEST(QuantizedMatrix, ZeroRowGetsFiniteNonZeroScale)
{
    Matrix m(3, 4);
    m.at(1, 2) = 0.5f;  // rows 0 and 2 stay all-zero
    const QuantizedMatrix q = QuantizedMatrix::quantize(m, QuantMode::Int8);
    EXPECT_EQ(q.scale(0), 1.0f);
    EXPECT_EQ(q.scale(2), 1.0f);
    for (std::size_t c = 0; c < 4; ++c) {
        EXPECT_EQ(q.code(0, c), 0);
        EXPECT_EQ(q.dequant(0, c), 0.0f);
    }
}

TEST(QuantizedMatrix, AbsmaxIsExactlyRepresentable)
{
    // The row maximum maps to exactly +/-qmax and round-trips to itself.
    Matrix m(1, 3);
    m.at(0, 0) = 0.1f;
    m.at(0, 1) = -2.0f;  // the absmax
    m.at(0, 2) = 1.0f;
    const QuantizedMatrix q = QuantizedMatrix::quantize(m, QuantMode::Int8);
    EXPECT_EQ(q.code(0, 1), -127);
    EXPECT_FLOAT_EQ(q.dequant(0, 1), -2.0f);
}

TEST(QuantizedMatrix, Int4PackingIsCanonical)
{
    // Odd column count: the trailing byte's high nibble must be zero,
    // and packedRowBytes reflects two codes per byte.
    const Matrix m = patternMatrix(4, 5);
    const QuantizedMatrix q = QuantizedMatrix::quantize(m, QuantMode::Int4);
    EXPECT_EQ(q.packedRowBytes(), 3u);
    EXPECT_EQ(q.payload().size(), 4u * 3u);
    for (std::size_t r = 0; r < 4; ++r) {
        const std::int8_t last = q.payload()[r * 3 + 2];
        EXPECT_EQ((static_cast<unsigned>(last) >> 4) & 0xF, 0u)
            << "trailing high nibble of row " << r;
    }
}

TEST(QuantizedMatrix, FromPartsRoundTripsExactly)
{
    const Matrix m = patternMatrix(5, 6);
    for (const QuantMode mode : {QuantMode::Int8, QuantMode::Int4}) {
        const QuantizedMatrix q = QuantizedMatrix::quantize(m, mode);
        const QuantizedMatrix r = QuantizedMatrix::fromParts(
            q.rows(), q.cols(), q.mode(),
            std::vector<float>(q.scales()),
            std::vector<std::int8_t>(q.payload()));
        EXPECT_EQ(q, r);
    }
}

TEST(QuantizedMatrix, QuantizeIsIdempotent)
{
    // Quantizing an already quantize-dequantized matrix reproduces it:
    // every value is representable at its row's scale.
    const Matrix m = patternMatrix(7, 9);
    for (const QuantMode mode : {QuantMode::Int8, QuantMode::Int4}) {
        const Matrix once =
            QuantizedMatrix::quantize(m, mode).dequantize();
        const Matrix twice =
            QuantizedMatrix::quantize(once, mode).dequantize();
        EXPECT_EQ(once, twice);
    }
}

TEST(QuantKernels, GemvMatchesDequantizedDense)
{
    const Matrix m = patternMatrix(10, 12);
    const Vector x = patternVector(12);
    for (const QuantMode mode : {QuantMode::Int8, QuantMode::Int4}) {
        const QuantizedMatrix q = QuantizedMatrix::quantize(m, mode);

        Vector yq;
        gemvQuant(q, x, yq);
        Vector yd;
        gemv(q.dequantize(), x, yd);
        ASSERT_EQ(yq.size(), yd.size());
        for (std::size_t r = 0; r < yq.size(); ++r)
            EXPECT_NEAR(yq[r], yd[r], 1e-5f);
    }
}

TEST(QuantKernels, GemvWithBias)
{
    const Matrix m = patternMatrix(6, 8);
    const Vector x = patternVector(8);
    const Vector b = patternVector(6, 11);
    const QuantizedMatrix q = QuantizedMatrix::quantize(m, QuantMode::Int8);

    Vector with_bias, without_bias;
    gemvQuant(q, x, b, with_bias);
    gemvQuant(q, x, without_bias);
    for (std::size_t r = 0; r < 6; ++r)
        EXPECT_NEAR(with_bias[r], without_bias[r] + b[r], 1e-6f);
}

TEST(QuantKernels, RowSkipMatchesDenseRowSkip)
{
    const Matrix m = patternMatrix(8, 8);
    const Vector x = patternVector(8);
    const std::vector<std::uint32_t> skip = {1, 4, 7};
    const QuantizedMatrix q = QuantizedMatrix::quantize(m, QuantMode::Int8);

    Vector yq;
    gemvQuantRowSkip(q, x, skip, yq);
    Vector yd;
    gemvRowSkip(q.dequantize(), x, skip, yd);
    ASSERT_EQ(yq.size(), yd.size());
    for (std::size_t r = 0; r < yq.size(); ++r)
        EXPECT_NEAR(yq[r], yd[r], 1e-6f);
    for (const std::uint32_t r : skip)
        EXPECT_EQ(yq[r], 0.0f);
}

TEST(QuantKernels, GemmMatchesDequantizedDense)
{
    const Matrix a = patternMatrix(5, 7);
    const Matrix b = patternMatrix(7, 4, 21);
    const QuantizedMatrix q = QuantizedMatrix::quantize(a, QuantMode::Int8);

    Matrix cq;
    gemmQuant(q, b, cq);
    Matrix cd;
    gemm(q.dequantize(), b, cd);
    ASSERT_EQ(cq.rows(), cd.rows());
    ASSERT_EQ(cq.cols(), cd.cols());
    for (std::size_t r = 0; r < cq.rows(); ++r)
        for (std::size_t c = 0; c < cq.cols(); ++c)
            EXPECT_NEAR(cq.at(r, c), cd.at(r, c), 1e-5f);
}

} // namespace
