/**
 * @file
 * Tests for the GRU extension (Section II-B) and its relevance-analysis
 * adaptation.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "core/relevance.hh"
#include "nn/gru.hh"
#include "tensor/activations.hh"
#include "tensor/rng.hh"

namespace {

using namespace mflstm;
using namespace mflstm::nn;

GruLayerParams
makeParams(std::size_t in, std::size_t hid, std::uint64_t seed)
{
    GruLayerParams p(in, hid);
    tensor::Rng rng(seed);
    p.init(rng);
    return p;
}

TEST(GruParams, ShapesAndUnitedW)
{
    const GruLayerParams p = makeParams(3, 5, 1);
    EXPECT_EQ(p.inputSize(), 3u);
    EXPECT_EQ(p.hiddenSize(), 5u);
    const tensor::Matrix w = p.unitedW();
    EXPECT_EQ(w.rows(), 15u);
    EXPECT_EQ(w.cols(), 3u);
    EXPECT_FLOAT_EQ(w(0, 0), p.wz(0, 0));
    EXPECT_FLOAT_EQ(w(5, 1), p.wr(0, 1));
    EXPECT_FLOAT_EQ(w(10, 2), p.wh(0, 2));
}

TEST(GruCell, ScalarCaseMatchesHandComputation)
{
    GruLayerParams p(1, 1);
    p.wz(0, 0) = 0.5f;
    p.wr(0, 0) = 0.4f;
    p.wh(0, 0) = 0.3f;
    p.uz(0, 0) = 0.1f;
    p.ur(0, 0) = -0.2f;
    p.uh(0, 0) = 0.25f;
    p.bz[0] = 0.05f;

    const float x = 0.6f;
    const float h_prev = -0.3f;
    tensor::Vector x_proj{0.5f * x, 0.4f * x, 0.3f * x};
    tensor::Vector hp{h_prev};

    const auto h = gruCellForward(p, x_proj, hp);

    const float z = tensor::sigmoid(0.5f * x + 0.1f * h_prev + 0.05f);
    const float r = tensor::sigmoid(0.4f * x - 0.2f * h_prev);
    const float g = std::tanh(0.3f * x + 0.25f * (r * h_prev));
    EXPECT_NEAR(h[0], (1.0f - z) * h_prev + z * g, 1e-6f);
}

TEST(GruCell, OutputBounded)
{
    const GruLayerParams p = makeParams(4, 8, 2);
    tensor::Rng rng(3);
    tensor::Vector h(8);
    for (int t = 0; t < 40; ++t) {
        tensor::Vector proj(24);
        for (std::size_t j = 0; j < 24; ++j)
            proj[j] = rng.uniform(-3.0f, 3.0f);
        h = gruCellForward(p, proj, h);
        for (std::size_t j = 0; j < 8; ++j) {
            EXPECT_GE(h[j], -1.0f);
            EXPECT_LE(h[j], 1.0f);
        }
    }
}

TEST(GruCell, UpdateGatePinnedLowPreservesState)
{
    // b_z very negative: z ~ 0 so h_t ~ h_{t-1} (the GRU's "remember").
    GruLayerParams p = makeParams(2, 4, 4);
    for (std::size_t j = 0; j < 4; ++j)
        p.bz[j] = -30.0f;

    tensor::Vector h_prev{0.4f, -0.2f, 0.7f, 0.0f};
    const auto h = gruCellForward(p, tensor::Vector(12, 0.3f), h_prev);
    for (std::size_t j = 0; j < 4; ++j)
        EXPECT_NEAR(h[j], h_prev[j], 1e-4f);
}

TEST(GruLayer, ForwardShapesAndDeterminism)
{
    const GruLayerParams p = makeParams(3, 6, 5);
    std::vector<tensor::Vector> xs(7, tensor::Vector(3, 0.2f));
    const auto a = gruLayerForward(p, xs);
    const auto b = gruLayerForward(p, xs);
    ASSERT_EQ(a.size(), 7u);
    for (std::size_t t = 0; t < 7; ++t)
        EXPECT_EQ(a[t], b[t]);
}

TEST(GruRelevance, ZeroWhenUpdateGatePinned)
{
    // All-zero recurrent weights (D = 0) and saturated projections:
    // the link carries nothing.
    GruLayerParams p(1, 4);
    const core::GruRelevanceContext ctx(p);
    tensor::Vector proj(12, 10.0f);
    EXPECT_DOUBLE_EQ(ctx.relevance(p, proj), 0.0);
}

TEST(GruRelevance, PositiveInSensitiveRegime)
{
    const GruLayerParams p = makeParams(2, 6, 7);
    const core::GruRelevanceContext ctx(p);
    EXPECT_GT(ctx.relevance(p, tensor::Vector(18, 0.1f)), 0.0);
}

TEST(GruRelevance, MonotoneInInputSaturation)
{
    const GruLayerParams p = makeParams(2, 6, 8);
    const core::GruRelevanceContext ctx(p);
    EXPECT_GE(ctx.relevance(p, tensor::Vector(18, 0.1f)),
              ctx.relevance(p, tensor::Vector(18, 8.0f)));
}

TEST(GruRelevance, RejectsWrongSize)
{
    const GruLayerParams p = makeParams(2, 6, 9);
    const core::GruRelevanceContext ctx(p);
    EXPECT_THROW(ctx.relevance(p, tensor::Vector(12)),
                 std::invalid_argument);
}

} // namespace
