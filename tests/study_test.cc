/**
 * @file
 * Tests for the user-study simulation (Section VI-E): the satisfaction
 * model, population sampling, and the scheme ordering the paper reports
 * in Fig. 18 (UO > AO > Baseline, BPA penalised for accuracy loss).
 */

#include <gtest/gtest.h>

#include "study/study.hh"

namespace {

using namespace mflstm;
using namespace mflstm::study;

std::vector<core::OperatingPoint>
tradeoffCurve()
{
    std::vector<core::OperatingPoint> pts;
    const double speedups[] = {1.0, 1.4, 1.8, 2.1, 2.4, 2.6,
                               2.8, 3.0, 3.1, 3.2, 3.3};
    const double accs[] = {0.92, 0.92, 0.915, 0.91, 0.905, 0.90,
                           0.89, 0.86, 0.80, 0.72, 0.60};
    for (std::size_t i = 0; i < 11; ++i)
        pts.push_back({i, {}, speedups[i], accs[i]});
    return pts;
}

TEST(Satisfaction, BaselineIsNeutral)
{
    UserProfile u;
    const double s = satisfactionScore(u, 1.0, 0.9, 0.9, 0.0);
    EXPECT_DOUBLE_EQ(s, 3.0);
}

TEST(Satisfaction, SpeedupRaisesScore)
{
    UserProfile u;
    const double fast = satisfactionScore(u, 2.5, 0.9, 0.9, 0.0);
    EXPECT_GT(fast, 3.0);
}

TEST(Satisfaction, AccuracyLossLowersScore)
{
    UserProfile u;
    const double same_speed = satisfactionScore(u, 1.0, 0.8, 0.9, 0.0);
    EXPECT_LT(same_speed, 3.0);
}

TEST(Satisfaction, ClampedToScale)
{
    UserProfile u;
    u.delayReward = 100.0;
    EXPECT_DOUBLE_EQ(satisfactionScore(u, 100.0, 0.9, 0.9, 0.0), 5.0);
    u.accuracyPenalty = 100.0;
    EXPECT_DOUBLE_EQ(satisfactionScore(u, 1.0, 0.0, 0.9, 0.0), 1.0);
}

TEST(Satisfaction, SlowdownPenalised)
{
    UserProfile u;
    EXPECT_LT(satisfactionScore(u, 0.6, 0.9, 0.9, 0.0), 3.0);
}

TEST(Population, DeterministicAndHeterogeneous)
{
    const auto a = samplePopulation(30, 7, 0.9);
    const auto b = samplePopulation(30, 7, 0.9);
    ASSERT_EQ(a.size(), 30u);
    for (std::size_t i = 0; i < 30; ++i) {
        EXPECT_DOUBLE_EQ(a[i].delayReward, b[i].delayReward);
        EXPECT_DOUBLE_EQ(a[i].minAccuracy, b[i].minAccuracy);
    }
    bool differs = false;
    for (std::size_t i = 1; i < 30; ++i)
        differs |= a[i].delayReward != a[0].delayReward;
    EXPECT_TRUE(differs);
    for (const UserProfile &u : a) {
        EXPECT_LT(u.minAccuracy, 0.9);
        EXPECT_GT(u.minAccuracy, 0.8);
    }
}

TEST(UserStudy, ReproducesFig18Ordering)
{
    const auto pts = tradeoffCurve();
    const std::size_t ao = core::selectAo(pts, 0.92, 2.0);
    const std::size_t bpa = core::selectBpa(pts);
    const StudyResult res = runUserStudy(pts, 0.92, ao, bpa);

    // Fig. 18: AO beats the baseline (faster, imperceptible loss)...
    EXPECT_GT(res.score(Scheme::Ao), res.score(Scheme::Baseline));
    // ...BPA trades too much accuracy to please most users...
    EXPECT_LT(res.score(Scheme::Bpa), res.score(Scheme::Ao));
    // ...and UO, tuned per user, is the best of all four.
    EXPECT_GE(res.score(Scheme::Uo), res.score(Scheme::Ao) - 1e-9);
    EXPECT_GT(res.score(Scheme::Uo), res.score(Scheme::Baseline));

    for (Scheme s : {Scheme::Baseline, Scheme::Ao, Scheme::Bpa,
                     Scheme::Uo}) {
        EXPECT_GE(res.score(s), 1.0);
        EXPECT_LE(res.score(s), 5.0);
    }
}

TEST(UserStudy, DeterministicGivenSeed)
{
    const auto pts = tradeoffCurve();
    const StudyResult a = runUserStudy(pts, 0.92, 5, 8);
    const StudyResult b = runUserStudy(pts, 0.92, 5, 8);
    for (std::size_t s = 0; s < 4; ++s)
        EXPECT_DOUBLE_EQ(a.meanScore[s], b.meanScore[s]);

    ReplayConfig cfg;
    cfg.seed = 99;
    const StudyResult c = runUserStudy(pts, 0.92, 5, 8, cfg);
    EXPECT_NE(a.meanScore[1], c.meanScore[1]);
}

TEST(UserStudy, ValidatesInputs)
{
    EXPECT_THROW(runUserStudy({}, 0.9, 0, 0), std::invalid_argument);
    const auto pts = tradeoffCurve();
    EXPECT_THROW(runUserStudy(pts, 0.9, 99, 0), std::out_of_range);
}

TEST(UserStudy, SchemeNames)
{
    EXPECT_STREQ(toString(Scheme::Baseline), "Baseline");
    EXPECT_STREQ(toString(Scheme::Ao), "AO");
    EXPECT_STREQ(toString(Scheme::Bpa), "BPA");
    EXPECT_STREQ(toString(Scheme::Uo), "UO");
}

} // namespace
