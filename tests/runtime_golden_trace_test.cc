/**
 * @file
 * Golden-trace regression layer (ISSUE 8): for every Table II
 * application x plan kind x {fp32, int8}, the lowered KernelDesc stream
 * is reduced to a per-class signature (kernel counts plus every byte /
 * work field the timing and attribution models consume, printed at full
 * double precision) and diffed against a checked-in fixture under
 * tests/golden/. Any lowering change that moves a single byte in any
 * plan kind shows up as a one-line diff in the fixture it touched.
 *
 * Regenerating after an *intentional* lowering change:
 *
 *     MFLSTM_UPDATE_GOLDEN=1 ctest -R GoldenTrace
 *
 * then review the fixture diff like any other code change.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "gpu/config.hh"
#include "quant/qformat.hh"
#include "runtime/lowering.hh"
#include "workloads/benchmarks.hh"

#ifndef MFLSTM_GOLDEN_DIR
#error "MFLSTM_GOLDEN_DIR must point at the fixture directory"
#endif

namespace {

using namespace mflstm;
using runtime::ExecutionPlan;
using runtime::PlanKind;

constexpr PlanKind kKinds[] = {
    PlanKind::Baseline,    PlanKind::InterCell,
    PlanKind::IntraCellSw, PlanKind::IntraCellHw,
    PlanKind::Combined,    PlanKind::ZeroPruning,
    PlanKind::Persistent,
};

constexpr quant::QuantMode kModes[] = {quant::QuantMode::Fp32,
                                       quant::QuantMode::Int8};

/**
 * Deterministic structurally-complete plan for @p kind (same synthetic
 * construction as the conservation sweep): aligned tissues of four
 * cells, the paper's ~35% DRS skip regime, 30% comparator pruning.
 */
ExecutionPlan
planFor(PlanKind kind, const runtime::NetworkShape &shape,
        quant::QuantMode qm)
{
    ExecutionPlan plan;
    plan.kind = kind;
    plan.quantMode = qm;
    if (plan.usesInter()) {
        for (const runtime::LstmLayerShape &layer : shape.layers) {
            runtime::LayerInterPlan ip;
            std::size_t left = layer.length;
            while (left > 0) {
                const std::size_t t = std::min<std::size_t>(4, left);
                ip.tissueSizes.push_back(t);
                left -= t;
            }
            plan.inter.push_back(std::move(ip));
        }
    }
    if (plan.usesIntra())
        plan.intra.assign(shape.layers.size(),
                          runtime::LayerIntraPlan{0.35});
    if (kind == PlanKind::ZeroPruning)
        plan.pruneFraction = 0.3;
    return plan;
}

std::string
fmt(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

/** Per-class aggregate of every model-visible KernelDesc field. */
struct ClassSignature
{
    std::size_t count = 0;
    double ctas = 0.0, threads = 0.0, flops = 0.0;
    double dramRead = 0.0, dramWrite = 0.0, l2 = 0.0, shared = 0.0;
    double weight = 0.0, scale = 0.0, crmMeta = 0.0, spill = 0.0;
    double reload = 0.0, pinned = 0.0, qelems = 0.0;
    double syncs = 0.0, disabled = 0.0;
};

std::string
traceSignature(const gpu::KernelTrace &trace)
{
    std::map<std::string, ClassSignature> by_class;
    for (const gpu::KernelDesc &k : trace) {
        ClassSignature &s = by_class[gpu::toString(k.klass)];
        ++s.count;
        s.ctas += k.ctas;
        s.threads += k.totalThreads();
        s.flops += k.flops;
        s.dramRead += k.dramReadBytes;
        s.dramWrite += k.dramWriteBytes;
        s.l2 += k.l2AccessBytes;
        s.shared += k.sharedBytes;
        s.weight += k.dramWeightBytes;
        s.scale += k.dramScaleBytes;
        s.crmMeta += k.dramCrmMetaBytes;
        s.spill += k.dramSpillBytes;
        s.reload += k.dramResidencyReloadBytes;
        s.pinned += k.residencyPinnedBytes;
        s.qelems += k.quantWeightElems;
        s.syncs += k.syncsPerCta;
        s.disabled += k.disabledThreads;
    }

    std::ostringstream os;
    os << "kernels " << trace.size() << "\n";
    for (const auto &entry : by_class) {
        const ClassSignature &s = entry.second;
        os << entry.first << " count " << s.count << " ctas "
           << fmt(s.ctas) << " threads " << fmt(s.threads) << " flops "
           << fmt(s.flops) << " dram_read " << fmt(s.dramRead)
           << " dram_write " << fmt(s.dramWrite) << " l2 " << fmt(s.l2)
           << " shared " << fmt(s.shared) << " weight " << fmt(s.weight)
           << " scale " << fmt(s.scale) << " crm " << fmt(s.crmMeta)
           << " spill " << fmt(s.spill) << " reload " << fmt(s.reload)
           << " pinned " << fmt(s.pinned) << " qelems " << fmt(s.qelems)
           << " syncs " << fmt(s.syncs) << " disabled "
           << fmt(s.disabled) << "\n";
    }
    return os.str();
}

/** The full fixture body for one plan kind: every app x precision. */
std::string
fixtureFor(PlanKind kind)
{
    // Named: Lowering keeps a reference to its GpuConfig.
    const gpu::GpuConfig cfg = gpu::GpuConfig::tegraX1();
    const runtime::Lowering lowering(cfg);
    std::ostringstream os;
    for (const workloads::BenchmarkSpec &spec : workloads::tableII()) {
        const runtime::NetworkShape shape = spec.timingShape();
        for (quant::QuantMode qm : kModes) {
            os << "[" << spec.name << "/" << runtime::toString(kind)
               << "/" << quant::toString(qm) << "]\n"
               << traceSignature(
                      lowering.lower(shape, planFor(kind, shape, qm), 1));
        }
    }
    return os.str();
}

std::string
fixturePath(PlanKind kind)
{
    return std::string(MFLSTM_GOLDEN_DIR) + "/trace_" +
           runtime::toString(kind) + ".txt";
}

class GoldenTrace : public ::testing::TestWithParam<PlanKind>
{
};

TEST_P(GoldenTrace, LoweredSignatureMatchesFixture)
{
    const PlanKind kind = GetParam();
    const std::string got = fixtureFor(kind);
    const std::string path = fixturePath(kind);

    if (std::getenv("MFLSTM_UPDATE_GOLDEN")) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << got;
        return;
    }

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in) << "missing fixture " << path
                    << " — run with MFLSTM_UPDATE_GOLDEN=1 to create it";
    std::stringstream want;
    want << in.rdbuf();

    // Line-by-line so a failure names the first divergent signature
    // instead of dumping two multi-kilobyte blobs.
    std::istringstream gs(got), ws(want.str());
    std::string gline, wline;
    std::size_t line = 0;
    while (std::getline(ws, wline)) {
        ++line;
        ASSERT_TRUE(std::getline(gs, gline))
            << path << ":" << line << ": fixture has more lines than "
            << "the lowered signature (first missing: " << wline << ")";
        EXPECT_EQ(gline, wline) << path << ":" << line;
    }
    EXPECT_FALSE(std::getline(gs, gline))
        << path << ": lowered signature has extra lines (first: "
        << gline << ")";
}

INSTANTIATE_TEST_SUITE_P(
    AllPlanKinds, GoldenTrace, ::testing::ValuesIn(kKinds),
    [](const ::testing::TestParamInfo<PlanKind> &info) {
        std::string name = runtime::toString(info.param);
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

} // namespace
