/**
 * @file
 * Tests for the span tracer and host-phase spans: Chrome trace-event
 * output is parsed back and checked for per-track monotonic timestamps,
 * track metadata, and correct phase nesting.
 */

#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.hh"
#include "obs/observer.hh"
#include "obs/trace.hh"

namespace {

using namespace mflstm::obs;

TraceSpan
gpuSpan(const std::string &name, int tid, double start, double dur)
{
    TraceSpan s;
    s.name = name;
    s.category = "kernel";
    s.pid = SpanTracer::kGpuPid;
    s.tid = tid;
    s.startUs = start;
    s.durUs = dur;
    return s;
}

TEST(Trace, RecordsSpansInOrder)
{
    SpanTracer t;
    EXPECT_TRUE(t.empty());
    t.record(gpuSpan("a", 0, 0.0, 1.0));
    t.record(gpuSpan("b", 0, 1.0, 2.0));
    ASSERT_EQ(t.spans().size(), 2u);
    EXPECT_EQ(t.spans()[0].name, "a");
    EXPECT_EQ(t.spans()[1].name, "b");
    EXPECT_EQ(t.droppedSpans(), 0u);
}

TEST(Trace, SimCursorAdvances)
{
    SpanTracer t;
    EXPECT_DOUBLE_EQ(t.simCursorUs(), 0.0);
    t.advanceSimCursor(12.5);
    t.advanceSimCursor(7.5);
    EXPECT_DOUBLE_EQ(t.simCursorUs(), 20.0);
}

TEST(Trace, ChromeTraceParsesWithTrackMetadata)
{
    SpanTracer t;
    t.setTrackName(SpanTracer::kGpuPid, 0, "SM 0");
    t.setTrackName(SpanTracer::kGpuPid, 1, "SM 1");
    t.record(gpuSpan("k0", 0, 0.0, 3.0));
    t.record(gpuSpan("k1", 1, 3.0, 2.0));

    std::ostringstream os;
    t.writeChromeTrace(os);
    const auto doc = parseJson(os.str());
    ASSERT_TRUE(doc.has_value());

    const JsonValue *events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->kind, JsonValue::Kind::Array);

    std::size_t meta = 0;
    std::size_t complete = 0;
    bool saw_gpu_process = false;
    bool saw_sm1 = false;
    for (const JsonValue &ev : events->items) {
        const JsonValue *ph = ev.find("ph");
        ASSERT_NE(ph, nullptr);
        if (ph->str == "M") {
            ++meta;
            const JsonValue *args = ev.find("args");
            ASSERT_NE(args, nullptr);
            const JsonValue *name = args->find("name");
            ASSERT_NE(name, nullptr);
            if (name->str == "GPU (simulated time)")
                saw_gpu_process = true;
            if (name->str == "SM 1")
                saw_sm1 = true;
        } else if (ph->str == "X") {
            ++complete;
            EXPECT_NE(ev.find("ts"), nullptr);
            EXPECT_NE(ev.find("dur"), nullptr);
        }
    }
    // 2 process_name + 2 thread_name metadata events, 2 spans.
    EXPECT_EQ(meta, 4u);
    EXPECT_EQ(complete, 2u);
    EXPECT_TRUE(saw_gpu_process);
    EXPECT_TRUE(saw_sm1);
}

TEST(Trace, TimestampsStrictlyIncreasePerTrack)
{
    SpanTracer t;
    // Interleaved tracks; each track's own ts sequence must ascend.
    t.record(gpuSpan("a0", 0, 0.0, 1.0));
    t.record(gpuSpan("b0", 1, 0.0, 4.0));
    t.record(gpuSpan("a1", 0, 1.0, 1.0));
    t.record(gpuSpan("a2", 0, 2.5, 1.0));
    t.record(gpuSpan("b1", 1, 4.0, 1.0));

    std::ostringstream os;
    t.writeChromeTrace(os);
    const auto doc = parseJson(os.str());
    ASSERT_TRUE(doc.has_value());
    const JsonValue *events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);

    std::map<std::pair<double, double>, std::vector<double>> perTrack;
    for (const JsonValue &ev : events->items) {
        if (ev.find("ph")->str != "X")
            continue;
        perTrack[{ev.find("pid")->number, ev.find("tid")->number}]
            .push_back(ev.find("ts")->number);
    }
    ASSERT_EQ(perTrack.size(), 2u);
    for (const auto &[track, ts] : perTrack) {
        for (std::size_t i = 1; i < ts.size(); ++i)
            EXPECT_LT(ts[i - 1], ts[i])
                << "track tid=" << track.second << " event " << i;
    }
}

TEST(Trace, ArgsSurviveTheJsonRoundTrip)
{
    SpanTracer t;
    TraceSpan s = gpuSpan("Sgemm", 0, 0.0, 5.0);
    s.numArgs = {{"flops", 1e6}, {"layer", 2.0}};
    s.strArgs = {{"class", "Sgemm"}};
    t.record(std::move(s));

    std::ostringstream os;
    t.writeChromeTrace(os);
    const auto doc = parseJson(os.str());
    ASSERT_TRUE(doc.has_value());
    const JsonValue &ev = doc->find("traceEvents")->items.back();
    const JsonValue *args = ev.find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_DOUBLE_EQ(args->find("flops")->number, 1e6);
    EXPECT_DOUBLE_EQ(args->find("layer")->number, 2.0);
    EXPECT_EQ(args->find("class")->str, "Sgemm");
}

TEST(Trace, PhaseSpansNestInnerInsideOuter)
{
    Observer obs;
    {
        auto outer = Observer::phase(&obs, "outer");
        {
            auto inner = Observer::phase(&obs, "inner");
        }
        {
            auto inner2 = Observer::phase(&obs, "inner2");
        }
    }

    const auto &spans = obs.tracer().spans();
    // Spans record on close: inner, inner2, outer.
    ASSERT_EQ(spans.size(), 3u);
    EXPECT_EQ(spans[0].name, "inner");
    EXPECT_EQ(spans[1].name, "inner2");
    EXPECT_EQ(spans[2].name, "outer");

    const TraceSpan &outer = spans[2];
    for (std::size_t i = 0; i < 2; ++i) {
        const TraceSpan &inner = spans[i];
        EXPECT_EQ(inner.pid, SpanTracer::kHostPid);
        EXPECT_GE(inner.startUs, outer.startUs);
        EXPECT_LE(inner.startUs + inner.durUs,
                  outer.startUs + outer.durUs);
    }
    // inner2 starts after inner ends (sequential scopes).
    EXPECT_GE(spans[1].startUs, spans[0].startUs + spans[0].durUs);
}

TEST(Trace, NullObserverPhaseIsInert)
{
    // Must not crash and must record nothing anywhere.
    auto ph = Observer::phase(nullptr, "nothing");
    ph.close();
    ph.close();  // idempotent

    Observer obs;
    {
        auto real = Observer::phase(&obs, "real");
        auto moved = std::move(real);
        // The moved-from phase must not double-record.
    }
    EXPECT_EQ(obs.tracer().spans().size(), 1u);
    EXPECT_EQ(obs.tracer().spans()[0].name, "real");
}

} // namespace
