/**
 * @file
 * Tests for the result-reporting helpers (tables + CSV).
 */

#include <sstream>

#include <gtest/gtest.h>

#include "runtime/report.hh"

namespace {

using namespace mflstm;
using namespace mflstm::runtime;

RunReport
someRun()
{
    NetworkExecutor ex(gpu::GpuConfig::tegraX1());
    ExecutionPlan plan;
    return ex.run(NetworkShape::stacked(256, 256, 1, 8), plan);
}

TEST(Report, FormatRunMentionsKeyQuantities)
{
    const RunReport r = someRun();
    const std::string s = formatRunReport(r);
    EXPECT_NE(s.find("plan: baseline"), std::string::npos);
    EXPECT_NE(s.find("wall time"), std::string::npos);
    EXPECT_NE(s.find("DRAM traffic"), std::string::npos);
    EXPECT_NE(s.find("Sgemv"), std::string::npos);
    EXPECT_NE(s.find("energy"), std::string::npos);
}

TEST(Report, ComparisonShowsSpeedup)
{
    NetworkExecutor ex(gpu::GpuConfig::tegraX1());
    const auto shape = NetworkShape::stacked(256, 256, 1, 8);
    ExecutionPlan base;
    ExecutionPlan inter;
    inter.kind = PlanKind::InterCell;
    LayerInterPlan ip;
    ip.tissueSizes = {4, 4};
    inter.inter = {ip};

    const RunReport rb = ex.run(shape, base);
    const RunReport ri = ex.run(shape, inter);
    const std::string s = formatComparison(rb, ri);
    EXPECT_NE(s.find("inter-cell vs baseline"), std::string::npos);
    EXPECT_NE(s.find("x)"), std::string::npos);
    EXPECT_NE(s.find("% saved"), std::string::npos);
}

TEST(Report, CsvRowMatchesHeaderArity)
{
    const RunReport r = someRun();
    const std::string header = runCsvHeader();
    const std::string row = runCsvRow("unit", r);

    const auto count = [](const std::string &s) {
        return std::count(s.begin(), s.end(), ',');
    };
    EXPECT_EQ(count(header), count(row));
    EXPECT_EQ(row.rfind("unit,baseline,", 0), 0u);
}

TEST(Report, TraceCsvOneRowPerKernel)
{
    NetworkExecutor ex(gpu::GpuConfig::tegraX1());
    ExecutionPlan plan;
    const auto trace = ex.lowering().lower(
        NetworkShape::stacked(128, 128, 1, 4), plan);

    std::ostringstream os;
    writeTraceCsv(os, trace);
    const std::string s = os.str();
    EXPECT_EQ(static_cast<std::size_t>(
                  std::count(s.begin(), s.end(), '\n')),
              trace.size() + 1);  // header + rows
    EXPECT_NE(s.find("Sgemm(W_fico, x)"), std::string::npos);
}

} // namespace
