/**
 * @file
 * Tests for the result-reporting helpers (tables, CSV, JSON).
 */

#include <sstream>

#include <gtest/gtest.h>

#include "obs/json.hh"
#include "runtime/report.hh"

namespace {

using namespace mflstm;
using namespace mflstm::runtime;

RunReport
someRun()
{
    NetworkExecutor ex(gpu::GpuConfig::tegraX1());
    ExecutionPlan plan;
    return ex.run(NetworkShape::stacked(256, 256, 1, 8), plan);
}

TEST(Report, FormatRunMentionsKeyQuantities)
{
    const RunReport r = someRun();
    const std::string s = formatRunReport(r);
    EXPECT_NE(s.find("plan: baseline"), std::string::npos);
    EXPECT_NE(s.find("wall time"), std::string::npos);
    EXPECT_NE(s.find("DRAM traffic"), std::string::npos);
    EXPECT_NE(s.find("Sgemv"), std::string::npos);
    EXPECT_NE(s.find("energy"), std::string::npos);
}

TEST(Report, ComparisonShowsSpeedup)
{
    NetworkExecutor ex(gpu::GpuConfig::tegraX1());
    const auto shape = NetworkShape::stacked(256, 256, 1, 8);
    ExecutionPlan base;
    ExecutionPlan inter;
    inter.kind = PlanKind::InterCell;
    LayerInterPlan ip;
    ip.tissueSizes = {4, 4};
    inter.inter = {ip};

    const RunReport rb = ex.run(shape, base);
    const RunReport ri = ex.run(shape, inter);
    const std::string s = formatComparison(rb, ri);
    EXPECT_NE(s.find("inter-cell vs baseline"), std::string::npos);
    EXPECT_NE(s.find("x)"), std::string::npos);
    EXPECT_NE(s.find("% saved"), std::string::npos);
}

TEST(Report, CsvRowMatchesHeaderArity)
{
    const RunReport r = someRun();
    const std::string header = runCsvHeader();
    const std::string row = runCsvRow("unit", r);

    const auto count = [](const std::string &s) {
        return std::count(s.begin(), s.end(), ',');
    };
    EXPECT_EQ(count(header), count(row));
    EXPECT_EQ(row.rfind("unit,baseline,", 0), 0u);
}

TEST(Report, TraceCsvOneRowPerKernel)
{
    NetworkExecutor ex(gpu::GpuConfig::tegraX1());
    ExecutionPlan plan;
    const auto trace = ex.lowering().lower(
        NetworkShape::stacked(128, 128, 1, 4), plan);

    std::ostringstream os;
    writeTraceCsv(os, trace);
    const std::string s = os.str();
    EXPECT_EQ(static_cast<std::size_t>(
                  std::count(s.begin(), s.end(), '\n')),
              trace.size() + 1);  // header + rows
    EXPECT_NE(s.find("Sgemm(W_fico, x)"), std::string::npos);
}

TEST(Report, CsvEscapePassesCleanFieldsThrough)
{
    EXPECT_EQ(csvEscape("IMDB"), "IMDB");
    EXPECT_EQ(csvEscape(""), "");
    EXPECT_EQ(csvEscape("a b.c-d"), "a b.c-d");
}

TEST(Report, CsvEscapeQuotesSpecialCharacters)
{
    EXPECT_EQ(csvEscape("a,b"), "\"a,b\"");
    EXPECT_EQ(csvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(csvEscape("two\nlines"), "\"two\nlines\"");
    EXPECT_EQ(csvEscape("cr\rhere"), "\"cr\rhere\"");
}

TEST(Report, CsvRowEscapesInjectedLabel)
{
    const RunReport r = someRun();
    const std::string row = runCsvRow("evil,label\"x", r);
    // The label must occupy exactly one (quoted) field.
    EXPECT_EQ(row.rfind("\"evil,label\"\"x\",baseline,", 0), 0u);

    const std::string header = runCsvHeader();
    // Count separators outside quoted fields.
    long commas = 0;
    bool quoted = false;
    for (char c : row) {
        if (c == '"')
            quoted = !quoted;
        else if (c == ',' && !quoted)
            ++commas;
    }
    EXPECT_EQ(commas, std::count(header.begin(), header.end(), ','));
}

TEST(Report, TraceCsvEscapesKernelNames)
{
    NetworkExecutor ex(gpu::GpuConfig::tegraX1());
    ExecutionPlan plan;
    const auto trace = ex.lowering().lower(
        NetworkShape::stacked(128, 128, 1, 4), plan);

    std::ostringstream os;
    writeTraceCsv(os, trace);
    // Kernel names contain commas ("Sgemm(W_fico, x)"): rows must
    // quote them so every row keeps the header's column count.
    EXPECT_NE(os.str().find("\"Sgemm(W_fico, x)\""), std::string::npos);
}

TEST(Report, JsonMatchesCsvNumbers)
{
    const RunReport r = someRun();
    const std::string json = runReportJson("unit", r);
    const auto doc = obs::parseJson(json);
    ASSERT_TRUE(doc.has_value());
    ASSERT_EQ(doc->kind, obs::JsonValue::Kind::Object);

    EXPECT_EQ(doc->find("label")->str, "unit");
    EXPECT_EQ(doc->find("plan")->str, "baseline");
    EXPECT_DOUBLE_EQ(doc->find("time_us")->number, r.result.timeUs);
    EXPECT_DOUBLE_EQ(doc->find("kernels")->number,
                     static_cast<double>(r.result.kernelCount));
    EXPECT_DOUBLE_EQ(doc->find("dram_bytes")->number,
                     r.result.dramBytes);
    EXPECT_DOUBLE_EQ(doc->find("flops")->number, r.result.flops);
    const obs::JsonValue *energy = doc->find("energy_j");
    ASSERT_NE(energy, nullptr);
    EXPECT_DOUBLE_EQ(energy->find("total")->number,
                     r.result.energy.totalJ());
    EXPECT_DOUBLE_EQ(energy->find("static")->number,
                     r.result.energy.staticJ);
    const obs::JsonValue *stalls = doc->find("stall_cycles");
    ASSERT_NE(stalls, nullptr);
    EXPECT_DOUBLE_EQ(stalls->find("offchip_memory")->number,
                     r.result.stalls.offChipMemory);
    const obs::JsonValue *per_class = doc->find("time_per_class_us");
    ASSERT_NE(per_class, nullptr);
    EXPECT_FALSE(per_class->members.empty());
}

} // namespace
