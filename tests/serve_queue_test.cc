/**
 * @file
 * Tests for the serving layer's request queue and dynamic batcher:
 * priority-then-FIFO ordering, close semantics (drain, don't drop),
 * and the batcher's packing invariants (1..maxBatch items, ordered,
 * never blocking once the first request arrived).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <utility>
#include <vector>

#include "serve/batcher.hh"
#include "serve/queue.hh"

namespace {

using namespace mflstm;
using namespace mflstm::serve;

QueuedRequest
makeItem(std::uint64_t seq, int priority = 0)
{
    QueuedRequest item;
    item.request.tokens = {1};
    item.request.priority = priority;
    item.id = seq + 1;
    item.seq = seq;
    item.enqueued = std::chrono::steady_clock::now();
    return item;
}

bool
admitted(RequestQueue &q, QueuedRequest item,
         std::vector<QueuedRequest> *bounced = nullptr)
{
    return q.push(std::move(item), bounced) ==
           RequestQueue::PushOutcome::Admitted;
}

TEST(RequestQueue, FifoWithinOnePriority)
{
    RequestQueue q;
    for (std::uint64_t s = 0; s < 5; ++s)
        ASSERT_TRUE(admitted(q, makeItem(s)));
    EXPECT_EQ(q.size(), 5u);

    for (std::uint64_t s = 0; s < 5; ++s) {
        QueuedRequest out;
        ASSERT_TRUE(q.popWait(out));
        EXPECT_EQ(out.seq, s);
    }
    EXPECT_EQ(q.size(), 0u);
}

TEST(RequestQueue, HigherPriorityDrainsFirst)
{
    RequestQueue q;
    ASSERT_TRUE(admitted(q, makeItem(0, 0)));
    ASSERT_TRUE(admitted(q, makeItem(1, 5)));
    ASSERT_TRUE(admitted(q, makeItem(2, 1)));
    ASSERT_TRUE(admitted(q, makeItem(3, 5)));

    QueuedRequest out;
    ASSERT_TRUE(q.popWait(out));
    EXPECT_EQ(out.seq, 1u);  // priority 5, earliest
    ASSERT_TRUE(q.popWait(out));
    EXPECT_EQ(out.seq, 3u);  // priority 5, later
    ASSERT_TRUE(q.popWait(out));
    EXPECT_EQ(out.seq, 2u);  // priority 1
    ASSERT_TRUE(q.popWait(out));
    EXPECT_EQ(out.seq, 0u);  // priority 0
}

TEST(RequestQueue, DrainRespectsLimitAndOrder)
{
    RequestQueue q;
    for (std::uint64_t s = 0; s < 6; ++s)
        ASSERT_TRUE(admitted(q, makeItem(s, s % 2 ? 1 : 0)));

    std::vector<QueuedRequest> out;
    EXPECT_EQ(q.drain(out, 4), 4u);
    ASSERT_EQ(out.size(), 4u);
    // Priority 1 items (seq 1, 3, 5) first, then the oldest priority 0.
    EXPECT_EQ(out[0].seq, 1u);
    EXPECT_EQ(out[1].seq, 3u);
    EXPECT_EQ(out[2].seq, 5u);
    EXPECT_EQ(out[3].seq, 0u);
    EXPECT_EQ(q.size(), 2u);

    EXPECT_EQ(q.drain(out, 10), 2u);
    EXPECT_EQ(q.drain(out, 10), 0u);  // empty: non-blocking no-op
}

TEST(RequestQueue, CloseRejectsPushesButDrainsRemainder)
{
    RequestQueue q;
    ASSERT_TRUE(admitted(q, makeItem(0)));
    q.close();
    EXPECT_TRUE(q.closed());
    EXPECT_FALSE(admitted(q, makeItem(1)));

    QueuedRequest out;
    EXPECT_TRUE(q.popWait(out));  // queued work still drains
    EXPECT_EQ(out.seq, 0u);
    EXPECT_FALSE(q.popWait(out));  // closed and empty
}

TEST(RequestQueue, PopWaitWakesOnPush)
{
    RequestQueue q;
    QueuedRequest out;
    std::thread consumer([&] { ASSERT_TRUE(q.popWait(out)); });
    ASSERT_TRUE(admitted(q, makeItem(7)));
    consumer.join();
    EXPECT_EQ(out.seq, 7u);
}

TEST(RequestQueue, PopWaitWakesOnClose)
{
    RequestQueue q;
    bool got = true;
    std::thread consumer([&] {
        QueuedRequest out;
        got = q.popWait(out);
    });
    q.close();
    consumer.join();
    EXPECT_FALSE(got);
}

TEST(BoundedQueue, RejectNewBouncesTheNewItemWhenFull)
{
    RequestQueue q({2, AdmissionPolicy::RejectNew, 5.0});
    ASSERT_TRUE(admitted(q, makeItem(0)));
    ASSERT_TRUE(admitted(q, makeItem(1)));

    std::vector<QueuedRequest> bounced;
    EXPECT_EQ(q.push(makeItem(2), &bounced),
              RequestQueue::PushOutcome::RejectedCapacity);
    ASSERT_EQ(bounced.size(), 1u);
    EXPECT_EQ(bounced[0].seq, 2u);  // the new item, not a queued one
    EXPECT_EQ(q.size(), 2u);

    const RequestQueue::Counters c = q.counters();
    EXPECT_EQ(c.admitted, 2u);
    EXPECT_EQ(c.rejected, 1u);
    EXPECT_EQ(c.evicted, 0u);
    EXPECT_EQ(c.highWater, 2u);
}

TEST(BoundedQueue, DropOldestEvictsMinimumSeqRegardlessOfPriority)
{
    RequestQueue q({2, AdmissionPolicy::DropOldest, 5.0});
    ASSERT_TRUE(admitted(q, makeItem(0, 9)));  // oldest, high priority
    ASSERT_TRUE(admitted(q, makeItem(1, 0)));

    std::vector<QueuedRequest> bounced;
    EXPECT_EQ(q.push(makeItem(2, 0), &bounced),
              RequestQueue::PushOutcome::Admitted);
    ASSERT_EQ(bounced.size(), 1u);
    EXPECT_EQ(bounced[0].seq, 0u);  // globally oldest was evicted
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.counters().evicted, 1u);

    // The survivors still drain in priority-then-FIFO order.
    QueuedRequest out;
    ASSERT_TRUE(q.popWait(out));
    EXPECT_EQ(out.seq, 1u);
    ASSERT_TRUE(q.popWait(out));
    EXPECT_EQ(out.seq, 2u);
}

TEST(BoundedQueue, BlockWithTimeoutTimesOutWhenNobodyPops)
{
    RequestQueue q({1, AdmissionPolicy::BlockWithTimeout, 2.0});
    ASSERT_TRUE(admitted(q, makeItem(0)));

    std::vector<QueuedRequest> bounced;
    EXPECT_EQ(q.push(makeItem(1), &bounced),
              RequestQueue::PushOutcome::RejectedCapacity);
    ASSERT_EQ(bounced.size(), 1u);
    EXPECT_EQ(bounced[0].seq, 1u);
    EXPECT_EQ(q.counters().rejected, 1u);
}

TEST(BoundedQueue, BlockWithTimeoutAdmitsWhenAConsumerFreesSpace)
{
    RequestQueue q({1, AdmissionPolicy::BlockWithTimeout, 60'000.0});
    ASSERT_TRUE(admitted(q, makeItem(0)));

    std::thread consumer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        QueuedRequest out;
        ASSERT_TRUE(q.popWait(out));
    });
    EXPECT_TRUE(admitted(q, makeItem(1)));  // blocked, then admitted
    consumer.join();
    EXPECT_EQ(q.size(), 1u);
}

TEST(BoundedQueue, CloseWakesBlockedProducer)
{
    RequestQueue q({1, AdmissionPolicy::BlockWithTimeout, 60'000.0});
    ASSERT_TRUE(admitted(q, makeItem(0)));

    std::thread producer([&] {
        std::vector<QueuedRequest> bounced;
        EXPECT_EQ(q.push(makeItem(1), &bounced),
                  RequestQueue::PushOutcome::Closed);
        EXPECT_EQ(bounced.size(), 1u);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    q.close();
    producer.join();
}

TEST(BoundedQueue, ShedExpiredRemovesOnlyPastDeadlineItems)
{
    RequestQueue q;
    QueuedRequest stale = makeItem(0);
    stale.request.deadlineMs = 0.5;
    stale.enqueued = std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(10);
    QueuedRequest fresh = makeItem(1);
    fresh.request.deadlineMs = 60'000.0;
    QueuedRequest no_deadline = makeItem(2);  // deadlineMs = 0: exempt
    ASSERT_TRUE(admitted(q, std::move(stale)));
    ASSERT_TRUE(admitted(q, std::move(fresh)));
    ASSERT_TRUE(admitted(q, std::move(no_deadline)));

    std::vector<QueuedRequest> shed;
    EXPECT_EQ(q.shedExpired(std::chrono::steady_clock::now(), shed), 1u);
    ASSERT_EQ(shed.size(), 1u);
    EXPECT_EQ(shed[0].seq, 0u);
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.counters().shed, 1u);

    // The survivors still pop in order after the heap repair.
    QueuedRequest out;
    ASSERT_TRUE(q.popWait(out));
    EXPECT_EQ(out.seq, 1u);
    ASSERT_TRUE(q.popWait(out));
    EXPECT_EQ(out.seq, 2u);
}

TEST(DynamicBatcher, RejectsZeroBound)
{
    RequestQueue q;
    EXPECT_THROW(DynamicBatcher(q, 0), std::invalid_argument);
}

TEST(DynamicBatcher, PacksQueuedItemsUpToBound)
{
    RequestQueue q;
    DynamicBatcher b(q, 4);
    for (std::uint64_t s = 0; s < 6; ++s)
        ASSERT_TRUE(admitted(q, makeItem(s)));

    const auto first = b.nextBatch();
    ASSERT_EQ(first.size(), 4u);  // filled to the bound
    for (std::size_t i = 0; i < first.size(); ++i)
        EXPECT_EQ(first[i].seq, i);

    const auto second = b.nextBatch();
    ASSERT_EQ(second.size(), 2u);  // the remainder, no waiting
    EXPECT_EQ(second[0].seq, 4u);
    EXPECT_EQ(second[1].seq, 5u);
}

TEST(DynamicBatcher, SingleRequestLeavesAlone)
{
    RequestQueue q;
    DynamicBatcher b(q, 8);
    ASSERT_TRUE(admitted(q, makeItem(0)));
    const auto batch = b.nextBatch();
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch[0].seq, 0u);
}

TEST(DynamicBatcher, BatchOrderedByPriorityThenFifo)
{
    RequestQueue q;
    DynamicBatcher b(q, 8);
    ASSERT_TRUE(admitted(q, makeItem(0, 0)));
    ASSERT_TRUE(admitted(q, makeItem(1, 9)));
    ASSERT_TRUE(admitted(q, makeItem(2, 9)));
    ASSERT_TRUE(admitted(q, makeItem(3, 4)));

    const auto batch = b.nextBatch();
    ASSERT_EQ(batch.size(), 4u);
    EXPECT_EQ(batch[0].seq, 1u);
    EXPECT_EQ(batch[1].seq, 2u);
    EXPECT_EQ(batch[2].seq, 3u);
    EXPECT_EQ(batch[3].seq, 0u);
}

TEST(DynamicBatcher, EmptyBatchSignalsClosedQueue)
{
    RequestQueue q;
    DynamicBatcher b(q, 4);
    ASSERT_TRUE(admitted(q, makeItem(0)));
    q.close();
    EXPECT_EQ(b.nextBatch().size(), 1u);  // drains queued work first
    EXPECT_TRUE(b.nextBatch().empty());   // then signals shutdown
}

TEST(DynamicBatcher, ConcurrentProducersAllServed)
{
    RequestQueue q;
    DynamicBatcher b(q, 8);
    constexpr std::size_t kProducers = 4;
    constexpr std::size_t kPerProducer = 50;

    std::vector<std::thread> producers;
    std::atomic<std::uint64_t> seq{0};
    for (std::size_t p = 0; p < kProducers; ++p) {
        producers.emplace_back([&] {
            for (std::size_t i = 0; i < kPerProducer; ++i)
                ASSERT_TRUE(admitted(q, makeItem(seq.fetch_add(1))));
        });
    }

    std::size_t served = 0;
    while (served < kProducers * kPerProducer) {
        const auto batch = b.nextBatch();
        ASSERT_FALSE(batch.empty());
        ASSERT_LE(batch.size(), 8u);
        served += batch.size();
    }
    for (std::thread &t : producers)
        t.join();
    EXPECT_EQ(served, kProducers * kPerProducer);
}

} // namespace
