/**
 * @file
 * Shutdown/kill robustness regression (DESIGN.md §16 satellite): a
 * drain racing live producers — the SIGTERM path — must flush every
 * accepted request to a terminal status, including a partially packed
 * batch a worker already pulled; none may strand with a never-ready
 * future. kill() resolves queued work Failed (kEngineKilledError)
 * instead of executing it, and both paths are idempotent.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/engine.hh"
#include "tensor/rng.hh"

namespace {

using namespace mflstm;

nn::ModelConfig
clsConfig()
{
    nn::ModelConfig cfg;
    cfg.task = nn::TaskKind::Classification;
    cfg.vocab = 20;
    cfg.embedSize = 8;
    cfg.hiddenSize = 12;
    cfg.numLayers = 2;
    cfg.numClasses = 2;
    return cfg;
}

std::vector<std::vector<std::int32_t>>
seqs(std::size_t n, std::size_t len, std::uint64_t seed)
{
    tensor::Rng rng(seed);
    std::vector<std::vector<std::int32_t>> out(n);
    for (auto &s : out)
        for (std::size_t t = 0; t < len; ++t)
            s.push_back(static_cast<std::int32_t>(rng.integer(0, 19)));
    return out;
}

class ShutdownTest : public ::testing::Test
{
  protected:
    ShutdownTest()
        : model(clsConfig(), 77),
          mf(model, {gpu::GpuConfig::tegraX1(),
                     runtime::NetworkShape::stacked(512, 512, 2, 40)})
    {
        mf.calibrate(seqs(4, 8, 5));
        const auto ladder = mf.calibration().ladder();
        mf.setThresholds(ladder[ladder.size() / 2]);
        for (const auto &s : seqs(4, 8, 11))
            mf.runner().classify(s);
    }

    nn::LstmModel model;
    core::MemoryFriendlyLstm mf;
};

TEST_F(ShutdownTest, DrainUnderFireStrandsNothing)
{
    serve::InferenceEngine::Options opts;
    opts.maxBatch = 4;
    opts.workers = 2;
    serve::InferenceEngine engine(mf, opts);

    // Producers hammer submit() while the main thread shuts down
    // mid-flight, so workers drain the queue with batches still being
    // packed — the race the flush-not-strand contract covers.
    constexpr int kProducers = 4;
    std::mutex mu;
    std::vector<std::future<serve::Response>> futures;
    std::atomic<bool> stop{false};
    std::atomic<int> accepted{0};
    std::vector<std::thread> producers;
    const auto inputs = seqs(8, 10, 17);
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            for (int i = 0; !stop.load(); ++i) {
                serve::Request req;
                req.tokens = inputs[(p + i) % inputs.size()];
                try {
                    std::future<serve::Response> fut =
                        engine.submit(std::move(req));
                    ++accepted;
                    std::lock_guard<std::mutex> lock(mu);
                    futures.push_back(std::move(fut));
                } catch (const std::runtime_error &) {
                    break;  // engine shut down: expected terminal race
                }
                // Throttle so the backlog stays drainable in CI.
                std::this_thread::sleep_for(
                    std::chrono::microseconds(100));
            }
        });
    }

    // Let the flood build a backlog, then pull the plug under fire.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    engine.shutdown();
    stop.store(true);
    for (std::thread &t : producers)
        t.join();

    // Every accepted request must resolve with a terminal status —
    // a stranded promise would deadlock this loop (ready check keeps
    // the failure mode a test failure, not a hang).
    ASSERT_EQ(futures.size(), static_cast<std::size_t>(accepted));
    std::size_t ok = 0;
    for (std::future<serve::Response> &fut : futures) {
        ASSERT_TRUE(fut.valid());
        ASSERT_EQ(fut.wait_for(std::chrono::seconds(30)),
                  std::future_status::ready)
            << "stranded future: a worker dropped a packed request";
        const serve::Response r = fut.get();
        if (r.status == serve::Status::Ok)
            ++ok;
    }
    EXPECT_GE(ok, 1u);

    const serve::InferenceEngine::Stats st = engine.stats();
    EXPECT_EQ(st.completed, static_cast<std::uint64_t>(accepted));
    EXPECT_EQ(st.submitted, static_cast<std::uint64_t>(accepted));

    // Second shutdown is a no-op.
    engine.shutdown();
    EXPECT_THROW(engine.submit(serve::Request{{1, 2, 3}}),
                 std::runtime_error);
}

TEST_F(ShutdownTest, KillResolvesQueuedWorkAsFailed)
{
    serve::InferenceEngine::Options opts;
    opts.maxBatch = 1;  // one in flight, the rest must queue
    opts.workers = 1;
    serve::InferenceEngine engine(mf, opts);

    // Park the worker in a brownout so the backlog is guaranteed to
    // still be queued when the kill lands.
    engine.setBrownoutMs(50.0);
    std::vector<std::future<serve::Response>> futures;
    const auto inputs = seqs(12, 10, 19);
    for (const auto &s : inputs) {
        serve::Request req;
        req.tokens = s;
        futures.push_back(engine.submit(std::move(req)));
    }
    engine.kill();
    EXPECT_TRUE(engine.killed());

    std::size_t ok = 0;
    std::size_t killed = 0;
    for (std::future<serve::Response> &fut : futures) {
        ASSERT_TRUE(fut.valid());
        const serve::Response r = fut.get();  // kill() already joined
        if (r.status == serve::Status::Ok) {
            ++ok;
        } else {
            ASSERT_EQ(r.status, serve::Status::Failed);
            EXPECT_EQ(r.error, serve::kEngineKilledError);
            EXPECT_FALSE(r.executed);
            ++killed;
        }
    }
    // The in-flight batch finishes (execution is pure); everything
    // still queued resolves Failed without executing.
    EXPECT_GE(killed, 1u);
    EXPECT_EQ(ok + killed, inputs.size());
    EXPECT_EQ(engine.stats().completed, inputs.size());

    // kill() is idempotent and closes admissions.
    engine.kill();
    EXPECT_THROW(engine.submit(serve::Request{{1, 2, 3}}),
                 std::runtime_error);
}

TEST_F(ShutdownTest, KillDuringProducerFloodIsTerminalForAll)
{
    serve::InferenceEngine::Options opts;
    opts.maxBatch = 2;
    opts.workers = 2;
    serve::InferenceEngine engine(mf, opts);

    std::mutex mu;
    std::vector<std::future<serve::Response>> futures;
    std::atomic<bool> stop{false};
    std::vector<std::thread> producers;
    const auto inputs = seqs(6, 10, 29);
    for (int p = 0; p < 3; ++p) {
        producers.emplace_back([&, p] {
            for (int i = 0; !stop.load(); ++i) {
                serve::Request req;
                req.tokens = inputs[(p + i) % inputs.size()];
                try {
                    std::future<serve::Response> fut =
                        engine.submit(std::move(req));
                    std::lock_guard<std::mutex> lock(mu);
                    futures.push_back(std::move(fut));
                } catch (const std::runtime_error &) {
                    break;
                }
                std::this_thread::sleep_for(
                    std::chrono::microseconds(100));
            }
        });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    engine.kill();
    stop.store(true);
    for (std::thread &t : producers)
        t.join();

    for (std::future<serve::Response> &fut : futures) {
        ASSERT_TRUE(fut.valid());
        ASSERT_EQ(fut.wait_for(std::chrono::seconds(30)),
                  std::future_status::ready);
        const serve::Response r = fut.get();
        EXPECT_TRUE(r.status == serve::Status::Ok ||
                    (r.status == serve::Status::Failed &&
                     r.error == serve::kEngineKilledError))
            << "unexpected status " << static_cast<int>(r.status);
    }
    EXPECT_EQ(engine.stats().completed, futures.size());
}

} // namespace
