/**
 * @file
 * End-to-end tests for the batched inference engine: per-request
 * outputs must be bit-identical to running each sequence alone
 * (batching is a timing-side transform only), and the simulated
 * weight-matrix DRAM bytes per sequence must decrease monotonically as
 * the batch dimension grows 1..8 (the serving-time weight-reuse
 * guarantee).
 */

#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "serve/engine.hh"
#include "tensor/rng.hh"

namespace {

using namespace mflstm;

nn::ModelConfig
clsConfig()
{
    nn::ModelConfig cfg;
    cfg.task = nn::TaskKind::Classification;
    cfg.vocab = 20;
    cfg.embedSize = 8;
    cfg.hiddenSize = 12;
    cfg.numLayers = 2;
    cfg.numClasses = 2;
    return cfg;
}

std::vector<std::vector<std::int32_t>>
seqs(std::size_t n, std::size_t len, std::uint64_t seed)
{
    tensor::Rng rng(seed);
    std::vector<std::vector<std::int32_t>> out(n);
    for (auto &s : out)
        for (std::size_t t = 0; t < len; ++t)
            s.push_back(static_cast<std::int32_t>(rng.integer(0, 19)));
    return out;
}

class EngineTest : public ::testing::Test
{
  protected:
    EngineTest()
        : model(clsConfig(), 77),
          mf(model, {gpu::GpuConfig::tegraX1(),
                     runtime::NetworkShape::stacked(512, 512, 2, 40)})
    {
        mf.calibrate(seqs(4, 8, 5));
        const auto ladder = mf.calibration().ladder();
        mf.setThresholds(ladder[ladder.size() / 2]);
        // Populate the division/skip statistics the planner projects.
        for (const auto &s : seqs(4, 8, 11))
            mf.runner().classify(s);
    }

    serve::InferenceEngine::Options engineOptions() const
    {
        serve::InferenceEngine::Options o;
        o.maxBatch = 8;
        o.workers = 2;
        o.plan = runtime::PlanKind::Combined;
        return o;
    }

    nn::LstmModel model;
    core::MemoryFriendlyLstm mf;
};

TEST_F(EngineTest, BatchedOutputsBitIdenticalToSolo)
{
    // Solo reference: a private runner with the same thresholds and
    // calibration, one sequence at a time.
    core::ApproxRunner solo = mf.runner();
    const auto inputs = seqs(16, 12, 23);
    std::vector<tensor::Vector> expected;
    for (const auto &s : inputs)
        expected.push_back(solo.classify(s));

    serve::InferenceEngine engine(mf, engineOptions());
    serve::Session session = engine.session();
    std::vector<std::future<serve::Response>> futures;
    for (const auto &s : inputs)
        futures.push_back(session.infer(s));

    for (std::size_t i = 0; i < futures.size(); ++i) {
        const serve::Response r = futures[i].get();
        EXPECT_EQ(r.status, serve::Status::Ok) << "request " << i;
        EXPECT_TRUE(r.executed);
        EXPECT_TRUE(r.deadlineMet());
        EXPECT_EQ(r.logits, expected[i]) << "request " << i;
        EXPECT_GE(r.batch, 1u);
        EXPECT_LE(r.batch, 8u);
        EXPECT_GT(r.weightDramBytesPerSeq, 0.0);
        EXPECT_GT(r.simBatchMs, 0.0);
        EXPECT_GE(r.latencyMs, r.queueMs);
    }
}

TEST_F(EngineTest, WeightDramPerSequenceDecreasesMonotonically)
{
    serve::InferenceEngine engine(mf, engineOptions());
    const runtime::NetworkExecutor ex(mf.config().gpu);

    double prev = 0.0;
    for (std::size_t b = 1; b <= 8; ++b) {
        const runtime::RunReport rep =
            ex.run(runtime::RunRequest::network(mf.config().timingShape,
                                                engine.plan(), b));
        EXPECT_EQ(rep.batch, b);
        const double per_seq = rep.weightDramBytesPerSequence();
        EXPECT_GT(per_seq, 0.0);
        if (b > 1) {
            EXPECT_LT(per_seq, prev)
                << "batch " << b << " must amortise weights further";
        }
        prev = per_seq;
    }
}

TEST_F(EngineTest, BurstFillsBatchesAndCountsThem)
{
    auto opts = engineOptions();
    opts.workers = 1;  // deterministic consumer side
    serve::InferenceEngine engine(mf, opts);
    serve::Session session = engine.session();

    const auto inputs = seqs(24, 10, 31);
    std::vector<std::future<serve::Response>> futures;
    for (const auto &s : inputs)
        futures.push_back(session.infer(s));
    for (auto &f : futures)
        f.get();

    const auto st = engine.stats();
    EXPECT_EQ(st.submitted, 24u);
    EXPECT_EQ(st.completed, 24u);
    EXPECT_GE(st.batches, 3u);  // 24 requests / maxBatch 8
    EXPECT_LE(st.maxBatchObserved, 8u);
    EXPECT_GE(st.maxBatchObserved, 1u);
    EXPECT_GT(st.meanBatchSize, 0.0);
    EXPECT_GT(engine.latencyQuantileMs(0.5), 0.0);
    EXPECT_GE(engine.latencyQuantileMs(0.99),
              engine.latencyQuantileMs(0.5));
}

TEST_F(EngineTest, LanguageModelOutputsBitIdentical)
{
    nn::ModelConfig cfg = clsConfig();
    cfg.task = nn::TaskKind::LanguageModel;
    cfg.numClasses = 0;
    nn::LstmModel lm(cfg, 99);
    core::MemoryFriendlyLstm lm_mf(
        lm, {gpu::GpuConfig::tegraX1(),
             runtime::NetworkShape::stacked(512, 512, 2, 40)});
    lm_mf.calibrate(seqs(4, 8, 5));
    lm_mf.setThresholds(lm_mf.calibration().ladder()[5]);

    core::ApproxRunner solo = lm_mf.runner();
    const auto inputs = seqs(9, 10, 41);

    serve::InferenceEngine::Options opts;
    opts.maxBatch = 4;
    opts.workers = 2;
    opts.plan = runtime::PlanKind::Baseline;  // plan needs no stats
    serve::InferenceEngine engine(lm_mf, opts);

    std::vector<std::future<serve::Response>> futures;
    for (const auto &s : inputs)
        futures.push_back(engine.submit({s, 0, 0.0}));
    for (std::size_t i = 0; i < futures.size(); ++i) {
        const serve::Response r = futures[i].get();
        const auto expected = solo.lmLogits(inputs[i]);
        ASSERT_EQ(r.stepLogits.size(), expected.size());
        for (std::size_t t = 0; t < expected.size(); ++t)
            EXPECT_EQ(r.stepLogits[t], expected[t])
                << "request " << i << " step " << t;
    }
}

TEST_F(EngineTest, RejectsEmptyTokensAndZeroWorkers)
{
    auto opts = engineOptions();
    opts.workers = 0;
    EXPECT_THROW(serve::InferenceEngine(mf, opts),
                 std::invalid_argument);

    serve::InferenceEngine engine(mf, engineOptions());
    EXPECT_THROW(engine.submit({{}, 0, 0.0}), std::invalid_argument);
}

TEST_F(EngineTest, ShutdownDrainsThenRejects)
{
    serve::InferenceEngine engine(mf, engineOptions());
    auto fut = engine.submit({seqs(1, 10, 51).front(), 0, 0.0});
    engine.shutdown();
    // Work queued before shutdown still completes.
    EXPECT_NO_THROW(fut.get());
    EXPECT_THROW(engine.submit({seqs(1, 10, 52).front(), 0, 0.0}),
                 std::runtime_error);
    engine.shutdown();  // idempotent
}

TEST_F(EngineTest, ImpossibleDeadlineIsReportedMissed)
{
    serve::InferenceEngine engine(mf, engineOptions());
    serve::Session session = engine.session(3);
    EXPECT_EQ(session.priority(), 3);

    const serve::Response r =
        session.infer(seqs(1, 10, 61).front(), 1e-9).get();
    EXPECT_EQ(r.status, serve::Status::ShedDeadline);
    EXPECT_FALSE(r.deadlineMet());
    const auto st = engine.stats();
    EXPECT_GE(st.deadlineMisses, 1u);
    // The miss is either shed before execution or a late completion —
    // the two buckets partition deadlineMisses exactly.
    EXPECT_EQ(st.shedBeforeRun + st.lateCompletions, st.deadlineMisses);
}

TEST_F(EngineTest, RejectNewAdmissionResolvesRejectedCapacity)
{
    auto opts = engineOptions();
    opts.workers = 1;
    opts.queueCapacity = 2;
    opts.admission = serve::AdmissionPolicy::RejectNew;
    serve::InferenceEngine engine(mf, opts);
    serve::Session session = engine.session();

    // Burst far past capacity: every future must still resolve with a
    // terminal status, and at least the overflow must be rejected.
    const auto inputs = seqs(32, 10, 71);
    std::vector<std::future<serve::Response>> futures;
    for (const auto &s : inputs)
        futures.push_back(session.infer(s));

    std::size_t ok = 0;
    std::size_t rejected = 0;
    for (auto &f : futures) {
        const serve::Response r = f.get();
        if (r.status == serve::Status::Ok) {
            ++ok;
            EXPECT_TRUE(r.executed);
        } else {
            ASSERT_EQ(r.status, serve::Status::RejectedCapacity);
            EXPECT_FALSE(r.executed);
            ++rejected;
        }
    }
    EXPECT_EQ(ok + rejected, inputs.size());
    EXPECT_GE(ok, 1u);  // something was served

    const auto st = engine.stats();
    EXPECT_EQ(st.completed, inputs.size());
    EXPECT_EQ(st.rejected, rejected);
    EXPECT_LE(st.queueHighWater, 2u);  // capacity honoured
}

TEST_F(EngineTest, GovernorLadderServesEveryRungBitIdentical)
{
    const auto full = mf.calibration().ladder();
    auto opts = engineOptions();
    opts.governorLadder = {full[2], full[5], full[8]};
    opts.planningSequences = seqs(4, 8, 11);
    serve::InferenceEngine engine(mf, opts);

    ASSERT_EQ(engine.ladder().size(), 3u);
    EXPECT_EQ(engine.activeRung(), 0u);  // starts at the accurate end
    for (std::size_t r = 0; r < 3; ++r)
        EXPECT_EQ(engine.planAt(r).kind, runtime::PlanKind::Combined);

    serve::Session session = engine.session();
    const auto inputs = seqs(8, 10, 81);
    std::vector<std::future<serve::Response>> futures;
    for (const auto &s : inputs)
        futures.push_back(session.infer(s));

    // Under light load the governor never escalates, so outputs match
    // a solo runner at rung 0's thresholds.
    core::ApproxRunner solo = mf.runner();
    solo.setThresholds(full[2].alphaInter, full[2].alphaIntra);
    for (std::size_t i = 0; i < futures.size(); ++i) {
        const serve::Response r = futures[i].get();
        ASSERT_EQ(r.status, serve::Status::Ok);
        EXPECT_EQ(r.rung, 0u);
        EXPECT_EQ(r.logits, solo.classify(inputs[i])) << "request " << i;
    }
    EXPECT_EQ(engine.stats().governorStepsUp, 0u);
}

} // namespace
