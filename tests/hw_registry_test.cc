/**
 * Hardware backend registry (DESIGN.md §17): the registry's contents
 * and lookup contract, the tx1 bit-identity anchor against the
 * hand-rolled tegraX1() config, JSON descriptor round-trips for every
 * entry, the per-backend enumeration rules (int4 twins on dot-unit
 * parts, streamed plans priced out under explicit weight memory), and
 * the headline divergence: tuning the same request on epur picks a
 * different plan than on tx1.
 */

#include <gtest/gtest.h>

#include <string>

#include "hw/backend.hh"
#include "runtime/executor.hh"
#include "sched/persist.hh"
#include "sched/tuner.hh"

namespace mflstm {
namespace hw {
namespace {

TEST(Registry, HoldsTheFourBackendsInOrder)
{
    const std::vector<std::string> names = registry().names();
    ASSERT_EQ(names.size(), 4u);
    EXPECT_EQ(names[0], "tx1");
    EXPECT_EQ(names[1], "tx2");
    EXPECT_EQ(names[2], "dp4a");
    EXPECT_EQ(names[3], "epur");
}

TEST(Registry, LookupContract)
{
    EXPECT_TRUE(registry().contains("dp4a"));
    EXPECT_FALSE(registry().contains("gtx1080"));
    EXPECT_EQ(registry().find("gtx1080"), nullptr);
    EXPECT_THROW(registry().get("gtx1080"), std::out_of_range);
    EXPECT_EQ(registry().get("epur").kind, BackendKind::Accelerator);
    EXPECT_EQ(registry().get("tx1").kind, BackendKind::MobileGpu);
}

TEST(Registry, Tx1IsBitIdenticalToTheHandRolledAnchor)
{
    // The dedup satellite's contract: hw::registry().get("tx1") IS the
    // config every pre-registry caller built by hand, byte for byte
    // (the tuned-plan staleness key, so drift would invalidate caches).
    EXPECT_EQ(sched::serializeGpuConfig(registry().get("tx1").config),
              sched::serializeGpuConfig(gpu::GpuConfig::tegraX1()));
    EXPECT_EQ(sched::serializeGpuConfig(registry().get("tx2").config),
              sched::serializeGpuConfig(gpu::GpuConfig::tegraX2Like()));
}

TEST(Registry, CapabilityFlags)
{
    EXPECT_FALSE(registry().get("tx1").config.int8DotUnits);
    EXPECT_FALSE(registry().get("tx1").config.explicitWeightMemory);
    EXPECT_FALSE(registry().get("tx2").config.int8DotUnits);
    EXPECT_TRUE(registry().get("dp4a").config.int8DotUnits);
    EXPECT_FALSE(registry().get("dp4a").config.explicitWeightMemory);
    EXPECT_TRUE(registry().get("epur").config.explicitWeightMemory);
    // Dot units fold the scales into the epilogue: no dequant issue
    // slots on either dot-unit backend.
    EXPECT_EQ(registry().get("dp4a").config.dequantOpsPerWeight, 0.0);
    EXPECT_EQ(registry().get("epur").config.dequantOpsPerWeight, 0.0);
}

TEST(BackendKindStrings, RoundTrip)
{
    EXPECT_STREQ(toString(BackendKind::MobileGpu), "mobile-gpu");
    EXPECT_STREQ(toString(BackendKind::Accelerator), "accelerator");
    EXPECT_EQ(backendKindFromString("mobile-gpu"),
              BackendKind::MobileGpu);
    EXPECT_EQ(backendKindFromString("accelerator"),
              BackendKind::Accelerator);
    EXPECT_FALSE(backendKindFromString("tpu").has_value());
}

TEST(BackendJson, EveryRegistryEntryRoundTripsBitExactly)
{
    for (const Backend &b : registry().entries()) {
        SCOPED_TRACE(b.id);
        const std::optional<Backend> back =
            parseBackend(serializeBackend(b));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(back->id, b.id);
        EXPECT_EQ(back->display, b.display);
        EXPECT_EQ(back->kind, b.kind);
        EXPECT_EQ(back->summary, b.summary);
        EXPECT_EQ(back->revision, b.revision);
        // GpuConfig equality through the same byte serialization the
        // tuned-plan artifact uses as its staleness key.
        EXPECT_EQ(sched::serializeGpuConfig(back->config),
                  sched::serializeGpuConfig(b.config));
    }
}

TEST(BackendJson, RejectsMalformedDescriptors)
{
    EXPECT_FALSE(parseBackend("not json").has_value());
    EXPECT_FALSE(parseBackend("{}").has_value());  // no id
    // Wrong-typed fields are rejected, not defaulted.
    std::string s = serializeBackend(registry().get("tx1"));
    const std::string from = "\"kind\":\"mobile-gpu\"";
    s.replace(s.find(from), from.size(), "\"kind\":7");
    EXPECT_FALSE(parseBackend(s).has_value());
}

// --- Per-backend enumeration rules ---------------------------------

sched::TuneRequest
smallRequest()
{
    sched::TuneRequest req;
    req.shape = runtime::NetworkShape::stacked(64, 128, 2, 20);
    req.mts = 4;
    req.modelHidden = 128;
    core::LayerApproxStats s;
    s.sequences = 10;
    s.links = 190;
    s.breaks = 60;
    s.cells = 200;
    s.skippedRows = 0.4 * 200 * 128;
    req.stats = {s, s};
    return req;
}

bool
hasLabel(const std::vector<sched::LayerOption> &opts,
         const std::string &label)
{
    for (const sched::LayerOption &o : opts)
        if (o.label == label)
            return true;
    return false;
}

TEST(BackendRules, Int4TwinsOnlyOnDotUnitBackends)
{
    sched::TuneRequest req = smallRequest();
    req.quant = quant::QuantMode::Int8;

    const auto on_tx1 = sched::enumerateLayerOptions(
        req, 0, {}, {}, registry().get("tx1").config);
    for (const sched::LayerOption &o : on_tx1)
        EXPECT_EQ(o.label.find("-int4"), std::string::npos) << o.label;

    const auto on_dp4a = sched::enumerateLayerOptions(
        req, 0, {}, {}, registry().get("dp4a").config);
    ASSERT_TRUE(hasLabel(on_dp4a, "dense-int4"));
    EXPECT_GT(on_dp4a.size(), on_tx1.size());
    for (const sched::LayerOption &o : on_dp4a) {
        if (o.label.find("-int4") == std::string::npos)
            continue;
        EXPECT_EQ(o.schedule.quant, quant::QuantMode::Int4) << o.label;
        EXPECT_NO_THROW(o.schedule.validate()) << o.label;
    }
}

TEST(BackendRules, Int4TwinsNeedAnInt8Request)
{
    // At fp32 there is nothing to narrow: the rule only fires when the
    // request itself asks for the quantized row.
    const auto opts = sched::enumerateLayerOptions(
        smallRequest(), 0, {}, {}, registry().get("dp4a").config);
    for (const sched::LayerOption &o : opts)
        EXPECT_EQ(o.label.find("-int4"), std::string::npos) << o.label;
}

TEST(BackendRules, ExplicitWeightMemoryPricesOutStreamedPlans)
{
    // hidden=128: U is 4*128*128*4 B = 256 KB, far under epur's
    // pinnable shared capacity, so only dense (the anchor) and
    // persistent options survive.
    const auto opts = sched::enumerateLayerOptions(
        smallRequest(), 0, {}, {}, registry().get("epur").config);
    ASSERT_FALSE(opts.empty());
    for (const sched::LayerOption &o : opts)
        EXPECT_TRUE(o.label == "dense" || o.schedule.persistent())
            << o.label;
    EXPECT_TRUE(hasLabel(opts, "persistent-shared"));

    // A layer too large to pin keeps the streamed menu.
    sched::TuneRequest big = smallRequest();
    big.shape = runtime::NetworkShape::stacked(64, 2048, 2, 20);
    big.modelHidden = 2048;
    for (core::LayerApproxStats &s : big.stats)
        s.skippedRows = 0.4 * 200 * 2048;
    const auto big_opts = sched::enumerateLayerOptions(
        big, 0, {}, {}, registry().get("epur").config);
    EXPECT_TRUE(hasLabel(big_opts, "skip-sw"));
}

TEST(BackendRules, StreamedMenuUnchangedOnTx1)
{
    const auto opts = sched::enumerateLayerOptions(
        smallRequest(), 0, {}, {}, registry().get("tx1").config);
    EXPECT_TRUE(hasLabel(opts, "dense"));
    EXPECT_TRUE(hasLabel(opts, "skip-sw"));
    EXPECT_TRUE(hasLabel(opts, "skip-hw"));
    EXPECT_TRUE(hasLabel(opts, "persistent-shared"));
}

TEST(BackendTune, EpurSelectsADifferentPlanThanTx1)
{
    // The acceptance headline: the same request tuned on the
    // accelerator lands on a different schedule than on the Maxwell
    // anchor (resident plans dominate once weights live on chip).
    const sched::TuneRequest req = smallRequest();
    const runtime::NetworkExecutor tx1(registry().get("tx1").config);
    const runtime::NetworkExecutor epur(registry().get("epur").config);
    const sched::TuneResult a = sched::tune(tx1, req);
    const sched::TuneResult b = sched::tune(epur, req);
    EXPECT_FALSE(a.chosen.plan.explicitDecisions(
                     req.shape.layers.size()) ==
                 b.chosen.plan.explicitDecisions(
                     req.shape.layers.size()))
        << "tx1 chose " << a.chosen.label << ", epur chose "
        << b.chosen.label;
}

} // namespace
} // namespace hw
} // namespace mflstm
