/**
 * @file
 * Engine warm-restart tests (DESIGN.md §11): a restarted engine built
 * from persisted warm state must serve bit-identically to the engine
 * that saved it — same ladder, same plans, same logits — and warm
 * state recorded against different weights or options must be rejected
 * as stale rather than silently adopted.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "core/persist.hh"
#include "serve/engine.hh"
#include "serve/persist.hh"
#include "tensor/rng.hh"

namespace {

using namespace mflstm;

nn::ModelConfig
clsConfig()
{
    nn::ModelConfig cfg;
    cfg.task = nn::TaskKind::Classification;
    cfg.vocab = 20;
    cfg.embedSize = 8;
    cfg.hiddenSize = 12;
    cfg.numLayers = 2;
    cfg.numClasses = 2;
    return cfg;
}

std::vector<std::vector<std::int32_t>>
seqs(std::size_t n, std::size_t len, std::uint64_t seed)
{
    tensor::Rng rng(seed);
    std::vector<std::vector<std::int32_t>> out(n);
    for (auto &s : out)
        for (std::size_t t = 0; t < len; ++t)
            s.push_back(static_cast<std::int32_t>(rng.integer(0, 19)));
    return out;
}

std::vector<tensor::Vector>
serveAll(serve::InferenceEngine &engine,
         const std::vector<std::vector<std::int32_t>> &inputs)
{
    serve::Session session = engine.session();
    std::vector<std::future<serve::Response>> futures;
    for (const auto &s : inputs)
        futures.push_back(session.infer(s));
    std::vector<tensor::Vector> out;
    for (auto &f : futures) {
        serve::Response r = f.get();
        EXPECT_EQ(r.status, serve::Status::Ok);
        out.push_back(std::move(r.logits));
    }
    return out;
}

class WarmRestartTest : public ::testing::Test
{
  protected:
    WarmRestartTest()
        : model(clsConfig(), 77),
          mf(model, {gpu::GpuConfig::tegraX1(),
                     runtime::NetworkShape::stacked(512, 512, 2, 40)})
    {
        mf.calibrate(seqs(4, 8, 5));
        const auto ladder = mf.calibration().ladder();
        mf.setThresholds(ladder[ladder.size() / 2]);
        for (const auto &s : seqs(4, 8, 11))
            mf.runner().classify(s);

        // Per-process name: ctest runs test cases concurrently.
        path_ = (std::filesystem::temp_directory_path() /
                 ("mflstm_warm_restart_test_" +
                  std::to_string(::getpid()) + ".bin"))
                    .string();
        std::remove(path_.c_str());
    }
    ~WarmRestartTest() override { std::remove(path_.c_str()); }

    serve::InferenceEngine::Options engineOptions() const
    {
        serve::InferenceEngine::Options o;
        o.maxBatch = 8;
        o.workers = 2;
        o.plan = runtime::PlanKind::Combined;
        return o;
    }

    nn::LstmModel model;
    core::MemoryFriendlyLstm mf;
    std::string path_;
};

TEST_F(WarmRestartTest, WarmStartServesBitIdenticallyToCold)
{
    const auto inputs = seqs(12, 10, 23);

    serve::InferenceEngine cold(mf, engineOptions());
    const std::vector<tensor::Vector> expected =
        serveAll(cold, inputs);
    serve::saveEngineState(cold, path_);
    cold.shutdown();

    // "Restart": a fresh engine adopting the persisted state instead
    // of rebuilding its plans.
    const serve::EngineWarmState warm = serve::loadEngineState(path_);
    EXPECT_EQ(warm.modelWeightsCrc, core::modelWeightsCrc(model));
    serve::InferenceEngine restarted(mf, engineOptions(), warm);

    // Identical plans were adopted, not rebuilt...
    const serve::EngineWarmState after = restarted.exportWarmState();
    EXPECT_EQ(after.ladder, warm.ladder);
    EXPECT_EQ(after.plans, warm.plans);
    EXPECT_EQ(after.shape, warm.shape);

    // ...and the served logits are bit-identical.
    const std::vector<tensor::Vector> actual =
        serveAll(restarted, inputs);
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t i = 0; i < actual.size(); ++i)
        EXPECT_EQ(actual[i], expected[i]) << "request " << i;
}

TEST_F(WarmRestartTest, DrainAndSaveStatePersistsLoadableState)
{
    const auto inputs = seqs(6, 10, 31);
    std::vector<tensor::Vector> expected;
    {
        serve::InferenceEngine engine(mf, engineOptions());
        expected = serveAll(engine, inputs);
        engine.drainAndSaveState(path_);
    }
    EXPECT_NO_THROW(serve::verifyEngineStateFile(path_));

    const serve::EngineWarmState warm = serve::loadEngineState(path_);
    serve::InferenceEngine restarted(mf, engineOptions(), warm);
    const std::vector<tensor::Vector> actual =
        serveAll(restarted, inputs);
    for (std::size_t i = 0; i < actual.size(); ++i)
        EXPECT_EQ(actual[i], expected[i]) << "request " << i;
}

TEST_F(WarmRestartTest, StaleStateForDifferentWeightsRejected)
{
    {
        serve::InferenceEngine engine(mf, engineOptions());
        serve::saveEngineState(engine, path_);
    }
    const serve::EngineWarmState warm = serve::loadEngineState(path_);

    const nn::LstmModel other(clsConfig(), 78);
    core::MemoryFriendlyLstm mf2(
        other, {gpu::GpuConfig::tegraX1(),
                runtime::NetworkShape::stacked(512, 512, 2, 40)});
    mf2.calibrate(seqs(4, 8, 5));
    try {
        serve::InferenceEngine engine(mf2, engineOptions(), warm);
        FAIL() << "warm state for different weights accepted";
    } catch (const io::ArtifactError &e) {
        EXPECT_EQ(e.kind(), io::ErrorKind::Stale);
    }
}

TEST_F(WarmRestartTest, StateForDifferentOptionsRejected)
{
    {
        serve::InferenceEngine engine(mf, engineOptions());
        serve::saveEngineState(engine, path_);
    }
    const serve::EngineWarmState warm = serve::loadEngineState(path_);

    serve::InferenceEngine::Options opts = engineOptions();
    opts.plan = runtime::PlanKind::InterCell;
    try {
        serve::InferenceEngine engine(mf, opts, warm);
        FAIL() << "warm state for different plan kind accepted";
    } catch (const io::ArtifactError &e) {
        EXPECT_EQ(e.kind(), io::ErrorKind::Stale);
    }
}

TEST_F(WarmRestartTest, CorruptStateFileRejectedAndCounted)
{
    {
        serve::InferenceEngine engine(mf, engineOptions());
        serve::saveEngineState(engine, path_);
    }
    const std::uintmax_t size = std::filesystem::file_size(path_);
    {
        std::fstream f(path_, std::ios::binary | std::ios::in |
                                  std::ios::out);
        f.seekg(static_cast<std::streamoff>(size - 3));
        char b = 0;
        f.read(&b, 1);
        b = static_cast<char>(b ^ 0x40);
        f.seekp(static_cast<std::streamoff>(size - 3));
        f.write(&b, 1);
    }

    obs::Observer obs;
    try {
        (void)serve::loadEngineState(path_, io::ArtifactLimits{},
                                     &obs);
        FAIL() << "corrupt engine state loaded";
    } catch (const io::ArtifactError &e) {
        EXPECT_EQ(e.kind(), io::ErrorKind::ChecksumMismatch);
    }
    EXPECT_EQ(obs.metrics()
                  .counter("artifact_load_rejected_total")
                  .value(),
              1.0);
}

TEST_F(WarmRestartTest, TruncatedStateFileRejected)
{
    {
        serve::InferenceEngine engine(mf, engineOptions());
        serve::saveEngineState(engine, path_);
    }
    std::filesystem::resize_file(
        path_, std::filesystem::file_size(path_) - 9);
    EXPECT_THROW(serve::loadEngineState(path_), io::ArtifactError);
    EXPECT_THROW(serve::verifyEngineStateFile(path_),
                 io::ArtifactError);
}

TEST_F(WarmRestartTest, QuantModesSurviveSaveLoad)
{
    // v2 state: the ladder's third coordinate and the per-plan
    // precision both round-trip.
    serve::EngineWarmState state;
    state.modelWeightsCrc = 0x1234u;
    state.plan = runtime::PlanKind::Combined;
    state.shape.layers.push_back({8, 8, 4});
    state.ladder.push_back({0.0, 0.0, quant::QuantMode::Fp32});
    state.ladder.push_back({0.1, 0.2, quant::QuantMode::Int8});
    state.ladder.push_back({0.3, 0.4, quant::QuantMode::Int4});
    for (const core::ThresholdSet &set : state.ladder) {
        runtime::ExecutionPlan plan;
        plan.kind = runtime::PlanKind::Combined;
        plan.quantMode = set.quant;
        plan.inter.push_back({});
        plan.inter[0].tissueSizes = {2, 2};
        plan.intra.push_back({0.5});
        state.plans.push_back(plan);
    }
    serve::saveEngineState(state, path_);

    const serve::EngineWarmState loaded =
        serve::loadEngineState(path_);
    EXPECT_EQ(loaded.ladder, state.ladder);
    ASSERT_EQ(loaded.plans.size(), 3u);
    EXPECT_EQ(loaded.plans[1].quantMode, quant::QuantMode::Int8);
    EXPECT_EQ(loaded.plans[2].quantMode, quant::QuantMode::Int4);
    EXPECT_EQ(loaded.plans, state.plans);
}

TEST_F(WarmRestartTest, VersionOneStateLoadsWithFp32Defaults)
{
    // Handcrafted v1 container (pre-quantization layout: two f64 per
    // ladder rung, no per-plan precision). It must still load, with
    // every quant field defaulting to Fp32.
    io::ArtifactWriter w(io::kSchemaEngineState, 1);
    io::ByteWriter &f =
        w.chunk(io::fourcc('E', 'F', 'P', 'R'));
    f.u32(0xBEEFu);
    f.u32(static_cast<std::uint32_t>(runtime::PlanKind::InterCell));
    f.f64(0.0);
    io::ByteWriter &s = w.chunk(io::fourcc('E', 'S', 'H', 'P'));
    s.u64(1);
    s.u64(8);
    s.u64(8);
    s.u64(4);
    io::ByteWriter &l = w.chunk(io::fourcc('E', 'L', 'A', 'D'));
    l.u64(2);
    l.f64(0.0);
    l.f64(0.0);
    l.f64(0.25);
    l.f64(0.5);
    for (std::size_t i = 0; i < 2; ++i) {
        io::ByteWriter &p = w.chunk(io::indexedTag('E', 'P', i));
        p.u32(static_cast<std::uint32_t>(runtime::PlanKind::InterCell));
        p.f64(0.0);           // pruneFraction
        p.u64(1);             // one inter layer
        const std::vector<std::uint64_t> tissues = {2, 2};
        p.u64Array(tissues);
        p.u64(0);             // no intra layers
    }
    w.commit(path_);

    const serve::EngineWarmState state =
        serve::loadEngineState(path_);
    EXPECT_EQ(state.modelWeightsCrc, 0xBEEFu);
    ASSERT_EQ(state.ladder.size(), 2u);
    EXPECT_DOUBLE_EQ(state.ladder[1].alphaInter, 0.25);
    for (const core::ThresholdSet &set : state.ladder)
        EXPECT_EQ(set.quant, quant::QuantMode::Fp32);
    for (const runtime::ExecutionPlan &plan : state.plans)
        EXPECT_EQ(plan.quantMode, quant::QuantMode::Fp32);
}

TEST_F(WarmRestartTest, TunedPlansAndDecisionsSurviveSaveLoad)
{
    // v3 state: the tuning-mode flag and a plan carrying explicit
    // per-layer ScheduleDecisions (a searched schedule) round-trip.
    serve::EngineWarmState state;
    state.modelWeightsCrc = 0x5678u;
    state.plan = runtime::PlanKind::Combined;
    state.tunedPlans = true;
    state.shape.layers.push_back({8, 8, 4});
    state.ladder.push_back({0.1, 0.2, quant::QuantMode::Int8});

    runtime::ScheduleDecisions d;
    runtime::LayerSchedule ls;
    ls.skipPath = runtime::SkipPath::Software;
    ls.skipFraction = 0.3;
    ls.flagFusion = runtime::FlagFusion::FusedEpilogue;
    ls.quant = quant::QuantMode::Int8;
    d.layers.push_back(ls);
    state.plans.push_back(runtime::ExecutionPlan::fromDecisions(d));
    serve::saveEngineState(state, path_);

    const serve::EngineWarmState loaded =
        serve::loadEngineState(path_);
    EXPECT_TRUE(loaded.tunedPlans);
    ASSERT_EQ(loaded.plans.size(), 1u);
    EXPECT_EQ(loaded.plans[0].kind, runtime::PlanKind::Tuned);
    ASSERT_TRUE(loaded.plans[0].hasExplicitDecisions());
    EXPECT_EQ(loaded.plans[0].decisions.layers, d.layers);
    EXPECT_EQ(loaded.plans, state.plans);
    EXPECT_NO_THROW(serve::verifyEngineStateFile(path_));
}

TEST_F(WarmRestartTest, TuningModeMismatchRejectedAsStale)
{
    {
        serve::InferenceEngine engine(mf, engineOptions());
        serve::saveEngineState(engine, path_);
    }
    const serve::EngineWarmState warm = serve::loadEngineState(path_);
    EXPECT_FALSE(warm.tunedPlans);

    // Untuned warm state must not be adopted by an engine asked to
    // serve searched plans (and vice versa): reject as Stale, retune.
    serve::InferenceEngine::Options opts = engineOptions();
    opts.tunePlans = true;
    try {
        serve::InferenceEngine engine(mf, opts, warm);
        FAIL() << "tuning-mode mismatch accepted";
    } catch (const io::ArtifactError &e) {
        EXPECT_EQ(e.kind(), io::ErrorKind::Stale);
    }
}

TEST_F(WarmRestartTest, FutureSchemaVersionRejected)
{
    {
        serve::InferenceEngine engine(mf, engineOptions());
        serve::saveEngineState(engine, path_);
    }
    // Re-wrap the valid payload under a version this build predates
    // (one past the current v5 backend-id schema).
    const serve::EngineWarmState good = serve::loadEngineState(path_);
    io::ArtifactWriter w(io::kSchemaEngineState, 6);
    io::ByteWriter &f = w.chunk(io::fourcc('E', 'F', 'P', 'R'));
    f.u32(good.modelWeightsCrc);
    f.u32(static_cast<std::uint32_t>(good.plan));
    f.f64(good.pruneFraction);
    w.commit(path_);
    try {
        (void)serve::loadEngineState(path_);
        FAIL() << "future schema version accepted";
    } catch (const io::ArtifactError &e) {
        EXPECT_EQ(e.kind(), io::ErrorKind::BadVersion);
    }
}

TEST_F(WarmRestartTest, UnknownQuantModeRejected)
{
    serve::EngineWarmState state;
    state.modelWeightsCrc = 1;
    state.plan = runtime::PlanKind::Baseline;
    state.shape.layers.push_back({8, 8, 4});
    state.ladder.push_back({0.0, 0.0, quant::QuantMode::Fp32});
    state.plans.push_back({});
    serve::saveEngineState(state, path_);

    // Rewrite with an out-of-range mode in the ladder rung.
    io::ArtifactWriter w(io::kSchemaEngineState, 2);
    io::ByteWriter &f = w.chunk(io::fourcc('E', 'F', 'P', 'R'));
    f.u32(1);
    f.u32(static_cast<std::uint32_t>(runtime::PlanKind::Baseline));
    f.f64(0.0);
    io::ByteWriter &s = w.chunk(io::fourcc('E', 'S', 'H', 'P'));
    s.u64(1);
    s.u64(8);
    s.u64(8);
    s.u64(4);
    io::ByteWriter &l = w.chunk(io::fourcc('E', 'L', 'A', 'D'));
    l.u64(1);
    l.f64(0.0);
    l.f64(0.0);
    l.u32(99);  // no such QuantMode
    io::ByteWriter &p = w.chunk(io::indexedTag('E', 'P', 0));
    p.u32(static_cast<std::uint32_t>(runtime::PlanKind::Baseline));
    p.u32(0);
    p.f64(0.0);
    p.u64(0);
    p.u64(0);
    w.commit(path_);
    try {
        (void)serve::loadEngineState(path_);
        FAIL() << "unknown quant mode accepted";
    } catch (const io::ArtifactError &e) {
        EXPECT_EQ(e.kind(), io::ErrorKind::Malformed);
    }
}

} // namespace
