/**
 * @file
 * Tests for activation functions and the sensitive/insensitive-area
 * analysis (Section IV-A, Fig. 7) that the relevance computation uses.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/activations.hh"
#include "tensor/matrix.hh"

namespace {

using namespace mflstm::tensor;

TEST(Sigmoid, KnownValues)
{
    EXPECT_FLOAT_EQ(sigmoid(0.0f), 0.5f);
    EXPECT_NEAR(sigmoid(2.0f), 0.8808f, 1e-3f);
    EXPECT_NEAR(sigmoid(-2.0f), 0.1192f, 1e-3f);
}

TEST(Sigmoid, SaturatesOutsideSensitiveArea)
{
    // The paper's premise: beyond +-2 the output is effectively constant.
    EXPECT_GT(sigmoid(6.0f), 0.99f);
    EXPECT_LT(sigmoid(-6.0f), 0.01f);
}

TEST(HardSigmoid, PiecewiseLinearShape)
{
    EXPECT_FLOAT_EQ(hardSigmoid(0.0f), 0.5f);
    EXPECT_FLOAT_EQ(hardSigmoid(2.0f), 1.0f);
    EXPECT_FLOAT_EQ(hardSigmoid(-2.0f), 0.0f);
    EXPECT_FLOAT_EQ(hardSigmoid(10.0f), 1.0f);
    EXPECT_FLOAT_EQ(hardSigmoid(1.0f), 0.75f);
}

TEST(HardSigmoid, SharesSensitiveBoundaryWithLogistic)
{
    // Fig. 7: the same [-2, 2] boundary fits both variants.
    EXPECT_FLOAT_EQ(hardSigmoid(kSensitiveBound), 1.0f);
    EXPECT_FLOAT_EQ(hardSigmoid(-kSensitiveBound), 0.0f);
}

TEST(TanhAct, OddAndBounded)
{
    EXPECT_FLOAT_EQ(tanhAct(0.0f), 0.0f);
    EXPECT_FLOAT_EQ(tanhAct(1.0f), -tanhAct(-1.0f));
    EXPECT_LT(std::fabs(tanhAct(20.0f)), 1.0f + 1e-6f);
}

TEST(Gradients, FromOutputMatchAnalytic)
{
    const float s = sigmoid(0.7f);
    EXPECT_NEAR(sigmoidGradFromOutput(s), s * (1 - s), 1e-6f);

    const float t = std::tanh(0.3f);
    EXPECT_NEAR(tanhGradFromOutput(t), 1 - t * t, 1e-6f);
}

TEST(InplaceVariants, ApplyElementwise)
{
    Vector v{-100.0f, 0.0f, 100.0f};
    sigmoidInplace(v.span());
    EXPECT_NEAR(v[0], 0.0f, 1e-6f);
    EXPECT_FLOAT_EQ(v[1], 0.5f);
    EXPECT_NEAR(v[2], 1.0f, 1e-6f);

    Vector w{-100.0f, 0.0f, 100.0f};
    tanhInplace(w.span());
    EXPECT_NEAR(w[0], -1.0f, 1e-6f);
    EXPECT_FLOAT_EQ(w[1], 0.0f);

    Vector u{-100.0f, 0.0f, 100.0f};
    hardSigmoidInplace(u.span());
    EXPECT_FLOAT_EQ(u[0], 0.0f);
    EXPECT_FLOAT_EQ(u[1], 0.5f);
    EXPECT_FLOAT_EQ(u[2], 1.0f);
}

TEST(SensitiveArea, IntervalClassification)
{
    EXPECT_TRUE(intervalInsensitive(2.0f, 5.0f));
    EXPECT_TRUE(intervalInsensitive(-9.0f, -2.0f));
    EXPECT_FALSE(intervalInsensitive(-1.0f, 1.0f));
    EXPECT_FALSE(intervalInsensitive(1.5f, 2.5f));
}

TEST(SensitiveArea, OverlapLengths)
{
    // Entirely inside.
    EXPECT_FLOAT_EQ(sensitiveOverlap(-1.0f, 1.0f), 2.0f);
    // Entirely outside.
    EXPECT_FLOAT_EQ(sensitiveOverlap(3.0f, 9.0f), 0.0f);
    // Straddles the upper boundary.
    EXPECT_FLOAT_EQ(sensitiveOverlap(1.0f, 5.0f), 1.0f);
    // Covers the whole sensitive area: maximal overlap is 4.
    EXPECT_FLOAT_EQ(sensitiveOverlap(-10.0f, 10.0f), 4.0f);
}

} // namespace
