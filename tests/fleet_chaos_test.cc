/**
 * @file
 * Deterministic chaos plans (DESIGN.md §16). The contract under test:
 * ChaosPlan::standard is a pure function of (seed, replicas, horizon)
 * — regenerating from the recorded seed reproduces the same events
 * bit-identically (the bench gate's replay check compares describe()
 * strings) — and the standard plan always schedules exactly one event
 * of each kind in disjoint quarters of the horizon.
 */

#include <gtest/gtest.h>

#include <set>

#include "fleet/chaos.hh"

namespace {

using namespace mflstm;
using namespace mflstm::fleet;

TEST(ChaosPlan, StandardIsDeterministicPerSeed)
{
    const ChaosPlan a = ChaosPlan::standard(42, 3, 64);
    const ChaosPlan b = ChaosPlan::standard(42, 3, 64);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.describe(), b.describe());

    // A different seed perturbs the schedule (ticks, replicas or
    // parameters); describe() equality is the bit-identity test.
    const ChaosPlan c = ChaosPlan::standard(43, 3, 64);
    EXPECT_NE(a.describe(), c.describe());
}

TEST(ChaosPlan, DescribeEqualityIsTheReplayCheck)
{
    // The bench gate records only the seed; replaying means calling
    // standard() again with the recorded arguments.
    const ChaosPlan recorded = ChaosPlan::standard(7, 2, 32);
    const ChaosPlan replayed =
        ChaosPlan::standard(recorded.seed, 2, recorded.horizonTicks);
    EXPECT_EQ(recorded.describe(), replayed.describe());
    EXPECT_EQ(recorded, replayed);
}

TEST(ChaosPlan, StandardSchedulesOneEventOfEachKind)
{
    for (std::uint64_t seed : {1u, 2u, 99u, 12345u}) {
        const ChaosPlan p = ChaosPlan::standard(seed, 3, 40);
        ASSERT_EQ(p.events.size(), 4u) << "seed " << seed;

        std::set<ChaosEvent::Kind> kinds;
        for (const ChaosEvent &e : p.events)
            kinds.insert(e.kind);
        EXPECT_EQ(kinds.size(), 4u) << "seed " << seed;
    }
}

TEST(ChaosPlan, StandardEventsLandInDisjointQuarters)
{
    for (std::uint64_t seed : {3u, 17u, 31337u}) {
        const ChaosPlan p = ChaosPlan::standard(seed, 2, 48);
        const std::uint64_t quarter = p.horizonTicks / 4;
        ASSERT_EQ(p.events.size(), 4u);
        for (std::size_t i = 0; i < p.events.size(); ++i) {
            const ChaosEvent &e = p.events[i];
            EXPECT_GE(e.tick, i * quarter) << "seed " << seed;
            EXPECT_LT(e.tick, (i + 1) * quarter) << "seed " << seed;
            EXPECT_LT(e.replica, 2u);
        }
        // Events are sorted by tick (eventsAt relies on plan order).
        for (std::size_t i = 1; i < p.events.size(); ++i)
            EXPECT_GE(p.events[i].tick, p.events[i - 1].tick);
        // Never tick 0: the fleet heartbeats once before any fault.
        EXPECT_GT(p.events.front().tick, 0u);
    }
}

TEST(ChaosPlan, StandardParametersAreInRange)
{
    for (std::uint64_t seed = 0; seed < 32; ++seed) {
        const ChaosPlan p = ChaosPlan::standard(seed, 4, 64);
        for (const ChaosEvent &e : p.events) {
            switch (e.kind) {
            case ChaosEvent::Kind::Brownout:
                EXPECT_GE(e.durationTicks, 1u);
                EXPECT_GE(e.brownoutMs, 5.0);
                EXPECT_LE(e.brownoutMs, 21.0);
                break;
            case ChaosEvent::Kind::FlashCrowd:
                EXPECT_GE(e.burstRequests, 8u);
                EXPECT_LE(e.burstRequests, 16u);
                break;
            case ChaosEvent::Kind::Crash:
            case ChaosEvent::Kind::CorruptRestart:
                break;
            }
        }
    }
}

TEST(ChaosPlan, EventsAtReturnsOnlyThatTick)
{
    const ChaosPlan p = ChaosPlan::standard(11, 2, 40);
    std::size_t total = 0;
    for (std::uint64_t t = 0; t < p.horizonTicks; ++t) {
        for (const ChaosEvent &e : p.eventsAt(t)) {
            EXPECT_EQ(e.tick, t);
            ++total;
        }
    }
    EXPECT_EQ(total, p.events.size());
    EXPECT_TRUE(p.eventsAt(p.horizonTicks + 100).empty());
}

TEST(ChaosPlan, StandardRejectsDegenerateArguments)
{
    EXPECT_THROW(ChaosPlan::standard(1, 0, 40), std::invalid_argument);
    EXPECT_THROW(ChaosPlan::standard(1, 2, 7), std::invalid_argument);
}

TEST(ChaosPlan, DescribeMentionsEveryEvent)
{
    const ChaosPlan p = ChaosPlan::standard(5, 2, 32);
    const std::string d = p.describe();
    EXPECT_NE(d.find("crash"), std::string::npos);
    EXPECT_NE(d.find("brownout"), std::string::npos);
    EXPECT_NE(d.find("corrupt-restart"), std::string::npos);
    EXPECT_NE(d.find("flash-crowd"), std::string::npos);
}

} // namespace
