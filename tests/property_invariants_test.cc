/**
 * @file
 * Property-based sweeps over cross-module invariants:
 *
 *  - lowering conserves work (FLOPs of the emitted kernels match the
 *    closed-form LSTM cost for every plan kind and random shape);
 *  - the simulator's monotonicities (more skip -> less time on the HW
 *    path; more cells -> more time; weaker GPUs -> more time);
 *  - the approximation knobs are monotone (larger alpha_intra skips
 *    more rows, larger alpha_inter breaks more links);
 *  - energy is internally consistent (components non-negative, total
 *    is their sum).
 */

#include <gtest/gtest.h>

#include "core/approx.hh"
#include "runtime/executor.hh"
#include "tensor/rng.hh"

namespace {

using namespace mflstm;

/** Closed-form FLOPs of one baseline LSTM layer inference. */
double
layerFlops(const runtime::LstmLayerShape &s)
{
    const double h = static_cast<double>(s.hiddenSize);
    const double e = static_cast<double>(s.inputSize);
    const double n = static_cast<double>(s.length);
    const double gemm_w = 2.0 * 4.0 * h * e * n;
    const double gemv_u = 2.0 * 4.0 * h * h * n;
    const double ew = 25.0 * h * n;
    return gemm_w + gemv_u + ew;
}

class LoweringProperty : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(LoweringProperty, FlopConservationAcrossPlans)
{
    tensor::Rng rng(GetParam());
    const runtime::LstmLayerShape shape{
        static_cast<std::size_t>(rng.integer(64, 640)),
        static_cast<std::size_t>(rng.integer(64, 640)),
        static_cast<std::size_t>(rng.integer(4, 60))};

    runtime::Lowering low(gpu::GpuConfig::tegraX1());

    // Baseline: exact conservation.
    {
        runtime::ExecutionPlan plan;
        gpu::KernelTrace trace;
        low.lowerLayer(shape, plan, 0, trace);
        double flops = 0.0;
        for (const auto &k : trace)
            flops += k.flops;
        EXPECT_NEAR(flops / layerFlops(shape), 1.0, 1e-6);
    }

    // Inter-cell with full-size tissues: identical useful FLOPs plus
    // the small relevance-kernel overhead.
    {
        runtime::ExecutionPlan plan;
        plan.kind = runtime::PlanKind::InterCell;
        runtime::LayerInterPlan ip;
        std::size_t left = shape.length;
        while (left) {
            const std::size_t t = std::min<std::size_t>(4, left);
            ip.tissueSizes.push_back(t);
            left -= t;
        }
        plan.inter = {ip};
        gpu::KernelTrace trace;
        low.lowerLayer(shape, plan, 0, trace);
        double flops = 0.0;
        for (const auto &k : trace)
            flops += k.flops;
        EXPECT_GE(flops, layerFlops(shape) * 0.999);
        EXPECT_LE(flops, layerFlops(shape) * 1.05);
    }

    // DRS: useful FLOPs shrink by exactly the skipped share of U_fic.
    {
        const double skip = rng.uniform(0.1f, 0.9f);
        runtime::ExecutionPlan plan;
        plan.kind = runtime::PlanKind::IntraCellHw;
        plan.intra = {{skip}};
        gpu::KernelTrace trace;
        low.lowerLayer(shape, plan, 0, trace);
        double gemv_flops = 0.0;
        for (const auto &k : trace) {
            if (k.klass == gpu::KernelClass::Sgemv)
                gemv_flops += k.flops;
        }
        const double h = static_cast<double>(shape.hiddenSize);
        const double n = static_cast<double>(shape.length);
        const double expect =
            2.0 * h * h * n +                       // U_o part
            6.0 * h * n +                           // flag epilogue
            2.0 * 3.0 * h * h * n * (1.0 - skip);   // U_fic part
        EXPECT_NEAR(gemv_flops / expect, 1.0, 1e-6);
    }
}

INSTANTIATE_TEST_SUITE_P(RandomShapes, LoweringProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

class SkipMonotonicity : public ::testing::TestWithParam<int>
{};

TEST_P(SkipMonotonicity, MoreSkipNeverSlowerOnHwPath)
{
    const auto seed = static_cast<std::uint64_t>(GetParam());
    tensor::Rng rng(seed);
    const std::size_t hidden =
        static_cast<std::size_t>(rng.integer(128, 768));
    const auto shape = runtime::NetworkShape::stacked(hidden, hidden, 1,
                                                      16);
    runtime::NetworkExecutor ex(gpu::GpuConfig::tegraX1());

    double prev = 1e18;
    for (double skip : {0.0, 0.2, 0.4, 0.6, 0.8}) {
        runtime::ExecutionPlan plan;
        plan.kind = runtime::PlanKind::IntraCellHw;
        plan.intra = {{skip}};
        const double t = ex.run(shape, plan).result.timeUs;
        if (skip > 0.0) {
            EXPECT_LE(t, prev * 1.001) << "skip " << skip;
        }
        prev = t;
    }
}

INSTANTIATE_TEST_SUITE_P(Hidden, SkipMonotonicity,
                         ::testing::Range(1, 7));

TEST(SimulatorMonotonicity, LongerLayersTakeLonger)
{
    runtime::NetworkExecutor ex(gpu::GpuConfig::tegraX1());
    runtime::ExecutionPlan plan;
    double prev = 0.0;
    for (std::size_t n : {5u, 10u, 20u, 40u}) {
        const double t =
            ex.run(runtime::NetworkShape::stacked(256, 256, 1, n), plan)
                .result.timeUs;
        EXPECT_GT(t, prev);
        prev = t;
    }
}

TEST(SimulatorMonotonicity, FasterGpuIsFaster)
{
    const auto shape = runtime::NetworkShape::stacked(512, 512, 2, 20);
    runtime::ExecutionPlan plan;
    const double tx1 =
        runtime::NetworkExecutor(gpu::GpuConfig::tegraX1())
            .run(shape, plan)
            .result.timeUs;
    const double tx2 =
        runtime::NetworkExecutor(gpu::GpuConfig::tegraX2Like())
            .run(shape, plan)
            .result.timeUs;
    EXPECT_LT(tx2, tx1);
}

class ThresholdMonotonicity
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(ThresholdMonotonicity, KnobsAreMonotone)
{
    nn::ModelConfig cfg;
    cfg.task = nn::TaskKind::Classification;
    cfg.vocab = 24;
    cfg.embedSize = 10;
    cfg.hiddenSize = 14;
    cfg.numLayers = 2;
    cfg.numClasses = 2;
    const nn::LstmModel model(cfg, GetParam());

    core::ApproxRunner runner(model);
    tensor::Rng rng(GetParam() + 100);
    std::vector<std::vector<std::int32_t>> seqs(4);
    for (auto &s : seqs)
        for (int t = 0; t < 10; ++t)
            s.push_back(static_cast<std::int32_t>(rng.integer(0, 23)));
    runner.calibrate(seqs);

    // Larger alpha_intra -> monotonically larger skip fraction.
    double prev_skip = -1.0;
    for (double a : {0.0, 0.05, 0.2, 0.5, 0.9}) {
        runner.resetStats();
        runner.setThresholds(0.0, a);
        for (const auto &s : seqs)
            runner.classify(s);
        const double skip =
            runner.stats()[0].skipFraction(cfg.hiddenSize);
        EXPECT_GE(skip, prev_skip);
        prev_skip = skip;
    }

    // Larger alpha_inter -> monotonically larger break rate.
    double prev_break = -1.0;
    for (double a : {0.0, 10.0, 100.0, 400.0, 1e9}) {
        runner.resetStats();
        runner.setThresholds(a, 0.0);
        for (const auto &s : seqs)
            runner.classify(s);
        double rate = 0.0;
        for (const auto &st : runner.stats())
            rate += st.breakRate();
        EXPECT_GE(rate, prev_break);
        prev_break = rate;
    }
    EXPECT_DOUBLE_EQ(prev_break, 2.0);  // 1e9 breaks every link/layer
}

INSTANTIATE_TEST_SUITE_P(Models, ThresholdMonotonicity,
                         ::testing::Range<std::uint64_t>(1, 7));

TEST(EnergyConsistency, ComponentsNonNegativeAndSumUp)
{
    runtime::NetworkExecutor ex(gpu::GpuConfig::tegraX1());
    for (runtime::PlanKind kind :
         {runtime::PlanKind::Baseline, runtime::PlanKind::IntraCellHw}) {
        runtime::ExecutionPlan plan;
        plan.kind = kind;
        if (plan.usesIntra())
            plan.intra = {{0.5}};
        const auto r =
            ex.run(runtime::NetworkShape::stacked(256, 256, 1, 10),
                   plan)
                .result;
        const auto &e = r.energy;
        EXPECT_GE(e.staticJ, 0.0);
        EXPECT_GE(e.gpuDynamicJ, 0.0);
        EXPECT_GE(e.dramJ, 0.0);
        EXPECT_GE(e.onChipJ, 0.0);
        EXPECT_GE(e.crmJ, 0.0);
        EXPECT_NEAR(e.totalJ(),
                    e.staticJ + e.gpuDynamicJ + e.dramJ + e.onChipJ +
                        e.crmJ,
                    1e-12);
    }
}

} // namespace
