/**
 * @file
 * Tests for the attribution-report layer: ProfileReport build from a
 * ledger, the versioned JSON schema (write -> parse round trip, schema
 * and version validation), the differential mode behind
 * `mflstm profile --baseline`, and the human-readable tables.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "obs/json.hh"
#include "obs/profile.hh"

namespace {

using namespace mflstm;
using obs::MatrixStream;
using obs::ProfileReport;
using obs::TrafficLedger;
using obs::TrafficSample;

void
fillLedgerWithTwoKernels(TrafficLedger &ledger)
{
    TrafficSample a;
    a.layer = 0;
    a.matrix = MatrixStream::W;
    a.kernel = "Sgemm(W_fico, x)";
    a.kernelClass = "Sgemm";
    a.totalDramBytes = 800.0;
    a.weightBytes = 500.0;
    a.timeUs = 10.0;
    a.bottleneck = "occupancy";
    ledger.record(a);

    TrafficSample b;
    b.layer = 0;
    b.matrix = MatrixStream::U;
    b.kernel = "Sgemv(U_fic, h)";
    b.kernelClass = "Sgemv";
    b.totalDramBytes = 1200.0;
    b.weightBytes = 900.0;
    b.scaleBytes = 100.0;
    b.timeUs = 30.0;
    b.bottleneck = "bandwidth";
    ledger.record(b);
}

ProfileReport
reportFixture()
{
    TrafficLedger ledger;
    fillLedgerWithTwoKernels(ledger);
    ProfileReport rep = ProfileReport::build(ledger, 2000.0, 40.0);
    rep.app = "IMDB";
    rep.plan = "combined";
    rep.quant = "int8";
    rep.batch = 1;
    return rep;
}

TEST(ProfileReport, BuildSnapshotsLedger)
{
    const ProfileReport rep = reportFixture();
    EXPECT_TRUE(rep.conserved());
    EXPECT_DOUBLE_EQ(rep.traceDramBytes, 2000.0);
    EXPECT_DOUBLE_EQ(rep.attributedDramBytes, 2000.0);
    EXPECT_EQ(rep.samples, 2u);
    // W weight, W activation residual, U weight, U scale, U residual.
    EXPECT_EQ(rep.traffic.size(), 5u);
    ASSERT_EQ(rep.kernels.size(), 2u);
    // Kernel rows carry the bottleneck classification.
    EXPECT_EQ(rep.kernels[0].dominantBottleneck(), "occupancy");
    EXPECT_EQ(rep.kernels[1].dominantBottleneck(), "bandwidth");
}

TEST(ProfileReport, BuildRecordsConservationFailure)
{
    TrafficLedger ledger;
    fillLedgerWithTwoKernels(ledger);
    const ProfileReport rep =
        ProfileReport::build(ledger, 2000.0 + 1.0, 40.0);
    EXPECT_FALSE(rep.conserved());
    EXPECT_FALSE(rep.conservationErrors.empty());
}

TEST(ProfileReport, JsonRoundTripsThroughSchema)
{
    const ProfileReport rep = reportFixture();
    std::ostringstream os;
    rep.writeJson(os);

    // The document carries its schema identity.
    const auto doc = obs::parseJson(os.str());
    ASSERT_TRUE(doc.has_value());
    ASSERT_TRUE(doc->find("schema"));
    EXPECT_EQ(doc->find("schema")->str, obs::kProfileSchema);
    ASSERT_TRUE(doc->find("version"));
    EXPECT_EQ(doc->find("version")->number, obs::kProfileVersion);

    const ProfileReport back = ProfileReport::parseJsonText(os.str());
    EXPECT_EQ(back.app, rep.app);
    EXPECT_EQ(back.plan, rep.plan);
    EXPECT_EQ(back.quant, rep.quant);
    EXPECT_EQ(back.batch, rep.batch);
    EXPECT_DOUBLE_EQ(back.traceDramBytes, rep.traceDramBytes);
    EXPECT_DOUBLE_EQ(back.attributedDramBytes, rep.attributedDramBytes);
    ASSERT_EQ(back.traffic.size(), rep.traffic.size());
    for (std::size_t i = 0; i < rep.traffic.size(); ++i) {
        EXPECT_EQ(back.traffic[i].kernel, rep.traffic[i].kernel);
        EXPECT_EQ(back.traffic[i].cause, rep.traffic[i].cause);
        EXPECT_DOUBLE_EQ(back.traffic[i].bytes, rep.traffic[i].bytes);
    }
    ASSERT_EQ(back.kernels.size(), rep.kernels.size());
    EXPECT_EQ(back.kernels[1].dominantBottleneck(), "bandwidth");
}

TEST(ProfileReport, ParseRejectsForeignDocuments)
{
    EXPECT_THROW(ProfileReport::parseJsonText("not json"),
                 std::runtime_error);
    EXPECT_THROW(ProfileReport::parseJsonText("{}"),
                 std::runtime_error);
    EXPECT_THROW(ProfileReport::parseJsonText(
                     R"({"schema":"other.schema","version":1})"),
                 std::runtime_error);
    EXPECT_THROW(
        ProfileReport::parseJsonText(
            R"({"schema":"mflstm.profile","version":999})"),
        std::runtime_error);
}

TEST(ProfileDiff, IdenticalReportsProduceNoDeltas)
{
    const ProfileReport rep = reportFixture();
    EXPECT_TRUE(obs::diffReports(rep, rep).empty());
}

TEST(ProfileDiff, FlagsByteRegressionAtTheNodeThatMoved)
{
    const ProfileReport base = reportFixture();
    ProfileReport cur = base;
    for (auto &node : cur.traffic) {
        if (node.cause == "weight" && node.matrix == "U")
            node.bytes *= 1.5;
    }

    const auto deltas = obs::diffReports(base, cur, 0.1);
    ASSERT_FALSE(deltas.empty());
    bool found = false;
    for (const obs::ProfileDelta &d : deltas) {
        if (d.node.find("Sgemv(U_fic, h)") != std::string::npos &&
            d.node.find("weight") != std::string::npos) {
            found = true;
            EXPECT_TRUE(d.regression);
            EXPECT_NEAR(d.ratio, 1.5, 1e-12);
        }
    }
    EXPECT_TRUE(found);
    // Rendered table mentions the node.
    EXPECT_NE(obs::formatDeltas(deltas).find("Sgemv(U_fic, h)"),
              std::string::npos);
}

TEST(ProfileDiff, NewNodeRegressesVanishedNodeDoesNot)
{
    const ProfileReport base = reportFixture();
    ProfileReport cur = base;
    ProfileReport::TrafficNode extra;
    extra.layer = 2;
    extra.matrix = "U";
    extra.kernel = "Sgemv(U_new, h)";
    extra.cause = "weight";
    extra.bytes = 64.0;
    cur.traffic.push_back(extra);

    // New-from-zero traffic is a regression...
    bool new_regresses = false;
    for (const obs::ProfileDelta &d : obs::diffReports(base, cur)) {
        if (d.node.find("Sgemv(U_new, h)") != std::string::npos)
            new_regresses = d.regression;
    }
    EXPECT_TRUE(new_regresses);

    // ...while traffic that vanished is an improvement.
    for (const obs::ProfileDelta &d : obs::diffReports(cur, base)) {
        if (d.node.find("Sgemv(U_new, h)") != std::string::npos) {
            EXPECT_FALSE(d.regression);
        }
    }
}

TEST(ProfileDiff, FlagsKernelTimeRegressions)
{
    const ProfileReport base = reportFixture();
    ProfileReport cur = base;
    cur.kernels[1].timeUs *= 2.0;

    bool found = false;
    for (const obs::ProfileDelta &d : obs::diffReports(base, cur)) {
        if (d.node.rfind("time:", 0) == 0 &&
            d.node.find("Sgemv(U_fic, h)") != std::string::npos) {
            found = true;
            EXPECT_TRUE(d.regression);
        }
    }
    EXPECT_TRUE(found);
}

TEST(ProfileReport, FormatTableShowsConservationAndBottlenecks)
{
    const std::string table = reportFixture().formatTable();
    EXPECT_NE(table.find("conservation: OK"), std::string::npos);
    EXPECT_NE(table.find("bandwidth"), std::string::npos);
    EXPECT_NE(table.find("Sgemm(W_fico, x)"), std::string::npos);
}

} // namespace
