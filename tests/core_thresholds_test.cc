/**
 * @file
 * Tests for the threshold tuning space: limits, the 11-set ladder of
 * Fig. 19, the AO/BPA selectors and the preference-constrained selector
 * that underlies the UO scheme, plus the plan builder.
 */

#include <gtest/gtest.h>

#include "core/planner.hh"
#include "core/thresholds.hh"

namespace {

using namespace mflstm;
using namespace mflstm::core;

ApproxRunner::CalibrationProfile
syntheticProfile()
{
    ApproxRunner::CalibrationProfile prof;
    prof.layerRelevances.resize(1);
    for (int i = 0; i <= 100; ++i) {
        prof.relevances.push_back(static_cast<double>(i));
        prof.layerRelevances[0].push_back(static_cast<double>(i));
        prof.outputGates.push_back(static_cast<float>(i) / 100.0f);
    }
    return prof;
}

TEST(ThresholdLimits, QuantilesFromProfile)
{
    const auto prof = syntheticProfile();
    const ThresholdLimits lim = findThresholdLimits(prof, 5, 81, 0.75);
    // maxBreakFraction = 4/80 = 5% -> 5th percentile of 0..100.
    EXPECT_NEAR(lim.maxBreakFraction, 0.05, 1e-12);
    EXPECT_NEAR(lim.maxInter, 5.0, 1.0);
    EXPECT_NEAR(lim.maxIntra, 0.75, 0.01);
    EXPECT_DOUBLE_EQ(lim.maxSkipFraction, 0.75);
}

TEST(ThresholdLimits, RejectsZeroInputs)
{
    const auto prof = syntheticProfile();
    EXPECT_THROW(findThresholdLimits(prof, 0, 10),
                 std::invalid_argument);
    EXPECT_THROW(findThresholdLimits(prof, 5, 0),
                 std::invalid_argument);
}

TEST(ProjectedTissueCount, MonotoneNonIncreasingInAlpha)
{
    const auto prof = syntheticProfile();
    std::size_t prev = projectedTissueCount(prof, 0.0, 5, 81);
    EXPECT_EQ(prev, 81u);  // no breaks: one cell per tissue
    for (double alpha : {5.0, 20.0, 50.0, 90.0}) {
        const std::size_t count = projectedTissueCount(prof, alpha, 5,
                                                       81);
        EXPECT_LE(count, prev);
        prev = count;
    }
    // Enough breaks reach Eq. 7's floor of ceil(81/5) = 17.
    EXPECT_EQ(projectedTissueCount(prof, 90.0, 5, 81), 17u);
}

TEST(ProjectedTissueCount, LayerBreakFractionLookup)
{
    const auto prof = syntheticProfile();
    EXPECT_DOUBLE_EQ(prof.layerBreakFraction(0, 0.0), 0.0);
    EXPECT_NEAR(prof.layerBreakFraction(0, 50.0), 0.5, 0.01);
    EXPECT_DOUBLE_EQ(prof.layerBreakFraction(0, 1e9), 1.0);
    // Out-of-range layer is harmless.
    EXPECT_DOUBLE_EQ(prof.layerBreakFraction(7, 50.0), 0.0);
}

TEST(ThresholdLimits, PicksSmallestAlphaAtMinTissueCount)
{
    const auto prof = syntheticProfile();
    const ThresholdLimits lim = findThresholdLimits(prof, 5, 81, 0.75);
    const std::size_t at_limit =
        projectedTissueCount(prof, lim.maxInter, 5, 81);
    // The limit achieves the minimum over the swept range...
    EXPECT_EQ(at_limit, projectedTissueCount(
                            prof, prof.relevanceQuantile(0.5), 5, 81));
    // ...and a slightly smaller alpha would not.
    EXPECT_GT(projectedTissueCount(prof, lim.maxInter * 0.5, 5, 81),
              at_limit);
}

TEST(ThresholdLadder, ElevenMonotoneSets)
{
    const auto prof = syntheticProfile();
    const ThresholdLimits lim = findThresholdLimits(prof, 5, 81, 0.75);
    const auto ladder = thresholdLadder(prof, lim);

    ASSERT_EQ(ladder.size(), 11u);
    EXPECT_DOUBLE_EQ(ladder[0].alphaInter, 0.0);  // set 0 = baseline
    EXPECT_DOUBLE_EQ(ladder[0].alphaIntra, 0.0);
    for (std::size_t i = 1; i < ladder.size(); ++i) {
        EXPECT_GE(ladder[i].alphaInter, ladder[i - 1].alphaInter);
        EXPECT_GE(ladder[i].alphaIntra, ladder[i - 1].alphaIntra);
    }
    EXPECT_NEAR(ladder.back().alphaInter, lim.maxInter, 1.0);
    EXPECT_NEAR(ladder.back().alphaIntra, lim.maxIntra, 0.02);
}

TEST(ThresholdLadder, RejectsTinyCount)
{
    const auto prof = syntheticProfile();
    EXPECT_THROW(thresholdLadder(prof, {}, 1), std::invalid_argument);
}

std::vector<OperatingPoint>
tradeoffCurve()
{
    // A typical Fig. 19 curve: speedup rises, accuracy falls.
    std::vector<OperatingPoint> pts;
    const double speedups[] = {1.0, 1.3, 1.6, 1.9, 2.2, 2.5,
                               2.8, 3.0, 3.2, 3.3, 3.4};
    const double accs[] = {0.90, 0.90, 0.895, 0.89, 0.885, 0.88,
                           0.87, 0.85, 0.82, 0.75, 0.60};
    for (std::size_t i = 0; i < 11; ++i)
        pts.push_back({i, {}, speedups[i], accs[i]});
    return pts;
}

TEST(Selection, AoPicksFastestWithinLossBudget)
{
    const auto pts = tradeoffCurve();
    // 2% of 0.90 baseline -> floor 0.88: set 5 is the fastest eligible.
    EXPECT_EQ(selectAo(pts, 0.90, 2.0), 5u);
}

TEST(Selection, AoFallsBackToMostAccurate)
{
    std::vector<OperatingPoint> pts = {{0, {}, 2.0, 0.5},
                                       {1, {}, 3.0, 0.4}};
    // Nothing within 2% of 0.9: pick the most accurate.
    EXPECT_EQ(selectAo(pts, 0.9, 2.0), 0u);
}

TEST(Selection, BpaMaximisesProduct)
{
    const auto pts = tradeoffCurve();
    std::size_t best = 0;
    double best_score = 0.0;
    for (const auto &p : pts) {
        if (p.speedup * p.accuracy > best_score) {
            best_score = p.speedup * p.accuracy;
            best = p.index;
        }
    }
    EXPECT_EQ(selectBpa(pts), best);
    // And BPA trades more accuracy than AO (the Fig. 18 tension).
    EXPECT_GT(selectBpa(pts), selectAo(pts, 0.90, 2.0));
}

TEST(Selection, PreferenceConstrained)
{
    const auto pts = tradeoffCurve();
    EXPECT_EQ(selectForPreference(pts, 0.886), 3u);
    EXPECT_EQ(selectForPreference(pts, 0.60), 10u);
    // Impossible floor: most accurate point wins.
    EXPECT_EQ(selectForPreference(pts, 0.99), 0u);
}

TEST(Selection, EmptyPointsThrow)
{
    EXPECT_THROW(selectAo({}, 1.0), std::invalid_argument);
    EXPECT_THROW(selectBpa({}), std::invalid_argument);
    EXPECT_THROW(selectForPreference({}, 0.5), std::invalid_argument);
}

TEST(Planner, EvenSubLayersPartition)
{
    EXPECT_EQ(evenSubLayers(10, 3),
              (std::vector<std::size_t>{4, 3, 3}));
    EXPECT_EQ(evenSubLayers(9, 3), (std::vector<std::size_t>{3, 3, 3}));
    EXPECT_EQ(evenSubLayers(5, 99),
              (std::vector<std::size_t>{1, 1, 1, 1, 1}));
    EXPECT_EQ(evenSubLayers(5, 0), (std::vector<std::size_t>{5}));
    EXPECT_TRUE(evenSubLayers(0, 3).empty());
}

TEST(Planner, BuildPlanProjectsBreakRate)
{
    std::vector<LayerApproxStats> stats(2);
    stats[0].sequences = 1;
    stats[0].links = 20;
    stats[0].breaks = 4;   // 20% break rate
    stats[0].cells = 21;
    stats[1].sequences = 1;
    stats[1].links = 20;
    stats[1].breaks = 0;
    stats[1].cells = 21;
    stats[1].skippedRows = 21.0 * 8.0;  // skip 8 of 16 rows per cell

    const auto shape = runtime::NetworkShape::stacked(512, 512, 2, 41);
    const auto plan = buildPlan(runtime::PlanKind::Combined, stats,
                                shape, 5, 16);

    ASSERT_EQ(plan.inter.size(), 2u);
    // Layer 0: 0.2 * 40 breaks -> 9 sub-layers -> tissues <= 5 covering
    // all 41 cells.
    EXPECT_EQ(plan.inter[0].totalCells(), 41u);
    EXPECT_LE(plan.inter[0].maxTissue(), 5u);
    EXPECT_GT(plan.inter[0].maxTissue(), 1u);
    // Layer 1 never breaks: single sub-layer, all tissues of size 1.
    EXPECT_EQ(plan.inter[1].maxTissue(), 1u);

    ASSERT_EQ(plan.intra.size(), 2u);
    EXPECT_DOUBLE_EQ(plan.intra[0].skipFraction, 0.0);
    EXPECT_DOUBLE_EQ(plan.intra[1].skipFraction, 0.5);
}

TEST(Planner, BuildPlanValidatesInputs)
{
    std::vector<LayerApproxStats> stats(1);
    const auto shape = runtime::NetworkShape::stacked(64, 64, 2, 10);
    EXPECT_THROW(buildPlan(runtime::PlanKind::InterCell, stats, shape,
                           5, 16),
                 std::invalid_argument);

    std::vector<LayerApproxStats> stats2(2);
    EXPECT_THROW(buildPlan(runtime::PlanKind::InterCell, stats2, shape,
                           5, 0),
                 std::invalid_argument);
}

TEST(Planner, BaselineKindEmitsNoDecisions)
{
    std::vector<LayerApproxStats> stats(1);
    const auto shape = runtime::NetworkShape::stacked(64, 64, 1, 10);
    const auto plan = buildPlan(runtime::PlanKind::Baseline, stats,
                                shape, 5, 16);
    EXPECT_TRUE(plan.inter.empty());
    EXPECT_TRUE(plan.intra.empty());
}

} // namespace
