/**
 * @file
 * Unit tests for the dense containers (tensor/matrix.hh).
 */

#include <gtest/gtest.h>

#include "tensor/matrix.hh"

namespace {

using mflstm::tensor::Matrix;
using mflstm::tensor::Vector;
using mflstm::tensor::rowSlice;
using mflstm::tensor::vconcat;

TEST(Vector, ConstructsZeroed)
{
    Vector v(4);
    EXPECT_EQ(v.size(), 4u);
    for (std::size_t i = 0; i < v.size(); ++i)
        EXPECT_FLOAT_EQ(v[i], 0.0f);
}

TEST(Vector, FillAndZero)
{
    Vector v(3, 2.5f);
    EXPECT_FLOAT_EQ(v[0], 2.5f);
    EXPECT_FLOAT_EQ(v[2], 2.5f);
    v.zero();
    EXPECT_FLOAT_EQ(v[1], 0.0f);
}

TEST(Vector, InitializerListAndEquality)
{
    Vector a{1.0f, 2.0f, 3.0f};
    Vector b{1.0f, 2.0f, 3.0f};
    Vector c{1.0f, 2.0f, 4.0f};
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

TEST(Vector, ResizePreservesAndZeroFills)
{
    Vector v{1.0f, 2.0f};
    v.resize(4);
    EXPECT_FLOAT_EQ(v[0], 1.0f);
    EXPECT_FLOAT_EQ(v[1], 2.0f);
    EXPECT_FLOAT_EQ(v[3], 0.0f);
}

TEST(Matrix, RowMajorIndexing)
{
    Matrix m(2, 3);
    m(0, 0) = 1.0f;
    m(0, 2) = 3.0f;
    m(1, 1) = 5.0f;
    EXPECT_FLOAT_EQ(m.data()[0], 1.0f);
    EXPECT_FLOAT_EQ(m.data()[2], 3.0f);
    EXPECT_FLOAT_EQ(m.data()[4], 5.0f);
}

TEST(Matrix, RowSpanAliasesStorage)
{
    Matrix m(3, 2);
    auto row = m.row(1);
    row[0] = 7.0f;
    EXPECT_FLOAT_EQ(m(1, 0), 7.0f);
    EXPECT_EQ(row.size(), 2u);
}

TEST(Matrix, BytesReflectsFootprint)
{
    Matrix m(8, 16);
    EXPECT_EQ(m.bytes(), 8u * 16u * sizeof(float));
}

TEST(Matrix, VconcatStacksRows)
{
    Matrix a(1, 2);
    a(0, 0) = 1.0f;
    a(0, 1) = 2.0f;
    Matrix b(2, 2);
    b(0, 0) = 3.0f;
    b(1, 1) = 4.0f;

    Matrix c = vconcat({&a, &b});
    ASSERT_EQ(c.rows(), 3u);
    ASSERT_EQ(c.cols(), 2u);
    EXPECT_FLOAT_EQ(c(0, 1), 2.0f);
    EXPECT_FLOAT_EQ(c(1, 0), 3.0f);
    EXPECT_FLOAT_EQ(c(2, 1), 4.0f);
}

TEST(Matrix, VconcatRejectsColumnMismatch)
{
    Matrix a(1, 2);
    Matrix b(1, 3);
    EXPECT_THROW(vconcat({&a, &b}), std::invalid_argument);
}

TEST(Matrix, RowSliceExtractsBand)
{
    Matrix m(4, 2);
    for (std::size_t r = 0; r < 4; ++r)
        m(r, 0) = static_cast<float>(r);

    Matrix s = rowSlice(m, 1, 3);
    ASSERT_EQ(s.rows(), 2u);
    EXPECT_FLOAT_EQ(s(0, 0), 1.0f);
    EXPECT_FLOAT_EQ(s(1, 0), 2.0f);
}

TEST(Matrix, RowSliceRejectsBadRange)
{
    Matrix m(4, 2);
    EXPECT_THROW(rowSlice(m, 3, 2), std::out_of_range);
    EXPECT_THROW(rowSlice(m, 0, 5), std::out_of_range);
}

} // namespace
