/**
 * @file
 * Calibration persistence tests (DESIGN.md §11): a calibration saved
 * and restored through the artifact layer must reproduce the link
 * predictors bit-for-bit (the restored runner serves exactly like the
 * one that calibrated), and a calibration recorded against different
 * model weights must be rejected as stale, leaving the runner
 * untouched.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <unistd.h>

#include <gtest/gtest.h>

#include "core/api.hh"
#include "core/persist.hh"
#include "obs/observer.hh"
#include "tensor/rng.hh"

namespace {

using namespace mflstm;
using namespace mflstm::core;

nn::ModelConfig
modelConfig()
{
    nn::ModelConfig cfg;
    cfg.task = nn::TaskKind::Classification;
    cfg.vocab = 20;
    cfg.embedSize = 8;
    cfg.hiddenSize = 12;
    cfg.numLayers = 2;
    cfg.numClasses = 2;
    return cfg;
}

std::vector<std::vector<std::int32_t>>
seqs(std::size_t n, std::size_t len, std::uint64_t seed)
{
    tensor::Rng rng(seed);
    std::vector<std::vector<std::int32_t>> out(n);
    for (auto &s : out)
        for (std::size_t t = 0; t < len; ++t)
            s.push_back(static_cast<std::int32_t>(rng.integer(0, 19)));
    return out;
}

MemoryFriendlyLstm::Config
mfConfig()
{
    return {gpu::GpuConfig::tegraX1(),
            runtime::NetworkShape::stacked(512, 512, 2, 40)};
}

class PersistTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        // Per-process name: ctest runs test cases concurrently.
        path_ = (std::filesystem::temp_directory_path() /
                 ("mflstm_core_persist_test_" +
                  std::to_string(::getpid()) + ".bin"))
                    .string();
        std::remove(path_.c_str());
    }
    void TearDown() override { std::remove(path_.c_str()); }

    std::string path_;
};

TEST_F(PersistTest, ModelWeightsCrcTracksWeights)
{
    const nn::LstmModel a(modelConfig(), 11);
    const nn::LstmModel b(modelConfig(), 12);
    nn::LstmModel c(modelConfig(), 11);

    EXPECT_EQ(modelWeightsCrc(a), modelWeightsCrc(c));
    EXPECT_NE(modelWeightsCrc(a), modelWeightsCrc(b));

    c.head().b.data()[0] += 1.0f;
    EXPECT_NE(modelWeightsCrc(a), modelWeightsCrc(c));
}

TEST_F(PersistTest, RoundTripRestoresPredictorsBitIdentically)
{
    const nn::LstmModel model(modelConfig(), 77);
    MemoryFriendlyLstm calibrated(model, mfConfig());
    calibrated.calibrate(seqs(4, 8, 5));
    saveCalibration(calibrated, path_);

    MemoryFriendlyLstm restored(model, mfConfig());
    ASSERT_FALSE(restored.calibrated());
    loadCalibration(restored, path_);
    ASSERT_TRUE(restored.calibrated());

    // The Calibration summary round-trips...
    EXPECT_EQ(restored.calibration().mts,
              calibrated.calibration().mts);
    EXPECT_EQ(restored.calibration().profile.relevances,
              calibrated.calibration().profile.relevances);
    EXPECT_EQ(restored.calibration().ladder(),
              calibrated.calibration().ladder());

    // ...and the link predictors are bit-identical, so Eq. 6
    // approximations in the restored process match exactly.
    const auto &orig = calibrated.runner().predictors();
    const auto &rest = restored.runner().predictors();
    ASSERT_EQ(orig.size(), rest.size());
    for (std::size_t l = 0; l < orig.size(); ++l) {
        EXPECT_EQ(orig[l].predictedH(), rest[l].predictedH())
            << "layer " << l;
        EXPECT_EQ(orig[l].predictedC(), rest[l].predictedC())
            << "layer " << l;
    }

    // Same thresholds therefore produce the same timing outcome.
    const std::vector<ThresholdSet> ladder =
        calibrated.calibration().ladder(3);
    calibrated.setThresholds(ladder[1]);
    restored.setThresholds(ladder[1]);
    const TimingOutcome a =
        calibrated.evaluateTiming(runtime::PlanKind::Combined);
    const TimingOutcome b =
        restored.evaluateTiming(runtime::PlanKind::Combined);
    EXPECT_EQ(a.speedup, b.speedup);
}

TEST_F(PersistTest, StaleCalibrationRejectedAndRunnerUntouched)
{
    const nn::LstmModel model(modelConfig(), 77);
    MemoryFriendlyLstm calibrated(model, mfConfig());
    calibrated.calibrate(seqs(4, 8, 5));
    saveCalibration(calibrated, path_);

    const nn::LstmModel other(modelConfig(), 78);
    MemoryFriendlyLstm victim(other, mfConfig());
    try {
        loadCalibration(victim, path_);
        FAIL() << "calibration for different weights accepted";
    } catch (const io::ArtifactError &e) {
        EXPECT_EQ(e.kind(), io::ErrorKind::Stale);
    }
    // Rejection happened before any mutation.
    EXPECT_FALSE(victim.calibrated());
}

TEST_F(PersistTest, CorruptCalibrationRejectedAndCounted)
{
    const nn::LstmModel model(modelConfig(), 77);
    MemoryFriendlyLstm mf(model, mfConfig());
    mf.calibrate(seqs(4, 8, 5));
    saveCalibration(mf, path_);
    EXPECT_NO_THROW(verifyCalibrationFile(path_));

    const std::uintmax_t size = std::filesystem::file_size(path_);
    {
        std::fstream f(path_, std::ios::binary | std::ios::in |
                                  std::ios::out);
        f.seekg(static_cast<std::streamoff>(size / 2));
        char b = 0;
        f.read(&b, 1);
        b = static_cast<char>(b ^ 0x04);
        f.seekp(static_cast<std::streamoff>(size / 2));
        f.write(&b, 1);
    }

    obs::Observer obs;
    MemoryFriendlyLstm fresh(model, mfConfig());
    EXPECT_THROW(
        loadCalibration(fresh, path_, io::ArtifactLimits{}, &obs),
        io::ArtifactError);
    EXPECT_FALSE(fresh.calibrated());
    EXPECT_EQ(obs.metrics()
                  .counter("artifact_load_rejected_total")
                  .value(),
              1.0);
    EXPECT_THROW(verifyCalibrationFile(path_), io::ArtifactError);
}

TEST_F(PersistTest, TruncatedCalibrationRejected)
{
    const nn::LstmModel model(modelConfig(), 77);
    MemoryFriendlyLstm mf(model, mfConfig());
    mf.calibrate(seqs(4, 8, 5));
    saveCalibration(mf, path_);
    std::filesystem::resize_file(
        path_, std::filesystem::file_size(path_) / 2);

    MemoryFriendlyLstm fresh(model, mfConfig());
    EXPECT_THROW(loadCalibration(fresh, path_), io::ArtifactError);
    EXPECT_FALSE(fresh.calibrated());
}

} // namespace
