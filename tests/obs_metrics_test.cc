/**
 * @file
 * Tests for the metrics registry: instrument semantics, histogram
 * bucket-edge behaviour, and the JSON dump (parsed back with the obs
 * JSON parser, not string-matched).
 */

#include <sstream>

#include <gtest/gtest.h>

#include "obs/json.hh"
#include "obs/metrics.hh"

namespace {

using namespace mflstm::obs;

TEST(Metrics, CounterAccumulates)
{
    MetricsRegistry reg;
    reg.counter("sim.kernels").add();
    reg.counter("sim.kernels").add(4.0);
    EXPECT_DOUBLE_EQ(reg.counter("sim.kernels").value(), 5.0);
    EXPECT_NE(reg.findCounter("sim.kernels"), nullptr);
    EXPECT_EQ(reg.findCounter("missing"), nullptr);
}

TEST(Metrics, GaugeOverwrites)
{
    MetricsRegistry reg;
    reg.gauge("crm.compaction_ratio").set(0.25);
    reg.gauge("crm.compaction_ratio").set(0.75);
    EXPECT_DOUBLE_EQ(reg.gauge("crm.compaction_ratio").value(), 0.75);
}

TEST(Metrics, EmptyTracksInstrumentCreation)
{
    MetricsRegistry reg;
    EXPECT_TRUE(reg.empty());
    reg.counter("a");
    EXPECT_FALSE(reg.empty());
}

TEST(Metrics, HistogramBucketEdgesAreUpperInclusive)
{
    Histogram h({1.0, 10.0, 100.0});
    // Bucket layout: (-inf,1] (1,10] (10,100] (100,inf).
    h.observe(0.5);    // first bucket
    h.observe(1.0);    // exactly on edge 0 -> still first bucket
    h.observe(1.0001); // second bucket
    h.observe(10.0);   // second bucket (upper-inclusive)
    h.observe(100.0);  // third bucket
    h.observe(101.0);  // overflow

    ASSERT_EQ(h.buckets().size(), 4u);
    EXPECT_EQ(h.buckets()[0], 2u);
    EXPECT_EQ(h.buckets()[1], 2u);
    EXPECT_EQ(h.buckets()[2], 1u);
    EXPECT_EQ(h.buckets()[3], 1u);
    EXPECT_EQ(h.count(), 6u);
    EXPECT_DOUBLE_EQ(h.min(), 0.5);
    EXPECT_DOUBLE_EQ(h.max(), 101.0);
    EXPECT_NEAR(h.sum(), 0.5 + 1.0 + 1.0001 + 10.0 + 100.0 + 101.0,
                1e-9);
}

TEST(Metrics, HistogramRejectsBadEdges)
{
    EXPECT_THROW(Histogram({}), std::invalid_argument);
    EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
    EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(Metrics, ExponentialEdgesSpanRangeAscending)
{
    const auto edges = Histogram::exponentialEdges(1.0, 1e6, 13);
    ASSERT_EQ(edges.size(), 13u);
    EXPECT_DOUBLE_EQ(edges.front(), 1.0);
    EXPECT_NEAR(edges.back(), 1e6, 1e-3);
    for (std::size_t i = 1; i < edges.size(); ++i)
        EXPECT_LT(edges[i - 1], edges[i]);
}

TEST(Metrics, RegistryReusesHistogramIgnoringNewEdges)
{
    MetricsRegistry reg;
    Histogram &h1 = reg.histogram("h", {1.0, 2.0});
    Histogram &h2 = reg.histogram("h", {5.0});  // ignored: exists
    EXPECT_EQ(&h1, &h2);
    EXPECT_EQ(h2.edges().size(), 2u);
}

TEST(Metrics, JsonDumpParsesAndRoundTrips)
{
    MetricsRegistry reg;
    reg.counter("drs.rows_skipped").add(1234.0);
    reg.gauge("cache.l2_hit_rate").set(0.875);
    Histogram &h =
        reg.histogram("sim.stall_cycles_hist.Sgemv", {10.0, 100.0});
    h.observe(5.0);
    h.observe(50.0);
    h.observe(500.0);

    std::ostringstream os;
    reg.writeJson(os);
    const auto doc = parseJson(os.str());
    ASSERT_TRUE(doc.has_value());
    ASSERT_EQ(doc->kind, JsonValue::Kind::Object);

    const JsonValue *counters = doc->find("counters");
    ASSERT_NE(counters, nullptr);
    const JsonValue *rows = counters->find("drs.rows_skipped");
    ASSERT_NE(rows, nullptr);
    EXPECT_DOUBLE_EQ(rows->number, 1234.0);

    const JsonValue *gauges = doc->find("gauges");
    ASSERT_NE(gauges, nullptr);
    const JsonValue *hit = gauges->find("cache.l2_hit_rate");
    ASSERT_NE(hit, nullptr);
    EXPECT_DOUBLE_EQ(hit->number, 0.875);

    const JsonValue *hists = doc->find("histograms");
    ASSERT_NE(hists, nullptr);
    const JsonValue *hist =
        hists->find("sim.stall_cycles_hist.Sgemv");
    ASSERT_NE(hist, nullptr);
    const JsonValue *count = hist->find("count");
    ASSERT_NE(count, nullptr);
    EXPECT_DOUBLE_EQ(count->number, 3.0);
    const JsonValue *buckets = hist->find("buckets");
    ASSERT_NE(buckets, nullptr);
    ASSERT_EQ(buckets->items.size(), 3u);  // 2 edges + overflow
    EXPECT_DOUBLE_EQ(buckets->items[0].number, 1.0);
    EXPECT_DOUBLE_EQ(buckets->items[1].number, 1.0);
    EXPECT_DOUBLE_EQ(buckets->items[2].number, 1.0);
    const JsonValue *edges = hist->find("edges");
    ASSERT_NE(edges, nullptr);
    ASSERT_EQ(edges->items.size(), 2u);

    // The dump is deterministic: a second dump is byte-identical.
    std::ostringstream os2;
    reg.writeJson(os2);
    EXPECT_EQ(os.str(), os2.str());
}

TEST(Metrics, PrometheusExpositionFormat)
{
    MetricsRegistry reg;
    reg.counter("serve.requests").add(3.0);
    reg.gauge("dram.row_hit_rate").set(0.25);
    Histogram &h = reg.histogram("serve.exec_ms", {1.0, 10.0});
    h.observe(0.5);
    h.observe(5.0);
    h.observe(100.0);  // lands in the +Inf overflow bucket

    std::ostringstream os;
    reg.writePrometheus(os);
    const std::string text = os.str();

    // Instrument names are mapped onto the Prometheus charset.
    EXPECT_NE(text.find("# TYPE serve_requests counter"),
              std::string::npos);
    EXPECT_NE(text.find("serve_requests 3\n"), std::string::npos);
    EXPECT_NE(text.find("# TYPE dram_row_hit_rate gauge"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE serve_exec_ms histogram"),
              std::string::npos);

    // Buckets are cumulative ("le" upper bounds), closed by +Inf, and
    // followed by _sum/_count — the 0.0.4 text exposition shape.
    EXPECT_NE(text.find("serve_exec_ms_bucket{le=\"1\"} 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("serve_exec_ms_bucket{le=\"10\"} 2\n"),
              std::string::npos);
    EXPECT_NE(text.find("serve_exec_ms_bucket{le=\"+Inf\"} 3\n"),
              std::string::npos);
    EXPECT_NE(text.find("serve_exec_ms_count 3\n"), std::string::npos);
    EXPECT_NE(text.find("serve_exec_ms_sum 105.5\n"),
              std::string::npos);

    // Exposition is deterministic.
    std::ostringstream os2;
    reg.writePrometheus(os2);
    EXPECT_EQ(text, os2.str());
}

TEST(Metrics, FormatTableMentionsEveryInstrument)
{
    MetricsRegistry reg;
    reg.counter("gmu.kernels_dispatched").add(7.0);
    reg.gauge("dram.row_hit_rate").set(0.5);
    reg.histogram("crm.pipeline_cycles", {1.0, 2.0}).observe(1.5);

    const std::string t = reg.formatTable();
    EXPECT_NE(t.find("gmu.kernels_dispatched"), std::string::npos);
    EXPECT_NE(t.find("dram.row_hit_rate"), std::string::npos);
    EXPECT_NE(t.find("crm.pipeline_cycles"), std::string::npos);
}

TEST(Metrics, LabeledSeriesAreDistinctInstruments)
{
    MetricsRegistry reg;
    reg.counter("fleet.dispatch_total", {{"replica", "r0"}}).add(2.0);
    reg.counter("fleet.dispatch_total", {{"replica", "r1"}}).add(5.0);
    reg.counter("fleet.dispatch_total").add(1.0);  // empty-label series

    EXPECT_DOUBLE_EQ(
        reg.counter("fleet.dispatch_total", {{"replica", "r0"}})
            .value(),
        2.0);
    EXPECT_DOUBLE_EQ(
        reg.counter("fleet.dispatch_total", {{"replica", "r1"}})
            .value(),
        5.0);
    EXPECT_DOUBLE_EQ(reg.counter("fleet.dispatch_total").value(), 1.0);

    ASSERT_NE(reg.findCounter("fleet.dispatch_total",
                              {{"replica", "r0"}}),
              nullptr);
    EXPECT_EQ(reg.findCounter("fleet.dispatch_total",
                              {{"replica", "r9"}}),
              nullptr);

    // Gauges and histograms follow the same series model.
    reg.gauge("fleet.state", {{"replica", "r0"}}).set(1.0);
    reg.gauge("fleet.state", {{"replica", "r1"}}).set(3.0);
    EXPECT_DOUBLE_EQ(
        reg.gauge("fleet.state", {{"replica", "r0"}}).value(), 1.0);
    reg.histogram("fleet.probe_ms", {{"replica", "r0"}}, {1.0, 10.0})
        .observe(0.5);
    EXPECT_EQ(reg.findHistogram("fleet.probe_ms", {{"replica", "r0"}})
                  ->count(),
              1u);
    EXPECT_EQ(reg.findHistogram("fleet.probe_ms"), nullptr);
}

TEST(Metrics, LabelOrderIsCanonicalized)
{
    MetricsRegistry reg;
    reg.counter("x", {{"a", "1"}, {"b", "2"}}).add(3.0);
    // Same labels, different order: the same series.
    EXPECT_DOUBLE_EQ(reg.counter("x", {{"b", "2"}, {"a", "1"}}).value(),
                     3.0);
    EXPECT_NE(reg.findCounter("x", {{"b", "2"}, {"a", "1"}}), nullptr);
    // Different value for one label: a distinct series.
    EXPECT_DOUBLE_EQ(reg.counter("x", {{"a", "1"}, {"b", "9"}}).value(),
                     0.0);
}

TEST(Metrics, PrometheusLabeledSeriesShareOneTypeLine)
{
    MetricsRegistry reg;
    reg.counter("fleet.dispatch_total", {{"replica", "r0"}}).add(2.0);
    reg.counter("fleet.dispatch_total", {{"replica", "r1"}}).add(5.0);
    reg.histogram("fleet.probe_ms", {{"replica", "r0"}}, {1.0})
        .observe(0.5);

    std::ostringstream os;
    reg.writePrometheus(os);
    const std::string text = os.str();

    // One # TYPE line covers every series of the family.
    std::size_t types = 0;
    for (std::size_t at = text.find("# TYPE fleet_dispatch_total");
         at != std::string::npos;
         at = text.find("# TYPE fleet_dispatch_total", at + 1))
        ++types;
    EXPECT_EQ(types, 1u);

    EXPECT_NE(text.find("fleet_dispatch_total{replica=\"r0\"} 2\n"),
              std::string::npos);
    EXPECT_NE(text.find("fleet_dispatch_total{replica=\"r1\"} 5\n"),
              std::string::npos);
    // Histogram buckets merge the series labels with "le".
    EXPECT_NE(
        text.find("fleet_probe_ms_bucket{replica=\"r0\",le=\"1\"} 1\n"),
        std::string::npos);
    EXPECT_NE(text.find("fleet_probe_ms_count{replica=\"r0\"} 1\n"),
              std::string::npos);
}

/** Undo exposition-format escaping: \\ -> \, \" -> ", \n -> newline. */
std::string
promUnescape(const std::string &s)
{
    std::string out;
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] == '\\' && i + 1 < s.size()) {
            const char next = s[++i];
            out += next == 'n' ? '\n' : next;
        } else {
            out += s[i];
        }
    }
    return out;
}

TEST(Metrics, PrometheusLabelEscapingRoundTrips)
{
    // A hostile label value exercising every escape in the spec:
    // backslash, double quote and newline.
    const std::string hostile = "r0\\weird\"quote\nnewline";
    MetricsRegistry reg;
    reg.counter("fleet.dispatch_total", {{"replica", hostile}})
        .add(1.0);

    std::ostringstream os;
    reg.writePrometheus(os);
    const std::string text = os.str();

    // The raw value must not appear (the newline would break the
    // line-oriented format); the escaped form must.
    EXPECT_EQ(text.find(hostile), std::string::npos);
    const std::string escaped = "r0\\\\weird\\\"quote\\nnewline";
    const std::string sample =
        "fleet_dispatch_total{replica=\"" + escaped + "\"} 1\n";
    ASSERT_NE(text.find(sample), std::string::npos) << text;

    // Round trip: un-escaping the rendered value restores the
    // original byte-for-byte.
    EXPECT_EQ(promUnescape(escaped), hostile);

    // Every emitted sample line still parses as single-line entries:
    // no unescaped newline splits a sample in half.
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        EXPECT_NE(line.find(' '), std::string::npos) << line;
    }
}

} // namespace
