/**
 * @file
 * Concurrency tests for the observability sinks (DESIGN.md §9): several
 * threads hammer the same counters, gauges, histograms and the span
 * tracer, and the totals must come out exact. Run under
 * -DMFLSTM_SANITIZE=thread in CI to catch data races, not just lost
 * updates.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/observer.hh"

namespace {

using namespace mflstm;

constexpr std::size_t kThreads = 8;
constexpr std::size_t kOpsPerThread = 10000;

void
hammer(std::size_t threads, const std::function<void(std::size_t)> &fn)
{
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t)
        pool.emplace_back([&fn, t] { fn(t); });
    for (std::thread &t : pool)
        t.join();
}

TEST(ObsConcurrency, CounterAddsAreNotLost)
{
    obs::Counter c;
    hammer(kThreads, [&](std::size_t) {
        for (std::size_t i = 0; i < kOpsPerThread; ++i)
            c.add();
    });
    // Integer-valued doubles are exact far beyond this range.
    EXPECT_DOUBLE_EQ(c.value(),
                     static_cast<double>(kThreads * kOpsPerThread));
}

TEST(ObsConcurrency, CounterFractionalDeltas)
{
    obs::Counter c;
    hammer(kThreads, [&](std::size_t) {
        for (std::size_t i = 0; i < kOpsPerThread; ++i)
            c.add(0.5);  // exact in binary floating point
    });
    EXPECT_DOUBLE_EQ(c.value(),
                     0.5 * static_cast<double>(kThreads * kOpsPerThread));
}

TEST(ObsConcurrency, GaugeLastWriteWins)
{
    obs::Gauge g;
    hammer(kThreads, [&](std::size_t t) {
        for (std::size_t i = 0; i < kOpsPerThread; ++i)
            g.set(static_cast<double>(t));
    });
    const double v = g.value();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, static_cast<double>(kThreads));
}

TEST(ObsConcurrency, HistogramObservationsAreNotLost)
{
    obs::Histogram h({1.0, 2.0, 4.0, 8.0});
    hammer(kThreads, [&](std::size_t t) {
        for (std::size_t i = 0; i < kOpsPerThread; ++i)
            h.observe(static_cast<double>(t % 10));
    });
    EXPECT_EQ(h.count(), kThreads * kOpsPerThread);

    const obs::Histogram::Snapshot s = h.snapshot();
    std::uint64_t bucketed = 0;
    for (std::uint64_t b : s.buckets)
        bucketed += b;
    EXPECT_EQ(bucketed, s.count);
    EXPECT_DOUBLE_EQ(s.min, 0.0);
    EXPECT_DOUBLE_EQ(s.max, 7.0);  // t in 0..7
}

TEST(ObsConcurrency, RegistryCreationRace)
{
    obs::MetricsRegistry reg;
    // Every thread races to create/lookup the same instruments and then
    // records through the returned references.
    hammer(kThreads, [&](std::size_t) {
        for (std::size_t i = 0; i < 1000; ++i) {
            reg.counter("shared.counter").add();
            reg.gauge("shared.gauge").set(static_cast<double>(i));
            reg.histogram("shared.hist", {1.0, 10.0, 100.0})
                .observe(static_cast<double>(i));
        }
    });
    EXPECT_DOUBLE_EQ(reg.counter("shared.counter").value(),
                     static_cast<double>(kThreads * 1000));
    EXPECT_EQ(reg.histogram("shared.hist", {}).count(), kThreads * 1000);
}

TEST(ObsConcurrency, DumpWhileRecording)
{
    obs::MetricsRegistry reg;
    std::atomic<bool> stop{false};
    std::thread dumper([&] {
        while (!stop.load()) {
            std::ostringstream os;
            reg.writeJson(os);
            (void)reg.formatTable();
        }
    });
    hammer(kThreads, [&](std::size_t t) {
        for (std::size_t i = 0; i < 2000; ++i) {
            reg.counter("dump.counter").add();
            reg.histogram("dump.hist." + std::to_string(t % 3),
                          {1.0, 2.0})
                .observe(1.5);
        }
    });
    stop.store(true);
    dumper.join();
    EXPECT_DOUBLE_EQ(reg.counter("dump.counter").value(),
                     static_cast<double>(kThreads * 2000));
}

TEST(ObsConcurrency, QuantileUnderConcurrentObserves)
{
    obs::Histogram h(obs::Histogram::exponentialEdges(0.1, 1000.0, 20));
    hammer(4, [&](std::size_t) {
        for (std::size_t i = 0; i < 5000; ++i) {
            h.observe(5.0);
            (void)h.quantile(0.5);  // must not crash or tear
        }
    });
    EXPECT_EQ(h.count(), 4u * 5000u);
    // All mass sits in one bucket; the median interpolates within it.
    const double p50 = h.quantile(0.5);
    EXPECT_GT(p50, 0.1);
    EXPECT_LT(p50, 10.0);
}

TEST(ObsConcurrency, TracerRecordsFromManyThreads)
{
    obs::SpanTracer tr;
    hammer(kThreads, [&](std::size_t t) {
        for (std::size_t i = 0; i < 1000; ++i) {
            obs::TraceSpan s;
            s.name = "span";
            s.pid = obs::SpanTracer::kHostPid;
            s.tid = static_cast<int>(t);
            s.startUs = static_cast<double>(i);
            s.durUs = 1.0;
            tr.record(std::move(s));
            tr.advanceSimCursor(0.5);
        }
        tr.setTrackName(obs::SpanTracer::kHostPid,
                        static_cast<int>(t),
                        "thread " + std::to_string(t));
    });
    EXPECT_EQ(tr.spans().size(), kThreads * 1000);
    EXPECT_EQ(tr.droppedSpans(), 0u);
    EXPECT_DOUBLE_EQ(tr.simCursorUs(),
                     0.5 * static_cast<double>(kThreads * 1000));

    std::ostringstream os;
    tr.writeChromeTrace(os);
    EXPECT_NE(os.str().find("traceEvents"), std::string::npos);
}

TEST(ObsConcurrency, ObserverPhasesFromManyThreads)
{
    obs::Observer obs;
    hammer(kThreads, [&](std::size_t t) {
        for (std::size_t i = 0; i < 200; ++i) {
            auto ph = obs::Observer::phase(
                &obs, "phase " + std::to_string(t));
            obs.metrics().counter("phases").add();
        }
    });
    EXPECT_DOUBLE_EQ(obs.metrics().counter("phases").value(),
                     static_cast<double>(kThreads * 200));
    EXPECT_EQ(obs.tracer().spans().size(), kThreads * 200);
}

} // namespace
