/**
 * @file
 * Corruption matrix for the crash-safe artifact container (DESIGN.md
 * §11). The contract under test: loading an artifact either succeeds
 * bit-identically or throws a typed ArtifactError — never UB, never an
 * OOM-sized allocation, never a partially parsed result. Every
 * single-bit flip and every truncation length must be rejected.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <unistd.h>

#include <gtest/gtest.h>

#include "io/artifact.hh"
#include "obs/observer.hh"

namespace {

using namespace mflstm;
using namespace mflstm::io;

class ArtifactTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = std::filesystem::temp_directory_path() /
               ("mflstm_artifact_test_" +
                std::to_string(::getpid()));
        std::filesystem::create_directories(dir_);
        path_ = (dir_ / "artifact.bin").string();
    }
    void TearDown() override
    {
        std::error_code ec;
        std::filesystem::remove_all(dir_, ec);
    }

    void writeBytes(const std::vector<std::uint8_t> &bytes)
    {
        std::ofstream os(path_, std::ios::binary | std::ios::trunc);
        os.write(reinterpret_cast<const char *>(bytes.data()),
                 static_cast<std::streamsize>(bytes.size()));
    }

    std::filesystem::path dir_;
    std::string path_;
};

/** A small container with a few chunks of mixed payloads. */
std::vector<std::uint8_t>
sampleContainer()
{
    ArtifactWriter w(kSchemaModel, 7);
    ByteWriter &a = w.chunk(fourcc('A', 'A', 'A', 'A'));
    a.u32(42);
    a.f64(3.25);
    const float weights[] = {1.0f, -2.0f, 0.5f};
    a.f32Array(weights);
    ByteWriter &b = w.chunk(fourcc('B', 'B', 'B', 'B'));
    b.u64(1234567890123ull);
    return w.serialize();
}

TEST_F(ArtifactTest, RoundTripPreservesChunks)
{
    writeBytes(sampleContainer());
    const ArtifactReader r(path_, kSchemaModel);
    EXPECT_EQ(r.schemaKind(), kSchemaModel);
    EXPECT_EQ(r.schemaVersion(), 7u);
    ASSERT_EQ(r.chunks().size(), 2u);
    EXPECT_TRUE(r.has(fourcc('A', 'A', 'A', 'A')));
    EXPECT_FALSE(r.has(fourcc('Z', 'Z', 'Z', 'Z')));

    ByteReader a = r.chunk(fourcc('A', 'A', 'A', 'A'));
    EXPECT_EQ(a.u32(), 42u);
    EXPECT_EQ(a.f64(), 3.25);
    const std::vector<float> weights = a.f32Array();
    ASSERT_EQ(weights.size(), 3u);
    EXPECT_EQ(weights[1], -2.0f);
    a.expectEnd();

    ByteReader b = r.chunk(fourcc('B', 'B', 'B', 'B'));
    EXPECT_EQ(b.u64(), 1234567890123ull);
    b.expectEnd();
}

TEST_F(ArtifactTest, CommitWritesLoadableFile)
{
    ArtifactWriter w(kSchemaCalibration, 1);
    w.chunk(fourcc('C', 'C', 'C', 'C')).u32(9);
    w.commit(path_);

    std::uint32_t kind = 0;
    EXPECT_TRUE(isArtifactFile(path_, &kind));
    EXPECT_EQ(kind, kSchemaCalibration);

    const ArtifactReader r(path_, kSchemaCalibration);
    ByteReader c = r.chunk(fourcc('C', 'C', 'C', 'C'));
    EXPECT_EQ(c.u32(), 9u);

    // No temp residue left behind.
    std::size_t files = 0;
    for (const auto &e : std::filesystem::directory_iterator(dir_)) {
        (void)e;
        ++files;
    }
    EXPECT_EQ(files, 1u);
}

// Every prefix of a valid container must be rejected — no truncation
// length may parse, crash, or allocate absurdly.
TEST_F(ArtifactTest, TruncationAtEveryByteRejected)
{
    const std::vector<std::uint8_t> full = sampleContainer();
    for (std::size_t len = 0; len < full.size(); ++len) {
        writeBytes({full.begin(), full.begin() + len});
        EXPECT_THROW(ArtifactReader(path_, kSchemaModel),
                     ArtifactError)
            << "prefix of " << len << " bytes parsed";
    }
}

// Every byte of the container is covered by either the header CRC or a
// chunk CRC (including the CRC fields themselves), so any single-bit
// flip anywhere must be detected.
TEST_F(ArtifactTest, EverySingleBitFlipRejected)
{
    const std::vector<std::uint8_t> full = sampleContainer();
    for (std::size_t byte = 0; byte < full.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            std::vector<std::uint8_t> mutated = full;
            mutated[byte] ^= static_cast<std::uint8_t>(1u << bit);
            writeBytes(mutated);
            EXPECT_THROW(ArtifactReader(path_, kSchemaModel),
                         ArtifactError)
                << "bit " << bit << " of byte " << byte
                << " flipped undetected";
        }
    }
}

TEST_F(ArtifactTest, TrailingGarbageRejected)
{
    std::vector<std::uint8_t> full = sampleContainer();
    full.push_back(0xEE);
    writeBytes(full);
    EXPECT_THROW(ArtifactReader(path_, kSchemaModel), ArtifactError);
}

TEST_F(ArtifactTest, WrongSchemaKindRejected)
{
    writeBytes(sampleContainer());
    try {
        ArtifactReader r(path_, kSchemaEngineState);
        FAIL() << "schema mismatch accepted";
    } catch (const ArtifactError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::BadSchema);
    }
    // Kind 0 (fsck wildcard) accepts anything.
    EXPECT_NO_THROW(ArtifactReader(path_, 0));
}

TEST_F(ArtifactTest, MissingFileIsIoError)
{
    try {
        ArtifactReader r((dir_ / "nope.bin").string(), kSchemaModel);
        FAIL() << "missing file accepted";
    } catch (const ArtifactError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Io);
    }
}

TEST_F(ArtifactTest, NotAnArtifactIsBadMagic)
{
    writeBytes({'h', 'e', 'l', 'l', 'o', ' ', 'w', 'o', 'r', 'l', 'd',
                '!', '!', '!', '!', '!', '!', '!', '!', '!', '!', '!',
                '!', '!', '!', '!', '!', '!', '!', '!', '!', '!'});
    try {
        ArtifactReader r(path_, kSchemaModel);
        FAIL() << "non-artifact accepted";
    } catch (const ArtifactError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::BadMagic);
    }
    EXPECT_FALSE(isArtifactFile(path_));
}

TEST_F(ArtifactTest, TightenedLimitsRejectBeforeAllocation)
{
    writeBytes(sampleContainer());

    ArtifactLimits tiny;
    tiny.maxFileBytes = 16;  // smaller than any valid container
    try {
        ArtifactReader r(path_, kSchemaModel, tiny);
        FAIL() << "oversized file accepted";
    } catch (const ArtifactError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::LimitExceeded);
    }

    ArtifactLimits no_chunks;
    no_chunks.maxChunks = 1;
    try {
        ArtifactReader r(path_, kSchemaModel, no_chunks);
        FAIL() << "over-chunked file accepted";
    } catch (const ArtifactError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::LimitExceeded);
    }

    // maxElements gates array reads before the vector is allocated.
    ArtifactLimits two_elems;
    two_elems.maxElements = 2;
    const ArtifactReader r(path_, kSchemaModel, two_elems);
    ByteReader a = r.chunk(fourcc('A', 'A', 'A', 'A'));
    a.u32();
    a.f64();
    try {
        a.f32Array();  // declares 3 elements
        FAIL() << "array over maxElements allocated";
    } catch (const ArtifactError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::LimitExceeded);
    }
}

TEST_F(ArtifactTest, ReaderArrayCountBoundedByPayload)
{
    // A chunk that declares a huge array count but has no bytes behind
    // it must be rejected as Truncated without allocating.
    ArtifactWriter w(kSchemaModel, 1);
    w.chunk(fourcc('H', 'U', 'G', 'E')).u64(1ull << 60);
    writeBytes(w.serialize());
    const ArtifactReader r(path_, kSchemaModel);
    ByteReader huge = r.chunk(fourcc('H', 'U', 'G', 'E'));
    EXPECT_THROW(huge.f32Array(), ArtifactError);
}

TEST_F(ArtifactTest, ByteReaderExpectEndCatchesTrailingBytes)
{
    ArtifactWriter w(kSchemaModel, 1);
    ByteWriter &c = w.chunk(fourcc('T', 'A', 'I', 'L'));
    c.u32(1);
    c.u32(2);
    writeBytes(w.serialize());
    const ArtifactReader r(path_, kSchemaModel);
    ByteReader t = r.chunk(fourcc('T', 'A', 'I', 'L'));
    t.u32();
    EXPECT_THROW(t.expectEnd(), ArtifactError);
    t.u32();
    EXPECT_NO_THROW(t.expectEnd());
    EXPECT_THROW(t.u32(), ArtifactError);  // reading past the end
}

TEST_F(ArtifactTest, DuplicateChunkTagsRejected)
{
    ArtifactWriter w(kSchemaModel, 1);
    w.chunk(fourcc('D', 'U', 'P', 'E'));
    EXPECT_THROW(w.chunk(fourcc('D', 'U', 'P', 'E')), ArtifactError);
}

TEST_F(ArtifactTest, MissingChunkIsMalformed)
{
    writeBytes(sampleContainer());
    const ArtifactReader r(path_, kSchemaModel);
    try {
        r.chunk(fourcc('N', 'O', 'P', 'E'));
        FAIL() << "missing chunk handed out";
    } catch (const ArtifactError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Malformed);
    }
}

TEST_F(ArtifactTest, CheckedArithmeticOverflowThrows)
{
    EXPECT_EQ(checkedMul(3, 4, "t"), 12u);
    EXPECT_EQ(checkedAdd(3, 4, "t"), 7u);
    EXPECT_THROW(checkedMul(1ull << 40, 1ull << 40, "t"),
                 ArtifactError);
    EXPECT_THROW(checkedAdd(~0ull, 1, "t"), ArtifactError);
    EXPECT_THROW(indexedTag('L', 'Y', 1 << 16), ArtifactError);
}

TEST_F(ArtifactTest, QuarantineNamesDoNotCollide)
{
    writeBytes(sampleContainer());
    const std::string first = quarantine(path_);
    EXPECT_EQ(first, path_ + ".corrupt");
    writeBytes(sampleContainer());
    const std::string second = quarantine(path_);
    EXPECT_EQ(second, path_ + ".corrupt.1");
    EXPECT_TRUE(std::filesystem::exists(first));
    EXPECT_TRUE(std::filesystem::exists(second));
    EXPECT_FALSE(std::filesystem::exists(path_));

    // Quarantining a missing file fails quietly, never throws.
    EXPECT_EQ(quarantine(path_), "");
}

// Crash simulation: a stray temp file from an interrupted earlier
// write must neither confuse a later commit nor survive as a readable
// artifact, and commit over an existing file must replace it whole.
TEST_F(ArtifactTest, AtomicCommitSurvivesStrayTempAndReplaces)
{
    {
        std::ofstream os((dir_ / "artifact.bin.tmp.123").string(),
                         std::ios::binary);
        os << "partial garbage from a crashed writer";
    }

    ArtifactWriter v1(kSchemaModel, 1);
    v1.chunk(fourcc('G', 'E', 'N', '1')).u32(1);
    v1.commit(path_);

    ArtifactWriter v2(kSchemaModel, 1);
    v2.chunk(fourcc('G', 'E', 'N', '2')).u32(2);
    v2.commit(path_);

    const ArtifactReader r(path_, kSchemaModel);
    EXPECT_FALSE(r.has(fourcc('G', 'E', 'N', '1')));
    ByteReader g2 = r.chunk(fourcc('G', 'E', 'N', '2'));
    EXPECT_EQ(g2.u32(), 2u);
}

TEST_F(ArtifactTest, CommitToUnwritableDirectoryThrowsIo)
{
    ArtifactWriter w(kSchemaModel, 1);
    w.chunk(fourcc('X', 'X', 'X', 'X')).u32(1);
    try {
        w.commit("/nonexistent_dir_mflstm/artifact.bin");
        FAIL() << "commit to missing directory succeeded";
    } catch (const ArtifactError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Io);
    }
}

TEST_F(ArtifactTest, RecordRejectionBumpsReasonCounter)
{
    obs::Observer obs;
    recordRejection(&obs, ErrorKind::ChecksumMismatch);
    recordRejection(&obs, ErrorKind::ChecksumMismatch);
    recordRejection(&obs, ErrorKind::Stale);
    recordRejection(nullptr, ErrorKind::Io);  // no-op, no crash

    EXPECT_EQ(obs.metrics()
                  .counter("artifact_load_rejected_total")
                  .value(),
              3.0);
    EXPECT_EQ(obs.metrics()
                  .counter("artifact_load_rejected_total"
                           "{reason=checksum_mismatch}")
                  .value(),
              2.0);
    EXPECT_EQ(obs.metrics()
                  .counter("artifact_load_rejected_total{reason=stale}")
                  .value(),
              1.0);
}

TEST_F(ArtifactTest, Crc32MatchesKnownVector)
{
    // Standard check value for the IEEE 802.3 polynomial.
    const char data[] = "123456789";
    EXPECT_EQ(crc32(data, 9), 0xCBF43926u);
    EXPECT_EQ(crc32(data, 0), 0u);
}

TEST_F(ArtifactTest, ErrorKindLabelsAreStable)
{
    EXPECT_STREQ(toString(ErrorKind::ChecksumMismatch),
                 "checksum_mismatch");
    EXPECT_STREQ(toString(ErrorKind::LimitExceeded), "limit_exceeded");
    EXPECT_STREQ(toString(ErrorKind::NonFinite), "non_finite");
    EXPECT_STREQ(toString(ErrorKind::Stale), "stale");
}

} // namespace
