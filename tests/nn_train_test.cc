/**
 * @file
 * Tests for the BPTT trainer: a finite-difference check of the
 * hand-derived gradients, and end-to-end convergence on tiny synthetic
 * tasks (the role PyTorch training plays in the paper's methodology).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "nn/model.hh"
#include "nn/train.hh"
#include "tensor/rng.hh"

namespace {

using namespace mflstm;
using namespace mflstm::nn;

ModelConfig
tinyClassifier(std::size_t layers = 1)
{
    ModelConfig cfg;
    cfg.task = TaskKind::Classification;
    cfg.vocab = 8;
    cfg.embedSize = 4;
    cfg.hiddenSize = 5;
    cfg.numLayers = layers;
    cfg.numClasses = 2;
    return cfg;
}

/** Forward-only loss used as the finite-difference reference. */
double
lossOf(const LstmModel &m, const Sample &s)
{
    tensor::Vector logits = m.classify(s.tokens);
    softmaxInplace(logits.span());
    return crossEntropy(logits.span(),
                        static_cast<std::size_t>(s.label));
}

TEST(Bptt, FiniteDifferenceGradientCheck)
{
    LstmModel model(tinyClassifier(2), 17);
    Trainer trainer(model, {});

    const Sample sample{{1, 3, 5, 2}, 1};
    trainer.computeGradients(sample.tokens, sample.label, false);

    // Spot-check a spread of parameters against central differences.
    struct Probe
    {
        float *param;
        float analytic;
    };
    auto &g = trainer.grads();
    auto &l0 = model.layers()[0];
    auto &l1 = model.layers()[1];
    std::vector<Probe> probes = {
        {&l0.uf(1, 2), g.layers[0].uf(1, 2)},
        {&l0.wi(0, 1), g.layers[0].wi(0, 1)},
        {&l0.bc[3], g.layers[0].bc[3]},
        {&l1.uo(2, 4), g.layers[1].uo(2, 4)},
        {&l1.wc(4, 0), g.layers[1].wc(4, 0)},
        {&model.head().w(1, 2), g.headW(1, 2)},
        {&model.head().b[0], g.headB[0]},
        {&model.embedding().table(3, 1), g.embedding(3, 1)},
    };

    const float eps = 1e-3f;
    for (const Probe &p : probes) {
        const float orig = *p.param;
        *p.param = orig + eps;
        const double up = lossOf(model, sample);
        *p.param = orig - eps;
        const double down = lossOf(model, sample);
        *p.param = orig;

        const double numeric = (up - down) / (2.0 * eps);
        EXPECT_NEAR(p.analytic, numeric,
                    5e-3 + 0.05 * std::fabs(numeric))
            << "param grad mismatch";
    }
}

TEST(Bptt, FiniteDifferenceGradientCheckLm)
{
    ModelConfig cfg;
    cfg.task = TaskKind::LanguageModel;
    cfg.vocab = 6;
    cfg.embedSize = 4;
    cfg.hiddenSize = 4;
    cfg.numLayers = 1;
    LstmModel model(cfg, 23);
    Trainer trainer(model, {});

    const std::vector<std::int32_t> seq = {1, 2, 3, 4, 5};
    trainer.computeGradients(seq, 0, true);

    auto loss_of = [&] {
        auto logits = model.lmLogits(std::span(seq.data(), seq.size() - 1));
        double acc = 0.0;
        for (std::size_t t = 0; t < logits.size(); ++t) {
            softmaxInplace(logits[t].span());
            acc += crossEntropy(logits[t].span(),
                                static_cast<std::size_t>(seq[t + 1]));
        }
        return acc;  // computeGradients reports mean but seeds sum
    };

    float *param = &model.layers()[0].uc(1, 1);
    const float analytic = trainer.grads().layers[0].uc(1, 1);
    const float eps = 1e-3f;
    const float orig = *param;
    *param = orig + eps;
    const double up = loss_of();
    *param = orig - eps;
    const double down = loss_of();
    *param = orig;

    EXPECT_NEAR(analytic, (up - down) / (2.0 * eps), 5e-3);
}

TEST(Trainer, LearnsLinearlySeparableTask)
{
    // Class = whether the first token is < 4. A single LSTM layer learns
    // this in a handful of epochs.
    LstmModel model(tinyClassifier(), 99);
    tensor::Rng rng(100);

    std::vector<Sample> data;
    for (int n = 0; n < 80; ++n) {
        Sample s;
        for (int t = 0; t < 6; ++t)
            s.tokens.push_back(
                static_cast<std::int32_t>(rng.integer(0, 7)));
        s.label = s.tokens[0] < 4 ? 0 : 1;
        data.push_back(s);
    }

    TrainConfig tc;
    tc.lr = 5e-3;
    Trainer trainer(model, tc);
    trainer.trainClassification(data, 12);

    EXPECT_GE(classificationAccuracy(model, data), 0.95);
}

TEST(Trainer, LossDecreasesOnRepeatedSample)
{
    LstmModel model(tinyClassifier(), 5);
    TrainConfig tc;
    tc.lr = 1e-2;
    Trainer trainer(model, tc);
    const Sample s{{1, 2, 3}, 0};

    const double first = trainer.stepClassification(s);
    double last = first;
    for (int k = 0; k < 60; ++k)
        last = trainer.stepClassification(s);
    EXPECT_LT(last, first);
    EXPECT_LT(last, 0.1);
}

TEST(Trainer, LmMemorisesShortSequence)
{
    ModelConfig cfg;
    cfg.task = TaskKind::LanguageModel;
    cfg.vocab = 6;
    cfg.embedSize = 6;
    cfg.hiddenSize = 12;
    cfg.numLayers = 1;
    LstmModel model(cfg, 3);

    const std::vector<std::vector<std::int32_t>> corpus = {
        {0, 1, 2, 3, 4, 5}, {0, 1, 2, 3, 4, 5}};

    TrainConfig tc;
    tc.lr = 1e-2;
    Trainer trainer(model, tc);
    trainer.trainLanguageModel(corpus, 60);

    EXPECT_GE(lmNextTokenAccuracy(model, corpus), 0.99);
    EXPECT_LT(lmPerplexity(model, corpus), 1.5);
}

TEST(Trainer, GradClippingBoundsUpdates)
{
    LstmModel model(tinyClassifier(), 7);
    TrainConfig tc;
    tc.clipNorm = 1e-6;  // clip everything to (numerically) nothing
    Trainer trainer(model, tc);

    const float before = model.layers()[0].uf(0, 0);
    trainer.stepClassification({{1, 2, 3}, 1});
    const float after = model.layers()[0].uf(0, 0);
    // Adam normalises by sqrt(v), so updates are bounded by lr even for
    // clipped gradients; the parameter must move by at most ~lr.
    EXPECT_NEAR(before, after, 2.0f * static_cast<float>(tc.lr));
}

TEST(Trainer, StepCounterAdvances)
{
    LstmModel model(tinyClassifier(), 7);
    Trainer trainer(model, {});
    EXPECT_EQ(trainer.stepsTaken(), 0u);
    trainer.stepClassification({{1}, 0});
    trainer.stepClassification({{2, 3}, 1});
    EXPECT_EQ(trainer.stepsTaken(), 2u);
}

TEST(Trainer, HardSigmoidModelAlsoTrains)
{
    ModelConfig cfg = tinyClassifier();
    cfg.sigmoid = SigmoidKind::Hard;
    LstmModel model(cfg, 31);
    Trainer trainer(model, {});
    const Sample s{{1, 2, 3, 4}, 1};
    const double first = trainer.stepClassification(s);
    double last = first;
    for (int k = 0; k < 40; ++k)
        last = trainer.stepClassification(s);
    EXPECT_LT(last, first);
}

} // namespace
