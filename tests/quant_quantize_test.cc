/**
 * @file
 * Tests for model-level post-training quantization: the shared weight
 * fingerprint, QuantizedModel round trips, fake-quant semantics (exact
 * agreement with the quantized container, idempotence, stats), and the
 * end-to-end calibration error report.
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/persist.hh"
#include "quant/quantize.hh"

namespace {

using namespace mflstm;
using quant::QuantMode;

nn::ModelConfig
someConfig()
{
    nn::ModelConfig cfg;
    cfg.task = nn::TaskKind::Classification;
    cfg.vocab = 20;
    cfg.embedSize = 6;
    cfg.hiddenSize = 8;
    cfg.numLayers = 2;
    cfg.numClasses = 3;
    return cfg;
}

std::vector<std::vector<std::int32_t>>
someSequences()
{
    return {{1, 2, 3, 4, 5}, {7, 7, 2, 9}, {11, 0, 3, 15, 4, 6}};
}

TEST(QuantModel, FingerprintMatchesCoreAlgorithm)
{
    // core::modelWeightsCrc delegates to quant::modelWeightsCrc; both
    // layers must agree or stale-artifact detection breaks.
    const nn::LstmModel m(someConfig(), 5);
    EXPECT_EQ(quant::modelWeightsCrc(m), core::modelWeightsCrc(m));
    EXPECT_NE(quant::modelWeightsCrc(m), 0u);

    nn::LstmModel other = m;
    other.layers()[0].uf.data()[3] += 0.25f;
    EXPECT_NE(quant::modelWeightsCrc(other), quant::modelWeightsCrc(m));
}

TEST(QuantModel, QuantizeModelCoversEveryWeightMatrix)
{
    const nn::LstmModel m(someConfig(), 5);
    const quant::QuantizedModel q =
        quant::quantizeModel(m, QuantMode::Int8);
    EXPECT_EQ(q.mode, QuantMode::Int8);
    EXPECT_EQ(q.sourceWeightsCrc, quant::modelWeightsCrc(m));
    ASSERT_EQ(q.layers.size(), 2u);
    for (const quant::QuantizedLayer &l : q.layers) {
        EXPECT_EQ(l.wf.rows(), 8u);
        EXPECT_EQ(l.uf.rows(), 8u);
        EXPECT_EQ(l.uf.cols(), 8u);
    }
    EXPECT_EQ(q.layers[0].wf.cols(), 6u);  // layer 0 reads the embedding
    EXPECT_EQ(q.layers[1].wf.cols(), 8u);  // layer 1 reads hidden state
}

TEST(QuantModel, DequantizeIntoMatchesFakeQuant)
{
    // The container path (quantize -> dequantizeInto) and the in-place
    // path (applyFakeQuant) must produce bit-identical weights: they
    // are two views of the same served network.
    for (const QuantMode mode : {QuantMode::Int8, QuantMode::Int4}) {
        const nn::LstmModel original(someConfig(), 9);

        nn::LstmModel via_container = original;
        quant::dequantizeInto(quant::quantizeModel(original, mode),
                              via_container);

        nn::LstmModel via_fake = original;
        quant::applyFakeQuant(via_fake, mode);

        for (std::size_t l = 0; l < original.layers().size(); ++l) {
            EXPECT_EQ(via_container.layers()[l].uf,
                      via_fake.layers()[l].uf);
            EXPECT_EQ(via_container.layers()[l].wc,
                      via_fake.layers()[l].wc);
        }
        // Biases, embedding and head stay exactly fp32.
        EXPECT_EQ(via_fake.layers()[0].bf, original.layers()[0].bf);
        EXPECT_EQ(via_fake.embedding().table,
                  original.embedding().table);
        EXPECT_EQ(via_fake.head().w, original.head().w);
    }
}

TEST(QuantModel, FakeQuantStatsAndCompression)
{
    nn::LstmModel m(someConfig(), 9);
    const quant::FakeQuantStats st =
        quant::applyFakeQuant(m, QuantMode::Int8);
    EXPECT_EQ(st.mode, QuantMode::Int8);
    EXPECT_EQ(st.matrices, 2u * 8u);  // 8 W/U matrices per layer
    EXPECT_GT(st.elements, 0u);
    EXPECT_GT(st.maxAbsError, 0.0);
    EXPECT_GE(st.maxAbsError, st.meanAbsError);
    // 4 bytes -> 1 byte per weight plus the per-row scale stream. The
    // 8-wide test model's rows are short, so the scale stream costs a
    // visible slice of the budget here.
    EXPECT_GT(st.compressionRatio(), 2.0);
    EXPECT_LT(st.compressionRatio(), 4.0);

    // At a realistic width the scale stream amortises: near 4x.
    nn::ModelConfig wide = someConfig();
    wide.embedSize = 48;
    wide.hiddenSize = 64;
    nn::LstmModel w(wide, 9);
    const quant::FakeQuantStats ws =
        quant::applyFakeQuant(w, QuantMode::Int8);
    EXPECT_GT(ws.compressionRatio(), 3.5);
    EXPECT_LT(ws.compressionRatio(), 4.0);
}

TEST(QuantModel, FakeQuantFp32IsNoOp)
{
    const nn::LstmModel original(someConfig(), 2);
    nn::LstmModel m = original;
    const quant::FakeQuantStats st =
        quant::applyFakeQuant(m, QuantMode::Fp32);
    EXPECT_EQ(st.maxAbsError, 0.0);
    EXPECT_EQ(m.layers()[0].uf, original.layers()[0].uf);
}

TEST(QuantModel, FakeQuantIsIdempotent)
{
    nn::LstmModel m(someConfig(), 9);
    quant::applyFakeQuant(m, QuantMode::Int8);
    const nn::LstmModel once = m;
    const quant::FakeQuantStats again =
        quant::applyFakeQuant(m, QuantMode::Int8);
    EXPECT_EQ(again.maxAbsError, 0.0);
    EXPECT_EQ(m.layers()[1].uo, once.layers()[1].uo);
}

TEST(QuantModel, Int4CompressesMoreButErrsMore)
{
    nn::LstmModel a(someConfig(), 9);
    nn::LstmModel b(someConfig(), 9);
    const quant::FakeQuantStats s8 =
        quant::applyFakeQuant(a, QuantMode::Int8);
    const quant::FakeQuantStats s4 =
        quant::applyFakeQuant(b, QuantMode::Int4);
    EXPECT_GT(s4.compressionRatio(), s8.compressionRatio());
    EXPECT_GT(s4.meanAbsError, s8.meanAbsError);
}

TEST(QuantModel, MeasureQuantErrorReportsDrift)
{
    const nn::LstmModel m(someConfig(), 13);
    const quant::QuantErrorReport r8 =
        quant::measureQuantError(m, QuantMode::Int8, someSequences());
    EXPECT_EQ(r8.sequences, 3u);
    EXPECT_GT(r8.maxAbsLogitError, 0.0);
    EXPECT_TRUE(std::isfinite(r8.maxAbsLogitError));
    EXPECT_GE(r8.argmaxFlipRate, 0.0);
    EXPECT_LE(r8.argmaxFlipRate, 1.0);

    const quant::QuantErrorReport r4 =
        quant::measureQuantError(m, QuantMode::Int4, someSequences());
    EXPECT_GE(r4.meanAbsLogitError, r8.meanAbsLogitError);
}

TEST(QuantModel, MeasureQuantErrorFp32IsExactlyZero)
{
    const nn::LstmModel m(someConfig(), 13);
    const quant::QuantErrorReport r =
        quant::measureQuantError(m, QuantMode::Fp32, someSequences());
    EXPECT_EQ(r.maxAbsLogitError, 0.0);
    EXPECT_EQ(r.argmaxFlipRate, 0.0);
}

} // namespace
