/**
 * @file
 * Tests for the cache models: exact set-associative LRU behaviour, the
 * analytic streaming-reuse model, and their agreement on the canonical
 * LSTM access pattern — including the Section III observation that a
 * weight matrix larger than the L2 is re-fetched nearly in full every
 * timestep (actually-loaded data many times the matrix size).
 */

#include <gtest/gtest.h>

#include "gpu/cache.hh"

namespace {

using namespace mflstm::gpu;

TEST(SetAssocCache, HitsOnRepeatedAccess)
{
    SetAssocCache cache(1024, 2, 32);
    EXPECT_FALSE(cache.access(0));   // compulsory miss
    EXPECT_TRUE(cache.access(0));    // hit
    EXPECT_TRUE(cache.access(16));   // same line
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(SetAssocCache, LruEvictsOldest)
{
    // 2-way, 32 B lines, 2 sets -> way size 64, capacity 128.
    SetAssocCache cache(128, 2, 32);
    // Three lines mapping to set 0: line addresses stride 64.
    EXPECT_FALSE(cache.access(0));
    EXPECT_FALSE(cache.access(64));
    EXPECT_FALSE(cache.access(128));  // evicts line 0 (LRU)
    EXPECT_FALSE(cache.access(0));    // line 0 gone
    EXPECT_TRUE(cache.access(128));   // line 128 still resident
}

TEST(SetAssocCache, LruRefreshOnHit)
{
    SetAssocCache cache(128, 2, 32);
    cache.access(0);
    cache.access(64);
    cache.access(0);    // refresh line 0
    cache.access(128);  // evicts line 64, not line 0
    EXPECT_TRUE(cache.access(0));
    EXPECT_FALSE(cache.access(64));
}

TEST(SetAssocCache, RangeAccessTouchesEveryLine)
{
    SetAssocCache cache(4096, 4, 32);
    cache.accessRange(0, 256);  // 8 lines
    EXPECT_EQ(cache.misses(), 8u);
    cache.accessRange(0, 256);
    EXPECT_EQ(cache.hits(), 8u);
    EXPECT_EQ(cache.dramBytes(), 8u * 32u);
}

TEST(SetAssocCache, ResetClearsState)
{
    SetAssocCache cache(1024, 2, 32);
    cache.access(0);
    cache.reset();
    EXPECT_EQ(cache.accesses(), 0u);
    EXPECT_FALSE(cache.access(0));
}

TEST(SetAssocCache, RejectsBadGeometry)
{
    EXPECT_THROW(SetAssocCache(1000, 3, 32), std::invalid_argument);
    EXPECT_THROW(SetAssocCache(1024, 0, 32), std::invalid_argument);
    EXPECT_THROW(SetAssocCache(96, 1, 32), std::invalid_argument);
}

TEST(SetAssocCache, ThrashingOnCyclicSweep)
{
    // The Section III pattern at unit scale: a working set 4x the cache
    // swept repeatedly misses on (nearly) every line, every sweep.
    SetAssocCache cache(4096, 8, 32);
    const std::size_t footprint = 4 * 4096;
    const int sweeps = 5;
    for (int s = 0; s < sweeps; ++s)
        cache.accessRange(0, footprint);

    EXPECT_GT(cache.missRate(), 0.95);
    // Actually-loaded bytes are ~sweeps x footprint — the paper's
    // "loaded data is many times the original data size".
    EXPECT_GT(cache.dramBytes(), 4u * footprint);
}

TEST(SetAssocCache, ResidentWorkingSetLoadsOnce)
{
    SetAssocCache cache(64 * 1024, 16, 32);
    const std::size_t footprint = 16 * 1024;  // fits comfortably
    for (int s = 0; s < 5; ++s)
        cache.accessRange(0, footprint);
    EXPECT_EQ(cache.dramBytes(), footprint);
}

TEST(StreamingModel, FittingSetIsCompulsoryOnly)
{
    EXPECT_DOUBLE_EQ(streamingReuseDramBytes(1000.0, 10.0, 10000.0),
                     1000.0);
}

TEST(StreamingModel, ThrashingApproachesSweepsTimesFootprint)
{
    const double f = 4.0e6;
    const double traffic = streamingReuseDramBytes(f, 10.0, 256.0e3);
    EXPECT_GT(traffic, 0.9 * 10.0 * f);
    EXPECT_LE(traffic, 10.0 * f);
}

TEST(StreamingModel, ZeroInputsZeroTraffic)
{
    EXPECT_DOUBLE_EQ(streamingReuseDramBytes(0.0, 5.0, 1000.0), 0.0);
    EXPECT_DOUBLE_EQ(streamingReuseDramBytes(100.0, 0.0, 1000.0), 0.0);
}

TEST(StreamingModel, MonotoneInSweeps)
{
    const double c = 256.0e3;
    double prev = 0.0;
    for (double s = 1.0; s <= 8.0; ++s) {
        const double t = streamingReuseDramBytes(1.0e6, s, c);
        EXPECT_GE(t, prev);
        prev = t;
    }
}

TEST(StreamingModel, AgreesWithExactCacheOnThrashing)
{
    // Down-scaled cross-validation: exact simulation vs analytic model.
    const std::size_t cap = 8 * 1024;
    const std::size_t footprint = 32 * 1024;
    const int sweeps = 6;

    SetAssocCache cache(cap, 8, 32);
    for (int s = 0; s < sweeps; ++s)
        cache.accessRange(0, footprint);

    const double analytic = streamingReuseDramBytes(
        static_cast<double>(footprint), sweeps,
        static_cast<double>(cap));
    const double exact = static_cast<double>(cache.dramBytes());
    // Within 20%: the analytic residency factor is a deliberate
    // smoothing of conflict behaviour.
    EXPECT_NEAR(analytic / exact, 1.0, 0.2);
}

TEST(StreamingModel, AgreesWithExactCacheOnResidentSet)
{
    const std::size_t cap = 64 * 1024;
    const std::size_t footprint = 16 * 1024;
    SetAssocCache cache(cap, 16, 32);
    for (int s = 0; s < 4; ++s)
        cache.accessRange(0, footprint);

    const double analytic = streamingReuseDramBytes(
        static_cast<double>(footprint), 4.0, static_cast<double>(cap));
    EXPECT_DOUBLE_EQ(analytic, static_cast<double>(cache.dramBytes()));
}

} // namespace
