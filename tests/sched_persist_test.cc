/**
 * Tuned-plan artifact (DESIGN.md §11/§14): byte-identical serialization
 * of identical searches, full round-trip, staleness against every
 * fingerprint ingredient, corruption rejection (bit flip, truncation),
 * and the tuneCached quarantine-and-retune flow.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "gpu/config.hh"
#include "io/artifact.hh"
#include "runtime/executor.hh"
#include "sched/persist.hh"

namespace mflstm {
namespace sched {
namespace {

namespace fs = std::filesystem;

constexpr std::uint32_t kWeightsCrc = 0xDEADBEEF;

class SchedPersistTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = fs::temp_directory_path() /
               ("mflstm_sched_persist_" +
                std::to_string(::testing::UnitTest::GetInstance()
                                   ->random_seed()) +
                "_" + ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name());
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    std::string path(const std::string &name) const
    {
        return (dir_ / name).string();
    }

    static TuneRequest request()
    {
        TuneRequest req;
        req.shape = runtime::NetworkShape::stacked(64, 128, 2, 20);
        req.mts = 4;
        req.modelHidden = 128;
        core::LayerApproxStats s;
        s.sequences = 10;
        s.links = 190;
        s.breaks = 60;
        s.cells = 200;
        s.skippedRows = 0.4 * 200 * 128;
        req.stats = {s, s};
        return req;
    }

    static std::vector<char> slurp(const std::string &p)
    {
        std::ifstream in(p, std::ios::binary);
        return {std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>()};
    }

    fs::path dir_;
};

TEST_F(SchedPersistTest, IdenticalSearchesProduceByteIdenticalFiles)
{
    const runtime::NetworkExecutor exec(gpu::GpuConfig::tegraX1());
    const TuneRequest req = request();
    const TuneResult res = tune(exec, req);
    const TunedPlanArtifact art =
        makeTunedPlanArtifact(req, kWeightsCrc, exec.config(), res);

    saveTunedPlan(art, path("a.bin"));
    saveTunedPlan(art, path("b.bin"));
    const std::vector<char> a = slurp(path("a.bin"));
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, slurp(path("b.bin")));

    // Re-running the whole search also lands on the same bytes: the
    // determinism the tuner promises extends to the artifact.
    const TuneResult res2 = tune(exec, req);
    saveTunedPlan(
        makeTunedPlanArtifact(req, kWeightsCrc, exec.config(), res2),
        path("c.bin"));
    EXPECT_EQ(a, slurp(path("c.bin")));
}

TEST_F(SchedPersistTest, RoundTripPreservesEverything)
{
    const runtime::NetworkExecutor exec(gpu::GpuConfig::tegraX1());
    const TuneRequest req = request();
    const TuneResult res = tune(exec, req);
    const TunedPlanArtifact art =
        makeTunedPlanArtifact(req, kWeightsCrc, exec.config(), res);
    saveTunedPlan(art, path("t.bin"));

    const TunedPlanArtifact back =
        loadTunedPlan(path("t.bin"), exec.config(), req, kWeightsCrc);
    EXPECT_EQ(back.fingerprint, art.fingerprint);
    EXPECT_EQ(back.shape, art.shape);
    EXPECT_EQ(back.decisions, art.decisions);
    EXPECT_EQ(back.timeUs, art.timeUs);
    EXPECT_EQ(back.dramBytes, art.dramBytes);
    EXPECT_EQ(back.chosenLabel, art.chosenLabel);
    EXPECT_EQ(back.referenceLabel, art.referenceLabel);
    EXPECT_EQ(back.referenceTimeUs, art.referenceTimeUs);
    EXPECT_EQ(back.referenceDramBytes, art.referenceDramBytes);
    EXPECT_EQ(back.layerLabels, art.layerLabels);
    ASSERT_EQ(back.candidates.size(), art.candidates.size());
    for (std::size_t i = 0; i < back.candidates.size(); ++i) {
        EXPECT_EQ(back.candidates[i].label, art.candidates[i].label);
        EXPECT_EQ(back.candidates[i].timeUs, art.candidates[i].timeUs);
    }

    EXPECT_NO_THROW(verifyTunedPlanFile(path("t.bin")));
}

TEST_F(SchedPersistTest, StaleOnEveryFingerprintIngredient)
{
    const runtime::NetworkExecutor exec(gpu::GpuConfig::tegraX1());
    const TuneRequest req = request();
    const TuneResult res = tune(exec, req);
    saveTunedPlan(
        makeTunedPlanArtifact(req, kWeightsCrc, exec.config(), res),
        path("t.bin"));

    auto expectStale = [&](const TuneRequest &r, std::uint32_t crc,
                           const gpu::GpuConfig &gpu) {
        try {
            loadTunedPlan(path("t.bin"), gpu, r, crc);
            FAIL() << "expected Stale";
        } catch (const io::ArtifactError &e) {
            EXPECT_EQ(e.kind(), io::ErrorKind::Stale) << e.what();
        }
    };

    // New model weights.
    expectStale(req, kWeightsCrc + 1, exec.config());

    // New approximation statistics.
    TuneRequest new_stats = req;
    new_stats.stats[0].breaks += 1;
    expectStale(new_stats, kWeightsCrc, exec.config());

    // Different precision / batch / mts points.
    TuneRequest q = req;
    q.quant = quant::QuantMode::Int8;
    expectStale(q, kWeightsCrc, exec.config());
    TuneRequest b = req;
    b.batch = 8;
    expectStale(b, kWeightsCrc, exec.config());
    TuneRequest m = req;
    m.mts = 6;
    expectStale(m, kWeightsCrc, exec.config());

    // A different GPU cannot reuse the plan either.
    gpu::GpuConfig other = exec.config();
    other.dramBandwidthGBs *= 2.0;
    expectStale(req, kWeightsCrc, other);

    // The unmodified expectation still loads.
    EXPECT_NO_THROW(
        loadTunedPlan(path("t.bin"), exec.config(), req, kWeightsCrc));
}

TEST_F(SchedPersistTest, RejectsBitFlipAndTruncation)
{
    const runtime::NetworkExecutor exec(gpu::GpuConfig::tegraX1());
    const TuneRequest req = request();
    const TuneResult res = tune(exec, req);
    saveTunedPlan(
        makeTunedPlanArtifact(req, kWeightsCrc, exec.config(), res),
        path("t.bin"));
    const std::vector<char> good = slurp(path("t.bin"));
    ASSERT_GT(good.size(), 64u);

    // Flip one payload bit.
    std::vector<char> flipped = good;
    flipped[good.size() / 2] ^= 0x20;
    {
        std::ofstream out(path("flip.bin"), std::ios::binary);
        out.write(flipped.data(),
                  static_cast<std::streamsize>(flipped.size()));
    }
    EXPECT_THROW(
        loadTunedPlan(path("flip.bin"), exec.config(), req, kWeightsCrc),
        io::ArtifactError);
    EXPECT_THROW(verifyTunedPlanFile(path("flip.bin")),
                 io::ArtifactError);

    // Drop the tail.
    {
        std::ofstream out(path("trunc.bin"), std::ios::binary);
        out.write(good.data(),
                  static_cast<std::streamsize>(good.size() / 2));
    }
    EXPECT_THROW(
        loadTunedPlan(path("trunc.bin"), exec.config(), req,
                      kWeightsCrc),
        io::ArtifactError);
}

TEST_F(SchedPersistTest, TuneCachedMissSavesThenHitsSkippingSearch)
{
    const runtime::NetworkExecutor exec(gpu::GpuConfig::tegraX1());
    const TuneRequest req = request();
    const std::string cache = path("cache.bin");

    const TuneResult fresh =
        tuneCached(exec, req, kWeightsCrc, cache);
    EXPECT_FALSE(fresh.fromCache);
    EXPECT_TRUE(fs::exists(cache));

    const TuneResult hit = tuneCached(exec, req, kWeightsCrc, cache);
    EXPECT_TRUE(hit.fromCache);
    EXPECT_EQ(hit.chosen.plan, fresh.chosen.plan);
    EXPECT_EQ(hit.chosen.timeUs, fresh.chosen.timeUs);
    EXPECT_EQ(hit.referenceLabel, fresh.referenceLabel);
    EXPECT_TRUE(hit.dominatesReference);

    // force ignores (but rewrites) the cache.
    const TuneResult forced =
        tuneCached(exec, req, kWeightsCrc, cache, {}, nullptr,
                   /*force=*/true);
    EXPECT_FALSE(forced.fromCache);
    EXPECT_EQ(forced.chosen.plan, fresh.chosen.plan);
}

TEST_F(SchedPersistTest, TuneCachedQuarantinesCorruptCacheAndRetunes)
{
    const runtime::NetworkExecutor exec(gpu::GpuConfig::tegraX1());
    const TuneRequest req = request();
    const std::string cache = path("cache.bin");
    tuneCached(exec, req, kWeightsCrc, cache);

    // Corrupt the cache in place.
    std::vector<char> bytes = slurp(cache);
    ASSERT_GT(bytes.size(), 64u);
    bytes[bytes.size() / 2] ^= 0x40;
    {
        std::ofstream out(cache, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }

    const TuneResult res = tuneCached(exec, req, kWeightsCrc, cache);
    EXPECT_FALSE(res.fromCache);  // never trusted, search re-ran
    EXPECT_TRUE(res.dominatesReference);

    // The bad file was quarantined, a good one rewritten in its place.
    bool quarantined = false;
    for (const fs::directory_entry &e : fs::directory_iterator(dir_))
        if (e.path().string().find(".corrupt") != std::string::npos)
            quarantined = true;
    EXPECT_TRUE(quarantined);
    EXPECT_TRUE(fs::exists(cache));
    EXPECT_TRUE(
        tuneCached(exec, req, kWeightsCrc, cache).fromCache);
}

TEST_F(SchedPersistTest, StaleCacheIsRetunedNotServed)
{
    const runtime::NetworkExecutor exec(gpu::GpuConfig::tegraX1());
    const TuneRequest req = request();
    const std::string cache = path("cache.bin");
    tuneCached(exec, req, kWeightsCrc, cache);

    // Same file, new weights: the fingerprint no longer matches.
    const TuneResult res =
        tuneCached(exec, req, kWeightsCrc + 7, cache);
    EXPECT_FALSE(res.fromCache);
    // And the rewritten cache now serves the *new* fingerprint.
    EXPECT_TRUE(
        tuneCached(exec, req, kWeightsCrc + 7, cache).fromCache);
}

} // namespace
} // namespace sched
} // namespace mflstm
