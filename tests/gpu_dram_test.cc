/**
 * @file
 * Tests for the banked DRAM model: row-buffer behaviour, channel
 * interleaving, and the two claims the rest of the simulator rests on —
 * sequential weight streaming runs at near-peak bandwidth (validating
 * the flat-pipe DRAM model), while sparse strided gathers (the
 * zero-pruning comparator's access shape) lose a large fraction of it.
 */

#include <gtest/gtest.h>

#include "gpu/dram.hh"

namespace {

using namespace mflstm::gpu;

TEST(BankedDram, FirstAccessMissesThenRowHits)
{
    BankedDram dram;
    dram.access(0);
    EXPECT_EQ(dram.stats().rowMisses, 1u);
    // Same channel, same row: addresses stride channels*burst apart.
    const auto step =
        dram.config().burstBytes * dram.config().channels;
    dram.access(step);
    dram.access(2 * step);
    EXPECT_EQ(dram.stats().rowHits, 2u);
    EXPECT_EQ(dram.stats().accesses, 3u);
}

TEST(BankedDram, SequentialStreamIsNearlyAllRowHits)
{
    BankedDram dram;
    // Stream 4 MB — the LSTM united weight matrix at H = 512.
    dram.accessRange(0, 4 << 20);
    const DramStats &s = dram.stats();
    EXPECT_GT(s.hitRate(), 0.95);
    // ...so the flat-bandwidth model is a faithful stand-in:
    EXPECT_GT(s.efficiencyVsPeak(dram.config()), 0.85);
    EXPECT_DOUBLE_EQ(s.bytes, static_cast<double>(4 << 20));
}

TEST(BankedDram, SparseGatherLosesBandwidth)
{
    BankedDram dram;
    // CSR-style gather: one burst every ~3 rows.
    dram.accessStrided(0, 3 * dram.config().rowBytes + 64, 4096);
    const DramStats &s = dram.stats();
    EXPECT_LT(s.hitRate(), 0.2);
    EXPECT_LT(s.efficiencyVsPeak(dram.config()), 0.5);
}

TEST(BankedDram, StridedWithinRowStillHits)
{
    BankedDram dram;
    // Stride smaller than a row (same channel): mostly hits.
    dram.accessStrided(0, dram.config().burstBytes * 2, 512);
    EXPECT_GT(dram.stats().hitRate(), 0.8);
}

TEST(BankedDram, ChannelsShareTheLoad)
{
    BankedDram dram;
    dram.accessRange(0, 64 << 10);
    // Perfect interleave: total cycles ~ bytes / peak bandwidth.
    const double ideal = dram.stats().bytes /
                         dram.config().peakBytesPerCycle();
    EXPECT_NEAR(dram.stats().cycles / ideal, 1.0, 0.2);
}

TEST(BankedDram, ResetClearsEverything)
{
    BankedDram dram;
    dram.accessRange(0, 4096);
    dram.resetStats();
    EXPECT_EQ(dram.stats().accesses, 0u);
    EXPECT_DOUBLE_EQ(dram.stats().cycles, 0.0);
    // Row buffers were also invalidated: the next access misses again.
    dram.access(0);
    EXPECT_EQ(dram.stats().rowMisses, 1u);
}

TEST(BankedDram, PeakBandwidthMatchesConfig)
{
    DramConfig cfg;
    cfg.channels = 2;
    cfg.burstBytes = 32;
    cfg.burstCycles = 1.25;
    // 2 ch x 32 B / 1.25 cyc = 51.2 B/cycle of DRAM clock.
    EXPECT_DOUBLE_EQ(cfg.peakBytesPerCycle(), 51.2);
}

TEST(BankedDram, ZeroSizeRangeIsNoop)
{
    BankedDram dram;
    dram.accessRange(128, 0);
    EXPECT_EQ(dram.stats().accesses, 0u);
}

TEST(BankedDram, EfficiencyGapMatchesCoalescingPenalty)
{
    // The lowering charges the zero-pruning comparator a ~1.55x
    // coalescing inflation; the banked model justifies that band.
    BankedDram seq, sparse;
    seq.accessRange(0, 1 << 20);
    sparse.accessStrided(0, 2 * sparse.config().rowBytes + 96, 8192);

    const double seq_eff = seq.stats().efficiencyVsPeak(seq.config());
    const double sparse_eff =
        sparse.stats().efficiencyVsPeak(sparse.config());
    const double penalty = seq_eff / sparse_eff;
    EXPECT_GT(penalty, 1.3);
    EXPECT_LT(penalty, 15.0);
}

} // namespace
