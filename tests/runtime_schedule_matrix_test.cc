/**
 * @file
 * Exhaustive property test of the LayerSchedule::validate() rejection
 * matrix (ISSUE 8): every combination of (tissue schedule x skip path x
 * skip fraction x flag fusion x precision x CSR x prune fraction x
 * residency) is classified by an INDEPENDENT re-statement of the
 * documented rules, then checked against validate() — invalid points
 * must throw with the documented reason, valid points must also lower
 * end-to-end without throwing. A rule added to validate() without a
 * matching rule here (or vice versa) fails the whole matrix.
 */

#include <gtest/gtest.h>

#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "gpu/config.hh"
#include "runtime/lowering.hh"
#include "runtime/plan.hh"
#include "runtime/schedule.hh"

namespace mflstm {
namespace runtime {
namespace {

/**
 * The documented rule table, re-stated independently of schedule.cc and
 * evaluated in the same order validate() documents: returns the
 * distinctive substring of the expected error, or nullopt when the
 * combination is executable.
 */
std::optional<std::string>
expectedRejection(const LayerSchedule &ls)
{
    const bool tissues = ls.usesTissues();
    const bool skip_active =
        ls.skipPath != SkipPath::Off && ls.skipFraction > 0.0;

    // Rule 1-2: fractions finite and within [0, 1].
    if (ls.skipFraction < 0.0 || ls.skipFraction > 1.0)
        return "skipFraction outside";
    if (ls.pruneFraction < 0.0 || ls.pruneFraction > 1.0)
        return "pruneFraction outside";
    // Rule 3: the CRM consumes raw flags from the fused U_o epilogue.
    if (ls.skipPath == SkipPath::HwCrm &&
        ls.flagFusion != FlagFusion::FusedEpilogue)
        return "hw-crm requires fused-epilogue";
    // Rule 4: DRS inside a tissue dispatches through the CRM.
    if (tissues && skip_active && ls.skipPath != SkipPath::HwCrm)
        return "tissues + skip require hw-crm";
    // Rule 5: the CSR comparator composes with nothing and stays fp32.
    if (ls.prunedCsr) {
        if (!ls.tissueSizes.empty() || ls.skipPath != SkipPath::Off)
            return "composes with neither tissues nor DRS";
        if (ls.quant != quant::QuantMode::Fp32)
            return "defined on fp32";
    } else if (ls.pruneFraction != 0.0) {
        // Rule 6: a prune level is meaningless outside the CSR flow.
        return "pruneFraction without the prunedCsr flow";
    }
    // Rule 7: a persistent layer launches once — DRS re-dispatch and
    // the CSR gather layout are both incompatible with residency.
    if (ls.residency != WeightResidency::None) {
        if (ls.skipPath != SkipPath::Off)
            return "residency requires skipPath off";
        if (ls.prunedCsr)
            return "residency excludes prunedCsr";
    }
    return std::nullopt;
}

TEST(ScheduleMatrix, EveryCombinationValidatesOrRejectsAsDocumented)
{
    const gpu::GpuConfig cfg = gpu::GpuConfig::tegraX1();
    const Lowering lowering(cfg);
    // Length 12 so the {4,4,4} tissue schedule covers every cell.
    const NetworkShape shape = NetworkShape::stacked(32, 64, 1, 12);

    const std::vector<std::size_t> tissue_opts[] = {{}, {4, 4, 4}};
    const SkipPath paths[] = {SkipPath::Off, SkipPath::Software,
                              SkipPath::HwCrm};
    const double skip_fracs[] = {0.0, 0.4};
    const FlagFusion fusions[] = {FlagFusion::Standalone,
                                  FlagFusion::FusedEpilogue};
    const quant::QuantMode quants[] = {quant::QuantMode::Fp32,
                                       quant::QuantMode::Int8,
                                       quant::QuantMode::Int4};
    const bool csr_opts[] = {false, true};
    const double prune_fracs[] = {0.0, 0.37};
    const WeightResidency residencies[] = {WeightResidency::None,
                                           WeightResidency::Shared,
                                           WeightResidency::Regfile};

    std::size_t total = 0, valid = 0, rejected = 0;
    for (const auto &tissue : tissue_opts)
    for (SkipPath path : paths)
    for (double skip : skip_fracs)
    for (FlagFusion fusion : fusions)
    for (quant::QuantMode qm : quants)
    for (bool csr : csr_opts)
    for (double prune : prune_fracs)
    for (WeightResidency res : residencies) {
        ++total;
        LayerSchedule ls;
        ls.tissueSizes = tissue;
        ls.skipPath = path;
        ls.skipFraction = skip;
        ls.flagFusion = fusion;
        ls.quant = qm;
        ls.prunedCsr = csr;
        ls.pruneFraction = prune;
        ls.residency = res;

        const std::string label =
            std::string(tissue.empty() ? "dense" : "tissues") + "/" +
            toString(path) + "/f" + std::to_string(skip) + "/" +
            toString(fusion) + "/" + quant::toString(qm) +
            (csr ? "/csr" : "") + "/p" + std::to_string(prune) + "/" +
            toString(res);
        SCOPED_TRACE(label);

        const std::optional<std::string> want = expectedRejection(ls);
        if (want) {
            ++rejected;
            try {
                ls.validate();
                ADD_FAILURE() << "accepted; expected: " << *want;
            } catch (const std::invalid_argument &e) {
                EXPECT_NE(std::string(e.what()).find(*want),
                          std::string::npos)
                    << "rejected for the wrong reason: " << e.what();
            }
        } else {
            ++valid;
            ASSERT_NO_THROW(ls.validate());
            // Valid decisions must also be executable: lower the full
            // network through the explicit-decision path.
            ScheduleDecisions d;
            d.layers.push_back(ls);
            ASSERT_NO_THROW((void)lowering.lower(
                shape, ExecutionPlan::fromDecisions(d), 1));
        }
    }

    // The matrix is meaningful only if both classes are well populated
    // and every combination was visited.
    EXPECT_EQ(total, 864u);
    EXPECT_EQ(valid + rejected, total);
    EXPECT_GT(valid, 100u);
    EXPECT_GT(rejected, 100u);
}

/** Fuzz the numeric edges the enumerated grid cannot reach. */
TEST(ScheduleMatrix, NonFiniteAndOutOfRangeFractionsRejected)
{
    for (double bad :
         {-0.1, 1.1, std::numeric_limits<double>::infinity(),
          -std::numeric_limits<double>::infinity(),
          std::numeric_limits<double>::quiet_NaN()}) {
        LayerSchedule skip;
        skip.skipPath = SkipPath::Software;
        skip.skipFraction = bad;
        EXPECT_THROW(skip.validate(), std::invalid_argument);

        LayerSchedule prune;
        prune.prunedCsr = true;
        prune.pruneFraction = bad;
        EXPECT_THROW(prune.validate(), std::invalid_argument);
    }
}

} // namespace
} // namespace runtime
} // namespace mflstm
