/**
 * @file
 * Conservation property tests for the traffic-attribution ledger on the
 * real lowering + simulator path (ISSUE 6 acceptance): for every Table
 * II application, every plan kind and every quantization mode, the
 * bytes the ledger attributes must equal the TraceResult DRAM total
 * BIT-EXACTLY (EXPECT_EQ on the doubles, no epsilon), and no per-sample
 * decomposition violation may be recorded. This is the automated
 * replacement for the manual byte audit that found PR 5's CRM
 * double-count.
 *
 * The sweep carries a backend axis (DESIGN.md §17): conservation must
 * hold bit-exactly on every hw registry backend, and backends whose
 * dot units fold the scale stream into the epilogue must attribute
 * exactly zero Dequant-cause bytes.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "hw/backend.hh"
#include "obs/ledger.hh"
#include "runtime/executor.hh"
#include "workloads/benchmarks.hh"

namespace {

using namespace mflstm;
using runtime::ExecutionPlan;
using runtime::PlanKind;

const gpu::GpuConfig kCfg = gpu::GpuConfig::tegraX1();

/**
 * A synthetic but structurally complete plan for @p kind: aligned
 * tissue schedules covering every cell, a DRS skip fraction in the
 * regime the paper reports (~35%), and the comparator's prune level.
 */
ExecutionPlan
planFor(PlanKind kind, const runtime::NetworkShape &shape,
        quant::QuantMode qm)
{
    ExecutionPlan plan;
    plan.kind = kind;
    plan.quantMode = qm;
    if (plan.usesInter()) {
        for (const runtime::LstmLayerShape &layer : shape.layers) {
            runtime::LayerInterPlan ip;
            std::size_t left = layer.length;
            while (left > 0) {
                const std::size_t t = std::min<std::size_t>(4, left);
                ip.tissueSizes.push_back(t);
                left -= t;
            }
            plan.inter.push_back(std::move(ip));
        }
    }
    if (plan.usesIntra())
        plan.intra.assign(shape.layers.size(),
                          runtime::LayerIntraPlan{0.35});
    if (kind == PlanKind::ZeroPruning)
        plan.pruneFraction = 0.3;
    return plan;
}

void
expectConserved(const runtime::NetworkShape &shape,
                const ExecutionPlan &plan, std::size_t batch,
                const std::string &label,
                const gpu::GpuConfig &cfg = kCfg)
{
    obs::TrafficLedger ledger;
    runtime::NetworkExecutor ex(cfg);
    ex.setLedger(&ledger);

    const runtime::RunReport rep =
        ex.run(runtime::RunRequest::network(shape, plan, batch));

    // Bit-exact: the ledger accumulates sample totals in the same
    // left-to-right order the simulator sums TraceResult::dramBytes.
    EXPECT_EQ(ledger.attributedDramBytes(), rep.result.dramBytes)
        << label;
    EXPECT_EQ(ledger.samples(), rep.result.kernelCount) << label;

    const auto errors = ledger.verifyConservation(rep.result.dramBytes);
    EXPECT_TRUE(errors.empty()) << label << ": " << errors.front();

    // The tree never invents traffic: per-cause sums stay within total.
    double tree = 0.0;
    for (const auto &node : ledger.traffic()) {
        EXPECT_GE(node.second, 0.0) << label;
        tree += node.second;
    }
    EXPECT_NEAR(tree, rep.result.dramBytes,
                1e-9 * std::max(1.0, rep.result.dramBytes))
        << label;
}

TEST(LedgerConservation, AllTableIIAppsAllPlanKindsAllQuantModes)
{
    const PlanKind kinds[] = {
        PlanKind::Baseline,    PlanKind::InterCell,
        PlanKind::IntraCellSw, PlanKind::IntraCellHw,
        PlanKind::Combined,    PlanKind::ZeroPruning,
        PlanKind::Persistent,
    };
    const quant::QuantMode modes[] = {
        quant::QuantMode::Fp32,
        quant::QuantMode::Int8,
        quant::QuantMode::Int4,
    };

    for (const workloads::BenchmarkSpec &spec : workloads::tableII()) {
        const runtime::NetworkShape shape = spec.timingShape();
        for (PlanKind kind : kinds) {
            for (quant::QuantMode qm : modes) {
                const std::string label =
                    spec.name + "/" + runtime::toString(kind) + "/qm" +
                    std::to_string(static_cast<int>(qm));
                expectConserved(shape, planFor(kind, shape, qm), 1,
                                label);
            }
        }
    }
}

// Backend axis (DESIGN.md §17): the same bit-exact sweep on every
// registry backend — capability flags reroute attribution (scale bytes
// fold into the weight stream on dot-unit parts), they never create or
// destroy it.
TEST(LedgerConservation, HoldsOnEveryRegistryBackend)
{
    const PlanKind kinds[] = {
        PlanKind::Baseline,    PlanKind::InterCell,
        PlanKind::IntraCellSw, PlanKind::IntraCellHw,
        PlanKind::Combined,    PlanKind::ZeroPruning,
        PlanKind::Persistent,
    };
    const quant::QuantMode modes[] = {
        quant::QuantMode::Fp32,
        quant::QuantMode::Int8,
        quant::QuantMode::Int4,
    };

    for (const hw::Backend &b : hw::registry().entries()) {
        if (b.id == "tx1")
            continue;  // the anchor sweep above is exactly this
        for (const workloads::BenchmarkSpec &spec :
             workloads::tableII()) {
            const runtime::NetworkShape shape = spec.timingShape();
            for (PlanKind kind : kinds) {
                for (quant::QuantMode qm : modes) {
                    expectConserved(
                        shape, planFor(kind, shape, qm), 1,
                        b.id + "/" + spec.name + "/" +
                            runtime::toString(kind) + "/qm" +
                            std::to_string(static_cast<int>(qm)),
                        b.config);
                }
            }
        }
    }
}

// Dot-unit backends fold the per-row scales into the Sgemm epilogue:
// the Dequant cause must attribute exactly zero bytes there, while the
// Maxwell anchor keeps paying for the separate scale stream.
TEST(LedgerConservation, DotUnitBackendsReportZeroDequantBytes)
{
    const runtime::NetworkShape shape =
        workloads::tableII().front().timingShape();

    const auto dequantBytes = [&](const gpu::GpuConfig &cfg) {
        obs::TrafficLedger ledger;
        runtime::NetworkExecutor ex(cfg);
        ex.setLedger(&ledger);
        ex.run(runtime::RunRequest::network(
            shape,
            planFor(PlanKind::Combined, shape, quant::QuantMode::Int8),
            1));
        double bytes = 0.0;
        for (const auto &[key, value] : ledger.traffic())
            if (key.cause == obs::TrafficCause::Dequant)
                bytes += value;
        return bytes;
    };

    for (const hw::Backend &b : hw::registry().entries()) {
        SCOPED_TRACE(b.id);
        if (b.config.int8DotUnits)
            EXPECT_EQ(dequantBytes(b.config), 0.0);
        else
            EXPECT_GT(dequantBytes(b.config), 0.0);
    }
}

TEST(LedgerConservation, HoldsAcrossBatchDimension)
{
    const runtime::NetworkShape shape =
        runtime::NetworkShape::stacked(512, 512, 2, 20);
    for (std::size_t batch : {1u, 3u, 8u}) {
        for (PlanKind kind :
             {PlanKind::Baseline, PlanKind::Combined}) {
            expectConserved(
                shape, planFor(kind, shape, quant::QuantMode::Int8),
                batch,
                "batch" + std::to_string(batch) + "/" +
                    runtime::toString(kind));
        }
    }
}

// ISSUE 8: residency introduces a third weight sub-stream
// (residency-reload) that must decompose dramWeightBytes without
// overlapping codes or scales — sweep every tier × precision × batch.
TEST(LedgerConservation, HoldsAcrossResidencyTiers)
{
    const runtime::NetworkShape shape =
        runtime::NetworkShape::stacked(512, 512, 2, 20);
    const runtime::WeightResidency tiers[] = {
        runtime::WeightResidency::Shared,
        runtime::WeightResidency::Regfile,
    };
    const quant::QuantMode modes[] = {
        quant::QuantMode::Fp32,
        quant::QuantMode::Int8,
        quant::QuantMode::Int4,
    };
    for (runtime::WeightResidency tier : tiers) {
        for (quant::QuantMode qm : modes) {
            for (std::size_t batch : {1u, 4u}) {
                for (bool tissues : {false, true}) {
                    runtime::ScheduleDecisions d;
                    d.layers.resize(shape.layers.size());
                    for (std::size_t l = 0; l < d.layers.size(); ++l) {
                        d.layers[l].quant = qm;
                        d.layers[l].residency = tier;
                        if (tissues)
                            d.layers[l].tissueSizes = {4, 4, 4, 4, 4};
                    }
                    expectConserved(
                        shape, ExecutionPlan::fromDecisions(d), batch,
                        std::string(toString(tier)) +
                            (tissues ? "/tissues" : "/dense") + "/qm" +
                            std::to_string(static_cast<int>(qm)) + "/b" +
                            std::to_string(batch));
                }
            }
        }
    }
}

// The persistent preset on the real Table II shapes, every precision.
TEST(LedgerConservation, PersistentPresetConservesOnTableII)
{
    for (const workloads::BenchmarkSpec &spec : workloads::tableII()) {
        const runtime::NetworkShape shape = spec.timingShape();
        for (quant::QuantMode qm :
             {quant::QuantMode::Fp32, quant::QuantMode::Int8}) {
            expectConserved(
                shape, planFor(PlanKind::Persistent, shape, qm), 4,
                spec.name + "/persistent/qm" +
                    std::to_string(static_cast<int>(qm)));
        }
    }
}

TEST(LedgerConservation, LedgerAccumulatesAcrossRunsAndResets)
{
    const runtime::NetworkShape shape =
        runtime::NetworkShape::stacked(256, 256, 1, 8);
    obs::TrafficLedger ledger;
    runtime::NetworkExecutor ex(kCfg);
    ex.setLedger(&ledger);

    const auto r1 = ex.run(runtime::RunRequest::network(
        shape, planFor(PlanKind::Baseline, shape, quant::QuantMode::Fp32),
        1));
    const auto r2 = ex.run(runtime::RunRequest::network(
        shape, planFor(PlanKind::Baseline, shape, quant::QuantMode::Fp32),
        1));
    // Two runs accumulate. Bit-exactness is an ordering guarantee, and
    // (r1 + r2) sums per-run first while the ledger keeps one running
    // sum across both — so across runs only ulp-level agreement holds.
    EXPECT_NEAR(ledger.attributedDramBytes(),
                r1.result.dramBytes + r2.result.dramBytes,
                1e-12 * ledger.attributedDramBytes());

    ledger.reset();
    EXPECT_EQ(ledger.samples(), 0u);
    const auto r3 = ex.run(runtime::RunRequest::network(
        shape, planFor(PlanKind::Baseline, shape, quant::QuantMode::Fp32),
        1));
    EXPECT_TRUE(ledger.verifyConservation(r3.result.dramBytes).empty());
}

} // namespace
