/**
 * @file
 * Tests for the relevance value (Algorithm 2), breakpoint search and
 * sub-layer construction.
 */

#include <limits>

#include <gtest/gtest.h>

#include "core/relevance.hh"
#include "tensor/rng.hh"

namespace {

using namespace mflstm;
using namespace mflstm::core;

nn::LstmLayerParams
params(std::size_t in, std::size_t hid, std::uint64_t seed)
{
    nn::LstmLayerParams p(in, hid);
    tensor::Rng rng(seed);
    p.init(rng);
    return p;
}

TEST(RelevanceContext, RowAbsSumsMatchDefinition)
{
    nn::LstmLayerParams p(1, 2);
    p.uf(0, 0) = 1.0f;
    p.uf(0, 1) = -2.0f;
    p.uf(1, 0) = 0.5f;

    const LayerRelevanceContext ctx(p);
    EXPECT_FLOAT_EQ(ctx.df[0], 3.0f);
    EXPECT_FLOAT_EQ(ctx.df[1], 0.5f);
}

TEST(Relevance, ZeroWhenAllGatesPinned)
{
    // Tiny recurrent reach (D ~ 0) and input projections deep in the
    // insensitive area: the link carries no information, S = 0.
    nn::LstmLayerParams p(1, 4);  // all-zero weights -> D = 0
    const LayerRelevanceContext ctx(p);

    Vector x_proj(16);
    for (std::size_t j = 0; j < 4; ++j) {
        x_proj[j] = 10.0f;       // forget gate pinned... S_f = 4 though
        x_proj[4 + j] = 10.0f;   // input gate pinned
        x_proj[8 + j] = 10.0f;   // candidate pinned
        x_proj[12 + j] = 10.0f;  // output gate pinned
    }
    // With D = 0 and |m| far above 2, s_ico = min(4, 2 + 0 - |m|...) < 0
    // clamps the product to zero.
    EXPECT_DOUBLE_EQ(ctx.relevance(p, x_proj), 0.0);
}

TEST(Relevance, MaximalWhenEverythingSensitive)
{
    // Large D keeps every gate's possible range covering the whole
    // sensitive area: each element contributes s_o*(s_f + s_i*s_c) =
    // 2*(4+4) = 16.
    nn::LstmLayerParams p(1, 3);
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 3; ++c) {
            p.uf(r, c) = 3.0f;
            p.ui(r, c) = 3.0f;
            p.uc(r, c) = 3.0f;
            p.uo(r, c) = 3.0f;
        }
    p.bf.zero();  // cancel the forget-bias offset for exactness

    const LayerRelevanceContext ctx(p);
    const Vector x_proj(12);  // zero inputs
    EXPECT_DOUBLE_EQ(ctx.relevance(p, x_proj), 3.0 * 16.0);
}

TEST(Relevance, MonotoneInInputSaturation)
{
    // Pushing the input projections deeper into saturation can only
    // weaken the link.
    const nn::LstmLayerParams p = params(4, 8, 3);
    const LayerRelevanceContext ctx(p);

    Vector weak_proj(32), strong_proj(32);
    for (std::size_t j = 0; j < 32; ++j) {
        weak_proj[j] = 0.1f;
        strong_proj[j] = 8.0f;
    }
    EXPECT_GT(ctx.relevance(p, weak_proj),
              ctx.relevance(p, strong_proj));
}

TEST(Relevance, RejectsWrongProjectionSize)
{
    const nn::LstmLayerParams p = params(2, 4, 5);
    const LayerRelevanceContext ctx(p);
    EXPECT_THROW(ctx.relevance(p, Vector(8)), std::invalid_argument);
}

TEST(Relevance, LayerLinkRelevancesShape)
{
    const nn::LstmLayerParams p = params(2, 4, 7);
    std::vector<Vector> projs(5, Vector(16, 0.5f));
    const auto rel = layerLinkRelevances(p, projs);
    ASSERT_EQ(rel.size(), 5u);
    EXPECT_EQ(rel[0], std::numeric_limits<double>::infinity());
    for (std::size_t t = 1; t < 5; ++t) {
        EXPECT_GE(rel[t], 0.0);
        EXPECT_LT(rel[t], std::numeric_limits<double>::infinity());
    }
}

TEST(Breakpoints, ThresholdSelectsWeakLinks)
{
    const std::vector<double> rel = {
        std::numeric_limits<double>::infinity(), 5.0, 1.0, 7.0, 0.5};
    EXPECT_EQ(findBreakpoints(rel, 2.0),
              (std::vector<std::size_t>{2, 4}));
    EXPECT_TRUE(findBreakpoints(rel, 0.0).empty());
    EXPECT_EQ(findBreakpoints(rel, 100.0).size(), 4u);
}

TEST(Breakpoints, FirstCellNeverBreaks)
{
    const std::vector<double> rel = {
        std::numeric_limits<double>::infinity(), 0.0};
    const auto breaks = findBreakpoints(rel, 1.0);
    ASSERT_EQ(breaks.size(), 1u);
    EXPECT_EQ(breaks[0], 1u);
}

TEST(SubLayers, LengthsPartitionTheLayer)
{
    EXPECT_EQ(subLayerLengths(10, {}), (std::vector<std::size_t>{10}));
    EXPECT_EQ(subLayerLengths(10, {3, 7}),
              (std::vector<std::size_t>{3, 4, 3}));
    EXPECT_EQ(subLayerLengths(4, {1, 2, 3}),
              (std::vector<std::size_t>{1, 1, 1, 1}));
}

TEST(SubLayers, RejectsBadBreakpoints)
{
    EXPECT_THROW(subLayerLengths(10, {0}), std::out_of_range);
    EXPECT_THROW(subLayerLengths(10, {10}), std::out_of_range);
    EXPECT_THROW(subLayerLengths(10, {5, 3}), std::invalid_argument);
}

TEST(SubLayers, EmptyLayer)
{
    EXPECT_TRUE(subLayerLengths(0, {}).empty());
}

} // namespace
