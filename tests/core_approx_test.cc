/**
 * @file
 * Tests for the functional approximations: DRS cell semantics (both
 * state policies), the link predictor, and the ApproxRunner — in
 * particular that zero thresholds reproduce the exact model bit-for-bit
 * and that the statistics it reports are consistent.
 */

#include <gtest/gtest.h>

#include "core/approx.hh"
#include "core/predictor.hh"
#include "tensor/rng.hh"

namespace {

using namespace mflstm;
using namespace mflstm::core;

nn::ModelConfig
smallConfig(std::size_t layers = 2)
{
    nn::ModelConfig cfg;
    cfg.task = nn::TaskKind::Classification;
    cfg.vocab = 16;
    cfg.embedSize = 6;
    cfg.hiddenSize = 10;
    cfg.numLayers = layers;
    cfg.numClasses = 2;
    return cfg;
}

std::vector<std::vector<std::int32_t>>
someSequences(std::size_t n, std::size_t len, std::uint64_t seed)
{
    tensor::Rng rng(seed);
    std::vector<std::vector<std::int32_t>> seqs(n);
    for (auto &s : seqs)
        for (std::size_t t = 0; t < len; ++t)
            s.push_back(static_cast<std::int32_t>(rng.integer(0, 15)));
    return seqs;
}

TEST(DrsCell, NoThresholdMatchesExactCell)
{
    nn::LstmLayerParams p(4, 6);
    tensor::Rng rng(1);
    p.init(rng);

    Vector x_proj(24);
    for (std::size_t j = 0; j < 24; ++j)
        x_proj[j] = rng.uniform(-1.0f, 1.0f);
    nn::LstmState prev(6);
    prev.h[2] = 0.4f;
    prev.c[3] = -0.7f;

    std::size_t skipped = 123;
    const auto drs = lstmCellForwardDrs(p, x_proj, prev, 0.0,
                                        nn::SigmoidKind::Logistic,
                                        &skipped);
    const auto exact = nn::lstmCellForward(p, x_proj, prev);
    EXPECT_EQ(skipped, 0u);
    for (std::size_t j = 0; j < 6; ++j) {
        EXPECT_NEAR(drs.h[j], exact.h[j], 1e-6f);
        EXPECT_NEAR(drs.c[j], exact.c[j], 1e-6f);
    }
}

TEST(DrsCell, ThresholdOneSkipsEverything)
{
    nn::LstmLayerParams p(4, 6);
    tensor::Rng rng(2);
    p.init(rng);
    Vector x_proj(24, 0.2f);
    nn::LstmState prev(6);
    prev.h[0] = 0.5f;

    std::size_t skipped = 0;
    lstmCellForwardDrs(p, x_proj, prev, 0.999999,
                       nn::SigmoidKind::Logistic, &skipped);
    EXPECT_EQ(skipped, 6u);
}

TEST(DrsCell, ZeroStatePolicyNullsSkippedElements)
{
    nn::LstmLayerParams p(4, 6);
    tensor::Rng rng(3);
    p.init(rng);
    Vector x_proj(24, 0.3f);
    nn::LstmState prev(6);
    prev.c[1] = 2.0f;

    const auto out = lstmCellForwardDrs(p, x_proj, prev, 0.999999,
                                        nn::SigmoidKind::Logistic,
                                        nullptr,
                                        DrsStatePolicy::ZeroState);
    for (std::size_t j = 0; j < 6; ++j) {
        EXPECT_FLOAT_EQ(out.c[j], 0.0f);
        EXPECT_FLOAT_EQ(out.h[j], 0.0f);
    }
}

TEST(DrsCell, DropRecurrentKeepsInputDrivenState)
{
    // Under the default policy a fully skipped cell still integrates
    // the input projection: c_t = f(Wx+b) * c_prev + i*g.
    nn::LstmLayerParams p(4, 6);
    tensor::Rng rng(4);
    p.init(rng);
    Vector x_proj(24, 0.3f);
    nn::LstmState prev(6);
    prev.c[1] = 2.0f;

    const auto out = lstmCellForwardDrs(p, x_proj, prev, 0.999999,
                                        nn::SigmoidKind::Logistic);
    EXPECT_NE(out.c[1], 0.0f);  // forget path survived
}

TEST(DrsCell, SkippedRowsLoseOnlyRecurrentTerm)
{
    // Build a cell where U is nonzero only in row 0: skipping row 0
    // must equal running the exact cell with U zeroed in that row.
    nn::LstmLayerParams p(2, 4);
    tensor::Rng rng(5);
    p.init(rng);
    // Make the output gate of row 0 near-closed so DRS selects it:
    p.bo[0] = -50.0f;

    Vector x_proj(16);
    for (std::size_t j = 0; j < 16; ++j)
        x_proj[j] = rng.uniform(-0.5f, 0.5f);
    nn::LstmState prev(4);
    prev.h[1] = 0.6f;
    prev.c[0] = 0.8f;

    std::size_t skipped = 0;
    const auto drs = lstmCellForwardDrs(p, x_proj, prev, 0.01,
                                        nn::SigmoidKind::Logistic,
                                        &skipped);
    ASSERT_EQ(skipped, 1u);

    nn::LstmLayerParams stripped = p;
    for (std::size_t c = 0; c < 4; ++c) {
        stripped.uf(0, c) = 0.0f;
        stripped.ui(0, c) = 0.0f;
        stripped.uc(0, c) = 0.0f;
    }
    const auto exact = nn::lstmCellForward(stripped, x_proj, prev);
    for (std::size_t j = 0; j < 4; ++j) {
        EXPECT_NEAR(drs.c[j], exact.c[j], 1e-6f);
        EXPECT_NEAR(drs.h[j], exact.h[j], 1e-6f);
    }
}

TEST(LinkPredictor, ExpectationTracksObservedLinks)
{
    LinkPredictor pred(3, 32);
    for (int i = 0; i < 2000; ++i) {
        Vector h{0.5f, -0.25f, 0.0f};
        Vector c{1.0f, 0.0f, -2.0f};
        pred.observeLink(h, c);
    }
    const Vector ph = pred.predictedH();
    const Vector pc = pred.predictedC();
    EXPECT_NEAR(ph[0], 0.5f, 0.05f);
    EXPECT_NEAR(ph[1], -0.25f, 0.05f);
    // c histogram spans [-4, 4] in 32 bins: expectation quantises to
    // the 0.25-wide bin centre.
    EXPECT_NEAR(pc[0], 1.0f, 0.15f);
    EXPECT_NEAR(pc[2], -2.0f, 0.15f);
    EXPECT_EQ(pred.samples(), 2000u);
}

TEST(ApproxRunner, ZeroThresholdsMatchExactModel)
{
    const nn::LstmModel model(smallConfig(), 21);
    ApproxRunner runner(model);

    const std::int32_t toks[] = {1, 5, 9, 2, 14};
    const auto approx = runner.classify(toks);
    const auto exact = model.classify(toks);
    EXPECT_EQ(approx, exact);
}

TEST(ApproxRunner, RequiresCalibrationForDivision)
{
    const nn::LstmModel model(smallConfig(), 22);
    ApproxRunner runner(model);
    EXPECT_FALSE(runner.calibrated());
    EXPECT_THROW(runner.setThresholds(1.0, 0.0), std::logic_error);
    // DRS alone needs no calibration.
    EXPECT_NO_THROW(runner.setThresholds(0.0, 0.1));

    runner.calibrate(someSequences(3, 6, 7));
    EXPECT_TRUE(runner.calibrated());
    EXPECT_NO_THROW(runner.setThresholds(1.0, 0.1));
}

TEST(ApproxRunner, RejectsOutOfRangeThresholds)
{
    const nn::LstmModel model(smallConfig(), 23);
    ApproxRunner runner(model);
    EXPECT_THROW(runner.setThresholds(-1.0, 0.0), std::invalid_argument);
    EXPECT_THROW(runner.setThresholds(0.0, 1.0), std::invalid_argument);
}

TEST(ApproxRunner, StatsCountCellsAndLinks)
{
    const nn::LstmModel model(smallConfig(2), 24);
    ApproxRunner runner(model);
    runner.calibrate(someSequences(2, 8, 9));
    runner.setThresholds(1e9, 0.0);  // break every link

    const std::int32_t toks[] = {1, 2, 3, 4, 5, 6};
    runner.classify(toks);

    for (const LayerApproxStats &st : runner.stats()) {
        EXPECT_EQ(st.sequences, 1u);
        EXPECT_EQ(st.cells, 6u);
        EXPECT_EQ(st.links, 5u);
        EXPECT_EQ(st.breaks, 5u);  // threshold above any possible S
        EXPECT_DOUBLE_EQ(st.breakRate(), 1.0);
        EXPECT_DOUBLE_EQ(st.avgSubLayers(), 6.0);
    }

    runner.resetStats();
    EXPECT_EQ(runner.stats()[0].cells, 0u);
}

TEST(ApproxRunner, SkipFractionConsistentWithThresholdOne)
{
    const nn::LstmModel model(smallConfig(1), 25);
    ApproxRunner runner(model);
    runner.setThresholds(0.0, 0.999999);
    const std::int32_t toks[] = {3, 4, 5};
    runner.classify(toks);
    EXPECT_DOUBLE_EQ(
        runner.stats()[0].skipFraction(model.config().hiddenSize), 1.0);
}

TEST(ApproxRunner, BrokenLinksUsePredictedState)
{
    // With all links broken, changing early tokens cannot affect the
    // last cell beyond its own input: check the first layer's outputs
    // at the final step only depend on the final token.
    const nn::LstmModel model(smallConfig(1), 26);
    ApproxRunner runner(model);
    runner.calibrate(someSequences(4, 6, 11));
    runner.setThresholds(1e9, 0.0);

    const std::int32_t a[] = {1, 2, 3};
    const std::int32_t b[] = {9, 9, 3};  // same final token
    EXPECT_EQ(runner.classify(a), runner.classify(b));
}

TEST(ApproxRunner, ProfileIsSortedAndPopulated)
{
    const nn::LstmModel model(smallConfig(), 27);
    ApproxRunner runner(model);
    const auto prof = runner.profile(someSequences(3, 7, 13));

    // 3 seqs x 2 layers x 6 links; o gates: 3 x 2 x 7 x 10.
    EXPECT_EQ(prof.relevances.size(), 36u);
    EXPECT_EQ(prof.outputGates.size(), 420u);
    EXPECT_TRUE(std::is_sorted(prof.relevances.begin(),
                               prof.relevances.end()));
    EXPECT_TRUE(std::is_sorted(prof.outputGates.begin(),
                               prof.outputGates.end()));
    EXPECT_LE(prof.relevanceQuantile(0.0), prof.relevanceQuantile(1.0));
    EXPECT_LE(prof.outputGateQuantile(0.1),
              prof.outputGateQuantile(0.9));
}

TEST(ApproxMetrics, MatchExactHelpersAtZeroThresholds)
{
    const nn::LstmModel model(smallConfig(), 28);
    ApproxRunner runner(model);

    std::vector<nn::Sample> data;
    tensor::Rng rng(4);
    for (int i = 0; i < 10; ++i) {
        nn::Sample s;
        for (int t = 0; t < 5; ++t)
            s.tokens.push_back(
                static_cast<std::int32_t>(rng.integer(0, 15)));
        s.label = static_cast<std::int32_t>(rng.integer(0, 1));
        data.push_back(s);
    }
    EXPECT_DOUBLE_EQ(approxClassificationAccuracy(runner, data),
                     nn::classificationAccuracy(model, data));
}

} // namespace
