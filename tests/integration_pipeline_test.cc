/**
 * @file
 * End-to-end integration regression: the full paper pipeline — train a
 * (tiny) accuracy model on a synthetic task, calibrate against the
 * simulated TX1, sweep the threshold ladder, select AO — must deliver a
 * real speedup at a small accuracy loss, with internally consistent
 * plans. This is the quickstart example in test form, scaled to run in
 * a few seconds.
 */

#include <gtest/gtest.h>

#include "core/api.hh"
#include "study/study.hh"
#include "workloads/datagen.hh"

namespace {

using namespace mflstm;

class PipelineTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        workloads::BenchmarkSpec spec =
            workloads::benchmarkByName("IMDB");
        spec.modelHidden = 32;
        spec.modelLength = 16;
        spec.vocab = 32;

        data_ = new workloads::TaskData(
            workloads::makeTask(spec, 160, 60));
        model_ = new nn::LstmModel(
            workloads::trainAccuracyModel(spec, *data_, 10));
        mf_ = new core::MemoryFriendlyLstm(
            *model_, {gpu::GpuConfig::tegraX1(), spec.timingShape()});
        mf_->calibrate(data_->calibrationSequences(24));
        baseAcc_ = workloads::exactAccuracy(*model_, *data_);
    }

    static void
    TearDownTestSuite()
    {
        delete mf_;
        delete model_;
        delete data_;
        mf_ = nullptr;
        model_ = nullptr;
        data_ = nullptr;
    }

    static workloads::TaskData *data_;
    static nn::LstmModel *model_;
    static core::MemoryFriendlyLstm *mf_;
    static double baseAcc_;
};

workloads::TaskData *PipelineTest::data_ = nullptr;
nn::LstmModel *PipelineTest::model_ = nullptr;
core::MemoryFriendlyLstm *PipelineTest::mf_ = nullptr;
double PipelineTest::baseAcc_ = 0.0;

TEST_F(PipelineTest, ModelLearnedTheTask)
{
    EXPECT_GT(baseAcc_, 0.75);  // binary task, chance = 0.5
}

TEST_F(PipelineTest, CalibrationIsSane)
{
    const auto &cal = mf_->calibration();
    EXPECT_GE(cal.mts, 2u);
    EXPECT_LE(cal.mts, 8u);
    EXPECT_GT(cal.limits.maxIntra, 0.0);
    EXPECT_LT(cal.limits.maxIntra, 1.0);
    EXPECT_FALSE(cal.profile.relevances.empty());
}

TEST_F(PipelineTest, AoDeliversSpeedupWithinLossBudget)
{
    const auto ladder = mf_->calibration().ladder();
    std::vector<core::OperatingPoint> points;
    for (std::size_t i = 0; i < ladder.size(); ++i) {
        mf_->runner().resetStats();
        mf_->runner().setThresholds(ladder[i].alphaInter,
                                    ladder[i].alphaIntra);
        core::OperatingPoint pt;
        pt.index = i;
        pt.accuracy = core::approxClassificationAccuracy(
            mf_->runner(), data_->cls.test);
        pt.speedup =
            mf_->evaluateTiming(runtime::PlanKind::Combined).speedup;
        points.push_back(pt);
    }

    const std::size_t ao = core::selectAo(points, baseAcc_, 2.0);
    // The tiny CI-sized model has a noisy accuracy curve, so AO can be
    // conservative here; it must still deliver a real improvement.
    EXPECT_GT(points[ao].speedup, 1.05);
    EXPECT_GE(points[ao].accuracy, baseAcc_ - 0.02 - 1e-9);

    // And the curve makes sense: the aggressive end is much faster.
    EXPECT_GT(points.back().speedup, 1.5);
    EXPECT_GE(points.back().speedup, points[ao].speedup - 1e-9);

    // The user study on this curve reproduces the Fig. 18 ordering.
    const study::StudyResult res = study::runUserStudy(
        points, baseAcc_, ao, core::selectBpa(points));
    EXPECT_GT(res.score(study::Scheme::Ao),
              res.score(study::Scheme::Baseline));
    EXPECT_GE(res.score(study::Scheme::Uo),
              res.score(study::Scheme::Ao) - 0.15);
}

TEST_F(PipelineTest, PlansAreInternallyConsistent)
{
    const auto ladder = mf_->calibration().ladder();
    mf_->runner().resetStats();
    mf_->runner().setThresholds(ladder.back().alphaInter,
                                ladder.back().alphaIntra);
    core::approxClassificationAccuracy(mf_->runner(), data_->cls.test);

    const core::TimingOutcome out =
        mf_->evaluateTiming(runtime::PlanKind::Combined);
    const auto &shape = mf_->config().timingShape;
    ASSERT_EQ(out.plan.inter.size(), shape.layers.size());
    ASSERT_EQ(out.plan.intra.size(), shape.layers.size());
    for (std::size_t l = 0; l < shape.layers.size(); ++l) {
        EXPECT_EQ(out.plan.inter[l].totalCells(),
                  shape.layers[l].length);
        EXPECT_GE(out.plan.intra[l].skipFraction, 0.0);
        EXPECT_LE(out.plan.intra[l].skipFraction, 1.0);
    }
    EXPECT_GT(out.report.result.kernelCount, 0u);
    EXPECT_LT(out.report.result.dramBytes,
              mf_->baseline().result.dramBytes);
}

TEST_F(PipelineTest, SchemeOrderingHolds)
{
    // At a mid-ladder rung: combined is at least as fast as each level
    // alone, and HW DRS beats SW DRS.
    const auto ladder = mf_->calibration().ladder();
    mf_->runner().resetStats();
    mf_->runner().setThresholds(ladder[6].alphaInter,
                                ladder[6].alphaIntra);
    core::approxClassificationAccuracy(mf_->runner(), data_->cls.test);

    const double comb =
        mf_->evaluateTiming(runtime::PlanKind::Combined).speedup;
    const double inter =
        mf_->evaluateTiming(runtime::PlanKind::InterCell).speedup;
    const double hw =
        mf_->evaluateTiming(runtime::PlanKind::IntraCellHw).speedup;
    const double sw =
        mf_->evaluateTiming(runtime::PlanKind::IntraCellSw).speedup;

    EXPECT_GE(comb, inter * 0.95);
    EXPECT_GE(comb, hw * 0.95);
    EXPECT_GE(hw, sw);
    EXPECT_LT(
        mf_->evaluateTiming(runtime::PlanKind::ZeroPruning).speedup,
        1.0);
}

} // namespace
