/**
 * @file
 * Tests for the LSTM cell/layer forward pass (Eq. 1-5) and the cuDNN-style
 * united-matrix decomposition of Section II-C.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "nn/lstm.hh"
#include "tensor/activations.hh"
#include "tensor/ops.hh"
#include "tensor/rng.hh"

namespace {

using namespace mflstm;
using namespace mflstm::nn;

LstmLayerParams
makeParams(std::size_t in, std::size_t hid, std::uint64_t seed)
{
    LstmLayerParams p(in, hid);
    tensor::Rng rng(seed);
    p.init(rng);
    return p;
}

TEST(LstmParams, ShapesAndForgetBias)
{
    const LstmLayerParams p = makeParams(3, 5, 1);
    EXPECT_EQ(p.inputSize(), 3u);
    EXPECT_EQ(p.hiddenSize(), 5u);
    EXPECT_EQ(p.uf.rows(), 5u);
    EXPECT_EQ(p.uf.cols(), 5u);
    for (std::size_t j = 0; j < 5; ++j) {
        EXPECT_FLOAT_EQ(p.bf[j], 1.0f);
        EXPECT_FLOAT_EQ(p.bi[j], 0.0f);
    }
}

TEST(LstmParams, UnitedMatricesConcatenateFICO)
{
    const LstmLayerParams p = makeParams(3, 4, 2);
    const tensor::Matrix u = p.unitedU();
    ASSERT_EQ(u.rows(), 16u);
    ASSERT_EQ(u.cols(), 4u);
    EXPECT_FLOAT_EQ(u(0, 0), p.uf(0, 0));
    EXPECT_FLOAT_EQ(u(4, 1), p.ui(0, 1));
    EXPECT_FLOAT_EQ(u(8, 2), p.uc(0, 2));
    EXPECT_FLOAT_EQ(u(12, 3), p.uo(0, 3));

    const tensor::Matrix w = p.unitedW();
    EXPECT_EQ(w.rows(), 16u);
    EXPECT_EQ(w.cols(), 3u);

    const tensor::Vector b = p.unitedBias();
    EXPECT_FLOAT_EQ(b[0], 1.0f);    // forget bias
    EXPECT_FLOAT_EQ(b[4], 0.0f);    // input bias
}

TEST(LstmCell, ScalarCaseMatchesHandComputation)
{
    // One-unit cell with all weights fixed so Eq. 1-5 can be evaluated by
    // hand.
    LstmLayerParams p(1, 1);
    p.wf(0, 0) = 0.5f;
    p.wi(0, 0) = 0.4f;
    p.wc(0, 0) = 0.3f;
    p.wo(0, 0) = 0.2f;
    p.uf(0, 0) = 0.1f;
    p.ui(0, 0) = -0.1f;
    p.uc(0, 0) = 0.2f;
    p.uo(0, 0) = -0.2f;
    p.bf[0] = 0.05f;
    p.bi[0] = -0.05f;
    p.bc[0] = 0.0f;
    p.bo[0] = 0.1f;

    LstmState prev(1);
    prev.h[0] = 0.3f;
    prev.c[0] = -0.4f;
    const float x = 0.7f;

    tensor::Vector x_proj(4);
    x_proj[0] = p.wf(0, 0) * x;
    x_proj[1] = p.wi(0, 0) * x;
    x_proj[2] = p.wc(0, 0) * x;
    x_proj[3] = p.wo(0, 0) * x;

    const LstmState next = lstmCellForward(p, x_proj, prev);

    const float f = tensor::sigmoid(0.5f * x + 0.1f * 0.3f + 0.05f);
    const float i = tensor::sigmoid(0.4f * x - 0.1f * 0.3f - 0.05f);
    const float g = std::tanh(0.3f * x + 0.2f * 0.3f);
    const float o = tensor::sigmoid(0.2f * x - 0.2f * 0.3f + 0.1f);
    const float c = f * -0.4f + i * g;
    const float h = o * std::tanh(c);

    EXPECT_NEAR(next.c[0], c, 1e-6f);
    EXPECT_NEAR(next.h[0], h, 1e-6f);
}

TEST(LstmCell, TraceCachesAllIntermediates)
{
    const LstmLayerParams p = makeParams(2, 3, 3);
    LstmState prev(3);
    prev.h[1] = 0.2f;

    tensor::Vector x_proj(12);
    for (std::size_t j = 0; j < 12; ++j)
        x_proj[j] = 0.1f * static_cast<float>(j);

    LstmCellTrace trace;
    const LstmState next = lstmCellForward(p, x_proj, prev,
                                           SigmoidKind::Logistic, &trace);

    EXPECT_EQ(trace.f.size(), 3u);
    EXPECT_EQ(trace.h_prev, prev.h);
    EXPECT_EQ(trace.c_prev, prev.c);
    EXPECT_EQ(trace.h, next.h);
    EXPECT_EQ(trace.c, next.c);
    // Gates are sigmoid outputs: in (0, 1).
    for (std::size_t j = 0; j < 3; ++j) {
        EXPECT_GT(trace.f[j], 0.0f);
        EXPECT_LT(trace.f[j], 1.0f);
        EXPECT_GT(trace.o[j], 0.0f);
        EXPECT_LT(trace.o[j], 1.0f);
    }
}

TEST(LstmCell, OutputBoundedByConstruction)
{
    // Section IV-A: h_t in [-1, 1] because it is o_t * tanh(c_t).
    const LstmLayerParams p = makeParams(4, 8, 4);
    tensor::Rng rng(5);

    LstmState state(8);
    for (int t = 0; t < 50; ++t) {
        tensor::Vector x_proj(32);
        for (std::size_t j = 0; j < 32; ++j)
            x_proj[j] = rng.uniform(-3.0f, 3.0f);
        state = lstmCellForward(p, x_proj, state);
        for (std::size_t j = 0; j < 8; ++j) {
            EXPECT_GE(state.h[j], -1.0f);
            EXPECT_LE(state.h[j], 1.0f);
        }
    }
}

TEST(LstmLayer, ProjectInputsMatchesUnitedGemv)
{
    const LstmLayerParams p = makeParams(3, 4, 6);
    std::vector<tensor::Vector> xs;
    tensor::Rng rng(7);
    for (int t = 0; t < 3; ++t) {
        tensor::Vector x(3);
        for (std::size_t j = 0; j < 3; ++j)
            x[j] = rng.uniform(-1.0f, 1.0f);
        xs.push_back(x);
    }

    const auto projs = projectInputs(p, xs);
    ASSERT_EQ(projs.size(), 3u);

    const tensor::Matrix w = p.unitedW();
    for (std::size_t t = 0; t < 3; ++t) {
        tensor::Vector expect;
        tensor::gemv(w, xs[t], expect);
        for (std::size_t j = 0; j < 16; ++j)
            EXPECT_NEAR(projs[t][j], expect[j], 1e-6f);
    }
}

TEST(LstmLayer, ForwardIsDeterministic)
{
    const LstmLayerParams p = makeParams(2, 4, 8);
    std::vector<tensor::Vector> xs(5, tensor::Vector(2, 0.3f));

    const auto a = lstmLayerForward(p, xs);
    const auto b = lstmLayerForward(p, xs);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t t = 0; t < a.size(); ++t)
        EXPECT_EQ(a[t], b[t]);
}

TEST(LstmLayer, TracesOnePerTimestep)
{
    const LstmLayerParams p = makeParams(2, 4, 9);
    std::vector<tensor::Vector> xs(6, tensor::Vector(2, 0.1f));

    std::vector<LstmCellTrace> traces;
    const auto outs = lstmLayerForward(p, xs, SigmoidKind::Logistic,
                                       &traces);
    ASSERT_EQ(traces.size(), 6u);
    for (std::size_t t = 0; t < 6; ++t)
        EXPECT_EQ(traces[t].h, outs[t]);
    // Context link chain: h_prev of step t+1 equals h of step t.
    for (std::size_t t = 1; t < 6; ++t)
        EXPECT_EQ(traces[t].h_prev, traces[t - 1].h);
}

TEST(LstmLayer, HardSigmoidVariantDiffersButBounded)
{
    const LstmLayerParams p = makeParams(2, 4, 10);
    std::vector<tensor::Vector> xs(4, tensor::Vector(2, 0.5f));

    const auto logistic = lstmLayerForward(p, xs, SigmoidKind::Logistic);
    const auto hard = lstmLayerForward(p, xs, SigmoidKind::Hard);

    bool any_diff = false;
    for (std::size_t t = 0; t < 4; ++t) {
        for (std::size_t j = 0; j < 4; ++j) {
            any_diff |= logistic[t][j] != hard[t][j];
            EXPECT_GE(hard[t][j], -1.0f);
            EXPECT_LE(hard[t][j], 1.0f);
        }
    }
    EXPECT_TRUE(any_diff);
}

TEST(LstmLayer, EmptySequenceYieldsEmptyOutput)
{
    const LstmLayerParams p = makeParams(2, 4, 11);
    const auto outs = lstmLayerForward(p, {});
    EXPECT_TRUE(outs.empty());
}

} // namespace
