/**
 * @file
 * Tests for the cycle-level SM model and its cross-validation against
 * the analytic roofline model of gpu/sm.hh: on the kernel shapes this
 * runtime emits, the two must agree on the bottleneck, within a modest
 * factor on cycle counts, and on the dominant stall cause.
 */

#include <gtest/gtest.h>

#include "gpu/cycle_sm.hh"

namespace {

using namespace mflstm::gpu;

/** Down-scaled Sgemv(U, h): memory-bound. */
KernelDesc
smallSgemv()
{
    const double h = 128.0;
    KernelDesc k;
    k.name = "sgemv128";
    k.klass = KernelClass::Sgemv;
    k.flops = 2.0 * 4 * h * h;
    k.dramReadBytes = 4.0 * h * h * 4.0;
    k.l2AccessBytes = k.dramReadBytes;
    k.sharedBytes = 4.0 * h * h * 4.0;
    k.ctas = 4;
    k.threadsPerCta = 128;
    k.syncsPerCta = 2;
    return k;
}

/** Compute-bound small GEMM. */
KernelDesc
smallGemm()
{
    KernelDesc k;
    k.name = "gemm";
    k.klass = KernelClass::Sgemm;
    k.flops = 4.0e6;
    k.dramReadBytes = 8.0e3;
    k.l2AccessBytes = 1.6e4;
    k.sharedBytes = 8.0e3;
    k.ctas = 8;
    k.threadsPerCta = 128;
    return k;
}

TEST(WarpProgram, ConservesWork)
{
    const GpuConfig cfg = GpuConfig::tegraX1();
    const KernelDesc k = smallSgemv();
    const WarpProgram p = WarpProgram::fromKernel(cfg, k, false);

    const std::uint32_t warps = k.totalThreads() / cfg.warpSize;
    double global = 0.0, shared = 0.0, fmas = 0.0;
    for (const WarpInstr &i : p.body) {
        switch (i.op) {
          case WarpInstr::Op::GlobalLd:
            global += i.amount;
            break;
          case WarpInstr::Op::SharedLd:
            shared += i.amount;
            break;
          case WarpInstr::Op::Fma:
            fmas += 1.0;
            break;
          default:
            break;
        }
    }
    global *= p.iterations * warps;
    shared *= p.iterations * warps;
    fmas *= p.iterations * warps;

    // Generation rounds chunks upward: work within +15% of the kernel's.
    EXPECT_GE(global, k.dramReadBytes);
    EXPECT_LE(global, k.dramReadBytes * 1.15);
    EXPECT_GE(shared, k.sharedBytes);
    EXPECT_LE(shared, k.sharedBytes * 1.15);
    EXPECT_GE(fmas * 64.0, k.flops);
}

TEST(WarpProgram, DivergenceReplaysFmas)
{
    const GpuConfig cfg = GpuConfig::tegraX1();
    KernelDesc k = smallGemm();
    k.divergenceFactor = 2.0;
    const WarpProgram divergent = WarpProgram::fromKernel(cfg, k, false);
    const WarpProgram compacted = WarpProgram::fromKernel(cfg, k, true);

    auto fma_count = [](const WarpProgram &p) {
        std::size_t n = 0;
        for (const WarpInstr &i : p.body)
            n += i.op == WarpInstr::Op::Fma;
        return n * p.iterations;
    };
    EXPECT_GT(fma_count(divergent), fma_count(compacted));
}

TEST(CycleSim, MemoryBoundAgreesWithAnalyticModel)
{
    const GpuConfig cfg = GpuConfig::tegraX1();
    const KernelDesc k = smallSgemv();

    const CycleSimResult cyc = cycleSimulate(cfg, k);
    const KernelTiming ana = timeKernel(cfg, k);

    // Cycle counts agree within 30% on this bandwidth-dominated shape.
    EXPECT_NEAR(cyc.cycles / ana.cycles, 1.0, 0.3);
    // Both attribute the stalls to off-chip memory first.
    EXPECT_GT(cyc.stalls.offChipMemory, cyc.stalls.onChipBandwidth);
    EXPECT_GT(cyc.stalls.offChipMemory, cyc.stalls.synchronization);
    EXPECT_GT(cyc.stalls.offChipMemory / cyc.stalls.total(), 0.5);
}

TEST(CycleSim, ComputeBoundAgreesWithAnalyticModel)
{
    const GpuConfig cfg = GpuConfig::tegraX1();
    const KernelDesc k = smallGemm();

    const CycleSimResult cyc = cycleSimulate(cfg, k);
    const KernelTiming ana = timeKernel(cfg, k);

    EXPECT_NEAR(cyc.cycles / ana.cycles, 1.0, 0.35);
    // Compute-bound: the schedulers stay busy.
    EXPECT_GT(cyc.issueUtilization(), 0.5);
}

TEST(CycleSim, BandwidthCeilingRespected)
{
    // The DRAM queue must not move bytes faster than the interface.
    const GpuConfig cfg = GpuConfig::tegraX1();
    const KernelDesc k = smallSgemv();
    const CycleSimResult cyc = cycleSimulate(cfg, k);
    EXPECT_LE(cyc.dramBytes / cyc.cycles,
              cfg.dramBytesPerCycle() * 1.001);
    EXPECT_GE(cyc.dramBytes, k.dramReadBytes);
}

TEST(CycleSim, CrmRemovesDivergenceCost)
{
    const GpuConfig cfg = GpuConfig::tegraX1();
    KernelDesc k = smallGemm();
    k.divergenceFactor = 2.0;
    k.hasRowSkipArg = true;
    k.disabledThreads = k.totalThreads() / 2;

    const CycleSimResult sw = cycleSimulate(cfg, k, false);
    const CycleSimResult hw = cycleSimulate(cfg, k, true);
    EXPECT_LT(hw.cycles, sw.cycles);
}

TEST(CycleSim, BarriersProduceSyncStalls)
{
    const GpuConfig cfg = GpuConfig::tegraX1();
    KernelDesc k = smallGemm();
    k.syncsPerCta = 8;
    const CycleSimResult with_bars = cycleSimulate(cfg, k);
    k.syncsPerCta = 0;
    const CycleSimResult without = cycleSimulate(cfg, k);
    EXPECT_GT(with_bars.stalls.synchronization,
              without.stalls.synchronization);
    EXPECT_GE(with_bars.cycles, without.cycles);
}

TEST(CycleSim, MoreCtasTakeLonger)
{
    const GpuConfig cfg = GpuConfig::tegraX1();
    KernelDesc k = smallGemm();
    const CycleSimResult small = cycleSimulate(cfg, k);
    k.ctas *= 4;
    k.flops *= 4.0;
    k.dramReadBytes *= 4.0;
    k.sharedBytes *= 4.0;
    const CycleSimResult big = cycleSimulate(cfg, k);
    EXPECT_GT(big.cycles, small.cycles * 2.0);
}

TEST(CycleSim, Deterministic)
{
    const GpuConfig cfg = GpuConfig::tegraX1();
    const KernelDesc k = smallSgemv();
    const CycleSimResult a = cycleSimulate(cfg, k);
    const CycleSimResult b = cycleSimulate(cfg, k);
    EXPECT_DOUBLE_EQ(a.cycles, b.cycles);
    EXPECT_DOUBLE_EQ(a.stalls.total(), b.stalls.total());
}

TEST(CycleSim, RunawayGuard)
{
    const GpuConfig cfg = GpuConfig::tegraX1();
    const KernelDesc k = smallSgemv();
    EXPECT_THROW(cycleSimulate(cfg, k, false, 10),
                 std::runtime_error);
}

} // namespace
