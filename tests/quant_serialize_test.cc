/**
 * @file
 * Corruption matrix for the quantized-model artifact (DESIGN.md §11/12):
 * bit-identical round trips through save/load, the stale-source
 * fingerprint guard, deep validation of scales and canonical codes, and
 * exhaustive single-bit-flip / truncation rejection.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "obs/observer.hh"
#include "quant/serialize.hh"

namespace {

using namespace mflstm;
using quant::QuantMode;

class QuantSerializeTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        path_ = (std::filesystem::temp_directory_path() /
                 ("mflstm_quant_serialize_test_" +
                  std::to_string(::getpid()) + ".bin"))
                    .string();
    }
    void TearDown() override { std::remove(path_.c_str()); }

    std::string path_;
};

nn::ModelConfig
tinyConfig()
{
    // Small on purpose: the exhaustive bit-flip test loads the file
    // once per bit.
    nn::ModelConfig cfg;
    cfg.task = nn::TaskKind::Classification;
    cfg.vocab = 6;
    cfg.embedSize = 3;
    cfg.hiddenSize = 5;  // odd: exercises int4 trailing nibbles
    cfg.numLayers = 2;
    cfg.numClasses = 2;
    return cfg;
}

io::ErrorKind
loadKind(const std::string &path)
{
    try {
        (void)quant::loadQuantizedModel(path);
    } catch (const io::ArtifactError &e) {
        return e.kind();
    }
    ADD_FAILURE() << "corrupt quantized model " << path << " loaded";
    return io::ErrorKind::Io;
}

TEST_F(QuantSerializeTest, RoundTripsBitIdentically)
{
    const nn::LstmModel m(tinyConfig(), 17);
    for (const QuantMode mode : {QuantMode::Int8, QuantMode::Int4}) {
        const quant::QuantizedModel original =
            quant::quantizeModel(m, mode);
        quant::saveQuantizedModel(original, path_);

        std::uint32_t kind = 0;
        ASSERT_TRUE(io::isArtifactFile(path_, &kind));
        EXPECT_EQ(kind, io::kSchemaQuantModel);

        const quant::QuantizedModel loaded =
            quant::loadQuantizedModel(path_);
        EXPECT_EQ(loaded, original);

        // And a second save of the loaded model is byte-stable.
        const std::string again = path_ + ".again";
        quant::saveQuantizedModel(loaded, again);
        std::ifstream a(path_, std::ios::binary);
        std::ifstream b(again, std::ios::binary);
        const std::string bytes_a(
            (std::istreambuf_iterator<char>(a)),
            std::istreambuf_iterator<char>());
        const std::string bytes_b(
            (std::istreambuf_iterator<char>(b)),
            std::istreambuf_iterator<char>());
        EXPECT_EQ(bytes_a, bytes_b);
        std::remove(again.c_str());
    }
}

TEST_F(QuantSerializeTest, LoadForMatchingSourceSucceeds)
{
    const nn::LstmModel m(tinyConfig(), 17);
    quant::saveQuantizedModel(quant::quantizeModel(m, QuantMode::Int8),
                              path_);
    EXPECT_NO_THROW((void)quant::loadQuantizedModelFor(m, path_));
    EXPECT_NO_THROW(quant::verifyQuantizedModelFile(path_));
}

TEST_F(QuantSerializeTest, StaleSourceRejectedAndCounted)
{
    const nn::LstmModel m(tinyConfig(), 17);
    quant::saveQuantizedModel(quant::quantizeModel(m, QuantMode::Int8),
                              path_);

    nn::LstmModel retrained = m;
    retrained.layers()[0].uc.data()[0] += 1.0f;

    obs::Observer obs;
    try {
        (void)quant::loadQuantizedModelFor(retrained, path_, {}, &obs);
        FAIL() << "stale quantized artifact accepted";
    } catch (const io::ArtifactError &e) {
        EXPECT_EQ(e.kind(), io::ErrorKind::Stale);
    }
    EXPECT_EQ(obs.metrics()
                  .counter("artifact_load_rejected_total")
                  .value(),
              1.0);
}

TEST_F(QuantSerializeTest, MissingFileRejected)
{
    EXPECT_THROW((void)quant::loadQuantizedModel(path_),
                 io::ArtifactError);
    EXPECT_THROW(
        quant::saveQuantizedModel(
            quant::quantizeModel(nn::LstmModel(tinyConfig(), 1),
                                 QuantMode::Int8),
            "/nonexistent/dir/q.bin"),
        std::runtime_error);
}

TEST_F(QuantSerializeTest, NonCanonicalInt8CodeRejected)
{
    // -128 is outside the symmetric range: quantize() never emits it,
    // so a payload containing it cannot have come from this writer.
    const nn::LstmModel m(tinyConfig(), 17);
    quant::QuantizedModel q = quant::quantizeModel(m, QuantMode::Int8);
    auto parts_scales = std::vector<float>(q.layers[0].uf.scales());
    auto parts_payload =
        std::vector<std::int8_t>(q.layers[0].uf.payload());
    parts_payload[2] = std::numeric_limits<std::int8_t>::min();
    q.layers[0].uf = tensor::QuantizedMatrix::fromParts(
        q.layers[0].uf.rows(), q.layers[0].uf.cols(), QuantMode::Int8,
        std::move(parts_scales), std::move(parts_payload));
    quant::saveQuantizedModel(q, path_);
    EXPECT_EQ(loadKind(path_), io::ErrorKind::Malformed);
}

TEST_F(QuantSerializeTest, NonFiniteScaleRejected)
{
    const nn::LstmModel m(tinyConfig(), 17);
    quant::QuantizedModel q = quant::quantizeModel(m, QuantMode::Int8);
    auto scales = std::vector<float>(q.layers[1].wo.scales());
    scales[0] = std::numeric_limits<float>::quiet_NaN();
    q.layers[1].wo = tensor::QuantizedMatrix::fromParts(
        q.layers[1].wo.rows(), q.layers[1].wo.cols(), QuantMode::Int8,
        std::move(scales),
        std::vector<std::int8_t>(q.layers[1].wo.payload()));
    quant::saveQuantizedModel(q, path_);
    EXPECT_EQ(loadKind(path_), io::ErrorKind::NonFinite);
}

TEST_F(QuantSerializeTest, ZeroScaleRejected)
{
    const nn::LstmModel m(tinyConfig(), 17);
    quant::QuantizedModel q = quant::quantizeModel(m, QuantMode::Int8);
    auto scales = std::vector<float>(q.layers[0].ui.scales());
    scales[1] = 0.0f;
    q.layers[0].ui = tensor::QuantizedMatrix::fromParts(
        q.layers[0].ui.rows(), q.layers[0].ui.cols(), QuantMode::Int8,
        std::move(scales),
        std::vector<std::int8_t>(q.layers[0].ui.payload()));
    quant::saveQuantizedModel(q, path_);
    EXPECT_EQ(loadKind(path_), io::ErrorKind::Malformed);
}

TEST_F(QuantSerializeTest, TruncationAtEveryPlausibleLengthRejected)
{
    const nn::LstmModel m(tinyConfig(), 17);
    quant::saveQuantizedModel(quant::quantizeModel(m, QuantMode::Int4),
                              path_);
    const std::uintmax_t full = std::filesystem::file_size(path_);
    for (std::uintmax_t len = 0; len < full; len += 7) {
        quant::saveQuantizedModel(
            quant::quantizeModel(m, QuantMode::Int4), path_);
        std::filesystem::resize_file(path_, len);
        EXPECT_THROW((void)quant::loadQuantizedModel(path_),
                     io::ArtifactError)
            << "truncation to " << len << " bytes parsed";
    }
}

TEST_F(QuantSerializeTest, EverySingleBitFlipRejected)
{
    // The container CRCs cover every byte (header and chunks alike), so
    // no single-bit flip of a quantized artifact may load.
    const nn::LstmModel m(tinyConfig(), 17);
    quant::saveQuantizedModel(quant::quantizeModel(m, QuantMode::Int8),
                              path_);
    std::vector<char> full;
    {
        std::ifstream is(path_, std::ios::binary);
        full.assign((std::istreambuf_iterator<char>(is)),
                    std::istreambuf_iterator<char>());
    }
    ASSERT_FALSE(full.empty());
    for (std::size_t byte = 0; byte < full.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            std::vector<char> mutated = full;
            mutated[byte] =
                static_cast<char>(mutated[byte] ^ (1u << bit));
            {
                std::ofstream os(path_,
                                 std::ios::binary | std::ios::trunc);
                os.write(mutated.data(),
                         static_cast<std::streamsize>(mutated.size()));
            }
            EXPECT_THROW((void)quant::loadQuantizedModel(path_),
                         io::ArtifactError)
                << "bit " << bit << " of byte " << byte
                << " flipped undetected";
        }
    }
}

} // namespace
