/**
 * @file
 * Integration tests for the injected observer: running the executor
 * with a sink populates the kernel timeline and the metrics registry
 * (DRS/CRM/cache/stall instruments), and running without one is
 * bit-identical to the uninstrumented seed behaviour.
 */

#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.hh"
#include "obs/observer.hh"
#include "runtime/executor.hh"

namespace {

using namespace mflstm;
using namespace mflstm::runtime;
using mflstm::obs::JsonValue;
using mflstm::obs::Observer;
using mflstm::obs::SpanTracer;

ExecutionPlan
drsPlan()
{
    ExecutionPlan plan;
    plan.kind = PlanKind::IntraCellHw;
    plan.intra = {{0.5}};
    return plan;
}

const NetworkShape kShape = NetworkShape::stacked(256, 256, 1, 8);

TEST(Observer, NullObserverLeavesResultsIdentical)
{
    NetworkExecutor plain(gpu::GpuConfig::tegraX1());
    Observer obs;
    NetworkExecutor instrumented(gpu::GpuConfig::tegraX1(), &obs);

    const ExecutionPlan plan = drsPlan();
    const RunReport a = plain.run(kShape, plan);
    const RunReport b = instrumented.run(kShape, plan);

    EXPECT_EQ(a.result.timeUs, b.result.timeUs);
    EXPECT_EQ(a.result.cycles, b.result.cycles);
    EXPECT_EQ(a.result.dramBytes, b.result.dramBytes);
    EXPECT_EQ(a.result.energy.totalJ(), b.result.energy.totalJ());
    EXPECT_EQ(a.result.kernelCount, b.result.kernelCount);
}

TEST(Observer, RunRecordsAcceptanceMetrics)
{
    Observer obs;
    NetworkExecutor ex(gpu::GpuConfig::tegraX1(), &obs);
    const RunReport r = ex.run(kShape, drsPlan());
    ASSERT_GT(r.result.kernelCount, 0u);

    const auto &m = obs.metrics();
    // DRS skip counts.
    ASSERT_NE(m.findCounter("drs.rows_skipped"), nullptr);
    EXPECT_GT(m.findCounter("drs.rows_skipped")->value(), 0.0);
    ASSERT_NE(m.findCounter("drs.kernels_with_skip"), nullptr);
    // CRM compaction ratio (HW plan routes through the CRM).
    ASSERT_NE(m.findGauge("crm.compaction_ratio"), nullptr);
    const double ratio = m.findGauge("crm.compaction_ratio")->value();
    EXPECT_GT(ratio, 0.0);
    EXPECT_LE(ratio, 1.0);
    ASSERT_NE(m.findCounter("crm.passes"), nullptr);
    EXPECT_GT(m.findCounter("crm.passes")->value(), 0.0);
    // Cache hit rate.
    ASSERT_NE(m.findGauge("cache.l2_hit_rate"), nullptr);
    // Per-class stall-cycle histograms exist for the classes that ran.
    ASSERT_NE(m.findHistogram("sim.stall_cycles_hist.Sgemv"), nullptr);
    EXPECT_GT(m.findHistogram("sim.stall_cycles_hist.Sgemv")->count(),
              0u);
    // Kernel counters agree with the report.
    ASSERT_NE(m.findCounter("sim.kernels"), nullptr);
    EXPECT_DOUBLE_EQ(m.findCounter("sim.kernels")->value(),
                     static_cast<double>(r.result.kernelCount));
    ASSERT_NE(m.findCounter("gmu.kernels_through_crm"), nullptr);
    EXPECT_DOUBLE_EQ(m.findCounter("gmu.kernels_through_crm")->value(),
                     static_cast<double>(r.result.kernelsThroughCrm));
}

TEST(Observer, TraceHasPerSmTracksAndMonotonicTimestamps)
{
    Observer obs;
    NetworkExecutor ex(gpu::GpuConfig::tegraX1(), &obs);
    ex.run(kShape, drsPlan());

    std::ostringstream os;
    obs.tracer().writeChromeTrace(os);
    const auto doc = obs::parseJson(os.str());
    ASSERT_TRUE(doc.has_value());
    const JsonValue *events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);

    bool saw_sm0 = false;
    bool saw_runs = false;
    std::map<std::pair<double, double>, double> lastEnd;
    std::size_t gpu_spans = 0;
    for (const JsonValue &ev : events->items) {
        const std::string &ph = ev.find("ph")->str;
        if (ph == "M") {
            const JsonValue *name = ev.find("args")->find("name");
            if (name->str == "SM 0")
                saw_sm0 = true;
            if (name->str == "runs")
                saw_runs = true;
            continue;
        }
        if (ph != "X" ||
            ev.find("pid")->number != SpanTracer::kGpuPid)
            continue;
        ++gpu_spans;
        const auto track = std::make_pair(ev.find("pid")->number,
                                          ev.find("tid")->number);
        const double ts = ev.find("ts")->number;
        const auto it = lastEnd.find(track);
        if (it != lastEnd.end()) {
            EXPECT_GE(ts, it->second) << "overlap on tid "
                                      << track.second;
        }
        lastEnd[track] =
            std::max(it == lastEnd.end() ? ts : it->second,
                     ts + ev.find("dur")->number);
    }
    EXPECT_TRUE(saw_sm0);
    EXPECT_TRUE(saw_runs);
    EXPECT_GT(gpu_spans, 0u);
}

TEST(Observer, KernelSpansCarryProvenanceArgs)
{
    Observer obs;
    NetworkExecutor ex(gpu::GpuConfig::tegraX1(), &obs);
    ex.run(kShape, drsPlan());

    bool saw_timestep = false;
    for (const obs::TraceSpan &s : obs.tracer().spans()) {
        // Kernel spans carry the kernel class as their category.
        if (s.pid != SpanTracer::kGpuPid || s.category == "run")
            continue;
        for (const auto &[k, v] : s.numArgs) {
            if (k == "timestep" && v >= 0.0)
                saw_timestep = true;
        }
    }
    EXPECT_TRUE(saw_timestep);
}

TEST(Observer, SuccessiveRunsDoNotOverlapOnTheTimeline)
{
    Observer obs;
    NetworkExecutor ex(gpu::GpuConfig::tegraX1(), &obs);
    ex.run(kShape, ExecutionPlan{});
    const double cursor_after_first = obs.tracer().simCursorUs();
    ex.run(kShape, drsPlan());
    EXPECT_GT(obs.tracer().simCursorUs(), cursor_after_first);

    // The executor records one enclosing run span per run.
    std::size_t run_spans = 0;
    double prev_end = -1.0;
    for (const obs::TraceSpan &s : obs.tracer().spans()) {
        if (s.category != "run")
            continue;
        ++run_spans;
        EXPECT_GE(s.startUs, prev_end);
        prev_end = s.startUs + s.durUs;
    }
    EXPECT_EQ(run_spans, 2u);
}

TEST(Observer, ExecutorPhasesAppearOnTheHostTrack)
{
    Observer obs;
    NetworkExecutor ex(gpu::GpuConfig::tegraX1(), &obs);
    ex.run(kShape, ExecutionPlan{});

    bool saw_lower = false;
    bool saw_simulate = false;
    for (const obs::TraceSpan &s : obs.tracer().spans()) {
        if (s.pid != SpanTracer::kHostPid)
            continue;
        if (s.name.rfind("lower:", 0) == 0)
            saw_lower = true;
        if (s.name.rfind("simulate:", 0) == 0)
            saw_simulate = true;
    }
    EXPECT_TRUE(saw_lower);
    EXPECT_TRUE(saw_simulate);
}

} // namespace
