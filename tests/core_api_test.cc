/**
 * @file
 * Integration tests for the MemoryFriendlyLstm facade on a small model:
 * calibration, threshold evaluation, and the end-to-end consistency
 * between the accuracy-side statistics and the timing-side plans.
 */

#include <gtest/gtest.h>

#include "core/api.hh"
#include "tensor/rng.hh"

namespace {

using namespace mflstm;
using namespace mflstm::core;

nn::ModelConfig
modelConfig()
{
    nn::ModelConfig cfg;
    cfg.task = nn::TaskKind::Classification;
    cfg.vocab = 20;
    cfg.embedSize = 8;
    cfg.hiddenSize = 12;
    cfg.numLayers = 2;
    cfg.numClasses = 2;
    return cfg;
}

std::vector<std::vector<std::int32_t>>
seqs(std::size_t n, std::size_t len, std::uint64_t seed)
{
    tensor::Rng rng(seed);
    std::vector<std::vector<std::int32_t>> out(n);
    for (auto &s : out)
        for (std::size_t t = 0; t < len; ++t)
            s.push_back(static_cast<std::int32_t>(rng.integer(0, 19)));
    return out;
}

class ApiTest : public ::testing::Test
{
  protected:
    ApiTest()
        : model(modelConfig(), 77),
          mf(model, {gpu::GpuConfig::tegraX1(),
                     runtime::NetworkShape::stacked(512, 512, 2, 40)})
    {}

    nn::LstmModel model;
    MemoryFriendlyLstm mf;
};

TEST_F(ApiTest, ConstructionRunsBaseline)
{
    EXPECT_GT(mf.baseline().result.timeUs, 0.0);
    EXPECT_EQ(mf.baseline().kind, runtime::PlanKind::Baseline);
    // Section III: Sgemv dominates the baseline.
    EXPECT_GT(mf.baseline().result.classShare(gpu::KernelClass::Sgemv),
              0.9);
}

TEST_F(ApiTest, LayerCountMismatchRejected)
{
    EXPECT_THROW(
        MemoryFriendlyLstm(model,
                           {gpu::GpuConfig::tegraX1(),
                            runtime::NetworkShape::stacked(64, 64, 3,
                                                           10)}),
        std::invalid_argument);
}

TEST_F(ApiTest, CalibrationRequiredBeforeUse)
{
    EXPECT_FALSE(mf.calibrated());
    EXPECT_THROW(mf.calibration(), std::logic_error);
    EXPECT_THROW(mf.evaluateTiming(runtime::PlanKind::InterCell),
                 std::logic_error);

    mf.calibrate(seqs(4, 8, 5));
    EXPECT_TRUE(mf.calibrated());
    EXPECT_GE(mf.calibration().mts, 1u);
    EXPECT_FALSE(mf.calibration().profile.relevances.empty());
}

TEST_F(ApiTest, BaselineEvaluationIsIdentity)
{
    const TimingOutcome out =
        mf.evaluateTiming(runtime::PlanKind::Baseline);
    EXPECT_DOUBLE_EQ(out.speedup, 1.0);
    EXPECT_DOUBLE_EQ(out.energySavingPct, 0.0);
}

TEST_F(ApiTest, ZeroPruningNeedsNoCalibration)
{
    const TimingOutcome out =
        mf.evaluateTiming(runtime::PlanKind::ZeroPruning, 0.37);
    EXPECT_LT(out.speedup, 1.0);  // Fig. 16: pruning degrades GPU perf
    EXPECT_DOUBLE_EQ(out.plan.pruneFraction, 0.37);
}

TEST_F(ApiTest, IntraCellTimingImprovesWithSkips)
{
    mf.calibrate(seqs(4, 8, 5));
    mf.runner().setThresholds(0.0, 0.4);
    // Drive a few sequences through so stats carry a skip fraction.
    for (const auto &s : seqs(5, 10, 6))
        mf.runner().classify(s);

    const double skip =
        mf.runner().stats()[0].skipFraction(modelConfig().hiddenSize);
    const TimingOutcome hw =
        mf.evaluateTiming(runtime::PlanKind::IntraCellHw);
    const TimingOutcome sw =
        mf.evaluateTiming(runtime::PlanKind::IntraCellSw);

    if (skip > 0.1) {
        EXPECT_GT(hw.speedup, 1.1);
        // Software row-skip barely helps (Fig. 16).
        EXPECT_LT(sw.speedup, hw.speedup);
        EXPECT_GT(sw.speedup, 0.9);
    }
    EXPECT_EQ(hw.plan.kind, runtime::PlanKind::IntraCellHw);
    ASSERT_EQ(hw.plan.intra.size(), 2u);
    EXPECT_NEAR(hw.plan.intra[0].skipFraction, skip, 1e-9);
}

TEST_F(ApiTest, InterCellTimingUsesAlignedTissues)
{
    mf.calibrate(seqs(4, 8, 5));
    mf.runner().resetStats();
    mf.runner().setThresholds(1e9, 0.0);  // break everything
    for (const auto &s : seqs(3, 10, 7))
        mf.runner().classify(s);

    const TimingOutcome out =
        mf.evaluateTiming(runtime::PlanKind::InterCell);
    ASSERT_EQ(out.plan.inter.size(), 2u);
    for (const auto &ip : out.plan.inter) {
        EXPECT_EQ(ip.totalCells(), 40u);
        EXPECT_LE(ip.maxTissue(), mf.calibration().mts);
        EXPECT_EQ(ip.maxTissue(), mf.calibration().mts);
    }
    // Full division at H=512, n=40: big win.
    EXPECT_GT(out.speedup, 2.0);
    EXPECT_GT(out.energySavingPct, 10.0);
}

TEST_F(ApiTest, CombinedAtZeroThresholdsIsNearBaseline)
{
    mf.calibrate(seqs(4, 8, 5));
    mf.runner().resetStats();
    mf.runner().setThresholds(0.0, 0.0);
    for (const auto &s : seqs(3, 10, 8))
        mf.runner().classify(s);

    const TimingOutcome out =
        mf.evaluateTiming(runtime::PlanKind::Combined);
    // No divisions, no skips: the plan degenerates to per-cell flow and
    // only pays small bookkeeping overheads.
    EXPECT_NEAR(out.speedup, 1.0, 0.05);
}

TEST_F(ApiTest, LadderEndsAtBaselineAndLimits)
{
    const auto &cal = mf.calibrate(seqs(6, 10, 9));
    const auto ladder = cal.ladder();
    ASSERT_EQ(ladder.size(), 11u);
    EXPECT_DOUBLE_EQ(ladder[0].alphaInter, 0.0);
    EXPECT_NEAR(ladder.back().alphaIntra, cal.limits.maxIntra, 1e-6);
}

TEST_F(ApiTest, SetThresholdsForwardsQuantModeToRunner)
{
    mf.calibrate(seqs(4, 8, 5));
    EXPECT_EQ(mf.runner().quantMode(), quant::QuantMode::Fp32);
    mf.setThresholds({0.0, 0.0, quant::QuantMode::Int8});
    EXPECT_EQ(mf.runner().quantMode(), quant::QuantMode::Int8);
    mf.setThresholds({0.0, 0.0, quant::QuantMode::Fp32});
    EXPECT_EQ(mf.runner().quantMode(), quant::QuantMode::Fp32);
}

TEST_F(ApiTest, QuantModeChangesClassifierOutputsReversibly)
{
    mf.calibrate(seqs(4, 8, 5));
    const auto input = seqs(1, 10, 42)[0];
    const tensor::Vector fp32 = mf.runner().classify(input);

    mf.setThresholds({0.0, 0.0, quant::QuantMode::Int8});
    const tensor::Vector q8 = mf.runner().classify(input);
    EXPECT_NE(fp32, q8);  // quantization perturbs the logits...
    for (std::size_t i = 0; i < q8.size(); ++i)
        EXPECT_NEAR(q8[i], fp32[i], 0.5);  // ...but only slightly

    // Dropping back to fp32 restores the original model exactly.
    mf.setThresholds({0.0, 0.0, quant::QuantMode::Fp32});
    EXPECT_EQ(mf.runner().classify(input), fp32);
}

TEST_F(ApiTest, QuantizedBaselineTimingIsNotShortCircuited)
{
    mf.calibrate(seqs(4, 8, 5));

    // fp32 Baseline is the identity by definition...
    const TimingOutcome fp32 =
        mf.evaluateTiming(runtime::PlanKind::Baseline);
    EXPECT_DOUBLE_EQ(fp32.speedup, 1.0);
    EXPECT_EQ(fp32.plan.quantMode, quant::QuantMode::Fp32);

    // ...but a quantized Baseline must actually run the executor: its
    // lighter weight stream beats the fp32 reference (the Fig. 16
    // "INT8 alone" mechanism).
    mf.setThresholds({0.0, 0.0, quant::QuantMode::Int8});
    const TimingOutcome q8 =
        mf.evaluateTiming(runtime::PlanKind::Baseline);
    EXPECT_EQ(q8.plan.quantMode, quant::QuantMode::Int8);
    EXPECT_GT(q8.speedup, 1.0);
    EXPECT_LT(q8.report.result.weightDramBytes,
              mf.baseline().result.weightDramBytes / 3.0);
}

TEST_F(ApiTest, QuantModeReachesBuiltCombinedPlan)
{
    // The quant mode must survive planFromStats for *built* plans, not
    // just the Baseline/ZeroPruning early returns: the composed plan
    // streams >3x fewer weight bytes and saves more energy than its
    // fp32 twin. (Speedup is NOT asserted pointwise here — the int8
    // run re-derives its stats from the fake-quantized model, so the
    // plans may differ; the beats-both gate lives in Fig. 16 at AO.)
    mf.calibrate(seqs(4, 8, 5));
    // A huge alphaInter breaks every link (aligned tissues of size MTS)
    // so the combined plan actually exercises the tissue flow.
    mf.setThresholds({1e9, 0.4, quant::QuantMode::Fp32});
    for (const auto &s : seqs(5, 10, 6))
        mf.runner().classify(s);
    const TimingOutcome comb =
        mf.evaluateTiming(runtime::PlanKind::Combined);
    EXPECT_GT(comb.speedup, 1.5);

    mf.setThresholds({1e9, 0.4, quant::QuantMode::Int8});
    for (const auto &s : seqs(5, 10, 6))
        mf.runner().classify(s);
    const TimingOutcome comb_q8 =
        mf.evaluateTiming(runtime::PlanKind::Combined);

    EXPECT_EQ(comb_q8.plan.quantMode, quant::QuantMode::Int8);
    EXPECT_GT(comb_q8.speedup, 1.5);
    EXPECT_LT(comb_q8.report.result.weightDramBytes,
              comb.report.result.weightDramBytes / 3.0);
    EXPECT_GT(comb_q8.energySavingPct, comb.energySavingPct);
}

TEST_F(ApiTest, ZeroPruningPlanStaysFp32EvenWhenQuantRequested)
{
    mf.setThresholds({0.0, 0.0, quant::QuantMode::Int8});
    const TimingOutcome zp =
        mf.evaluateTiming(runtime::PlanKind::ZeroPruning, 0.37);
    // The plan carries the mode, but the lowering defines the CSR
    // comparator at fp32 — same traffic as an unstamped pruning plan.
    mf.setThresholds({});
    const TimingOutcome zp_fp32 =
        mf.evaluateTiming(runtime::PlanKind::ZeroPruning, 0.37);
    EXPECT_DOUBLE_EQ(zp.report.result.weightDramBytes,
                     zp_fp32.report.result.weightDramBytes);
}

} // namespace
