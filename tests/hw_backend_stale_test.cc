/**
 * @file
 * Backend identity in persisted artifacts (DESIGN.md §17): a tuned
 * plan or engine warm state recorded under one hw backend must be
 * rejected as Stale under another — even when the GpuConfigs happen to
 * agree — while pre-backend files ("" id) stay loadable as wildcards.
 * Also locks in the governor's precision-switch instrumentation: a
 * mixed-quant ladder walk pays a visible twin rebuild, surfaced as
 * serve.precision_switch_total + serve.twin_rebuild_ms.
 */

#include <cstdio>
#include <filesystem>
#include <future>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "hw/backend.hh"
#include "runtime/executor.hh"
#include "sched/persist.hh"
#include "serve/engine.hh"
#include "serve/persist.hh"
#include "tensor/rng.hh"

namespace {

using namespace mflstm;

std::string
tmpPath(const char *tag)
{
    return (std::filesystem::temp_directory_path() /
            (std::string("mflstm_backend_stale_") + tag + "_" +
             std::to_string(::getpid()) + ".bin"))
        .string();
}

// --- Tuned-plan artifacts -------------------------------------------

sched::TuneRequest
smallRequest(const std::string &backendId)
{
    sched::TuneRequest req;
    req.shape = runtime::NetworkShape::stacked(64, 128, 2, 20);
    req.backendId = backendId;
    req.mts = 4;
    req.modelHidden = 128;
    core::LayerApproxStats s;
    s.sequences = 10;
    s.links = 190;
    s.breaks = 60;
    s.cells = 200;
    s.skippedRows = 0.4 * 200 * 128;
    req.stats = {s, s};
    return req;
}

TEST(TunedPlanBackend, WrongBackendRejectedAsStale)
{
    const std::string path = tmpPath("tuned");
    const gpu::GpuConfig cfg = hw::registry().get("tx1").config;
    const runtime::NetworkExecutor exec(cfg);

    const sched::TuneRequest req = smallRequest("tx1");
    const sched::TuneResult res = sched::tune(exec, req);
    sched::saveTunedPlan(
        sched::makeTunedPlanArtifact(req, 0x1234, cfg, res), path);

    // Same GpuConfig bytes, different recorded backend: still Stale —
    // the identity is part of the fingerprint, not derived from the
    // config compare.
    try {
        sched::loadTunedPlan(path, cfg, smallRequest("dp4a"), 0x1234);
        FAIL() << "tuned plan for tx1 accepted under dp4a";
    } catch (const io::ArtifactError &e) {
        EXPECT_EQ(e.kind(), io::ErrorKind::Stale);
    }

    // The recorded backend still loads.
    EXPECT_NO_THROW(
        sched::loadTunedPlan(path, cfg, smallRequest("tx1"), 0x1234));
    std::remove(path.c_str());
}

TEST(TunedPlanBackend, PreBackendArtifactLoadsAsWildcard)
{
    // A file written with no backend id (the pre-v3 world) must keep
    // loading under any requested backend; the GpuConfig byte compare
    // remains its staleness guard.
    const std::string path = tmpPath("tuned_wild");
    const gpu::GpuConfig cfg = hw::registry().get("tx1").config;
    const runtime::NetworkExecutor exec(cfg);

    const sched::TuneRequest req = smallRequest("");
    const sched::TuneResult res = sched::tune(exec, req);
    sched::saveTunedPlan(
        sched::makeTunedPlanArtifact(req, 0x1234, cfg, res), path);

    EXPECT_NO_THROW(
        sched::loadTunedPlan(path, cfg, smallRequest("tx1"), 0x1234));
    std::remove(path.c_str());
}

// --- Engine warm state ----------------------------------------------

nn::ModelConfig
clsConfig()
{
    nn::ModelConfig cfg;
    cfg.task = nn::TaskKind::Classification;
    cfg.vocab = 20;
    cfg.embedSize = 8;
    cfg.hiddenSize = 12;
    cfg.numLayers = 2;
    cfg.numClasses = 2;
    return cfg;
}

std::vector<std::vector<std::int32_t>>
seqs(std::size_t n, std::size_t len, std::uint64_t seed)
{
    tensor::Rng rng(seed);
    std::vector<std::vector<std::int32_t>> out(n);
    for (auto &s : out)
        for (std::size_t t = 0; t < len; ++t)
            s.push_back(static_cast<std::int32_t>(rng.integer(0, 19)));
    return out;
}

class BackendWarmStateTest : public ::testing::Test
{
  protected:
    BackendWarmStateTest()
        : model(clsConfig(), 77),
          mf(model, {hw::registry().get("tx1").config,
                     runtime::NetworkShape::stacked(512, 512, 2, 40)})
    {
        mf.calibrate(seqs(4, 8, 5));
        const auto ladder = mf.calibration().ladder();
        mf.setThresholds(ladder[ladder.size() / 2]);
        path_ = tmpPath("engine");
        std::remove(path_.c_str());
    }
    ~BackendWarmStateTest() override { std::remove(path_.c_str()); }

    serve::InferenceEngine::Options engineOptions(
        const std::string &backendId) const
    {
        serve::InferenceEngine::Options o;
        o.maxBatch = 8;
        o.workers = 2;
        o.plan = runtime::PlanKind::Combined;
        o.backendId = backendId;
        return o;
    }

    nn::LstmModel model;
    core::MemoryFriendlyLstm mf;
    std::string path_;
};

TEST_F(BackendWarmStateTest, WrongBackendWarmStateRejectedAsStale)
{
    {
        serve::InferenceEngine engine(mf, engineOptions("tx1"));
        serve::saveEngineState(engine, path_);
    }
    const serve::EngineWarmState warm = serve::loadEngineState(path_);
    EXPECT_EQ(warm.backendId, "tx1");

    try {
        serve::InferenceEngine engine(mf, engineOptions("dp4a"), warm);
        FAIL() << "warm state for tx1 accepted under dp4a";
    } catch (const io::ArtifactError &e) {
        EXPECT_EQ(e.kind(), io::ErrorKind::Stale);
    }

    // The recorded backend adopts it.
    serve::InferenceEngine restarted(mf, engineOptions("tx1"), warm);
    EXPECT_EQ(restarted.exportWarmState().backendId, "tx1");
}

TEST_F(BackendWarmStateTest, PreBackendWarmStateLoadsAsWildcard)
{
    {
        serve::InferenceEngine engine(mf, engineOptions(""));
        serve::saveEngineState(engine, path_);
    }
    const serve::EngineWarmState warm = serve::loadEngineState(path_);
    EXPECT_EQ(warm.backendId, "");
    EXPECT_NO_THROW(
        serve::InferenceEngine(mf, engineOptions("epur"), warm));
}

// --- Governor precision-switch accounting ---------------------------

TEST(TwinRebuild, MixedQuantLadderWalkIsCountedAndTimed)
{
    nn::LstmModel model(clsConfig(), 77);
    core::MemoryFriendlyLstm mf(
        model, {hw::registry().get("tx1").config,
                runtime::NetworkShape::stacked(512, 512, 2, 40)});
    mf.calibrate(seqs(4, 8, 5));
    auto ladder = mf.calibration().ladder();
    ASSERT_GE(ladder.size(), 2u);
    // Degrading one rung flips precision: every governor step across
    // this edge must rebuild the runner's quant twin.
    for (std::size_t r = ladder.size() / 2; r < ladder.size(); ++r)
        ladder[r].quant = quant::QuantMode::Int8;
    mf.setThresholds(ladder.front());
    for (const auto &s : seqs(4, 8, 11))
        mf.runner().classify(s);

    serve::InferenceEngine::Options opts;
    opts.maxBatch = 2;
    opts.workers = 1;
    opts.governorLadder = ladder;
    opts.planningSequences = seqs(2, 8, 5);
    // A hair-trigger governor: any queue at all steps the ladder, so
    // the single worker is guaranteed to cross the precision edge
    // while the backlog drains.
    opts.governor.highQueuePerWorker = 0.5;
    opts.governor.lowQueuePerWorker = 0.1;
    opts.governor.dwellTicks = 1;
    serve::InferenceEngine engine(mf, opts);

    const auto inputs = seqs(60, 10, 61);
    serve::Session session = engine.session();
    std::vector<std::future<serve::Response>> futures;
    for (const auto &s : inputs)
        futures.push_back(session.infer(s));
    for (auto &f : futures)
        f.get();
    engine.shutdown();

    const obs::Counter *switches =
        engine.observer().metrics().findCounter(
            "serve.precision_switch_total");
    const obs::Histogram *rebuilds =
        engine.observer().metrics().findHistogram(
            "serve.twin_rebuild_ms");
    ASSERT_NE(switches, nullptr);
    ASSERT_NE(rebuilds, nullptr);
    // The ladder walked across the int8 edge at least once, and every
    // counted switch has a matching timed rebuild.
    EXPECT_GE(switches->value(), 1.0);
    EXPECT_EQ(static_cast<double>(rebuilds->count()),
              switches->value());
}

TEST(TwinRebuild, MetricsPreRegisteredAtZero)
{
    // The surface exists even before any switch (dashboards join on
    // the series, so absence must mean "engine without governor", not
    // "no switch yet").
    nn::LstmModel model(clsConfig(), 77);
    core::MemoryFriendlyLstm mf(
        model, {hw::registry().get("tx1").config,
                runtime::NetworkShape::stacked(512, 512, 2, 40)});
    mf.calibrate(seqs(4, 8, 5));
    const auto ladder = mf.calibration().ladder();
    mf.setThresholds(ladder[ladder.size() / 2]);

    serve::InferenceEngine::Options opts;
    opts.maxBatch = 4;
    opts.workers = 1;
    opts.plan = runtime::PlanKind::Combined;
    serve::InferenceEngine engine(mf, opts);
    engine.shutdown();

    const obs::Histogram *rebuilds =
        engine.observer().metrics().findHistogram(
            "serve.twin_rebuild_ms");
    ASSERT_NE(rebuilds, nullptr);
    EXPECT_EQ(rebuilds->count(), 0u);
}

} // namespace
