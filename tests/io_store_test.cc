/**
 * @file
 * Shared artifact store tests (DESIGN.md §16). The contract: the
 * per-artifact write lock is exclusive (O_CREAT|O_EXCL sidecar —
 * second acquisition throws ArtifactError(Io)), released exactly when
 * the RAII WriteLock dies, and a stale lock left by a crashed writer
 * is never silently stolen — only breakLock() removes it. Artifact
 * names must not escape the store directory, and list() hides the
 * lock/quarantine sidecars.
 */

#include <filesystem>
#include <fstream>
#include <optional>

#include <unistd.h>

#include <gtest/gtest.h>

#include "io/store.hh"

namespace {

using namespace mflstm;
using namespace mflstm::io;

class StoreTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = std::filesystem::temp_directory_path() /
               ("mflstm_store_test_" + std::to_string(::getpid()));
        std::filesystem::create_directories(dir_);
    }
    void TearDown() override
    {
        std::error_code ec;
        std::filesystem::remove_all(dir_, ec);
    }

    std::filesystem::path dir_;
};

TEST_F(StoreTest, CreatesDirectoryAndResolvesPaths)
{
    const std::string sub = (dir_ / "nested" / "store").string();
    ArtifactStore store(sub);
    EXPECT_TRUE(std::filesystem::is_directory(sub));
    EXPECT_EQ(store.path("model.bin"),
              (std::filesystem::path(sub) / "model.bin").string());
    EXPECT_FALSE(store.exists("model.bin"));
}

TEST_F(StoreTest, RejectsNamesThatEscapeTheDirectory)
{
    ArtifactStore store(dir_.string());
    for (const std::string bad :
         {"", "a/b", "../evil", "..", "sub/../../evil"}) {
        try {
            store.path(bad);
            FAIL() << "accepted \"" << bad << "\"";
        } catch (const ArtifactError &e) {
            EXPECT_EQ(e.kind(), ErrorKind::Malformed) << bad;
        }
    }
}

TEST_F(StoreTest, WriteLockIsExclusive)
{
    ArtifactStore store(dir_.string());
    std::optional<ArtifactStore::WriteLock> lock(
        store.lockForWrite("state.bin"));
    EXPECT_TRUE(store.locked("state.bin"));

    // A second writer (same or another process — the sidecar is the
    // only state) must fail with a typed Io error, not block or steal.
    try {
        store.lockForWrite("state.bin");
        FAIL() << "double acquisition succeeded";
    } catch (const ArtifactError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Io);
        EXPECT_NE(std::string(e.what()).find("state.bin.lock"),
                  std::string::npos);
    }

    // Unrelated artifacts lock independently.
    const ArtifactStore::WriteLock other =
        store.lockForWrite("other.bin");
    EXPECT_TRUE(store.locked("other.bin"));

    lock.reset();  // RAII release
    EXPECT_FALSE(store.locked("state.bin"));
    EXPECT_NO_THROW(store.lockForWrite("state.bin"));
}

TEST_F(StoreTest, MovedFromLockDoesNotDoubleRelease)
{
    ArtifactStore store(dir_.string());
    std::optional<ArtifactStore::WriteLock> outer;
    {
        ArtifactStore::WriteLock inner =
            store.lockForWrite("state.bin");
        outer.emplace(std::move(inner));
        // inner's destructor runs here; the lock must survive.
    }
    EXPECT_TRUE(store.locked("state.bin"));
    outer.reset();
    EXPECT_FALSE(store.locked("state.bin"));
}

TEST_F(StoreTest, StaleLockSurfacesUntilBroken)
{
    ArtifactStore store(dir_.string());
    // Simulate a crashed writer: the sidecar exists with no owner.
    std::ofstream(store.path("state.bin") + ".lock").put('\n');
    EXPECT_TRUE(store.locked("state.bin"));
    EXPECT_THROW(store.lockForWrite("state.bin"), ArtifactError);

    // Deliberate recovery removes it; a normal writer never does.
    EXPECT_TRUE(store.breakLock("state.bin"));
    EXPECT_FALSE(store.locked("state.bin"));
    EXPECT_FALSE(store.breakLock("state.bin"));  // nothing left
    EXPECT_NO_THROW(store.lockForWrite("state.bin"));
}

TEST_F(StoreTest, ListHidesSidecars)
{
    ArtifactStore store(dir_.string());
    std::ofstream(store.path("b.bin")).put('x');
    std::ofstream(store.path("a.bin")).put('x');
    std::ofstream(store.path("a.bin") + ".corrupt").put('x');
    const ArtifactStore::WriteLock lock = store.lockForWrite("b.bin");

    const std::vector<std::string> names = store.list();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "a.bin");  // sorted
    EXPECT_EQ(names[1], "b.bin");
    EXPECT_TRUE(store.exists("a.bin"));
    EXPECT_TRUE(store.exists("b.bin"));
}

} // namespace
