/**
 * ScheduleDecisions API (DESIGN.md §14): parser round-trips, the
 * per-layer validation rules, the preset -> explicit-decision
 * bit-identity guarantee the whole redesign rests on, the new
 * searchable software+fused point, and the persistent weight-residency
 * schedule family (DESIGN.md §15).
 */

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "gpu/config.hh"
#include "gpu/sm.hh"
#include "runtime/lowering.hh"
#include "runtime/plan.hh"
#include "runtime/schedule.hh"

namespace mflstm {
namespace runtime {
namespace {

// ---------------------------------------------------------------------
// Parser round-trips

TEST(PlanKindParse, RoundTripsEveryKind)
{
    const PlanKind kinds[] = {
        PlanKind::Baseline,    PlanKind::InterCell,
        PlanKind::IntraCellSw, PlanKind::IntraCellHw,
        PlanKind::Combined,    PlanKind::ZeroPruning,
        PlanKind::Tuned,       PlanKind::Persistent,
    };
    for (PlanKind k : kinds) {
        const auto parsed = planKindFromString(toString(k));
        ASSERT_TRUE(parsed.has_value()) << toString(k);
        EXPECT_EQ(*parsed, k);
    }
}

TEST(PlanKindParse, AcceptsHistoricalCliAliases)
{
    EXPECT_EQ(planKindFromString("inter"), PlanKind::InterCell);
    EXPECT_EQ(planKindFromString("intra-sw"), PlanKind::IntraCellSw);
    EXPECT_EQ(planKindFromString("intra-hw"), PlanKind::IntraCellHw);
}

TEST(PlanKindParse, RejectsUnknownSpellings)
{
    EXPECT_FALSE(planKindFromString("").has_value());
    EXPECT_FALSE(planKindFromString("Combined").has_value());
    EXPECT_FALSE(planKindFromString("turbo").has_value());
}

TEST(ScheduleEnumParse, RoundTripsSkipPathAndFlagFusion)
{
    for (SkipPath p :
         {SkipPath::Off, SkipPath::Software, SkipPath::HwCrm}) {
        const auto parsed = parseSkipPath(toString(p));
        ASSERT_TRUE(parsed.has_value()) << toString(p);
        EXPECT_EQ(*parsed, p);
    }
    for (FlagFusion f :
         {FlagFusion::Standalone, FlagFusion::FusedEpilogue}) {
        const auto parsed = parseFlagFusion(toString(f));
        ASSERT_TRUE(parsed.has_value()) << toString(f);
        EXPECT_EQ(*parsed, f);
    }
    EXPECT_FALSE(parseSkipPath("warp").has_value());
    EXPECT_FALSE(parseFlagFusion("inline").has_value());
}

// ---------------------------------------------------------------------
// Validation rules

TEST(LayerScheduleValidate, AcceptsEveryCanonicalPresetPoint)
{
    LayerSchedule dense;
    EXPECT_NO_THROW(dense.validate());

    LayerSchedule sw;
    sw.skipPath = SkipPath::Software;
    sw.skipFraction = 0.3;
    EXPECT_NO_THROW(sw.validate());

    LayerSchedule hw = sw;
    hw.skipPath = SkipPath::HwCrm;
    hw.flagFusion = FlagFusion::FusedEpilogue;
    EXPECT_NO_THROW(hw.validate());

    LayerSchedule both = hw;
    both.tissueSizes = {4, 3, 3};
    EXPECT_NO_THROW(both.validate());

    LayerSchedule csr;
    csr.prunedCsr = true;
    csr.pruneFraction = 0.37;
    EXPECT_NO_THROW(csr.validate());
}

TEST(LayerScheduleValidate, RejectsHwCrmWithoutFusedEpilogue)
{
    LayerSchedule ls;
    ls.skipPath = SkipPath::HwCrm;
    ls.skipFraction = 0.3;
    ls.flagFusion = FlagFusion::Standalone;
    EXPECT_THROW(ls.validate(), std::invalid_argument);
}

TEST(LayerScheduleValidate, RejectsTissuesWithSoftwareSkip)
{
    LayerSchedule ls;
    ls.tissueSizes = {4, 3, 3};
    ls.skipPath = SkipPath::Software;
    ls.skipFraction = 0.3;
    ls.flagFusion = FlagFusion::FusedEpilogue;
    EXPECT_THROW(ls.validate(), std::invalid_argument);
}

TEST(LayerScheduleValidate, RejectsBadFractions)
{
    LayerSchedule ls;
    ls.skipPath = SkipPath::Software;
    ls.skipFraction = 1.5;
    EXPECT_THROW(ls.validate(), std::invalid_argument);
    ls.skipFraction = -0.1;
    EXPECT_THROW(ls.validate(), std::invalid_argument);
    ls.skipFraction = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(ls.validate(), std::invalid_argument);
}

TEST(LayerScheduleValidate, RejectsCsrComposedWithAnything)
{
    LayerSchedule ls;
    ls.prunedCsr = true;
    ls.pruneFraction = 0.37;

    LayerSchedule with_tissues = ls;
    with_tissues.tissueSizes = {4, 3, 3};
    EXPECT_THROW(with_tissues.validate(), std::invalid_argument);

    LayerSchedule with_skip = ls;
    with_skip.skipPath = SkipPath::Software;
    with_skip.skipFraction = 0.3;
    EXPECT_THROW(with_skip.validate(), std::invalid_argument);

    LayerSchedule quantized = ls;
    quantized.quant = quant::QuantMode::Int8;
    EXPECT_THROW(quantized.validate(), std::invalid_argument);
}

TEST(LayerScheduleValidate, RejectsPruneFractionWithoutCsr)
{
    LayerSchedule ls;
    ls.pruneFraction = 0.37;
    EXPECT_THROW(ls.validate(), std::invalid_argument);
}

TEST(ScheduleDecisionsValidate, NamesTheOffendingLayer)
{
    ScheduleDecisions d;
    d.layers.resize(2);
    d.layers[1].skipPath = SkipPath::HwCrm;
    d.layers[1].skipFraction = 0.3;
    try {
        d.validate();
        FAIL() << "expected invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("layer 1"),
                  std::string::npos)
            << e.what();
    }
}

// ---------------------------------------------------------------------
// Preset <-> decision bit-identity

void
expectKernelEqual(const gpu::KernelDesc &a, const gpu::KernelDesc &b,
                  std::size_t i)
{
    SCOPED_TRACE("kernel " + std::to_string(i) + ": " + a.name);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.klass, b.klass);
    EXPECT_EQ(a.ctas, b.ctas);
    EXPECT_EQ(a.threadsPerCta, b.threadsPerCta);
    EXPECT_EQ(a.flops, b.flops);
    EXPECT_EQ(a.dramReadBytes, b.dramReadBytes);
    EXPECT_EQ(a.dramWriteBytes, b.dramWriteBytes);
    EXPECT_EQ(a.l2AccessBytes, b.l2AccessBytes);
    EXPECT_EQ(a.sharedBytes, b.sharedBytes);
    EXPECT_EQ(a.dramWeightBytes, b.dramWeightBytes);
    EXPECT_EQ(a.quantWeightElems, b.quantWeightElems);
    EXPECT_EQ(a.weightStream, b.weightStream);
    EXPECT_EQ(a.dramScaleBytes, b.dramScaleBytes);
    EXPECT_EQ(a.dramCrmMetaBytes, b.dramCrmMetaBytes);
    EXPECT_EQ(a.dramSpillBytes, b.dramSpillBytes);
    EXPECT_EQ(a.dramResidencyReloadBytes, b.dramResidencyReloadBytes);
    EXPECT_EQ(a.residency, b.residency);
    EXPECT_EQ(a.residencyPinnedBytes, b.residencyPinnedBytes);
    EXPECT_EQ(a.syncsPerCta, b.syncsPerCta);
    EXPECT_EQ(a.divergenceFactor, b.divergenceFactor);
    EXPECT_EQ(a.coalescingFactor, b.coalescingFactor);
    EXPECT_EQ(a.layer, b.layer);
    EXPECT_EQ(a.timestep, b.timestep);
    EXPECT_EQ(a.tissue, b.tissue);
    EXPECT_EQ(a.hasRowSkipArg, b.hasRowSkipArg);
    EXPECT_EQ(a.disabledThreads, b.disabledThreads);
}

void
expectTraceEqual(const gpu::KernelTrace &a, const gpu::KernelTrace &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        expectKernelEqual(a[i], b[i], i);
}

/** A representative preset plan of @p kind for a 2-layer network. */
ExecutionPlan
presetFor(PlanKind kind, quant::QuantMode qm)
{
    ExecutionPlan plan;
    plan.kind = kind;
    plan.quantMode = qm;
    if (plan.usesInter()) {
        plan.inter.push_back({{4, 3, 3}});
        plan.inter.push_back({{5, 5}});
    }
    if (plan.usesIntra())
        plan.intra = {{0.3}, {0.45}};
    if (kind == PlanKind::ZeroPruning)
        plan.pruneFraction = 0.37;
    return plan;
}

TEST(ScheduleBitIdentity, PresetsLowerIdenticallyAsExplicitDecisions)
{
    const gpu::GpuConfig cfg = gpu::GpuConfig::tegraX1();
    const Lowering lowering(cfg);
    const NetworkShape shape = NetworkShape::stacked(32, 64, 2, 10);

    const PlanKind kinds[] = {
        PlanKind::Baseline,    PlanKind::InterCell,
        PlanKind::IntraCellSw, PlanKind::IntraCellHw,
        PlanKind::Combined,    PlanKind::ZeroPruning,
        PlanKind::Persistent,
    };
    const quant::QuantMode modes[] = {quant::QuantMode::Fp32,
                                      quant::QuantMode::Int8,
                                      quant::QuantMode::Int4};
    for (PlanKind kind : kinds) {
        for (quant::QuantMode qm : modes) {
            for (std::size_t batch : {std::size_t{1}, std::size_t{4}}) {
                SCOPED_TRACE(std::string(toString(kind)) + "/" +
                             quant::toString(qm) + "/b" +
                             std::to_string(batch));
                const ExecutionPlan preset = presetFor(kind, qm);
                const ExecutionPlan tuned = ExecutionPlan::fromDecisions(
                    preset.explicitDecisions(shape.layers.size()));
                EXPECT_EQ(tuned.kind, PlanKind::Tuned);
                expectTraceEqual(lowering.lower(shape, preset, batch),
                                 lowering.lower(shape, tuned, batch));
            }
        }
    }
}

TEST(ScheduleBitIdentity, ExplicitDecisionsMatchLayerSchedule)
{
    const ExecutionPlan plan = presetFor(PlanKind::Combined,
                                         quant::QuantMode::Int8);
    const ScheduleDecisions d = plan.explicitDecisions(3);
    ASSERT_EQ(d.layers.size(), 3u);
    for (std::size_t l = 0; l < 3; ++l)
        EXPECT_EQ(d.layers[l], plan.layerSchedule(l));
    // Beyond the preset vectors the derivation is a dense layer at the
    // plan's quant mode.
    EXPECT_FALSE(d.layers[2].usesTissues());
    EXPECT_EQ(d.layers[2].quant, quant::QuantMode::Int8);
}

TEST(ScheduleBitIdentity, ZeroPruningForcesFp32Csr)
{
    const ExecutionPlan plan = presetFor(PlanKind::ZeroPruning,
                                         quant::QuantMode::Int8);
    const LayerSchedule ls = plan.layerSchedule(0);
    EXPECT_TRUE(ls.prunedCsr);
    EXPECT_EQ(ls.quant, quant::QuantMode::Fp32);
    EXPECT_EQ(ls.pruneFraction, 0.37);
}

// ---------------------------------------------------------------------
// The point the PlanKind enum never named: software skip + fused flags

TEST(ScheduleNewPoints, SoftwareSkipWithFusedEpilogueDropsScanKernel)
{
    const gpu::GpuConfig cfg = gpu::GpuConfig::tegraX1();
    const Lowering lowering(cfg);
    const NetworkShape shape = NetworkShape::stacked(32, 64, 1, 10);

    ScheduleDecisions d;
    LayerSchedule ls;
    ls.skipPath = SkipPath::Software;
    ls.skipFraction = 0.3;
    ls.flagFusion = FlagFusion::FusedEpilogue;
    d.layers = {ls};
    const ExecutionPlan plan = ExecutionPlan::fromDecisions(d);

    const gpu::KernelTrace trace = lowering.lower(shape, plan);
    // inputSgemm + (fused U_o, row-skip U_fic, lstm_ew) per cell: the
    // standalone DRS scan and its extra element-wise pass never launch.
    EXPECT_EQ(trace.size(), 1 + 3 * shape.layers[0].length);
    for (const gpu::KernelDesc &k : trace)
        EXPECT_NE(k.klass, gpu::KernelClass::Drs) << k.name;

    // The software grid stays divergent (that is what distinguishes it
    // from the hw-crm point) and the U_o epilogue carries flag traffic.
    bool saw_fused = false, saw_divergent = false;
    for (const gpu::KernelDesc &k : trace) {
        if (k.name.find("+flags") != std::string::npos)
            saw_fused = true;
        if (k.divergenceFactor > 1.0)
            saw_divergent = true;
    }
    EXPECT_TRUE(saw_fused);
    EXPECT_TRUE(saw_divergent);
}

TEST(ScheduleNewPoints, PerLayerBatchOverrideInheritsWhenZero)
{
    const gpu::GpuConfig cfg = gpu::GpuConfig::tegraX1();
    const Lowering lowering(cfg);
    const NetworkShape shape = NetworkShape::stacked(32, 64, 1, 4);

    ScheduleDecisions d;
    d.layers.resize(1);
    d.layers[0].batch = 2;
    const ExecutionPlan pinned = ExecutionPlan::fromDecisions(d);

    ExecutionPlan inherit;
    inherit.kind = PlanKind::Baseline;

    // batch=2 pinned in the decision == batch=2 via the run request.
    expectTraceEqual(lowering.lower(shape, pinned, 1),
                     lowering.lower(shape, inherit, 2));
}

// ---------------------------------------------------------------------
// Persistent residency

TEST(Residency, ValidateRejectsSkipAndCsrCompositions)
{
    LayerSchedule ls;
    ls.residency = WeightResidency::Regfile;
    EXPECT_NO_THROW(ls.validate());

    LayerSchedule skip = ls;
    skip.skipPath = SkipPath::Software;
    skip.skipFraction = 0.3;
    EXPECT_THROW(skip.validate(), std::invalid_argument);

    LayerSchedule csr = ls;
    csr.prunedCsr = true;
    csr.pruneFraction = 0.37;
    EXPECT_THROW(csr.validate(), std::invalid_argument);
}

TEST(Residency, PersistentLayerLowersToOneWeightKernel)
{
    const gpu::GpuConfig cfg = gpu::GpuConfig::tegraX1();
    const Lowering lowering(cfg);
    const NetworkShape shape = NetworkShape::stacked(32, 64, 1, 6);

    ScheduleDecisions d;
    d.layers.resize(1);
    d.layers[0].residency = WeightResidency::Regfile;
    const gpu::KernelTrace trace =
        lowering.lower(shape, ExecutionPlan::fromDecisions(d), 1);

    std::size_t persistent = 0;
    for (const gpu::KernelDesc &k : trace)
        if (k.klass == gpu::KernelClass::Persistent)
            ++persistent;
    // One input GEMM plus exactly one persistent recurrent kernel; the
    // per-timestep cell grids are folded into the resident launch.
    ASSERT_EQ(persistent, 1u);
    ASSERT_EQ(trace.size(), 2u);
    const gpu::KernelDesc &pk = trace.back();
    EXPECT_EQ(pk.residency, gpu::WeightResidency::Regfile);
    EXPECT_GT(pk.residencyPinnedBytes, 0.0);
    EXPECT_EQ(pk.syncsPerCta, shape.layers[0].length);
}

TEST(Residency, ResidentBytesChargedOncePerSequence)
{
    const gpu::GpuConfig cfg = gpu::GpuConfig::tegraX1();
    const Lowering lowering(cfg);
    const LstmLayerShape shape{64, 64, 10};

    const gpu::KernelDesc pk = lowering.persistentLayerKernel(
        shape, gpu::WeightResidency::Regfile, shape.length,
        KernelBuildCtx{1});
    // h=64 fp32 U fits the register-file budget entirely: the weight
    // stream equals the footprint (once), with no reload traffic.
    const double footprint = 4.0 * 64.0 * 64.0 * 4.0;
    EXPECT_DOUBLE_EQ(pk.dramWeightBytes, footprint);
    EXPECT_DOUBLE_EQ(pk.dramResidencyReloadBytes, 0.0);
    EXPECT_DOUBLE_EQ(pk.residencyPinnedBytes, footprint);
    // fp32 weights stream no scale vector and dequantize nothing.
    EXPECT_DOUBLE_EQ(pk.dramScaleBytes, 0.0);
    EXPECT_DOUBLE_EQ(pk.quantWeightElems, 0.0);
}

TEST(Residency, OversizedFootprintSpillsAndReloads)
{
    const gpu::GpuConfig cfg = gpu::GpuConfig::tegraX1();
    const Lowering lowering(cfg);
    // h=650 fp32: 4h^2*4 = 6.76 MB, far beyond any on-chip tier.
    const LstmLayerShape shape{650, 650, 20};

    const gpu::KernelDesc pk = lowering.persistentLayerKernel(
        shape, gpu::WeightResidency::Shared, shape.length,
        KernelBuildCtx{1});
    const double capacity =
        gpu::residencyCapacityBytes(cfg, gpu::WeightResidency::Shared);
    EXPECT_DOUBLE_EQ(pk.residencyPinnedBytes, capacity);
    EXPECT_GT(pk.dramResidencyReloadBytes, 0.0);
    // Reload is a subset of the weight stream; codes+scales+reload
    // must decompose dramWeightBytes without overlap.
    EXPECT_LT(pk.dramResidencyReloadBytes, pk.dramWeightBytes);
}

TEST(Residency, PersistentPresetMatchesTissuesPlusRegfile)
{
    const gpu::GpuConfig cfg = gpu::GpuConfig::tegraX1();
    const Lowering lowering(cfg);
    const NetworkShape shape = NetworkShape::stacked(32, 64, 2, 12);

    ExecutionPlan preset;
    preset.kind = PlanKind::Persistent;
    preset.quantMode = quant::QuantMode::Int8;
    preset.inter.push_back({{6, 6}});
    preset.inter.push_back({{4, 4, 4}});

    ScheduleDecisions d;
    d.layers.resize(2);
    d.layers[0].tissueSizes = {6, 6};
    d.layers[1].tissueSizes = {4, 4, 4};
    for (LayerSchedule &ls : d.layers) {
        ls.quant = quant::QuantMode::Int8;
        ls.residency = WeightResidency::Regfile;
    }

    expectTraceEqual(lowering.lower(shape, preset, 1),
                     lowering.lower(shape, ExecutionPlan::fromDecisions(d),
                                    1));
}

} // namespace
} // namespace runtime
} // namespace mflstm
