/**
 * @file
 * Fault-injection tests for the serving engine (DESIGN.md §10). A
 * ScriptedFaultInjector fails chosen requests / batches for their
 * first N attempts, so every retry path is deterministic:
 *
 *   - a fault budgeted under maxRetries is retried and the successful
 *     retry's outputs are bit-identical to a fault-free run;
 *   - the retry bound is honoured exactly (attemptsSeen);
 *   - an exhausted budget resolves that request Status::Failed without
 *     stalling its batch siblings;
 *   - batch-timing faults retry the whole timing run, and exhausting
 *     them fails the whole batch while later batches still serve.
 */

#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "serve/engine.hh"
#include "tensor/rng.hh"

namespace {

using namespace mflstm;

nn::ModelConfig
clsConfig()
{
    nn::ModelConfig cfg;
    cfg.task = nn::TaskKind::Classification;
    cfg.vocab = 20;
    cfg.embedSize = 8;
    cfg.hiddenSize = 12;
    cfg.numLayers = 2;
    cfg.numClasses = 2;
    return cfg;
}

std::vector<std::vector<std::int32_t>>
seqs(std::size_t n, std::size_t len, std::uint64_t seed)
{
    tensor::Rng rng(seed);
    std::vector<std::vector<std::int32_t>> out(n);
    for (auto &s : out)
        for (std::size_t t = 0; t < len; ++t)
            s.push_back(static_cast<std::int32_t>(rng.integer(0, 19)));
    return out;
}

class FaultTest : public ::testing::Test
{
  protected:
    FaultTest()
        : model(clsConfig(), 77),
          mf(model, {gpu::GpuConfig::tegraX1(),
                     runtime::NetworkShape::stacked(512, 512, 2, 40)})
    {
        mf.calibrate(seqs(4, 8, 5));
        const auto ladder = mf.calibration().ladder();
        mf.setThresholds(ladder[ladder.size() / 2]);
        for (const auto &s : seqs(4, 8, 11))
            mf.runner().classify(s);
    }

    serve::InferenceEngine::Options
    faultOptions(serve::FaultInjector &inj, int max_retries) const
    {
        serve::InferenceEngine::Options o;
        o.maxBatch = 8;
        o.workers = 1;  // deterministic batch ordinals
        o.plan = runtime::PlanKind::Combined;
        o.faultInjector = &inj;
        o.maxRetries = max_retries;
        o.retryBackoffMs = 0.01;  // keep tests fast
        return o;
    }

    nn::LstmModel model;
    core::MemoryFriendlyLstm mf;
};

TEST_F(FaultTest, SuccessfulRetryIsBitIdenticalToFaultFreeRun)
{
    const auto inputs = seqs(6, 10, 23);
    core::ApproxRunner solo = mf.runner();
    std::vector<tensor::Vector> expected;
    for (const auto &s : inputs)
        expected.push_back(solo.classify(s));

    // Request ids are assigned 1.. in submit order; fail id 3's first
    // two attempts — under budget (maxRetries = 2), so it must recover.
    serve::ScriptedFaultInjector inj;
    inj.failRequest(3, 2);

    serve::InferenceEngine engine(mf, faultOptions(inj, 2));
    serve::Session session = engine.session();
    std::vector<std::future<serve::Response>> futures;
    for (const auto &s : inputs)
        futures.push_back(session.infer(s));

    for (std::size_t i = 0; i < futures.size(); ++i) {
        const serve::Response r = futures[i].get();
        ASSERT_EQ(r.status, serve::Status::Ok) << "request " << i;
        EXPECT_TRUE(r.executed);
        EXPECT_EQ(r.logits, expected[i]) << "request " << i;
        EXPECT_EQ(r.retries, r.id == 3 ? 2 : 0);
    }
    EXPECT_EQ(inj.injected(), 2u);
    EXPECT_EQ(inj.attemptsSeen(3), 3);  // 2 faulted + 1 success

    const auto st = engine.stats();
    EXPECT_EQ(st.retries, 2u);
    EXPECT_EQ(st.failed, 0u);
    EXPECT_EQ(st.ok, inputs.size());
}

TEST_F(FaultTest, ExhaustedRetriesFailWithoutStallingSiblings)
{
    const auto inputs = seqs(6, 10, 31);
    core::ApproxRunner solo = mf.runner();
    std::vector<tensor::Vector> expected;
    for (const auto &s : inputs)
        expected.push_back(solo.classify(s));

    // Fail id 2 for more attempts than the engine will ever make:
    // 1 initial + maxRetries(1) = 2 attempts, scripted to fail 5.
    serve::ScriptedFaultInjector inj;
    inj.failRequest(2, 5);

    serve::InferenceEngine engine(mf, faultOptions(inj, 1));
    serve::Session session = engine.session();
    std::vector<std::future<serve::Response>> futures;
    for (const auto &s : inputs)
        futures.push_back(session.infer(s));

    for (std::size_t i = 0; i < futures.size(); ++i) {
        const serve::Response r = futures[i].get();
        if (r.id == 2) {
            EXPECT_EQ(r.status, serve::Status::Failed);
            EXPECT_FALSE(r.executed);
            EXPECT_FALSE(r.error.empty());
        } else {
            // Siblings in the same batch are untouched.
            ASSERT_EQ(r.status, serve::Status::Ok) << "request " << i;
            EXPECT_EQ(r.logits, expected[i]) << "request " << i;
        }
    }
    // The retry bound was honoured exactly: attempts 0 and 1, no more.
    EXPECT_EQ(inj.attemptsSeen(2), 2);

    const auto st = engine.stats();
    EXPECT_EQ(st.failed, 1u);
    EXPECT_EQ(st.retries, 1u);
    EXPECT_EQ(st.completed, inputs.size());
}

TEST_F(FaultTest, BatchTimingFaultIsRetriedOnTheExecutorPath)
{
    serve::ScriptedFaultInjector inj;
    inj.failBatch(0, 2);  // first batch: fail 2 timing attempts

    serve::InferenceEngine engine(mf, faultOptions(inj, 2));
    const serve::Response r =
        engine.session().infer(seqs(1, 10, 41).front()).get();
    EXPECT_EQ(r.status, serve::Status::Ok);
    EXPECT_GT(r.simBatchMs, 0.0);  // the retried timing run completed
    EXPECT_EQ(inj.injected(), 2u);
    EXPECT_EQ(engine.stats().retries, 2u);
}

TEST_F(FaultTest, ExhaustedBatchRetriesFailTheBatchButNotTheEngine)
{
    serve::ScriptedFaultInjector inj;
    inj.failBatch(0, 10);  // beyond any budget: batch 0 always fails

    serve::InferenceEngine engine(mf, faultOptions(inj, 1));
    serve::Session session = engine.session();

    const auto inputs = seqs(2, 10, 51);
    const serve::Response first = session.infer(inputs[0]).get();
    EXPECT_EQ(first.status, serve::Status::Failed);
    EXPECT_FALSE(first.executed);
    EXPECT_FALSE(first.error.empty());

    // The worker survived; the next batch (ordinal 1) serves normally.
    const serve::Response second = session.infer(inputs[1]).get();
    EXPECT_EQ(second.status, serve::Status::Ok);
    EXPECT_TRUE(second.executed);

    const auto st = engine.stats();
    EXPECT_EQ(st.failed, 1u);
    EXPECT_EQ(st.ok, 1u);
    EXPECT_EQ(st.completed, 2u);
    EXPECT_EQ(st.workerRestarts, 0u);  // handled, not restarted
}

TEST_F(FaultTest, ProbabilisticInjectorRespectsCapAndEngineDrains)
{
    // Rate 1.0 capped at 3 injections: the first requests burn the
    // budget through retries, then everything completes cleanly.
    serve::ProbabilisticFaultInjector inj(1.0, /*seed=*/7,
                                          /*max_faults=*/3);

    serve::InferenceEngine engine(mf, faultOptions(inj, 3));
    serve::Session session = engine.session();
    const auto inputs = seqs(8, 10, 61);
    std::vector<std::future<serve::Response>> futures;
    for (const auto &s : inputs)
        futures.push_back(session.infer(s));

    std::size_t ok = 0;
    std::size_t failed = 0;
    for (auto &f : futures) {
        const serve::Response r = f.get();  // nothing hangs
        (r.status == serve::Status::Ok ? ok : failed) += 1;
    }
    EXPECT_EQ(ok + failed, inputs.size());
    EXPECT_EQ(inj.injected(), 3u);
    // With budget 3 retries per site, a 3-fault cap cannot exhaust
    // any single request's budget plus its batch's budget at once.
    EXPECT_GE(ok, 1u);
}

} // namespace
