/**
 * @file
 * Fleet router + circuit breaker unit tests (DESIGN.md §16). The
 * routing contract: only eligible replicas (not Down, breaker closed)
 * are candidates; a pinned session stays on its replica while it is
 * eligible and is re-pinned (counted as a session failover) when it
 * goes Down; round-robin cycles and least-loaded picks the shallowest
 * queue. The breaker contract: trips after tripAfter consecutive
 * failures, holds for cooldownTicks, then half-opens — one failure
 * re-trips immediately, one success closes fully.
 */

#include <gtest/gtest.h>

#include <set>

#include "fleet/replica.hh"
#include "fleet/router.hh"

namespace {

using namespace mflstm;
using namespace mflstm::fleet;

std::vector<ReplicaSnapshot>
healthySnaps(std::size_t n)
{
    std::vector<ReplicaSnapshot> snaps(n);
    for (std::size_t i = 0; i < n; ++i) {
        snaps[i].index = i;
        snaps[i].state = ReplicaState::Healthy;
    }
    return snaps;
}

TEST(Router, AffinityPinsAndSticks)
{
    Router router(RoutingPolicy::SessionAffinity, {});
    const auto snaps = healthySnaps(3);

    const std::size_t first = router.route("session-a", snaps);
    ASSERT_LT(first, 3u);
    EXPECT_EQ(router.pinned("session-a"), first);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(router.route("session-a", snaps), first);
    EXPECT_EQ(router.sessionFailovers(), 0u);
}

TEST(Router, AffinityRePinsWhenReplicaGoesDown)
{
    Router router(RoutingPolicy::SessionAffinity, {});
    auto snaps = healthySnaps(3);

    const std::size_t first = router.route("session-a", snaps);
    snaps[first].state = ReplicaState::Down;

    const std::size_t second = router.route("session-a", snaps);
    ASSERT_LT(second, 3u);
    EXPECT_NE(second, first);
    EXPECT_EQ(router.pinned("session-a"), second);
    EXPECT_EQ(router.sessionFailovers(), 1u);

    // The new pin sticks even after the old replica recovers: warm
    // per-session state now lives on the new replica.
    snaps[first].state = ReplicaState::Healthy;
    EXPECT_EQ(router.route("session-a", snaps), second);
    EXPECT_EQ(router.sessionFailovers(), 1u);
}

TEST(Router, AffinityAvoidExcludesTheFailedReplica)
{
    Router router(RoutingPolicy::SessionAffinity, {});
    const auto snaps = healthySnaps(3);

    const std::size_t first = router.route("session-a", snaps);
    const std::size_t other =
        router.route("session-a", snaps, /*avoid=*/first);
    ASSERT_LT(other, 3u);
    EXPECT_NE(other, first);
}

TEST(Router, AvoidIsIgnoredWhenItIsTheOnlyCandidate)
{
    Router router(RoutingPolicy::RoundRobin, {});
    const auto snaps = healthySnaps(1);
    EXPECT_EQ(router.route("s", snaps, /*avoid=*/0), 0u);
}

TEST(Router, RoundRobinCyclesEligibleReplicas)
{
    Router router(RoutingPolicy::RoundRobin, {});
    const auto snaps = healthySnaps(3);

    std::set<std::size_t> seen;
    for (int i = 0; i < 3; ++i)
        seen.insert(router.route("any", snaps));
    EXPECT_EQ(seen.size(), 3u);
}

TEST(Router, LeastLoadedPicksShallowestQueue)
{
    Router router(RoutingPolicy::LeastLoaded, {});
    auto snaps = healthySnaps(3);
    snaps[0].queueDepth = 5;
    snaps[1].queueDepth = 1;
    snaps[2].queueDepth = 9;
    EXPECT_EQ(router.route("s", snaps), 1u);
}

TEST(Router, DownAndOpenBreakerAreIneligible)
{
    Router router(RoutingPolicy::RoundRobin, {});
    auto snaps = healthySnaps(3);
    snaps[0].state = ReplicaState::Down;
    snaps[1].breakerOpen = true;
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(router.route("s", snaps), 2u);

    // Degraded and Recovering replicas still route.
    snaps[0].state = ReplicaState::Degraded;
    snaps[1].breakerOpen = false;
    snaps[1].state = ReplicaState::Recovering;
    std::set<std::size_t> seen;
    for (int i = 0; i < 3; ++i)
        seen.insert(router.route("s", snaps));
    EXPECT_EQ(seen.size(), 3u);
}

TEST(Router, NoEligibleReplicaReturnsSentinel)
{
    Router router(RoutingPolicy::SessionAffinity, {});
    auto snaps = healthySnaps(2);
    snaps[0].state = ReplicaState::Down;
    snaps[1].state = ReplicaState::Down;
    EXPECT_EQ(router.route("s", snaps), Router::kNoReplica);
}

TEST(Router, SloLookupFallsBackToDefault)
{
    SloClass premium;
    premium.tenant = "premium";
    premium.priority = 10;
    premium.deadlineMs = 50.0;
    Router router(RoutingPolicy::SessionAffinity, {premium});
    router.defaultSlo.priority = 0;
    router.defaultSlo.deadlineMs = 0.0;

    EXPECT_EQ(router.sloFor("premium").priority, 10);
    EXPECT_EQ(router.sloFor("premium").deadlineMs, 50.0);
    EXPECT_EQ(router.sloFor("unknown-tenant").priority, 0);
    EXPECT_EQ(router.sloFor("unknown-tenant").deadlineMs, 0.0);
}

TEST(CircuitBreaker, TripsAfterConsecutiveFailures)
{
    CircuitBreaker b;
    b.tripAfter = 3;
    b.cooldownTicks = 2;

    b.onFailure();
    b.onFailure();
    EXPECT_FALSE(b.open);
    b.onFailure();
    EXPECT_TRUE(b.open);
    EXPECT_EQ(b.trips, 1u);
}

TEST(CircuitBreaker, SuccessResetsTheStreak)
{
    CircuitBreaker b;
    b.tripAfter = 3;
    b.onFailure();
    b.onFailure();
    b.onSuccess();
    b.onFailure();
    b.onFailure();
    EXPECT_FALSE(b.open);
}

TEST(CircuitBreaker, CooldownHalfOpensThenRetripsOnFailure)
{
    CircuitBreaker b;
    b.tripAfter = 2;
    b.cooldownTicks = 2;
    b.onFailure();
    b.onFailure();
    ASSERT_TRUE(b.open);

    b.tick();
    EXPECT_TRUE(b.open);  // still cooling down
    b.tick();
    EXPECT_FALSE(b.open);  // half-open: probing allowed

    // One failure in half-open re-trips without a fresh streak.
    b.onFailure();
    EXPECT_TRUE(b.open);
    EXPECT_EQ(b.trips, 2u);
}

TEST(CircuitBreaker, CooldownHalfOpensThenClosesOnSuccess)
{
    CircuitBreaker b;
    b.tripAfter = 2;
    b.cooldownTicks = 1;
    b.onFailure();
    b.onFailure();
    b.tick();
    ASSERT_FALSE(b.open);

    b.onSuccess();
    EXPECT_EQ(b.consecutiveFailures, 0);
    // A single failure no longer trips: the close was full.
    b.onFailure();
    EXPECT_FALSE(b.open);
}

TEST(ReplicaState, ToStringCoversEveryState)
{
    EXPECT_STREQ(toString(ReplicaState::Healthy), "healthy");
    EXPECT_STREQ(toString(ReplicaState::Degraded), "degraded");
    EXPECT_STREQ(toString(ReplicaState::Down), "down");
    EXPECT_STREQ(toString(ReplicaState::Recovering), "recovering");
}

} // namespace
