/**
 * @file
 * Tests for the zero-pruning comparator (offline magnitude pruning).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "runtime/pruning.hh"
#include "tensor/rng.hh"

namespace {

using namespace mflstm;
using namespace mflstm::runtime;

tensor::Matrix
randomMatrix(std::size_t n, std::uint64_t seed)
{
    tensor::Rng rng(seed);
    tensor::Matrix m(n, n);
    rng.fillNormal(m, 0.0f, 1.0f);
    return m;
}

TEST(Pruning, ThresholdHitsTargetFraction)
{
    const tensor::Matrix m = randomMatrix(64, 1);
    const double thr = magnitudeThreshold(m, 0.37);
    tensor::Matrix copy = m;
    const double pruned = pruneBelow(copy, thr);
    EXPECT_NEAR(pruned, 0.37, 0.02);
}

TEST(Pruning, ZeroFractionPrunesNothing)
{
    tensor::Matrix m = randomMatrix(16, 2);
    const tensor::Matrix before = m;
    EXPECT_DOUBLE_EQ(magnitudeThreshold(m, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(pruneBelow(m, 0.0), 0.0);
    EXPECT_EQ(m, before);
}

TEST(Pruning, RejectsBadFraction)
{
    const tensor::Matrix m = randomMatrix(4, 3);
    EXPECT_THROW(magnitudeThreshold(m, -0.1), std::invalid_argument);
    EXPECT_THROW(magnitudeThreshold(m, 1.1), std::invalid_argument);
}

TEST(Pruning, PrunesSmallestMagnitudesFirst)
{
    tensor::Matrix m(2, 2);
    m(0, 0) = 0.01f;
    m(0, 1) = -0.02f;
    m(1, 0) = 1.0f;
    m(1, 1) = -2.0f;

    const double thr = magnitudeThreshold(m, 0.5);
    pruneBelow(m, thr);
    EXPECT_FLOAT_EQ(m(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(m(0, 1), 0.0f);
    EXPECT_FLOAT_EQ(m(1, 0), 1.0f);
    EXPECT_FLOAT_EQ(m(1, 1), -2.0f);
}

TEST(Pruning, ApplyZeroPruningOnModel)
{
    nn::ModelConfig cfg;
    cfg.task = nn::TaskKind::Classification;
    cfg.vocab = 16;
    cfg.embedSize = 8;
    cfg.hiddenSize = 24;
    cfg.numLayers = 2;
    cfg.numClasses = 2;
    nn::LstmModel model(cfg, 9);

    const PruningResult res = applyZeroPruning(model, 0.37);
    EXPECT_NEAR(res.prunedFraction, 0.37, 0.03);
    EXPECT_NEAR(res.compressionRatio, res.prunedFraction, 1e-12);
    EXPECT_GT(res.threshold, 0.0);

    // Verify the weights were actually zeroed at the claimed rate and
    // the input matrices untouched.
    std::size_t zeros = 0, total = 0;
    for (const auto &p : model.layers()) {
        for (const tensor::Matrix *u : {&p.uf, &p.ui, &p.uc, &p.uo}) {
            total += u->size();
            for (std::size_t i = 0; i < u->size(); ++i)
                zeros += u->data()[i] == 0.0f;
        }
        for (std::size_t i = 0; i < p.wf.size(); ++i)
            EXPECT_NE(p.wf.data()[i], 0.0f);
    }
    EXPECT_NEAR(static_cast<double>(zeros) / total, 0.37, 0.03);
}

nn::LstmModel
smallModel(std::uint64_t seed)
{
    nn::ModelConfig cfg;
    cfg.task = nn::TaskKind::Classification;
    cfg.vocab = 16;
    cfg.embedSize = 8;
    cfg.hiddenSize = 12;
    cfg.numLayers = 2;
    cfg.numClasses = 2;
    return nn::LstmModel(cfg, seed);
}

TEST(Pruning, ApplyFractionZeroIsIdentity)
{
    nn::LstmModel model = smallModel(3);
    const nn::LstmModel before = model;
    const PruningResult res = applyZeroPruning(model, 0.0);
    EXPECT_DOUBLE_EQ(res.threshold, 0.0);
    EXPECT_DOUBLE_EQ(res.prunedFraction, 0.0);
    EXPECT_DOUBLE_EQ(res.compressionRatio, 0.0);
    // No survivors removed: dense 4 B vs CSR 6 B per element.
    EXPECT_NEAR(res.csrStorageRatio, 4.0 / 6.0, 1e-12);
    for (std::size_t l = 0; l < model.layers().size(); ++l)
        EXPECT_EQ(model.layers()[l].uf, before.layers()[l].uf);
}

TEST(Pruning, ApplyFractionOnePrunesEverySurvivor)
{
    nn::LstmModel model = smallModel(3);
    const PruningResult res = applyZeroPruning(model, 1.0);
    EXPECT_DOUBLE_EQ(res.prunedFraction, 1.0);
    EXPECT_DOUBLE_EQ(res.compressionRatio, 1.0);
    // Zero survivors: the guarded degenerate answer, not a division
    // by zero.
    EXPECT_DOUBLE_EQ(res.csrStorageRatio, 0.0);
    for (const nn::LstmLayerParams &p : model.layers()) {
        for (const tensor::Matrix *u : {&p.uf, &p.ui, &p.uc, &p.uo})
            for (std::size_t i = 0; i < u->size(); ++i)
                EXPECT_EQ(u->data()[i], 0.0f);
    }
}

TEST(Pruning, ApplyRejectsBadFraction)
{
    nn::LstmModel model = smallModel(3);
    EXPECT_THROW(applyZeroPruning(model, -0.01), std::invalid_argument);
    EXPECT_THROW(applyZeroPruning(model, 1.01), std::invalid_argument);
}

TEST(Pruning, AllZeroMatrixIsAFixedPoint)
{
    // An already-zero weight set has nothing below any data-derived
    // threshold (strict comparison), so nothing is "pruned" and the
    // stats stay finite.
    nn::LstmModel model = smallModel(3);
    for (nn::LstmLayerParams &p : model.layers()) {
        for (tensor::Matrix *u : {&p.uf, &p.ui, &p.uc, &p.uo})
            for (std::size_t i = 0; i < u->size(); ++i)
                u->data()[i] = 0.0f;
    }
    const PruningResult res = applyZeroPruning(model, 0.37);
    EXPECT_DOUBLE_EQ(res.threshold, 0.0);
    EXPECT_DOUBLE_EQ(res.prunedFraction, 0.0);
    EXPECT_TRUE(std::isfinite(res.csrStorageRatio));

    // But fraction 1.0 still sweeps the zeros out as "pruned".
    const PruningResult all = applyZeroPruning(model, 1.0);
    EXPECT_DOUBLE_EQ(all.prunedFraction, 1.0);
    EXPECT_DOUBLE_EQ(all.csrStorageRatio, 0.0);
}

TEST(Pruning, CsrStorageRatioReflectsSurvivors)
{
    nn::LstmModel model = smallModel(7);
    const PruningResult res = applyZeroPruning(model, 0.37);
    // dense bytes / (survivors * 1.5 * 4 B): survivors = (1 - f) * total.
    EXPECT_NEAR(res.csrStorageRatio,
                1.0 / (1.5 * (1.0 - res.prunedFraction)), 1e-9);
    EXPECT_GT(res.csrStorageRatio, 1.0);  // 37% pruning beats CSR overhead
}

TEST(Pruning, ModelOutputsChangeButRemainFinite)
{
    nn::ModelConfig cfg;
    cfg.task = nn::TaskKind::Classification;
    cfg.vocab = 16;
    cfg.embedSize = 8;
    cfg.hiddenSize = 24;
    cfg.numLayers = 1;
    cfg.numClasses = 2;
    nn::LstmModel model(cfg, 11);

    const std::int32_t toks[] = {1, 2, 3, 4, 5};
    const auto before = model.classify(toks);
    applyZeroPruning(model, 0.5);
    const auto after = model.classify(toks);

    EXPECT_NE(before, after);
    for (std::size_t i = 0; i < after.size(); ++i)
        EXPECT_TRUE(std::isfinite(after[i]));
}

} // namespace
