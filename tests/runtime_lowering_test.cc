/**
 * @file
 * Tests for the LSTM-to-kernel lowering: kernel counts per flow
 * (Algorithm 1, Section IV-D tissues, Algorithm 3 DRS), traffic
 * accounting, and the plan containers.
 */

#include <gtest/gtest.h>

#include "gpu/simulator.hh"
#include "runtime/executor.hh"
#include "runtime/lowering.hh"
#include "runtime/plan.hh"

namespace {

using namespace mflstm;
using namespace mflstm::runtime;

const gpu::GpuConfig kCfg = gpu::GpuConfig::tegraX1();

LstmLayerShape
layer512()
{
    return {512, 512, 10};
}

ExecutionPlan
uniformInterPlan(std::size_t layers, std::size_t length, std::size_t k)
{
    ExecutionPlan plan;
    plan.kind = PlanKind::InterCell;
    for (std::size_t l = 0; l < layers; ++l) {
        LayerInterPlan ip;
        std::size_t left = length;
        while (left) {
            const std::size_t t = std::min(k, left);
            ip.tissueSizes.push_back(t);
            left -= t;
        }
        plan.inter.push_back(ip);
    }
    return plan;
}

TEST(Plan, NetworkShapeStacked)
{
    const NetworkShape s = NetworkShape::stacked(256, 512, 3, 20);
    ASSERT_EQ(s.layers.size(), 3u);
    EXPECT_EQ(s.layers[0].inputSize, 256u);
    EXPECT_EQ(s.layers[1].inputSize, 512u);
    EXPECT_EQ(s.layers[2].hiddenSize, 512u);
    EXPECT_EQ(s.layers[0].length, 20u);
    EXPECT_THROW(NetworkShape::stacked(0, 1, 1, 1),
                 std::invalid_argument);
}

TEST(Plan, InterPlanAccounting)
{
    LayerInterPlan ip;
    ip.tissueSizes = {5, 5, 3, 1};
    EXPECT_EQ(ip.totalCells(), 14u);
    EXPECT_EQ(ip.maxTissue(), 5u);
}

TEST(Plan, KindPredicates)
{
    ExecutionPlan p;
    p.kind = PlanKind::Combined;
    EXPECT_TRUE(p.usesInter());
    EXPECT_TRUE(p.usesIntra());
    EXPECT_TRUE(p.usesCrmHardware());

    p.kind = PlanKind::IntraCellSw;
    EXPECT_FALSE(p.usesInter());
    EXPECT_TRUE(p.usesIntra());
    EXPECT_FALSE(p.usesCrmHardware());

    p.kind = PlanKind::Baseline;
    EXPECT_FALSE(p.usesInter());
    EXPECT_FALSE(p.usesIntra());
}

TEST(Lowering, BaselineKernelCountsMatchAlgorithm1)
{
    Lowering low(kCfg);
    ExecutionPlan plan;  // baseline
    gpu::KernelTrace trace;
    low.lowerLayer(layer512(), plan, 0, trace);

    // 1 input Sgemm + per cell (Sgemv + lstm_ew).
    ASSERT_EQ(trace.size(), 1u + 2u * 10u);
    EXPECT_EQ(trace[0].klass, gpu::KernelClass::Sgemm);
    for (std::size_t t = 0; t < 10; ++t) {
        EXPECT_EQ(trace[1 + 2 * t].klass, gpu::KernelClass::Sgemv);
        EXPECT_EQ(trace[2 + 2 * t].klass, gpu::KernelClass::ElementWise);
    }
}

TEST(Lowering, BaselineWeightTrafficThrashes)
{
    Lowering low(kCfg);
    ExecutionPlan plan;
    gpu::KernelTrace trace;
    low.lowerLayer(layer512(), plan, 0, trace);

    // The 4.19 MB united U exceeds the 256 KB L2: each of the 10 cells
    // re-streams nearly the whole matrix (Section III-A).
    const double u_bytes = 4.0 * 512 * 512 * 4;
    double dram = 0.0;
    for (const auto &k : trace) {
        if (k.klass == gpu::KernelClass::Sgemv)
            dram += k.dramReadBytes;
    }
    EXPECT_GT(dram, 0.9 * 10.0 * u_bytes);
}

TEST(Lowering, InterCellEmitsPerTissueKernels)
{
    Lowering low(kCfg);
    const ExecutionPlan plan = uniformInterPlan(1, 10, 5);
    gpu::KernelTrace trace;
    low.lowerLayer(layer512(), plan, 0, trace);

    // 1 input Sgemm + 1 relevance + 2 tissues x (gather + Sgemm + ew).
    ASSERT_EQ(trace.size(), 2u + 2u * 3u);
    EXPECT_EQ(trace[1].klass, gpu::KernelClass::Relevance);
    EXPECT_EQ(trace[3].klass, gpu::KernelClass::Sgemm);
}

TEST(Lowering, InterCellReducesWeightTraffic)
{
    NetworkExecutor ex(kCfg);
    const NetworkShape shape = NetworkShape::stacked(512, 512, 1, 20);

    ExecutionPlan base;
    const RunReport rb = ex.run(shape, base);
    const RunReport ri = ex.run(shape, uniformInterPlan(1, 20, 5));

    // One weight load per tissue instead of per cell: ~5x less DRAM.
    EXPECT_LT(ri.result.dramBytes, rb.result.dramBytes / 3.0);
    EXPECT_GT(speedup(rb, ri), 2.0);
}

TEST(Lowering, InterPlanMustCoverLayer)
{
    Lowering low(kCfg);
    ExecutionPlan plan = uniformInterPlan(1, 8, 4);  // covers 8, not 10
    gpu::KernelTrace trace;
    EXPECT_THROW(low.lowerLayer(layer512(), plan, 0, trace),
                 std::invalid_argument);
}

TEST(Lowering, AllOnesTissuesFallBackToPerCellFlow)
{
    Lowering low(kCfg);
    const ExecutionPlan plan = uniformInterPlan(1, 10, 1);
    gpu::KernelTrace trace;
    low.lowerLayer(layer512(), plan, 0, trace);
    // Indistinguishable from the baseline: no gather/relevance overhead.
    ASSERT_EQ(trace.size(), 1u + 2u * 10u);
    EXPECT_EQ(trace[1].klass, gpu::KernelClass::Sgemv);
}

TEST(Lowering, DrsFlowMatchesAlgorithm3)
{
    Lowering low(kCfg);
    ExecutionPlan plan;
    plan.kind = PlanKind::IntraCellSw;
    plan.intra = {{0.5}};
    gpu::KernelTrace trace;
    low.lowerLayer(layer512(), plan, 0, trace);

    // Software path, 1 input Sgemm + per cell: Sgemv(U_o), ew, DRS
    // scan, Sgemv(U_fic, R), ew.
    ASSERT_EQ(trace.size(), 1u + 5u * 10u);
    EXPECT_EQ(trace[1].klass, gpu::KernelClass::Sgemv);
    EXPECT_EQ(trace[2].klass, gpu::KernelClass::ElementWise);
    EXPECT_EQ(trace[3].klass, gpu::KernelClass::Drs);
    EXPECT_EQ(trace[4].klass, gpu::KernelClass::Sgemv);
    EXPECT_TRUE(trace[4].hasRowSkipArg);
    EXPECT_FALSE(trace[4].divergenceFactor == 1.0);
    EXPECT_EQ(trace[5].klass, gpu::KernelClass::ElementWise);
}

TEST(Lowering, CrmFlowFusesTheScanIntoTheGateEpilogue)
{
    Lowering low(kCfg);
    ExecutionPlan plan;
    plan.kind = PlanKind::IntraCellHw;
    plan.intra = {{0.5}};
    gpu::KernelTrace trace;
    low.lowerLayer(layer512(), plan, 0, trace);

    // With the CRM the relevance flags come out of the U_o epilogue and
    // are compacted in the dispatch stage: no scan kernel, one ew.
    ASSERT_EQ(trace.size(), 1u + 3u * 10u);
    EXPECT_EQ(trace[1].klass, gpu::KernelClass::Sgemv);
    EXPECT_EQ(trace[1].name, "Sgemv(U_o, h)+flags");
    EXPECT_EQ(trace[2].klass, gpu::KernelClass::Sgemv);
    EXPECT_TRUE(trace[2].hasRowSkipArg);
    EXPECT_DOUBLE_EQ(trace[2].divergenceFactor, 1.0);
    EXPECT_EQ(trace[3].klass, gpu::KernelClass::ElementWise);
    for (const gpu::KernelDesc &k : trace)
        EXPECT_NE(k.klass, gpu::KernelClass::Drs);
}

TEST(Lowering, CombinedFlowSplitsTheTissueGemm)
{
    Lowering low(kCfg);
    ExecutionPlan plan;
    plan.kind = PlanKind::Combined;
    LayerInterPlan ip;
    ip.tissueSizes = {5, 5};
    plan.inter = {ip};
    plan.intra = {{0.5}};

    gpu::KernelTrace trace;
    low.lowerLayer({512, 512, 10}, plan, 0, trace);

    // input Sgemm + relevance + 2 tissues x (gather, Sgemm(U_o)+flags,
    // Sgemm(U_fic,R), ew): Combined always dispatches through the CRM,
    // so the scan rides the U_o epilogue and no Drs kernel launches.
    ASSERT_EQ(trace.size(), 2u + 2u * 4u);
    const gpu::KernelDesc &uo = trace[3];
    const gpu::KernelDesc &fic = trace[4];
    EXPECT_EQ(uo.name, "Sgemm(U_o, H_t)+flags");
    EXPECT_EQ(fic.name, "Sgemm(U_fic, H_t, R)");
    EXPECT_FALSE(uo.hasRowSkipArg);
    EXPECT_TRUE(fic.hasRowSkipArg);
    // U_o is a quarter of the united matrix's work.
    EXPECT_NEAR(uo.flops / (uo.flops + fic.flops / 0.5 * 1.0), 0.25,
                0.1);
    EXPECT_EQ(trace[5].klass, gpu::KernelClass::ElementWise);
    for (const gpu::KernelDesc &k : trace)
        EXPECT_NE(k.klass, gpu::KernelClass::Drs);
}

TEST(Lowering, CombinedWeightTrafficBelowInterAlone)
{
    // DRS inside the tissue saves compute/on-chip traffic, and a small
    // amount of weight traffic (rows trivial in *every* cell).
    NetworkExecutor ex(kCfg);
    const auto shape = NetworkShape::stacked(512, 512, 1, 20);

    ExecutionPlan inter = uniformInterPlan(1, 20, 5);
    ExecutionPlan comb = inter;
    comb.kind = PlanKind::Combined;
    comb.intra = {{0.6}};

    const RunReport ri = ex.run(shape, inter);
    const RunReport rc = ex.run(shape, comb);
    EXPECT_LE(rc.result.dramBytes, ri.result.dramBytes * 1.02);
    EXPECT_LT(rc.result.sharedBytes, ri.result.sharedBytes);
    EXPECT_LT(rc.result.flops, ri.result.flops);
}

TEST(Lowering, HwSkipSavesBandwidthSwBarely)
{
    Lowering low(kCfg);
    const LstmLayerShape shape = layer512();
    const double fic = 3.0 * 512 * 512 * 4;

    const auto hw = low.rowSkipSgemv(shape, fic, 0.6, true);
    const auto sw = low.rowSkipSgemv(shape, fic, 0.6, false);

    EXPECT_NEAR(hw.dramReadBytes, fic * 0.4 + 512 * 4, 1.0);
    EXPECT_GT(sw.dramReadBytes, fic * 0.9);       // coalescing waste
    EXPECT_GT(sw.divergenceFactor, 1.5);          // divergent warps
    EXPECT_DOUBLE_EQ(hw.divergenceFactor, 1.0);   // compacted
    EXPECT_EQ(hw.disabledThreads, sw.disabledThreads);
    EXPECT_TRUE(hw.hasRowSkipArg);
}

TEST(Lowering, RowSkipRejectsBadFraction)
{
    Lowering low(kCfg);
    EXPECT_THROW(low.rowSkipSgemv(layer512(), 1.0, 1.5, true),
                 std::invalid_argument);
}

TEST(Lowering, ZeroPruningPaysDivergenceAndCoalescing)
{
    NetworkExecutor ex(kCfg);
    const NetworkShape shape = NetworkShape::stacked(512, 512, 1, 20);

    ExecutionPlan base;
    ExecutionPlan zp;
    zp.kind = PlanKind::ZeroPruning;
    zp.pruneFraction = 0.37;

    const RunReport rb = ex.run(shape, base);
    const RunReport rz = ex.run(shape, zp);
    // Fig. 16: zero-pruning *degrades* performance on the GPU.
    EXPECT_LT(speedup(rb, rz), 1.0);
}

TEST(Lowering, QuantizedPlanShrinksWeightTraffic)
{
    NetworkExecutor ex(kCfg);
    const NetworkShape shape = NetworkShape::stacked(512, 512, 1, 20);

    ExecutionPlan fp32;
    ExecutionPlan q8;
    q8.quantMode = quant::QuantMode::Int8;
    ExecutionPlan q4;
    q4.quantMode = quant::QuantMode::Int4;

    const RunReport rf = ex.run(shape, fp32);
    const RunReport r8 = ex.run(shape, q8);
    const RunReport r4 = ex.run(shape, q4);

    // 4 B -> 1 B weights plus a 4 B/row scale stream shrink the
    // footprint just under 4x; *traffic* compresses a little more than
    // that because the smaller block also caches better in L2.
    const double c8 = rf.result.weightDramBytes / r8.result.weightDramBytes;
    const double c4 = rf.result.weightDramBytes / r4.result.weightDramBytes;
    EXPECT_GT(c8, 3.0);
    EXPECT_LT(c8, 8.0);
    EXPECT_GT(c4, c8);

    // Dequant work is accounted only for quantized runs.
    EXPECT_EQ(rf.result.quantWeightElems, 0.0);
    EXPECT_GT(r8.result.quantWeightElems, 0.0);

    // The memory-bound Sgemv phases get faster, never slower.
    EXPECT_LT(r8.result.timeUs, rf.result.timeUs);
}

TEST(Lowering, QuantizedKernelsAreTagged)
{
    Lowering low(kCfg);
    ExecutionPlan plan;
    plan.quantMode = quant::QuantMode::Int8;
    gpu::KernelTrace trace;
    low.lowerLayer(layer512(), plan, 0, trace);

    bool tagged = false;
    for (const gpu::KernelDesc &k : trace)
        tagged = tagged || k.name.find("[int8]") != std::string::npos;
    EXPECT_TRUE(tagged);
}

TEST(Lowering, ZeroPruningIgnoresQuantMode)
{
    // The CSR comparator is defined at fp32 (DESIGN.md §12): stamping a
    // quant mode on a ZeroPruning plan must not change its traffic.
    NetworkExecutor ex(kCfg);
    const NetworkShape shape = NetworkShape::stacked(512, 512, 1, 20);

    ExecutionPlan zp;
    zp.kind = PlanKind::ZeroPruning;
    zp.pruneFraction = 0.37;
    ExecutionPlan zp_q8 = zp;
    zp_q8.quantMode = quant::QuantMode::Int8;

    const RunReport rz = ex.run(shape, zp);
    const RunReport rq = ex.run(shape, zp_q8);
    EXPECT_DOUBLE_EQ(rq.result.weightDramBytes, rz.result.weightDramBytes);
    EXPECT_DOUBLE_EQ(rq.result.timeUs, rz.result.timeUs);
    EXPECT_EQ(rq.result.quantWeightElems, 0.0);
}

TEST(Lowering, QuantComposesWithCombinedPlan)
{
    // INT8 on top of tissues + DRS keeps shrinking the weight stream:
    // the composition must beat both standalone techniques (the Fig. 16
    // extension's acceptance gate, here at the lowering level).
    NetworkExecutor ex(kCfg);
    const NetworkShape shape = NetworkShape::stacked(512, 512, 1, 20);

    ExecutionPlan base;
    ExecutionPlan q8;
    q8.quantMode = quant::QuantMode::Int8;
    ExecutionPlan comb = uniformInterPlan(1, 20, 5);
    comb.kind = PlanKind::Combined;
    comb.intra = {{0.5}};
    ExecutionPlan comb_q8 = comb;
    comb_q8.quantMode = quant::QuantMode::Int8;

    const RunReport rb = ex.run(shape, base);
    const RunReport r8 = ex.run(shape, q8);
    const RunReport rc = ex.run(shape, comb);
    const RunReport rcq = ex.run(shape, comb_q8);

    EXPECT_LT(rcq.result.weightDramBytes, rc.result.weightDramBytes);
    EXPECT_GT(speedup(rb, rcq), speedup(rb, rc));
    EXPECT_GT(speedup(rb, rcq), speedup(rb, r8));
}

TEST(Lowering, SharedBytesPerMacCalibration)
{
    // Narrow tissue GEMMs pay more on-chip traffic than wide GEMMs,
    // and small hidden sizes less than large ones.
    EXPECT_LT(sgemmSharedBytesPerMac(512, 80),
              sgemmSharedBytesPerMac(512, 5));
    EXPECT_LT(sgemmSharedBytesPerMac(256, 5),
              sgemmSharedBytesPerMac(512, 5));
}

TEST(Executor, RunLayerMatchesManualLowering)
{
    NetworkExecutor ex(kCfg);
    ExecutionPlan plan;
    const RunReport r = ex.runLayer(layer512(), plan, 0);
    EXPECT_EQ(r.result.kernelCount, 1u + 2u * 10u);
    EXPECT_GT(r.result.timeUs, 0.0);
}

TEST(Executor, SpeedupAndSavingGuards)
{
    RunReport base;
    base.result.timeUs = 0.0;
    RunReport opt = base;
    EXPECT_THROW(speedup(base, opt), std::invalid_argument);
    EXPECT_THROW(energySavingPct(base, opt), std::invalid_argument);
}

} // namespace
