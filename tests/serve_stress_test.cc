/**
 * @file
 * Stress / soak tests for the serving engine under overload
 * (DESIGN.md §10). An open-loop burst submits 2-4x the queue capacity
 * from several producer threads and the suite checks the engine-level
 * liveness contract:
 *
 *   - no deadlock: every submitted future resolves (get() returns);
 *   - exactly-once: the terminal statuses partition the submissions
 *     (ok + shed + rejected + failed == submitted == completed);
 *   - stats are monotonic while sampled concurrently with serving;
 *   - the governor escalates under sustained pressure and relaxes
 *     back to rung 0 when load subsides (hysteresis, no flapping).
 *
 * Registered under the ctest label "stress" so CI can run the slice
 * explicitly (`ctest -L stress`); the default parameters keep each
 * case inside a tier-1-friendly time budget. The main burst also dumps
 * the metrics registry as JSON (MFLSTM_STRESS_METRICS_JSON overrides
 * the path) so CI can publish the run as an artifact.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <future>
#include <thread>
#include <vector>

#include "serve/engine.hh"
#include "tensor/rng.hh"

namespace {

using namespace mflstm;

nn::ModelConfig
clsConfig()
{
    nn::ModelConfig cfg;
    cfg.task = nn::TaskKind::Classification;
    cfg.vocab = 20;
    cfg.embedSize = 8;
    cfg.hiddenSize = 12;
    cfg.numLayers = 2;
    cfg.numClasses = 2;
    return cfg;
}

std::vector<std::vector<std::int32_t>>
seqs(std::size_t n, std::size_t len, std::uint64_t seed)
{
    tensor::Rng rng(seed);
    std::vector<std::vector<std::int32_t>> out(n);
    for (auto &s : out)
        for (std::size_t t = 0; t < len; ++t)
            s.push_back(static_cast<std::int32_t>(rng.integer(0, 19)));
    return out;
}

class StressTest : public ::testing::Test
{
  protected:
    StressTest()
        : model(clsConfig(), 77),
          mf(model, {gpu::GpuConfig::tegraX1(),
                     runtime::NetworkShape::stacked(512, 512, 2, 40)})
    {
        mf.calibrate(seqs(4, 8, 5));
        const auto ladder = mf.calibration().ladder();
        mf.setThresholds(ladder[2]);
        for (const auto &s : seqs(4, 8, 11))
            mf.runner().classify(s);
    }

    nn::LstmModel model;
    core::MemoryFriendlyLstm mf;
};

/** Tally of terminal statuses across a burst. */
struct StatusTally
{
    std::atomic<std::uint64_t> ok{0};
    std::atomic<std::uint64_t> shed{0};
    std::atomic<std::uint64_t> rejected{0};
    std::atomic<std::uint64_t> failed{0};

    void count(serve::Status s)
    {
        switch (s) {
        case serve::Status::Ok:
            ok.fetch_add(1);
            break;
        case serve::Status::ShedDeadline:
            shed.fetch_add(1);
            break;
        case serve::Status::RejectedCapacity:
            rejected.fetch_add(1);
            break;
        case serve::Status::Failed:
            failed.fetch_add(1);
            break;
        }
    }

    std::uint64_t total() const
    {
        return ok.load() + shed.load() + rejected.load() + failed.load();
    }
};

TEST_F(StressTest, OverloadBurstResolvesEveryFutureExactlyOnce)
{
    constexpr std::size_t kCapacity = 16;
    constexpr std::size_t kProducers = 4;
    constexpr std::size_t kPerProducer = 40;  // 160 total: 10x capacity

    serve::InferenceEngine::Options opts;
    opts.maxBatch = 8;
    opts.workers = 2;
    opts.plan = runtime::PlanKind::Combined;
    opts.queueCapacity = kCapacity;
    opts.admission = serve::AdmissionPolicy::RejectNew;
    serve::InferenceEngine engine(mf, opts);

    // Sample stats concurrently with the burst: every monotonic field
    // must only ever grow, and completed must never pass submitted.
    std::atomic<bool> stop{false};
    std::thread sampler([&] {
        serve::InferenceEngine::Stats prev;
        while (!stop.load()) {
            const auto st = engine.stats();
            ASSERT_GE(st.submitted, prev.submitted);
            ASSERT_GE(st.completed, prev.completed);
            ASSERT_GE(st.batches, prev.batches);
            ASSERT_GE(st.rejected, prev.rejected);
            ASSERT_GE(st.failed, prev.failed);
            ASSERT_GE(st.deadlineMisses, prev.deadlineMisses);
            ASSERT_LE(st.completed, st.submitted);
            prev = st;
            std::this_thread::yield();
        }
    });

    const auto inputs = seqs(kPerProducer, 10, 31);
    StatusTally tally;
    std::vector<std::thread> producers;
    for (std::size_t p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            serve::Session session =
                engine.session(static_cast<int>(p % 2));
            std::vector<std::future<serve::Response>> futures;
            // Open loop: fire everything without waiting, a mix of
            // no-deadline and tight-deadline requests.
            for (std::size_t i = 0; i < kPerProducer; ++i) {
                const double deadline = (i % 3 == 0) ? 0.5 : 0.0;
                futures.push_back(session.infer(inputs[i], deadline));
            }
            for (auto &f : futures) {
                const serve::Response r = f.get();  // must not hang
                tally.count(r.status);
                if (r.status == serve::Status::Ok) {
                    ASSERT_TRUE(r.executed);
                }
                if (r.status == serve::Status::RejectedCapacity) {
                    ASSERT_FALSE(r.executed);
                }
            }
        });
    }
    for (std::thread &t : producers)
        t.join();
    stop.store(true);
    sampler.join();

    // Exactly-once: the statuses partition the submissions.
    constexpr std::uint64_t kTotal = kProducers * kPerProducer;
    EXPECT_EQ(tally.total(), kTotal);

    const auto st = engine.stats();
    EXPECT_EQ(st.submitted, kTotal);
    EXPECT_EQ(st.completed, kTotal);
    EXPECT_EQ(st.ok, tally.ok.load());
    EXPECT_EQ(st.rejected, tally.rejected.load());
    EXPECT_EQ(st.failed, tally.failed.load());
    EXPECT_EQ(st.ok + st.deadlineMisses + st.rejected + st.failed,
              kTotal);
    EXPECT_EQ(st.shedBeforeRun + st.lateCompletions, st.deadlineMisses);
    EXPECT_LE(st.queueHighWater, kCapacity);
    EXPECT_GE(st.ok, 1u);

    // Publish the run's metrics for the CI artifact.
    const char *path = std::getenv("MFLSTM_STRESS_METRICS_JSON");
    std::ofstream os(path ? path : "serve_stress_metrics.json");
    engine.observer().metrics().writeJson(os);
    EXPECT_TRUE(os.good());
}

TEST_F(StressTest, DropOldestOverloadKeepsDrainingUnderFaults)
{
    serve::ProbabilisticFaultInjector inj(0.05, /*seed=*/3,
                                          /*max_faults=*/50);

    serve::InferenceEngine::Options opts;
    opts.maxBatch = 4;
    opts.workers = 2;
    opts.plan = runtime::PlanKind::Combined;
    opts.queueCapacity = 8;
    opts.admission = serve::AdmissionPolicy::DropOldest;
    opts.faultInjector = &inj;
    opts.maxRetries = 2;
    opts.retryBackoffMs = 0.01;
    serve::InferenceEngine engine(mf, opts);
    serve::Session session = engine.session();

    const auto inputs = seqs(30, 10, 41);
    StatusTally tally;
    std::vector<std::future<serve::Response>> futures;
    for (std::size_t rep = 0; rep < 3; ++rep)
        for (const auto &s : inputs)
            futures.push_back(session.infer(s));
    for (auto &f : futures)
        tally.count(f.get().status);

    EXPECT_EQ(tally.total(), futures.size());
    const auto st = engine.stats();
    EXPECT_EQ(st.completed, futures.size());
    // DropOldest evictions surface as RejectedCapacity on the victim.
    EXPECT_EQ(st.evicted, tally.rejected.load());
    EXPECT_EQ(st.rejected, tally.rejected.load());
}

TEST_F(StressTest, BlockWithTimeoutOverloadNeverDeadlocks)
{
    serve::InferenceEngine::Options opts;
    opts.maxBatch = 4;
    opts.workers = 1;
    opts.plan = runtime::PlanKind::Combined;
    opts.queueCapacity = 4;
    opts.admission = serve::AdmissionPolicy::BlockWithTimeout;
    opts.admitTimeoutMs = 1.0;
    serve::InferenceEngine engine(mf, opts);

    const auto inputs = seqs(20, 10, 51);
    StatusTally tally;
    std::vector<std::thread> producers;
    for (std::size_t p = 0; p < 2; ++p) {
        producers.emplace_back([&] {
            serve::Session session = engine.session();
            std::vector<std::future<serve::Response>> futures;
            for (const auto &s : inputs)
                futures.push_back(session.infer(s));
            for (auto &f : futures)
                tally.count(f.get().status);
        });
    }
    for (std::thread &t : producers)
        t.join();

    EXPECT_EQ(tally.total(), 2 * inputs.size());
    EXPECT_EQ(engine.stats().completed, 2 * inputs.size());
    EXPECT_EQ(tally.failed.load(), 0u);
}

TEST_F(StressTest, GovernorEscalatesUnderLoadAndRelaxesAfter)
{
    const auto full = mf.calibration().ladder();

    serve::InferenceEngine::Options opts;
    opts.maxBatch = 4;
    opts.workers = 1;
    opts.plan = runtime::PlanKind::Combined;
    opts.governorLadder = {full[2], full[6], full[10]};
    opts.planningSequences = seqs(4, 8, 11);
    // Aggressive control so a short burst exercises both directions.
    opts.governor.highQueuePerWorker = 4.0;
    opts.governor.lowQueuePerWorker = 1.0;
    opts.governor.dwellTicks = 2;
    serve::InferenceEngine engine(mf, opts);
    serve::Session session = engine.session();

    // Phase 1 — overload: open-loop burst far past what one worker
    // retires, so queue depth per worker stays above the escalate
    // threshold for many consecutive governor ticks.
    const auto inputs = seqs(60, 12, 61);
    std::vector<std::future<serve::Response>> futures;
    for (const auto &s : inputs)
        futures.push_back(session.infer(s));
    for (auto &f : futures)
        ASSERT_NE(f.get().status, serve::Status::Failed);

    const auto mid = engine.stats();
    EXPECT_GE(mid.governorStepsUp, 1u) << "governor never escalated";

    // Phase 2 — calm: closed-loop trickle (one in flight at a time),
    // so every governor tick sees an empty queue and steps back down.
    for (std::size_t i = 0; i < 16; ++i)
        ASSERT_EQ(session.infer(inputs[i % inputs.size()]).get().status,
                  serve::Status::Ok);

    const auto st = engine.stats();
    EXPECT_GE(st.governorStepsDown, 1u) << "governor never relaxed";
    EXPECT_EQ(engine.activeRung(), 0u) << "did not return to AO";

    // Hysteresis: with dwellTicks = 2 between transitions, the total
    // transition count is bounded by half the control ticks (one tick
    // per batch) — a flapping governor would exceed it.
    const std::uint64_t transitions =
        st.governorStepsUp + st.governorStepsDown;
    EXPECT_LE(transitions, st.batches / 2 + 1);
}

} // namespace
