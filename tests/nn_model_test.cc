/**
 * @file
 * Tests for the model heads (embedding, linear, softmax) and the
 * end-to-end LstmModel forward paths.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "nn/model.hh"
#include "tensor/ops.hh"

namespace {

using namespace mflstm;
using namespace mflstm::nn;

ModelConfig
smallClassifier()
{
    ModelConfig cfg;
    cfg.task = TaskKind::Classification;
    cfg.vocab = 12;
    cfg.embedSize = 6;
    cfg.hiddenSize = 8;
    cfg.numLayers = 2;
    cfg.numClasses = 3;
    return cfg;
}

ModelConfig
smallLm()
{
    ModelConfig cfg;
    cfg.task = TaskKind::LanguageModel;
    cfg.vocab = 10;
    cfg.embedSize = 5;
    cfg.hiddenSize = 7;
    cfg.numLayers = 1;
    return cfg;
}

TEST(Softmax, SumsToOneAndOrdersPreserved)
{
    tensor::Vector v{1.0f, 3.0f, 2.0f};
    softmaxInplace(v.span());
    float sum = 0.0f;
    for (std::size_t i = 0; i < 3; ++i)
        sum += v[i];
    EXPECT_NEAR(sum, 1.0f, 1e-6f);
    EXPECT_GT(v[1], v[2]);
    EXPECT_GT(v[2], v[0]);
}

TEST(Softmax, StableForLargeLogits)
{
    tensor::Vector v{1000.0f, 1000.0f};
    softmaxInplace(v.span());
    EXPECT_NEAR(v[0], 0.5f, 1e-6f);
    EXPECT_FALSE(std::isnan(v[1]));
}

TEST(CrossEntropy, PerfectAndWrongPredictions)
{
    tensor::Vector p{0.0f, 1.0f};
    EXPECT_NEAR(crossEntropy(p.span(), 1), 0.0f, 1e-6f);
    // Zero probability is clamped, not infinite.
    EXPECT_LT(crossEntropy(p.span(), 0), 30.0f);
    EXPECT_GT(crossEntropy(p.span(), 0), 20.0f);
}

TEST(Linear, ForwardAffine)
{
    LinearParams p(2, 2);
    p.w(0, 0) = 1.0f;
    p.w(1, 1) = 2.0f;
    p.b[0] = 0.5f;

    const tensor::Vector y = linearForward(p, tensor::Vector{3.0f, 4.0f});
    EXPECT_FLOAT_EQ(y[0], 3.5f);
    EXPECT_FLOAT_EQ(y[1], 8.0f);
}

TEST(LstmModel, ConstructionValidatesConfig)
{
    ModelConfig bad = smallClassifier();
    bad.hiddenSize = 0;
    EXPECT_THROW(LstmModel(bad, 1), std::invalid_argument);

    ModelConfig one_class = smallClassifier();
    one_class.numClasses = 1;
    EXPECT_THROW(LstmModel(one_class, 1), std::invalid_argument);
}

TEST(LstmModel, LayerInputSizesChain)
{
    const LstmModel m(smallClassifier(), 42);
    ASSERT_EQ(m.layers().size(), 2u);
    EXPECT_EQ(m.layers()[0].inputSize(), 6u);   // embed size
    EXPECT_EQ(m.layers()[1].inputSize(), 8u);   // hidden size
    EXPECT_EQ(m.head().outSize(), 3u);
}

TEST(LstmModel, EmbedLooksUpRows)
{
    const LstmModel m(smallClassifier(), 42);
    const std::int32_t toks[] = {0, 5};
    const auto vecs = m.embed(toks);
    ASSERT_EQ(vecs.size(), 2u);
    for (std::size_t j = 0; j < 6; ++j) {
        EXPECT_FLOAT_EQ(vecs[0][j], m.embedding().table(0, j));
        EXPECT_FLOAT_EQ(vecs[1][j], m.embedding().table(5, j));
    }
}

TEST(LstmModel, EmbedRejectsOutOfVocab)
{
    const LstmModel m(smallClassifier(), 42);
    const std::int32_t toks[] = {12};
    EXPECT_THROW(m.embed(toks), std::out_of_range);
}

TEST(LstmModel, ClassifyShapeAndDeterminism)
{
    const LstmModel m(smallClassifier(), 42);
    const std::int32_t toks[] = {1, 2, 3, 4};
    const auto a = m.classify(toks);
    const auto b = m.classify(toks);
    ASSERT_EQ(a.size(), 3u);
    EXPECT_EQ(a, b);
}

TEST(LstmModel, ClassifyRejectsEmpty)
{
    const LstmModel m(smallClassifier(), 42);
    EXPECT_THROW(m.classify(std::span<const std::int32_t>{}),
                 std::invalid_argument);
}

TEST(LstmModel, LmLogitsPerStep)
{
    const LstmModel m(smallLm(), 7);
    const std::int32_t toks[] = {1, 2, 3};
    const auto logits = m.lmLogits(toks);
    ASSERT_EQ(logits.size(), 3u);
    for (const auto &l : logits)
        EXPECT_EQ(l.size(), 10u);
}

TEST(LstmModel, DifferentSeedsDifferentOutputs)
{
    const LstmModel a(smallClassifier(), 1);
    const LstmModel b(smallClassifier(), 2);
    const std::int32_t toks[] = {1, 2, 3};
    EXPECT_NE(a.classify(toks), b.classify(toks));
}

TEST(LstmModel, ParameterCountMatchesFormula)
{
    const ModelConfig cfg = smallClassifier();
    const LstmModel m(cfg, 3);
    const std::size_t e = cfg.vocab * cfg.embedSize;
    const std::size_t l0 =
        4 * (cfg.hiddenSize * cfg.embedSize +
             cfg.hiddenSize * cfg.hiddenSize + cfg.hiddenSize);
    const std::size_t l1 =
        4 * (2 * cfg.hiddenSize * cfg.hiddenSize + cfg.hiddenSize);
    const std::size_t head =
        cfg.numClasses * cfg.hiddenSize + cfg.numClasses;
    EXPECT_EQ(m.parameterCount(), e + l0 + l1 + head);
}

TEST(LstmModel, RunLayersTracesPerLayer)
{
    const LstmModel m(smallClassifier(), 42);
    const std::int32_t toks[] = {1, 2, 3, 4, 5};
    std::vector<std::vector<LstmCellTrace>> traces;
    const auto top = m.runLayers(m.embed(toks), &traces);
    ASSERT_EQ(traces.size(), 2u);
    EXPECT_EQ(traces[0].size(), 5u);
    EXPECT_EQ(traces[1].size(), 5u);
    EXPECT_EQ(top.size(), 5u);
    // The top layer's trace h must equal the returned outputs.
    EXPECT_EQ(traces[1].back().h, top.back());
}

TEST(Metrics, AccuracyOnTrivialData)
{
    const LstmModel m(smallClassifier(), 42);
    std::vector<Sample> data;
    // Label every sample with whatever the model already predicts: the
    // accuracy helper must then report 1.0.
    for (std::int32_t t = 0; t < 5; ++t) {
        Sample s;
        s.tokens = {t, t, t};
        s.label = static_cast<std::int32_t>(
            tensor::argmax(m.classify(s.tokens).span()));
        data.push_back(s);
    }
    EXPECT_DOUBLE_EQ(classificationAccuracy(m, data), 1.0);
}

TEST(Metrics, LmPerplexityAtLeastOne)
{
    const LstmModel m(smallLm(), 7);
    std::vector<std::vector<std::int32_t>> seqs = {{1, 2, 3, 4},
                                                   {5, 6, 7}};
    EXPECT_GE(lmPerplexity(m, seqs), 1.0);
    const double acc = lmNextTokenAccuracy(m, seqs);
    EXPECT_GE(acc, 0.0);
    EXPECT_LE(acc, 1.0);
}

} // namespace
