/**
 * @file
 * Per-request lifecycle observability tests for the serving layer: the
 * Response must carry the queue / batch-wait / exec split, the split
 * must be consistent with the end-to-end latency, the engine's observer
 * must expose the matching "serve.*_ms" histograms, and every completed
 * request must leave queue/batch-wait/exec/complete spans on the serve
 * process track of the Chrome trace.
 */

#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "serve/engine.hh"
#include "tensor/rng.hh"

namespace {

using namespace mflstm;

nn::ModelConfig
clsConfig()
{
    nn::ModelConfig cfg;
    cfg.task = nn::TaskKind::Classification;
    cfg.vocab = 20;
    cfg.embedSize = 8;
    cfg.hiddenSize = 12;
    cfg.numLayers = 2;
    cfg.numClasses = 2;
    return cfg;
}

std::vector<std::vector<std::int32_t>>
seqs(std::size_t n, std::size_t len, std::uint64_t seed)
{
    tensor::Rng rng(seed);
    std::vector<std::vector<std::int32_t>> out(n);
    for (auto &s : out)
        for (std::size_t t = 0; t < len; ++t)
            s.push_back(static_cast<std::int32_t>(rng.integer(0, 19)));
    return out;
}

class LifecycleTest : public ::testing::Test
{
  protected:
    LifecycleTest()
        : model(clsConfig(), 77),
          mf(model, {gpu::GpuConfig::tegraX1(),
                     runtime::NetworkShape::stacked(512, 512, 2, 40)})
    {
        mf.calibrate(seqs(4, 8, 5));
        const auto ladder = mf.calibration().ladder();
        mf.setThresholds(ladder[ladder.size() / 2]);
        for (const auto &s : seqs(4, 8, 11))
            mf.runner().classify(s);
    }

    serve::InferenceEngine::Options engineOptions() const
    {
        serve::InferenceEngine::Options o;
        o.maxBatch = 8;
        o.workers = 2;
        o.plan = runtime::PlanKind::Combined;
        return o;
    }

    std::vector<serve::Response> runRequests(serve::InferenceEngine &eng,
                                             std::size_t n)
    {
        serve::Session session = eng.session();
        std::vector<std::future<serve::Response>> futures;
        for (const auto &s : seqs(n, 12, 23))
            futures.push_back(session.infer(s));
        std::vector<serve::Response> out;
        for (auto &f : futures)
            out.push_back(f.get());
        return out;
    }

    nn::LstmModel model;
    core::MemoryFriendlyLstm mf;
};

TEST_F(LifecycleTest, ResponseCarriesLifecycleSplit)
{
    serve::InferenceEngine engine(mf, engineOptions());
    const auto responses = runRequests(engine, 12);

    for (const serve::Response &r : responses) {
        ASSERT_EQ(r.status, serve::Status::Ok);
        EXPECT_GE(r.queueMs, 0.0);
        EXPECT_GE(r.batchWaitMs, 0.0);
        // An executed request spent real time in the worker.
        EXPECT_GT(r.execMs, 0.0);
        // The stages are a decomposition of the end-to-end latency;
        // clock-read granularity is the only slack allowed.
        EXPECT_LE(r.queueMs + r.batchWaitMs + r.execMs,
                  r.latencyMs + 0.5);
        EXPECT_GE(r.latencyMs, r.execMs);
    }
}

TEST_F(LifecycleTest, ObserverExposesStageHistograms)
{
    serve::InferenceEngine engine(mf, engineOptions());
    const std::size_t n = runRequests(engine, 10).size();

    const obs::MetricsRegistry &m = engine.observer().metrics();
    for (const char *name :
         {"serve.latency_ms", "serve.queue_ms", "serve.batch_wait_ms",
          "serve.exec_ms"}) {
        const obs::Histogram *h = m.findHistogram(name);
        ASSERT_NE(h, nullptr) << name;
        EXPECT_GE(h->count(), n) << name;
        EXPECT_GE(h->quantile(0.95), h->quantile(0.50)) << name;
    }
}

TEST_F(LifecycleTest, TracerRecordsSpansOnServeTrack)
{
    serve::InferenceEngine engine(mf, engineOptions());
    const auto responses = runRequests(engine, 8);

    std::size_t queue = 0, exec = 0, complete = 0;
    for (const obs::TraceSpan &s :
         engine.observer().tracer().spans()) {
        if (s.pid != obs::SpanTracer::kServePid ||
            s.category != "request")
            continue;
        if (s.name == "queue")
            ++queue;
        else if (s.name == "exec")
            ++exec;
        else if (s.name == "complete")
            ++complete;
        // Every lifecycle span names its request and terminal status.
        bool has_id = false;
        for (const auto &kv : s.numArgs)
            has_id |= kv.first == "id";
        EXPECT_TRUE(has_id) << s.name;
    }
    // One completion marker per request; exec spans only for requests
    // that actually ran (here: all of them).
    EXPECT_EQ(complete, responses.size());
    EXPECT_EQ(exec, responses.size());
    EXPECT_GT(queue, 0u);
}

TEST_F(LifecycleTest, SharedObserverReceivesLifecycle)
{
    // The engine can observe into a caller-owned Observer; lifecycle
    // histograms land there, not in a private one.
    obs::Observer obs;
    serve::InferenceEngine::Options o = engineOptions();
    o.observer = &obs;
    serve::InferenceEngine engine(mf, o);
    runRequests(engine, 6);

    const obs::Histogram *h =
        obs.metrics().findHistogram("serve.exec_ms");
    ASSERT_NE(h, nullptr);
    EXPECT_GE(h->count(), 6u);
    EXPECT_EQ(&engine.observer(), &obs);
}

} // namespace
