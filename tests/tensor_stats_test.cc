/**
 * @file
 * Tests for the streaming statistics used by the context-link predictor
 * (Eq. 6) and the Rng determinism guarantees.
 */

#include <gtest/gtest.h>

#include "tensor/rng.hh"
#include "tensor/stats.hh"

namespace {

using namespace mflstm::tensor;

TEST(RunningStat, MeanVarianceExtrema)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);

    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Histogram, ExpectationOfPointMass)
{
    Histogram h(-1.0, 1.0, 20);
    for (int i = 0; i < 100; ++i)
        h.add(0.55);
    // All mass in one bin; expectation is that bin's centre.
    EXPECT_NEAR(h.expectation(), 0.55, 0.05);
}

TEST(Histogram, ClampsOutOfRangeToEdges)
{
    Histogram h(-1.0, 1.0, 4);
    h.add(-100.0);
    h.add(100.0);
    EXPECT_EQ(h.samples(), 2u);
    EXPECT_NEAR(h.probability(0), 0.5, 1e-12);
    EXPECT_NEAR(h.probability(3), 0.5, 1e-12);
}

TEST(Histogram, ExpectationMatchesSampleMean)
{
    Rng rng(7);
    Histogram h(-1.0, 1.0, 200);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.uniform(-0.8f, 0.4f);
        h.add(x);
        sum += x;
    }
    EXPECT_NEAR(h.expectation(), sum / n, 0.01);
}

TEST(Histogram, RejectsDegenerateConfig)
{
    EXPECT_THROW(Histogram(0.0, 0.0, 4), std::invalid_argument);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(VectorDistribution, ExpectationIsPerElement)
{
    VectorDistribution dist(2, -1.0, 1.0, 100);
    Rng rng(11);
    for (int i = 0; i < 5000; ++i) {
        Vector v(2);
        v[0] = rng.uniform(-0.5f, 0.5f);   // mean ~0
        v[1] = rng.uniform(0.2f, 0.8f);    // mean ~0.5
        dist.observe(v);
    }
    const Vector e = dist.expectation();
    EXPECT_NEAR(e[0], 0.0f, 0.05f);
    EXPECT_NEAR(e[1], 0.5f, 0.05f);
    EXPECT_EQ(dist.samples(), 5000u);
}

TEST(VectorDistribution, RejectsDimMismatch)
{
    VectorDistribution dist(3, -1.0, 1.0, 10);
    Vector v(2);
    EXPECT_THROW(dist.observe(v), std::invalid_argument);
}

TEST(Rng, SameSeedSameStream)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_FLOAT_EQ(a.uniform(0.0f, 1.0f), b.uniform(0.0f, 1.0f));
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    bool differs = false;
    for (int i = 0; i < 10 && !differs; ++i)
        differs = a.uniform(0.0f, 1.0f) != b.uniform(0.0f, 1.0f);
    EXPECT_TRUE(differs);
}

TEST(Rng, XavierBoundRespected)
{
    Rng rng(5);
    Matrix m(64, 64);
    rng.fillXavier(m, 64, 64);
    const float bound = std::sqrt(6.0f / 128.0f);
    for (std::size_t i = 0; i < m.size(); ++i) {
        EXPECT_LE(m.data()[i], bound);
        EXPECT_GE(m.data()[i], -bound);
    }
}

TEST(Rng, IntegerInRangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.integer(0, 3);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 3);
        saw_lo |= v == 0;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng a(42);
    Rng child = a.fork();
    // The fork must not replay the parent's stream.
    Rng parent_clone(42);
    parent_clone.fork();
    EXPECT_FLOAT_EQ(child.uniform(0.0f, 1.0f),
                    Rng(42).fork().uniform(0.0f, 1.0f));
}

} // namespace
