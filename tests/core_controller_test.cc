/**
 * @file
 * Tests for the online user-oriented threshold controller: climbing on
 * slack, backing off on violations, hysteresis under noisy feedback,
 * and convergence to the user's best rung.
 */

#include <gtest/gtest.h>

#include "core/controller.hh"
#include "tensor/rng.hh"

namespace {

using namespace mflstm;
using namespace mflstm::core;

std::vector<ThresholdSet>
someLadder(std::size_t n = 11)
{
    std::vector<ThresholdSet> ladder;
    for (std::size_t i = 0; i < n; ++i)
        ladder.push_back({static_cast<double>(i),
                          static_cast<double>(i) / 20.0});
    return ladder;
}

TEST(Controller, ConstructionValidates)
{
    EXPECT_THROW(UserOrientedController({}, 0.9),
                 std::invalid_argument);
    EXPECT_THROW(UserOrientedController(someLadder(), 1.5),
                 std::invalid_argument);

    ControllerConfig cfg;
    cfg.initialIndex = 99;  // clamped to the top rung
    UserOrientedController c(someLadder(), 0.9, cfg);
    EXPECT_EQ(c.currentIndex(), 10u);
}

TEST(Controller, ClimbsWhileAccuracyHasSlack)
{
    UserOrientedController c(someLadder(), 0.90);
    EXPECT_EQ(c.currentIndex(), 0u);
    for (int i = 0; i < 5; ++i)
        c.observe(0.95);  // comfortably above the preference
    EXPECT_EQ(c.currentIndex(), 5u);
    EXPECT_DOUBLE_EQ(c.current().alphaInter, 5.0);
}

TEST(Controller, StopsAtTheTopRung)
{
    UserOrientedController c(someLadder(3), 0.5);
    for (int i = 0; i < 10; ++i)
        c.observe(0.99);
    EXPECT_EQ(c.currentIndex(), 2u);
}

TEST(Controller, BacksOffOnViolation)
{
    ControllerConfig cfg;
    cfg.initialIndex = 6;
    UserOrientedController c(someLadder(), 0.90, cfg);
    c.observe(0.80);  // user unhappy
    EXPECT_EQ(c.currentIndex(), 5u);
}

TEST(Controller, CooldownPreventsOscillation)
{
    ControllerConfig cfg;
    cfg.initialIndex = 5;
    cfg.cooldown = 3;
    UserOrientedController c(someLadder(), 0.90, cfg);

    c.observe(0.50);  // back off to 4, start cooldown
    EXPECT_EQ(c.currentIndex(), 4u);
    // Good scores during cooldown must not climb back immediately.
    c.observe(0.99);
    c.observe(0.99);
    c.observe(0.99);
    EXPECT_EQ(c.currentIndex(), 4u);
    // After the cooldown drains, climbing resumes.
    c.observe(0.99);
    EXPECT_EQ(c.currentIndex(), 5u);
}

TEST(Controller, HoldsInsideTheDeadband)
{
    ControllerConfig cfg;
    cfg.initialIndex = 4;
    cfg.climbMargin = 0.02;
    UserOrientedController c(someLadder(), 0.90, cfg);
    // Accuracy meets the preference but without climbing slack.
    for (int i = 0; i < 6; ++i)
        c.observe(0.905);
    EXPECT_EQ(c.currentIndex(), 4u);
}

TEST(Controller, FloorsAtBaseline)
{
    UserOrientedController c(someLadder(), 0.99);
    for (int i = 0; i < 5; ++i)
        c.observe(0.10);
    EXPECT_EQ(c.currentIndex(), 0u);
}

TEST(Controller, ConvergesToTheUsersBestRung)
{
    // Ground truth: accuracy degrades with the rung; the user's floor
    // admits rungs 0..6. Noisy observations.
    auto accuracy_at = [](std::size_t idx) {
        return 0.98 - 0.01 * static_cast<double>(idx);
    };
    tensor::Rng rng(7);

    ControllerConfig cfg;
    cfg.climbMargin = 0.005;
    UserOrientedController c(someLadder(), 0.915, cfg);
    for (int step = 0; step < 200; ++step) {
        const double noisy =
            accuracy_at(c.currentIndex()) + rng.normal(0.0f, 0.004f);
        c.observe(noisy);
    }
    // Settles in the neighbourhood of rung 6 (0.92 expected accuracy).
    EXPECT_GE(c.currentIndex(), 5u);
    EXPECT_LE(c.currentIndex(), 7u);
}

TEST(Controller, PreferenceChangeRetunes)
{
    UserOrientedController c(someLadder(), 0.90);
    for (int i = 0; i < 8; ++i)
        c.observe(0.95);
    const std::size_t relaxed = c.currentIndex();
    EXPECT_GT(relaxed, 4u);

    c.setPreferredAccuracy(0.97);
    EXPECT_THROW(c.setPreferredAccuracy(-0.1), std::invalid_argument);
    c.observe(0.95);  // now below the stricter preference
    EXPECT_LT(c.currentIndex(), relaxed);
}

TEST(Controller, EstimateTracksEma)
{
    UserOrientedController c(someLadder(), 0.5);
    c.observe(0.8);
    EXPECT_DOUBLE_EQ(c.estimate(), 0.8);
    EXPECT_EQ(c.observations(), 1u);
}

} // namespace
