/**
 * @file
 * Unit tests for the BLAS-style kernels (tensor/ops.hh), including the
 * row-skipping GEMV contract that Dynamic Row Skip relies on.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/matrix.hh"
#include "tensor/ops.hh"
#include "tensor/rng.hh"

namespace {

using namespace mflstm::tensor;

Matrix
randomMatrix(std::size_t r, std::size_t c, std::uint64_t seed)
{
    Rng rng(seed);
    Matrix m(r, c);
    rng.fillUniform(m, -1.0f, 1.0f);
    return m;
}

Vector
randomVector(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    Vector v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = rng.uniform(-1.0f, 1.0f);
    return v;
}

TEST(Gemv, MatchesManualSmallCase)
{
    Matrix a(2, 3);
    float vals[] = {1, 2, 3, 4, 5, 6};
    std::copy(std::begin(vals), std::end(vals), a.data());
    Vector x{1.0f, 0.0f, -1.0f};

    Vector y;
    gemv(a, x, y);
    ASSERT_EQ(y.size(), 2u);
    EXPECT_FLOAT_EQ(y[0], 1.0f - 3.0f);
    EXPECT_FLOAT_EQ(y[1], 4.0f - 6.0f);
}

TEST(Gemv, BiasVariantAddsBias)
{
    Matrix a(2, 2);
    a(0, 0) = 1.0f;
    a(1, 1) = 1.0f;
    Vector x{2.0f, 3.0f};
    Vector b{10.0f, 20.0f};

    Vector y;
    gemv(a, x, b, y);
    EXPECT_FLOAT_EQ(y[0], 12.0f);
    EXPECT_FLOAT_EQ(y[1], 23.0f);
}

TEST(GemvRowSkip, SkippedRowsAreZeroOthersExact)
{
    const Matrix a = randomMatrix(8, 5, 42);
    const Vector x = randomVector(5, 43);

    Vector full;
    gemv(a, x, full);
    Vector skipped;
    gemvRowSkip(a, x, {1, 4, 7}, skipped);

    for (std::size_t r = 0; r < 8; ++r) {
        if (r == 1 || r == 4 || r == 7)
            EXPECT_FLOAT_EQ(skipped[r], 0.0f) << "row " << r;
        else
            EXPECT_FLOAT_EQ(skipped[r], full[r]) << "row " << r;
    }
}

TEST(GemvRowSkip, EmptySkipListMatchesGemv)
{
    const Matrix a = randomMatrix(6, 6, 1);
    const Vector x = randomVector(6, 2);

    Vector full, skipped;
    gemv(a, x, full);
    gemvRowSkip(a, x, {}, skipped);
    EXPECT_EQ(full, skipped);
}

TEST(GemvT, MatchesExplicitTranspose)
{
    const Matrix a = randomMatrix(4, 7, 5);
    const Vector x = randomVector(4, 6);

    Vector y;
    gemvT(a, x, y);

    ASSERT_EQ(y.size(), 7u);
    for (std::size_t c = 0; c < 7; ++c) {
        float expect = 0.0f;
        for (std::size_t r = 0; r < 4; ++r)
            expect += a(r, c) * x[r];
        EXPECT_NEAR(y[c], expect, 1e-5f);
    }
}

TEST(Ger, Rank1UpdateAccumulates)
{
    Matrix a(2, 3, 1.0f);
    Vector x{1.0f, 2.0f};
    Vector y{3.0f, 4.0f, 5.0f};

    ger(2.0f, x, y, a);
    EXPECT_FLOAT_EQ(a(0, 0), 1.0f + 2.0f * 1.0f * 3.0f);
    EXPECT_FLOAT_EQ(a(1, 2), 1.0f + 2.0f * 2.0f * 5.0f);
}

TEST(Gemm, MatchesNaiveReference)
{
    const Matrix a = randomMatrix(33, 70, 7);
    const Matrix b = randomMatrix(70, 41, 8);

    Matrix c;
    gemm(a, b, c);

    ASSERT_EQ(c.rows(), 33u);
    ASSERT_EQ(c.cols(), 41u);
    for (std::size_t i = 0; i < 33; i += 11) {
        for (std::size_t j = 0; j < 41; j += 13) {
            float expect = 0.0f;
            for (std::size_t k = 0; k < 70; ++k)
                expect += a(i, k) * b(k, j);
            EXPECT_NEAR(c(i, j), expect, 1e-4f);
        }
    }
}

TEST(Gemm, IdentityIsNoop)
{
    const Matrix a = randomMatrix(5, 5, 9);
    Matrix eye(5, 5);
    for (std::size_t i = 0; i < 5; ++i)
        eye(i, i) = 1.0f;

    Matrix c;
    gemm(a, eye, c);
    for (std::size_t i = 0; i < 5; ++i)
        for (std::size_t j = 0; j < 5; ++j)
            EXPECT_NEAR(c(i, j), a(i, j), 1e-6f);
}

TEST(GemmBias, BroadcastsDownColumns)
{
    Matrix a(2, 2);
    a(0, 0) = 1.0f;
    a(1, 1) = 1.0f;
    Matrix b(2, 3, 1.0f);
    Vector bias{5.0f, -5.0f};

    Matrix c;
    gemmBias(a, b, bias, c);
    for (std::size_t j = 0; j < 3; ++j) {
        EXPECT_FLOAT_EQ(c(0, j), 1.0f + 5.0f);
        EXPECT_FLOAT_EQ(c(1, j), 1.0f - 5.0f);
    }
}

TEST(Elementwise, AddHadamardAxpy)
{
    Vector a{1.0f, 2.0f};
    Vector b{3.0f, 5.0f};
    Vector out(2);

    add(a.span(), b.span(), out.span());
    EXPECT_FLOAT_EQ(out[1], 7.0f);

    hadamard(a.span(), b.span(), out.span());
    EXPECT_FLOAT_EQ(out[1], 10.0f);

    axpy(2.0f, a.span(), b.span());
    EXPECT_FLOAT_EQ(b[0], 5.0f);
    EXPECT_FLOAT_EQ(b[1], 9.0f);
}

TEST(Reductions, SumAbsDotArgmaxNorm)
{
    Vector a{-1.0f, 2.0f, -3.0f};
    EXPECT_FLOAT_EQ(sumAbs(a.span()), 6.0f);

    Vector b{1.0f, 1.0f, 1.0f};
    EXPECT_FLOAT_EQ(dot(a.span(), b.span()), -2.0f);

    EXPECT_EQ(argmax(a.span()), 1u);
    EXPECT_NEAR(norm2(b.span()), std::sqrt(3.0f), 1e-6f);
}

TEST(Reductions, RowAbsSumsPerRow)
{
    Matrix m(2, 2);
    m(0, 0) = -1.0f;
    m(0, 1) = 2.0f;
    m(1, 0) = 3.0f;
    m(1, 1) = -4.0f;

    const Vector d = rowAbsSums(m);
    EXPECT_FLOAT_EQ(d[0], 3.0f);
    EXPECT_FLOAT_EQ(d[1], 7.0f);
}

TEST(Reductions, MeanAbsDiff)
{
    Vector a{1.0f, 2.0f};
    Vector b{2.0f, 4.0f};
    EXPECT_FLOAT_EQ(meanAbsDiff(a.span(), b.span()), 1.5f);
    EXPECT_FLOAT_EQ(meanAbsDiff(a.span(), a.span()), 0.0f);
}

} // namespace
