/**
 * Auto-scheduler search (DESIGN.md §14): request validation, layer
 * option enumeration, determinism of the full search, and the
 * dominance guarantee — the chosen plan is never worse than the best
 * preset on simulated time and DRAM bytes.
 */

#include <gtest/gtest.h>

#include <string>

#include "gpu/config.hh"
#include "runtime/executor.hh"
#include "sched/tuner.hh"

namespace mflstm {
namespace sched {
namespace {

/** A 2-layer request with active break and skip statistics. */
TuneRequest
smallRequest()
{
    TuneRequest req;
    req.shape = runtime::NetworkShape::stacked(64, 128, 2, 20);
    req.mts = 4;
    req.modelHidden = 128;
    core::LayerApproxStats s;
    s.sequences = 10;
    s.links = 190;
    s.breaks = 60;
    s.cells = 200;
    s.skippedRows = 0.4 * 200 * 128;
    req.stats = {s, s};
    return req;
}

TEST(TuneRequestValidate, RejectsInconsistentRequests)
{
    TuneRequest req = smallRequest();
    req.stats.pop_back();  // stats must map 1:1 onto layers
    EXPECT_THROW(req.validate(), std::invalid_argument);

    req = smallRequest();
    req.modelHidden = 0;
    EXPECT_THROW(req.validate(), std::invalid_argument);

    req = smallRequest();
    req.pruneFraction = 1.5;
    EXPECT_THROW(req.validate(), std::invalid_argument);

    req = smallRequest();
    req.batch = 0;
    EXPECT_THROW(req.validate(), std::invalid_argument);

    EXPECT_NO_THROW(smallRequest().validate());
}

TEST(EnumerateLayerOptions, CoversDenseSkipVariantsAndCsr)
{
    const TuneRequest req = smallRequest();
    const std::vector<LayerOption> opts =
        enumerateLayerOptions(req, 0, {}, {},
                              gpu::GpuConfig::tegraX1());

    auto has = [&](const std::string &label) {
        for (const LayerOption &o : opts)
            if (o.label == label)
                return true;
        return false;
    };
    EXPECT_TRUE(has("dense"));
    EXPECT_TRUE(has("skip-sw"));
    EXPECT_TRUE(has("skip-sw-fused"));  // the point PlanKind never named
    EXPECT_TRUE(has("skip-hw"));
    EXPECT_TRUE(has("pruned-csr"));
    for (const LayerOption &o : opts) {
        SCOPED_TRACE(o.label);
        EXPECT_NO_THROW(o.schedule.validate());
    }
}

TEST(EnumerateLayerOptions, SkipVariantsNeedMeasuredSkip)
{
    TuneRequest req = smallRequest();
    for (core::LayerApproxStats &s : req.stats)
        s.skippedRows = 0.0;
    const std::vector<LayerOption> opts =
        enumerateLayerOptions(req, 0, {}, {},
                              gpu::GpuConfig::tegraX1());
    for (const LayerOption &o : opts)
        EXPECT_EQ(o.label.find("skip"), std::string::npos) << o.label;
}

TEST(Tune, IsDeterministic)
{
    const runtime::NetworkExecutor exec(gpu::GpuConfig::tegraX1());
    const TuneRequest req = smallRequest();

    const TuneResult a = tune(exec, req);
    const TuneResult b = tune(exec, req);

    EXPECT_EQ(a.chosen.label, b.chosen.label);
    EXPECT_EQ(a.chosen.plan, b.chosen.plan);
    EXPECT_EQ(a.chosen.timeUs, b.chosen.timeUs);
    EXPECT_EQ(a.chosen.dramBytes, b.chosen.dramBytes);
    EXPECT_EQ(a.chosenLayerLabels, b.chosenLayerLabels);
    EXPECT_EQ(a.referenceLabel, b.referenceLabel);
    ASSERT_EQ(a.candidates.size(), b.candidates.size());
    for (std::size_t i = 0; i < a.candidates.size(); ++i) {
        EXPECT_EQ(a.candidates[i].label, b.candidates[i].label);
        EXPECT_EQ(a.candidates[i].timeUs, b.candidates[i].timeUs);
        EXPECT_EQ(a.candidates[i].dramBytes, b.candidates[i].dramBytes);
    }
}

TEST(Tune, ChosenDominatesEveryPreset)
{
    const runtime::NetworkExecutor exec(gpu::GpuConfig::tegraX1());
    const TuneRequest req = smallRequest();
    const TuneResult res = tune(exec, req);

    EXPECT_TRUE(res.dominatesReference);
    EXPECT_EQ(res.chosen.plan.kind, runtime::PlanKind::Tuned);
    EXPECT_TRUE(res.chosen.plan.hasExplicitDecisions());
    EXPECT_EQ(res.chosen.plan.decisions.layers.size(),
              req.shape.layers.size());
    EXPECT_EQ(res.chosenLayerLabels.size(), req.shape.layers.size());

    // The dominance reference is the best preset by (time, then
    // bytes): the chosen plan is no worse than it on both axes, which
    // makes it no slower than *any* preset. (A slower preset may still
    // use fewer DRAM bytes — the gate is against the reference, not a
    // per-axis sweep of the whole table.)
    EXPECT_LE(res.chosen.timeUs, res.referenceTimeUs);
    EXPECT_LE(res.chosen.dramBytes, res.referenceDramBytes);
    std::size_t presets = 0;
    for (const Candidate &c : res.candidates) {
        if (c.label.rfind("preset:", 0) != 0)
            continue;
        ++presets;
        EXPECT_LE(res.chosen.timeUs, c.timeUs) << c.label;
        if (c.label == res.referenceLabel) {
            EXPECT_EQ(c.timeUs, res.referenceTimeUs);
            EXPECT_EQ(c.dramBytes, res.referenceDramBytes);
        }
    }
    EXPECT_EQ(presets, 7u);  // every requestable PlanKind was scored

    // Table rows come fastest first.
    for (std::size_t i = 1; i < res.candidates.size(); ++i)
        EXPECT_LE(res.candidates[i - 1].timeUs, res.candidates[i].timeUs);
}

TEST(Tune, PresetPlansScoreIdenticallyToCandidates)
{
    const runtime::NetworkExecutor exec(gpu::GpuConfig::tegraX1());
    const TuneRequest req = smallRequest();
    const TuneResult res = tune(exec, req);

    const runtime::ExecutionPlan baseline =
        presetPlan(exec, req, runtime::PlanKind::Baseline);
    const double t = simulatedTimeUs(exec, req, baseline);
    for (const Candidate &c : res.candidates) {
        if (c.label == "preset:baseline") {
            EXPECT_EQ(c.timeUs, t);
        }
    }
}

} // namespace
} // namespace sched
} // namespace mflstm
