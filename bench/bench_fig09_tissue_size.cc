/**
 * @file
 * Fig. 9 reproduction: normalized performance of one LSTM layer and the
 * shared-memory bandwidth utilisation as the tissue size grows, per
 * application — performance peaks at the maximum tissue size (MTS),
 * where the on-chip bandwidth saturates, then droops under the
 * kernel-reconfiguration penalty.
 */

#include <cstdio>

#include "core/tissue.hh"
#include "harness.hh"

int
main()
{
    using namespace mflstm;
    using namespace mflstm::bench;

    std::printf("Fig. 9: normalized layer performance (vs tissue size 1) "
                "and shared-memory\nbandwidth utilisation; '*' marks the "
                "MTS\n");
    rule('=');

    runtime::NetworkExecutor ex(gpu::GpuConfig::tegraX1());
    constexpr std::size_t kMaxK = 8;

    BenchReport rep("fig09_tissue_size");
    rep.config("max_tissue_size", std::to_string(kMaxK));

    std::printf("%-6s", "App");
    for (std::size_t k = 1; k <= kMaxK; ++k)
        std::printf("     k=%zu", k);
    std::printf("   MTS\n");
    rule();

    for (const workloads::BenchmarkSpec &spec : workloads::tableII()) {
        const runtime::LstmLayerShape layer{spec.hiddenSize,
                                            spec.hiddenSize, spec.length};
        const core::MtsResult res = core::findMts(ex, layer, kMaxK);

        std::printf("%-6s", spec.name.c_str());
        for (std::size_t k = 1; k <= res.timesUs.size(); ++k) {
            std::printf(" %6.2f%s", res.timesUs[0] / res.timesUs[k - 1],
                        k == res.mts ? "*" : " ");
        }
        std::printf("  %4zu\n", res.mts);

        std::printf("%-6s", "  bw");
        for (double u : res.sharedUtilization)
            std::printf(" %6.0f%%", 100.0 * u);
        std::printf("\n");

        rep.metric(spec.name + ".mts",
                   static_cast<double>(res.mts));
        rep.metric(spec.name + ".mts_speedup",
                   res.timesUs[0] / res.timesUs[res.mts - 1]);
    }
    rule();
    rep.write();
    std::printf("Paper shape: performance rises with the tissue size, "
                "peaks at MTS (6 for the\nsmall-hidden BABI/MR configs, "
                "5 otherwise) where shared-memory utilisation\napproaches "
                "100%%, then drops.\n");
    return 0;
}
