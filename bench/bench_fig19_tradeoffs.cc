/**
 * @file
 * Fig. 19 reproduction: speedup and accuracy of the combined system
 * under the 11 threshold sets (set 0 = baseline thresholds, set 10 =
 * the per-app upper limits), for every application. Also marks the AO
 * and BPA operating points the paper derives from these curves.
 */

#include <cstdio>

#include "harness.hh"

int
main()
{
    using namespace mflstm;
    using namespace mflstm::bench;

    std::printf("Fig. 19: performance-accuracy trade-offs under "
                "threshold sets 0..10 (combined\nscheme; A = AO set, "
                "B = BPA set)\n");
    rule('=');

    BenchReport rep("fig19_tradeoffs");
    for (const AppContext &app : makeAllApps()) {
        auto mf = makeCalibrated(app);
        const auto ladder = mf->calibration().ladder();
        const SchemeCurve curve = evaluateScheme(
            *mf, app, runtime::PlanKind::Combined, ladder);

        const std::size_t ao =
            core::selectAo(curve.points, app.baselineAccuracy, 2.0);
        const std::size_t bpa = core::selectBpa(curve.points);

        rep.metric(app.spec.name + ".ao_set", static_cast<double>(ao));
        rep.metric(app.spec.name + ".ao_speedup",
                   curve.points[ao].speedup);
        rep.metric(app.spec.name + ".bpa_set", static_cast<double>(bpa));
        rep.metric(app.spec.name + ".bpa_speedup",
                   curve.points[bpa].speedup);

        std::printf("%s (baseline accuracy %.1f%%)\n",
                    app.spec.name.c_str(),
                    100.0 * app.baselineAccuracy);
        std::printf("  set      ");
        for (std::size_t i = 0; i < curve.points.size(); ++i) {
            const char mark = i == ao ? 'A' : (i == bpa ? 'B' : ' ');
            std::printf(" %5zu%c", i, mark);
        }
        std::printf("\n  speedup  ");
        for (const auto &pt : curve.points)
            std::printf(" %5.2fx", pt.speedup);
        std::printf("\n  accuracy ");
        for (const auto &pt : curve.points)
            std::printf(" %5.1f%%", 100.0 * pt.accuracy);
        std::printf("\n\n");
    }
    rule();
    std::printf("Paper shape: higher threshold sets trade accuracy for "
                "speedup; AO sits at the\nlast <=2%%-loss set, BPA at "
                "the Speedup x Accuracy maximum.\n");
    rep.write();
    return 0;
}
