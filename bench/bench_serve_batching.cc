/**
 * @file
 * Serving-layer study (DESIGN.md §9): cross-sequence batching as the
 * serving-time extension of the paper's weight-reuse principle. Sweeps
 * the batch dimension 1..8 on one app and reports how the simulated
 * weight-matrix DRAM traffic per sequence is amortised (must fall
 * monotonically), then drives the InferenceEngine under a burst load
 * and reports the realised batch sizes and latency percentiles.
 *
 * Overload section (DESIGN.md §10): the same burst is replayed twice —
 * once pinned at the AO threshold set, once with the adaptive governor
 * free to walk the AO->BPA ladder — and the realised p95 latencies are
 * compared. Per-rung functional outputs are verified bit-identical to
 * a solo runner at that rung's thresholds (the governor only trades
 * accuracy-class, never correctness of the active rung).
 */

#include <cstdio>
#include <vector>

#include "harness.hh"
#include "serve/engine.hh"

int
main()
{
    using namespace mflstm;
    using namespace mflstm::bench;

    constexpr std::size_t kMaxBatch = 8;

    const AppContext app = makeApp(workloads::benchmarkByName("IMDB"));
    auto mf = makeCalibrated(app);
    const auto ladder = mf->calibration().ladder();
    mf->setThresholds(ladder[ladder.size() / 2]);
    evalAccuracy(*mf, app);  // populate stats for plan projection

    const core::TimingOutcome combined =
        mf->evaluateTiming({runtime::PlanKind::Combined});

    std::printf("Cross-sequence batching on %s (combined scheme, %s)\n",
                app.spec.name.c_str(),
                mf->executor().config().name.c_str());
    rule('=');
    std::printf("%6s %16s %14s %14s %12s\n", "batch", "weight MB/seq",
                "DRAM MB total", "batch time ms", "ms/sequence");
    rule();

    BenchReport rep("serve_batching");
    rep.config("app", app.spec.name);
    rep.config("max_batch", std::to_string(kMaxBatch));

    double prev = 0.0;
    bool monotone = true;
    for (std::size_t b = 1; b <= kMaxBatch; ++b) {
        const runtime::RunReport rep_b =
            mf->executor().run(runtime::RunRequest::network(
                mf->config().timingShape, combined.plan, b));
        const double per_seq = rep_b.weightDramBytesPerSequence();
        if (b > 1 && per_seq >= prev)
            monotone = false;
        prev = per_seq;
        std::printf("%6zu %16.3f %14.3f %14.2f %12.2f\n", b,
                    per_seq / 1e6, rep_b.result.dramBytes / 1e6,
                    rep_b.result.timeUs / 1e3,
                    rep_b.result.timeUs / 1e3 / static_cast<double>(b));
        rep.metric("weight_mb_per_seq.batch" + std::to_string(b),
                   per_seq / 1e6);
    }
    rule();
    std::printf("weight DRAM/sequence monotonically decreasing 1..%zu: "
                "%s\n\n",
                kMaxBatch, monotone ? "yes" : "NO (regression!)");

    // Burst load through the engine: everything queued at once, so the
    // batcher fills batches to the bound after the first drain.
    serve::InferenceEngine::Options eopts;
    eopts.maxBatch = kMaxBatch;
    eopts.workers = 2;
    eopts.plan = runtime::PlanKind::Combined;
    serve::InferenceEngine engine(*mf, eopts);
    serve::Session session = engine.session();

    const auto seqs = app.data.calibrationSequences(kCalibrationSeqs);
    std::vector<std::future<serve::Response>> futures;
    const std::size_t kRequests = 64;
    for (std::size_t i = 0; i < kRequests; ++i)
        futures.push_back(session.infer(seqs[i % seqs.size()]));
    for (auto &f : futures)
        f.get();
    engine.shutdown();

    const serve::InferenceEngine::Stats st = engine.stats();
    std::printf("engine burst: %zu requests, %llu batches, mean batch "
                "%.2f, max %zu\n",
                kRequests, static_cast<unsigned long long>(st.batches),
                st.meanBatchSize, st.maxBatchObserved);
    std::printf("wall latency p50 %.3f ms, p90 %.3f ms, p99 %.3f ms\n",
                engine.latencyQuantileMs(0.50),
                engine.latencyQuantileMs(0.90),
                engine.latencyQuantileMs(0.99));

    // --- Overload: fixed AO vs adaptive AO->BPA governor (§10) ------
    const SchemeCurve curve =
        evaluateScheme(*mf, app, runtime::PlanKind::Combined, ladder);
    const std::size_t ao =
        core::selectAo(curve.points, app.baselineAccuracy, 2.0);
    const std::size_t bpa = core::selectBpa(curve.points);
    const std::vector<core::ThresholdSet> governor_ladder =
        core::aoToBpaLadder(curve.points, app.baselineAccuracy, 2.0);
    const auto planning = app.data.calibrationSequences(kCalibrationSeqs);

    std::printf("\nOverload: fixed AO (set %zu) vs governor "
                "(AO set %zu -> BPA set %zu, %zu rungs)\n",
                ao, ao, bpa, governor_ladder.size());
    rule('=');

    const std::size_t kOverloadRequests = 96;  // ~3x what a worker
                                               // retires per drain
    auto overloadRun = [&](bool adaptive) {
        serve::InferenceEngine::Options o;
        o.maxBatch = kMaxBatch;
        o.workers = 1;  // single consumer: queue pressure builds
        o.plan = runtime::PlanKind::Combined;
        o.governorLadder = adaptive
                               ? governor_ladder
                               : std::vector<core::ThresholdSet>{
                                     governor_ladder.front()};
        o.planningSequences = planning;
        o.governor.highQueuePerWorker = 8.0;
        o.governor.lowQueuePerWorker = 2.0;
        o.governor.dwellTicks = 2;
        serve::InferenceEngine e(*mf, o);
        serve::Session s = e.session();
        std::vector<std::future<serve::Response>> fs;
        for (std::size_t i = 0; i < kOverloadRequests; ++i)
            fs.push_back(s.infer(seqs[i % seqs.size()]));
        for (auto &f : fs)
            f.get();
        const double p95 = e.latencyQuantileMs(0.95);
        const auto est = e.stats();
        std::printf("%-10s p50 %8.3f ms  p95 %8.3f ms  steps up %llu "
                    "down %llu  final rung %zu\n",
                    adaptive ? "governor" : "fixed-AO",
                    e.latencyQuantileMs(0.50), p95,
                    static_cast<unsigned long long>(est.governorStepsUp),
                    static_cast<unsigned long long>(
                        est.governorStepsDown),
                    e.activeRung());
        return p95;
    };

    const double fixed_p95 = overloadRun(false);
    const double adaptive_p95 = overloadRun(true);
    rule();
    if (governor_ladder.size() < 2) {
        std::printf("governor p95 vs fixed AO: ladder has one rung "
                    "(AO == BPA) — nothing to degrade to\n");
    } else {
        std::printf("governor p95 vs fixed AO: %.3f vs %.3f ms "
                    "(%.1f%% %s)\n",
                    adaptive_p95, fixed_p95,
                    100.0 * (fixed_p95 - adaptive_p95) /
                        (fixed_p95 > 0.0 ? fixed_p95 : 1.0),
                    adaptive_p95 <= fixed_p95 ? "lower" : "HIGHER");
    }

    // --- Per-rung bit-identity: batched == solo at each rung --------
    bool rungs_identical = true;
    {
        serve::InferenceEngine::Options o;
        o.maxBatch = 4;
        o.workers = 2;
        o.plan = runtime::PlanKind::Combined;
        o.governorLadder = governor_ladder;
        o.planningSequences = planning;
        serve::InferenceEngine probe(*mf, o);
        for (std::size_t r = 0; r < probe.ladder().size(); ++r) {
            core::ApproxRunner solo = mf->runner();
            solo.setThresholds(probe.ladder()[r].alphaInter,
                               probe.ladder()[r].alphaIntra);
            // Rung runners are snapshots of the same calibration; a
            // fresh engine pinned at this rung must match solo exactly.
            serve::InferenceEngine::Options po = o;
            po.governorLadder = {probe.ladder()[r]};
            serve::InferenceEngine pinned(*mf, po);
            serve::Session ps = pinned.session();
            std::vector<std::future<serve::Response>> fs;
            for (std::size_t i = 0; i < 8; ++i)
                fs.push_back(ps.infer(seqs[i % seqs.size()]));
            for (std::size_t i = 0; i < fs.size(); ++i) {
                const serve::Response resp = fs[i].get();
                const bool same =
                    resp.status == serve::Status::Ok &&
                    resp.logits ==
                        solo.classify(seqs[i % seqs.size()]);
                if (!same)
                    rungs_identical = false;
            }
        }
    }
    std::printf("per-rung batched outputs bit-identical to solo: %s\n",
                rungs_identical ? "yes" : "NO (regression!)");

    // p95 deltas are wall-clock and thus noisy on shared CI machines:
    // report them, but gate the exit code on the two structural
    // invariants only. The report mirrors that: only the structural
    // booleans and the simulated per-sequence traffic are recorded
    // (wall-clock percentiles would make every bench_diff run noisy).
    rep.metric("monotone_weight_amortisation",
               monotone ? 1.0 : 0.0);
    rep.metric("rungs_bit_identical", rungs_identical ? 1.0 : 0.0);
    rep.write();
    return monotone && rungs_identical ? 0 : 1;
}
