/**
 * @file
 * Serving-layer study (DESIGN.md §9): cross-sequence batching as the
 * serving-time extension of the paper's weight-reuse principle. Sweeps
 * the batch dimension 1..8 on one app and reports how the simulated
 * weight-matrix DRAM traffic per sequence is amortised (must fall
 * monotonically), then drives the InferenceEngine under a burst load
 * and reports the realised batch sizes and latency percentiles.
 */

#include <cstdio>
#include <vector>

#include "harness.hh"
#include "serve/engine.hh"

int
main()
{
    using namespace mflstm;
    using namespace mflstm::bench;

    constexpr std::size_t kMaxBatch = 8;

    const AppContext app = makeApp(workloads::benchmarkByName("IMDB"));
    auto mf = makeCalibrated(app);
    const auto ladder = mf->calibration().ladder();
    mf->setThresholds(ladder[ladder.size() / 2]);
    evalAccuracy(*mf, app);  // populate stats for plan projection

    const core::TimingOutcome combined =
        mf->evaluateTiming({runtime::PlanKind::Combined});

    std::printf("Cross-sequence batching on %s (combined scheme, %s)\n",
                app.spec.name.c_str(),
                mf->executor().config().name.c_str());
    rule('=');
    std::printf("%6s %16s %14s %14s %12s\n", "batch", "weight MB/seq",
                "DRAM MB total", "batch time ms", "ms/sequence");
    rule();

    double prev = 0.0;
    bool monotone = true;
    for (std::size_t b = 1; b <= kMaxBatch; ++b) {
        const runtime::RunReport rep =
            mf->executor().run(runtime::RunRequest::network(
                mf->config().timingShape, combined.plan, b));
        const double per_seq = rep.weightDramBytesPerSequence();
        if (b > 1 && per_seq >= prev)
            monotone = false;
        prev = per_seq;
        std::printf("%6zu %16.3f %14.3f %14.2f %12.2f\n", b,
                    per_seq / 1e6, rep.result.dramBytes / 1e6,
                    rep.result.timeUs / 1e3,
                    rep.result.timeUs / 1e3 / static_cast<double>(b));
    }
    rule();
    std::printf("weight DRAM/sequence monotonically decreasing 1..%zu: "
                "%s\n\n",
                kMaxBatch, monotone ? "yes" : "NO (regression!)");

    // Burst load through the engine: everything queued at once, so the
    // batcher fills batches to the bound after the first drain.
    serve::InferenceEngine::Options eopts;
    eopts.maxBatch = kMaxBatch;
    eopts.workers = 2;
    eopts.plan = runtime::PlanKind::Combined;
    serve::InferenceEngine engine(*mf, eopts);
    serve::Session session = engine.session();

    const auto seqs = app.data.calibrationSequences(kCalibrationSeqs);
    std::vector<std::future<serve::Response>> futures;
    const std::size_t kRequests = 64;
    for (std::size_t i = 0; i < kRequests; ++i)
        futures.push_back(session.infer(seqs[i % seqs.size()]));
    for (auto &f : futures)
        f.get();
    engine.shutdown();

    const serve::InferenceEngine::Stats st = engine.stats();
    std::printf("engine burst: %zu requests, %llu batches, mean batch "
                "%.2f, max %zu\n",
                kRequests, static_cast<unsigned long long>(st.batches),
                st.meanBatchSize, st.maxBatchObserved);
    std::printf("wall latency p50 %.3f ms, p90 %.3f ms, p99 %.3f ms\n",
                engine.latencyQuantileMs(0.50),
                engine.latencyQuantileMs(0.90),
                engine.latencyQuantileMs(0.99));
    return monotone ? 0 : 1;
}
