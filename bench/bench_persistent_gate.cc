/**
 * @file
 * Persistent-residency acceptance gate (DESIGN.md §15): for every Table
 * II application, lower the same tissue schedule twice — once streaming
 * (the inter-cell preset) and once with register-file residency (the
 * persistent preset) — and require the persistent plan to *strictly*
 * reduce simulated per-sequence weight DRAM bytes at int8 (and fp32).
 * This is the headline claim of the residency model: on-chip pinning
 * charges the resident working set once per sequence instead of once
 * per tissue wave, so the win must hold on every app, not in aggregate.
 * Exit 1 on any violation so CI fails when a cost-model change erodes
 * the residency advantage.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "harness.hh"
#include "runtime/executor.hh"

namespace {

using namespace mflstm;
using namespace mflstm::bench;

/**
 * The synthetic preset construction the conservation sweep uses:
 * aligned tissues of four cells per layer. The persistent preset
 * derives its per-layer schedules from the same inter plan, so the two
 * plans differ ONLY in the residency axis.
 */
runtime::ExecutionPlan
tissuePlan(runtime::PlanKind kind, const runtime::NetworkShape &shape,
           quant::QuantMode qm)
{
    runtime::ExecutionPlan plan;
    plan.kind = kind;
    plan.quantMode = qm;
    for (const runtime::LstmLayerShape &layer : shape.layers) {
        runtime::LayerInterPlan ip;
        std::size_t left = layer.length;
        while (left > 0) {
            const std::size_t t = std::min<std::size_t>(4, left);
            ip.tissueSizes.push_back(t);
            left -= t;
        }
        plan.inter.push_back(std::move(ip));
    }
    return plan;
}

struct GateRow
{
    std::string app;
    std::string mode;
    double tissuesBytes = 0.0;     ///< per-sequence weight DRAM bytes
    double persistentBytes = 0.0;  ///< same, with regfile residency
    double ratio = 0.0;            ///< persistent / tissues, < 1 required
    bool ok = false;
};

} // anonymous namespace

int
main(int argc, char **argv)
{
    // Positional args select a subset of the Table II applications.
    std::vector<workloads::BenchmarkSpec> specs;
    for (const workloads::BenchmarkSpec &spec : workloads::tableII()) {
        bool wanted = argc < 2;
        for (int i = 1; i < argc && !wanted; ++i)
            wanted = spec.name == argv[i] || spec.abbrev == argv[i];
        if (wanted)
            specs.push_back(spec);
    }
    if (specs.empty()) {
        std::fprintf(stderr,
                     "no matching application; valid names are:\n");
        for (const workloads::BenchmarkSpec &spec : workloads::tableII())
            std::fprintf(stderr, "  %s (%s)\n", spec.name.c_str(),
                         spec.abbrev.c_str());
        return 2;
    }

    const quant::QuantMode modes[] = {quant::QuantMode::Fp32,
                                      quant::QuantMode::Int8};
    const gpu::GpuConfig cfg = gpu::GpuConfig::tegraX1();
    runtime::NetworkExecutor exec(cfg);

    std::printf("Persistent-residency gate: regfile persistence vs the "
                "same tissue schedule, streamed\n");
    rule('=');
    std::printf("%-6s %-5s | %14s %14s | %9s | %s\n", "App", "quant",
                "tissues B/seq", "persist B/seq", "ratio", "ok?");
    rule();

    BenchReport rep("persistent_gate");
    std::vector<GateRow> rows;

    for (const workloads::BenchmarkSpec &spec : specs) {
        const runtime::NetworkShape shape = spec.timingShape();
        for (quant::QuantMode qm : modes) {
            const runtime::RunReport tissues =
                exec.run(runtime::RunRequest::network(
                    shape,
                    tissuePlan(runtime::PlanKind::InterCell, shape, qm),
                    1));
            const runtime::RunReport persistent =
                exec.run(runtime::RunRequest::network(
                    shape,
                    tissuePlan(runtime::PlanKind::Persistent, shape,
                               qm),
                    1));

            GateRow row;
            row.app = spec.name;
            row.mode = quant::toString(qm);
            row.tissuesBytes = tissues.weightDramBytesPerSequence();
            row.persistentBytes =
                persistent.weightDramBytesPerSequence();
            row.ratio = row.tissuesBytes > 0.0
                            ? row.persistentBytes / row.tissuesBytes
                            : 1.0;
            // Strict win: per-sequence weight bytes must go DOWN.
            row.ok = row.persistentBytes < row.tissuesBytes;
            rows.push_back(row);

            std::printf("%-6s %-5s | %14.0f %14.0f | %8.4fx | %s\n",
                        row.app.c_str(), row.mode.c_str(),
                        row.tissuesBytes, row.persistentBytes,
                        row.ratio, row.ok ? "yes" : "NO");

            const std::string key = spec.name + "." + row.mode;
            rep.metric(key + ".tissues.weight_bytes_per_seq",
                       row.tissuesBytes);
            rep.metric(key + ".persistent.weight_bytes_per_seq",
                       row.persistentBytes);
            rep.metric(key + ".persistent_over_tissues.bytes_ratio",
                       row.ratio);
            rep.metric(key + ".strict_win", row.ok ? 1.0 : 0.0);
        }
    }
    rule();

    bool all_ok = true;
    for (quant::QuantMode qm : modes) {
        const std::string mode = quant::toString(qm);
        std::vector<double> ratios;
        for (const GateRow &row : rows) {
            if (row.mode != mode)
                continue;
            all_ok = all_ok && row.ok;
            ratios.push_back(row.ratio);
        }
        const double g = geomean(ratios);
        std::printf("%-5s geomean: persistent weight bytes %.4fx of "
                    "streamed tissues\n",
                    mode.c_str(), g);
        rep.metric("geomean." + mode +
                       ".persistent_over_tissues.bytes_ratio",
                   g);
    }
    std::printf("gate: %s\n",
                all_ok ? "PASS (persistent strictly below streamed "
                         "tissues on every app, both precisions)"
                       : "FAIL");
    rep.metric("gate.pass", all_ok ? 1.0 : 0.0);
    rep.write();
    return all_ok ? 0 : 1;
}
