/**
 * @file
 * Shared harness for the figure/table reproduction binaries: per-app
 * context (trained accuracy model + synthetic datasets, disk-cached),
 * threshold-ladder evaluation per execution scheme, and small table
 * formatting helpers. Every bench_* binary prints the rows/series the
 * corresponding paper figure reports.
 */

#ifndef MFLSTM_BENCH_HARNESS_HH
#define MFLSTM_BENCH_HARNESS_HH

#include <memory>
#include <string>
#include <vector>

#include "core/api.hh"
#include "obs/observer.hh"
#include "workloads/benchmarks.hh"
#include "workloads/datagen.hh"

namespace mflstm {
namespace bench {

/**
 * Process-wide observability sink shared by every facade the harness
 * builds (makeCalibrated wires it in). At process exit the accumulated
 * metrics registry is written to `<program>_metrics.json` in the
 * working directory, next to the bench's printed tables; nothing is
 * written when no metrics were recorded.
 */
obs::Observer &benchObserver();

/** Everything one Table II application needs for an experiment. */
struct AppContext
{
    workloads::BenchmarkSpec spec;
    workloads::TaskData data;
    std::shared_ptr<nn::LstmModel> model;
    double baselineAccuracy = 0.0;
};

/** Dataset sizes used across the benches (kept modest but meaningful). */
constexpr std::size_t kTrainSamples = 400;
constexpr std::size_t kTestSamples = 120;
constexpr std::size_t kTrainEpochs = 20;
constexpr std::size_t kCalibrationSeqs = 40;

/**
 * Build (or load from the on-disk cache) the trained accuracy model and
 * datasets for one benchmark. The cache lives in ./mflstm_model_cache;
 * models are deterministic, so the cache only saves training time.
 */
AppContext makeApp(const workloads::BenchmarkSpec &spec);

/** makeApp for every Table II application, in order. */
std::vector<AppContext> makeAllApps();

/** A calibrated facade for one app (baseline timing already run). */
std::unique_ptr<core::MemoryFriendlyLstm>
makeCalibrated(const AppContext &app);

/** Task-appropriate accuracy through the approximate dataflow. */
double evalAccuracy(core::MemoryFriendlyLstm &mf, const AppContext &app);

/** One evaluated scheme across the whole threshold ladder. */
struct SchemeCurve
{
    runtime::PlanKind kind;
    std::vector<core::OperatingPoint> points;   ///< one per ladder set
    std::vector<core::TimingOutcome> outcomes;  ///< matching timing runs
};

/**
 * Sweep the Fig. 19 ladder for one scheme, applying only the thresholds
 * that scheme uses (inter-only schemes zero alpha_intra and vice versa).
 */
SchemeCurve evaluateScheme(core::MemoryFriendlyLstm &mf,
                           const AppContext &app, runtime::PlanKind kind,
                           const std::vector<core::ThresholdSet> &ladder);

/** Geometric mean (the paper's cross-app average for speedups). */
double geomean(const std::vector<double> &xs);

/** Arithmetic mean. */
double mean(const std::vector<double> &xs);

/** Print a horizontal rule sized for the bench tables. */
void rule(char c = '-', int width = 78);

} // namespace bench
} // namespace mflstm

#endif // MFLSTM_BENCH_HARNESS_HH
