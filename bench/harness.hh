/**
 * @file
 * Shared harness for the figure/table reproduction binaries: per-app
 * context (trained accuracy model + synthetic datasets, disk-cached),
 * threshold-ladder evaluation per execution scheme, and small table
 * formatting helpers. Every bench_* binary prints the rows/series the
 * corresponding paper figure reports.
 */

#ifndef MFLSTM_BENCH_HARNESS_HH
#define MFLSTM_BENCH_HARNESS_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/api.hh"
#include "obs/observer.hh"
#include "workloads/benchmarks.hh"
#include "workloads/datagen.hh"

namespace mflstm {
namespace bench {

/**
 * Machine-readable results of one bench binary, written as
 * `BENCH_<name>.json` in the working directory under the one shared
 * schema every bench emits (and `tools/bench_diff` consumes):
 *
 *   { "schema": "mflstm.bench", "version": 1, "name": "...",
 *     "config": { "<key>": "<string>", ... },
 *     "metrics": { "<metric>": <number>, ... } }
 *
 * Metric names are hierarchical dotted paths ("IMDB.combined.speedup",
 * "geomean.inter.speedup") so diffs group naturally; config records
 * the knobs that make two runs comparable (GPU, app filter, sizes).
 * Keys are kept in sorted order, so byte-identical inputs produce
 * byte-identical reports (the determinism `bench_diff` relies on).
 */
class BenchReport
{
  public:
    static constexpr const char *kSchema = "mflstm.bench";
    static constexpr int kVersion = 1;

    explicit BenchReport(std::string name) : name_(std::move(name)) {}

    void config(const std::string &key, const std::string &value);
    void metric(const std::string &name, double value);

    const std::string &name() const { return name_; }
    const std::map<std::string, double> &metrics() const
    {
        return metrics_;
    }

    /** `BENCH_<name>.json` (relative, next to the printed tables). */
    std::string path() const;

    /** Write the report; warns on stderr and returns false on I/O error. */
    bool write() const;

  private:
    std::string name_;
    std::map<std::string, std::string> config_;
    std::map<std::string, double> metrics_;
};

/**
 * Process-wide observability sink shared by every facade the harness
 * builds (makeCalibrated wires it in). At process exit the accumulated
 * metrics registry is written to `<program>_metrics.json` in the
 * working directory, next to the bench's printed tables; nothing is
 * written when no metrics were recorded.
 */
obs::Observer &benchObserver();

/** Everything one Table II application needs for an experiment. */
struct AppContext
{
    workloads::BenchmarkSpec spec;
    workloads::TaskData data;
    std::shared_ptr<nn::LstmModel> model;
    double baselineAccuracy = 0.0;
};

/** Dataset sizes used across the benches (kept modest but meaningful). */
constexpr std::size_t kTrainSamples = 400;
constexpr std::size_t kTestSamples = 120;
constexpr std::size_t kTrainEpochs = 20;
constexpr std::size_t kCalibrationSeqs = 40;

/**
 * Build (or load from the on-disk cache) the trained accuracy model and
 * datasets for one benchmark. The cache lives in ./mflstm_model_cache;
 * models are deterministic, so the cache only saves training time.
 */
AppContext makeApp(const workloads::BenchmarkSpec &spec);

/** makeApp for every Table II application, in order. */
std::vector<AppContext> makeAllApps();

/**
 * A calibrated facade for one app (baseline timing already run) on the
 * named hw-registry backend — "tx1" is the paper's anchor and the
 * default every existing bench keeps. @throws std::out_of_range on an
 * unknown backend id.
 */
std::unique_ptr<core::MemoryFriendlyLstm>
makeCalibrated(const AppContext &app,
               const std::string &backendId = "tx1");

/** Task-appropriate accuracy through the approximate dataflow. */
double evalAccuracy(core::MemoryFriendlyLstm &mf, const AppContext &app);

/** One evaluated scheme across the whole threshold ladder. */
struct SchemeCurve
{
    runtime::PlanKind kind;
    std::vector<core::OperatingPoint> points;   ///< one per ladder set
    std::vector<core::TimingOutcome> outcomes;  ///< matching timing runs
};

/**
 * Sweep the Fig. 19 ladder for one scheme, applying only the thresholds
 * that scheme uses (inter-only schemes zero alpha_intra and vice versa).
 */
SchemeCurve evaluateScheme(core::MemoryFriendlyLstm &mf,
                           const AppContext &app, runtime::PlanKind kind,
                           const std::vector<core::ThresholdSet> &ladder);

/** Geometric mean (the paper's cross-app average for speedups). */
double geomean(const std::vector<double> &xs);

/** Arithmetic mean. */
double mean(const std::vector<double> &xs);

/** Print a horizontal rule sized for the bench tables. */
void rule(char c = '-', int width = 78);

} // namespace bench
} // namespace mflstm

#endif // MFLSTM_BENCH_HARNESS_HH
