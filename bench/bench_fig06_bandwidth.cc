/**
 * @file
 * Fig. 6 reproduction: utilisation of the on-chip (shared memory) and
 * off-chip (DRAM) bandwidth while executing the baseline Sgemv kernels,
 * per application — the off-chip bus saturates while the on-chip one
 * idles, motivating the intra-cell optimisation.
 */

#include <cstdio>

#include "gpu/simulator.hh"
#include "harness.hh"
#include "runtime/executor.hh"

int
main()
{
    using namespace mflstm;
    using namespace mflstm::bench;

    std::printf("Fig. 6: on-chip vs off-chip bandwidth utilisation "
                "during Sgemv\n");
    rule('=');
    std::printf("%-6s %18s %18s\n", "App", "off-chip util", "on-chip util");
    rule();

    const gpu::GpuConfig cfg = gpu::GpuConfig::tegraX1();
    BenchReport rep("fig06_bandwidth");
    rep.config("gpu", cfg.name);
    runtime::NetworkExecutor ex(cfg);
    for (const workloads::BenchmarkSpec &spec : workloads::tableII()) {
        runtime::ExecutionPlan base;
        const auto trace =
            ex.lowering().lower(spec.timingShape(), base);

        gpu::Simulator sim(cfg);
        double dram_w = 0.0, shared_w = 0.0, time = 0.0;
        for (const gpu::KernelDesc &k : trace) {
            if (k.klass != gpu::KernelClass::Sgemv)
                continue;
            const gpu::KernelTiming t = sim.runKernel(k);
            dram_w += t.dramUtilization * t.timeUs;
            shared_w += t.sharedUtilization * t.timeUs;
            time += t.timeUs;
        }
        std::printf("%-6s %17.1f%% %17.1f%%\n", spec.name.c_str(),
                    100.0 * dram_w / time, 100.0 * shared_w / time);
        rep.metric(spec.name + ".offchip_util_pct",
                   100.0 * dram_w / time);
        rep.metric(spec.name + ".onchip_util_pct",
                   100.0 * shared_w / time);
    }
    rule();
    rep.write();
    std::printf("Paper shape: off-chip bandwidth is almost fully "
                "utilised; on-chip bandwidth\nis lightly consumed.\n");
    return 0;
}
