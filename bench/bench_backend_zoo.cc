/**
 * @file
 * Cross-backend sweep and acceptance gate (DESIGN.md §17): every hw
 * registry backend runs the six Table II applications at {fp32, int8,
 * int4} through three representative schedules — dense streaming, the
 * paper's DRS + CRM tissue flow, and a shared-memory resident plan —
 * answering "what does DRS buy on hardware built for weight reuse?".
 * Pure simulation (synthetic shapes, a fixed representative skip
 * fraction, no trained models), so the whole table is deterministic
 * and byte-identical across runs.
 *
 * Gates (exit 1 on violation):
 *   - on dp4a, int4 must run *strictly* faster than fp32 on every app
 *     and every schedule (the dot units make narrowing free, so the
 *     bytes win must show up as time);
 *   - with `--check FILE`, every `tx1.*` metric in FILE (the committed
 *     baseline) must reproduce byte-identically — the compatibility
 *     anchor never moves when new backends are added.
 *
 * Positional arguments filter the applications (name or abbrev), like
 * the other gates; `--check` is skipped for filtered runs unless the
 * baseline only holds the filtered rows.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness.hh"
#include "hw/backend.hh"
#include "obs/json.hh"
#include "runtime/executor.hh"

namespace {

using namespace mflstm;
using namespace mflstm::bench;

/**
 * The representative DRS point every backend is asked the same
 * question with: the paper reports ~45-50% of U_{f,i,c} rows skipped
 * at the AO set across Table II, so the sweep fixes the skip fraction
 * instead of training six accuracy models per backend.
 */
constexpr double kSkipFraction = 0.45;

std::vector<std::size_t>
tissueWaves(std::size_t length)
{
    std::vector<std::size_t> sizes;
    while (length > 0) {
        const std::size_t t = std::min<std::size_t>(4, length);
        sizes.push_back(t);
        length -= t;
    }
    return sizes;
}

/** dense | drs | resident, as explicit per-layer decisions. */
runtime::ExecutionPlan
schedulePlan(const std::string &label,
             const runtime::NetworkShape &shape, quant::QuantMode qm)
{
    runtime::ScheduleDecisions d;
    for (const runtime::LstmLayerShape &layer : shape.layers) {
        runtime::LayerSchedule ls;
        ls.quant = qm;
        if (label == "drs") {
            ls.tissueSizes = tissueWaves(layer.length);
            ls.skipPath = runtime::SkipPath::HwCrm;
            ls.skipFraction = kSkipFraction;
            ls.flagFusion = runtime::FlagFusion::FusedEpilogue;
        } else if (label == "resident") {
            ls.residency = runtime::WeightResidency::Shared;
        }
        d.layers.push_back(std::move(ls));
    }
    return runtime::ExecutionPlan::fromDecisions(std::move(d));
}

/**
 * Compare the current report against the committed baseline: every
 * metric of @p prefix in the baseline must exist here with the exact
 * jsonNumber spelling (%.17g — a bit-identical double). Returns the
 * number of mismatches, listing each on stderr.
 */
std::size_t
checkAnchor(const std::string &path, const BenchReport &rep,
            const std::string &prefix)
{
    std::ifstream is(path);
    if (!is) {
        std::fprintf(stderr, "error: cannot read baseline %s\n",
                     path.c_str());
        return 1;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    const auto doc = obs::parseJson(buf.str());
    if (!doc) {
        std::fprintf(stderr, "error: baseline %s is not valid JSON\n",
                     path.c_str());
        return 1;
    }
    const obs::JsonValue *metrics = doc->find("metrics");
    if (!metrics || metrics->kind != obs::JsonValue::Kind::Object) {
        std::fprintf(stderr,
                     "error: baseline %s has no metrics object\n",
                     path.c_str());
        return 1;
    }

    std::size_t bad = 0, checked = 0;
    for (const auto &[key, value] : metrics->members) {
        if (key.rfind(prefix, 0) != 0)
            continue;
        ++checked;
        const auto it = rep.metrics().find(key);
        if (it == rep.metrics().end()) {
            std::fprintf(stderr, "anchor drift: %s missing from this "
                                 "run\n",
                         key.c_str());
            ++bad;
            continue;
        }
        // Byte-identical means the %.17g spellings match; comparing
        // the round-tripped doubles is the same test (obs JSON numbers
        // round-trip exactly) without string-formatting both sides.
        if (value.number != it->second) {
            std::fprintf(stderr,
                         "anchor drift: %s baseline %.17g != %.17g\n",
                         key.c_str(), value.number, it->second);
            ++bad;
        }
    }
    if (checked == 0) {
        std::fprintf(stderr,
                     "error: baseline %s holds no %s* metrics\n",
                     path.c_str(), prefix.c_str());
        return 1;
    }
    std::printf("anchor check: %zu %s* metrics against %s -> %s\n",
                checked, prefix.c_str(), path.c_str(),
                bad == 0 ? "byte-identical" : "DRIFTED");
    return bad;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string checkPath;
    std::vector<workloads::BenchmarkSpec> specs;
    {
        std::vector<std::string> filters;
        for (int i = 1; i < argc; ++i) {
            if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc)
                checkPath = argv[++i];
            else
                filters.emplace_back(argv[i]);
        }
        for (const workloads::BenchmarkSpec &spec :
             workloads::tableII()) {
            bool wanted = filters.empty();
            for (const std::string &f : filters)
                wanted = wanted || spec.name == f || spec.abbrev == f;
            if (wanted)
                specs.push_back(spec);
        }
        if (specs.empty()) {
            std::fprintf(stderr,
                         "no matching application; valid names are:\n");
            for (const workloads::BenchmarkSpec &spec :
                 workloads::tableII())
                std::fprintf(stderr, "  %s (%s)\n", spec.name.c_str(),
                             spec.abbrev.c_str());
            return 2;
        }
    }

    const quant::QuantMode modes[] = {quant::QuantMode::Fp32,
                                      quant::QuantMode::Int8,
                                      quant::QuantMode::Int4};
    const char *const plans[] = {"dense", "drs", "resident"};

    BenchReport rep("backend_zoo");
    {
        std::string ids;
        for (const std::string &n : hw::registry().names())
            ids += (ids.empty() ? "" : ",") + n;
        rep.config("backends", ids);
    }
    rep.config("quants", "fp32,int8,int4");
    rep.config("skip_fraction", "0.45");

    std::printf("Backend zoo: Table II apps x {fp32,int8,int4} x "
                "registry backends (simulated)\n");

    bool dp4a_gate_ok = true;
    for (const hw::Backend &b : hw::registry().entries()) {
        runtime::NetworkExecutor exec(b.config);
        rule('=');
        std::printf("%s — %s\n", b.id.c_str(), b.display.c_str());
        rule();
        std::printf("%-6s %-5s | %12s %12s %12s | %9s %9s\n", "App",
                    "quant", "dense ms", "drs ms", "resident ms",
                    "drs x", "resid x");
        rule();

        for (const workloads::BenchmarkSpec &spec : specs) {
            const runtime::NetworkShape shape = spec.timingShape();
            // time indexed [mode][plan] for the dp4a int4-vs-fp32 gate
            double timeMs[3][3] = {};
            for (std::size_t m = 0; m < 3; ++m) {
                const quant::QuantMode qm = modes[m];
                for (std::size_t p = 0; p < 3; ++p) {
                    const runtime::RunReport run =
                        exec.run(runtime::RunRequest::network(
                            shape, schedulePlan(plans[p], shape, qm),
                            1));
                    timeMs[m][p] = run.result.timeUs / 1e3;
                    const std::string key =
                        b.id + "." + spec.name + "." +
                        quant::toString(qm) + "." + plans[p];
                    rep.metric(key + ".time_us", run.result.timeUs);
                    rep.metric(key + ".weight_bytes_per_seq",
                               run.weightDramBytesPerSequence());
                    rep.metric(key + ".dram_bytes",
                               run.result.dramBytes);
                }
                std::printf(
                    "%-6s %-5s | %12.3f %12.3f %12.3f | %8.2fx "
                    "%8.2fx\n",
                    spec.name.c_str(), quant::toString(qm),
                    timeMs[m][0], timeMs[m][1], timeMs[m][2],
                    timeMs[m][0] / timeMs[m][1],
                    timeMs[m][0] / timeMs[m][2]);
            }
            if (b.id == "dp4a") {
                // Narrowing is free of convert cost here, so int4 must
                // strictly beat fp32 on every app and schedule.
                for (std::size_t p = 0; p < 3; ++p) {
                    const bool ok = timeMs[2][p] < timeMs[0][p];
                    if (!ok)
                        std::fprintf(stderr,
                                     "dp4a gate: %s %s int4 %.3f ms "
                                     "not below fp32 %.3f ms\n",
                                     spec.name.c_str(), plans[p],
                                     timeMs[2][p], timeMs[0][p]);
                    dp4a_gate_ok = dp4a_gate_ok && ok;
                }
            }
        }
    }
    rule('=');

    // Cross-backend headline: what the DRS flow buys at int8, per
    // backend (geomean over the swept apps).
    for (const hw::Backend &b : hw::registry().entries()) {
        std::vector<double> gains;
        for (const workloads::BenchmarkSpec &spec : specs) {
            const std::string key =
                b.id + "." + spec.name + ".int8.";
            gains.push_back(rep.metrics().at(key + "dense.time_us") /
                            rep.metrics().at(key + "drs.time_us"));
        }
        const double g = geomean(gains);
        std::printf("%-6s int8 DRS speedup over dense (geomean): "
                    "%.2fx\n",
                    b.id.c_str(), g);
        rep.metric("geomean." + b.id + ".int8.drs_speedup", g);
    }

    std::size_t anchor_bad = 0;
    if (!checkPath.empty())
        anchor_bad = checkAnchor(checkPath, rep, "tx1.");

    const bool all_ok = dp4a_gate_ok && anchor_bad == 0;
    std::printf("gate: %s (dp4a int4<fp32 %s%s)\n",
                all_ok ? "PASS" : "FAIL",
                dp4a_gate_ok ? "ok" : "VIOLATED",
                checkPath.empty()
                    ? ""
                    : (anchor_bad == 0 ? ", tx1 anchor byte-identical"
                                       : ", tx1 anchor DRIFTED"));
    rep.metric("gate.pass", all_ok ? 1.0 : 0.0);
    rep.write();
    return all_ok ? 0 : 1;
}
