/**
 * @file
 * Fig. 16 reproduction, extended with post-training quantization
 * (DESIGN.md §12): weight-matrix compression ratio, speedup and energy
 * saving of (a) the offline element-level zero-pruning comparator,
 * (b) pure software DRS, (c) DRS with the CRM hardware, (d) INT8
 * quantization alone, and (e) INT8 composed with DRS + CRM, per
 * application at the AO operating point. The quantized columns report
 * *weight-traffic* compression (simulated fp32 DRAM bytes over the
 * quantized run's) rather than storage, so L2 reuse effects are
 * included.
 */

#include <cstdio>

#include "harness.hh"
#include "quant/quantize.hh"
#include "runtime/pruning.hh"

int
main()
{
    using namespace mflstm;
    using namespace mflstm::bench;

    constexpr double kPruneFraction = 0.37;  // the comparator's level

    std::printf("Fig. 16: weight compression / speedup / energy of "
                "zero-pruning vs DRS\n");
    rule('=');
    std::printf("%-6s | %-24s | %-24s | %-24s\n", "App",
                "   zero-pruning [31]", "   software DRS",
                "   DRS + CRM hardware");
    std::printf("%-6s | %7s %7s %7s | %7s %7s %7s | %7s %7s %7s\n", "",
                "compr", "speed", "energy", "compr", "speed", "energy",
                "compr", "speed", "energy");
    rule();

    std::vector<double> c_zp, s_zp, e_zp, c_sw, s_sw, e_sw, c_hw, s_hw,
        e_hw;
    // The quantization extension accumulates per-app rows for a second
    // table (the base Fig. 16 layout is already 80 columns wide).
    struct QuantRow
    {
        std::string app;
        double q8Compr = 0.0, q8Speed = 0.0, q8Energy = 0.0;
        double q8Loss = 0.0;
        double cmpCompr = 0.0, cmpSpeed = 0.0, cmpEnergy = 0.0;
        double cmpLoss = 0.0;
        double drsSpeed = 0.0;  ///< fp32 DRS+CRM speedup (comparison)
        bool beatsBoth = false;
    };
    std::vector<QuantRow> qrows;

    BenchReport rep("fig16_compression");
    rep.config("prune_fraction", "0.37");

    for (const AppContext &app : makeAllApps()) {
        auto mf = makeCalibrated(app);
        const auto ladder = mf->calibration().ladder();

        // Zero-pruning: prune a copy of the model to measure the real
        // compression it achieves on these weights, then time it.
        nn::LstmModel pruned = *app.model;
        const runtime::PruningResult pr =
            runtime::applyZeroPruning(pruned, kPruneFraction);
        const core::TimingOutcome zp = mf->evaluateTiming(
            runtime::PlanKind::ZeroPruning, pr.prunedFraction);

        // DRS software and hardware at the AO set of the HW scheme (the
        // skip decisions are identical; only the execution differs).
        const SchemeCurve hw_curve = evaluateScheme(
            *mf, app, runtime::PlanKind::IntraCellHw, ladder);
        const std::size_t ao =
            core::selectAo(hw_curve.points, app.baselineAccuracy, 2.0);

        mf->runner().resetStats();
        mf->runner().setThresholds(0.0, ladder[ao].alphaIntra);
        evalAccuracy(*mf, app);

        const core::TimingOutcome hw =
            mf->evaluateTiming(runtime::PlanKind::IntraCellHw);
        const core::TimingOutcome sw =
            mf->evaluateTiming(runtime::PlanKind::IntraCellSw);

        // DRS compression ratio: skipped rows of U_{f,i,c} relative to
        // the whole united weight matrix (U_o is never skipped).
        double skip = 0.0;
        for (const auto &st : mf->runner().stats())
            skip += st.skipFraction(app.model->config().hiddenSize);
        skip /= static_cast<double>(mf->runner().stats().size());
        const double drs_compr = 0.75 * skip;

        std::printf("%-6s | %6.1f%% %6.2fx %6.1f%% | %6.1f%% %6.2fx "
                    "%6.1f%% | %6.1f%% %6.2fx %6.1f%%\n",
                    app.spec.name.c_str(), 100.0 * pr.compressionRatio,
                    zp.speedup, zp.energySavingPct, 100.0 * drs_compr,
                    sw.speedup, sw.energySavingPct, 100.0 * drs_compr,
                    hw.speedup, hw.energySavingPct);

        rep.metric(app.spec.name + ".zero_pruning.speedup", zp.speedup);
        rep.metric(app.spec.name + ".software_drs.speedup", sw.speedup);
        rep.metric(app.spec.name + ".drs_crm.speedup", hw.speedup);
        rep.metric(app.spec.name + ".drs.compression_pct",
                   100.0 * drs_compr);

        c_zp.push_back(pr.compressionRatio);
        s_zp.push_back(zp.speedup);
        e_zp.push_back(zp.energySavingPct);
        c_sw.push_back(drs_compr);
        s_sw.push_back(sw.speedup);
        e_sw.push_back(sw.energySavingPct);
        c_hw.push_back(drs_compr);
        s_hw.push_back(hw.speedup);
        e_hw.push_back(hw.energySavingPct);

        // --- quantization extension -------------------------------
        const double base_weight_bytes =
            mf->baseline().result.weightDramBytes;
        QuantRow qr;
        qr.app = app.spec.name;
        qr.drsSpeed = hw.speedup;

        // (d) INT8 alone: the Baseline dataflow on quantized weights.
        mf->setThresholds({0.0, 0.0, quant::QuantMode::Int8});
        const double q8_acc = evalAccuracy(*mf, app);
        const core::TimingOutcome q8 =
            mf->evaluateTiming(runtime::PlanKind::Baseline);
        qr.q8Compr =
            base_weight_bytes / q8.report.result.weightDramBytes;
        qr.q8Speed = q8.speedup;
        qr.q8Energy = q8.energySavingPct;
        qr.q8Loss = app.baselineAccuracy - q8_acc;

        // (e) INT8 composed with DRS + CRM, at the composition's own
        // AO point (the fake-quantized model is what gets thresholded,
        // so the <=2% budget covers both error sources end-to-end).
        auto q8_ladder = ladder;
        for (core::ThresholdSet &set : q8_ladder)
            set.quant = quant::QuantMode::Int8;
        const SchemeCurve cmp_curve = evaluateScheme(
            *mf, app, runtime::PlanKind::IntraCellHw, q8_ladder);
        const std::size_t cmp_ao =
            core::selectAo(cmp_curve.points, app.baselineAccuracy, 2.0);
        const core::TimingOutcome &cmp = cmp_curve.outcomes[cmp_ao];
        qr.cmpCompr =
            base_weight_bytes / cmp.report.result.weightDramBytes;
        qr.cmpSpeed = cmp.speedup;
        qr.cmpEnergy = cmp.energySavingPct;
        qr.cmpLoss = app.baselineAccuracy -
                     cmp_curve.points[cmp_ao].accuracy;
        qr.beatsBoth =
            qr.cmpSpeed > qr.q8Speed && qr.cmpSpeed > qr.drsSpeed;
        rep.metric(app.spec.name + ".int8.speedup", qr.q8Speed);
        rep.metric(app.spec.name + ".int8.weight_compression_x",
                   qr.q8Compr);
        rep.metric(app.spec.name + ".int8_drs_crm.speedup", qr.cmpSpeed);
        qrows.push_back(qr);
    }
    rule();
    std::printf("%-6s | %6.1f%% %6.2fx %6.1f%% | %6.1f%% %6.2fx %6.1f%% "
                "| %6.1f%% %6.2fx %6.1f%%\n",
                "mean", 100.0 * mean(c_zp), geomean(s_zp), mean(e_zp),
                100.0 * mean(c_sw), geomean(s_sw), mean(e_sw),
                100.0 * mean(c_hw), geomean(s_hw), mean(e_hw));
    std::printf("CRM uplift over software DRS: %.1f%%\n",
                100.0 * (geomean(s_hw) / geomean(s_sw) - 1.0));
    rule();
    std::printf("Paper: zero-pruning compresses 37%% but *degrades* "
                "performance by 35%% with only\n7%% power saving; DRS "
                "compresses ~50%% and the CRM adds ~58%% speedup over "
                "the\ndivergent software scheme (1.07x -> 1.65x).\n");

    std::printf("\nExtension: post-training INT8 quantization, alone "
                "and composed with DRS + CRM\n(weight-traffic "
                "compression vs the fp32 baseline, AO operating "
                "point)\n");
    rule('=');
    std::printf("%-6s | %-31s | %-31s | %s\n", "App",
                "   INT8 quantization", "   INT8 + DRS + CRM",
                "beats both?");
    std::printf("%-6s | %7s %7s %7s %7s | %7s %7s %7s %7s |\n", "",
                "compr", "speed", "energy", "loss", "compr", "speed",
                "energy", "loss");
    rule();
    std::vector<double> c_q8, s_q8, e_q8, c_cmp, s_cmp, e_cmp;
    bool all_beat = true;
    for (const QuantRow &qr : qrows) {
        std::printf("%-6s | %6.2fx %6.2fx %6.1f%% %6.1f%% | %6.2fx "
                    "%6.2fx %6.1f%% %6.1f%% | %s\n",
                    qr.app.c_str(), qr.q8Compr, qr.q8Speed, qr.q8Energy,
                    100.0 * qr.q8Loss, qr.cmpCompr, qr.cmpSpeed,
                    qr.cmpEnergy, 100.0 * qr.cmpLoss,
                    qr.beatsBoth ? "yes" : "NO");
        all_beat = all_beat && qr.beatsBoth;
        c_q8.push_back(qr.q8Compr);
        s_q8.push_back(qr.q8Speed);
        e_q8.push_back(qr.q8Energy);
        c_cmp.push_back(qr.cmpCompr);
        s_cmp.push_back(qr.cmpSpeed);
        e_cmp.push_back(qr.cmpEnergy);
    }
    rule();
    std::printf("%-6s | %6.2fx %6.2fx %6.1f%% %7s | %6.2fx %6.2fx "
                "%6.1f%% %7s |\n",
                "mean", mean(c_q8), geomean(s_q8), mean(e_q8), "",
                mean(c_cmp), geomean(s_cmp), mean(e_cmp), "");
    std::printf("INT8 weight traffic compresses %.2fx (>= 3x expected "
                "from 4-byte -> 1-byte weights\nplus the per-row scale "
                "stream); the composition beats both standalone "
                "techniques on\n%s.\n",
                mean(c_q8),
                all_beat ? "every application"
                         : "SOME BUT NOT ALL applications");

    rep.metric("geomean.zero_pruning.speedup", geomean(s_zp));
    rep.metric("geomean.software_drs.speedup", geomean(s_sw));
    rep.metric("geomean.drs_crm.speedup", geomean(s_hw));
    rep.metric("geomean.int8.speedup", geomean(s_q8));
    rep.metric("geomean.int8_drs_crm.speedup", geomean(s_cmp));
    rep.write();
    return all_beat ? 0 : 1;
}
