/**
 * @file
 * Fig. 16 reproduction: weight-matrix compression ratio, speedup and
 * energy saving of (a) the offline element-level zero-pruning
 * comparator, (b) pure software DRS, and (c) DRS with the CRM hardware,
 * per application at the AO operating point.
 */

#include <cstdio>

#include "harness.hh"
#include "runtime/pruning.hh"

int
main()
{
    using namespace mflstm;
    using namespace mflstm::bench;

    constexpr double kPruneFraction = 0.37;  // the comparator's level

    std::printf("Fig. 16: weight compression / speedup / energy of "
                "zero-pruning vs DRS\n");
    rule('=');
    std::printf("%-6s | %-24s | %-24s | %-24s\n", "App",
                "   zero-pruning [31]", "   software DRS",
                "   DRS + CRM hardware");
    std::printf("%-6s | %7s %7s %7s | %7s %7s %7s | %7s %7s %7s\n", "",
                "compr", "speed", "energy", "compr", "speed", "energy",
                "compr", "speed", "energy");
    rule();

    std::vector<double> c_zp, s_zp, e_zp, c_sw, s_sw, e_sw, c_hw, s_hw,
        e_hw;

    for (const AppContext &app : makeAllApps()) {
        auto mf = makeCalibrated(app);
        const auto ladder = mf->calibration().ladder();

        // Zero-pruning: prune a copy of the model to measure the real
        // compression it achieves on these weights, then time it.
        nn::LstmModel pruned = *app.model;
        const runtime::PruningResult pr =
            runtime::applyZeroPruning(pruned, kPruneFraction);
        const core::TimingOutcome zp = mf->evaluateTiming(
            runtime::PlanKind::ZeroPruning, pr.prunedFraction);

        // DRS software and hardware at the AO set of the HW scheme (the
        // skip decisions are identical; only the execution differs).
        const SchemeCurve hw_curve = evaluateScheme(
            *mf, app, runtime::PlanKind::IntraCellHw, ladder);
        const std::size_t ao =
            core::selectAo(hw_curve.points, app.baselineAccuracy, 2.0);

        mf->runner().resetStats();
        mf->runner().setThresholds(0.0, ladder[ao].alphaIntra);
        evalAccuracy(*mf, app);

        const core::TimingOutcome hw =
            mf->evaluateTiming(runtime::PlanKind::IntraCellHw);
        const core::TimingOutcome sw =
            mf->evaluateTiming(runtime::PlanKind::IntraCellSw);

        // DRS compression ratio: skipped rows of U_{f,i,c} relative to
        // the whole united weight matrix (U_o is never skipped).
        double skip = 0.0;
        for (const auto &st : mf->runner().stats())
            skip += st.skipFraction(app.model->config().hiddenSize);
        skip /= static_cast<double>(mf->runner().stats().size());
        const double drs_compr = 0.75 * skip;

        std::printf("%-6s | %6.1f%% %6.2fx %6.1f%% | %6.1f%% %6.2fx "
                    "%6.1f%% | %6.1f%% %6.2fx %6.1f%%\n",
                    app.spec.name.c_str(), 100.0 * pr.compressionRatio,
                    zp.speedup, zp.energySavingPct, 100.0 * drs_compr,
                    sw.speedup, sw.energySavingPct, 100.0 * drs_compr,
                    hw.speedup, hw.energySavingPct);

        c_zp.push_back(pr.compressionRatio);
        s_zp.push_back(zp.speedup);
        e_zp.push_back(zp.energySavingPct);
        c_sw.push_back(drs_compr);
        s_sw.push_back(sw.speedup);
        e_sw.push_back(sw.energySavingPct);
        c_hw.push_back(drs_compr);
        s_hw.push_back(hw.speedup);
        e_hw.push_back(hw.energySavingPct);
    }
    rule();
    std::printf("%-6s | %6.1f%% %6.2fx %6.1f%% | %6.1f%% %6.2fx %6.1f%% "
                "| %6.1f%% %6.2fx %6.1f%%\n",
                "mean", 100.0 * mean(c_zp), geomean(s_zp), mean(e_zp),
                100.0 * mean(c_sw), geomean(s_sw), mean(e_sw),
                100.0 * mean(c_hw), geomean(s_hw), mean(e_hw));
    std::printf("CRM uplift over software DRS: %.1f%%\n",
                100.0 * (geomean(s_hw) / geomean(s_sw) - 1.0));
    rule();
    std::printf("Paper: zero-pruning compresses 37%% but *degrades* "
                "performance by 35%% with only\n7%% power saving; DRS "
                "compresses ~50%% and the CRM adds ~58%% speedup over "
                "the\ndivergent software scheme (1.07x -> 1.65x).\n");
    return 0;
}
