#include "harness.hh"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include <filesystem>

#include "hw/backend.hh"
#include "nn/serialize.hh"
#include "obs/json.hh"

namespace mflstm {
namespace bench {

void
BenchReport::config(const std::string &key, const std::string &value)
{
    config_[key] = value;
}

void
BenchReport::metric(const std::string &name, double value)
{
    metrics_[name] = value;
}

std::string
BenchReport::path() const
{
    return "BENCH_" + name_ + ".json";
}

bool
BenchReport::write() const
{
    const std::string file = path();
    std::ofstream os(file);
    if (!os) {
        std::fprintf(stderr, "warning: cannot write %s\n", file.c_str());
        return false;
    }
    obs::JsonWriter w(os);
    w.beginObject();
    w.key("schema").value(kSchema);
    w.key("version").value(kVersion);
    w.key("name").value(name_);
    w.key("config").beginObject();
    for (const auto &[k, v] : config_)
        w.key(k).value(v);
    w.endObject();
    w.key("metrics").beginObject();
    for (const auto &[k, v] : metrics_)
        w.key(k).value(v);
    w.endObject();
    w.endObject();
    os << '\n';
    if (!os) {
        std::fprintf(stderr, "warning: short write to %s\n",
                     file.c_str());
        return false;
    }
    std::fprintf(stderr, "machine-readable results written to %s\n",
                 file.c_str());
    return true;
}

namespace {

const char *kCacheDir = "mflstm_model_cache";

void
dumpBenchMetrics()
{
    const obs::Observer &obs = benchObserver();
    if (obs.metrics().empty())
        return;
    // glibc keeps the invoking basename around for us; fall back to a
    // generic stem if the platform doesn't provide it.
#ifdef __GLIBC__
    const std::string stem = program_invocation_short_name;
#else
    const std::string stem = "bench";
#endif
    const std::string path = stem + "_metrics.json";
    std::ofstream os(path);
    if (!os)
        return;
    obs.metrics().writeJson(os);
    std::fprintf(stderr, "[harness] metrics written to %s\n",
                 path.c_str());
}

std::string
cachePath(const workloads::BenchmarkSpec &spec)
{
    return std::string(kCacheDir) + "/" + spec.name + "_h" +
           std::to_string(spec.modelHidden) + "_l" +
           std::to_string(spec.modelLength) + "_v3.bin";
}

} // anonymous namespace

obs::Observer &
benchObserver()
{
    static obs::Observer *instance = [] {
        std::atexit(dumpBenchMetrics);
        return new obs::Observer();
    }();
    return *instance;
}

AppContext
makeApp(const workloads::BenchmarkSpec &spec)
{
    AppContext app;
    app.spec = spec;
    app.data = workloads::makeTask(spec, kTrainSamples, kTestSamples);

    const std::string path = cachePath(spec);
    if (nn::isModelFile(path)) {
        // Corruption recovery: a damaged cache file is quarantined and
        // the model retrained — a bad artifact must never abort a
        // bench run, only cost the training time the cache was saving.
        try {
            app.model = std::make_shared<nn::LstmModel>(
                nn::loadModel(path, io::ArtifactLimits{},
                              &benchObserver()));
        } catch (const io::ArtifactError &e) {
            const std::string moved = io::quarantine(path);
            std::fprintf(stderr,
                         "[harness] cache %s rejected (%s): %s\n"
                         "[harness] quarantined to %s; retraining\n",
                         path.c_str(), io::toString(e.kind()), e.what(),
                         moved.empty() ? "(rename failed)"
                                       : moved.c_str());
        }
    }
    if (!app.model) {
        std::fprintf(stderr, "[harness] training %s accuracy model...\n",
                     spec.name.c_str());
        app.model = std::make_shared<nn::LstmModel>(
            workloads::trainAccuracyModel(spec, app.data, kTrainEpochs));
        std::error_code ec;
        std::filesystem::create_directories(kCacheDir, ec);
        if (!ec)
            nn::saveModel(*app.model, path);
    }
    app.baselineAccuracy = workloads::exactAccuracy(*app.model, app.data);
    return app;
}

std::vector<AppContext>
makeAllApps()
{
    std::vector<AppContext> apps;
    for (const workloads::BenchmarkSpec &spec : workloads::tableII())
        apps.push_back(makeApp(spec));
    return apps;
}

std::unique_ptr<core::MemoryFriendlyLstm>
makeCalibrated(const AppContext &app, const std::string &backendId)
{
    auto mf = std::make_unique<core::MemoryFriendlyLstm>(
        *app.model, core::MemoryFriendlyLstm::Config{
                        hw::registry().get(backendId).config,
                        app.spec.timingShape(), &benchObserver()});
    mf->calibrate(app.data.calibrationSequences(kCalibrationSeqs));
    return mf;
}

double
evalAccuracy(core::MemoryFriendlyLstm &mf, const AppContext &app)
{
    if (app.data.isLm)
        return core::approxLmNextTokenAccuracy(mf.runner(),
                                               app.data.lm.test);
    return core::approxClassificationAccuracy(mf.runner(),
                                              app.data.cls.test);
}

SchemeCurve
evaluateScheme(core::MemoryFriendlyLstm &mf, const AppContext &app,
               runtime::PlanKind kind,
               const std::vector<core::ThresholdSet> &ladder)
{
    SchemeCurve curve;
    curve.kind = kind;

    runtime::ExecutionPlan probe;
    probe.kind = kind;
    const bool uses_inter = probe.usesInter();
    const bool uses_intra = probe.usesIntra();

    for (std::size_t i = 0; i < ladder.size(); ++i) {
        // The quant mode rides along unconditionally: it is orthogonal
        // to which alphas the scheme uses (DESIGN.md §12).
        mf.setThresholds({uses_inter ? ladder[i].alphaInter : 0.0,
                          uses_intra ? ladder[i].alphaIntra : 0.0,
                          ladder[i].quant});

        core::OperatingPoint pt;
        pt.index = i;
        pt.set = ladder[i];
        pt.accuracy = evalAccuracy(mf, app);

        const core::TimingOutcome outcome = mf.evaluateTiming(kind);
        pt.speedup = outcome.speedup;

        curve.points.push_back(pt);
        curve.outcomes.push_back(outcome);
    }
    return curve;
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs)
        acc += std::log(x);
    return std::exp(acc / static_cast<double>(xs.size()));
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs)
        acc += x;
    return acc / static_cast<double>(xs.size());
}

void
rule(char c, int width)
{
    for (int i = 0; i < width; ++i)
        std::putchar(c);
    std::putchar('\n');
}

} // namespace bench
} // namespace mflstm
