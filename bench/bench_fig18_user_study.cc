/**
 * @file
 * Fig. 18 reproduction: mean user-satisfaction score (1-5) of the
 * Baseline, AO, BPA and UO schemes over the simulated 30-participant
 * replay study (Section VI-E), per application and averaged.
 */

#include <cstdio>

#include "harness.hh"
#include "study/study.hh"

int
main()
{
    using namespace mflstm;
    using namespace mflstm::bench;

    std::printf("Fig. 18: user satisfaction scores (30 simulated "
                "participants, 100 replays each,\n25 per scheme)\n");
    rule('=');
    std::printf("%-6s %10s %10s %10s %10s\n", "App", "Baseline", "AO",
                "BPA", "UO");
    rule();

    BenchReport rep("fig18_user_study");
    std::vector<double> base_s, ao_s, bpa_s, uo_s;
    for (const AppContext &app : makeAllApps()) {
        auto mf = makeCalibrated(app);
        const auto ladder = mf->calibration().ladder();
        const SchemeCurve curve = evaluateScheme(
            *mf, app, runtime::PlanKind::Combined, ladder);

        const std::size_t ao =
            core::selectAo(curve.points, app.baselineAccuracy, 2.0);
        const std::size_t bpa = core::selectBpa(curve.points);

        const study::StudyResult res = study::runUserStudy(
            curve.points, app.baselineAccuracy, ao, bpa);

        std::printf("%-6s %10.2f %10.2f %10.2f %10.2f\n",
                    app.spec.name.c_str(),
                    res.score(study::Scheme::Baseline),
                    res.score(study::Scheme::Ao),
                    res.score(study::Scheme::Bpa),
                    res.score(study::Scheme::Uo));

        rep.metric(app.spec.name + ".baseline_score",
                   res.score(study::Scheme::Baseline));
        rep.metric(app.spec.name + ".ao_score",
                   res.score(study::Scheme::Ao));
        rep.metric(app.spec.name + ".bpa_score",
                   res.score(study::Scheme::Bpa));
        rep.metric(app.spec.name + ".uo_score",
                   res.score(study::Scheme::Uo));

        base_s.push_back(res.score(study::Scheme::Baseline));
        ao_s.push_back(res.score(study::Scheme::Ao));
        bpa_s.push_back(res.score(study::Scheme::Bpa));
        uo_s.push_back(res.score(study::Scheme::Uo));
    }
    rule();
    std::printf("%-6s %10.2f %10.2f %10.2f %10.2f\n", "mean",
                mean(base_s), mean(ao_s), mean(bpa_s), mean(uo_s));
    rule();
    rep.metric("mean.baseline_score", mean(base_s));
    rep.metric("mean.ao_score", mean(ao_s));
    rep.metric("mean.bpa_score", mean(bpa_s));
    rep.metric("mean.uo_score", mean(uo_s));
    rep.write();
    std::printf("Paper shape: AO > Baseline (faster, imperceptible "
                "loss); BPA loses users to its\naccuracy cost; UO, tuned "
                "per user, scores best.\n");
    return 0;
}
