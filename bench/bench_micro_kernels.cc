/**
 * @file
 * google-benchmark microbenchmarks of the CPU-side tensor kernels the
 * accuracy substrate runs on: GEMV/GEMM (plain, transposed,
 * row-skipping), the LSTM cell step, and the DRS cell step. These
 * measure the reproduction's own kernels (wall clock), not the
 * simulated GPU.
 */

#include <benchmark/benchmark.h>

#include "core/approx.hh"
#include "harness.hh"
#include "nn/lstm.hh"
#include "tensor/ops.hh"
#include "tensor/rng.hh"

namespace {

using namespace mflstm;
using tensor::Matrix;
using tensor::Vector;

Matrix
randomMatrix(std::size_t r, std::size_t c, std::uint64_t seed)
{
    tensor::Rng rng(seed);
    Matrix m(r, c);
    rng.fillUniform(m, -1.0f, 1.0f);
    return m;
}

Vector
randomVector(std::size_t n, std::uint64_t seed)
{
    tensor::Rng rng(seed);
    Vector v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = rng.uniform(-1.0f, 1.0f);
    return v;
}

void
BM_Gemv(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const Matrix a = randomMatrix(4 * n, n, 1);
    const Vector x = randomVector(n, 2);
    Vector y;
    for (auto _ : state) {
        tensor::gemv(a, x, y);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            4 * n * n);
}
BENCHMARK(BM_Gemv)->Arg(128)->Arg(256)->Arg(512);

void
BM_GemvRowSkip(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const Matrix a = randomMatrix(3 * n, n, 3);
    const Vector x = randomVector(n, 4);
    std::vector<std::uint32_t> skip;
    for (std::uint32_t r = 0; r < 3 * n; r += 2)
        skip.push_back(r);  // 50% row skip
    Vector y;
    for (auto _ : state) {
        tensor::gemvRowSkip(a, x, skip, y);
        benchmark::DoNotOptimize(y.data());
    }
}
BENCHMARK(BM_GemvRowSkip)->Arg(256)->Arg(512);

void
BM_GemvT(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const Matrix a = randomMatrix(n, n, 5);
    const Vector x = randomVector(n, 6);
    Vector y;
    for (auto _ : state) {
        tensor::gemvT(a, x, y);
        benchmark::DoNotOptimize(y.data());
    }
}
BENCHMARK(BM_GemvT)->Arg(256)->Arg(512);

void
BM_Gemm(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const Matrix a = randomMatrix(n, n, 7);
    const Matrix b = randomMatrix(n, n, 8);
    Matrix c;
    for (auto _ : state) {
        tensor::gemm(a, b, c);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void
BM_LstmCellForward(benchmark::State &state)
{
    const auto h = static_cast<std::size_t>(state.range(0));
    nn::LstmLayerParams p(h, h);
    tensor::Rng rng(9);
    p.init(rng);
    const Vector x_proj = randomVector(4 * h, 10);
    nn::LstmState prev(h);
    for (auto _ : state) {
        auto next = nn::lstmCellForward(p, x_proj, prev);
        benchmark::DoNotOptimize(next.h.data());
    }
}
BENCHMARK(BM_LstmCellForward)->Arg(64)->Arg(128)->Arg(256);

void
BM_DrsCellForward(benchmark::State &state)
{
    const auto h = static_cast<std::size_t>(state.range(0));
    nn::LstmLayerParams p(h, h);
    tensor::Rng rng(11);
    p.init(rng);
    const Vector x_proj = randomVector(4 * h, 12);
    nn::LstmState prev(h);
    for (auto _ : state) {
        auto next = core::lstmCellForwardDrs(p, x_proj, prev, 0.4,
                                             nn::SigmoidKind::Logistic);
        benchmark::DoNotOptimize(next.h.data());
    }
}
BENCHMARK(BM_DrsCellForward)->Arg(64)->Arg(128)->Arg(256);

/**
 * Console reporter that also captures every per-iteration run into the
 * shared BenchReport, so this binary emits BENCH_micro_kernels.json
 * under the same schema as the figure benches. Wall-clock numbers are
 * machine-dependent — the report is for archival/trend plots, not for
 * the CI regression gate (which diffs the simulated benches only).
 */
class RecordingReporter : public benchmark::ConsoleReporter
{
  public:
    explicit RecordingReporter(bench::BenchReport &rep) : rep_(rep) {}

    void ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &r : runs) {
            if (r.run_type != Run::RT_Iteration || r.error_occurred)
                continue;
            rep_.metric(r.benchmark_name() + ".real_time_ns",
                        r.GetAdjustedRealTime());
        }
        ConsoleReporter::ReportRuns(runs);
    }

  private:
    bench::BenchReport &rep_;
};

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    bench::BenchReport rep("micro_kernels");
    RecordingReporter reporter(rep);
    benchmark::RunSpecifiedBenchmarks(&reporter);
    rep.write();
    return 0;
}
