/**
 * @file
 * Section VI-F reproduction: overhead analysis of the two optimisation
 * levels and the CRM hardware, per application and averaged —
 *
 *  - inter-cell: the breakpoint-search/link-prediction kernels and the
 *    tissue gather kernels, as a share of the optimised runtime/energy;
 *  - intra-cell: the DRS scan kernels and the extra kernel launches of
 *    the split Algorithm 3 flow;
 *  - CRM: the pipeline latency it adds and its dynamic + static energy.
 */

#include <cstdio>

#include "gpu/simulator.hh"
#include "harness.hh"

int
main()
{
    using namespace mflstm;
    using namespace mflstm::bench;

    const gpu::GpuConfig cfg = gpu::GpuConfig::tegraX1();

    std::printf("Section VI-F: overhead analysis (AO threshold set)\n");
    rule('=');
    std::printf("%-6s | %-15s | %-15s | %-15s\n", "App",
                " inter-cell", " intra-cell", " CRM hardware");
    std::printf("%-6s | %7s %7s | %7s %7s | %7s %7s\n", "", "perf",
                "power", "perf", "power", "perf", "power");
    rule();

    BenchReport rep("overheads");
    rep.config("gpu", cfg.name);
    std::vector<double> ip, iw, dp, dw, cp, cw;

    for (const AppContext &app : makeAllApps()) {
        auto mf = makeCalibrated(app);
        const auto ladder = mf->calibration().ladder();

        // --- inter-cell overheads at its AO point ---------------------
        const SchemeCurve inter_curve = evaluateScheme(
            *mf, app, runtime::PlanKind::InterCell, ladder);
        const std::size_t inter_ao = core::selectAo(
            inter_curve.points, app.baselineAccuracy, 2.0);
        const auto &ir = inter_curve.outcomes[inter_ao].report.result;
        const double inter_over_us =
            (ir.timePerClassUs.count(gpu::KernelClass::Relevance)
                 ? ir.timePerClassUs.at(gpu::KernelClass::Relevance)
                 : 0.0) +
            (ir.timePerClassUs.count(gpu::KernelClass::Other)
                 ? ir.timePerClassUs.at(gpu::KernelClass::Other)
                 : 0.0);
        const double inter_perf = 100.0 * inter_over_us / ir.timeUs;
        // The overhead kernels are launch/L2-bound: charge them the
        // static+idle power over their runtime.
        const double inter_power =
            100.0 * ((cfg.socStaticW + cfg.gpuIdleW) * inter_over_us *
                     1e-6) /
            ir.energy.totalJ();

        // --- intra-cell overheads at its AO point ----------------------
        const SchemeCurve intra_curve = evaluateScheme(
            *mf, app, runtime::PlanKind::IntraCellHw, ladder);
        const std::size_t intra_ao = core::selectAo(
            intra_curve.points, app.baselineAccuracy, 2.0);
        const auto &dr = intra_curve.outcomes[intra_ao].report.result;
        const double drs_us =
            dr.timePerClassUs.count(gpu::KernelClass::Drs)
                ? dr.timePerClassUs.at(gpu::KernelClass::Drs)
                : 0.0;
        // The split flow launches 5 kernels per cell instead of 2.
        const double base_kernels =
            static_cast<double>(mf->baseline().result.kernelCount);
        const double extra_launch_us =
            (static_cast<double>(dr.kernelCount) - base_kernels) *
            cfg.streamedLaunchUs();
        const double intra_over_us =
            drs_us + std::max(0.0, extra_launch_us);
        const double intra_perf = 100.0 * intra_over_us / dr.timeUs;
        const double intra_power =
            100.0 * ((cfg.socStaticW + cfg.gpuIdleW) * intra_over_us *
                     1e-6) /
            dr.energy.totalJ();

        // --- CRM hardware overheads ------------------------------------
        const double crm_perf =
            100.0 * (dr.crmCycles / cfg.cyclesPerUs()) / dr.timeUs;
        const double crm_power = 100.0 * dr.energy.crmJ /
                                 dr.energy.totalJ();

        std::printf("%-6s | %6.2f%% %6.2f%% | %6.2f%% %6.2f%% | "
                    "%6.2f%% %6.2f%%\n",
                    app.spec.name.c_str(), inter_perf, inter_power,
                    intra_perf, intra_power, crm_perf, crm_power);

        ip.push_back(inter_perf);
        iw.push_back(inter_power);
        dp.push_back(intra_perf);
        dw.push_back(intra_power);
        cp.push_back(crm_perf);
        cw.push_back(crm_power);

        rep.metric(app.spec.name + ".inter.perf_overhead_pct",
                   inter_perf);
        rep.metric(app.spec.name + ".intra.perf_overhead_pct",
                   intra_perf);
        rep.metric(app.spec.name + ".crm.perf_overhead_pct", crm_perf);
        rep.metric(app.spec.name + ".crm.power_overhead_pct", crm_power);
    }
    rule();
    std::printf("%-6s | %6.2f%% %6.2f%% | %6.2f%% %6.2f%% | "
                "%6.2f%% %6.2f%%\n",
                "mean", mean(ip), mean(iw), mean(dp), mean(dw), mean(cp),
                mean(cw));
    std::printf("CRM gate-level model: %.1f pJ per filtered thread slot, "
                "%.0f mW static adder\n",
                cfg.crmPjPerThread, cfg.crmStaticW * 1e3);
    rule();
    std::printf("Paper: inter 2.23%% perf / 1.65%% power; intra 3.39%% / "
                "3.21%%; CRM 1.47%% / <1%%.\nExpected shape: all "
                "overheads are single-digit percentages.\n");
    rep.metric("mean.inter.perf_overhead_pct", mean(ip));
    rep.metric("mean.intra.perf_overhead_pct", mean(dp));
    rep.metric("mean.crm.perf_overhead_pct", mean(cp));
    rep.write();
    return 0;
}
