/**
 * @file
 * Auto-scheduler acceptance gate (DESIGN.md §14): for every Table II
 * application, at fp32 and int8, run the tuner and check its dominance
 * guarantee end-to-end — the chosen plan must be no worse than the
 * best legacy preset on simulated time AND DRAM bytes, per app and in
 * geomean. Exit 1 on any violation, so CI fails when a search or cost
 * model regression lets the tuner pick a worse schedule than the
 * presets it replaces.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "harness.hh"
#include "sched/tuner.hh"

namespace {

using namespace mflstm;
using namespace mflstm::bench;

struct GateRow
{
    std::string app;
    std::string mode;
    std::string chosenLabel;
    std::string referenceLabel;
    double timeRatio = 0.0;   ///< chosen / reference, <= 1 required
    double bytesRatio = 0.0;  ///< chosen / reference, <= 1 required
    bool ok = false;
};

} // anonymous namespace

int
main(int argc, char **argv)
{
    // Positional args select a subset of the Table II applications.
    std::vector<workloads::BenchmarkSpec> specs;
    for (const workloads::BenchmarkSpec &spec : workloads::tableII()) {
        bool wanted = argc < 2;
        for (int i = 1; i < argc && !wanted; ++i)
            wanted = spec.name == argv[i] || spec.abbrev == argv[i];
        if (wanted)
            specs.push_back(spec);
    }
    if (specs.empty()) {
        std::fprintf(stderr,
                     "no matching application; valid names are:\n");
        for (const workloads::BenchmarkSpec &spec : workloads::tableII())
            std::fprintf(stderr, "  %s (%s)\n", spec.name.c_str(),
                         spec.abbrev.c_str());
        return 2;
    }

    const quant::QuantMode modes[] = {quant::QuantMode::Fp32,
                                      quant::QuantMode::Int8};

    std::printf("Auto-scheduler dominance gate: tuned plan vs best "
                "preset (time AND DRAM bytes)\n");
    rule('=');
    std::printf("%-6s %-5s | %-20s %-20s | %9s %9s | %s\n", "App",
                "quant", "chosen", "reference", "time", "bytes",
                "ok?");
    rule();

    BenchReport rep("tune_gate");
    std::vector<GateRow> rows;

    for (const workloads::BenchmarkSpec &spec : specs) {
        const AppContext app = makeApp(spec);
        auto mf = makeCalibrated(app);
        const auto ladder = mf->calibration().ladder();
        // Mid-ladder rung: active break/skip statistics without the
        // cost of an AO sweep (mirrors `mflstm tune`).
        const std::size_t rung = ladder.size() / 2;

        for (quant::QuantMode qm : modes) {
            mf->runner().resetStats();
            mf->setThresholds({ladder[rung].alphaInter,
                               ladder[rung].alphaIntra, qm});
            evalAccuracy(*mf, app);

            sched::TuneRequest req;
            req.shape = mf->config().timingShape;
            req.stats = mf->runner().stats();
            req.mts = mf->calibration().mts;
            req.modelHidden =
                mf->runner().model().config().hiddenSize;
            req.quant = qm;
            const sched::TuneResult res =
                sched::tune(mf->executor(), req);

            // The residency axis must actually be searched: the
            // persistent preset has to show up in the candidate table
            // for the dominance guarantee to cover it (DESIGN.md §15).
            bool sawPersistent = false;
            for (const sched::Candidate &c : res.candidates)
                sawPersistent =
                    sawPersistent || c.label == "preset:persistent";
            if (!sawPersistent) {
                std::fprintf(stderr,
                             "%s/%s: preset:persistent missing from "
                             "the tuner's candidate table\n",
                             spec.name.c_str(),
                             quant::toString(qm));
                return 1;
            }

            GateRow row;
            row.app = spec.name;
            row.mode = quant::toString(qm);
            row.chosenLabel = res.chosen.label;
            row.referenceLabel = res.referenceLabel;
            row.timeRatio = res.chosen.timeUs / res.referenceTimeUs;
            row.bytesRatio =
                res.chosen.dramBytes / res.referenceDramBytes;
            row.ok = res.dominatesReference &&
                     res.chosen.timeUs <= res.referenceTimeUs &&
                     res.chosen.dramBytes <= res.referenceDramBytes;
            rows.push_back(row);

            std::printf("%-6s %-5s | %-20s %-20s | %8.4fx %8.4fx | "
                        "%s\n",
                        row.app.c_str(), row.mode.c_str(),
                        row.chosenLabel.c_str(),
                        row.referenceLabel.c_str(), row.timeRatio,
                        row.bytesRatio, row.ok ? "yes" : "NO");

            const std::string key = spec.name + "." + row.mode;
            rep.metric(key + ".tuned_over_ref.time_ratio",
                       row.timeRatio);
            rep.metric(key + ".tuned_over_ref.bytes_ratio",
                       row.bytesRatio);
            rep.metric(key + ".dominates", row.ok ? 1.0 : 0.0);
        }
    }
    rule();

    bool all_ok = true;
    for (quant::QuantMode qm : modes) {
        const std::string mode = quant::toString(qm);
        std::vector<double> times, bytes;
        for (const GateRow &row : rows) {
            if (row.mode != mode)
                continue;
            all_ok = all_ok && row.ok;
            times.push_back(row.timeRatio);
            bytes.push_back(row.bytesRatio);
        }
        const double gt = geomean(times), gb = geomean(bytes);
        // The per-app gate already implies <= 1; the geomean is what
        // the acceptance criterion names, so gate it explicitly too.
        all_ok = all_ok && gt <= 1.0 && gb <= 1.0;
        std::printf("%-5s geomean: time %.4fx, bytes %.4fx of the "
                    "best preset\n",
                    mode.c_str(), gt, gb);
        rep.metric("geomean." + mode + ".tuned_over_ref.time_ratio",
                   gt);
        rep.metric("geomean." + mode + ".tuned_over_ref.bytes_ratio",
                   gb);
    }
    std::printf("gate: %s\n",
                all_ok ? "PASS (tuned never worse than the best "
                         "preset on either axis)"
                       : "FAIL");
    rep.metric("gate.pass", all_ok ? 1.0 : 0.0);
    rep.write();
    return all_ok ? 0 : 1;
}
