/**
 * @file
 * Fig. 4 reproduction: the contribution of each major factor to the
 * pipeline stall cycles while executing the Sgemv kernels of the
 * baseline LSTM flow, per application. Also reports the Section III
 * observations the figure supports: Sgemv's share of total runtime
 * (">90%") and the weight re-load factor ("up to 100x the original
 * data size"). Prints the Table I platform first.
 */

#include <cstdio>

#include "gpu/simulator.hh"
#include "harness.hh"
#include "runtime/executor.hh"

int
main()
{
    using namespace mflstm;
    using namespace mflstm::bench;

    const gpu::GpuConfig cfg = gpu::GpuConfig::tegraX1();
    std::printf("Table I platform: %s\n", cfg.name.c_str());
    std::printf("  %u SMs x %u cores @ %.0f MHz, %.1f GB/s LPDDR4, "
                "%zu KB L2, %zu KB shared/SM\n\n",
                cfg.numSms, cfg.coresPerSm, cfg.coreClockGhz * 1e3,
                cfg.dramBandwidthGBs, cfg.l2Bytes / 1024,
                cfg.sharedMemPerSmBytes / 1024);

    std::printf("Fig. 4: contribution of each factor to pipeline stall "
                "cycles during Sgemv\n");
    rule('=');
    std::printf("%-6s %9s %9s %9s %9s %9s | %7s %8s\n", "App",
                "off-chip", "on-chip", "sync", "exec-dep", "other",
                "Sgemv%", "reload-x");
    rule();

    BenchReport rep("fig04_stalls");
    rep.config("gpu", cfg.name);

    runtime::NetworkExecutor ex(cfg);
    for (const workloads::BenchmarkSpec &spec : workloads::tableII()) {
        runtime::ExecutionPlan base;
        const runtime::RunReport r = ex.run(spec.timingShape(), base);

        // Stall breakdown of the Sgemv kernels only (re-run them alone).
        gpu::Simulator sim(cfg);
        gpu::StallBreakdown stalls;
        double sgemv_dram = 0.0;
        const auto trace =
            ex.lowering().lower(spec.timingShape(), base);
        for (const gpu::KernelDesc &k : trace) {
            if (k.klass != gpu::KernelClass::Sgemv)
                continue;
            const gpu::KernelTiming t = sim.runKernel(k);
            stalls += t.stalls;
            sgemv_dram += t.dramBytes;
        }
        const double tot = stalls.total();

        const double u_bytes = 4.0 * spec.hiddenSize * spec.hiddenSize *
                               4.0 * spec.numLayers;
        std::printf("%-6s %8.1f%% %8.1f%% %8.1f%% %8.1f%% %8.1f%% | "
                    "%6.1f%% %7.1fx\n",
                    spec.name.c_str(), 100.0 * stalls.offChipMemory / tot,
                    100.0 * stalls.onChipBandwidth / tot,
                    100.0 * stalls.synchronization / tot,
                    100.0 * stalls.executionDependency / tot,
                    100.0 * stalls.other / tot,
                    100.0 * r.result.classShare(gpu::KernelClass::Sgemv),
                    sgemv_dram / u_bytes);
        rep.metric(spec.name + ".offchip_stall_pct",
                   100.0 * stalls.offChipMemory / tot);
        rep.metric(spec.name + ".sgemv_runtime_share_pct",
                   100.0 * r.result.classShare(gpu::KernelClass::Sgemv));
        rep.metric(spec.name + ".weight_reload_x", sgemv_dram / u_bytes);
    }
    rule();
    rep.write();
    std::printf("Paper shape: off-chip memory access is the major stall "
                "contributor; Sgemv\ndominates (>90%%) the baseline "
                "runtime; weights are re-streamed once per cell\n(the "
                "reload factor approaches the layer length).\n");
    return 0;
}
