/**
 * @file
 * Fig. 17 reproduction: impact of model capacity on the performance-
 * accuracy trade-off, for the representative BABI benchmark — (a)
 * varying the hidden unit size, (b) varying the input length. Each line
 * sweeps the threshold ladder of the combined scheme.
 */

#include <cstdio>

#include "harness.hh"

namespace {

using namespace mflstm;
using namespace mflstm::bench;

void
sweepConfig(workloads::BenchmarkSpec spec, const char *tag,
            BenchReport &rep, const std::string &key)
{
    const AppContext app = makeApp(spec);
    auto mf = makeCalibrated(app);
    const auto ladder = mf->calibration().ladder();
    const SchemeCurve curve =
        evaluateScheme(*mf, app, runtime::PlanKind::Combined, ladder);

    std::printf("  %-12s", tag);
    for (std::size_t i = 0; i < curve.points.size(); i += 2) {
        std::printf("  (%4.2fx,%4.1f%%)", curve.points[i].speedup,
                    100.0 * (app.baselineAccuracy -
                             curve.points[i].accuracy));
    }
    std::printf("\n");

    const core::OperatingPoint &last = curve.points.back();
    rep.metric(key + ".final_speedup", last.speedup);
    rep.metric(key + ".final_loss_pct",
               100.0 * (app.baselineAccuracy - last.accuracy));
}

} // anonymous namespace

int
main()
{
    std::printf("Fig. 17: performance-accuracy trade-offs for BABI "
                "under different model\ncapacities; tuples are (speedup, "
                "accuracy loss) at threshold sets 0,2,4,6,8,10\n");
    rule('=');

    const workloads::BenchmarkSpec base =
        workloads::benchmarkByName("BABI");
    mflstm::bench::BenchReport rep("fig17_capacity");
    rep.config("app", "BABI");

    // The accuracy model scales with the capacity under study, as the
    // paper's do: larger hidden sizes carry more redundancy and tolerate
    // more aggressive thresholds at the same loss.
    std::printf("(a) hidden unit size (input length %zu)\n", base.length);
    const std::size_t hiddens[] = {128, 256, 512, 1024};
    const std::size_t model_hiddens[] = {32, 48, 64, 80};
    for (std::size_t i = 0; i < 4; ++i) {
        workloads::BenchmarkSpec spec = base;
        spec.hiddenSize = hiddens[i];
        spec.modelHidden = model_hiddens[i];
        char tag[32];
        std::snprintf(tag, sizeof(tag), "H=%zu", hiddens[i]);
        sweepConfig(spec, tag, rep,
                    "BABI.H" + std::to_string(hiddens[i]));
    }

    std::printf("\n(b) input length (hidden size %zu)\n", base.hiddenSize);
    const std::size_t lengths[] = {43, 86, 172};
    const std::size_t model_lengths[] = {18, 26, 34};
    for (std::size_t i = 0; i < 3; ++i) {
        workloads::BenchmarkSpec spec = base;
        spec.length = lengths[i];
        spec.modelLength = model_lengths[i];
        char tag[32];
        std::snprintf(tag, sizeof(tag), "L=%zu", lengths[i]);
        sweepConfig(spec, tag, rep,
                    "BABI.L" + std::to_string(lengths[i]));
    }

    rule();
    rep.write();
    std::printf("Paper shape: at the same accuracy requirement, larger "
                "hidden sizes and longer\ninputs gain more speedup; at "
                "small losses (<5%%) the capacity impact is mild.\n");
    return 0;
}
