/**
 * @file
 * Fig. 15 reproduction: per-layer speedup and energy saving of the
 * inter-cell optimisation, for the multi-layer applications. The paper
 * observes that layers whose context links are more distinct divide
 * into more sub-layers and benefit more.
 */

#include <cstdio>

#include "harness.hh"

int
main()
{
    using namespace mflstm;
    using namespace mflstm::bench;

    std::printf("Fig. 15: per-layer speedup / energy saving of the "
                "inter-cell optimisation\n(AO threshold set)\n");
    rule('=');
    std::printf("%-6s %-7s %9s %9s %11s %12s\n", "App", "layer",
                "speedup", "energy", "break-rate", "sub-layers");
    rule();

    BenchReport rep("fig15_per_layer");
    for (const AppContext &app : makeAllApps()) {
        if (app.spec.numLayers < 2)
            continue;  // the figure only shows multi-layer apps

        auto mf = makeCalibrated(app);
        const auto ladder = mf->calibration().ladder();
        const SchemeCurve curve = evaluateScheme(
            *mf, app, runtime::PlanKind::InterCell, ladder);
        const std::size_t ao =
            core::selectAo(curve.points, app.baselineAccuracy, 2.0);

        // Re-derive the AO statistics, then time each layer separately.
        mf->runner().resetStats();
        mf->runner().setThresholds(ladder[ao].alphaInter, 0.0);
        evalAccuracy(*mf, app);

        const core::TimingOutcome outcome =
            mf->evaluateTiming(runtime::PlanKind::InterCell);

        runtime::ExecutionPlan base;
        for (std::size_t l = 0; l < app.spec.numLayers; ++l) {
            const runtime::LstmLayerShape &layer =
                mf->config().timingShape.layers[l];
            const runtime::RunReport rb =
                mf->executor().runLayer(layer, base, l);
            const runtime::RunReport ro =
                mf->executor().runLayer(layer, outcome.plan, l);

            const auto &st = mf->runner().stats()[l];
            std::printf("%-6s layer%zu %8.2fx %8.1f%% %10.3f %11.1f\n",
                        l == 0 ? app.spec.name.c_str() : "", l + 1,
                        runtime::speedup(rb, ro),
                        runtime::energySavingPct(rb, ro),
                        st.breakRate(), st.avgSubLayers());
            const std::string stem = app.spec.name + ".layer" +
                                     std::to_string(l + 1);
            rep.metric(stem + ".speedup", runtime::speedup(rb, ro));
            rep.metric(stem + ".energy_saving_pct",
                       runtime::energySavingPct(rb, ro));
        }
        rule();
    }
    rep.write();
    std::printf("Paper shape: layers with more distinct context links "
                "divide into more\nsub-layers and gain more; which "
                "layers those are depends on where the trained\nmodel "
                "saturates its gates.\n");
    return 0;
}
