/**
 * @file
 * Model cross-validation: every timing result in this reproduction
 * comes from the analytic roofline model (gpu/sm.hh); this bench runs
 * the independent cycle-level SM simulation (gpu/cycle_sm.hh) on the
 * kernels that dominate each application — the baseline Sgemv(U,h) and
 * the MTS-sized tissue Sgemm — and reports the agreement.
 */

#include <cstdio>

#include "core/tissue.hh"
#include "gpu/cycle_sm.hh"
#include "harness.hh"
#include "runtime/lowering.hh"

int
main()
{
    using namespace mflstm;
    using namespace mflstm::bench;

    const gpu::GpuConfig cfg = gpu::GpuConfig::tegraX1();
    runtime::NetworkExecutor ex(cfg);
    const runtime::Lowering &low = ex.lowering();

    std::printf("Cycle-level vs analytic model, per application's "
                "dominant kernels\n");
    rule('=');
    std::printf("%-6s | %-26s | %-26s\n", "App",
                " baseline Sgemv(U,h)", " tissue Sgemm(U,H_t)");
    std::printf("%-6s | %9s %9s %5s | %9s %9s %5s\n", "", "analytic",
                "cycle", "ratio", "analytic", "cycle", "ratio");
    rule();

    BenchReport rep("cycle_validation");
    rep.config("gpu", cfg.name);
    for (const workloads::BenchmarkSpec &spec : workloads::tableII()) {
        const runtime::LstmLayerShape layer{
            spec.hiddenSize, spec.hiddenSize, spec.length};
        const double u_bytes =
            4.0 * spec.hiddenSize * spec.hiddenSize * 4.0;

        const gpu::KernelDesc sgemv = low.cellSgemv(layer, u_bytes);
        const gpu::KernelTiming a1 = timeKernel(cfg, sgemv);
        const gpu::CycleSimResult c1 = cycleSimulate(cfg, sgemv);

        const std::size_t mts =
            core::findMts(ex, layer, 8).mts;
        const gpu::KernelDesc tissue =
            low.tissueSgemm(layer, mts, u_bytes, 0.0);
        const gpu::KernelTiming a2 = timeKernel(cfg, tissue);
        const gpu::CycleSimResult c2 = cycleSimulate(cfg, tissue);

        std::printf("%-6s | %7.0fus %7.0fus %5.2f | %7.0fus %7.0fus "
                    "%5.2f\n",
                    spec.name.c_str(), a1.cycles / cfg.cyclesPerUs(),
                    c1.cycles / cfg.cyclesPerUs(),
                    c1.cycles / a1.cycles,
                    a2.cycles / cfg.cyclesPerUs(),
                    c2.cycles / cfg.cyclesPerUs(),
                    c2.cycles / a2.cycles);
        rep.metric(spec.name + ".sgemv_cycle_ratio",
                   c1.cycles / a1.cycles);
        rep.metric(spec.name + ".tissue_cycle_ratio",
                   c2.cycles / a2.cycles);
    }
    rule();
    rep.write();
    std::printf("Both models must agree on the bottleneck; ratios near "
                "1.0 validate the\nroofline timing used throughout the "
                "evaluation. The cycle model's stall\nattribution is "
                "checked in tests/gpu_cycle_sm_test.cc.\n");
    return 0;
}
