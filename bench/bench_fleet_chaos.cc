/**
 * @file
 * Fleet chaos acceptance gate (DESIGN.md §16): drive a replicated
 * serving fleet through the standard seeded chaos schedule — one
 * crash, one brownout, one corrupt warm-state restart, one flash
 * crowd — across a matrix of scenarios x routing policies x replica
 * counts, with the failover machinery on and (as the control arm)
 * off. Exit 1 unless:
 *
 *  - zero requests are lost in EVERY run: everything submitted
 *    reaches a terminal response, failover on or off;
 *  - with failover on, chaos costs nothing terminal: failed == 0 and
 *    availability >= 99% in every chaos run (steady runs must be
 *    100%);
 *  - with failover off, the same chaos schedule produces terminal
 *    failures (failed > 0, availability < 99%) — the machinery is
 *    load-bearing, not vacuous;
 *  - every chaos plan replays bit-identically when regenerated from
 *    the recorded seed (describe() equality).
 *
 * The seed is recorded in BENCH_fleet_chaos.json so any failure can
 * be replayed exactly: `bench_fleet_chaos <seed>` with the recorded
 * value reruns the same schedule.
 */

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "fleet/fleet.hh"
#include "harness.hh"

namespace {

using namespace mflstm;
using namespace mflstm::bench;

constexpr std::uint64_t kTicks = 16;
/// base arrivals per tick; flash crowds burst on top
constexpr std::size_t kPerTick = 4;
/// quiet ticks after the horizon so restarts land before the drain
constexpr int kCooldownTicks = 6;

struct RunResult
{
    std::string scenario;  ///< steady | chaos
    std::string policy;
    std::size_t replicas = 0;
    bool failover = true;
    fleet::Fleet::Stats stats;
    double availability = 0.0;
    std::uint64_t lost = 0;
    bool replayOk = true;  ///< chaos plan == regenerated-from-seed
};

RunResult
runOne(const core::MemoryFriendlyLstm &mf, const AppContext &app,
       fleet::RoutingPolicy policy, std::size_t replicas, bool chaos,
       bool failover, std::uint64_t seed, const std::string &store_dir)
{
    fleet::FleetOptions fo;
    fo.replicas = replicas;
    fo.policy = policy;
    fo.failover = failover;
    fo.storeDir = store_dir;
    // Serialise each replica (one worker, singleton batches) so a
    // crash always finds queued work to strand / fail over — the
    // difference the two arms of the gate measure. Hedging stays off
    // and the heartbeat latency criterion disabled: wall-clock noise
    // must not move the terminal counts.
    fo.engine.maxBatch = 1;
    fo.engine.workers = 1;
    fo.slos.push_back(fleet::SloClass{"interactive", 10, 0.0});
    fo.slos.push_back(fleet::SloClass{"batch", 0, 0.0});

    fleet::Fleet f(mf, fo);
    if (chaos)
        f.setChaosPlan(fleet::ChaosPlan::standard(seed, replicas, kTicks));

    const auto seqs = app.data.calibrationSequences(kCalibrationSeqs);
    std::size_t next = 0;
    auto submit_one = [&] {
        fleet::FleetRequest req;
        req.tokens = seqs[next % seqs.size()];
        req.sessionId = "session-" + std::to_string(next % 12);
        req.tenant = next % 2 == 0 ? "interactive" : "batch";
        f.submit(std::move(req));
        ++next;
    };

    // Submit before ticking: a crash event lands on a replica whose
    // queue still holds this tick's arrivals.
    for (std::uint64_t t = 0; t < kTicks; ++t) {
        for (std::size_t k = 0; k < kPerTick; ++k)
            submit_one();
        const fleet::Fleet::TickReport rep = f.tick();
        for (std::size_t k = 0; k < rep.flashCrowdBurst; ++k)
            submit_one();
    }
    for (int t = 0; t < kCooldownTicks; ++t)
        f.tick();
    f.drain();

    RunResult r;
    r.scenario = chaos ? "chaos" : "steady";
    r.policy = fleet::toString(policy);
    r.replicas = replicas;
    r.failover = failover;
    r.stats = f.stats();
    r.availability = f.availability();
    r.lost = r.stats.submitted - r.stats.completed;
    if (chaos) {
        // The replay check: the recorded seed regenerates the exact
        // schedule that ran (describe() is the canonical identity).
        const fleet::ChaosPlan regen =
            fleet::ChaosPlan::standard(seed, replicas, kTicks);
        r.replayOk = regen == f.chaosPlan() &&
                     regen.describe() == f.chaosPlan().describe();
    }
    f.shutdown();
    return r;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::uint64_t seed = 42;
    if (argc > 1) {
        char *end = nullptr;
        seed = std::strtoull(argv[1], &end, 10);
        if (end == argv[1] || *end != '\0') {
            std::fprintf(stderr, "usage: bench_fleet_chaos [seed]\n");
            return 2;
        }
    }

    const AppContext app = makeApp(workloads::tableII().front());
    auto mf = makeCalibrated(app);
    auto ladder = mf->calibration().ladder();
    mf->setThresholds(ladder[ladder.size() / 2]);
    evalAccuracy(*mf, app);

    // One shared store across the matrix: the first run seeds it, the
    // rest warm-boot (corrupt-restart events heal it before exiting).
    const std::string store_dir =
        (std::filesystem::temp_directory_path() /
         ("mflstm_bench_fleet_store_" + std::to_string(seed)))
            .string();
    std::filesystem::remove_all(store_dir);

    const fleet::RoutingPolicy policies[] = {
        fleet::RoutingPolicy::SessionAffinity,
        fleet::RoutingPolicy::RoundRobin,
        fleet::RoutingPolicy::LeastLoaded,
    };
    const std::size_t replicaCounts[] = {2, 3};

    std::printf("Fleet chaos gate: %s, seed %llu, %llu ticks, "
                "%zu arrivals/tick + flash crowds\n",
                app.spec.name.c_str(),
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(kTicks), kPerTick);
    rule('=');
    std::printf("%-7s %-13s %2s %-4s | %5s %5s %5s %4s | %6s | %5s %5s "
                "| %s\n",
                "scen", "policy", "N", "fo", "sub", "done", "ok",
                "fail", "avail", "fovr", "park", "replay");
    rule();

    BenchReport rep("fleet_chaos");
    rep.config("app", app.spec.name);
    rep.config("chaos_seed", std::to_string(seed));
    rep.config("ticks", std::to_string(kTicks));
    rep.config("per_tick", std::to_string(kPerTick));
    rep.config("plan",
               fleet::ChaosPlan::standard(seed, 2, kTicks).describe());

    std::vector<RunResult> results;
    for (bool chaos : {false, true}) {
        for (const fleet::RoutingPolicy policy : policies) {
            for (const std::size_t n : replicaCounts) {
                // The failover-off control arm only means something
                // under chaos; steady runs never fail either way.
                for (const bool failover :
                     chaos ? std::vector<bool>{true, false}
                           : std::vector<bool>{true}) {
                    const RunResult r =
                        runOne(*mf, app, policy, n, chaos, failover,
                               seed, store_dir);
                    results.push_back(r);
                    std::printf(
                        "%-7s %-13s %2zu %-4s | %5llu %5llu %5llu "
                        "%4llu | %5.1f%% | %5llu %5llu | %s\n",
                        r.scenario.c_str(), r.policy.c_str(),
                        r.replicas, r.failover ? "on" : "off",
                        static_cast<unsigned long long>(
                            r.stats.submitted),
                        static_cast<unsigned long long>(
                            r.stats.completed),
                        static_cast<unsigned long long>(r.stats.ok),
                        static_cast<unsigned long long>(r.stats.failed),
                        r.availability * 100.0,
                        static_cast<unsigned long long>(
                            r.stats.failovers),
                        static_cast<unsigned long long>(r.stats.parked),
                        r.replayOk ? "yes" : "NO");
                }
            }
        }
    }
    rule();

    bool zero_lost = true;
    bool failover_holds = true;
    bool control_fails = true;
    bool replay_ok = true;
    for (const RunResult &r : results) {
        const std::string key = r.scenario + "." + r.policy + ".r" +
                                std::to_string(r.replicas) +
                                (r.failover ? ".failover"
                                            : ".no_failover");
        rep.metric(key + ".submitted",
                   static_cast<double>(r.stats.submitted));
        rep.metric(key + ".completed",
                   static_cast<double>(r.stats.completed));
        rep.metric(key + ".ok", static_cast<double>(r.stats.ok));
        rep.metric(key + ".failed", static_cast<double>(r.stats.failed));
        rep.metric(key + ".lost", static_cast<double>(r.lost));
        rep.metric(key + ".availability", r.availability);
        rep.metric(key + ".failovers",
                   static_cast<double>(r.stats.failovers));
        rep.metric(key + ".hedges", static_cast<double>(r.stats.hedges));
        rep.metric(key + ".parked", static_cast<double>(r.stats.parked));
        rep.metric(key + ".replay_ok", r.replayOk ? 1.0 : 0.0);

        zero_lost = zero_lost && r.lost == 0;
        replay_ok = replay_ok && r.replayOk;
        if (r.failover) {
            const double floor =
                r.scenario == "steady" ? 1.0 : 0.99;
            failover_holds = failover_holds && r.stats.failed == 0 &&
                             r.availability >= floor;
        } else {
            control_fails = control_fails && r.stats.failed > 0 &&
                            r.availability < 0.99;
        }
    }

    const bool pass =
        zero_lost && failover_holds && control_fails && replay_ok;
    std::printf("zero lost requests (all runs):            %s\n",
                zero_lost ? "yes" : "NO");
    std::printf("failover on: failed==0, avail>=99%%:       %s\n",
                failover_holds ? "yes" : "NO");
    std::printf("failover off: terminal failures present:  %s\n",
                control_fails ? "yes" : "NO");
    std::printf("chaos plan replays from recorded seed:    %s\n",
                replay_ok ? "yes" : "NO");
    std::printf("gate: %s\n", pass ? "PASS" : "FAIL");
    rep.metric("gate.zero_lost", zero_lost ? 1.0 : 0.0);
    rep.metric("gate.failover_holds", failover_holds ? 1.0 : 0.0);
    rep.metric("gate.control_fails", control_fails ? 1.0 : 0.0);
    rep.metric("gate.replay_ok", replay_ok ? 1.0 : 0.0);
    rep.metric("gate.pass", pass ? 1.0 : 0.0);
    rep.write();

    std::error_code ec;
    std::filesystem::remove_all(store_dir, ec);
    return pass ? 0 : 1;
}
