/**
 * @file
 * Table II reproduction: the six NLP applications, their full-size LSTM
 * configurations, and the synthetic substitution this reproduction
 * trains its accuracy models on (with achieved baseline accuracy).
 */

#include <cstdio>

#include "harness.hh"

int
main()
{
    using namespace mflstm;
    using namespace mflstm::bench;

    std::printf("Table II: the state-of-the-art NLP applications "
                "investigated in our study\n");
    rule('=');
    std::printf("%-6s %-4s %12s %7s %7s | %-14s %9s\n", "Name", "Abbr",
                "Hidden_Size", "Layers", "Length", "synthetic task",
                "base acc");
    rule();

    BenchReport rep("table2_benchmarks");
    for (const workloads::BenchmarkSpec &spec : workloads::tableII()) {
        const AppContext app = makeApp(spec);
        rep.metric(spec.name + ".baseline_accuracy_pct",
                   100.0 * app.baselineAccuracy);
        const char *family = "";
        switch (spec.family) {
          case workloads::TaskFamily::Sentiment:
            family = "sentiment";
            break;
          case workloads::TaskFamily::Qa:
            family = "question-answer";
            break;
          case workloads::TaskFamily::Entailment:
            family = "entailment";
            break;
          case workloads::TaskFamily::LanguageModel:
            family = "language model";
            break;
          case workloads::TaskFamily::Translation:
            family = "translation";
            break;
        }
        std::printf("%-6s %-4s %12zu %7zu %7zu | %-14s %8.1f%%\n",
                    spec.name.c_str(), spec.abbrev.c_str(),
                    spec.hiddenSize, spec.numLayers, spec.length, family,
                    100.0 * app.baselineAccuracy);
    }
    rule();
    std::printf("Accuracy models are trained at reduced hidden size "
                "(DESIGN.md sec.2); the\nfull-size configurations above "
                "drive the GPU timing simulation.\n");
    rep.write();
    return 0;
}
