/**
 * @file
 * Fig. 14 reproduction (the headline result): speedup and system energy
 * saving of the inter-cell optimisation, the intra-cell optimisation
 * (DRS + CRM) and the combined system over the cuDNN-style baseline,
 * per application and on average, at the AO operating point (the
 * fastest threshold set within the user-imperceptible 2% accuracy-loss
 * budget).
 */

#include <cstdio>

#include "harness.hh"

int
main()
{
    using namespace mflstm;
    using namespace mflstm::bench;

    std::printf("Fig. 14: speedup and energy saving at the AO threshold "
                "set (<=2%% accuracy loss)\n");
    rule('=');
    std::printf("%-6s | %-17s | %-17s | %-17s | %s\n", "App",
                " inter-cell", " intra-cell", " combined", "acc loss");
    std::printf("%-6s | %8s %8s | %8s %8s | %8s %8s |\n", "",
                "speedup", "energy", "speedup", "energy", "speedup",
                "energy");
    rule();

    std::vector<double> sp_inter, sp_intra, sp_comb;
    std::vector<double> en_inter, en_intra, en_comb;
    double max_comb_speedup = 0.0, max_comb_energy = 0.0;

    for (const AppContext &app : makeAllApps()) {
        auto mf = makeCalibrated(app);
        const auto ladder = mf->calibration().ladder();

        auto at_ao = [&](runtime::PlanKind kind) {
            const SchemeCurve curve =
                evaluateScheme(*mf, app, kind, ladder);
            const std::size_t ao = core::selectAo(
                curve.points, app.baselineAccuracy, 2.0);
            return std::tuple(curve.outcomes[ao].speedup,
                              curve.outcomes[ao].energySavingPct,
                              curve.points[ao].accuracy, ao);
        };

        const auto [si, ei, ai, ao_i] =
            at_ao(runtime::PlanKind::InterCell);
        const auto [sd, ed, ad, ao_d] =
            at_ao(runtime::PlanKind::IntraCellHw);

        // Combined AO: the controller tunes the two thresholds to the
        // accuracy budget independently (Fig. 10 op 3) — start from each
        // level's own AO rung and back off whichever contributes the
        // larger loss until the pair fits the 2% budget.
        std::size_t ci = ao_i, cd = ao_d;
        double sc = 1.0, ec = 0.0, ac = app.baselineAccuracy;
        for (;;) {
            mf->runner().resetStats();
            mf->runner().setThresholds(ladder[ci].alphaInter,
                                       ladder[cd].alphaIntra);
            ac = evalAccuracy(*mf, app);
            const core::TimingOutcome out =
                mf->evaluateTiming(runtime::PlanKind::Combined);
            sc = out.speedup;
            ec = out.energySavingPct;
            if (app.baselineAccuracy - ac <= 0.02 + 1e-9 ||
                (ci == 0 && cd == 0)) {
                break;
            }
            // Back off the level with the costlier standalone loss.
            const double loss_i = app.baselineAccuracy - ai;
            const double loss_d = app.baselineAccuracy - ad;
            if (ci > 0 && (cd == 0 || loss_i >= loss_d))
                --ci;
            else
                --cd;
        }

        std::printf("%-6s | %7.2fx %7.1f%% | %7.2fx %7.1f%% | "
                    "%7.2fx %7.1f%% | %5.1f%%\n",
                    app.spec.name.c_str(), si, ei, sd, ed, sc, ec,
                    100.0 * (app.baselineAccuracy - ac));

        sp_inter.push_back(si);
        sp_intra.push_back(sd);
        sp_comb.push_back(sc);
        en_inter.push_back(ei);
        en_intra.push_back(ed);
        en_comb.push_back(ec);
        max_comb_speedup = std::max(max_comb_speedup, sc);
        max_comb_energy = std::max(max_comb_energy, ec);
    }
    rule();
    std::printf("%-6s | %7.2fx %7.1f%% | %7.2fx %7.1f%% | "
                "%7.2fx %7.1f%% |\n",
                "mean", geomean(sp_inter), mean(en_inter),
                geomean(sp_intra), mean(en_intra), geomean(sp_comb),
                mean(en_comb));
    std::printf("combined: up to %.2fx speedup, up to %.1f%% energy "
                "saving\n",
                max_comb_speedup, max_comb_energy);
    rule();
    std::printf("Paper: inter 2.05x / 35.9%%; intra 1.65x / 16.9%%; "
                "combined 2.54x (up to 3.24x) /\n47.2%% (up to 58.8%%) "
                "at 2%% loss. Expected shape: combined > each alone; "
                "PTB (longest\nlayer, largest weights) benefits most.\n");
    return 0;
}
