/**
 * @file
 * Fig. 14 reproduction (the headline result): speedup and system energy
 * saving of the inter-cell optimisation, the intra-cell optimisation
 * (DRS + CRM) and the combined system over the cuDNN-style baseline,
 * per application and on average, at the AO operating point (the
 * fastest threshold set within the user-imperceptible 2% accuracy-loss
 * budget).
 *
 * Extensions over the paper figure:
 *  - INT8 weight quantization (DESIGN.md §12), alone and composed with
 *    the combined scheme, rides along as two extra plans;
 *  - the full result set is also written to BENCH_overall.json in the
 *    working directory (per-app rows plus per-plan geomeans, in the
 *    shared BenchReport schema) so CI can archive and diff the
 *    numbers with tools/bench_diff;
 *  - positional arguments filter the Table II applications by name or
 *    abbreviation (e.g. `bench_fig14_overall MR` for a quick slice).
 */

#include <cstdio>
#include <cstring>
#include <map>

#include "harness.hh"

namespace {

using namespace mflstm;
using namespace mflstm::bench;

/** One plan's result on one application. */
struct PlanResult
{
    double speedup = 1.0;
    double energySavingPct = 0.0;
    double accuracyLossPct = 0.0;
};

/// plan key (stable metric path components) -> per-app results, app order
using ResultTable =
    std::map<std::string, std::vector<PlanResult>>;

void
writeReport(const std::vector<std::string> &apps,
            const ResultTable &table)
{
    // The filename stays BENCH_overall.json (CI archives that path).
    BenchReport rep("overall");
    std::string app_list;
    for (const std::string &a : apps)
        app_list += (app_list.empty() ? "" : ",") + a;
    rep.config("apps", app_list);
    rep.config("accuracy_budget_pct", "2");

    for (const auto &[plan, rows] : table) {
        std::vector<double> sp, en;
        for (std::size_t i = 0; i < apps.size(); ++i) {
            rep.metric(apps[i] + "." + plan + ".speedup",
                       rows[i].speedup);
            rep.metric(apps[i] + "." + plan + ".energy_saving_pct",
                       rows[i].energySavingPct);
            rep.metric(apps[i] + "." + plan + ".accuracy_loss_pct",
                       rows[i].accuracyLossPct);
            sp.push_back(rows[i].speedup);
            en.push_back(rows[i].energySavingPct);
        }
        rep.metric("geomean." + plan + ".speedup", geomean(sp));
        rep.metric("mean." + plan + ".energy_saving_pct", mean(en));
    }
    rep.write();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    // Positional args select a subset of the Table II applications.
    std::vector<workloads::BenchmarkSpec> specs;
    for (const workloads::BenchmarkSpec &spec : workloads::tableII()) {
        bool wanted = argc < 2;
        for (int i = 1; i < argc && !wanted; ++i)
            wanted = spec.name == argv[i] || spec.abbrev == argv[i];
        if (wanted)
            specs.push_back(spec);
    }
    if (specs.empty()) {
        std::fprintf(stderr,
                     "no matching application; valid names are:\n");
        for (const workloads::BenchmarkSpec &spec : workloads::tableII())
            std::fprintf(stderr, "  %s (%s)\n", spec.name.c_str(),
                         spec.abbrev.c_str());
        return 2;
    }

    std::printf("Fig. 14: speedup and energy saving at the AO threshold "
                "set (<=2%% accuracy loss)\n");
    rule('=');
    std::printf("%-6s | %-17s | %-17s | %-17s | %s\n", "App",
                " inter-cell", " intra-cell", " combined", "acc loss");
    std::printf("%-6s | %8s %8s | %8s %8s | %8s %8s |\n", "",
                "speedup", "energy", "speedup", "energy", "speedup",
                "energy");
    rule();

    std::vector<std::string> app_names;
    ResultTable table;
    double max_comb_speedup = 0.0, max_comb_energy = 0.0;

    for (const workloads::BenchmarkSpec &spec : specs) {
        const AppContext app = makeApp(spec);
        auto mf = makeCalibrated(app);
        const auto ladder = mf->calibration().ladder();

        auto at_ao = [&](runtime::PlanKind kind) {
            const SchemeCurve curve =
                evaluateScheme(*mf, app, kind, ladder);
            const std::size_t ao = core::selectAo(
                curve.points, app.baselineAccuracy, 2.0);
            return std::tuple(curve.outcomes[ao].speedup,
                              curve.outcomes[ao].energySavingPct,
                              curve.points[ao].accuracy, ao);
        };

        const auto [si, ei, ai, ao_i] =
            at_ao(runtime::PlanKind::InterCell);
        const auto [sd, ed, ad, ao_d] =
            at_ao(runtime::PlanKind::IntraCellHw);

        // Combined AO: the controller tunes the two thresholds to the
        // accuracy budget independently (Fig. 10 op 3) — start from each
        // level's own AO rung and back off whichever contributes the
        // larger loss until the pair fits the 2% budget. The quant mode
        // rides along as a fixed third coordinate.
        auto combined_at = [&, ai = ai, ad = ad, ao_i = ao_i,
                            ao_d = ao_d](quant::QuantMode qm) {
            std::size_t ci = ao_i, cd = ao_d;
            double sc = 1.0, ec = 0.0, ac = app.baselineAccuracy;
            for (;;) {
                mf->setThresholds({ladder[ci].alphaInter,
                                   ladder[cd].alphaIntra, qm});
                ac = evalAccuracy(*mf, app);
                const core::TimingOutcome out =
                    mf->evaluateTiming(runtime::PlanKind::Combined);
                sc = out.speedup;
                ec = out.energySavingPct;
                if (app.baselineAccuracy - ac <= 0.02 + 1e-9 ||
                    (ci == 0 && cd == 0)) {
                    break;
                }
                // Back off the level with the costlier standalone loss.
                const double loss_i = app.baselineAccuracy - ai;
                const double loss_d = app.baselineAccuracy - ad;
                if (ci > 0 && (cd == 0 || loss_i >= loss_d))
                    --ci;
                else
                    --cd;
            }
            return std::tuple(sc, ec, ac);
        };

        const auto [sc, ec, ac] = combined_at(quant::QuantMode::Fp32);

        // INT8 alone: the Baseline dataflow on quantized weights.
        mf->setThresholds({0.0, 0.0, quant::QuantMode::Int8});
        const double a8 = evalAccuracy(*mf, app);
        const core::TimingOutcome q8 =
            mf->evaluateTiming(runtime::PlanKind::Baseline);

        // INT8 composed with the combined scheme.
        const auto [sc8, ec8, ac8] =
            combined_at(quant::QuantMode::Int8);

        std::printf("%-6s | %7.2fx %7.1f%% | %7.2fx %7.1f%% | "
                    "%7.2fx %7.1f%% | %5.1f%%\n",
                    app.spec.name.c_str(), si, ei, sd, ed, sc, ec,
                    100.0 * (app.baselineAccuracy - ac));

        const auto loss = [&](double a) {
            return 100.0 * (app.baselineAccuracy - a);
        };
        app_names.push_back(app.spec.name);
        table["inter"].push_back({si, ei, loss(ai)});
        table["intra"].push_back({sd, ed, loss(ad)});
        table["combined"].push_back({sc, ec, loss(ac)});
        table["int8"].push_back(
            {q8.speedup, q8.energySavingPct, loss(a8)});
        table["combined_int8"].push_back({sc8, ec8, loss(ac8)});
        max_comb_speedup = std::max(max_comb_speedup, sc);
        max_comb_energy = std::max(max_comb_energy, ec);
    }
    rule();
    {
        std::vector<double> sp_inter, sp_intra, sp_comb;
        std::vector<double> en_inter, en_intra, en_comb;
        for (std::size_t i = 0; i < app_names.size(); ++i) {
            sp_inter.push_back(table["inter"][i].speedup);
            sp_intra.push_back(table["intra"][i].speedup);
            sp_comb.push_back(table["combined"][i].speedup);
            en_inter.push_back(table["inter"][i].energySavingPct);
            en_intra.push_back(table["intra"][i].energySavingPct);
            en_comb.push_back(table["combined"][i].energySavingPct);
        }
        std::printf("%-6s | %7.2fx %7.1f%% | %7.2fx %7.1f%% | "
                    "%7.2fx %7.1f%% |\n",
                    "mean", geomean(sp_inter), mean(en_inter),
                    geomean(sp_intra), mean(en_intra), geomean(sp_comb),
                    mean(en_comb));
    }
    std::printf("combined: up to %.2fx speedup, up to %.1f%% energy "
                "saving\n",
                max_comb_speedup, max_comb_energy);
    rule();
    std::printf("Paper: inter 2.05x / 35.9%%; intra 1.65x / 16.9%%; "
                "combined 2.54x (up to 3.24x) /\n47.2%% (up to 58.8%%) "
                "at 2%% loss. Expected shape: combined > each alone; "
                "PTB (longest\nlayer, largest weights) benefits most.\n");

    writeReport(app_names, table);
    return 0;
}
