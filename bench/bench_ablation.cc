/**
 * @file
 * Ablation study over the design choices DESIGN.md calls out (run on
 * the IMDB configuration at the AO threshold set):
 *
 *  1. DRS skipped-row semantics: DropRecurrent (Algorithm 3 kernel
 *     signatures) vs ZeroState (Section V-A prose) — accuracy impact;
 *  2. accuracy recovery: predicted context link (Eq. 6) vs zero vector;
 *  3. tissue alignment on/off — timing impact of fat/thin tissues;
 *  4. CRM hardware on/off at the same skip decisions (the Fig. 16
 *     software gap, isolated).
 */

#include <cstdio>

#include "core/tissue.hh"
#include "harness.hh"

int
main()
{
    using namespace mflstm;
    using namespace mflstm::bench;

    const AppContext app = makeApp(workloads::benchmarkByName("IMDB"));
    auto mf = makeCalibrated(app);
    const auto ladder = mf->calibration().ladder();
    const std::size_t mts = mf->calibration().mts;

    std::printf("Ablation study (IMDB, AO threshold set, baseline "
                "accuracy %.1f%%)\n",
                100.0 * app.baselineAccuracy);
    rule('=');

    BenchReport rep("ablation");
    rep.config("app", "IMDB");

    // ---- 1. DRS state policy ------------------------------------------
    const SchemeCurve hw = evaluateScheme(
        *mf, app, runtime::PlanKind::IntraCellHw, ladder);
    const std::size_t ao =
        core::selectAo(hw.points, app.baselineAccuracy, 2.0);

    mf->runner().resetStats();
    mf->runner().setThresholds(0.0, ladder[ao].alphaIntra);
    mf->runner().setDrsPolicy(core::DrsStatePolicy::DropRecurrent);
    const double acc_drop = evalAccuracy(*mf, app);
    const double skip = mf->runner().stats()[0].skipFraction(
        app.model->config().hiddenSize);

    mf->runner().resetStats();
    mf->runner().setDrsPolicy(core::DrsStatePolicy::ZeroState);
    const double acc_zero = evalAccuracy(*mf, app);
    mf->runner().setDrsPolicy(core::DrsStatePolicy::DropRecurrent);

    std::printf("1. DRS skipped-row semantics (alpha_intra = %.3f, "
                "layer-0 skip %.0f%%)\n",
                ladder[ao].alphaIntra, 100.0 * skip);
    std::printf("   drop-recurrent (default): accuracy %.1f%% "
                "(loss %.1f%%)\n",
                100.0 * acc_drop,
                100.0 * (app.baselineAccuracy - acc_drop));
    std::printf("   zero-state (paper prose):  accuracy %.1f%% "
                "(loss %.1f%%)\n\n",
                100.0 * acc_zero,
                100.0 * (app.baselineAccuracy - acc_zero));

    // ---- 2. predicted link vs naive link --------------------------------
    // Evaluated on SNLI, whose links genuinely carry the premise: at an
    // aggressive division threshold the Eq. 6 prediction (trained link
    // distribution) is compared against a predictor that only ever saw
    // one padding sequence.
    const AppContext snli =
        makeApp(workloads::benchmarkByName("SNLI"));
    auto snli_mf = makeCalibrated(snli);
    const double alpha_aggr =
        snli_mf->calibration().profile.relevanceQuantile(0.5);

    snli_mf->runner().resetStats();
    snli_mf->runner().setThresholds(alpha_aggr, 0.0);
    const double acc_pred = evalAccuracy(*snli_mf, snli);

    core::ApproxRunner naive_runner(*snli.model);
    naive_runner.calibrate({{0, 0, 0, 0}});
    naive_runner.setThresholds(alpha_aggr, 0.0);
    const double acc_naive = core::approxClassificationAccuracy(
        naive_runner, snli.data.cls.test);

    std::printf("2. accuracy recovery at breakpoints (SNLI, aggressive "
                "alpha_inter = %.1f,\n   baseline %.1f%%)\n",
                alpha_aggr, 100.0 * snli.baselineAccuracy);
    std::printf("   Eq. 6 predicted link:      accuracy %.1f%%\n",
                100.0 * acc_pred);
    std::printf("   naive (padding-only) link: accuracy %.1f%%\n\n",
                100.0 * acc_naive);

    // ---- 3. tissue alignment on/off -------------------------------------
    // Sub-layers of uneven lengths make formation produce fat + thin
    // tissues; alignment rebalances them under the MTS.
    // Eight sub-layers: plain formation's first tissues hold 8 cells,
    // well past the MTS, while its tail starves.
    const std::vector<std::size_t> sub_layers = {20, 15, 10, 8,
                                                 8,  7,  6,  6};
    const auto formed = core::formTissues(sub_layers);
    const auto aligned = core::alignTissues(sub_layers, mts);

    auto time_plan = [&](const std::vector<std::size_t> &tissues) {
        runtime::ExecutionPlan plan;
        plan.kind = runtime::PlanKind::InterCell;
        runtime::LayerInterPlan ip;
        // Clamp formation's fat tissues at the hardware limit the way a
        // naive implementation would (split overflow into extra
        // tissues).
        for (std::size_t t : tissues) {
            while (t > mts) {
                ip.tissueSizes.push_back(mts);
                t -= mts;
            }
            ip.tissueSizes.push_back(t);
        }
        plan.inter = {ip};
        return mf->executor()
            .runLayer({512, 512, 80}, plan, 0)
            .result.timeUs;
    };

    std::printf("3. tissue alignment (sub-layers 20/15/10/8/8/7/6/6, "
                "MTS %zu)\n", mts);
    std::printf("   formation only: %zu tissues, %.2f ms\n",
                formed.size(), time_plan(formed) / 1e3);
    std::printf("   with alignment: %zu tissues, %.2f ms\n\n",
                aligned.size(), time_plan(aligned) / 1e3);

    // ---- 4. CRM on/off ----------------------------------------------------
    mf->runner().resetStats();
    mf->runner().setThresholds(0.0, ladder[ao].alphaIntra);
    evalAccuracy(*mf, app);
    const auto hw_out = mf->evaluateTiming(runtime::PlanKind::IntraCellHw);
    const auto sw_out = mf->evaluateTiming(runtime::PlanKind::IntraCellSw);
    std::printf("4. CTA-reorganization hardware (same skip decisions)\n");
    std::printf("   software row-skip: %.2fx speedup\n", sw_out.speedup);
    std::printf("   with CRM:          %.2fx speedup (+%.1f%%)\n",
                hw_out.speedup,
                100.0 * (hw_out.speedup / sw_out.speedup - 1.0));
    rule();

    rep.metric("drs.drop_recurrent_loss_pct",
               100.0 * (app.baselineAccuracy - acc_drop));
    rep.metric("drs.zero_state_loss_pct",
               100.0 * (app.baselineAccuracy - acc_zero));
    rep.metric("link.predicted_accuracy_pct", 100.0 * acc_pred);
    rep.metric("link.naive_accuracy_pct", 100.0 * acc_naive);
    rep.metric("tissue.formation_ms", time_plan(formed) / 1e3);
    rep.metric("tissue.aligned_ms", time_plan(aligned) / 1e3);
    rep.metric("crm.software_speedup", sw_out.speedup);
    rep.metric("crm.hardware_speedup", hw_out.speedup);
    rep.write();
    return 0;
}
