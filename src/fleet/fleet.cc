#include "fleet/fleet.hh"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <utility>

namespace mflstm {
namespace fleet {

namespace {

double
ageMs(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - since)
        .count();
}

bool
ready(const std::future<serve::Response> &fut)
{
    return fut.valid() && fut.wait_for(std::chrono::seconds(0)) ==
                              std::future_status::ready;
}

} // anonymous namespace

Fleet::Fleet(const core::MemoryFriendlyLstm &mf, FleetOptions opts)
    : opts_(std::move(opts)), mf_(&mf)
{
    if (opts_.replicas == 0)
        throw std::invalid_argument("Fleet: replicas == 0");
    if (opts_.storeDir.empty())
        throw std::invalid_argument("Fleet: storeDir is required");
    if (opts_.maxAttempts < 1)
        throw std::invalid_argument("Fleet: maxAttempts < 1");

    if (opts_.observer) {
        obs_ = opts_.observer;
    } else {
        ownedObs_ = std::make_unique<obs::Observer>();
        obs_ = ownedObs_.get();
    }
    store_ = std::make_unique<io::ArtifactStore>(opts_.storeDir);
    router_ =
        std::make_unique<Router>(opts_.policy, opts_.slos, obs_);

    // Touch the headline counters so dumps show them even at zero.
    obs_->metrics().counter("fleet.failover_total");
    obs_->metrics().counter("fleet.hedge_total");

    // Replica 0 seeds the store (cold build + save under the write
    // lock when no valid artifact exists); later replicas warm-boot
    // from the shared artifact instead of re-planning every rung.
    for (std::size_t i = 0; i < opts_.replicas; ++i) {
        ReplicaConfig rc;
        rc.name = "r" + std::to_string(i);
        rc.engine = opts_.engine;
        rc.engine.observer = obs_;
        rc.degradedAfter = opts_.degradedAfter;
        rc.downAfter = opts_.downAfter;
        rc.recoverAfter = opts_.recoverAfter;
        rc.heartbeatSloMs = opts_.heartbeatSloMs;
        rc.probeTokens = opts_.probeTokens;
        rc.breakerTripAfter = opts_.breakerTripAfter;
        rc.breakerCooldownTicks = opts_.breakerCooldownTicks;
        replicas_.push_back(std::make_unique<Replica>(
            i, mf, *store_, std::move(rc), obs_));
    }
    obs_->metrics()
        .gauge("fleet.replicas")
        .set(static_cast<double>(opts_.replicas));
}

Fleet::~Fleet()
{
    try {
        shutdown();
    } catch (...) {
    }
}

void
Fleet::setChaosPlan(ChaosPlan plan)
{
    chaos_ = std::move(plan);
    obs_->metrics()
        .gauge("fleet.chaos_seed")
        .set(static_cast<double>(chaos_.seed));
}

std::vector<ReplicaSnapshot>
Fleet::snapshots() const
{
    std::vector<ReplicaSnapshot> snaps;
    snaps.reserve(replicas_.size());
    for (const auto &r : replicas_)
        snaps.push_back(r->snapshot());
    return snaps;
}

bool
Fleet::dispatch(Pending &p, std::size_t avoid)
{
    const std::size_t idx =
        router_->route(p.req.sessionId, snapshots(), avoid);
    if (idx == Router::kNoReplica)
        return false;
    std::future<serve::Response> fut =
        replicas_[idx]->submit(p.built);  // copy: redispatch reuses it
    if (!fut.valid()) {
        // The engine died between the snapshot and the push; let the
        // breaker learn and report this dispatch as parked.
        replicas_[idx]->breaker().onFailure();
        return false;
    }
    ++p.attempts;
    p.replica = idx;
    p.fut = std::move(fut);
    p.dispatched = std::chrono::steady_clock::now();
    obs_->metrics()
        .counter("fleet.dispatch_total",
                 {{"replica", replicas_[idx]->name()}})
        .add();
    return true;
}

std::uint64_t
Fleet::submit(FleetRequest req)
{
    if (shutdown_)
        throw std::runtime_error("Fleet::submit: fleet is shut down");
    if (req.tokens.empty())
        throw std::invalid_argument("Fleet::submit: empty tokens");

    Pending p;
    const SloClass &slo = router_->sloFor(req.tenant);
    p.built.tokens = req.tokens;
    p.built.priority = slo.priority;
    p.built.deadlineMs = slo.deadlineMs;
    p.req = std::move(req);
    p.fleetId = nextFleetId_++;

    ++stats_.submitted;
    obs_->metrics().counter("fleet.submitted_total").add();

    if (!dispatch(p, Router::kNoReplica)) {
        if (!opts_.failover) {
            // No robustness machinery: an unroutable request is a
            // terminal failure right away.
            serve::Response r;
            r.status = serve::Status::Failed;
            r.error = "no eligible replica";
            const std::uint64_t id = p.fleetId;
            complete(p, std::move(r), p.replica, false);
            return id;
        }
        ++stats_.parked;
        obs_->metrics().counter("fleet.parked_total").add();
    }
    const std::uint64_t id = p.fleetId;
    pending_.push_back(std::move(p));
    return id;
}

void
Fleet::complete(Pending &p, serve::Response r, std::size_t replica,
                bool via_hedge)
{
    FleetResponse fr;
    fr.fleetId = p.fleetId;
    fr.replica = replica;
    fr.attempts = p.attempts;
    fr.failedOver = p.failedOver;
    fr.hedged = via_hedge;
    fr.response = std::move(r);

    ++stats_.completed;
    obs_->metrics().counter("fleet.completed_total").add();
    if (fr.response.status == serve::Status::Ok) {
        ++stats_.ok;
    } else if (fr.response.status == serve::Status::Failed) {
        ++stats_.failed;
        obs_->metrics().counter("fleet.failed_total").add();
    }
    if (replica < replicas_.size())
        obs_->metrics()
            .counter("fleet.responses_total",
                     {{"replica", replicas_[replica]->name()}})
            .add();
    completed_.push_back(std::move(fr));
}

void
Fleet::pump()
{
    // Losing hedge twins resolve on their own schedule; drop the
    // results as they land (re-simulation is pure — the duplicate
    // carries no side effect worth keeping).
    discarded_.erase(
        std::remove_if(discarded_.begin(), discarded_.end(),
                       [](std::future<serve::Response> &f) {
                           if (!ready(f))
                               return false;
                           f.get();
                           return true;
                       }),
        discarded_.end());

    std::size_t i = 0;
    while (i < pending_.size()) {
        Pending &p = pending_[i];
        bool done = false;

        if (!p.fut.valid()) {
            // Parked: retry while the request still has attempts and
            // failover is on (parking never happens with it off).
            dispatch(p, Router::kNoReplica);
        } else if (ready(p.fut)) {
            serve::Response r = p.fut.get();
            const std::size_t from = p.replica;
            const bool infra_failure =
                r.status == serve::Status::Failed ||
                r.status == serve::Status::RejectedCapacity;
            if (infra_failure)
                replicas_[from]->breaker().onFailure();
            else
                replicas_[from]->breaker().onSuccess();

            if (infra_failure && opts_.failover &&
                p.attempts < opts_.maxAttempts) {
                // Hedged or stranded-on-a-dead-replica re-dispatch:
                // idempotent by construction, the functional run is a
                // pure re-simulation of the same tokens.
                p.failedOver = true;
                ++stats_.failovers;
                obs_->metrics().counter("fleet.failover_total").add();
                if (p.hedgeFut.valid()) {
                    // The hedge twin is already racing: promote it.
                    p.fut = std::move(p.hedgeFut);
                    p.replica = p.hedgeReplica;
                    p.hedgeReplica = Router::kNoReplica;
                } else if (!dispatch(p, from)) {
                    p.fut = {};
                    p.replica = Router::kNoReplica;
                    ++stats_.parked;
                    obs_->metrics().counter("fleet.parked_total").add();
                }
            } else {
                if (p.hedgeFut.valid())
                    discarded_.push_back(std::move(p.hedgeFut));
                complete(p, std::move(r), from, false);
                done = true;
            }
        } else if (ready(p.hedgeFut)) {
            serve::Response r = p.hedgeFut.get();
            if (r.status == serve::Status::Ok) {
                // Hedge won the race; the primary's eventual result
                // is discarded.
                replicas_[p.hedgeReplica]->breaker().onSuccess();
                ++stats_.hedgeWins;
                discarded_.push_back(std::move(p.fut));
                complete(p, std::move(r), p.hedgeReplica, true);
                done = true;
            } else {
                if (r.status == serve::Status::Failed ||
                    r.status == serve::Status::RejectedCapacity)
                    replicas_[p.hedgeReplica]->breaker().onFailure();
                p.hedgeReplica = Router::kNoReplica;
                p.hedgeFut = {};
            }
        } else if (!p.hedged && opts_.failover &&
                   opts_.hedgeAfterMs > 0.0 && p.fut.valid() &&
                   p.replica < replicas_.size() &&
                   replicas_[p.replica]->state() ==
                       ReplicaState::Degraded &&
                   ageMs(p.dispatched) >= opts_.hedgeAfterMs) {
            // Latency hedging: a request stuck on a Degraded replica
            // gets a secondary dispatch; first Ok wins.
            const std::size_t idx = router_->route(
                p.req.sessionId + "#hedge", snapshots(), p.replica);
            if (idx != Router::kNoReplica && idx != p.replica) {
                std::future<serve::Response> fut =
                    replicas_[idx]->submit(p.built);
                if (fut.valid()) {
                    p.hedged = true;
                    p.hedgeReplica = idx;
                    p.hedgeFut = std::move(fut);
                    ++stats_.hedges;
                    obs_->metrics().counter("fleet.hedge_total").add();
                }
            }
        }

        if (done)
            pending_.erase(pending_.begin() +
                           static_cast<std::ptrdiff_t>(i));
        else
            ++i;
    }
}

void
Fleet::applyChaosEvent(const ChaosEvent &e, TickReport &report)
{
    obs_->metrics().counter("fleet.chaos_applied_total").add();
    report.applied.push_back(e);
    switch (e.kind) {
    case ChaosEvent::Kind::Crash:
        replicas_.at(e.replica)->kill(/*corrupt_state=*/false);
        restartsDue_.emplace_back(tickNow_ + opts_.restartAfterTicks,
                                  e.replica);
        break;
    case ChaosEvent::Kind::CorruptRestart:
        replicas_.at(e.replica)->kill(/*corrupt_state=*/true);
        restartsDue_.emplace_back(tickNow_ + opts_.restartAfterTicks,
                                  e.replica);
        break;
    case ChaosEvent::Kind::Brownout:
        replicas_.at(e.replica)->setBrownout(e.brownoutMs);
        brownoutEndsDue_.emplace_back(tickNow_ + e.durationTicks,
                                      e.replica);
        break;
    case ChaosEvent::Kind::FlashCrowd:
        report.flashCrowdBurst += e.burstRequests;
        break;
    }
}

void
Fleet::redistributeGovernor()
{
    const std::size_t rungs = opts_.engine.governorLadder.size();
    if (rungs < 2)
        return;
    const std::size_t n = replicas_.size();
    std::size_t down = 0;
    for (const auto &r : replicas_)
        if (r->state() == ReplicaState::Down)
            ++down;
    // Survivors absorb the dead replicas' share of the traffic, so
    // they pre-degrade proportionally along the AO->BPA ladder
    // instead of discovering the overload through queue depth alone.
    const std::size_t floor =
        down == 0 ? 0
                  : std::min(rungs - 1,
                             ((rungs - 1) * down + n - 1) / n);
    obs_->metrics()
        .gauge("fleet.governor_floor")
        .set(static_cast<double>(floor));
    for (const auto &r : replicas_)
        if (r->alive())
            r->engine()->setGovernorRungFloor(floor);
}

Fleet::TickReport
Fleet::tick()
{
    TickReport report;
    report.tick = tickNow_;

    for (const ChaosEvent &e : chaos_.eventsAt(tickNow_))
        applyChaosEvent(e, report);

    // Scheduled recoveries before heartbeats, so a restarted
    // replica's first probe counts toward Recovering -> Healthy.
    for (auto it = restartsDue_.begin(); it != restartsDue_.end();) {
        if (it->first <= tickNow_) {
            replicas_.at(it->second)->restart();
            it = restartsDue_.erase(it);
        } else {
            ++it;
        }
    }
    for (auto it = brownoutEndsDue_.begin();
         it != brownoutEndsDue_.end();) {
        if (it->first <= tickNow_) {
            replicas_.at(it->second)->setBrownout(0.0);
            it = brownoutEndsDue_.erase(it);
        } else {
            ++it;
        }
    }

    for (const auto &r : replicas_)
        r->heartbeat();
    for (const auto &r : replicas_)
        r->breaker().tick();

    redistributeGovernor();
    pump();

    ++tickNow_;
    return report;
}

void
Fleet::drain()
{
    // Engines resolve every dispatched future terminally, so this
    // converges; the stall guard only fires for requests parked with
    // every replica permanently gone, which then resolve Failed —
    // terminal either way, an accepted request is never lost.
    int stalled = 0;
    std::size_t last_pending = pending_.size() + 1;
    while (!pending_.empty()) {
        pump();
        if (pending_.size() == last_pending)
            ++stalled;
        else
            stalled = 0;
        last_pending = pending_.size();
        if (stalled > 2000) {
            for (Pending &p : pending_) {
                if (p.fut.valid())
                    continue;  // still owed a terminal resolution
                serve::Response r;
                r.status = serve::Status::Failed;
                r.error = "no eligible replica";
                complete(p, std::move(r), p.replica, false);
                p.fleetId = 0;  // mark resolved
            }
            pending_.erase(
                std::remove_if(pending_.begin(), pending_.end(),
                               [](const Pending &p) {
                                   return p.fleetId == 0;
                               }),
                pending_.end());
            stalled = 0;
        }
        if (!pending_.empty())
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    for (std::future<serve::Response> &f : discarded_)
        if (f.valid())
            f.get();
    discarded_.clear();
}

void
Fleet::shutdown()
{
    if (shutdown_)
        return;
    drain();
    shutdown_ = true;
    for (const auto &r : replicas_)
        if (r->engine())
            r->engine()->shutdown();
}

std::vector<FleetResponse>
Fleet::takeCompleted()
{
    std::vector<FleetResponse> out = std::move(completed_);
    completed_.clear();
    return out;
}

double
Fleet::availability() const
{
    if (stats_.completed == 0)
        return 1.0;
    return static_cast<double>(stats_.ok) /
           static_cast<double>(stats_.completed);
}

} // namespace fleet
} // namespace mflstm
