#include "fleet/chaos.hh"

#include <random>
#include <sstream>
#include <stdexcept>

namespace mflstm {
namespace fleet {

const char *
toString(ChaosEvent::Kind k)
{
    switch (k) {
    case ChaosEvent::Kind::Crash: return "crash";
    case ChaosEvent::Kind::Brownout: return "brownout";
    case ChaosEvent::Kind::CorruptRestart: return "corrupt-restart";
    case ChaosEvent::Kind::FlashCrowd: return "flash-crowd";
    }
    return "?";
}

ChaosPlan
ChaosPlan::standard(std::uint64_t seed, std::size_t replicas,
                    std::uint64_t horizon_ticks)
{
    if (replicas == 0)
        throw std::invalid_argument("ChaosPlan: replicas == 0");
    if (horizon_ticks < 8)
        throw std::invalid_argument("ChaosPlan: horizon < 8 ticks");

    // mt19937_64's output sequence is fully specified by the
    // standard; combined with modulo placement the plan is
    // bit-identical on every platform and toolchain.
    std::mt19937_64 rng(seed);
    const std::uint64_t quarter = horizon_ticks / 4;
    const auto in_quarter = [&](std::uint64_t q) {
        // Never tick 0 of quarter 0: the fleet warms up first.
        const std::uint64_t lo = q * quarter + (q == 0 ? 1 : 0);
        const std::uint64_t span = (q + 1) * quarter - lo;
        return lo + rng() % (span == 0 ? 1 : span);
    };
    const auto pick_replica = [&] {
        return static_cast<std::size_t>(rng() % replicas);
    };

    ChaosPlan plan;
    plan.seed = seed;
    plan.horizonTicks = horizon_ticks;

    ChaosEvent crash;
    crash.kind = ChaosEvent::Kind::Crash;
    crash.tick = in_quarter(0);
    crash.replica = pick_replica();
    plan.events.push_back(crash);

    ChaosEvent brown;
    brown.kind = ChaosEvent::Kind::Brownout;
    brown.tick = in_quarter(1);
    brown.replica = pick_replica();
    brown.durationTicks = 1 + rng() % (quarter == 1 ? 1 : quarter - 1);
    brown.brownoutMs = 5.0 + static_cast<double>(rng() % 16);
    plan.events.push_back(brown);

    ChaosEvent corrupt;
    corrupt.kind = ChaosEvent::Kind::CorruptRestart;
    corrupt.tick = in_quarter(2);
    corrupt.replica = pick_replica();
    plan.events.push_back(corrupt);

    ChaosEvent crowd;
    crowd.kind = ChaosEvent::Kind::FlashCrowd;
    crowd.tick = in_quarter(3);
    crowd.burstRequests = 8 + rng() % 9;  // 8..16 extra arrivals
    plan.events.push_back(crowd);

    return plan;
}

std::vector<ChaosEvent>
ChaosPlan::eventsAt(std::uint64_t tick) const
{
    std::vector<ChaosEvent> due;
    for (const ChaosEvent &e : events)
        if (e.tick == tick)
            due.push_back(e);
    return due;
}

std::string
ChaosPlan::describe() const
{
    std::ostringstream os;
    os << "chaos-plan seed=" << seed << " horizon=" << horizonTicks
       << "\n";
    for (const ChaosEvent &e : events) {
        os << "  tick=" << e.tick << " " << toString(e.kind);
        if (e.kind != ChaosEvent::Kind::FlashCrowd)
            os << " replica=" << e.replica;
        if (e.kind == ChaosEvent::Kind::Brownout)
            os << " duration=" << e.durationTicks
               << " slow_ms=" << e.brownoutMs;
        if (e.kind == ChaosEvent::Kind::FlashCrowd)
            os << " burst=" << e.burstRequests;
        os << "\n";
    }
    return os.str();
}

} // namespace fleet
} // namespace mflstm
