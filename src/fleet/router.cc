#include "fleet/router.hh"

#include <functional>
#include <limits>

namespace mflstm {
namespace fleet {

const char *
toString(ReplicaState s)
{
    switch (s) {
    case ReplicaState::Healthy: return "healthy";
    case ReplicaState::Degraded: return "degraded";
    case ReplicaState::Down: return "down";
    case ReplicaState::Recovering: return "recovering";
    }
    return "?";
}

const char *
toString(RoutingPolicy p)
{
    switch (p) {
    case RoutingPolicy::SessionAffinity: return "affinity";
    case RoutingPolicy::RoundRobin: return "round-robin";
    case RoutingPolicy::LeastLoaded: return "least-loaded";
    }
    return "?";
}

Router::Router(RoutingPolicy policy, std::vector<SloClass> slos,
               obs::Observer *obs)
    : policy_(policy), obs_(obs)
{
    for (SloClass &s : slos)
        slos_.emplace(s.tenant, std::move(s));
}

const SloClass &
Router::sloFor(const std::string &tenant) const
{
    const auto it = slos_.find(tenant);
    return it == slos_.end() ? defaultSlo : it->second;
}

std::size_t
Router::pinned(const std::string &session_id) const
{
    const auto it = pins_.find(session_id);
    return it == pins_.end() ? kNoReplica : it->second;
}

std::size_t
Router::pickEligible(const std::string &session_id,
                     const std::vector<ReplicaSnapshot> &snaps,
                     std::size_t avoid) const
{
    std::vector<std::size_t> candidates;
    for (const ReplicaSnapshot &s : snaps)
        if (eligible(s) && s.index != avoid)
            candidates.push_back(s.index);
    if (candidates.empty())
        // The avoided replica is better than nothing (the caller is
        // failing over but every sibling is down too).
        for (const ReplicaSnapshot &s : snaps)
            if (eligible(s))
                candidates.push_back(s.index);
    if (candidates.empty())
        return kNoReplica;

    switch (policy_) {
    case RoutingPolicy::SessionAffinity: {
        // Stable spread: hash the session over the candidates.
        const std::size_t h =
            std::hash<std::string>{}(session_id);
        return candidates[h % candidates.size()];
    }
    case RoutingPolicy::RoundRobin:
        return candidates[rrNext_ % candidates.size()];
    case RoutingPolicy::LeastLoaded: {
        std::size_t best = candidates.front();
        std::size_t best_depth = std::numeric_limits<std::size_t>::max();
        for (std::size_t idx : candidates)
            if (snaps[idx].queueDepth < best_depth) {
                best = idx;
                best_depth = snaps[idx].queueDepth;
            }
        return best;
    }
    }
    return candidates.front();
}

std::size_t
Router::route(const std::string &session_id,
              const std::vector<ReplicaSnapshot> &snaps,
              std::size_t avoid)
{
    // An existing pin wins while its replica stays eligible (and is
    // not the replica the caller is failing away from).
    if (policy_ == RoutingPolicy::SessionAffinity) {
        const auto it = pins_.find(session_id);
        if (it != pins_.end()) {
            const std::size_t cur = it->second;
            if (cur < snaps.size() && cur != avoid &&
                eligible(snaps[cur]))
                return cur;
        }
    }

    const std::size_t chosen = pickEligible(session_id, snaps, avoid);
    if (chosen == kNoReplica)
        return kNoReplica;

    if (policy_ == RoutingPolicy::RoundRobin)
        ++rrNext_;

    if (policy_ == RoutingPolicy::SessionAffinity) {
        const auto it = pins_.find(session_id);
        if (it != pins_.end() && it->second != chosen) {
            ++sessionFailovers_;
            if (obs_)
                obs_->metrics()
                    .counter("fleet.session_failover_total")
                    .add();
        }
        pins_[session_id] = chosen;
    }
    return chosen;
}

} // namespace fleet
} // namespace mflstm
