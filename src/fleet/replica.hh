/**
 * @file
 * One engine replica under fleet management (DESIGN.md §16): wraps an
 * InferenceEngine with the health-state machine, a per-replica
 * circuit breaker, chaos hooks (kill / brownout / corrupt-restart)
 * and the restore-or-recompute restart path over the shared artifact
 * store.
 *
 * Boot and restart both prefer the store's warm-state artifact (the
 * expensive per-rung planning is skipped); a corrupt or stale
 * artifact is quarantined and the replica cold-rebuilds, then heals
 * the store by re-saving under the single-writer lock.
 *
 * Thread safety: driven from the Fleet's single control path; the
 * wrapped engine's own workers run concurrently as usual.
 */

#ifndef MFLSTM_FLEET_REPLICA_HH
#define MFLSTM_FLEET_REPLICA_HH

#include <cstdint>
#include <future>
#include <memory>
#include <string>

#include "core/api.hh"
#include "fleet/types.hh"
#include "io/store.hh"
#include "serve/engine.hh"

namespace mflstm {
namespace fleet {

/** Shared warm-state artifact name inside the fleet store. */
inline constexpr const char *kEngineStateArtifact = "engine_state.bin";

/**
 * Per-replica circuit breaker: opens after tripAfter consecutive
 * dispatch failures, holds for cooldownTicks fleet ticks, then
 * half-opens — one more failure re-trips immediately, one success
 * closes it fully.
 */
struct CircuitBreaker
{
    int tripAfter = 3;
    std::uint64_t cooldownTicks = 2;

    bool open = false;
    int consecutiveFailures = 0;
    std::uint64_t cooldownRemaining = 0;
    std::uint64_t trips = 0;

    void onSuccess()
    {
        consecutiveFailures = 0;
        open = false;
        cooldownRemaining = 0;
    }

    void onFailure()
    {
        if (++consecutiveFailures >= tripAfter && !open) {
            open = true;
            cooldownRemaining = cooldownTicks;
            ++trips;
        }
    }

    /** One fleet tick: cooldown expiry half-opens the breaker. */
    void tick()
    {
        if (open && cooldownRemaining > 0 && --cooldownRemaining == 0) {
            open = false;
            // Half-open: the next failure re-trips without needing a
            // fresh streak; the next success closes fully.
            consecutiveFailures = tripAfter - 1;
        }
    }
};

/** Everything one replica needs besides the shared model facade. */
struct ReplicaConfig
{
    std::string name;  ///< metrics label + trace track ("r0", ...)
    serve::InferenceEngine::Options engine;

    /// consecutive heartbeat misses before Healthy -> Degraded
    int degradedAfter = 1;
    /// consecutive heartbeat misses before -> Down
    int downAfter = 2;
    /// consecutive heartbeat successes before Recovering -> Healthy
    int recoverAfter = 1;
    /// a probe slower than this is a miss (ms); 0 disables the
    /// latency criterion (only hard failures count)
    double heartbeatSloMs = 0.0;
    /// token sequence of the heartbeat probe (must be valid ids)
    std::vector<std::int32_t> probeTokens = {1, 2, 3};

    int breakerTripAfter = 3;
    std::uint64_t breakerCooldownTicks = 2;
};

class Replica
{
  public:
    /**
     * Builds the engine immediately: warm from @p store's
     * engine-state artifact when present and valid, else cold (and
     * the cold boot heals/seeds the store under the write lock).
     * @p mf, @p store and @p obs must outlive the replica.
     */
    Replica(std::size_t index, const core::MemoryFriendlyLstm &mf,
            io::ArtifactStore &store, ReplicaConfig cfg,
            obs::Observer *obs);

    ~Replica();
    Replica(const Replica &) = delete;
    Replica &operator=(const Replica &) = delete;

    std::size_t index() const { return index_; }
    const std::string &name() const { return cfg_.name; }
    ReplicaState state() const { return state_; }
    CircuitBreaker &breaker() { return breaker_; }

    /** The engine exists and has not been kill()ed. */
    bool alive() const;

    std::size_t queueDepth() const;
    ReplicaSnapshot snapshot() const;
    serve::InferenceEngine *engine() { return engine_.get(); }

    /**
     * Dispatch one request. Returns an invalid future (valid() ==
     * false) when the replica cannot accept — engine dead or closed —
     * so the caller can fail over without an exception round trip.
     */
    std::future<serve::Response> submit(serve::Request req);

    // --- chaos hooks -------------------------------------------------
    /**
     * Simulated crash: kill the engine (queued work resolves Failed,
     * see InferenceEngine::kill) and go Down. With @p corrupt_state
     * the next restart first flips a byte in the store's warm-state
     * artifact, forcing the quarantine-and-recompute path.
     */
    void kill(bool corrupt_state);

    /** Simulated brownout: slow every batch by @p ms (0 clears). */
    void setBrownout(double ms);

    /**
     * Restart after a kill: rebuild the engine (warm restore ->
     * quarantine + cold recompute fallback), enter Recovering. No-op
     * while the engine is still alive.
     */
    void restart();

    /**
     * One heartbeat: probe the engine and walk the health-state
     * machine. A dead engine is an immediate miss; a live probe
     * misses when it fails or exceeds heartbeatSloMs.
     */
    void heartbeat();

    struct Counters
    {
        std::uint64_t kills = 0;
        std::uint64_t restarts = 0;
        /// restarts that fell back from warm restore to cold rebuild
        std::uint64_t coldRecoveries = 0;
        std::uint64_t heartbeatMisses = 0;
    };
    const Counters &counters() const { return counters_; }

  private:
    void rebuildEngine();
    void setState(ReplicaState next, const char *why);
    void corruptStoredState();

    std::size_t index_;
    const core::MemoryFriendlyLstm *mf_;
    io::ArtifactStore *store_;
    ReplicaConfig cfg_;
    obs::Observer *obs_;

    std::unique_ptr<serve::InferenceEngine> engine_;
    ReplicaState state_ = ReplicaState::Healthy;
    CircuitBreaker breaker_;
    bool corruptNextRestart_ = false;
    int missStreak_ = 0;
    int okStreak_ = 0;
    Counters counters_;
};

} // namespace fleet
} // namespace mflstm

#endif // MFLSTM_FLEET_REPLICA_HH
