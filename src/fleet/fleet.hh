/**
 * @file
 * Fault-tolerant fleet serving (DESIGN.md §16): N InferenceEngine
 * replicas over a shared model-artifact store, fronted by a Router
 * with session affinity and per-tenant SLO classes, driven by a
 * deterministic ChaosPlan.
 *
 * Control flow is tick-based: the driver submits FleetRequests
 * between ticks, and each tick() applies due chaos events, scheduled
 * restarts and brownout expiries, heartbeats every replica through
 * the health-state machine, advances the circuit breakers,
 * redistributes the AO->BPA governor ladder over the survivors, and
 * pumps the pending set. The pump is where robustness lives:
 *
 *  - failover: a request that came back Failed / RejectedCapacity
 *    (e.g. stranded on a killed replica) is re-dispatched to another
 *    eligible replica while attempts remain — idempotent by
 *    construction, re-simulation is pure (fleet.failover_total);
 *  - hedging: a request pending on a Degraded replica past
 *    hedgeAfterMs gets a secondary dispatch; the first Ok wins and
 *    the loser is discarded (fleet.hedge_total);
 *  - parking: with failover on and no eligible replica, the request
 *    waits and is re-dispatched when one recovers, so an accepted
 *    request is never silently dropped.
 *
 * Every accepted request reaches exactly one terminal FleetResponse:
 * drain() pumps until the pending set is empty (engines resolve all
 * futures terminally, so this converges), and shutdown() drains
 * before stopping the replicas.
 *
 * Thread safety: submit/tick/pump/drain are driven from one control
 * thread; the engines' worker pools run concurrently underneath.
 */

#ifndef MFLSTM_FLEET_FLEET_HH
#define MFLSTM_FLEET_FLEET_HH

#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "fleet/chaos.hh"
#include "fleet/replica.hh"
#include "fleet/router.hh"
#include "fleet/types.hh"
#include "io/store.hh"

namespace mflstm {
namespace fleet {

struct FleetOptions
{
    std::size_t replicas = 2;
    RoutingPolicy policy = RoutingPolicy::SessionAffinity;
    std::vector<SloClass> slos;

    /// master switch for the robustness machinery: failover
    /// re-dispatch, hedging and parking. Off = a failure is terminal.
    bool failover = true;
    /// dispatch attempts per request (1 = no failover re-dispatch)
    int maxAttempts = 3;
    /// hedge a request pending on a Degraded replica after this long
    /// (wall ms); 0 disables hedging
    double hedgeAfterMs = 0.0;
    /// a killed replica restarts this many ticks after going down
    std::uint64_t restartAfterTicks = 2;

    // --- health checks ---
    int degradedAfter = 1;
    int downAfter = 2;
    int recoverAfter = 1;
    double heartbeatSloMs = 0.0;
    std::vector<std::int32_t> probeTokens = {1, 2, 3};

    // --- circuit breaker ---
    int breakerTripAfter = 3;
    std::uint64_t breakerCooldownTicks = 2;

    /// shared model-artifact store directory (required)
    std::string storeDir;
    /// template for every replica's engine (observer is overridden)
    serve::InferenceEngine::Options engine;
    /// shared sink; nullptr = the fleet owns a private Observer
    obs::Observer *observer = nullptr;
};

class Fleet
{
  public:
    /**
     * Boots every replica. Replica 0 seeds the shared store (cold
     * build + save under the write lock when no valid artifact is
     * present); later replicas warm-boot from it.
     * @throws std::invalid_argument on replicas == 0 or empty
     *         storeDir.
     */
    Fleet(const core::MemoryFriendlyLstm &mf, FleetOptions opts);

    /** Drains pending work, then stops the replicas. */
    ~Fleet();
    Fleet(const Fleet &) = delete;
    Fleet &operator=(const Fleet &) = delete;

    /** Install the chaos schedule applied by subsequent ticks. */
    void setChaosPlan(ChaosPlan plan);
    const ChaosPlan &chaosPlan() const { return chaos_; }

    /**
     * Accept one request and dispatch (or park) it. Returns the fleet
     * id its FleetResponse will carry.
     * @throws std::invalid_argument on empty tokens.
     */
    std::uint64_t submit(FleetRequest req);

    struct TickReport
    {
        std::uint64_t tick = 0;
        std::vector<ChaosEvent> applied;
        /// flash-crowd arrivals the driver should submit this tick
        std::size_t flashCrowdBurst = 0;
    };

    /**
     * Advance one control tick: chaos events due now, scheduled
     * restarts / brownout expiries, heartbeats, breaker cooldowns,
     * governor-ladder redistribution over the survivors, then one
     * pump pass.
     */
    TickReport tick();

    /** Poll pending work: completions, failover, hedging, parking. */
    void pump();

    /** Pump until every accepted request has a terminal response. */
    void drain();

    /** drain(), then stop every replica. Idempotent. */
    void shutdown();

    // --- results & introspection ------------------------------------
    /** Terminal responses accumulated so far (drain() for all). */
    std::vector<FleetResponse> takeCompleted();

    std::size_t pendingCount() const { return pending_.size(); }
    std::size_t replicaCount() const { return replicas_.size(); }
    Replica &replica(std::size_t i) { return *replicas_.at(i); }
    Router &router() { return *router_; }
    io::ArtifactStore &store() { return *store_; }
    obs::Observer &observer() { return *obs_; }
    const FleetOptions &options() const { return opts_; }

    struct Stats
    {
        std::uint64_t submitted = 0;
        std::uint64_t completed = 0;
        std::uint64_t ok = 0;
        std::uint64_t failed = 0;
        std::uint64_t failovers = 0;  ///< re-dispatches off a failure
        std::uint64_t hedges = 0;     ///< secondary dispatches
        std::uint64_t hedgeWins = 0;  ///< hedges that produced the result
        std::uint64_t parked = 0;     ///< waits with no eligible replica
    };
    const Stats &stats() const { return stats_; }

    /** Ok share of completed requests (1.0 when none completed). */
    double availability() const;

  private:
    struct Pending
    {
        FleetRequest req;
        serve::Request built;  ///< tokens + SLO hints, ready to send
        std::uint64_t fleetId = 0;
        int attempts = 0;
        bool failedOver = false;
        bool hedged = false;
        std::size_t replica = Router::kNoReplica;
        std::future<serve::Response> fut;  ///< invalid while parked
        std::size_t hedgeReplica = Router::kNoReplica;
        std::future<serve::Response> hedgeFut;
        std::chrono::steady_clock::time_point dispatched{};
    };

    std::vector<ReplicaSnapshot> snapshots() const;
    /// route + submit; false = parked (no eligible replica / dead
    /// engine race)
    bool dispatch(Pending &p, std::size_t avoid);
    void complete(Pending &p, serve::Response r, std::size_t replica,
                  bool via_hedge);
    void applyChaosEvent(const ChaosEvent &e, TickReport &report);
    void redistributeGovernor();

    FleetOptions opts_;
    const core::MemoryFriendlyLstm *mf_;
    std::unique_ptr<obs::Observer> ownedObs_;
    obs::Observer *obs_ = nullptr;
    std::unique_ptr<io::ArtifactStore> store_;
    std::unique_ptr<Router> router_;
    std::vector<std::unique_ptr<Replica>> replicas_;

    ChaosPlan chaos_;
    std::uint64_t tickNow_ = 0;
    std::vector<std::pair<std::uint64_t, std::size_t>> restartsDue_;
    std::vector<std::pair<std::uint64_t, std::size_t>> brownoutEndsDue_;

    std::uint64_t nextFleetId_ = 1;
    std::vector<Pending> pending_;
    /// losing hedge futures: polled until they resolve, then dropped
    /// (execution is pure, so the duplicate result is just discarded)
    std::vector<std::future<serve::Response>> discarded_;
    std::vector<FleetResponse> completed_;
    Stats stats_;
    bool shutdown_ = false;
};

} // namespace fleet
} // namespace mflstm

#endif // MFLSTM_FLEET_FLEET_HH
