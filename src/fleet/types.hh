/**
 * @file
 * Value types of the fleet layer (DESIGN.md §16): replica health
 * states, per-tenant SLO classes, routing policies, and the
 * request/response envelopes that ride through the Router to an
 * engine replica and back.
 */

#ifndef MFLSTM_FLEET_TYPES_HH
#define MFLSTM_FLEET_TYPES_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/request.hh"

namespace mflstm {
namespace fleet {

/**
 * Health-state machine of one replica (DESIGN.md §16):
 *
 *   Healthy --misses>=degradedAfter--> Degraded
 *   Degraded --misses>=downAfter--> Down
 *   Degraded --probe ok--> Healthy
 *   Down --restart()--> Recovering
 *   Recovering --ok streak>=recoverAfter--> Healthy
 *
 * Down replicas are ineligible for routing; Degraded replicas stay
 * eligible but their in-flight requests become hedging candidates.
 */
enum class ReplicaState : std::uint8_t
{
    Healthy = 0,
    Degraded,
    Down,
    Recovering,
};

const char *toString(ReplicaState s);

/** Per-tenant service class: scheduling hints applied at submit. */
struct SloClass
{
    std::string tenant;    ///< tenant name this class applies to
    int priority = 0;      ///< forwarded to Request::priority
    double deadlineMs = 0.0;  ///< forwarded to Request::deadlineMs
};

/** How the Router spreads sessions over eligible replicas. */
enum class RoutingPolicy : std::uint8_t
{
    /**
     * Keep a session pinned to the replica that already holds its
     * warm ladder and resident weights (the E-PUR argument); re-pin
     * only when the pinned replica becomes ineligible.
     */
    SessionAffinity = 0,
    RoundRobin,
    LeastLoaded,
};

const char *toString(RoutingPolicy p);

/** One fleet job: tokens plus the routing/SLO identity. */
struct FleetRequest
{
    std::vector<std::int32_t> tokens;
    std::string sessionId;
    std::string tenant;
};

/** Terminal fleet outcome: the engine response plus routing history. */
struct FleetResponse
{
    std::uint64_t fleetId = 0;
    serve::Response response;
    /// replica that produced the terminal response
    std::size_t replica = 0;
    /// dispatch attempts consumed (1 = no failover)
    int attempts = 0;
    /// the request was re-dispatched off a failed/dead replica
    bool failedOver = false;
    /// a hedge dispatch raced the primary and won
    bool hedged = false;
};

/** Router-visible view of one replica at routing time. */
struct ReplicaSnapshot
{
    std::size_t index = 0;
    ReplicaState state = ReplicaState::Healthy;
    bool breakerOpen = false;
    std::size_t queueDepth = 0;
};

} // namespace fleet
} // namespace mflstm

#endif // MFLSTM_FLEET_TYPES_HH
