/**
 * @file
 * Deterministic chaos plans (DESIGN.md §16). A ChaosPlan is a seeded,
 * fully precomputed schedule of fault events — replica crashes,
 * slow-replica brownouts, corrupt warm-state restarts, flash-crowd
 * arrival bursts — applied by Fleet::tick(). The plan is a pure
 * function of (seed, replicas, horizon): regenerating it from the
 * recorded seed reproduces the same events bit-identically, so any
 * chaos failure replays exactly. Randomness comes from mt19937_64
 * with modulo arithmetic only (std distributions are not
 * cross-platform stable).
 */

#ifndef MFLSTM_FLEET_CHAOS_HH
#define MFLSTM_FLEET_CHAOS_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mflstm {
namespace fleet {

/** One scheduled fault. */
struct ChaosEvent
{
    enum class Kind : std::uint8_t
    {
        /// kill the replica's engine; it restarts Recovering later
        Crash = 0,
        /// slow every batch on the replica for durationTicks
        Brownout,
        /// kill the replica AND corrupt its warm-state artifact, so
        /// the restart must quarantine and recompute
        CorruptRestart,
        /// burstRequests extra arrivals land this tick
        FlashCrowd,
    };

    Kind kind = Kind::Crash;
    std::uint64_t tick = 0;
    std::size_t replica = 0;          ///< ignored for FlashCrowd
    std::uint64_t durationTicks = 0;  ///< Brownout only
    double brownoutMs = 0.0;          ///< Brownout only
    std::size_t burstRequests = 0;    ///< FlashCrowd only

    bool operator==(const ChaosEvent &o) const = default;
};

const char *toString(ChaosEvent::Kind k);

/** Seeded, precomputed fault schedule. */
struct ChaosPlan
{
    std::uint64_t seed = 0;
    std::uint64_t horizonTicks = 0;
    std::vector<ChaosEvent> events;  ///< sorted by tick

    /**
     * The standard plan the bench gate runs (ISSUE 9): exactly one
     * crash, one brownout, one corrupt restart and one flash crowd,
     * placed in disjoint quarters of the horizon so recoveries do not
     * overlap. Pure function of its arguments.
     * @throws std::invalid_argument on replicas == 0 or horizon < 8.
     */
    static ChaosPlan standard(std::uint64_t seed, std::size_t replicas,
                              std::uint64_t horizon_ticks);

    /** Events scheduled for @p tick, in plan order. */
    std::vector<ChaosEvent> eventsAt(std::uint64_t tick) const;

    /**
     * Canonical one-line-per-event text. Two plans are bit-identical
     * iff their describe() strings are equal — the bench gate's
     * replay check compares these.
     */
    std::string describe() const;

    bool operator==(const ChaosPlan &o) const = default;
};

} // namespace fleet
} // namespace mflstm

#endif // MFLSTM_FLEET_CHAOS_HH
