/**
 * @file
 * Fleet router (DESIGN.md §16): picks the replica for each dispatch.
 * Session affinity keeps a session on the replica that already holds
 * its warm ladder and resident weights (E-PUR's cross-session
 * weight-reuse argument); round-robin and least-loaded are the
 * comparison policies the chaos bench sweeps. Routing only considers
 * *eligible* replicas — not Down, circuit breaker closed — and a
 * pinned session is re-pinned (counted as a session failover) when
 * its replica becomes ineligible.
 *
 * Per-tenant SLO classes attach scheduling hints (priority, deadline)
 * at submit time; unknown tenants get the default class.
 *
 * Thread safety: none required — the Fleet drives the router from
 * its single pump path.
 */

#ifndef MFLSTM_FLEET_ROUTER_HH
#define MFLSTM_FLEET_ROUTER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fleet/types.hh"
#include "obs/observer.hh"

namespace mflstm {
namespace fleet {

class Router
{
  public:
    /** @p slos may be empty: every tenant then gets defaultSlo. */
    Router(RoutingPolicy policy, std::vector<SloClass> slos,
           obs::Observer *obs = nullptr);

    RoutingPolicy policy() const { return policy_; }

    /** Is @p snap a routing candidate at all? */
    static bool eligible(const ReplicaSnapshot &snap)
    {
        return snap.state != ReplicaState::Down && !snap.breakerOpen;
    }

    /** Sentinel for "no eligible replica". */
    static constexpr std::size_t kNoReplica = ~std::size_t{0};

    /**
     * Pick the replica for @p session_id given the current snapshots
     * (indexed by replica). Returns kNoReplica when nothing is
     * eligible.
     * @param avoid optional replica to exclude (failover re-dispatch
     *        away from the replica that just failed); ignored when it
     *        is the only eligible one.
     */
    std::size_t route(const std::string &session_id,
                      const std::vector<ReplicaSnapshot> &snaps,
                      std::size_t avoid = kNoReplica);

    /** The SLO class for @p tenant (defaultSlo when unknown). */
    const SloClass &sloFor(const std::string &tenant) const;

    SloClass defaultSlo;

    /** Sessions re-pinned because their replica became ineligible. */
    std::uint64_t sessionFailovers() const { return sessionFailovers_; }

    /** The replica @p session_id is pinned to (kNoReplica if none). */
    std::size_t pinned(const std::string &session_id) const;

  private:
    std::size_t pickEligible(const std::string &session_id,
                             const std::vector<ReplicaSnapshot> &snaps,
                             std::size_t avoid) const;

    RoutingPolicy policy_;
    std::map<std::string, SloClass> slos_;
    obs::Observer *obs_;
    std::map<std::string, std::size_t> pins_;
    std::size_t rrNext_ = 0;
    std::uint64_t sessionFailovers_ = 0;
};

} // namespace fleet
} // namespace mflstm

#endif // MFLSTM_FLEET_ROUTER_HH
