#include "fleet/replica.hh"

#include <fstream>
#include <stdexcept>
#include <utility>

#include "serve/persist.hh"

namespace mflstm {
namespace fleet {

namespace {

/** Heartbeat probes jump every tenant's queue. */
constexpr int kProbePriority = 1 << 20;

} // anonymous namespace

Replica::Replica(std::size_t index, const core::MemoryFriendlyLstm &mf,
                 io::ArtifactStore &store, ReplicaConfig cfg,
                 obs::Observer *obs)
    : index_(index), mf_(&mf), store_(&store), cfg_(std::move(cfg)),
      obs_(obs)
{
    breaker_.tripAfter = cfg_.breakerTripAfter;
    breaker_.cooldownTicks = cfg_.breakerCooldownTicks;
    rebuildEngine();
    setState(ReplicaState::Healthy, "boot");
}

Replica::~Replica() = default;

bool
Replica::alive() const
{
    return engine_ && !engine_->killed();
}

std::size_t
Replica::queueDepth() const
{
    return alive() ? engine_->queueDepth() : 0;
}

ReplicaSnapshot
Replica::snapshot() const
{
    ReplicaSnapshot s;
    s.index = index_;
    s.state = state_;
    s.breakerOpen = breaker_.open;
    s.queueDepth = queueDepth();
    return s;
}

std::future<serve::Response>
Replica::submit(serve::Request req)
{
    if (!alive())
        return {};
    try {
        return engine_->submit(std::move(req));
    } catch (const std::exception &) {
        // Lost the race with a concurrent kill/shutdown: the queue
        // closed between the alive() check and the push.
        return {};
    }
}

void
Replica::kill(bool corrupt_state)
{
    if (corrupt_state)
        corruptNextRestart_ = true;
    if (!alive()) {
        setState(ReplicaState::Down, "kill");
        return;
    }
    ++counters_.kills;
    if (obs_)
        obs_->metrics()
            .counter("fleet.killed_total", {{"replica", cfg_.name}})
            .add();
    engine_->kill();
    setState(ReplicaState::Down, "kill");
}

void
Replica::setBrownout(double ms)
{
    if (engine_)
        engine_->setBrownoutMs(ms);
}

void
Replica::corruptStoredState()
{
    const std::string path = store_->path(kEngineStateArtifact);
    std::fstream f(path,
                   std::ios::in | std::ios::out | std::ios::binary);
    if (!f)
        return;
    f.seekg(0, std::ios::end);
    const std::streamoff size = f.tellg();
    if (size <= 0)
        return;
    // Flip one payload byte mid-file; the chunk CRC catches it.
    const std::streamoff at = size / 2;
    f.seekg(at);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(at);
    f.write(&byte, 1);
}

void
Replica::rebuildEngine()
{
    engine_.reset();  // joins the old workers first

    const std::string path = store_->path(kEngineStateArtifact);
    bool warm_ok = false;
    if (store_->exists(kEngineStateArtifact)) {
        try {
            const serve::EngineWarmState warm =
                serve::loadEngineState(path, {}, obs_);
            engine_ = std::make_unique<serve::InferenceEngine>(
                *mf_, cfg_.engine, warm);
            warm_ok = true;
        } catch (const io::ArtifactError &e) {
            // Quarantine-and-recompute (DESIGN.md §11): move the
            // damaged artifact aside and fall through to a cold boot.
            io::quarantine(path);
            io::recordRejection(obs_, e.kind());
            ++counters_.coldRecoveries;
            if (obs_)
                obs_->metrics()
                    .counter("fleet.cold_recovery_total",
                             {{"replica", cfg_.name}})
                    .add();
        }
    }
    if (!warm_ok) {
        engine_ =
            std::make_unique<serve::InferenceEngine>(*mf_, cfg_.engine);
        // Heal (or seed) the shared store so the next sibling can warm
        // boot. The single-writer lock keeps two replicas recovering
        // at once from interleaving the save; losing the race just
        // means someone else is already writing an equivalent state.
        try {
            const io::ArtifactStore::WriteLock lock =
                store_->lockForWrite(kEngineStateArtifact);
            serve::saveEngineState(*engine_, path);
        } catch (const io::ArtifactError &) {
        }
    }
}

void
Replica::restart()
{
    if (alive())
        return;
    if (corruptNextRestart_) {
        corruptStoredState();
        corruptNextRestart_ = false;
    }
    ++counters_.restarts;
    if (obs_)
        obs_->metrics()
            .counter("fleet.restart_total", {{"replica", cfg_.name}})
            .add();
    rebuildEngine();
    missStreak_ = 0;
    okStreak_ = 0;
    breaker_.onSuccess();
    setState(ReplicaState::Recovering, "restart");
}

void
Replica::heartbeat()
{
    bool ok = false;
    if (alive()) {
        serve::Request probe;
        probe.tokens = cfg_.probeTokens;
        probe.priority = kProbePriority;
        std::future<serve::Response> fut = submit(std::move(probe));
        if (fut.valid()) {
            // Engines resolve every future terminally, so this wait
            // is bounded by the (possibly browned-out) batch time.
            const serve::Response r = fut.get();
            ok = r.status == serve::Status::Ok &&
                 (cfg_.heartbeatSloMs <= 0.0 ||
                  r.latencyMs <= cfg_.heartbeatSloMs);
        }
    }

    if (ok) {
        missStreak_ = 0;
        ++okStreak_;
        if (state_ == ReplicaState::Degraded)
            setState(ReplicaState::Healthy, "probe ok");
        else if (state_ == ReplicaState::Recovering &&
                 okStreak_ >= cfg_.recoverAfter)
            setState(ReplicaState::Healthy, "recovered");
        return;
    }

    okStreak_ = 0;
    ++missStreak_;
    ++counters_.heartbeatMisses;
    if (obs_)
        obs_->metrics()
            .counter("fleet.heartbeat_miss_total",
                     {{"replica", cfg_.name}})
            .add();
    if (!alive() || missStreak_ >= cfg_.downAfter) {
        if (state_ != ReplicaState::Down)
            setState(ReplicaState::Down, "probe misses");
    } else if (missStreak_ >= cfg_.degradedAfter &&
               state_ == ReplicaState::Healthy) {
        setState(ReplicaState::Degraded, "probe misses");
    }
}

void
Replica::setState(ReplicaState next, const char *why)
{
    const ReplicaState prev = state_;
    state_ = next;
    if (!obs_)
        return;
    obs_->metrics()
        .gauge("fleet.state", {{"replica", cfg_.name}})
        .set(static_cast<double>(next));
    if (prev == next)
        return;
    obs_->metrics()
        .counter("fleet.state_change_total", {{"replica", cfg_.name}})
        .add();

    // Lifecycle span: zero-length marker on the fleet track.
    obs::TraceSpan span;
    span.name = cfg_.name + ":" + toString(prev) + "->" +
                toString(next);
    span.category = "fleet";
    span.pid = obs::SpanTracer::kHostPid;
    span.tid = static_cast<int>(index_);
    span.startUs = obs_->wallNowUs();
    span.durUs = 0.0;
    span.strArgs = {{"why", why}};
    obs_->tracer().record(std::move(span));
}

} // namespace fleet
} // namespace mflstm
