/**
 * @file
 * Decision-space enumeration for the auto-scheduler (DESIGN.md §14).
 * Given one network's measured approximation statistics, the rules here
 * spell out every per-layer LayerSchedule candidate the tuner will
 * consider — the canonical preset points plus the compositions the old
 * PlanKind enum could never name (software skip with a fused flag
 * epilogue, tissues without skip on one layer but not another, per-app
 * zero-pruning fallback). The tuner prunes this space with cheap
 * lowering-level byte estimates before paying for full simulation.
 */

#ifndef MFLSTM_SCHED_SPACE_HH
#define MFLSTM_SCHED_SPACE_HH

#include <string>
#include <vector>

#include "core/approx.hh"
#include "gpu/config.hh"
#include "runtime/plan.hh"

namespace mflstm {
namespace sched {

/**
 * Everything one tuning run needs: the timing shape, the measured
 * per-layer statistics to project onto it, the calibration outputs the
 * preset planner consumes, and the precision/batch point being tuned.
 * Together with the GpuConfig of the executor this keys the tuned-plan
 * cache artifact.
 */
struct TuneRequest
{
    runtime::NetworkShape shape;
    /**
     * hw registry id of the backend being tuned for ("" = unspecified,
     * treated as the anchor). Recorded in the tuned-plan artifact
     * fingerprint so a cache written under one backend is Stale under
     * another even before the GpuConfig byte compare runs.
     */
    std::string backendId;
    /// one entry per layer, from an ApproxRunner evaluation pass
    std::vector<core::LayerApproxStats> stats;
    /// maximum tissue size from the offline sweep (Fig. 10 op 1)
    std::size_t mts = 1;
    /// hidden size of the accuracy model (normalises skippedRows)
    std::size_t modelHidden = 0;
    /// weight precision being tuned for
    quant::QuantMode quant = quant::QuantMode::Fp32;
    /// comparator fraction for the zero-pruning candidates ([31])
    double pruneFraction = 0.37;
    /// concurrent sequences per kernel during scoring runs
    std::size_t batch = 1;
    /// per-layer candidates surviving the byte-estimate prune
    std::size_t maxLayerCandidates = 4;

    /** @throws std::invalid_argument on an inconsistent request. */
    void validate() const;
};

/** One per-layer schedule option, labelled for the candidate table. */
struct LayerOption
{
    std::string label;  ///< stable rule name ("dense", "skip-hw", ...)
    runtime::LayerSchedule schedule;
};

/**
 * Enumerate the rule-driven schedule options for layer @p layer_index
 * of @p req. Always includes the dense schedule; adds skip variants
 * (sw-standalone, sw-fused, hw-crm) when the layer's measured skip
 * fraction is positive, tissue schedules (with and without fused DRS)
 * when the division statistics produce tissues larger than one cell
 * (@p inter / @p combined_inter are the aligned per-layer schedules the
 * preset planner built at the calibrated and the DRS-extended MTS),
 * persistent residency points (dense layers pinned to the shared and
 * register-file tiers, plus tissues+regfile so the Persistent preset's
 * exact per-layer point is always in the search), and the zero-pruning
 * CSR point when req.pruneFraction is meaningful.
 *
 * The rule set is per-backend (@p cfg, DESIGN.md §17): on parts with
 * int8 dot-product units an int8 request also enumerates int4 twins of
 * every quantized candidate (narrowing is free of the Maxwell convert
 * tax there — the Fig. 16 row worth searching), while backends without
 * dot units never see those dequant-heavy int4 points; on accelerators
 * with explicit on-chip weight memory whose pinnable shared capacity
 * covers this layer's recurrent footprint, streamed-weight options are
 * priced out of the menu entirely (the dense point stays as the
 * comparison anchor, resident points carry the searched mass).
 * Every returned schedule passes LayerSchedule::validate().
 */
std::vector<LayerOption>
enumerateLayerOptions(const TuneRequest &req, std::size_t layer_index,
                      const std::vector<runtime::LayerInterPlan> &inter,
                      const std::vector<runtime::LayerInterPlan>
                          &combined_inter,
                      const gpu::GpuConfig &cfg);

} // namespace sched
} // namespace mflstm

#endif // MFLSTM_SCHED_SPACE_HH
