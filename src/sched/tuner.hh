/**
 * @file
 * Cost-model-guided auto-scheduler (DESIGN.md §14). The tuner searches
 * the per-layer decision space of space.hh for one (network, GpuConfig,
 * QuantMode) point: rule-driven enumeration per layer, a cheap
 * lowering-level byte-estimate prune, per-layer scoring by single-layer
 * simulation, then full-network simulation of the composed candidates
 * next to every legacy PlanKind preset. Selection is dominance-gated:
 * the chosen plan is never worse than the best preset on simulated
 * time *and* DRAM bytes, by construction (the best preset itself stays
 * eligible). The winner is frozen into explicit ScheduleDecisions
 * (PlanKind::Tuned), ready for the persist.hh cache artifact.
 *
 * Everything here is deterministic: same request + same GpuConfig →
 * the same candidate table, the same chosen plan, byte-identical
 * artifacts.
 */

#ifndef MFLSTM_SCHED_TUNER_HH
#define MFLSTM_SCHED_TUNER_HH

#include <string>
#include <vector>

#include "runtime/executor.hh"
#include "sched/space.hh"

namespace mflstm {
namespace sched {

/** One fully simulated whole-network schedule. */
struct Candidate
{
    /// stable rule label ("preset:combined", "search:min-time", ...)
    std::string label;
    runtime::ExecutionPlan plan;
    double timeUs = 0.0;
    double dramBytes = 0.0;
};

/** The tuner's full output (everything the table/report prints). */
struct TuneResult
{
    /// the winner, frozen as explicit decisions (PlanKind::Tuned)
    Candidate chosen;
    /// what the winner's decisions were composed from, per layer
    std::vector<std::string> chosenLayerLabels;
    /// every simulated whole-network candidate, fastest first
    std::vector<Candidate> candidates;
    /// the dominance reference: best preset by (time, then bytes)
    std::string referenceLabel;
    double referenceTimeUs = 0.0;
    double referenceDramBytes = 0.0;
    /// satisfied by construction; recorded for the report/bench gate
    bool dominatesReference = false;
    /// true when persist.hh served this result from a cache artifact
    bool fromCache = false;
};

/**
 * Build the preset ExecutionPlan for @p kind from the request's
 * statistics, exactly as the facade's timing path would (including the
 * Combined MTS re-sweep with the measured mean skip). Exposed so the
 * tune bench can score hand presets through the identical construction.
 */
runtime::ExecutionPlan
presetPlan(const runtime::NetworkExecutor &exec, const TuneRequest &req,
           runtime::PlanKind kind);

/**
 * Run the search. @p exec supplies the GpuConfig, lowering and
 * simulator used for every estimate and score.
 * @throws std::invalid_argument via TuneRequest::validate().
 */
TuneResult tune(const runtime::NetworkExecutor &exec,
                const TuneRequest &req);

/** Geomean-style scalar used in reports: microseconds. */
double simulatedTimeUs(const runtime::NetworkExecutor &exec,
                       const TuneRequest &req,
                       const runtime::ExecutionPlan &plan);

} // namespace sched
} // namespace mflstm

#endif // MFLSTM_SCHED_TUNER_HH
