#include "sched/tuner.hh"

#include <algorithm>
#include <stdexcept>

#include "core/planner.hh"
#include "core/tissue.hh"

namespace mflstm {
namespace sched {

namespace {

/** The presets the paper's evaluation compares (Fig. 14 columns). */
constexpr runtime::PlanKind kPresets[] = {
    runtime::PlanKind::Baseline,    runtime::PlanKind::InterCell,
    runtime::PlanKind::IntraCellSw, runtime::PlanKind::IntraCellHw,
    runtime::PlanKind::Combined,    runtime::PlanKind::ZeroPruning,
    runtime::PlanKind::Persistent,
};

double
meanSkip(const TuneRequest &req)
{
    double skip = 0.0;
    for (const core::LayerApproxStats &st : req.stats)
        skip += st.skipFraction(req.modelHidden);
    return skip / static_cast<double>(req.stats.size());
}

/**
 * Cheap pre-simulation cost: total DRAM bytes of the lowered trace.
 * This is the byte-estimate prune of DESIGN.md §14 — it ranks layer
 * options without paying for the latency simulation.
 */
double
traceDramBytes(const runtime::NetworkExecutor &exec,
               const runtime::LstmLayerShape &layer,
               const runtime::ExecutionPlan &plan, std::size_t batch)
{
    runtime::NetworkShape one;
    one.layers = {layer};
    const gpu::KernelTrace trace =
        exec.lowering().lower(one, plan, batch);
    double bytes = 0.0;
    for (const gpu::KernelDesc &k : trace)
        bytes += k.dramReadBytes + k.dramWriteBytes;
    return bytes;
}

runtime::ExecutionPlan
singleLayerPlan(const runtime::LayerSchedule &ls)
{
    runtime::ScheduleDecisions d;
    d.layers = {ls};
    return runtime::ExecutionPlan::fromDecisions(std::move(d));
}

struct ScoredOption
{
    LayerOption option;
    double estBytes = 0.0;
    double timeUs = 0.0;
    double dramBytes = 0.0;
};

} // anonymous namespace

runtime::ExecutionPlan
presetPlan(const runtime::NetworkExecutor &exec, const TuneRequest &req,
           runtime::PlanKind kind)
{
    req.validate();

    runtime::ExecutionPlan plan;
    plan.kind = kind;
    plan.quantMode = req.quant;
    if (kind == runtime::PlanKind::Baseline)
        return plan;
    if (kind == runtime::PlanKind::ZeroPruning) {
        plan.pruneFraction = req.pruneFraction;
        return plan;
    }

    std::size_t mts = req.mts;
    if (kind == runtime::PlanKind::Combined) {
        // DRS relieves on-chip traffic inside the tissue GEMM, which
        // raises the bandwidth-limited MTS (same re-sweep the facade's
        // planFromStats performs).
        const double skip = meanSkip(req);
        if (skip > 0.0)
            mts = core::findMts(exec, req.shape.layers.front(), 12, skip)
                      .mts;
    }

    runtime::ExecutionPlan built = core::buildPlan(
        kind, req.stats, req.shape, mts, req.modelHidden);
    built.quantMode = req.quant;
    return built;
}

double
simulatedTimeUs(const runtime::NetworkExecutor &exec,
                const TuneRequest &req,
                const runtime::ExecutionPlan &plan)
{
    return exec
        .run(runtime::RunRequest::network(req.shape, plan, req.batch))
        .result.timeUs;
}

TuneResult
tune(const runtime::NetworkExecutor &exec, const TuneRequest &req)
{
    req.validate();

    TuneResult result;

    const auto score = [&](std::string label,
                           runtime::ExecutionPlan plan) -> Candidate & {
        const runtime::RunReport report = exec.run(
            runtime::RunRequest::network(req.shape, plan, req.batch));
        result.candidates.push_back({std::move(label), std::move(plan),
                                     report.result.timeUs,
                                     report.result.dramBytes});
        return result.candidates.back();
    };

    // --- 1. The legacy presets, through the canonical construction ----
    for (runtime::PlanKind kind : kPresets)
        score(std::string("preset:") + runtime::toString(kind),
              presetPlan(exec, req, kind));
    const std::size_t preset_count = result.candidates.size();

    // --- 2. Per-layer rule enumeration + byte prune + layer scoring ---
    const std::vector<runtime::LayerInterPlan> inter =
        presetPlan(exec, req, runtime::PlanKind::InterCell).inter;
    const std::vector<runtime::LayerInterPlan> combined_inter =
        presetPlan(exec, req, runtime::PlanKind::Combined).inter;

    std::vector<runtime::LayerSchedule> min_time, min_bytes;
    std::vector<std::string> time_labels, bytes_labels;
    for (std::size_t l = 0; l < req.shape.layers.size(); ++l) {
        std::vector<ScoredOption> scored;
        for (LayerOption &opt :
             enumerateLayerOptions(req, l, inter, combined_inter,
                                   exec.config())) {
            ScoredOption so;
            so.estBytes =
                traceDramBytes(exec, req.shape.layers[l],
                               singleLayerPlan(opt.schedule), req.batch);
            so.option = std::move(opt);
            scored.push_back(std::move(so));
        }

        // Keep the maxLayerCandidates cheapest byte estimates (ties by
        // enumeration order — stable_sort keeps this deterministic);
        // the dense point always survives via the preset candidates.
        std::stable_sort(scored.begin(), scored.end(),
                         [](const ScoredOption &a, const ScoredOption &b) {
                             return a.estBytes < b.estBytes;
                         });
        if (scored.size() > req.maxLayerCandidates)
            scored.resize(req.maxLayerCandidates);

        for (ScoredOption &so : scored) {
            const runtime::RunReport rep = exec.run(
                runtime::RunRequest::layer(req.shape.layers[l],
                                           singleLayerPlan(
                                               so.option.schedule),
                                           0, req.batch));
            so.timeUs = rep.result.timeUs;
            so.dramBytes = rep.result.dramBytes;
        }

        const auto by_time = std::min_element(
            scored.begin(), scored.end(),
            [](const ScoredOption &a, const ScoredOption &b) {
                return a.timeUs != b.timeUs
                           ? a.timeUs < b.timeUs
                           : a.dramBytes < b.dramBytes;
            });
        const auto by_bytes = std::min_element(
            scored.begin(), scored.end(),
            [](const ScoredOption &a, const ScoredOption &b) {
                return a.dramBytes != b.dramBytes
                           ? a.dramBytes < b.dramBytes
                           : a.timeUs < b.timeUs;
            });
        min_time.push_back(by_time->option.schedule);
        time_labels.push_back(by_time->option.label);
        min_bytes.push_back(by_bytes->option.schedule);
        bytes_labels.push_back(by_bytes->option.label);
    }

    // --- 3. Composed whole-network candidates -------------------------
    {
        runtime::ScheduleDecisions d;
        d.layers = min_time;
        score("search:min-time",
              runtime::ExecutionPlan::fromDecisions(std::move(d)));
    }
    if (min_bytes != min_time) {
        runtime::ScheduleDecisions d;
        d.layers = min_bytes;
        score("search:min-bytes",
              runtime::ExecutionPlan::fromDecisions(std::move(d)));
    }

    // --- 4. Dominance-gated selection ---------------------------------
    const auto better_time = [](const Candidate &a, const Candidate &b) {
        return a.timeUs != b.timeUs ? a.timeUs < b.timeUs
                                    : a.dramBytes < b.dramBytes;
    };
    const Candidate &ref = *std::min_element(
        result.candidates.begin(),
        result.candidates.begin() +
            static_cast<std::ptrdiff_t>(preset_count),
        better_time);
    result.referenceLabel = ref.label;
    result.referenceTimeUs = ref.timeUs;
    result.referenceDramBytes = ref.dramBytes;

    // Only candidates at least as good as the best preset on *both*
    // metrics are eligible; ref itself always qualifies, so the chosen
    // plan can never regress either axis.
    const Candidate *chosen = &ref;
    for (const Candidate &c : result.candidates) {
        if (c.timeUs > ref.timeUs || c.dramBytes > ref.dramBytes)
            continue;
        if (better_time(c, *chosen))
            chosen = &c;
    }

    // Freeze the winner as explicit decisions: lowering them is
    // bit-identical to the winning candidate (plan-API §14 contract).
    Candidate frozen = *chosen;
    if (!frozen.plan.hasExplicitDecisions()) {
        frozen.plan = runtime::ExecutionPlan::fromDecisions(
            frozen.plan.explicitDecisions(req.shape.layers.size()));
    }
    result.chosen = std::move(frozen);
    result.chosenLayerLabels =
        chosen->label == "search:min-bytes" ? bytes_labels : time_labels;
    if (chosen->label.rfind("preset:", 0) == 0)
        result.chosenLayerLabels.assign(req.shape.layers.size(),
                                        chosen->label);
    result.dominatesReference =
        result.chosen.timeUs <= result.referenceTimeUs &&
        result.chosen.dramBytes <= result.referenceDramBytes;

    std::stable_sort(result.candidates.begin(), result.candidates.end(),
                     better_time);
    return result;
}

} // namespace sched
} // namespace mflstm
