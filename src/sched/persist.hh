/**
 * @file
 * Tuned-plan persistence on the crash-safe artifact layer (DESIGN.md
 * §11/§14). A search result is only meaningful for the exact model,
 * statistics, GPU and precision point it was tuned on, so the artifact
 * (io::kSchemaTunedPlan) carries a full fingerprint — model weights
 * CRC, statistics CRC, the tuning knobs — plus the complete GpuConfig
 * and timing shape, the chosen ScheduleDecisions, and the measured
 * (simulated) time/bytes of the chosen plan and its preset reference.
 *
 * Loading re-derives trust instead of assuming it: the fingerprint must
 * match the caller's expectation (ErrorKind::Stale otherwise, exactly
 * like the calibration artifact's weights-CRC rule), the decisions must
 * validate, and the plan is re-simulated on the stored GpuConfig — a
 * measured time/bytes mismatch rejects the file as Stale rather than
 * serving a plan whose claimed score the current simulator cannot
 * reproduce. Storing the GpuConfig makes that re-simulation possible
 * standalone, which is what lets `mflstm fsck` deep-verify tuned plans
 * with no model or calibration at hand.
 */

#ifndef MFLSTM_SCHED_PERSIST_HH
#define MFLSTM_SCHED_PERSIST_HH

#include <string>
#include <vector>

#include "gpu/config.hh"
#include "io/artifact.hh"
#include "sched/tuner.hh"

namespace mflstm {
namespace sched {

/** What makes a tuned plan reusable (all must match on load). */
struct TunedPlanFingerprint
{
    std::uint32_t weightsCrc = 0;  ///< core::modelWeightsCrc
    std::uint32_t statsCrc = 0;    ///< statsCrc() over TuneRequest::stats
    std::uint32_t quant = 0;       ///< quant::QuantMode underlying value
    double pruneFraction = 0.0;
    std::uint64_t batch = 1;
    std::uint64_t mts = 1;
    std::uint64_t modelHidden = 0;
    /// hw registry backend id (v3+; "" on files written before v3, in
    /// which case the GpuConfig byte compare is the staleness guard)
    std::string backendId;

    bool operator==(const TunedPlanFingerprint &) const = default;
};

/** Candidate-table row persisted for the report on cache hits. */
struct CandidateSummary
{
    std::string label;
    double timeUs = 0.0;
    double dramBytes = 0.0;
};

/** Everything the tuned-plan artifact stores. */
struct TunedPlanArtifact
{
    TunedPlanFingerprint fingerprint;
    gpu::GpuConfig gpu;
    runtime::NetworkShape shape;
    runtime::ScheduleDecisions decisions;
    /// measured (simulated) score of the chosen plan
    double timeUs = 0.0;
    double dramBytes = 0.0;
    std::string chosenLabel;
    /// the dominance reference preset and its score
    std::string referenceLabel;
    double referenceTimeUs = 0.0;
    double referenceDramBytes = 0.0;
    std::vector<std::string> layerLabels;
    std::vector<CandidateSummary> candidates;
};

/** CRC32 over the packed statistics (fingerprint ingredient). */
std::uint32_t
statsCrc(const std::vector<core::LayerApproxStats> &stats);

/** Deterministic byte serialization of @p cfg (also the staleness key). */
std::vector<std::uint8_t> serializeGpuConfig(const gpu::GpuConfig &cfg);

/** Assemble the artifact for @p result tuned under @p req. */
TunedPlanArtifact
makeTunedPlanArtifact(const TuneRequest &req, std::uint32_t weights_crc,
                      const gpu::GpuConfig &gpu,
                      const TuneResult &result);

/** Atomic write of @p artifact. @throws io::ArtifactError on I/O. */
void saveTunedPlan(const TunedPlanArtifact &artifact,
                   const std::string &path);

/**
 * Load and fully validate a tuned plan: structure, fingerprint against
 * (@p req, @p weights_crc, @p gpu), decision validity, and measured
 * re-simulation. @throws io::ArtifactError (Stale on any expectation
 * mismatch or score the simulator cannot reproduce). When @p obs is
 * non-null a rejection bumps artifact_load_rejected_total.
 */
TunedPlanArtifact
loadTunedPlan(const std::string &path, const gpu::GpuConfig &gpu,
              const TuneRequest &req, std::uint32_t weights_crc,
              const io::ArtifactLimits &limits = {},
              obs::Observer *obs = nullptr);

/**
 * Deep verification for `mflstm fsck`: parse every chunk, validate the
 * decisions, and re-simulate the plan on the *stored* GpuConfig/shape,
 * checking the measured score reproduces. Needs no model — staleness
 * against a live model cannot be checked here, structural and
 * self-consistency defects can. @throws io::ArtifactError.
 */
void verifyTunedPlanFile(const std::string &path,
                         const io::ArtifactLimits &limits = {});

/**
 * The cached tuning entry point (the `mflstm tune` / serve path):
 * return the cached result when @p path holds a valid, fresh tuned
 * plan for this request (result.fromCache = true, search skipped);
 * otherwise run tune(), save the artifact, and return the fresh
 * result. A corrupt or stale cache file is quarantined (*.corrupt) and
 * counted via recordRejection, never trusted and never fatal. With
 * @p force the cache is ignored (but still rewritten).
 *
 * On a cache hit only the chosen candidate carries a plan; the other
 * table rows are label/score summaries.
 */
TuneResult tuneCached(const runtime::NetworkExecutor &exec,
                      const TuneRequest &req, std::uint32_t weights_crc,
                      const std::string &path,
                      const io::ArtifactLimits &limits = {},
                      obs::Observer *obs = nullptr, bool force = false);

} // namespace sched
} // namespace mflstm

#endif // MFLSTM_SCHED_PERSIST_HH
