#include "sched/persist.hh"

#include <algorithm>
#include <cmath>
#include <filesystem>

namespace mflstm {
namespace sched {

namespace {

/**
 * Schema history:
 *  v1 — initial tuned-plan artifact.
 *  v2 — appends a per-layer weight-residency tag to the decision chunk
 *       and the residency cost-model fields to the GpuConfig chunk.
 *  v3 — appends the hw registry backend id to the fingerprint chunk and
 *       the backend capability flags (int8 dot units, explicit weight
 *       memory) to the GpuConfig chunk.
 * Older files still load: v1's appended fields default to "no
 * residency", v2's to "no recorded backend" (the GpuConfig byte compare
 * remains the staleness guard there) and "no capability flags", which
 * is exactly what those writers simulated.
 */
constexpr std::uint32_t kVersion = 3;
constexpr std::uint32_t kMinVersion = 1;

const std::uint32_t kChunkFingerprint = io::fourcc('T', 'F', 'P', 'R');
const std::uint32_t kChunkGpu = io::fourcc('T', 'G', 'P', 'U');
const std::uint32_t kChunkShape = io::fourcc('T', 'S', 'H', 'P');
const std::uint32_t kChunkDecisions = io::fourcc('T', 'D', 'E', 'C');
const std::uint32_t kChunkMeasured = io::fourcc('T', 'M', 'E', 'A');
const std::uint32_t kChunkCandidates = io::fourcc('T', 'C', 'A', 'N');

[[noreturn]] void
fail(io::ErrorKind kind, const std::string &msg)
{
    throw io::ArtifactError(kind, "tuned plan: " + msg);
}

void
writeString(io::ByteWriter &w, const std::string &s)
{
    w.u8Array({reinterpret_cast<const std::int8_t *>(s.data()),
               s.size()});
}

std::string
readString(io::ByteReader &r)
{
    const std::vector<std::int8_t> raw = r.u8Array();
    if (raw.empty())
        return {};
    return std::string(reinterpret_cast<const char *>(raw.data()),
                       raw.size());
}

void
checkFinite(double v, const char *what)
{
    if (!std::isfinite(v))
        fail(io::ErrorKind::NonFinite,
             std::string(what) + " is not finite");
}

/** |a - b| within a relative 1e-6 of |b| (guarded near zero). */
bool
close(double a, double b)
{
    return std::abs(a - b) <= 1e-6 * std::max(1.0, std::abs(b));
}

void
writeFingerprint(io::ByteWriter &w, const TunedPlanFingerprint &fp)
{
    w.u32(fp.weightsCrc);
    w.u32(fp.statsCrc);
    w.u32(fp.quant);
    w.f64(fp.pruneFraction);
    w.u64(fp.batch);
    w.u64(fp.mts);
    w.u64(fp.modelHidden);
    writeString(w, fp.backendId);  // v3
}

TunedPlanFingerprint
readFingerprint(io::ByteReader &r, std::uint32_t version)
{
    TunedPlanFingerprint fp;
    fp.weightsCrc = r.u32();
    fp.statsCrc = r.u32();
    fp.quant = r.u32();
    fp.pruneFraction = r.f64();
    fp.batch = r.u64();
    fp.mts = r.u64();
    fp.modelHidden = r.u64();
    if (version >= 3)
        fp.backendId = readString(r);
    r.expectEnd();
    return fp;
}

void
writeShape(io::ByteWriter &w, const runtime::NetworkShape &shape)
{
    w.u64(shape.layers.size());
    for (const runtime::LstmLayerShape &l : shape.layers) {
        w.u64(l.inputSize);
        w.u64(l.hiddenSize);
        w.u64(l.length);
    }
}

runtime::NetworkShape
readShape(io::ByteReader &r)
{
    runtime::NetworkShape shape;
    const std::uint64_t count = r.u64();
    if (!count || count > 1024)
        fail(io::ErrorKind::Malformed, "implausible layer count");
    shape.layers.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        runtime::LstmLayerShape l;
        l.inputSize = r.u64();
        l.hiddenSize = r.u64();
        l.length = r.u64();
        shape.layers.push_back(l);
    }
    r.expectEnd();
    return shape;
}

void
writeDecisions(io::ByteWriter &w,
               const runtime::ScheduleDecisions &decisions)
{
    w.u64(decisions.layers.size());
    for (const runtime::LayerSchedule &ls : decisions.layers) {
        std::vector<std::uint64_t> sizes(ls.tissueSizes.begin(),
                                         ls.tissueSizes.end());
        w.u64Array(sizes);
        w.u32(static_cast<std::uint32_t>(ls.skipPath));
        w.f64(ls.skipFraction);
        w.u32(static_cast<std::uint32_t>(ls.flagFusion));
        w.u32(static_cast<std::uint32_t>(ls.quant));
        w.u32(ls.prunedCsr ? 1 : 0);
        w.f64(ls.pruneFraction);
        w.u64(ls.batch);
        w.u32(static_cast<std::uint32_t>(ls.residency));  // v2
    }
}

runtime::ScheduleDecisions
readDecisions(io::ByteReader &r, std::uint32_t version)
{
    runtime::ScheduleDecisions decisions;
    const std::uint64_t count = r.u64();
    if (!count || count > 1024)
        fail(io::ErrorKind::Malformed, "implausible decision count");
    decisions.layers.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        runtime::LayerSchedule ls;
        const std::vector<std::uint64_t> sizes = r.u64Array();
        ls.tissueSizes.assign(sizes.begin(), sizes.end());
        const std::uint32_t path = r.u32();
        if (path > static_cast<std::uint32_t>(
                       runtime::SkipPath::HwCrm))
            fail(io::ErrorKind::Malformed, "unknown skip path");
        ls.skipPath = static_cast<runtime::SkipPath>(path);
        ls.skipFraction = r.f64();
        const std::uint32_t fusion = r.u32();
        if (fusion > static_cast<std::uint32_t>(
                         runtime::FlagFusion::FusedEpilogue))
            fail(io::ErrorKind::Malformed, "unknown flag fusion");
        ls.flagFusion = static_cast<runtime::FlagFusion>(fusion);
        const std::uint32_t qm = r.u32();
        if (qm > static_cast<std::uint32_t>(quant::QuantMode::Int4))
            fail(io::ErrorKind::Malformed, "unknown quant mode");
        ls.quant = static_cast<quant::QuantMode>(qm);
        ls.prunedCsr = r.u32() != 0;
        ls.pruneFraction = r.f64();
        ls.batch = r.u64();
        if (version >= 2) {
            const std::uint32_t res = r.u32();
            if (res > static_cast<std::uint32_t>(
                          runtime::WeightResidency::Regfile))
                fail(io::ErrorKind::Malformed, "unknown residency");
            ls.residency = static_cast<runtime::WeightResidency>(res);
        }
        decisions.layers.push_back(std::move(ls));
    }
    r.expectEnd();
    try {
        decisions.validate();
    } catch (const std::invalid_argument &e) {
        fail(io::ErrorKind::Malformed, e.what());
    }
    return decisions;
}

struct Parsed
{
    TunedPlanArtifact artifact;
    std::vector<std::uint8_t> gpuBytes;
};

gpu::GpuConfig
deserializeGpuConfig(io::ByteReader &r, std::uint32_t version)
{
    gpu::GpuConfig cfg;
    cfg.name = readString(r);
    cfg.numSms = r.u32();
    cfg.coresPerSm = r.u32();
    cfg.coreClockGhz = r.f64();
    cfg.warpSize = r.u32();
    cfg.maxThreadsPerSm = r.u32();
    cfg.maxCtasPerSm = r.u32();
    cfg.dramBandwidthGBs = r.f64();
    cfg.dramLatencyNs = r.f64();
    cfg.l2Bytes = r.u64();
    cfg.l2Assoc = r.u32();
    cfg.lineBytes = r.u32();
    cfg.l2BytesPerCycle = r.f64();
    cfg.sharedMemPerSmBytes = r.u64();
    cfg.sharedBytesPerCyclePerSm = r.f64();
    cfg.kernelLaunchUs = r.f64();
    cfg.streamedLaunchFraction = r.f64();
    cfg.barrierCostCycles = r.f64();
    cfg.reconfigPenalty = r.f64();
    cfg.socStaticW = r.f64();
    cfg.gpuIdleW = r.f64();
    cfg.gpuIssueActiveW = r.f64();
    cfg.dramPjPerByte = r.f64();
    cfg.l2PjPerByte = r.f64();
    cfg.sharedPjPerByte = r.f64();
    cfg.fmaPjPerFlop = r.f64();
    cfg.dequantPjPerWeight = r.f64();
    cfg.dequantOpsPerWeight = r.f64();
    cfg.crmThreadsPerCycle = r.u32();
    cfg.crmPipelineCycles = r.u32();
    cfg.crmPjPerThread = r.f64();
    cfg.crmStaticW = r.f64();
    if (version >= 2) {
        cfg.regFileBytesPerSm = r.u64();
        cfg.sharedResidencyFraction = r.f64();
        cfg.regfileResidencyFraction = r.f64();
        cfg.residencyOccupancyPenalty = r.f64();
    }
    if (version >= 3) {
        cfg.int8DotUnits = r.u32() != 0;
        cfg.explicitWeightMemory = r.u32() != 0;
    }
    r.expectEnd();
    return cfg;
}

/** Parse + structurally validate every chunk (no staleness checks). */
Parsed
parse(const std::string &path, const io::ArtifactLimits &limits)
{
    io::ArtifactReader reader(path, io::kSchemaTunedPlan, limits);
    const std::uint32_t version = reader.schemaVersion();
    if (version < kMinVersion || version > kVersion)
        fail(io::ErrorKind::BadVersion,
             "schema version " + std::to_string(version) +
                 " unsupported");

    Parsed out;
    {
        io::ByteReader r = reader.chunk(kChunkFingerprint);
        out.artifact.fingerprint = readFingerprint(r, version);
    }
    {
        io::ByteReader r = reader.chunk(kChunkGpu);
        out.artifact.gpu = deserializeGpuConfig(r, version);
        out.gpuBytes = serializeGpuConfig(out.artifact.gpu);
    }
    {
        io::ByteReader r = reader.chunk(kChunkShape);
        out.artifact.shape = readShape(r);
    }
    {
        io::ByteReader r = reader.chunk(kChunkDecisions);
        out.artifact.decisions = readDecisions(r, version);
    }
    if (out.artifact.decisions.layers.size() !=
        out.artifact.shape.layers.size())
        fail(io::ErrorKind::Malformed,
             "decision/shape layer count mismatch");
    {
        io::ByteReader r = reader.chunk(kChunkMeasured);
        out.artifact.timeUs = r.f64();
        out.artifact.dramBytes = r.f64();
        out.artifact.chosenLabel = readString(r);
        out.artifact.referenceLabel = readString(r);
        out.artifact.referenceTimeUs = r.f64();
        out.artifact.referenceDramBytes = r.f64();
        const std::uint64_t labels = r.u64();
        if (labels != out.artifact.shape.layers.size())
            fail(io::ErrorKind::Malformed,
                 "layer label count mismatch");
        for (std::uint64_t i = 0; i < labels; ++i)
            out.artifact.layerLabels.push_back(readString(r));
        r.expectEnd();
    }
    {
        io::ByteReader r = reader.chunk(kChunkCandidates);
        const std::uint64_t count = r.u64();
        if (count > 4096)
            fail(io::ErrorKind::Malformed,
                 "implausible candidate count");
        for (std::uint64_t i = 0; i < count; ++i) {
            CandidateSummary c;
            c.label = readString(r);
            c.timeUs = r.f64();
            c.dramBytes = r.f64();
            out.artifact.candidates.push_back(std::move(c));
        }
        r.expectEnd();
    }

    checkFinite(out.artifact.timeUs, "measured time");
    checkFinite(out.artifact.dramBytes, "measured bytes");
    checkFinite(out.artifact.referenceTimeUs, "reference time");
    checkFinite(out.artifact.referenceDramBytes, "reference bytes");
    if (out.artifact.timeUs < 0.0 || out.artifact.dramBytes < 0.0)
        fail(io::ErrorKind::Malformed, "negative measured score");
    return out;
}

/**
 * Re-simulate the stored decisions on the stored GpuConfig and require
 * the stored score to reproduce — the artifact is not just structurally
 * sound, its claim is re-derived before anything trusts it.
 */
void
checkMeasured(const TunedPlanArtifact &artifact)
{
    runtime::ExecutionPlan plan;
    try {
        plan = runtime::ExecutionPlan::fromDecisions(artifact.decisions);
    } catch (const std::invalid_argument &e) {
        fail(io::ErrorKind::Malformed, e.what());
    }
    const runtime::NetworkExecutor exec(artifact.gpu);
    const runtime::RunReport report =
        exec.run(runtime::RunRequest::network(
            artifact.shape, std::move(plan),
            static_cast<std::size_t>(artifact.fingerprint.batch)));
    if (!close(report.result.timeUs, artifact.timeUs) ||
        !close(report.result.dramBytes, artifact.dramBytes))
        fail(io::ErrorKind::Stale,
             "measured score does not re-simulate (stored " +
                 std::to_string(artifact.timeUs) + " us / " +
                 std::to_string(artifact.dramBytes) + " B, got " +
                 std::to_string(report.result.timeUs) + " us / " +
                 std::to_string(report.result.dramBytes) + " B)");
}

TuneResult
resultFromArtifact(TunedPlanArtifact art)
{
    TuneResult result;
    result.chosen.label = art.chosenLabel;
    result.chosen.plan =
        runtime::ExecutionPlan::fromDecisions(std::move(art.decisions));
    result.chosen.timeUs = art.timeUs;
    result.chosen.dramBytes = art.dramBytes;
    result.chosenLayerLabels = std::move(art.layerLabels);
    for (CandidateSummary &c : art.candidates) {
        Candidate cand;
        cand.label = std::move(c.label);
        cand.timeUs = c.timeUs;
        cand.dramBytes = c.dramBytes;
        result.candidates.push_back(std::move(cand));
    }
    result.referenceLabel = std::move(art.referenceLabel);
    result.referenceTimeUs = art.referenceTimeUs;
    result.referenceDramBytes = art.referenceDramBytes;
    result.dominatesReference =
        result.chosen.timeUs <= result.referenceTimeUs &&
        result.chosen.dramBytes <= result.referenceDramBytes;
    result.fromCache = true;
    return result;
}

} // anonymous namespace

std::uint32_t
statsCrc(const std::vector<core::LayerApproxStats> &stats)
{
    io::ByteWriter w;
    for (const core::LayerApproxStats &st : stats) {
        w.u64(st.sequences);
        w.u64(st.links);
        w.u64(st.breaks);
        w.u64(st.cells);
        w.f64(st.skippedRows);
    }
    return io::crc32(w.bytes().data(), w.bytes().size());
}

namespace {

void
serializeGpuConfigInto(io::ByteWriter &w, const gpu::GpuConfig &cfg)
{
    writeString(w, cfg.name);
    w.u32(cfg.numSms);
    w.u32(cfg.coresPerSm);
    w.f64(cfg.coreClockGhz);
    w.u32(cfg.warpSize);
    w.u32(cfg.maxThreadsPerSm);
    w.u32(cfg.maxCtasPerSm);
    w.f64(cfg.dramBandwidthGBs);
    w.f64(cfg.dramLatencyNs);
    w.u64(cfg.l2Bytes);
    w.u32(cfg.l2Assoc);
    w.u32(cfg.lineBytes);
    w.f64(cfg.l2BytesPerCycle);
    w.u64(cfg.sharedMemPerSmBytes);
    w.f64(cfg.sharedBytesPerCyclePerSm);
    w.f64(cfg.kernelLaunchUs);
    w.f64(cfg.streamedLaunchFraction);
    w.f64(cfg.barrierCostCycles);
    w.f64(cfg.reconfigPenalty);
    w.f64(cfg.socStaticW);
    w.f64(cfg.gpuIdleW);
    w.f64(cfg.gpuIssueActiveW);
    w.f64(cfg.dramPjPerByte);
    w.f64(cfg.l2PjPerByte);
    w.f64(cfg.sharedPjPerByte);
    w.f64(cfg.fmaPjPerFlop);
    w.f64(cfg.dequantPjPerWeight);
    w.f64(cfg.dequantOpsPerWeight);
    w.u32(cfg.crmThreadsPerCycle);
    w.u32(cfg.crmPipelineCycles);
    w.f64(cfg.crmPjPerThread);
    w.f64(cfg.crmStaticW);
    // v2: residency cost-model fields
    w.u64(cfg.regFileBytesPerSm);
    w.f64(cfg.sharedResidencyFraction);
    w.f64(cfg.regfileResidencyFraction);
    w.f64(cfg.residencyOccupancyPenalty);
    // v3: backend capability flags
    w.u32(cfg.int8DotUnits ? 1 : 0);
    w.u32(cfg.explicitWeightMemory ? 1 : 0);
}

} // anonymous namespace

std::vector<std::uint8_t>
serializeGpuConfig(const gpu::GpuConfig &cfg)
{
    io::ByteWriter w;
    serializeGpuConfigInto(w, cfg);
    return w.bytes();
}

TunedPlanArtifact
makeTunedPlanArtifact(const TuneRequest &req, std::uint32_t weights_crc,
                      const gpu::GpuConfig &gpu, const TuneResult &result)
{
    TunedPlanArtifact art;
    art.fingerprint.weightsCrc = weights_crc;
    art.fingerprint.statsCrc = statsCrc(req.stats);
    art.fingerprint.quant = static_cast<std::uint32_t>(req.quant);
    art.fingerprint.pruneFraction = req.pruneFraction;
    art.fingerprint.batch = req.batch;
    art.fingerprint.mts = req.mts;
    art.fingerprint.modelHidden = req.modelHidden;
    art.fingerprint.backendId = req.backendId;
    art.gpu = gpu;
    art.shape = req.shape;
    art.decisions =
        result.chosen.plan.hasExplicitDecisions()
            ? result.chosen.plan.decisions
            : result.chosen.plan.explicitDecisions(
                  req.shape.layers.size());
    art.timeUs = result.chosen.timeUs;
    art.dramBytes = result.chosen.dramBytes;
    art.chosenLabel = result.chosen.label;
    art.referenceLabel = result.referenceLabel;
    art.referenceTimeUs = result.referenceTimeUs;
    art.referenceDramBytes = result.referenceDramBytes;
    art.layerLabels = result.chosenLayerLabels;
    for (const Candidate &c : result.candidates)
        art.candidates.push_back({c.label, c.timeUs, c.dramBytes});
    return art;
}

void
saveTunedPlan(const TunedPlanArtifact &artifact, const std::string &path)
{
    io::ArtifactWriter writer(io::kSchemaTunedPlan, kVersion);
    writeFingerprint(writer.chunk(kChunkFingerprint),
                     artifact.fingerprint);
    serializeGpuConfigInto(writer.chunk(kChunkGpu), artifact.gpu);
    writeShape(writer.chunk(kChunkShape), artifact.shape);
    writeDecisions(writer.chunk(kChunkDecisions), artifact.decisions);
    {
        io::ByteWriter &w = writer.chunk(kChunkMeasured);
        w.f64(artifact.timeUs);
        w.f64(artifact.dramBytes);
        writeString(w, artifact.chosenLabel);
        writeString(w, artifact.referenceLabel);
        w.f64(artifact.referenceTimeUs);
        w.f64(artifact.referenceDramBytes);
        w.u64(artifact.layerLabels.size());
        for (const std::string &label : artifact.layerLabels)
            writeString(w, label);
    }
    {
        io::ByteWriter &w = writer.chunk(kChunkCandidates);
        w.u64(artifact.candidates.size());
        for (const CandidateSummary &c : artifact.candidates) {
            writeString(w, c.label);
            w.f64(c.timeUs);
            w.f64(c.dramBytes);
        }
    }
    writer.commit(path);
}

TunedPlanArtifact
loadTunedPlan(const std::string &path, const gpu::GpuConfig &gpu,
              const TuneRequest &req, std::uint32_t weights_crc,
              const io::ArtifactLimits &limits, obs::Observer *obs)
{
    try {
        Parsed parsed = parse(path, limits);
        TunedPlanArtifact &art = parsed.artifact;

        TunedPlanFingerprint want;
        want.weightsCrc = weights_crc;
        want.statsCrc = statsCrc(req.stats);
        want.quant = static_cast<std::uint32_t>(req.quant);
        want.pruneFraction = req.pruneFraction;
        want.batch = req.batch;
        want.mts = req.mts;
        want.modelHidden = req.modelHidden;
        want.backendId = req.backendId;
        // v1/v2 artifacts recorded no backend id; the GpuConfig byte
        // compare below remains the staleness guard for those files.
        if (art.fingerprint.backendId.empty())
            want.backendId.clear();
        if (!(art.fingerprint == want))
            fail(io::ErrorKind::Stale,
                 "fingerprint does not match this model/request");
        if (parsed.gpuBytes != serializeGpuConfig(gpu))
            fail(io::ErrorKind::Stale,
                 "tuned for a different GpuConfig");
        if (art.shape != req.shape)
            fail(io::ErrorKind::Stale,
                 "tuned for a different timing shape");

        checkMeasured(art);
        return art;
    } catch (const io::ArtifactError &e) {
        io::recordRejection(obs, e.kind());
        throw;
    }
}

void
verifyTunedPlanFile(const std::string &path,
                    const io::ArtifactLimits &limits)
{
    Parsed parsed = parse(path, limits);
    checkMeasured(parsed.artifact);
}

TuneResult
tuneCached(const runtime::NetworkExecutor &exec, const TuneRequest &req,
           std::uint32_t weights_crc, const std::string &path,
           const io::ArtifactLimits &limits, obs::Observer *obs,
           bool force)
{
    req.validate();

    std::error_code ec;
    if (!force && std::filesystem::exists(path, ec)) {
        try {
            return resultFromArtifact(loadTunedPlan(
                path, exec.config(), req, weights_crc, limits, obs));
        } catch (const io::ArtifactError &e) {
            // Rejection already counted by loadTunedPlan; move the bad
            // file aside and fall through to a fresh search.
            if (e.kind() != io::ErrorKind::Io)
                io::quarantine(path);
        }
    }

    TuneResult fresh = tune(exec, req);
    saveTunedPlan(
        makeTunedPlanArtifact(req, weights_crc, exec.config(), fresh),
        path);
    return fresh;
}

} // namespace sched
} // namespace mflstm
