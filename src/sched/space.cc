#include "sched/space.hh"

#include <algorithm>
#include <stdexcept>

#include "gpu/sm.hh"
#include "quant/qformat.hh"

namespace mflstm {
namespace sched {

namespace {

/**
 * DRAM footprint of one layer's recurrent U block at @p qm: the codes
 * plus, when quantized, the per-row fp32 scale stream (same accounting
 * as the lowering's weightFootprintBytes).
 */
double
layerUFootprintBytes(const runtime::LstmLayerShape &layer,
                     quant::QuantMode qm)
{
    const double h = static_cast<double>(layer.hiddenSize);
    const double elems = 4.0 * h * h;
    const double scale_bytes =
        qm == quant::QuantMode::Fp32 ? 0.0 : 4.0 * h * 4.0;
    return elems * quant::bytesPerWeight(qm) + scale_bytes;
}

} // anonymous namespace

void
TuneRequest::validate() const
{
    if (shape.layers.empty())
        throw std::invalid_argument("TuneRequest: empty network shape");
    if (stats.size() != shape.layers.size())
        throw std::invalid_argument(
            "TuneRequest: stats/layer count mismatch");
    if (!modelHidden)
        throw std::invalid_argument("TuneRequest: zero modelHidden");
    if (!mts)
        throw std::invalid_argument("TuneRequest: zero mts");
    if (!batch)
        throw std::invalid_argument("TuneRequest: zero batch");
    if (!maxLayerCandidates)
        throw std::invalid_argument(
            "TuneRequest: zero maxLayerCandidates");
    if (pruneFraction < 0.0 || pruneFraction > 1.0)
        throw std::invalid_argument(
            "TuneRequest: pruneFraction outside [0, 1]");
}

std::vector<LayerOption>
enumerateLayerOptions(const TuneRequest &req, std::size_t layer_index,
                      const std::vector<runtime::LayerInterPlan> &inter,
                      const std::vector<runtime::LayerInterPlan>
                          &combined_inter,
                      const gpu::GpuConfig &cfg)
{
    const double skip =
        req.stats[layer_index].skipFraction(req.modelHidden);

    std::vector<LayerOption> options;
    const auto add = [&](std::string label,
                         runtime::LayerSchedule ls) {
        ls.validate();
        // The rules can converge on the same point (e.g. a tissue
        // schedule of all ones equals dense); keep one copy so the
        // simulated candidate table stays readable.
        for (const LayerOption &o : options)
            if (o.schedule == ls)
                return;
        options.push_back({std::move(label), std::move(ls)});
    };

    runtime::LayerSchedule dense;
    dense.quant = req.quant;
    add("dense", dense);

    if (skip > 0.0) {
        runtime::LayerSchedule sw = dense;
        sw.skipPath = runtime::SkipPath::Software;
        sw.skipFraction = skip;
        add("skip-sw", sw);

        // A point the PlanKind enum never named: software row skip fed
        // by the fused U_o flag epilogue — drops the standalone scan
        // kernel and one element-wise pass per cell while keeping the
        // divergent software grid.
        runtime::LayerSchedule swf = sw;
        swf.flagFusion = runtime::FlagFusion::FusedEpilogue;
        add("skip-sw-fused", swf);

        runtime::LayerSchedule hw = sw;
        hw.skipPath = runtime::SkipPath::HwCrm;
        hw.flagFusion = runtime::FlagFusion::FusedEpilogue;
        add("skip-hw", hw);
    }

    // Persistent residency points. The dense variants pin the layer's U
    // block and launch once per sequence; the tissue variant keeps the
    // calibrated wave structure, so the search always contains the exact
    // per-layer point the Persistent preset lowers to (dominance of the
    // tuned plan over that preset follows).
    {
        runtime::LayerSchedule psh = dense;
        psh.residency = runtime::WeightResidency::Shared;
        add("persistent-shared", psh);

        runtime::LayerSchedule prf = dense;
        prf.residency = runtime::WeightResidency::Regfile;
        add("persistent-regfile", prf);
    }

    if (layer_index < inter.size()) {
        const auto &sizes = inter[layer_index].tissueSizes;
        if (inter[layer_index].maxTissue() > 1) {
            runtime::LayerSchedule tis = dense;
            tis.tissueSizes = sizes;
            add("tissues", tis);

            runtime::LayerSchedule tp = tis;
            tp.residency = runtime::WeightResidency::Regfile;
            add("tissues+persistent", tp);
        }
    }
    if (skip > 0.0 && layer_index < combined_inter.size()) {
        const auto &sizes = combined_inter[layer_index].tissueSizes;
        if (combined_inter[layer_index].maxTissue() > 1) {
            runtime::LayerSchedule both = dense;
            both.tissueSizes = sizes;
            both.skipPath = runtime::SkipPath::HwCrm;
            both.skipFraction = skip;
            both.flagFusion = runtime::FlagFusion::FusedEpilogue;
            add("tissues+skip", both);
        }
    }

    if (req.pruneFraction > 0.0 && req.pruneFraction < 1.0) {
        runtime::LayerSchedule csr;  // comparator stays fp32
        csr.prunedCsr = true;
        csr.pruneFraction = req.pruneFraction;
        add("pruned-csr", csr);
    }

    // --- Per-backend rules (DESIGN.md §17) ------------------------------
    // Explicit on-chip weight memory (E-PUR/SHARP class): when the
    // pinnable shared capacity covers this layer's whole U footprint,
    // streaming weights per wave buys nothing the resident kernel does
    // not already have — price the streamed options out of the menu.
    // The dense point survives as the comparison anchor, and resident
    // points carry the searched mass.
    if (cfg.explicitWeightMemory) {
        const double capacity = gpu::residencyCapacityBytes(
            cfg, runtime::WeightResidency::Shared);
        const double footprint = layerUFootprintBytes(
            req.shape.layers[layer_index], req.quant);
        if (capacity >= footprint) {
            options.erase(
                std::remove_if(options.begin(), options.end(),
                               [](const LayerOption &o) {
                                   return o.label != "dense" &&
                                          !o.schedule.persistent();
                               }),
                options.end());
        }
    }

    // Int8 dot-product units: narrowing to int4 costs no convert issue
    // slots, so an int8 request also searches the int4 twin of every
    // quantized candidate (Fig. 16's interesting row on dp4a-class
    // parts). Backends without dot units never enumerate these
    // dequant-heavy points — on Maxwell the cvt tax claws the win back.
    if (cfg.int8DotUnits && req.quant == quant::QuantMode::Int8) {
        const std::size_t base = options.size();
        for (std::size_t i = 0; i < base; ++i) {
            if (options[i].schedule.quant != req.quant)
                continue;  // the CSR comparator stays fp32
            runtime::LayerSchedule narrow = options[i].schedule;
            narrow.quant = quant::QuantMode::Int4;
            narrow.validate();
            options.push_back({options[i].label + "-int4",
                               std::move(narrow)});
        }
    }

    return options;
}

} // namespace sched
} // namespace mflstm
