/**
 * @file
 * Grid management unit (GMU). On the real part the GMU owns the pending
 * kernel pool and the hardware work queues; the paper extends it with
 * the CTA-reorganization module (Fig. 12). Here the GMU inspects each
 * launched kernel: kernels that carry the trivial-row list R (an extra
 * argument, detected at kernel initialisation per Section V-B) are routed
 * through the CRM before entering the hardware work queue.
 */

#ifndef MFLSTM_GPU_GMU_HH
#define MFLSTM_GPU_GMU_HH

#include "gpu/config.hh"
#include "gpu/crm.hh"
#include "gpu/kernel.hh"

namespace mflstm {
namespace gpu {

/** What the GMU decided for one kernel launch. */
struct DispatchInfo
{
    bool routedThroughCrm = false;
    unsigned activeThreads = 0;   ///< threads entering the work queue
    double crmCycles = 0.0;       ///< CRM pipeline latency charged
    double crmEnergyJ = 0.0;
};

/** Front end of the simulated GPU: kernel intake + CRM routing. */
class GridManagementUnit
{
  public:
    /**
     * @param crm_present  the GPU was built with the paper's hardware
     *                     extension; without it, row-skip kernels run as
     *                     plain (divergent) software kernels.
     */
    GridManagementUnit(const GpuConfig &cfg, bool crm_present)
        : cfg_(cfg), crm_(cfg), crmPresent_(crm_present)
    {}

    bool crmPresent() const { return crmPresent_; }

    /**
     * Attach a metrics registry to the GMU and its CRM: dispatch and
     * routing counters plus the CRM's compaction instruments.
     */
    void setMetrics(obs::MetricsRegistry *metrics)
    {
        metrics_ = metrics;
        crm_.setMetrics(metrics);
    }

    /**
     * Inspect one kernel launch. Row-skip kernels (extra argument R) are
     * handed to the CRM which compacts their grids; everything else
     * passes straight to the work queue.
     */
    DispatchInfo dispatch(const KernelDesc &desc);

    /** Total kernels seen / routed, for the overhead analysis. */
    std::size_t kernelsDispatched() const { return dispatched_; }
    std::size_t kernelsThroughCrm() const { return throughCrm_; }

  private:
    const GpuConfig &cfg_;
    CtaReorgModule crm_;
    bool crmPresent_;
    obs::MetricsRegistry *metrics_ = nullptr;
    std::size_t dispatched_ = 0;
    std::size_t throughCrm_ = 0;
};

} // namespace gpu
} // namespace mflstm

#endif // MFLSTM_GPU_GMU_HH
