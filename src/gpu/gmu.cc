#include "gpu/gmu.hh"

namespace mflstm {
namespace gpu {

DispatchInfo
GridManagementUnit::dispatch(const KernelDesc &desc)
{
    ++dispatched_;
    if (metrics_)
        metrics_->counter("gmu.kernels_dispatched").add(1.0);

    DispatchInfo info;
    info.activeThreads = desc.totalThreads();

    if (desc.hasRowSkipArg && crmPresent_) {
        ++throughCrm_;
        const CrmResult res = crm_.reorganizeSummary(
            desc.disabledThreads, desc.totalThreads());
        info.routedThroughCrm = true;
        info.activeThreads = res.activeThreads;
        info.crmCycles = res.cycles;
        info.crmEnergyJ = res.energyJ;
        if (metrics_)
            metrics_->counter("gmu.kernels_through_crm").add(1.0);
    }
    return info;
}

} // namespace gpu
} // namespace mflstm
