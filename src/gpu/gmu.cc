#include "gpu/gmu.hh"

namespace mflstm {
namespace gpu {

DispatchInfo
GridManagementUnit::dispatch(const KernelDesc &desc)
{
    ++dispatched_;

    DispatchInfo info;
    info.activeThreads = desc.totalThreads();

    if (desc.hasRowSkipArg && crmPresent_) {
        ++throughCrm_;
        const CrmResult res = crm_.reorganizeSummary(
            desc.disabledThreads, desc.totalThreads());
        info.routedThroughCrm = true;
        info.activeThreads = res.activeThreads;
        info.crmCycles = res.cycles;
        info.crmEnergyJ = res.energyJ;
    }
    return info;
}

} // namespace gpu
} // namespace mflstm
