#include "gpu/cache.hh"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace mflstm {
namespace gpu {

namespace {

bool
isPowerOfTwo(std::size_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

} // anonymous namespace

SetAssocCache::SetAssocCache(std::size_t capacity_bytes, unsigned assoc,
                             unsigned line_bytes)
    : assoc_(assoc), lineBytes_(line_bytes)
{
    if (assoc == 0 || line_bytes == 0)
        throw std::invalid_argument("SetAssocCache: zero assoc or line");
    if (capacity_bytes % (static_cast<std::size_t>(assoc) * line_bytes))
        throw std::invalid_argument(
            "SetAssocCache: capacity not divisible by way size");

    sets_ = capacity_bytes / (static_cast<std::size_t>(assoc) * line_bytes);
    if (!isPowerOfTwo(sets_) || !isPowerOfTwo(line_bytes))
        throw std::invalid_argument(
            "SetAssocCache: sets and line size must be powers of two");
    ways_.resize(sets_ * assoc_);
}

bool
SetAssocCache::access(std::uint64_t addr)
{
    ++clock_;
    const std::uint64_t line = addr / lineBytes_;
    const std::size_t set = line & (sets_ - 1);
    const std::uint64_t tag = line / sets_;

    Way *base = &ways_[set * assoc_];
    Way *victim = base;
    for (unsigned w = 0; w < assoc_; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == tag) {
            way.lastUse = clock_;
            ++hits_;
            return true;
        }
        if (!way.valid) {
            victim = &way;
        } else if (victim->valid && way.lastUse < victim->lastUse) {
            victim = &way;
        }
    }

    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = clock_;
    ++misses_;
    return false;
}

void
SetAssocCache::accessRange(std::uint64_t addr, std::size_t size)
{
    if (size == 0)
        return;
    const std::uint64_t first = addr / lineBytes_;
    const std::uint64_t last = (addr + size - 1) / lineBytes_;
    for (std::uint64_t line = first; line <= last; ++line)
        access(line * lineBytes_);
}

void
SetAssocCache::reset()
{
    std::fill(ways_.begin(), ways_.end(), Way{});
    clock_ = 0;
    hits_ = 0;
    misses_ = 0;
}

double
SetAssocCache::missRate() const
{
    const std::size_t total = accesses();
    return total ? static_cast<double>(misses_) /
                       static_cast<double>(total)
                 : 0.0;
}

double
streamingReuseDramBytes(double footprint_bytes, double sweeps,
                        double capacity_bytes, double residency_factor)
{
    assert(footprint_bytes >= 0.0 && sweeps >= 0.0);
    if (sweeps == 0.0 || footprint_bytes == 0.0)
        return 0.0;

    const double effective = capacity_bytes * residency_factor;
    if (footprint_bytes <= effective) {
        // Fits: compulsory misses only.
        return footprint_bytes;
    }

    // Thrashing: every sweep re-fetches all but the fraction that
    // happens to survive (at most effective/footprint of the set).
    const double resident = effective / footprint_bytes;
    return footprint_bytes +
           (sweeps - 1.0) * footprint_bytes * (1.0 - resident);
}

void
SetAssocCache::publishMetrics(obs::MetricsRegistry &metrics,
                              const std::string &prefix) const
{
    metrics.gauge(prefix + ".hits")
        .set(static_cast<double>(hits_));
    metrics.gauge(prefix + ".misses")
        .set(static_cast<double>(misses_));
    metrics.gauge(prefix + ".dram_bytes")
        .set(static_cast<double>(dramBytes()));
    metrics.gauge(prefix + ".hit_rate")
        .set(accesses() ? 1.0 - missRate() : 0.0);
}

} // namespace gpu
} // namespace mflstm
