#include "gpu/crm.hh"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace mflstm {
namespace gpu {

std::vector<bool>
CtaReorgModule::decodeDisabled(
    const std::vector<std::uint32_t> &trivial_rows,
    std::uint32_t threads_per_row, std::uint32_t total_threads) const
{
    if (threads_per_row == 0)
        throw std::invalid_argument("CRM: threads_per_row must be > 0");

    std::vector<bool> disabled(total_threads, false);
    for (std::uint32_t row : trivial_rows) {
        const std::uint64_t begin =
            static_cast<std::uint64_t>(row) * threads_per_row;
        for (std::uint64_t t = begin;
             t < begin + threads_per_row && t < total_threads; ++t) {
            disabled[static_cast<std::size_t>(t)] = true;
        }
    }
    return disabled;
}

CrmResult
CtaReorgModule::reorganize(const std::vector<std::uint32_t> &trivial_rows,
                           std::uint32_t threads_per_row,
                           std::uint32_t total_threads) const
{
    const std::vector<bool> disabled =
        decodeDisabled(trivial_rows, threads_per_row, total_threads);

    CrmResult res;
    res.htidOf.assign(total_threads, CrmResult::kDisabled);

    // Prefix sum over the disable mask: HTID = STID - disabledBefore.
    // The hardware evaluates this per 32-thread unit; the running-count
    // formulation below is bit-identical to chaining those units.
    std::uint32_t disabled_before = 0;
    for (std::uint32_t stid = 0; stid < total_threads; ++stid) {
        if (disabled[stid]) {
            ++disabled_before;
        } else {
            res.htidOf[stid] = stid - disabled_before;
        }
    }
    res.disabledThreads = disabled_before;
    res.activeThreads = total_threads - disabled_before;
    res.cycles = pipelineCycles(total_threads);
    res.energyJ = static_cast<double>(total_threads) *
                  cfg_.crmPjPerThread * 1e-12;
    recordPass(res, total_threads);
    return res;
}

CrmResult
CtaReorgModule::reorganizeSummary(std::uint32_t disabled_threads,
                                  std::uint32_t total_threads) const
{
    assert(disabled_threads <= total_threads);
    CrmResult res;
    res.disabledThreads = disabled_threads;
    res.activeThreads = total_threads - disabled_threads;
    res.cycles = pipelineCycles(total_threads);
    res.energyJ = static_cast<double>(total_threads) *
                  cfg_.crmPjPerThread * 1e-12;
    recordPass(res, total_threads);
    return res;
}

void
CtaReorgModule::recordPass(const CrmResult &res,
                           std::uint32_t total) const
{
    if (!metrics_)
        return;
    metrics_->counter("crm.passes").add(1.0);
    metrics_->counter("crm.cycles").add(res.cycles);
    obs::Counter &in = metrics_->counter("crm.threads_in");
    obs::Counter &dis = metrics_->counter("crm.threads_disabled");
    in.add(static_cast<double>(total));
    dis.add(static_cast<double>(res.disabledThreads));
    metrics_->gauge("crm.compaction_ratio")
        .set(in.value() > 0.0 ? (in.value() - dis.value()) / in.value()
                              : 1.0);
    metrics_
        ->histogram("crm.pipeline_cycles",
                    obs::Histogram::exponentialEdges(1.0, 1e6, 13))
        .observe(res.cycles);
}

double
CtaReorgModule::pipelineCycles(std::uint32_t total_threads) const
{
    const double units =
        std::ceil(static_cast<double>(total_threads) /
                  static_cast<double>(cfg_.crmThreadsPerCycle));
    return static_cast<double>(cfg_.crmPipelineCycles) + units;
}

} // namespace gpu
} // namespace mflstm
