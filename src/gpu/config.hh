/**
 * @file
 * Mobile-GPU hardware description consumed by the timing/energy simulator.
 * The default preset models the Jetson TX1 of Table I (Maxwell, 2 SMs x
 * 128 cores at 998 MHz, 25.6 GB/s LPDDR4, 256 KB L2). Timing constants
 * are calibrated for *shape* fidelity to the paper's measurements (see
 * DESIGN.md section 5), not cycle-exact Maxwell behaviour.
 */

#ifndef MFLSTM_GPU_CONFIG_HH
#define MFLSTM_GPU_CONFIG_HH

#include <cstddef>
#include <string>

namespace mflstm {
namespace gpu {

/** Static hardware parameters of one simulated mobile GPU + SoC. */
struct GpuConfig
{
    std::string name = "generic-mobile-gpu";

    // --- Compute ------------------------------------------------------
    unsigned numSms = 2;
    unsigned coresPerSm = 128;
    double coreClockGhz = 0.998;
    unsigned warpSize = 32;
    unsigned maxThreadsPerSm = 2048;
    unsigned maxCtasPerSm = 32;

    // --- Off-chip memory ----------------------------------------------
    double dramBandwidthGBs = 25.6;
    double dramLatencyNs = 120.0;
    std::size_t l2Bytes = 256 * 1024;
    unsigned l2Assoc = 16;
    unsigned lineBytes = 32;
    /// L2 service bandwidth, bytes per core cycle (total).
    double l2BytesPerCycle = 128.0;

    // --- On-chip (shared) memory ---------------------------------------
    std::size_t sharedMemPerSmBytes = 64 * 1024;
    /// Shared-memory bandwidth, bytes per core cycle *per SM*
    /// (32 banks x 4 B on Maxwell).
    double sharedBytesPerCyclePerSm = 128.0;

    // --- Persistent weight residency (Appleyard-style kernels) ----------
    /// Register file per SM: 64K 32-bit registers on Maxwell-class SMs.
    std::size_t regFileBytesPerSm = 256 * 1024;
    /**
     * Fraction of each tier a persistent kernel may pin for weights.
     * Shared memory still has to stage the H_t operand tiles; the
     * register file still carries the live thread state of the resident
     * CTAs, so neither tier is pinnable wall to wall.
     */
    double sharedResidencyFraction = 0.75;
    double regfileResidencyFraction = 0.5;
    /**
     * Execution-cycle inflation at a fully pinned tier: pinned bytes
     * displace warps (regfile) or operand staging room (shared), so
     * fewer concurrent warps are left to hide latency. Scales linearly
     * with pinned/raw tier capacity in the SM model.
     */
    double residencyOccupancyPenalty = 0.30;

    // --- Kernel machinery ----------------------------------------------
    double kernelLaunchUs = 2.0;      ///< CPU-side launch + GMU dispatch
    /**
     * Fraction of the launch overhead that remains exposed when kernels
     * are enqueued back-to-back on one stream: the CPU-side work of
     * later launches overlaps the GPU executing earlier ones.
     */
    double streamedLaunchFraction = 0.3;

    /** Exposed launch overhead for a non-leading kernel in a stream. */
    double streamedLaunchUs() const
    {
        return kernelLaunchUs * streamedLaunchFraction;
    }
    double barrierCostCycles = 40.0;  ///< one __syncthreads per CTA wave
    /**
     * Execution-time multiplier paid when shared-memory demand exceeds
     * capacity and the kernel is re-configured at compile time with more,
     * thinner threads (the Fig. 9 performance-droop mechanism).
     */
    double reconfigPenalty = 1.35;

    // --- Energy (system-level, Section VI-A measures the whole board) --
    double socStaticW = 2.2;    ///< CPU + board rails while inferencing
    double gpuIdleW = 0.6;      ///< GPU leakage + clocks
    /**
     * Extra GPU draw per unit of *FP-issue* activity. The simulator's
     * busy fraction counts only FP-retiring cycles, roughly 4x below
     * total pipeline activity (ld/st, address math, control), so this
     * coefficient is correspondingly ~4x the physical ~10 W full-tilt
     * core power of a TX1-class part.
     */
    double gpuIssueActiveW = 40.0;
    double dramPjPerByte = 70.0;
    double l2PjPerByte = 6.0;
    double sharedPjPerByte = 4.0;
    double fmaPjPerFlop = 1.6;
    /**
     * In-register dequantization cost per quantized weight element
     * (int8/int4 -> fp32 convert feeding the FMA). Well under one FMA:
     * the convert is a single-cycle ALU op with no operand fetch.
     */
    double dequantPjPerWeight = 0.3;
    /**
     * Issue slots per quantized weight spent on the in-register
     * convert. Maxwell-class parts (TX1) have no DP4A: every int8/int4
     * weight costs one single-lane cvt op sharing the FMA issue pipes,
     * so narrow weights trade DRAM cycles for ALU cycles and the win
     * shrinks once a kernel turns compute-bound.
     */
    double dequantOpsPerWeight = 1.0;

    // --- Backend capability flags (hw registry, DESIGN.md §17) ---------
    /**
     * True when the part has int8 dot-product units (DP4A-class): the
     * quantized inner product consumes packed narrow weights directly,
     * so no per-weight convert shares the FMA issue pipes
     * (dequantOpsPerWeight ~0) and the per-row scale factors fold into
     * the accumulator epilogue instead of streaming beside the matrix
     * (the lowering attributes no separate scale bytes).
     */
    bool int8DotUnits = false;
    /**
     * True for accelerator-style parts (E-PUR/SHARP) whose shared tier
     * models a large explicit on-chip weight SRAM sized for whole RNN
     * layers: when the pinnable capacity covers a layer's recurrent
     * footprint, the tuner prices streamed-weight plans out of the menu
     * (the dense point is kept as the comparison anchor).
     */
    bool explicitWeightMemory = false;

    // --- CTA-reorganization module (Section V-B hardware design) -------
    /// Threads the CRM prefix-sum datapath retires per cycle (one warp).
    unsigned crmThreadsPerCycle = 32;
    /// Pipeline fill latency of the two CRM stages (Fig. 12).
    unsigned crmPipelineCycles = 6;
    /// Dynamic energy per thread-slot the CRM filters (gate-level est.).
    double crmPjPerThread = 0.8;
    /// CRM static power adder (simple logic + TRB SRAM), watts.
    double crmStaticW = 0.012;

    /** Peak FP32 throughput, FLOP per core cycle (FMA = 2 FLOP/core). */
    double flopsPerCycle() const
    {
        return 2.0 * static_cast<double>(numSms) * coresPerSm;
    }

    /** DRAM bandwidth expressed in bytes per core cycle. */
    double dramBytesPerCycle() const
    {
        return dramBandwidthGBs / coreClockGhz;
    }

    /** Aggregate shared-memory bandwidth, bytes per core cycle. */
    double sharedBytesPerCycle() const
    {
        return sharedBytesPerCyclePerSm * static_cast<double>(numSms);
    }

    /** Core cycles per microsecond. */
    double cyclesPerUs() const { return coreClockGhz * 1e3; }

    /** The Jetson TX1 development board of Table I. */
    static GpuConfig tegraX1();

    /** A roughly 2x larger mobile part for scalability studies. */
    static GpuConfig tegraX2Like();
};

} // namespace gpu
} // namespace mflstm

#endif // MFLSTM_GPU_CONFIG_HH
