#include "gpu/sm.hh"

#include <algorithm>
#include <cmath>

namespace mflstm {
namespace gpu {

const char *
toString(KernelBound b)
{
    switch (b) {
      case KernelBound::Compute:
        return "compute";
      case KernelBound::DequantIssue:
        return "dequant-issue";
      case KernelBound::Bandwidth:
        return "bandwidth";
      case KernelBound::Occupancy:
        return "occupancy";
      case KernelBound::L2:
        return "l2";
    }
    return "unknown";
}

StallBreakdown &
StallBreakdown::operator+=(const StallBreakdown &rhs)
{
    offChipMemory += rhs.offChipMemory;
    onChipBandwidth += rhs.onChipBandwidth;
    synchronization += rhs.synchronization;
    executionDependency += rhs.executionDependency;
    other += rhs.other;
    return *this;
}

double
residencyCapacityBytes(const GpuConfig &cfg, WeightResidency r)
{
    const double sms = static_cast<double>(cfg.numSms);
    switch (r) {
      case WeightResidency::None:
        return 0.0;
      case WeightResidency::Shared:
        return static_cast<double>(cfg.sharedMemPerSmBytes) * sms *
               cfg.sharedResidencyFraction;
      case WeightResidency::Regfile:
        return static_cast<double>(cfg.regFileBytesPerSm) * sms *
               cfg.regfileResidencyFraction;
    }
    return 0.0;
}

double
residencyOccupancyFactor(const GpuConfig &cfg, WeightResidency r,
                         double pinned_bytes)
{
    if (r == WeightResidency::None || pinned_bytes <= 0.0)
        return 1.0;
    double raw = 0.0;
    const double sms = static_cast<double>(cfg.numSms);
    if (r == WeightResidency::Shared)
        raw = static_cast<double>(cfg.sharedMemPerSmBytes) * sms;
    else
        raw = static_cast<double>(cfg.regFileBytesPerSm) * sms;
    if (raw <= 0.0)
        return 1.0;
    const double pinned_share = std::min(1.0, pinned_bytes / raw);
    return 1.0 + cfg.residencyOccupancyPenalty * pinned_share;
}

KernelTiming
timeKernel(const GpuConfig &cfg, const KernelDesc &desc, bool crm_applied)
{
    KernelTiming t;

    // --- Resource demands, in core cycles ------------------------------
    const double divergence = crm_applied ? 1.0 : desc.divergenceFactor;
    t.flops = desc.flops;
    // Quantized weights pay an in-register convert on the FMA issue
    // pipes (no DP4A on TX1-class parts): one cvt lane-cycle per weight,
    // i.e. the same issue bandwidth an FMA (2 FLOP) occupies.
    const double dequant_cycles =
        desc.quantWeightElems * cfg.dequantOpsPerWeight * 2.0 /
        cfg.flopsPerCycle();
    // Pinned weights displace warps (regfile) or staging room (shared):
    // the surviving occupancy hides less latency, inflating the issue-
    // side cycles of the persistent kernel.
    const double occ = residencyOccupancyFactor(
        cfg, desc.residency, desc.residencyPinnedBytes);
    t.computeCycles = (desc.flops / cfg.flopsPerCycle() + dequant_cycles) *
                      divergence * occ;
    t.dequantCycles = dequant_cycles * divergence * occ;
    t.residencyOccCycles = t.computeCycles * (1.0 - 1.0 / occ);

    t.dramBytes =
        (desc.dramReadBytes + desc.dramWriteBytes) * desc.coalescingFactor;
    const double dram_cycles = t.dramBytes / cfg.dramBytesPerCycle();

    t.l2Bytes = desc.l2AccessBytes;
    const double l2_cycles = t.l2Bytes / cfg.l2BytesPerCycle;

    t.sharedBytes = desc.sharedBytes;
    // Shared-tier residency also contends for shared-memory bandwidth:
    // the resident weight rows are re-read through the same banks the
    // operand tiles use.
    const double shared_occ =
        desc.residency == WeightResidency::Shared ? occ : 1.0;
    const double shared_cycles =
        t.sharedBytes / cfg.sharedBytesPerCycle() * shared_occ;

    // --- Occupancy: how many CTA waves the grid needs -------------------
    const unsigned threads_per_cta = std::max(1u, desc.threadsPerCta);
    const unsigned ctas_per_sm =
        std::max(1u, std::min(cfg.maxCtasPerSm,
                              cfg.maxThreadsPerSm / threads_per_cta));
    const double concurrent_ctas =
        static_cast<double>(ctas_per_sm) * cfg.numSms;
    const double waves =
        std::max(1.0, std::ceil(desc.ctas / concurrent_ctas));
    t.smsUsed = static_cast<unsigned>(std::min(
        static_cast<double>(cfg.numSms),
        std::ceil(static_cast<double>(desc.ctas) / ctas_per_sm)));
    t.smsUsed = std::max(1u, t.smsUsed);

    const double sync_cycles =
        static_cast<double>(desc.syncsPerCta) * cfg.barrierCostCycles *
        waves;
    const double latency_cycles =
        t.dramBytes > 0.0 ? cfg.dramLatencyNs * cfg.coreClockGhz : 0.0;

    // --- Bottleneck resolution ------------------------------------------
    double exec_cycles = std::max({t.computeCycles, dram_cycles,
                                   l2_cycles, shared_cycles});
    t.reconfigured =
        shared_cycles > std::max({t.computeCycles, dram_cycles,
                                  l2_cycles});
    if (t.reconfigured) {
        // Shared memory is the binding constraint: the kernel is
        // re-configured with more, thinner threads so per-thread on-chip
        // demand stays legal; the extra threads and lost locality cost
        // a multiplicative slowdown (Section IV-C).
        exec_cycles = shared_cycles * cfg.reconfigPenalty;
    }

    // --- Bottleneck classification --------------------------------------
    // Mirrors the max() above: the resource that set exec_cycles.
    if (t.reconfigured) {
        t.boundBy = KernelBound::Occupancy;
    } else if (dram_cycles >= std::max({t.computeCycles, l2_cycles,
                                        shared_cycles})) {
        t.boundBy = KernelBound::Bandwidth;
    } else if (t.computeCycles >= l2_cycles) {
        t.boundBy = t.dequantCycles > 0.5 * t.computeCycles
                        ? KernelBound::DequantIssue
                        : KernelBound::Compute;
    } else {
        t.boundBy = KernelBound::L2;
    }

    t.crmCycles = 0.0;  // charged by the simulator's GMU model
    t.cycles = exec_cycles + sync_cycles + latency_cycles;
    t.timeUs = t.cycles / cfg.cyclesPerUs() + cfg.kernelLaunchUs;

    t.activeThreads = crm_applied
                          ? desc.totalThreads() - desc.disabledThreads
                          : desc.totalThreads();

    // --- Utilisation ------------------------------------------------------
    if (t.cycles > 0.0) {
        t.dramUtilization = std::min(1.0, dram_cycles / t.cycles);
        t.sharedUtilization = std::min(1.0, shared_cycles / t.cycles);
        t.l2Utilization = std::min(1.0, l2_cycles / t.cycles);
    }

    // --- Stall attribution ------------------------------------------------
    const double stall_total = std::max(0.0, t.cycles - t.computeCycles);
    const double p_offchip =
        std::max(0.0, dram_cycles - t.computeCycles) + latency_cycles;
    const double p_onchip =
        std::max(0.0, shared_cycles - t.computeCycles) +
        0.5 * std::max(0.0, l2_cycles - t.computeCycles);
    const double p_sync = sync_cycles;
    const double p_dep = 0.10 * t.computeCycles;
    const double p_other = 0.05 * exec_cycles + 1.0;

    const double p_sum = p_offchip + p_onchip + p_sync + p_dep + p_other;
    if (p_sum > 0.0 && stall_total > 0.0) {
        const double scale = stall_total / p_sum;
        t.stalls.offChipMemory = p_offchip * scale;
        t.stalls.onChipBandwidth = p_onchip * scale;
        t.stalls.synchronization = p_sync * scale;
        t.stalls.executionDependency = p_dep * scale;
        t.stalls.other = p_other * scale;
    }

    return t;
}

} // namespace gpu
} // namespace mflstm
