#include "gpu/config.hh"

namespace mflstm {
namespace gpu {

GpuConfig
GpuConfig::tegraX1()
{
    GpuConfig cfg;
    cfg.name = "Tegra X1 (Maxwell, 256 cores @ 998 MHz)";
    cfg.numSms = 2;
    cfg.coresPerSm = 128;
    cfg.coreClockGhz = 0.998;
    cfg.dramBandwidthGBs = 25.6;
    cfg.l2Bytes = 256 * 1024;
    cfg.sharedMemPerSmBytes = 64 * 1024;
    return cfg;
}

GpuConfig
GpuConfig::tegraX2Like()
{
    GpuConfig cfg;
    cfg.name = "TX2-like (Pascal-class, 256 cores @ 1.3 GHz)";
    cfg.numSms = 2;
    cfg.coresPerSm = 128;
    cfg.coreClockGhz = 1.3;
    cfg.dramBandwidthGBs = 58.3;
    cfg.l2Bytes = 512 * 1024;
    cfg.sharedMemPerSmBytes = 64 * 1024;
    return cfg;
}

} // namespace gpu
} // namespace mflstm
