#include "gpu/kernel.hh"

namespace mflstm {
namespace gpu {

const char *
toString(KernelClass k)
{
    switch (k) {
      case KernelClass::Sgemm:
        return "Sgemm";
      case KernelClass::Sgemv:
        return "Sgemv";
      case KernelClass::ElementWise:
        return "lstm_ew";
      case KernelClass::Drs:
        return "DRS";
      case KernelClass::Relevance:
        return "Relevance";
      case KernelClass::Persistent:
        return "Persistent";
      case KernelClass::Other:
        return "Other";
    }
    return "Unknown";
}

const char *
toString(WeightStream w)
{
    switch (w) {
      case WeightStream::None:
        return "none";
      case WeightStream::W:
        return "W";
      case WeightStream::U:
        return "U";
    }
    return "unknown";
}

const char *
toString(WeightResidency r)
{
    switch (r) {
      case WeightResidency::None:
        return "none";
      case WeightResidency::Shared:
        return "shared";
      case WeightResidency::Regfile:
        return "regfile";
    }
    return "unknown";
}

} // namespace gpu
} // namespace mflstm
