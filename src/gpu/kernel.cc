#include "gpu/kernel.hh"

namespace mflstm {
namespace gpu {

const char *
toString(KernelClass k)
{
    switch (k) {
      case KernelClass::Sgemm:
        return "Sgemm";
      case KernelClass::Sgemv:
        return "Sgemv";
      case KernelClass::ElementWise:
        return "lstm_ew";
      case KernelClass::Drs:
        return "DRS";
      case KernelClass::Relevance:
        return "Relevance";
      case KernelClass::Other:
        return "Other";
    }
    return "Unknown";
}

} // namespace gpu
} // namespace mflstm
