/**
 * @file
 * Kernel descriptors: the interface between the LSTM runtime (which
 * lowers Algorithm 1 / Algorithm 3 / the tissue flow into kernel
 * sequences) and the GPU timing simulator. A KernelDesc plays the role a
 * compiled cuDNN/cuBLAS kernel plays on the real board: grid geometry
 * plus aggregate work and traffic.
 */

#ifndef MFLSTM_GPU_KERNEL_HH
#define MFLSTM_GPU_KERNEL_HH

#include <cstdint>
#include <string>
#include <vector>

namespace mflstm {
namespace gpu {

/** Kernel families the LSTM runtime emits (Sections II-C and V-B). */
enum class KernelClass {
    Sgemm,        ///< matrix-matrix multiply
    Sgemv,        ///< matrix-vector multiply
    ElementWise,  ///< lstm_ew: gate nonlinearities + state update
    Drs,          ///< the DRS threshold/scan kernel of Algorithm 3 line 6
    Relevance,    ///< inter-cell breakpoint search (Algorithm 2)
    Persistent,   ///< persistent layer kernel, weights resident on-chip
    Other,
};

const char *toString(KernelClass k);

/** Which weight matrix a kernel streams (attribution axis). */
enum class WeightStream : std::uint8_t {
    None,  ///< kernel streams no weight matrix
    W,     ///< input projection W_{f,i,c,o}
    U,     ///< recurrent U_{f,i,c,o}
};

const char *toString(WeightStream w);

/**
 * On-chip tier the recurrent weights of a persistent kernel are pinned
 * in across the whole sequence (Appleyard et al. persistent RNNs). The
 * tier decides the pinnable capacity and the occupancy price the SM
 * model charges (GpuConfig residency knobs): shared memory is plentiful
 * but slower to re-read; the register file is the fast tier the
 * persistent-RNN literature targets.
 */
enum class WeightResidency : std::uint32_t {
    None = 0,     ///< weights streamed from DRAM every timestep
    Shared = 1,   ///< pinned in shared memory across the sequence
    Regfile = 2,  ///< pinned in the register file across the sequence
};

const char *toString(WeightResidency r);

/** One GPU kernel launch, in aggregate-work form. */
struct KernelDesc
{
    std::string name;
    KernelClass klass = KernelClass::Other;

    // --- Grid geometry --------------------------------------------------
    unsigned ctas = 1;
    unsigned threadsPerCta = 128;

    // --- Work -----------------------------------------------------------
    double flops = 0.0;           ///< useful FP operations
    double dramReadBytes = 0.0;   ///< off-chip reads after caching
    double dramWriteBytes = 0.0;
    double l2AccessBytes = 0.0;   ///< total L2-level traffic (hits+misses)
    double sharedBytes = 0.0;     ///< shared-memory traffic
    /**
     * Weight-matrix share of dramReadBytes (the U/W streaming traffic
     * after the cache model). Batched lowering charges it once per
     * kernel regardless of the batch dimension, so the serving layer
     * can report weight bytes amortised per sequence.
     */
    double dramWeightBytes = 0.0;
    /**
     * Weight elements this kernel dequantizes in-register (0 for fp32
     * weights). The energy model charges an int->fp convert per
     * element (GpuConfig::dequantPjPerWeight) — the compute-side price
     * of the DRAM bytes quantization saves.
     */
    double quantWeightElems = 0.0;

    // --- Traffic attribution (DESIGN.md §13) ------------------------------
    // Named sub-streams of dram{Read,Write}Bytes. The ledger charges the
    // remainder to activations, so each must stay a subset of the total:
    // the conservation tests reject any lowering change that breaks this.
    /// which matrix dramWeightBytes belongs to
    WeightStream weightStream = WeightStream::None;
    /// per-row fp32 scale stream of a quantized matrix: the scale-
    /// stream share *inside* dramWeightBytes (which keeps its existing
    /// codes-plus-scales meaning for the serve amortisation report)
    double dramScaleBytes = 0.0;
    /// CRM relevance-flag traffic (fused flag writes / flag reads)
    double dramCrmMetaBytes = 0.0;
    /// L2-capacity spill traffic (element-wise state round trips)
    double dramSpillBytes = 0.0;
    /// residency-overflow re-streaming: the share of dramWeightBytes a
    /// persistent kernel re-fetches beyond the compulsory first pass
    /// because the quantized matrix overflowed the pinned budget
    double dramResidencyReloadBytes = 0.0;

    // --- Persistent residency (Appleyard-style persistent kernels) -------
    /// on-chip tier the weights stay resident in across the sequence
    WeightResidency residency = WeightResidency::None;
    /// bytes pinned in that tier (<= the residency capacity); the SM
    /// model converts this into an occupancy-loss factor
    double residencyPinnedBytes = 0.0;

    // --- Behaviour --------------------------------------------------------
    unsigned syncsPerCta = 0;
    /**
     * Issue-slot inflation from branch divergence: 1.0 = converged. The
     * pure-software DRS of Section VI-B2 pays ~2x here because trivial-
     * and non-trivial-row threads take different paths inside a warp.
     */
    double divergenceFactor = 1.0;
    /**
     * DRAM-transaction inflation from uncoalesced access: 1.0 = fully
     * coalesced. Element-level zero-pruning pays heavily here.
     */
    double coalescingFactor = 1.0;

    // --- Provenance (observability; -1 = not applicable) ------------------
    /// network layer this kernel belongs to
    int layer = -1;
    /// timestep / first cell covered within the layer
    int timestep = -1;
    /// tissue index within the layer (inter-cell flow only)
    int tissue = -1;

    // --- Row-skip plumbing (Section V-B hardware design) -----------------
    /// Kernel carries the trivial-row list R as an extra argument; the
    /// GMU routes such kernels through the CTA-reorganization module.
    bool hasRowSkipArg = false;
    /// Thread slots that would be disabled by the skip list.
    unsigned disabledThreads = 0;

    unsigned totalThreads() const { return ctas * threadsPerCta; }
};

/** A dependency-ordered kernel sequence for one inference. */
using KernelTrace = std::vector<KernelDesc>;

} // namespace gpu
} // namespace mflstm

#endif // MFLSTM_GPU_KERNEL_HH
