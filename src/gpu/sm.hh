/**
 * @file
 * SM-level kernel timing with stall attribution. The model is a
 * bottleneck (roofline-style) issue model: a kernel's duration is set by
 * its most contended resource — FP issue, off-chip bandwidth, L2
 * bandwidth, or shared-memory bandwidth — plus synchronization and fixed
 * latencies. Cycles the issue stage could not retire useful work are
 * attributed to stall causes, reproducing the Fig. 4 breakdown.
 */

#ifndef MFLSTM_GPU_SM_HH
#define MFLSTM_GPU_SM_HH

#include "gpu/config.hh"
#include "gpu/kernel.hh"

namespace mflstm {
namespace gpu {

/** Pipeline stall cycles by cause (the Fig. 4 categories). */
struct StallBreakdown
{
    double offChipMemory = 0.0;
    double onChipBandwidth = 0.0;
    double synchronization = 0.0;
    double executionDependency = 0.0;
    double other = 0.0;

    double total() const
    {
        return offChipMemory + onChipBandwidth + synchronization +
               executionDependency + other;
    }

    StallBreakdown &operator+=(const StallBreakdown &rhs);
};

/**
 * The resource that set a kernel's duration. DequantIssue is split out
 * of Compute because it is actionable in a different way: it prices the
 * in-register int->fp converts quantized weights pay, i.e. the
 * compute-side cost of the DRAM bytes quantization saved.
 */
enum class KernelBound : std::uint8_t {
    Compute,       ///< FP issue bound, useful FLOPs dominant
    DequantIssue,  ///< FP issue bound, dequant converts dominant
    Bandwidth,     ///< off-chip DRAM bandwidth bound
    Occupancy,     ///< shared-memory bound -> kernel reconfiguration
    L2,            ///< on-chip L2 bandwidth bound
};

const char *toString(KernelBound b);

/** Timing result for one kernel launch. */
struct KernelTiming
{
    double cycles = 0.0;        ///< on-GPU execution cycles
    double timeUs = 0.0;        ///< wall time incl. launch overhead
    double computeCycles = 0.0; ///< cycles retiring useful FP work
    double dequantCycles = 0.0; ///< dequant-convert share of computeCycles
    KernelBound boundBy = KernelBound::Compute;

    StallBreakdown stalls;

    double flops = 0.0;
    double dramBytes = 0.0;     ///< after coalescing inflation
    double l2Bytes = 0.0;
    double sharedBytes = 0.0;

    double dramUtilization = 0.0;    ///< of off-chip bandwidth, [0,1]
    double sharedUtilization = 0.0;  ///< of on-chip bandwidth; may be
                                     ///< reported >1 as *demand* before
                                     ///< the reconfiguration clamp
    double l2Utilization = 0.0;

    double crmCycles = 0.0;     ///< CRM pipeline latency charged
    double crmEnergyJ = 0.0;
    /// extra execution cycles paid for pinned-weight occupancy loss
    double residencyOccCycles = 0.0;
    unsigned activeThreads = 0;
    unsigned smsUsed = 1;       ///< SMs the grid occupies (for timelines)
    bool reconfigured = false;  ///< shared-BW-driven kernel reconfig hit
};

/**
 * Pinnable weight capacity of one residency tier across the whole GPU
 * (per-SM tier size x SM count x the tier's pinnable fraction). The
 * lowering sizes the resident weight block against this; the overflow
 * streams from DRAM as spill (KernelDesc::dramResidencyReloadBytes).
 */
double residencyCapacityBytes(const GpuConfig &cfg, WeightResidency r);

/**
 * Execution-cycle inflation for pinning @p pinned_bytes of weights in
 * tier @p r: 1.0 at zero pinning, 1 + residencyOccupancyPenalty at a
 * fully pinned tier (pinned registers/shared rows displace the warps
 * that would otherwise hide latency).
 */
double residencyOccupancyFactor(const GpuConfig &cfg, WeightResidency r,
                                double pinned_bytes);

/**
 * Time one kernel on the configured GPU.
 *
 * @param crm_applied  the GMU ran this kernel's grid through the CRM:
 *                     divergence from the row-skip branch disappears and
 *                     the thread count shrinks to the active set.
 */
KernelTiming timeKernel(const GpuConfig &cfg, const KernelDesc &desc,
                        bool crm_applied = false);

} // namespace gpu
} // namespace mflstm

#endif // MFLSTM_GPU_SM_HH
