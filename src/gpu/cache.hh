/**
 * @file
 * Two cache models:
 *
 *  1. SetAssocCache — an exact LRU set-associative cache simulated on an
 *     address stream. Used at unit scale to validate the analytic model
 *     and by the tests that demonstrate the Section III observation (the
 *     weight matrix thrashes the L2, so actually-loaded data is many
 *     times the matrix size).
 *
 *  2. streamingReuseDramBytes — the analytic model the kernel lowering
 *     uses at full Table II scale, where per-access simulation of
 *     hundreds of megabytes of weight traffic would be pointlessly slow.
 *     It models the canonical LSTM access pattern: a working set of F
 *     bytes swept sequentially S times through a cache of C bytes.
 */

#ifndef MFLSTM_GPU_CACHE_HH
#define MFLSTM_GPU_CACHE_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hh"

namespace mflstm {
namespace gpu {

/** Exact LRU set-associative cache over 64-bit byte addresses. */
class SetAssocCache
{
  public:
    SetAssocCache(std::size_t capacity_bytes, unsigned assoc,
                  unsigned line_bytes);

    /** Access one byte address; @return true on hit. */
    bool access(std::uint64_t addr);

    /** Touch a [addr, addr+size) range line by line. */
    void accessRange(std::uint64_t addr, std::size_t size);

    void reset();

    std::size_t hits() const { return hits_; }
    std::size_t misses() const { return misses_; }
    std::size_t accesses() const { return hits_ + misses_; }
    double missRate() const;

    /** Bytes fetched from DRAM so far (misses x line size). */
    std::size_t dramBytes() const { return misses_ * lineBytes_; }

    std::size_t capacity() const { return sets_ * assoc_ * lineBytes_; }
    unsigned lineBytes() const { return lineBytes_; }

    /**
     * Publish the current hit/miss statistics into @p metrics as
     * `<prefix>.hits`, `<prefix>.misses`, `<prefix>.dram_bytes` and
     * `<prefix>.hit_rate` gauges (snapshot semantics: repeated calls
     * overwrite, they do not accumulate).
     */
    void publishMetrics(obs::MetricsRegistry &metrics,
                        const std::string &prefix = "cache") const;

  private:
    struct Way
    {
        std::uint64_t tag = ~0ull;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    std::size_t sets_;
    unsigned assoc_;
    unsigned lineBytes_;
    std::vector<Way> ways_;  // sets_ x assoc_, row-major
    std::uint64_t clock_ = 0;
    std::size_t hits_ = 0;
    std::size_t misses_ = 0;
};

/**
 * Analytic DRAM traffic for S sequential sweeps over an F-byte working
 * set through a C-byte LRU cache:
 *
 *  - F <= r*C: the set stays resident after the first sweep; later
 *    sweeps hit. Traffic = F (compulsory only).
 *  - F > r*C: cyclic sweeps under LRU evict every line before its reuse
 *    (the classic thrashing pattern); every sweep misses almost
 *    everything. Traffic = S * F, minus the small resident fraction.
 *
 * r < 1 is an effective-residency factor accounting for conflict misses
 * and co-resident data (activations, outputs).
 *
 * @return bytes fetched from DRAM over all sweeps.
 */
double streamingReuseDramBytes(double footprint_bytes, double sweeps,
                               double capacity_bytes,
                               double residency_factor = 0.8);

} // namespace gpu
} // namespace mflstm

#endif // MFLSTM_GPU_CACHE_HH
