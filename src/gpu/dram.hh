/**
 * @file
 * Banked LPDDR4 model with row-buffer state. The rest of the simulator
 * treats DRAM as a flat bandwidth pipe (which is what a fully-streamed
 * weight matrix sees); this model resolves requests to channels, banks
 * and rows, charging row activations on misses — it quantifies *why*
 * the flat model is valid for the LSTM access patterns (sequential
 * weight streaming is almost entirely row hits) and what irregular
 * access (the zero-pruning comparator's gathers) actually costs.
 */

#ifndef MFLSTM_GPU_DRAM_HH
#define MFLSTM_GPU_DRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hh"

namespace mflstm {
namespace gpu {

/** Geometry + timing of the modelled DRAM. */
struct DramConfig
{
    unsigned channels = 2;
    unsigned banksPerChannel = 8;
    unsigned rowBytes = 2048;        ///< row-buffer (page) size
    unsigned burstBytes = 32;        ///< bytes per column burst
    double burstCycles = 1.25;       ///< data-bus cycles per burst
    double rowHitCycles = 0.0;       ///< extra cycles on a row hit
    double rowMissCycles = 12.0;     ///< precharge + activate penalty

    /** Bytes per cycle when every access hits the open row. */
    double
    peakBytesPerCycle() const
    {
        return static_cast<double>(channels) * burstBytes / burstCycles;
    }
};

/** Access statistics of one simulated stream. */
struct DramStats
{
    std::uint64_t accesses = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;
    double cycles = 0.0;   ///< bus + activation cycles, max over channels
    double bytes = 0.0;

    double hitRate() const
    {
        return accesses
                   ? static_cast<double>(rowHits) /
                         static_cast<double>(accesses)
                   : 0.0;
    }

    /** Achieved bandwidth relative to the row-hit peak. */
    double efficiencyVsPeak(const DramConfig &cfg) const
    {
        if (cycles <= 0.0)
            return 0.0;
        return (bytes / cycles) / cfg.peakBytesPerCycle();
    }
};

/**
 * The banked DRAM. Addresses interleave across channels at burst
 * granularity and across banks at row granularity (the standard
 * bandwidth-spreading mapping).
 */
class BankedDram
{
  public:
    explicit BankedDram(const DramConfig &cfg = {});

    const DramConfig &config() const { return cfg_; }

    /** Access one burst-aligned address. */
    void access(std::uint64_t addr);

    /** Stream a [addr, addr+size) range burst by burst. */
    void accessRange(std::uint64_t addr, std::uint64_t size);

    /**
     * A strided gather: @p count bursts, @p stride bytes apart — the
     * access shape sparse (CSR) weight formats produce.
     */
    void accessStrided(std::uint64_t addr, std::uint64_t stride,
                       std::uint64_t count);

    const DramStats &stats() const { return stats_; }
    void resetStats();

    /**
     * Publish the stream statistics into @p metrics as
     * `<prefix>.accesses` / `<prefix>.row_hits` / `<prefix>.row_misses`
     * / `<prefix>.bytes` / `<prefix>.row_hit_rate` /
     * `<prefix>.efficiency_vs_peak` gauges (snapshot semantics:
     * repeated calls overwrite, they do not accumulate).
     */
    void publishMetrics(obs::MetricsRegistry &metrics,
                        const std::string &prefix = "dram") const;

  private:
    struct Bank
    {
        std::uint64_t openRow = ~0ull;
        bool valid = false;
    };

    DramConfig cfg_;
    std::vector<Bank> banks_;               // channels x banks
    std::vector<double> channelCycles_;     // per-channel busy cycles
    DramStats stats_;
};

} // namespace gpu
} // namespace mflstm

#endif // MFLSTM_GPU_DRAM_HH
