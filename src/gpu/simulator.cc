#include "gpu/simulator.hh"

#include <algorithm>

namespace mflstm {
namespace gpu {

namespace {

/// bucket edges for cycle-valued histograms (1 cycle .. 1e9 cycles)
std::vector<double>
cycleEdges()
{
    return obs::Histogram::exponentialEdges(1.0, 1e9, 19);
}

} // anonymous namespace

double
TraceResult::classShare(KernelClass k) const
{
    if (timeUs <= 0.0)
        return 0.0;
    const auto it = timePerClassUs.find(k);
    return it == timePerClassUs.end() ? 0.0 : it->second / timeUs;
}

Simulator::Simulator(const GpuConfig &cfg, bool crm_present,
                     obs::Observer *obs, obs::TrafficLedger *ledger)
    : cfg_(cfg), gmu_(cfg_, crm_present), obs_(obs), ledger_(ledger)
{
    if (obs_) {
        gmu_.setMetrics(&obs_->metrics());
        for (unsigned sm = 0; sm < cfg_.numSms; ++sm) {
            obs_->tracer().setTrackName(
                obs::SpanTracer::kGpuPid, static_cast<int>(sm),
                "SM " + std::to_string(sm));
        }
    }
}

KernelTiming
Simulator::runKernel(const KernelDesc &desc)
{
    const DispatchInfo dispatch = gmu_.dispatch(desc);
    KernelTiming t = timeKernel(cfg_, desc, dispatch.routedThroughCrm);
    if (dispatch.routedThroughCrm) {
        t.crmCycles = dispatch.crmCycles;
        t.crmEnergyJ = dispatch.crmEnergyJ;
        t.cycles += dispatch.crmCycles;
        t.timeUs += dispatch.crmCycles / cfg_.cyclesPerUs();
        t.activeThreads = dispatch.activeThreads;
    }
    return t;
}

void
Simulator::recordKernel(const KernelDesc &desc, const KernelTiming &t,
                        bool routed_through_crm)
{
    obs::MetricsRegistry &m = obs_->metrics();
    const char *klass = toString(desc.klass);

    m.counter("sim.kernels").add(1.0);
    m.counter("sim.time_us").add(t.timeUs);
    m.counter("sim.flops").add(t.flops);
    m.counter("sim.dram_bytes").add(t.dramBytes);
    m.counter("sim.weight_dram_bytes").add(desc.dramWeightBytes);
    if (desc.residency != WeightResidency::None) {
        m.counter("sim.persistent_kernels").add(1.0);
        m.counter("sim.residency_pinned_bytes")
            .add(desc.residencyPinnedBytes);
        m.counter("sim.residency_reload_bytes")
            .add(desc.dramResidencyReloadBytes);
    }
    m.counter(std::string("sim.stall_cycles.") + klass)
        .add(t.stalls.total());
    m.histogram(std::string("sim.stall_cycles_hist.") + klass,
                cycleEdges())
        .observe(t.stalls.total());
    if (t.reconfigured)
        m.counter("sim.kernels_reconfigured").add(1.0);

    if (desc.klass == KernelClass::Drs)
        m.counter("drs.scan_kernels").add(1.0);
    if (desc.hasRowSkipArg) {
        // One thread per output row in the lowered Sgemv/Sgemm grids, so
        // disabled thread slots count skipped rows.
        m.counter("drs.kernels_with_skip").add(1.0);
        m.counter("drs.rows_skipped")
            .add(static_cast<double>(desc.disabledThreads));
        m.histogram("drs.rows_skipped_per_kernel",
                    obs::Histogram::exponentialEdges(1.0, 1e6, 13))
            .observe(static_cast<double>(desc.disabledThreads));
    }

    // --- Timeline span, one per occupied SM -----------------------------
    obs::SpanTracer &tracer = obs_->tracer();
    const double start = tracer.simCursorUs();
    const unsigned sms = std::max(1u, std::min(t.smsUsed, cfg_.numSms));
    for (unsigned sm = 0; sm < sms; ++sm) {
        obs::TraceSpan span;
        span.name = desc.name;
        span.category = klass;
        span.pid = obs::SpanTracer::kGpuPid;
        span.tid = static_cast<int>(sm);
        span.startUs = start;
        span.durUs = t.timeUs;
        span.numArgs = {
            {"flops", t.flops},
            {"dram_bytes", t.dramBytes},
            {"l2_bytes", t.l2Bytes},
            {"shared_bytes", t.sharedBytes},
            {"stall_offchip_cycles", t.stalls.offChipMemory},
            {"stall_onchip_cycles", t.stalls.onChipBandwidth},
            {"stall_sync_cycles", t.stalls.synchronization},
            {"stall_dep_cycles", t.stalls.executionDependency},
            {"stall_other_cycles", t.stalls.other},
            {"ctas", static_cast<double>(desc.ctas)},
            {"layer", static_cast<double>(desc.layer)},
            {"timestep", static_cast<double>(desc.timestep)},
            {"tissue", static_cast<double>(desc.tissue)},
        };
        span.strArgs = {{"class", klass}};
        if (routed_through_crm)
            span.numArgs.emplace_back(
                "crm_cycles", t.crmCycles);
        tracer.record(std::move(span));
    }
    tracer.advanceSimCursor(t.timeUs);
}

TraceResult
Simulator::runTrace(const KernelTrace &trace)
{
    TraceResult res;
    const std::size_t crm_before = gmu_.kernelsThroughCrm();

    double dram_util_weighted = 0.0;
    double shared_util_weighted = 0.0;
    double crm_energy = 0.0;

    bool first = true;
    for (const KernelDesc &desc : trace) {
        KernelTiming t = runKernel(desc);

        // Back-to-back launches overlap the previous kernel's execution:
        // only the leading kernel pays the full launch overhead.
        if (!first) {
            t.timeUs -=
                cfg_.kernelLaunchUs - cfg_.streamedLaunchUs();
        }
        first = false;

        if (obs_)
            recordKernel(desc, t, t.crmCycles > 0.0);
        if (ledger_) {
            // Sub-streams live inside dram{Read,Write}Bytes before the
            // coalescing inflation; scale them by the same factor so the
            // sample decomposes t.dramBytes in one unit.
            obs::TrafficSample s;
            s.layer = desc.layer;
            switch (desc.weightStream) {
              case WeightStream::W:
                s.matrix = obs::MatrixStream::W;
                break;
              case WeightStream::U:
                s.matrix = obs::MatrixStream::U;
                break;
              case WeightStream::None:
                s.matrix = obs::MatrixStream::None;
                break;
            }
            s.kernel = desc.name;
            s.kernelClass = toString(desc.klass);
            s.totalDramBytes = t.dramBytes;
            // dramWeightBytes covers codes + scales + residency reload;
            // the ledger wants each on its own axis.
            s.weightBytes =
                (desc.dramWeightBytes - desc.dramScaleBytes -
                 desc.dramResidencyReloadBytes) *
                desc.coalescingFactor;
            s.scaleBytes = desc.dramScaleBytes * desc.coalescingFactor;
            s.residencyReloadBytes =
                desc.dramResidencyReloadBytes * desc.coalescingFactor;
            s.crmMetaBytes =
                desc.dramCrmMetaBytes * desc.coalescingFactor;
            s.spillBytes = desc.dramSpillBytes * desc.coalescingFactor;
            s.timeUs = t.timeUs;
            s.bottleneck = toString(t.boundBy);
            ledger_->record(s);
        }

        res.timeUs += t.timeUs;
        res.cycles += t.cycles;
        res.computeCycles += t.computeCycles;
        res.stalls += t.stalls;
        res.flops += t.flops;
        res.dramBytes += t.dramBytes;
        res.l2Bytes += t.l2Bytes;
        res.sharedBytes += t.sharedBytes;
        res.weightDramBytes += desc.dramWeightBytes;
        res.quantWeightElems += desc.quantWeightElems;
        res.crmCycles += t.crmCycles;
        crm_energy += t.crmEnergyJ;

        dram_util_weighted += t.dramUtilization * t.timeUs;
        shared_util_weighted += t.sharedUtilization * t.timeUs;

        res.timePerClassUs[desc.klass] += t.timeUs;
        ++res.kernelsPerClass[desc.klass];
        ++res.kernelCount;
    }

    if (res.timeUs > 0.0) {
        res.dramUtilization = dram_util_weighted / res.timeUs;
        res.sharedUtilization = shared_util_weighted / res.timeUs;
    }
    res.kernelsThroughCrm = gmu_.kernelsThroughCrm() - crm_before;

    ActivitySummary activity;
    activity.timeSeconds = res.timeUs * 1e-6;
    activity.flops = res.flops;
    activity.dramBytes = res.dramBytes;
    activity.l2Bytes = res.l2Bytes;
    activity.sharedBytes = res.sharedBytes;
    activity.issueBusyFraction =
        res.cycles > 0.0 ? res.computeCycles / res.cycles : 0.0;
    activity.quantWeightElems = res.quantWeightElems;
    activity.crmDynamicJ = crm_energy;
    activity.crmPresent = gmu_.crmPresent();
    res.energy = computeEnergy(cfg_, activity);

    if (obs_ && res.l2Bytes > 0.0) {
        // Effective L2 hit rate implied by the analytic traffic model:
        // the fraction of L2-level accesses that did not go off-chip.
        obs_->metrics()
            .gauge("cache.l2_hit_rate")
            .set(std::clamp(1.0 - res.dramBytes / res.l2Bytes, 0.0,
                            1.0));
    }

    return res;
}

} // namespace gpu
} // namespace mflstm
