#include "gpu/simulator.hh"

namespace mflstm {
namespace gpu {

double
TraceResult::classShare(KernelClass k) const
{
    if (timeUs <= 0.0)
        return 0.0;
    const auto it = timePerClassUs.find(k);
    return it == timePerClassUs.end() ? 0.0 : it->second / timeUs;
}

Simulator::Simulator(const GpuConfig &cfg, bool crm_present)
    : cfg_(cfg), gmu_(cfg_, crm_present)
{}

KernelTiming
Simulator::runKernel(const KernelDesc &desc)
{
    const DispatchInfo dispatch = gmu_.dispatch(desc);
    KernelTiming t = timeKernel(cfg_, desc, dispatch.routedThroughCrm);
    if (dispatch.routedThroughCrm) {
        t.crmCycles = dispatch.crmCycles;
        t.crmEnergyJ = dispatch.crmEnergyJ;
        t.cycles += dispatch.crmCycles;
        t.timeUs += dispatch.crmCycles / cfg_.cyclesPerUs();
        t.activeThreads = dispatch.activeThreads;
    }
    return t;
}

TraceResult
Simulator::runTrace(const KernelTrace &trace)
{
    TraceResult res;
    const std::size_t crm_before = gmu_.kernelsThroughCrm();

    double dram_util_weighted = 0.0;
    double shared_util_weighted = 0.0;
    double crm_energy = 0.0;

    bool first = true;
    for (const KernelDesc &desc : trace) {
        KernelTiming t = runKernel(desc);

        // Back-to-back launches overlap the previous kernel's execution:
        // only the leading kernel pays the full launch overhead.
        if (!first) {
            t.timeUs -=
                cfg_.kernelLaunchUs - cfg_.streamedLaunchUs();
        }
        first = false;

        res.timeUs += t.timeUs;
        res.cycles += t.cycles;
        res.computeCycles += t.computeCycles;
        res.stalls += t.stalls;
        res.flops += t.flops;
        res.dramBytes += t.dramBytes;
        res.l2Bytes += t.l2Bytes;
        res.sharedBytes += t.sharedBytes;
        res.crmCycles += t.crmCycles;
        crm_energy += t.crmEnergyJ;

        dram_util_weighted += t.dramUtilization * t.timeUs;
        shared_util_weighted += t.sharedUtilization * t.timeUs;

        res.timePerClassUs[desc.klass] += t.timeUs;
        ++res.kernelsPerClass[desc.klass];
        ++res.kernelCount;
    }

    if (res.timeUs > 0.0) {
        res.dramUtilization = dram_util_weighted / res.timeUs;
        res.sharedUtilization = shared_util_weighted / res.timeUs;
    }
    res.kernelsThroughCrm = gmu_.kernelsThroughCrm() - crm_before;

    ActivitySummary activity;
    activity.timeSeconds = res.timeUs * 1e-6;
    activity.flops = res.flops;
    activity.dramBytes = res.dramBytes;
    activity.l2Bytes = res.l2Bytes;
    activity.sharedBytes = res.sharedBytes;
    activity.issueBusyFraction =
        res.cycles > 0.0 ? res.computeCycles / res.cycles : 0.0;
    activity.crmDynamicJ = crm_energy;
    activity.crmPresent = gmu_.crmPresent();
    res.energy = computeEnergy(cfg_, activity);

    return res;
}

} // namespace gpu
} // namespace mflstm
