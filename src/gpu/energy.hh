/**
 * @file
 * System-level energy model. The paper reports energy of the whole board
 * (CPU + GPU + DRAM, Section VI-A), so the model combines: static SoC
 * power over the run, GPU idle power, issue-activity-proportional GPU
 * dynamic power, and per-byte/per-FLOP event energies for DRAM, L2,
 * shared memory, and the FP datapath. CRM overheads are accounted
 * separately so the Section VI-F overhead analysis can report them.
 */

#ifndef MFLSTM_GPU_ENERGY_HH
#define MFLSTM_GPU_ENERGY_HH

#include "gpu/config.hh"

namespace mflstm {
namespace gpu {

/** Energy of one run, decomposed by source (joules). */
struct EnergyReport
{
    double staticJ = 0.0;      ///< SoC + GPU idle over the runtime
    double gpuDynamicJ = 0.0;  ///< issue-activity + FP datapath
    double dramJ = 0.0;
    double onChipJ = 0.0;      ///< L2 + shared memory
    double crmJ = 0.0;         ///< CRM dynamic + static

    double totalJ() const
    {
        return staticJ + gpuDynamicJ + dramJ + onChipJ + crmJ;
    }

    EnergyReport &operator+=(const EnergyReport &rhs);
};

/** Aggregate activity counters for one run. */
struct ActivitySummary
{
    double timeSeconds = 0.0;
    double flops = 0.0;
    double dramBytes = 0.0;
    double l2Bytes = 0.0;
    double sharedBytes = 0.0;
    /// time-weighted fraction of cycles the issue stage was busy
    double issueBusyFraction = 0.0;
    /// weight elements dequantized in-register (quantized plans)
    double quantWeightElems = 0.0;
    double crmDynamicJ = 0.0;
    bool crmPresent = false;
};

/** Evaluate the energy model on one run's activity. */
EnergyReport computeEnergy(const GpuConfig &cfg,
                           const ActivitySummary &activity);

} // namespace gpu
} // namespace mflstm

#endif // MFLSTM_GPU_ENERGY_HH
