/**
 * @file
 * Cycle-level SM model. The roofline model in gpu/sm.hh answers "what
 * binds this kernel"; this model *executes* it: warps with generated
 * instruction streams advance cycle by cycle through per-SM schedulers,
 * a latency/bandwidth-limited DRAM queue, a banked shared-memory port
 * and CTA-wide barriers. It exists to validate the analytic model (the
 * cross-validation lives in tests/gpu_cycle_sm_test.cc and is run at
 * reduced scale) and to attribute stalls from first principles rather
 * than from bound ratios.
 *
 * Scope notes: SIMT lanes are not modelled individually — a warp is the
 * unit of execution, divergence appears as replayed issue slots, and
 * caches are summarised by the kernel's pre-computed DRAM/L2 traffic
 * split (as in the rest of the simulator).
 */

#ifndef MFLSTM_GPU_CYCLE_SM_HH
#define MFLSTM_GPU_CYCLE_SM_HH

#include <cstdint>
#include <vector>

#include "gpu/config.hh"
#include "gpu/kernel.hh"
#include "gpu/sm.hh"

namespace mflstm {
namespace gpu {

/** One warp-level instruction of the generated stream. */
struct WarpInstr
{
    enum class Op : std::uint8_t {
        Fma,      ///< one warp-wide FMA issue (64 FLOP)
        GlobalLd, ///< warp-wide global load (bytes from DRAM/L2)
        SharedLd, ///< warp-wide shared-memory access (bytes)
        Barrier,  ///< __syncthreads
    };

    Op op = Op::Fma;
    /// bytes moved for loads; replay count for Fma under divergence
    std::uint32_t amount = 0;
};

/**
 * The per-warp loop body generated from a KernelDesc: every warp of the
 * grid executes `body` repeated `iterations` times. Generation spreads
 * the kernel's aggregate FLOPs/bytes evenly over its warps, which
 * matches the regular dense kernels this runtime emits.
 */
struct WarpProgram
{
    std::vector<WarpInstr> body;
    std::uint32_t iterations = 1;

    static WarpProgram fromKernel(const GpuConfig &cfg,
                                  const KernelDesc &desc,
                                  bool crm_applied);
};

/** Result of a cycle-level run. */
struct CycleSimResult
{
    double cycles = 0.0;
    double timeUs = 0.0;
    StallBreakdown stalls;     ///< per-scheduler-slot stall cycles
    double issueSlots = 0.0;   ///< total scheduler issue opportunities
    double issuedSlots = 0.0;  ///< opportunities that issued a warp
    double dramBytes = 0.0;
    double sharedBytes = 0.0;

    double issueUtilization() const
    {
        return issueSlots > 0.0 ? issuedSlots / issueSlots : 0.0;
    }
};

/**
 * Cycle-level execution of one kernel on the configured GPU.
 *
 * @param max_cycles  safety bound; the simulation aborts (throwing
 *                    std::runtime_error) if the kernel has not drained,
 *                    which in practice flags a modelling bug.
 */
CycleSimResult cycleSimulate(const GpuConfig &cfg, const KernelDesc &desc,
                             bool crm_applied = false,
                             std::uint64_t max_cycles = 50'000'000);

} // namespace gpu
} // namespace mflstm

#endif // MFLSTM_GPU_CYCLE_SM_HH
