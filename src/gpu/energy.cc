#include "gpu/energy.hh"

namespace mflstm {
namespace gpu {

EnergyReport &
EnergyReport::operator+=(const EnergyReport &rhs)
{
    staticJ += rhs.staticJ;
    gpuDynamicJ += rhs.gpuDynamicJ;
    dramJ += rhs.dramJ;
    onChipJ += rhs.onChipJ;
    crmJ += rhs.crmJ;
    return *this;
}

EnergyReport
computeEnergy(const GpuConfig &cfg, const ActivitySummary &a)
{
    EnergyReport e;
    e.staticJ = (cfg.socStaticW + cfg.gpuIdleW) * a.timeSeconds;
    // Persistent residency shows up here through the activity totals:
    // resident weights cross the bus (dramBytes) and dequantize
    // (quantWeightElems) once per sequence instead of once per wave,
    // while their on-chip re-reads land in sharedBytes.
    e.gpuDynamicJ =
        cfg.gpuIssueActiveW * a.issueBusyFraction * a.timeSeconds +
        cfg.fmaPjPerFlop * a.flops * 1e-12 +
        cfg.dequantPjPerWeight * a.quantWeightElems * 1e-12;
    e.dramJ = cfg.dramPjPerByte * a.dramBytes * 1e-12;
    e.onChipJ = cfg.l2PjPerByte * a.l2Bytes * 1e-12 +
                cfg.sharedPjPerByte * a.sharedBytes * 1e-12;
    e.crmJ = a.crmDynamicJ +
             (a.crmPresent ? cfg.crmStaticW * a.timeSeconds : 0.0);
    return e;
}

} // namespace gpu
} // namespace mflstm
