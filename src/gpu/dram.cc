#include "gpu/dram.hh"

#include <algorithm>

namespace mflstm {
namespace gpu {

BankedDram::BankedDram(const DramConfig &cfg)
    : cfg_(cfg),
      banks_(static_cast<std::size_t>(cfg.channels) *
             cfg.banksPerChannel),
      channelCycles_(cfg.channels, 0.0)
{}

void
BankedDram::access(std::uint64_t addr)
{
    const std::uint64_t burst = addr / cfg_.burstBytes;
    const std::uint64_t channel = burst % cfg_.channels;
    const std::uint64_t chan_local = burst / cfg_.channels;
    const std::uint64_t bursts_per_row =
        cfg_.rowBytes / cfg_.burstBytes;
    const std::uint64_t row = chan_local / bursts_per_row;
    const std::uint64_t bank = row % cfg_.banksPerChannel;

    Bank &b = banks_[channel * cfg_.banksPerChannel + bank];
    double cost = cfg_.burstCycles;
    if (b.valid && b.openRow == row) {
        ++stats_.rowHits;
        cost += cfg_.rowHitCycles;
    } else {
        ++stats_.rowMisses;
        cost += cfg_.rowMissCycles;
        b.valid = true;
        b.openRow = row;
    }

    channelCycles_[channel] += cost;
    ++stats_.accesses;
    stats_.bytes += cfg_.burstBytes;
    stats_.cycles = *std::max_element(channelCycles_.begin(),
                                      channelCycles_.end());
}

void
BankedDram::accessRange(std::uint64_t addr, std::uint64_t size)
{
    if (size == 0)
        return;
    const std::uint64_t first = addr / cfg_.burstBytes;
    const std::uint64_t last = (addr + size - 1) / cfg_.burstBytes;
    for (std::uint64_t b = first; b <= last; ++b)
        access(b * cfg_.burstBytes);
}

void
BankedDram::accessStrided(std::uint64_t addr, std::uint64_t stride,
                          std::uint64_t count)
{
    for (std::uint64_t i = 0; i < count; ++i)
        access(addr + i * stride);
}

void
BankedDram::publishMetrics(obs::MetricsRegistry &metrics,
                           const std::string &prefix) const
{
    metrics.gauge(prefix + ".accesses")
        .set(static_cast<double>(stats_.accesses));
    metrics.gauge(prefix + ".row_hits")
        .set(static_cast<double>(stats_.rowHits));
    metrics.gauge(prefix + ".row_misses")
        .set(static_cast<double>(stats_.rowMisses));
    metrics.gauge(prefix + ".bytes").set(stats_.bytes);
    metrics.gauge(prefix + ".row_hit_rate").set(stats_.hitRate());
    metrics.gauge(prefix + ".efficiency_vs_peak")
        .set(stats_.efficiencyVsPeak(cfg_));
}

void
BankedDram::resetStats()
{
    stats_ = DramStats{};
    std::fill(channelCycles_.begin(), channelCycles_.end(), 0.0);
    for (Bank &b : banks_)
        b = Bank{};
}

} // namespace gpu
} // namespace mflstm
