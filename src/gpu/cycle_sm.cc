#include "gpu/cycle_sm.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <stdexcept>

namespace mflstm {
namespace gpu {

namespace {

/**
 * Per-request chunk size for generated global loads: kernels unroll
 * several coalesced 128 B lines per warp request, which is what gives a
 * mobile GPU enough memory-level parallelism to saturate its DRAM from
 * a modest warp count.
 */
constexpr std::uint32_t kLoadChunk = 512;

/** Shared-memory access latency, cycles. */
constexpr double kSharedLatency = 24.0;

/** A bandwidth-serialised, fixed-latency service queue. */
class ServiceQueue
{
  public:
    ServiceQueue(double bytes_per_cycle, double latency)
        : bytesPerCycle_(bytes_per_cycle), latency_(latency)
    {}

    /** Enqueue a request at @p now; @return its completion cycle. */
    double
    request(double now, double bytes)
    {
        const double start = std::max(now, nextFree_);
        nextFree_ = start + bytes / bytesPerCycle_;
        served_ += bytes;
        return nextFree_ + latency_;
    }

    double servedBytes() const { return served_; }

  private:
    double bytesPerCycle_;
    double latency_;
    double nextFree_ = 0.0;
    double served_ = 0.0;
};

/** Why a warp cannot issue right now. */
enum class WaitKind : std::uint8_t {
    None,
    GlobalMem,
    SharedMem,
    Barrier,
};

struct WarpCtx
{
    const WarpProgram *program = nullptr;
    std::uint32_t pc = 0;          ///< index into body
    std::uint32_t iterLeft = 0;    ///< loop iterations remaining
    std::uint32_t barriersLeft = 0;
    double readyAt = 0.0;
    WaitKind waiting = WaitKind::None;
    bool done = false;
    std::uint32_t cta = 0;

    bool
    ready(double now) const
    {
        return !done && waiting != WaitKind::Barrier && readyAt <= now;
    }
};

} // anonymous namespace

WarpProgram
WarpProgram::fromKernel(const GpuConfig &cfg, const KernelDesc &desc,
                        bool crm_applied)
{
    const std::uint32_t threads =
        crm_applied ? desc.totalThreads() - desc.disabledThreads
                    : desc.totalThreads();
    const std::uint32_t warps =
        std::max(1u, (threads + cfg.warpSize - 1) / cfg.warpSize);

    const double divergence =
        crm_applied ? 1.0 : desc.divergenceFactor;
    const double flops_per_warp = desc.flops * divergence / warps;
    const double global_per_warp =
        (desc.dramReadBytes + desc.dramWriteBytes) *
        desc.coalescingFactor / warps;
    const double shared_per_warp = desc.sharedBytes / warps;

    WarpProgram prog;
    prog.iterations = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(
               std::ceil(global_per_warp / kLoadChunk)));

    const double warp_fma_flops =
        2.0 * static_cast<double>(cfg.warpSize);
    const auto fmas_per_iter = static_cast<std::uint32_t>(std::ceil(
        flops_per_warp / warp_fma_flops /
        static_cast<double>(prog.iterations)));
    const auto global_per_iter = static_cast<std::uint32_t>(std::ceil(
        global_per_warp / static_cast<double>(prog.iterations)));
    const auto shared_per_iter = static_cast<std::uint32_t>(std::ceil(
        shared_per_warp / static_cast<double>(prog.iterations)));

    if (global_per_iter > 0)
        prog.body.push_back(
            {WarpInstr::Op::GlobalLd, global_per_iter});
    for (std::uint32_t left = shared_per_iter; left > 0;) {
        const std::uint32_t chunk = std::min(left, kLoadChunk);
        prog.body.push_back({WarpInstr::Op::SharedLd, chunk});
        left -= chunk;
    }
    for (std::uint32_t f = 0; f < fmas_per_iter; ++f)
        prog.body.push_back({WarpInstr::Op::Fma, 1});
    if (prog.body.empty())
        prog.body.push_back({WarpInstr::Op::Fma, 1});
    return prog;
}

CycleSimResult
cycleSimulate(const GpuConfig &cfg, const KernelDesc &desc,
              bool crm_applied, std::uint64_t max_cycles)
{
    const WarpProgram program =
        WarpProgram::fromKernel(cfg, desc, crm_applied);

    const std::uint32_t threads_per_cta =
        std::max(1u, desc.threadsPerCta);
    // With the CRM applied the grid is compacted before dispatch: the
    // surviving threads pack into proportionally fewer warps per CTA.
    const std::uint32_t active_threads =
        crm_applied ? desc.totalThreads() - desc.disabledThreads
                    : desc.totalThreads();
    const std::uint32_t total_warps = std::max(
        1u, (active_threads + cfg.warpSize - 1) / cfg.warpSize);
    const std::uint32_t warps_per_cta = std::max(
        1u, (total_warps + std::max(1u, desc.ctas) - 1) /
                std::max(1u, desc.ctas));
    const std::uint32_t ctas_per_sm = std::max(
        1u,
        std::min(cfg.maxCtasPerSm, cfg.maxThreadsPerSm / threads_per_cta));
    const std::uint32_t schedulers =
        std::max(1u, cfg.coresPerSm / cfg.warpSize);

    // Global (GPU-wide) DRAM queue; per-SM shared-memory queues.
    ServiceQueue dram(cfg.dramBytesPerCycle(),
                      cfg.dramLatencyNs * cfg.coreClockGhz);
    std::vector<ServiceQueue> shared(
        cfg.numSms,
        ServiceQueue(cfg.sharedBytesPerCyclePerSm, kSharedLatency));

    // CTA work list: CTAs are dispatched to SMs as slots free up.
    std::uint32_t next_cta = 0;
    const std::uint32_t total_ctas = std::max(1u, desc.ctas);

    struct SmState
    {
        std::vector<WarpCtx> warps;
        std::uint32_t liveCtas = 0;
        std::uint32_t rr = 0;  ///< round-robin scan cursor
    };
    std::vector<SmState> sms(cfg.numSms);

    auto launch_cta = [&](SmState &sm, std::uint32_t cta_id) {
        for (std::uint32_t w = 0; w < warps_per_cta; ++w) {
            WarpCtx ctx;
            ctx.program = &program;
            ctx.iterLeft = program.iterations;
            ctx.barriersLeft = desc.syncsPerCta;
            ctx.cta = cta_id;
            sm.warps.push_back(ctx);
        }
        ++sm.liveCtas;
    };

    // Initial dispatch: round-robin across SMs (the GMU balances the
    // machine rather than filling one SM first).
    for (std::uint32_t c = 0; c < ctas_per_sm && next_cta < total_ctas;
         ++c) {
        for (std::uint32_t s = 0;
             s < cfg.numSms && next_cta < total_ctas; ++s)
            launch_cta(sms[s], next_cta++);
    }

    CycleSimResult res;
    std::uint64_t cycle = 0;
    std::uint32_t live = 0;
    for (const SmState &sm : sms)
        live += sm.liveCtas;

    while (live > 0 || next_cta < total_ctas) {
        if (++cycle > max_cycles)
            throw std::runtime_error(
                "cycleSimulate: kernel failed to drain");
        const auto now = static_cast<double>(cycle);

        for (std::uint32_t s = 0; s < cfg.numSms; ++s) {
            SmState &sm = sms[s];

            // Barrier release: a CTA whose live warps all wait at the
            // barrier proceeds this cycle.
            for (std::uint32_t cta = 0; cta < total_ctas; ++cta) {
                bool any = false, all = true;
                for (const WarpCtx &w : sm.warps) {
                    if (w.cta != cta || w.done)
                        continue;
                    any = true;
                    all &= w.waiting == WaitKind::Barrier;
                }
                if (any && all) {
                    for (WarpCtx &w : sm.warps) {
                        if (w.cta == cta && !w.done) {
                            w.waiting = WaitKind::None;
                            w.readyAt =
                                now + cfg.barrierCostCycles;
                        }
                    }
                }
            }

            for (std::uint32_t sched = 0; sched < schedulers; ++sched) {
                res.issueSlots += 1.0;

                // Pick the next ready warp owned by this scheduler.
                WarpCtx *pick = nullptr;
                const std::size_t n = sm.warps.size();
                for (std::size_t k = 0; k < n; ++k) {
                    const std::size_t idx = (sm.rr + k) % n;
                    if (idx % schedulers != sched)
                        continue;
                    if (sm.warps[idx].ready(now)) {
                        pick = &sm.warps[idx];
                        sm.rr = (idx + 1) % std::max<std::size_t>(1, n);
                        break;
                    }
                }

                if (!pick) {
                    // Attribute the idle slot to the dominant wait
                    // reason among this scheduler's warps.
                    bool g = false, sh = false, bar = false,
                         pending = false;
                    for (std::size_t idx = sched; idx < n;
                         idx += schedulers) {
                        const WarpCtx &w = sm.warps[idx];
                        if (w.done)
                            continue;
                        pending = true;
                        g |= w.waiting == WaitKind::GlobalMem;
                        sh |= w.waiting == WaitKind::SharedMem;
                        bar |= w.waiting == WaitKind::Barrier;
                    }
                    if (g)
                        res.stalls.offChipMemory += 1.0;
                    else if (sh)
                        res.stalls.onChipBandwidth += 1.0;
                    else if (bar)
                        res.stalls.synchronization += 1.0;
                    else if (pending)
                        res.stalls.executionDependency += 1.0;
                    else
                        res.stalls.other += 1.0;
                    continue;
                }

                // Issue one instruction of the picked warp.
                res.issuedSlots += 1.0;
                WarpCtx &w = *pick;
                if (w.pc >= w.program->body.size()) {
                    // End of one loop iteration.
                    w.pc = 0;
                    if (w.iterLeft > 0)
                        --w.iterLeft;
                    if (w.iterLeft == 0) {
                        if (w.barriersLeft > 0) {
                            --w.barriersLeft;
                            w.waiting = WaitKind::Barrier;
                        } else {
                            w.done = true;
                        }
                        continue;
                    }
                }
                const WarpInstr &ins = w.program->body[w.pc++];
                switch (ins.op) {
                  case WarpInstr::Op::Fma:
                    // Pipelined: the warp may issue again next cycle.
                    break;
                  case WarpInstr::Op::GlobalLd:
                    w.readyAt = dram.request(now, ins.amount);
                    w.waiting = WaitKind::GlobalMem;
                    break;
                  case WarpInstr::Op::SharedLd:
                    w.readyAt = shared[s].request(now, ins.amount);
                    w.waiting = WaitKind::SharedMem;
                    break;
                  case WarpInstr::Op::Barrier:
                    w.waiting = WaitKind::Barrier;
                    break;
                }
            }

            // Clear satisfied memory waits.
            for (WarpCtx &w : sm.warps) {
                if (!w.done && w.waiting != WaitKind::Barrier &&
                    w.readyAt <= now) {
                    w.waiting = WaitKind::None;
                }
            }

            // Retire finished CTAs and dispatch pending ones.
            for (std::uint32_t cta = 0; cta < total_ctas; ++cta) {
                bool any = false, all_done = true;
                for (const WarpCtx &w : sm.warps) {
                    if (w.cta != cta)
                        continue;
                    any = true;
                    all_done &= w.done;
                }
                if (any && all_done) {
                    std::erase_if(sm.warps, [cta](const WarpCtx &w) {
                        return w.cta == cta;
                    });
                    --sm.liveCtas;
                    --live;
                    if (next_cta < total_ctas) {
                        launch_cta(sm, next_cta++);
                        ++live;
                    }
                }
            }
        }
    }

    res.cycles = static_cast<double>(cycle);
    res.timeUs = res.cycles / cfg.cyclesPerUs() + cfg.kernelLaunchUs;
    res.dramBytes = dram.servedBytes();
    for (const ServiceQueue &q : shared)
        res.sharedBytes += q.servedBytes();
    return res;
}

} // namespace gpu
} // namespace mflstm
