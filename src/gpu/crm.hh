/**
 * @file
 * CTA-reorganization module (CRM) — the light-weight hardware unit the
 * paper adds to the GPU's grid management unit (Section V-B, Fig. 12).
 *
 * Functional contract: given the trivial-row list R produced by the DRS
 * kernel and the grid configuration, the CRM (1) loads R into the
 * trivial-rows buffer, (2) decodes the disabled software thread IDs
 * (DTIDs), (3) runs a warp-granular prefix sum over the enable mask to
 * compute each surviving thread's offset, and (4) shifts STIDs into
 * compacted hardware thread IDs (HTIDs) so whole warps are either fully
 * populated or absent — eliminating the branch divergence a software
 * row-skip pays.
 *
 * The timing model charges the two-stage pipeline of Fig. 12: after a
 * fixed fill latency the module retires one warp (32 threads) per cycle.
 */

#ifndef MFLSTM_GPU_CRM_HH
#define MFLSTM_GPU_CRM_HH

#include <cstdint>
#include <vector>

#include "gpu/config.hh"
#include "obs/metrics.hh"

namespace mflstm {
namespace gpu {

/** Result of one CRM pass over a kernel's grid. */
struct CrmResult
{
    /// HTID for every STID; kDisabled for threads that were filtered.
    std::vector<std::uint32_t> htidOf;
    std::uint32_t activeThreads = 0;
    std::uint32_t disabledThreads = 0;
    /// Cycles the CRM pipeline occupies (overlappable with the previous
    /// kernel's tail; charged to the kernel as fixed latency).
    double cycles = 0.0;
    /// Dynamic energy of the pass, joules.
    double energyJ = 0.0;

    static constexpr std::uint32_t kDisabled = 0xffffffffu;
};

/** The CRM datapath model. */
class CtaReorgModule
{
  public:
    explicit CtaReorgModule(const GpuConfig &cfg) : cfg_(cfg) {}

    /**
     * Attach a metrics registry; every subsequent pass records pass
     * counts, thread totals and the cumulative compaction ratio
     * (surviving / inspected thread slots). nullptr detaches.
     */
    void setMetrics(obs::MetricsRegistry *metrics) { metrics_ = metrics; }

    /**
     * Decode disabled STIDs from the trivial-row list. Thread t of the
     * row-major Sgemv grid processes row t / threads_per_row, so every
     * thread of a trivial row is disabled.
     */
    std::vector<bool>
    decodeDisabled(const std::vector<std::uint32_t> &trivial_rows,
                   std::uint32_t threads_per_row,
                   std::uint32_t total_threads) const;

    /**
     * Full CRM pass: DTID decode + prefix-sum compaction + STID shift.
     * The prefix sum is computed exactly as the hardware would: a
     * running count of disabled slots, applied per 32-thread unit.
     */
    CrmResult reorganize(const std::vector<std::uint32_t> &trivial_rows,
                         std::uint32_t threads_per_row,
                         std::uint32_t total_threads) const;

    /**
     * Timing-only variant used by the kernel-level simulator when the
     * exact row list is already summarised as a disabled-thread count.
     */
    CrmResult reorganizeSummary(std::uint32_t disabled_threads,
                                std::uint32_t total_threads) const;

    /** Cycles to process a grid of the given size (Fig. 12 pipeline). */
    double pipelineCycles(std::uint32_t total_threads) const;

  private:
    void recordPass(const CrmResult &res, std::uint32_t total) const;

    const GpuConfig &cfg_;
    obs::MetricsRegistry *metrics_ = nullptr;
};

} // namespace gpu
} // namespace mflstm

#endif // MFLSTM_GPU_CRM_HH
