/**
 * @file
 * Simulator facade: executes a dependency-ordered kernel trace on the
 * configured mobile GPU (kernels are serialised, as they are on the TX1
 * where one LSTM stream saturates the part) and aggregates time, stall,
 * bandwidth and energy statistics. This is the stand-in for the paper's
 * Jetson board + DeepBench measurement loop.
 *
 * When an obs::Observer is injected the simulator additionally emits a
 * per-kernel timeline (one span per occupied SM, in simulated µs) and
 * registers counters/histograms (per-class stall cycles, DRS skip
 * counts, CRM compaction, effective L2 hit rate). With the default null
 * observer the timing results are bit-identical to the uninstrumented
 * simulator.
 */

#ifndef MFLSTM_GPU_SIMULATOR_HH
#define MFLSTM_GPU_SIMULATOR_HH

#include <map>

#include "gpu/config.hh"
#include "gpu/energy.hh"
#include "gpu/gmu.hh"
#include "gpu/kernel.hh"
#include "gpu/sm.hh"
#include "obs/ledger.hh"
#include "obs/observer.hh"

namespace mflstm {
namespace gpu {

/** Aggregated result of running one kernel trace. */
struct TraceResult
{
    double timeUs = 0.0;
    double cycles = 0.0;
    double computeCycles = 0.0;
    std::size_t kernelCount = 0;

    StallBreakdown stalls;

    double flops = 0.0;
    double dramBytes = 0.0;
    double l2Bytes = 0.0;
    double sharedBytes = 0.0;
    /// weight-matrix DRAM bytes (sum of KernelDesc::dramWeightBytes);
    /// divide by the batch size for the per-sequence amortised figure
    double weightDramBytes = 0.0;
    /// weight elements dequantized in-register (quantized plans only)
    double quantWeightElems = 0.0;

    /// time-weighted mean utilisations over the whole trace
    double dramUtilization = 0.0;
    double sharedUtilization = 0.0;

    /// wall time per kernel class, microseconds
    std::map<KernelClass, double> timePerClassUs;
    /// kernel count per class
    std::map<KernelClass, std::size_t> kernelsPerClass;

    double crmCycles = 0.0;
    std::size_t kernelsThroughCrm = 0;

    EnergyReport energy;

    /** Share of trace wall time spent in a kernel class, [0,1]. */
    double classShare(KernelClass k) const;
};

/** One simulated GPU instance. */
class Simulator
{
  public:
    /**
     * @param crm_present  build the GPU with the paper's CTA-
     *                     reorganization hardware (Section V-B).
     * @param obs          optional observability sink; nullptr (the
     *                     default) disables all recording.
     * @param ledger       optional traffic-attribution sink; every DRAM
     *                     byte a trace charges is recorded against the
     *                     (layer × matrix × kernel × cause) tree.
     */
    explicit Simulator(const GpuConfig &cfg, bool crm_present = true,
                       obs::Observer *obs = nullptr,
                       obs::TrafficLedger *ledger = nullptr);

    const GpuConfig &config() const { return cfg_; }
    bool crmPresent() const { return gmu_.crmPresent(); }
    obs::Observer *observer() const { return obs_; }
    obs::TrafficLedger *ledger() const { return ledger_; }

    /** Time one kernel, including GMU/CRM routing. */
    KernelTiming runKernel(const KernelDesc &desc);

    /** Run a whole trace in order and aggregate. */
    TraceResult runTrace(const KernelTrace &trace);

  private:
    void recordKernel(const KernelDesc &desc, const KernelTiming &t,
                      bool routed_through_crm);

    GpuConfig cfg_;
    GridManagementUnit gmu_;
    obs::Observer *obs_ = nullptr;
    obs::TrafficLedger *ledger_ = nullptr;
};

} // namespace gpu
} // namespace mflstm

#endif // MFLSTM_GPU_SIMULATOR_HH
