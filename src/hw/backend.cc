#include "hw/backend.hh"

#include <sstream>
#include <stdexcept>

#include "obs/json.hh"

namespace mflstm {
namespace hw {

namespace {

/**
 * Every GpuConfig number, in declaration order. Keeping serialize and
 * parse on one list is what makes the round-trip test structural: a
 * field added to GpuConfig without a line here fails the bit-equality
 * check in hw_registry_test rather than silently defaulting on load.
 */
#define MFLSTM_GPUCONFIG_NUM_FIELDS(X)                                      \
    X(numSms)                                                               \
    X(coresPerSm)                                                           \
    X(coreClockGhz)                                                         \
    X(warpSize)                                                             \
    X(maxThreadsPerSm)                                                      \
    X(maxCtasPerSm)                                                         \
    X(dramBandwidthGBs)                                                     \
    X(dramLatencyNs)                                                        \
    X(l2Bytes)                                                              \
    X(l2Assoc)                                                              \
    X(lineBytes)                                                            \
    X(l2BytesPerCycle)                                                      \
    X(sharedMemPerSmBytes)                                                  \
    X(sharedBytesPerCyclePerSm)                                             \
    X(regFileBytesPerSm)                                                    \
    X(sharedResidencyFraction)                                              \
    X(regfileResidencyFraction)                                             \
    X(residencyOccupancyPenalty)                                            \
    X(kernelLaunchUs)                                                       \
    X(streamedLaunchFraction)                                               \
    X(barrierCostCycles)                                                    \
    X(reconfigPenalty)                                                      \
    X(socStaticW)                                                           \
    X(gpuIdleW)                                                             \
    X(gpuIssueActiveW)                                                      \
    X(dramPjPerByte)                                                        \
    X(l2PjPerByte)                                                          \
    X(sharedPjPerByte)                                                      \
    X(fmaPjPerFlop)                                                         \
    X(dequantPjPerWeight)                                                   \
    X(dequantOpsPerWeight)                                                  \
    X(crmThreadsPerCycle)                                                   \
    X(crmPipelineCycles)                                                    \
    X(crmPjPerThread)                                                       \
    X(crmStaticW)

#define MFLSTM_GPUCONFIG_BOOL_FIELDS(X)                                     \
    X(int8DotUnits)                                                         \
    X(explicitWeightMemory)

/// Assign a JSON number back into whatever integral/floating field.
template <typename T>
void
assignNumber(T &dst, double v)
{
    dst = static_cast<T>(v);
}

gpu::GpuConfig
dp4aClass()
{
    // A Pascal+/Adreno-class mobile part with int8 dot-product units
    // (DP4A): same 2x128 SM shape as the TX1 but a faster clock, a
    // bigger L2 and more DRAM bandwidth — and, decisively, quantized
    // inner products that consume packed weights directly, so the
    // per-weight convert disappears from the issue pipes and the
    // per-row scales fold into the epilogue. Int4 becomes the
    // interesting quant row: the traffic halves again and no ALU tax
    // claws the win back.
    gpu::GpuConfig cfg;
    cfg.name = "DP4A-class mobile GPU (256 cores @ 1.109 GHz)";
    cfg.numSms = 2;
    cfg.coresPerSm = 128;
    cfg.coreClockGhz = 1.109;
    cfg.dramBandwidthGBs = 34.1;
    cfg.dramLatencyNs = 110.0;
    cfg.l2Bytes = 512 * 1024;
    cfg.sharedMemPerSmBytes = 64 * 1024;
    cfg.int8DotUnits = true;
    cfg.dequantOpsPerWeight = 0.0;
    // The dot unit still rescales its int32 accumulator once per row;
    // amortized per weight this is well under the Maxwell convert.
    cfg.dequantPjPerWeight = 0.05;
    return cfg;
}

gpu::GpuConfig
epurLike()
{
    // An E-PUR/SHARP-style RNN accelerator: modest compute tiles behind
    // a large explicit on-chip weight SRAM (2 x 4 MB) engineered so an
    // entire layer's recurrent matrix can be pinned and DRAM touched
    // once per sequence. The shared tier *is* the weight memory —
    // nearly all of it pinnable, with almost no occupancy penalty
    // because operand staging has its own small buffers — while DRAM
    // is a single narrow channel, so anything streamed is expensive.
    gpu::GpuConfig cfg;
    cfg.name = "E-PUR-like RNN accelerator (8 MB weight SRAM)";
    cfg.numSms = 2;  // two compute tiles
    cfg.coresPerSm = 64;
    cfg.coreClockGhz = 0.8;
    cfg.dramBandwidthGBs = 12.8;
    cfg.dramLatencyNs = 100.0;
    cfg.l2Bytes = 256 * 1024;
    cfg.sharedMemPerSmBytes = 4 * 1024 * 1024;
    cfg.sharedBytesPerCyclePerSm = 256.0;
    cfg.sharedResidencyFraction = 0.9;
    cfg.residencyOccupancyPenalty = 0.05;
    // Accelerator datapaths keep thread state in small latches, not a
    // GPU register file; the regfile residency tier is token-sized.
    cfg.regFileBytesPerSm = 64 * 1024;
    cfg.kernelLaunchUs = 0.5;  // command processor, not a CUDA driver
    cfg.sharedPjPerByte = 2.0;
    cfg.int8DotUnits = true;
    cfg.explicitWeightMemory = true;
    cfg.dequantOpsPerWeight = 0.0;
    cfg.dequantPjPerWeight = 0.05;
    return cfg;
}

} // anonymous namespace

const char *
toString(BackendKind kind)
{
    switch (kind) {
      case BackendKind::MobileGpu:
        return "mobile-gpu";
      case BackendKind::Accelerator:
        return "accelerator";
    }
    return "mobile-gpu";
}

std::optional<BackendKind>
backendKindFromString(const std::string &s)
{
    if (s == "mobile-gpu")
        return BackendKind::MobileGpu;
    if (s == "accelerator")
        return BackendKind::Accelerator;
    return std::nullopt;
}

Registry::Registry()
{
    {
        Backend b;
        b.id = "tx1";
        b.display = "Jetson TX1";
        b.kind = BackendKind::MobileGpu;
        b.summary = "Maxwell anchor of Table I: 2x128 cores @ 998 MHz, "
                    "25.6 GB/s LPDDR4, no DP4A (dequant on the FMA pipes)";
        b.revision = 1;
        b.config = gpu::GpuConfig::tegraX1();
        entries_.push_back(std::move(b));
    }
    {
        Backend b;
        b.id = "tx2";
        b.display = "TX2-like";
        b.kind = BackendKind::MobileGpu;
        b.summary = "Pascal-class scalability point: same SM shape, "
                    "1.3 GHz, 58.3 GB/s, 512 KB L2";
        b.revision = 1;
        b.config = gpu::GpuConfig::tegraX2Like();
        entries_.push_back(std::move(b));
    }
    {
        Backend b;
        b.id = "dp4a";
        b.display = "DP4A-class GPU";
        b.kind = BackendKind::MobileGpu;
        b.summary = "int8 dot-product units: dequant issue cost ~0, "
                    "scales fold into the epilogue, int4 is the "
                    "interesting quant row";
        b.revision = 1;
        b.config = dp4aClass();
        entries_.push_back(std::move(b));
    }
    {
        Backend b;
        b.id = "epur";
        b.display = "E-PUR-like accelerator";
        b.kind = BackendKind::Accelerator;
        b.summary = "explicit 8 MB on-chip weight SRAM: resident plans "
                    "dominate, streamed plans priced out when a layer "
                    "fits";
        b.revision = 1;
        b.config = epurLike();
        entries_.push_back(std::move(b));
    }
}

const Backend &
Registry::get(const std::string &id) const
{
    if (const Backend *b = find(id))
        return *b;
    throw std::out_of_range("hw::Registry: unknown backend '" + id + "'");
}

const Backend *
Registry::find(const std::string &id) const
{
    for (const Backend &b : entries_)
        if (b.id == id)
            return &b;
    return nullptr;
}

bool
Registry::contains(const std::string &id) const
{
    return find(id) != nullptr;
}

std::vector<std::string>
Registry::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const Backend &b : entries_)
        out.push_back(b.id);
    return out;
}

const Registry &
registry()
{
    static const Registry instance;
    return instance;
}

std::string
serializeBackend(const Backend &backend)
{
    std::ostringstream os;
    obs::JsonWriter w(os);
    w.beginObject();
    w.key("schema").value("mflstm.backend");
    w.key("version").value(1);
    w.key("id").value(backend.id);
    w.key("display").value(backend.display);
    w.key("kind").value(toString(backend.kind));
    w.key("summary").value(backend.summary);
    w.key("revision").value(backend.revision);
    w.key("config");
    w.beginObject();
    w.key("name").value(backend.config.name);
#define MFLSTM_WRITE_NUM(f)                                                 \
    w.key(#f).value(static_cast<double>(backend.config.f));
    MFLSTM_GPUCONFIG_NUM_FIELDS(MFLSTM_WRITE_NUM)
#undef MFLSTM_WRITE_NUM
#define MFLSTM_WRITE_BOOL(f) w.key(#f).value(backend.config.f);
    MFLSTM_GPUCONFIG_BOOL_FIELDS(MFLSTM_WRITE_BOOL)
#undef MFLSTM_WRITE_BOOL
    w.endObject();
    w.endObject();
    return os.str();
}

std::optional<Backend>
parseBackend(const std::string &json)
{
    const std::optional<obs::JsonValue> doc = obs::parseJson(json);
    if (!doc || doc->kind != obs::JsonValue::Kind::Object)
        return std::nullopt;
    const obs::JsonValue *schema = doc->find("schema");
    if (!schema || schema->kind != obs::JsonValue::Kind::String ||
        schema->str != "mflstm.backend")
        return std::nullopt;
    const obs::JsonValue *version = doc->find("version");
    if (!version || version->kind != obs::JsonValue::Kind::Number ||
        version->number != 1.0)
        return std::nullopt;

    Backend b;
    const obs::JsonValue *id = doc->find("id");
    const obs::JsonValue *display = doc->find("display");
    const obs::JsonValue *kind = doc->find("kind");
    const obs::JsonValue *summary = doc->find("summary");
    const obs::JsonValue *revision = doc->find("revision");
    if (!id || id->kind != obs::JsonValue::Kind::String || id->str.empty())
        return std::nullopt;
    b.id = id->str;
    if (display && display->kind == obs::JsonValue::Kind::String)
        b.display = display->str;
    if (kind) {
        if (kind->kind != obs::JsonValue::Kind::String)
            return std::nullopt;
        const std::optional<BackendKind> k =
            backendKindFromString(kind->str);
        if (!k)
            return std::nullopt;
        b.kind = *k;
    }
    if (summary && summary->kind == obs::JsonValue::Kind::String)
        b.summary = summary->str;
    if (revision && revision->kind == obs::JsonValue::Kind::Number)
        b.revision = static_cast<int>(revision->number);

    const obs::JsonValue *cfg_obj = doc->find("config");
    if (!cfg_obj || cfg_obj->kind != obs::JsonValue::Kind::Object)
        return std::nullopt;
    if (const obs::JsonValue *n = cfg_obj->find("name")) {
        if (n->kind != obs::JsonValue::Kind::String)
            return std::nullopt;
        b.config.name = n->str;
    }
#define MFLSTM_READ_NUM(f)                                                  \
    if (const obs::JsonValue *v = cfg_obj->find(#f)) {                      \
        if (v->kind != obs::JsonValue::Kind::Number)                        \
            return std::nullopt;                                            \
        assignNumber(b.config.f, v->number);                                \
    }
    MFLSTM_GPUCONFIG_NUM_FIELDS(MFLSTM_READ_NUM)
#undef MFLSTM_READ_NUM
#define MFLSTM_READ_BOOL(f)                                                 \
    if (const obs::JsonValue *v = cfg_obj->find(#f)) {                      \
        if (v->kind != obs::JsonValue::Kind::Bool)                          \
            return std::nullopt;                                            \
        b.config.f = v->boolean;                                            \
    }
    MFLSTM_GPUCONFIG_BOOL_FIELDS(MFLSTM_READ_BOOL)
#undef MFLSTM_READ_BOOL
    return b;
}

} // namespace hw
} // namespace mflstm
