/**
 * @file
 * Hardware backend registry (DESIGN.md §17). Generalizes the single
 * hand-configured TX1 `gpu::GpuConfig` into named, versioned backend
 * descriptors: the Maxwell anchor (`tx1`, bit-identical to the historic
 * `GpuConfig::tegraX1()`), its Pascal-class sibling (`tx2`), a
 * DP4A-class mobile GPU (`dp4a`, int8 dot-product units price the
 * dequant stream to zero so int4 becomes the interesting quant row) and
 * an E-PUR/SHARP-style RNN accelerator (`epur`, a large explicit
 * on-chip weight SRAM that makes streamed-weight plans pointless when a
 * layer fits). Every consumer that used to hand-roll `tegraX1()` looks
 * the anchor up here instead, so the config exists in exactly one place
 * and tuned-plan / warm-state artifacts can carry a backend identity.
 */

#ifndef MFLSTM_HW_BACKEND_HH
#define MFLSTM_HW_BACKEND_HH

#include <optional>
#include <string>
#include <vector>

#include "gpu/config.hh"

namespace mflstm {
namespace hw {

/** Classification of a backend for display / rule-set selection. */
enum class BackendKind
{
    MobileGpu,     ///< streaming-multiprocessor part, weights from DRAM
    Accelerator,   ///< explicit on-chip weight memory (E-PUR/SHARP)
};

/** Stable lowercase token ("mobile-gpu" / "accelerator"). */
const char *toString(BackendKind kind);

/** Inverse of toString; nullopt on an unknown token. */
std::optional<BackendKind> backendKindFromString(const std::string &s);

/**
 * One named, versioned hardware descriptor. The `config` member is the
 * complete simulator input; everything else is registry metadata. The
 * `revision` counter is bumped whenever the numbers inside `config`
 * change, so a serialized descriptor records which vintage produced it.
 */
struct Backend
{
    std::string id;       ///< registry key, e.g. "tx1"
    std::string display;  ///< human name for tables
    BackendKind kind = BackendKind::MobileGpu;
    std::string summary;  ///< one-liner for `mflstm backends`
    int revision = 1;
    gpu::GpuConfig config;
};

/**
 * The process-wide backend registry. Entries are fixed at startup (this
 * is a model zoo, not a plugin system); lookup is by id. Registration
 * order is the presentation order of `mflstm backends` and the bench
 * sweeps: tx1, tx2, dp4a, epur.
 */
class Registry
{
  public:
    /** @throws std::out_of_range on an unknown id. */
    const Backend &get(const std::string &id) const;

    /** nullptr on an unknown id (CLI-friendly lookup). */
    const Backend *find(const std::string &id) const;

    bool contains(const std::string &id) const;

    /** Backend ids in registration order. */
    std::vector<std::string> names() const;

    const std::vector<Backend> &entries() const { return entries_; }

  private:
    friend const Registry &registry();
    Registry();

    std::vector<Backend> entries_;
};

/** The singleton registry (constructed on first use, immutable). */
const Registry &registry();

/**
 * Serialize one descriptor as a deterministic JSON object (sorted
 * member groups, %.17g numbers, so parse(serialize(b)) reproduces the
 * GpuConfig bit-for-bit). Schema: {"schema":"mflstm.backend",
 * "version":1, "id":..., "display":..., "kind":..., "summary":...,
 * "revision":..., "config":{...}}.
 */
std::string serializeBackend(const Backend &backend);

/**
 * Parse a serialized descriptor. Fields absent from the JSON keep the
 * GpuConfig defaults; nullopt on malformed JSON, a wrong schema tag, an
 * unsupported version, or a bad kind token.
 */
std::optional<Backend> parseBackend(const std::string &json);

} // namespace hw
} // namespace mflstm

#endif // MFLSTM_HW_BACKEND_HH
