/**
 * @file
 * Network executor: lowers a network + plan onto the simulated GPU and
 * reports timing/energy, plus the comparison helpers the benches use
 * (speedup, energy saving). This is the reproduction's equivalent of the
 * paper's DeepBench-drives-the-Jetson-board measurement loop.
 */

#ifndef MFLSTM_RUNTIME_EXECUTOR_HH
#define MFLSTM_RUNTIME_EXECUTOR_HH

#include "gpu/simulator.hh"
#include "runtime/lowering.hh"
#include "runtime/plan.hh"

namespace mflstm {
namespace runtime {

/** One measured run. */
struct RunReport
{
    PlanKind kind = PlanKind::Baseline;
    gpu::TraceResult result;
};

/** Speedup of @p opt over @p base (wall time ratio). */
double speedup(const RunReport &base, const RunReport &opt);

/** Energy saving of @p opt vs @p base, percent of baseline energy. */
double energySavingPct(const RunReport &base, const RunReport &opt);

/** Runs plans for network shapes on one GPU configuration. */
class NetworkExecutor
{
  public:
    /**
     * @param obs optional observability sink shared by every run this
     *            executor performs (host phases + GPU timeline +
     *            metrics); nullptr disables all recording.
     */
    explicit NetworkExecutor(const gpu::GpuConfig &cfg,
                             obs::Observer *obs = nullptr)
        : cfg_(cfg), lowering_(cfg_), obs_(obs)
    {}

    const gpu::GpuConfig &config() const { return cfg_; }
    const Lowering &lowering() const { return lowering_; }
    obs::Observer *observer() const { return obs_; }

    /** Lower + simulate the whole network. */
    RunReport run(const NetworkShape &shape,
                  const ExecutionPlan &plan) const;

    /** Lower + simulate a single layer (for the Fig. 15 study). */
    RunReport runLayer(const LstmLayerShape &layer,
                       const ExecutionPlan &plan,
                       std::size_t layer_index) const;

  private:
    gpu::GpuConfig cfg_;
    Lowering lowering_;
    obs::Observer *obs_ = nullptr;
};

} // namespace runtime
} // namespace mflstm

#endif // MFLSTM_RUNTIME_EXECUTOR_HH
