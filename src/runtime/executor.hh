/**
 * @file
 * Network executor: lowers a network + plan onto the simulated GPU and
 * reports timing/energy, plus the comparison helpers the benches use
 * (speedup, energy saving). This is the reproduction's equivalent of the
 * paper's DeepBench-drives-the-Jetson-board measurement loop.
 *
 * All runs go through one entry point, `run(const RunRequest&)`: the
 * descriptor names the layers to lower, the plan, the batch dimension
 * (concurrent sequences sharing every weight fetch — the serving
 * layer's cross-sequence batching) and, for single-layer studies, the
 * plan/provenance index of the first layer. The positional
 * `run(shape, plan)` / `runLayer(...)` signatures delegate to it.
 */

#ifndef MFLSTM_RUNTIME_EXECUTOR_HH
#define MFLSTM_RUNTIME_EXECUTOR_HH

#include <functional>

#include "gpu/simulator.hh"
#include "runtime/lowering.hh"
#include "runtime/plan.hh"

namespace mflstm {
namespace runtime {

/** One measured run. */
struct RunReport
{
    PlanKind kind = PlanKind::Baseline;
    /// sequences that shared this run's weight fetches
    std::size_t batch = 1;
    gpu::TraceResult result;

    /** Weight-matrix DRAM bytes amortised per sequence. */
    double weightDramBytesPerSequence() const
    {
        return batch ? result.weightDramBytes /
                           static_cast<double>(batch)
                     : result.weightDramBytes;
    }
};

/** Speedup of @p opt over @p base (wall time ratio). */
double speedup(const RunReport &base, const RunReport &opt);

/** Energy saving of @p opt vs @p base, percent of baseline energy. */
double energySavingPct(const RunReport &base, const RunReport &opt);

/** Everything one executor run needs, in one descriptor. */
struct RunRequest
{
    /// layers to lower (the whole network, or a single-layer slice)
    NetworkShape shape;
    ExecutionPlan plan;
    /// concurrent sequences packed into every kernel (>= 1)
    std::size_t batch = 1;
    /// plan / provenance index of shape.layers[0] (single-layer runs)
    std::size_t firstLayerIndex = 0;

    /** Whole-network run. */
    static RunRequest network(NetworkShape s, ExecutionPlan p,
                              std::size_t b = 1)
    {
        RunRequest r;
        r.shape = std::move(s);
        r.plan = std::move(p);
        r.batch = b;
        return r;
    }

    /** Single-layer run (the Fig. 15 study). */
    static RunRequest layer(const LstmLayerShape &l, ExecutionPlan p,
                            std::size_t layer_index, std::size_t b = 1)
    {
        RunRequest r;
        r.shape.layers = {l};
        r.plan = std::move(p);
        r.batch = b;
        r.firstLayerIndex = layer_index;
        return r;
    }
};

/** Runs plans for network shapes on one GPU configuration. */
class NetworkExecutor
{
  public:
    /**
     * @param obs optional observability sink shared by every run this
     *            executor performs (host phases + GPU timeline +
     *            metrics); nullptr disables all recording. With a
     *            thread-safe sink, concurrent run() calls from several
     *            threads are safe: each run simulates on its own
     *            Simulator instance.
     */
    explicit NetworkExecutor(const gpu::GpuConfig &cfg,
                             obs::Observer *obs = nullptr)
        : cfg_(cfg), lowering_(cfg_), obs_(obs)
    {}

    const gpu::GpuConfig &config() const { return cfg_; }
    const Lowering &lowering() const { return lowering_; }
    obs::Observer *observer() const { return obs_; }

    /**
     * Hook invoked at the top of every run(), before lowering. The
     * serving layer's fault injector throws from here to model a
     * transient device failure on the real execution path; exceptions
     * propagate to the run() caller. Install before sharing the
     * executor across threads — the hook itself must be thread-safe.
     */
    using PreRunHook = std::function<void(const RunRequest &)>;
    void setPreRunHook(PreRunHook hook) { preRunHook_ = std::move(hook); }

    /**
     * Attach a traffic-attribution ledger: every subsequent run() feeds
     * its simulated DRAM bytes into @p ledger (DESIGN.md §13). The
     * ledger must outlive the executor; nullptr detaches. Unlike the
     * observer, the ledger is mutable state shared across runs — attach
     * a per-thread ledger before sharing the executor across threads.
     */
    void setLedger(obs::TrafficLedger *ledger) { ledger_ = ledger; }
    obs::TrafficLedger *ledger() const { return ledger_; }

    /** Lower + simulate one descriptor (the common entry point). */
    RunReport run(const RunRequest &req) const;

    /** Lower + simulate the whole network (delegates to run(req)). */
    RunReport run(const NetworkShape &shape,
                  const ExecutionPlan &plan) const;

    /** Lower + simulate a single layer (delegates to run(req)). */
    RunReport runLayer(const LstmLayerShape &layer,
                       const ExecutionPlan &plan,
                       std::size_t layer_index) const;

  private:
    gpu::GpuConfig cfg_;
    Lowering lowering_;
    obs::Observer *obs_ = nullptr;
    obs::TrafficLedger *ledger_ = nullptr;
    PreRunHook preRunHook_;
};

} // namespace runtime
} // namespace mflstm

#endif // MFLSTM_RUNTIME_EXECUTOR_HH
