/**
 * @file
 * Explicit schedule decisions (DESIGN.md §14): the per-layer choices
 * the lowering used to infer from a closed PlanKind enum, spelled out
 * as one composable structure. A LayerSchedule answers, for one layer,
 * every question the lowering asks:
 *
 *   - tissue schedule: batch cells into tissue Sgemms (Section IV-D)
 *     or run the per-cell flow;
 *   - intra-cell skip path: no DRS, the divergent software path, or
 *     the CRM hardware dataflow (Section V);
 *   - flag fusion: standalone DRS scan kernel vs relevance flags
 *     emitted from the U_o epilogue (the CRM dispatch contract — and,
 *     independently, a searchable point on the software path);
 *   - weight precision for this layer's kernels (per-layer mixed
 *     precision falls out of making this a layer decision);
 *   - the zero-pruning CSR comparator flow (Section VI-B2);
 *   - an optional batch override (0 inherits the RunRequest batch).
 *
 * Legacy PlanKind values remain expressible as canonical presets:
 * ExecutionPlan::layerSchedule() derives exactly these decisions from
 * the old (kind, inter, intra, pruneFraction, quantMode) fields, and
 * the lowering consumes only LayerSchedule — so presets lower
 * bit-identically through the decision path (runtime_schedule_test
 * locks this in), while the src/sched search composes points the enum
 * could never name (e.g. software skip with a fused flag epilogue, or
 * per-layer fp32 fallback under a quantized plan).
 */

#ifndef MFLSTM_RUNTIME_SCHEDULE_HH
#define MFLSTM_RUNTIME_SCHEDULE_HH

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "gpu/kernel.hh"
#include "quant/qformat.hh"

namespace mflstm {
namespace runtime {

/**
 * On-chip weight residency of a persistent layer (gpu tier enum —
 * shared between the schedule decision and the KernelDesc the lowering
 * emits). `None` streams U from DRAM every wave; `Shared`/`Regfile`
 * lower the layer into one persistent kernel whose resident weight
 * block crosses the bus once per sequence.
 */
using WeightResidency = gpu::WeightResidency;

/** Intra-cell row-skip dataflow for one layer (Section V). */
enum class SkipPath : std::uint32_t {
    Off = 0,       ///< dense recurrent GEMMs, no DRS
    Software = 1,  ///< divergent software row skip (Algorithm 3)
    HwCrm = 2,     ///< CRM-compacted dispatch (Section V-B)
};

/** Where the relevance flags of the DRS scan are produced. */
enum class FlagFusion : std::uint32_t {
    Standalone = 0,     ///< separate DRS scan kernel after sigma(o_t)
    FusedEpilogue = 1,  ///< U_o epilogue applies sigma and emits flags
};

const char *toString(SkipPath path);
const char *toString(FlagFusion fusion);

/** Parse a toString spelling; nullopt on anything unknown. */
std::optional<SkipPath> parseSkipPath(const std::string &s);
std::optional<FlagFusion> parseFlagFusion(const std::string &s);
std::optional<WeightResidency> parseWeightResidency(const std::string &s);

/** Every schedule decision the lowering needs for one layer. */
struct LayerSchedule
{
    /**
     * Tissue sizes in execution order (sums to the layer length when
     * non-empty). Empty — or degenerate all-ones — selects the
     * per-cell flow; see usesTissues().
     */
    std::vector<std::size_t> tissueSizes;

    SkipPath skipPath = SkipPath::Off;
    /// mean fraction of U_{f,i,c} rows skipped per cell
    double skipFraction = 0.0;
    FlagFusion flagFusion = FlagFusion::Standalone;

    /// weight precision of this layer's kernels (DESIGN.md §12)
    quant::QuantMode quant = quant::QuantMode::Fp32;

    /// zero-pruning CSR comparator flow ([31]); excludes every other
    /// optimisation and is defined on fp32 weights
    bool prunedCsr = false;
    /// element fraction pruned by the comparator (prunedCsr only)
    double pruneFraction = 0.0;

    /// batch override for this layer's kernels; 0 = inherit the
    /// RunRequest batch (the only value presets ever produce)
    std::size_t batch = 0;

    /**
     * Persistent on-chip weight residency: lower this layer into one
     * persistent kernel whose resident share of U crosses the bus once
     * per sequence (per batch wave in the serve batcher) instead of
     * once per tissue/timestep. Composes with the tissue schedule (the
     * persistent grid synchronises at tissue-wave granularity) and any
     * precision; excludes DRS and the CSR comparator — see validate().
     */
    WeightResidency residency = WeightResidency::None;

    /** True when the tissue flow actually runs (maxTissue > 1). */
    bool usesTissues() const;

    /** True when this layer lowers into one persistent kernel. */
    bool persistent() const
    {
        return residency != WeightResidency::None;
    }

    /** True when a row-skip kernel is emitted for this layer. */
    bool skipActive() const
    {
        return skipPath != SkipPath::Off && skipFraction > 0.0;
    }

    /**
     * Reject decision combinations the hardware model cannot execute:
     * the CRM consumes raw flags from the fused U_o epilogue (HwCrm
     * requires FusedEpilogue); DRS inside a tissue always dispatches
     * through the CRM (tissues + skip require HwCrm); the CSR
     * comparator composes with nothing and stays fp32; fractions must
     * be finite and within [0, 1]; persistent residency excludes DRS
     * (the GMU re-dispatches per-wave row-skip grids, but a persistent
     * layer launches exactly once) and the CSR comparator (whose
     * gather-indexed rows cannot be pinned as a dense block).
     *
     * @throws std::invalid_argument naming the violated rule.
     */
    void validate() const;

    bool operator==(const LayerSchedule &) const = default;
};

/** A full network's schedule: one LayerSchedule per layer. */
struct ScheduleDecisions
{
    std::vector<LayerSchedule> layers;

    bool empty() const { return layers.empty(); }

    /** validate() every layer; error messages carry the layer index. */
    void validate() const;

    bool operator==(const ScheduleDecisions &) const = default;
};

} // namespace runtime
} // namespace mflstm

#endif // MFLSTM_RUNTIME_SCHEDULE_HH
