/**
 * @file
 * LSTM-to-kernel lowering: turns a network shape plus an execution plan
 * into the kernel trace the GPU simulator consumes. This captures the
 * paper's three computation flows —
 *
 *   Algorithm 1 (baseline): Sgemm(W,x) per layer, Sgemv(U,h) + lstm_ew
 *   per cell;
 *
 *   Section IV-D (inter-cell): breakpoint search + link prediction
 *   kernels after the input Sgemm, then one batched Sgemm(U,H_t) +
 *   lstm_ew per tissue;
 *
 *   Algorithm 3 (intra-cell DRS): split Sgemv(U_o) -> lstm_ew(o_t) ->
 *   DRS scan -> row-skipped Sgemv(U_fic,h,R) -> lstm_ew per cell;
 *
 * plus the zero-pruning comparator of Section VI-B2 and the persistent
 * residency flow (Appleyard et al., PAPERS.md): one persistent kernel
 * per layer with the recurrent weights pinned in shared memory or the
 * register file across every wave of the sequence.
 *
 * Dispatch is decision-driven (DESIGN.md §14): lowerLayer resolves the
 * plan to a per-layer LayerSchedule (explicit decisions, or the
 * canonical preset derivation) and emits from that alone — the legacy
 * PlanKind presets lower bit-identically through this path, and the
 * src/sched search can compose points the enum never named (software
 * skip with a fused flag epilogue, per-layer precision).
 *
 * Traffic calibration (see DESIGN.md §5): Sgemv stages the input vector
 * in shared memory (4 B/MAC of on-chip traffic) and streams weights from
 * DRAM through the L2; Sgemm stages both operand tiles in shared memory
 * (~8 B/MAC; small hidden sizes double-buffer better and pay ~6.6 B/MAC,
 * which is what makes the BABI/MR maximum tissue size land at 6 instead
 * of 5). Cross-kernel weight reuse follows the streaming L2 model in
 * gpu/cache.hh.
 *
 * Cross-sequence batching (DESIGN.md §9): every builder accepts a batch
 * dimension B (default 1, bit-identical to the unbatched lowering). A
 * batched kernel multiplies per-sequence work — flops, activation
 * traffic, grid size — by B while charging the weight-matrix DRAM
 * stream once per kernel, so one weight fetch serves B concurrent
 * sequences. The weight share is reported in KernelDesc::dramWeightBytes
 * so the serving layer can observe the per-sequence amortisation.
 */

#ifndef MFLSTM_RUNTIME_LOWERING_HH
#define MFLSTM_RUNTIME_LOWERING_HH

#include "gpu/config.hh"
#include "gpu/kernel.hh"
#include "runtime/plan.hh"

namespace mflstm {
namespace runtime {

/**
 * Shared-memory bytes per MAC for an Sgemm with @p cols output columns.
 * Wide GEMMs (the per-layer input projection) register-block 8x8 tiles
 * and touch shared memory rarely; the narrow per-tissue GEMM (cols =
 * tissue size <= MTS) cannot block along columns and re-reads both
 * operands from shared memory almost per MAC.
 */
double sgemmSharedBytesPerMac(std::size_t hidden_size, std::size_t cols);

/** Shared-memory bytes per MAC for an Sgemv (input staged on chip). */
double sgemvSharedBytesPerMac();

/**
 * Fraction of a skipped row's DRAM bytes that software row-skip fails to
 * save: with one thread per row, a warp's surviving lanes still touch
 * the memory transactions that cover its skipped neighbours, so only a
 * small fraction of the skipped bytes disappears from the bus.
 */
double swSkipCoalescedSaving();

/**
 * Common knobs of every kernel builder, collapsed into one options
 * struct (the old trailing `(batch, quantMode, ...)` parameter tails).
 * Default-constructed it yields the unbatched fp32 kernel. New
 * backend/persistent-kernel knobs belong here, not as another defaulted
 * parameter on ten builders.
 */
struct KernelBuildCtx
{
    /// sequences sharing every weight fetch (>= 1)
    std::size_t batch = 1;
    /// weight precision priced into the DRAM/L2 terms (DESIGN.md §12)
    quant::QuantMode quant = quant::QuantMode::Fp32;
    /**
     * outputGateSgemv only: the epilogue also applies sigma and emits
     * the relevance flag per output element (the CRM dataflow — the
     * hardware consumes raw flags in the dispatch stage, so no
     * standalone scan kernel runs).
     */
    bool fusedFlags = false;

    bool operator==(const KernelBuildCtx &) const = default;
};

/** Lowers network shapes + plans into kernel traces for one GPU. */
class Lowering
{
  public:
    explicit Lowering(const gpu::GpuConfig &cfg) : cfg_(cfg) {}

    /**
     * Lower one layer; appends kernels to @p out. @p batch sequences
     * share every weight fetch (1 = the single-sequence flow). The
     * layer's LayerSchedule (plan.layerSchedule(layer_index)) decides
     * every emission choice; it is validated before anything is
     * emitted.
     */
    void lowerLayer(const LstmLayerShape &shape,
                    const ExecutionPlan &plan, std::size_t layer_index,
                    gpu::KernelTrace &out, std::size_t batch = 1) const;

    /**
     * Lower the whole network. @p first_layer_index offsets the plan /
     * provenance layer index (used by single-layer runs).
     */
    gpu::KernelTrace lower(const NetworkShape &shape,
                           const ExecutionPlan &plan,
                           std::size_t batch = 1,
                           std::size_t first_layer_index = 0) const;

    // --- Individual kernel builders (exposed for tests/benches) --------
    // Every builder takes a KernelBuildCtx last; omitting it yields the
    // unbatched fp32 kernel. A quantized ctx shrinks the weight-side
    // DRAM/L2 terms by quant::bytesPerWeight (plus a 4 B/row scale
    // stream) and sets KernelDesc::quantWeightElems for the in-register
    // dequant cost.

    /** Per-layer input projection Sgemm(W_{f,i,c,o}, x). */
    gpu::KernelDesc inputSgemm(const LstmLayerShape &shape,
                               const KernelBuildCtx &ctx = {}) const;

    /**
     * Baseline per-cell Sgemv(U_{f,i,c,o}, h_{t-1}); with a batch it
     * widens into a narrow Sgemm over the B h-columns.
     * @param dram_bytes_weights  this cell's share of the layer's
     *        weight-streaming DRAM traffic (cache model applied at layer
     *        granularity).
     */
    gpu::KernelDesc cellSgemv(const LstmLayerShape &shape,
                              double dram_bytes_weights,
                              const KernelBuildCtx &ctx = {}) const;

    /** Per-tissue Sgemm(U_{f,i,c,o}, H_t) over @p tissue_size cells. */
    gpu::KernelDesc tissueSgemm(const LstmLayerShape &shape,
                                std::size_t tissue_size,
                                double dram_bytes_weights,
                                double skip_fraction,
                                const KernelBuildCtx &ctx = {}) const;

    /** Element-wise kernel over @p cells cells' gate vectors. */
    gpu::KernelDesc elementWise(const LstmLayerShape &shape,
                                std::size_t cells,
                                const KernelBuildCtx &ctx = {}) const;

    /**
     * DRS split kernel 1: Sgemv(U_o, h_{t-1}). With ctx.fusedFlags the
     * epilogue also applies sigma and emits the relevance flag per
     * output element.
     */
    gpu::KernelDesc outputGateSgemv(const LstmLayerShape &shape,
                                    double dram_bytes_weights,
                                    const KernelBuildCtx &ctx = {}) const;

    /** DRS threshold/scan kernel (Algorithm 3 line 6). */
    gpu::KernelDesc drsScan(const LstmLayerShape &shape,
                            const KernelBuildCtx &ctx = {}) const;

    /**
     * DRS split kernel 2: Sgemv(U_{f,i,c}, h, R) with @p skip_fraction of
     * rows disabled. @p hw_compacted selects the CRM dataflow (full
     * bandwidth saving) vs the divergent software path. Across a batch a
     * weight row is fetched unless every sequence skips it, so the
     * saved weight traffic shrinks as skip^batch (the cross-sequence
     * analogue of the Section VI-B3 overlap).
     */
    gpu::KernelDesc rowSkipSgemv(const LstmLayerShape &shape,
                                 double dram_bytes_weights,
                                 double skip_fraction, bool hw_compacted,
                                 const KernelBuildCtx &ctx = {}) const;

    /** Inter-cell breakpoint search + link prediction (runtime ops). */
    gpu::KernelDesc relevanceKernel(const LstmLayerShape &shape,
                                    const KernelBuildCtx &ctx = {}) const;

    /** Gathers h/c vectors of a tissue into the batched H_t/C_t. */
    gpu::KernelDesc tissueGather(const LstmLayerShape &shape,
                                 std::size_t tissue_size,
                                 const KernelBuildCtx &ctx = {}) const;

    /** Sparse (zero-pruned) per-cell Sgemv of the comparator scheme. */
    gpu::KernelDesc prunedSgemv(const LstmLayerShape &shape,
                                double dram_bytes_weights,
                                double prune_fraction,
                                const KernelBuildCtx &ctx = {}) const;

    /**
     * Persistent layer kernel (Appleyard-style): one launch covers the
     * whole sequence, with min(U footprint, residency capacity) of the
     * quantized U pinned on chip and charged to DRAM once, and the
     * overflow streamed per wave through the L2 model (reported in
     * KernelDesc::dramResidencyReloadBytes beyond its compulsory first
     * pass). @p waves is the grid-wide synchronisation count: the
     * tissue count when the layer runs the tissue flow, the sequence
     * length for the dense recurrence.
     */
    gpu::KernelDesc persistentLayerKernel(const LstmLayerShape &shape,
                                          gpu::WeightResidency residency,
                                          std::size_t waves,
                                          const KernelBuildCtx &ctx =
                                              {}) const;

    /** Per-layer weight-streaming DRAM traffic (cache model). */
    double layerWeightTraffic(double footprint_bytes,
                              double sweeps) const;

  private:
    const gpu::GpuConfig &cfg_;
};

} // namespace runtime
} // namespace mflstm

#endif // MFLSTM_RUNTIME_LOWERING_HH
