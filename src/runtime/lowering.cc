#include "runtime/lowering.hh"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>

#include "gpu/cache.hh"
#include "gpu/sm.hh"

namespace mflstm {
namespace runtime {

namespace {

constexpr double kFloat = 4.0;  // sizeof(float)

/** Threads per CTA used by all dense kernels in this lowering. */
constexpr unsigned kCta = 128;

unsigned
ctasFor(double threads)
{
    return static_cast<unsigned>(
        std::max(1.0, std::ceil(threads / kCta)));
}

/** Batched kernels carry the batch in their trace name. */
void
tagBatch(gpu::KernelDesc &k, std::size_t batch)
{
    if (batch > 1)
        k.name += " x" + std::to_string(batch);
}

double
checkedBatch(std::size_t batch)
{
    if (batch == 0)
        throw std::invalid_argument("Lowering: batch must be >= 1");
    return static_cast<double>(batch);
}

/**
 * DRAM footprint of a quantized weight block of @p elems elements with
 * @p rows per-row scales: the integer codes plus the fp32 scale stream
 * (which also has to cross the bus once per sweep).
 */
double
weightFootprintBytes(double elems, double rows, quant::QuantMode qm)
{
    const double scale_bytes =
        qm == quant::QuantMode::Fp32 ? 0.0 : rows * kFloat;
    return elems * quant::bytesPerWeight(qm) + scale_bytes;
}

/**
 * Scale-stream fraction of a quantized weight block's DRAM footprint.
 * Streaming compression and row skipping shrink codes and scales
 * together, so the share survives any proportional traffic reduction —
 * which is exactly how the builders apply it to their (possibly
 * compressed) dramWeightBytes for the attribution ledger. On backends
 * with int8 dot-product units (@p dot_units) the per-row scales fold
 * into the accumulator epilogue instead of streaming beside the codes,
 * so no bytes carry the dequant cause: the whole footprint stays
 * attributed to the weight stream and the ledger totals are unchanged.
 */
double
scaleShare(double elems, double rows, quant::QuantMode qm, bool dot_units)
{
    if (qm == quant::QuantMode::Fp32 || dot_units)
        return 0.0;
    const double scale_bytes = rows * kFloat;
    return scale_bytes /
           (elems * quant::bytesPerWeight(qm) + scale_bytes);
}

/** Quantized kernels tag the precision in their trace name. */
void
tagQuant(gpu::KernelDesc &k, quant::QuantMode qm)
{
    if (qm != quant::QuantMode::Fp32)
        k.name += std::string(" [") + quant::toString(qm) + "]";
}

} // anonymous namespace

double
sgemmSharedBytesPerMac(std::size_t hidden_size, std::size_t cols)
{
    if (cols >= 32) {
        // Wide GEMM: 8x8 register blocking amortises shared reads.
        return 1.2;
    }
    // Narrow (per-tissue) GEMM: no column blocking; every MAC pulls its
    // weight operand from shared memory and H_t columns are re-read per
    // row tile. Small hidden sizes double-buffer inside the 64 KB shared
    // memory and avoid some redundant re-reads. Calibrated (jointly with
    // the L2 residency model, which trims small matrices' DRAM time) so
    // the maximum tissue size (Fig. 9) lands at 6 for H < 300 and 5
    // otherwise.
    return hidden_size < 300 ? 5.2 : 6.8;
}

double
sgemvSharedBytesPerMac()
{
    return 4.0;  // only the input vector is staged on chip
}

double
swSkipCoalescedSaving()
{
    // One thread per row: a surviving warp still pulls the transactions
    // covering its skipped neighbours, so only ~15% of a skipped row's
    // bytes leave the bus in the software scheme.
    return 0.15;
}

double
Lowering::layerWeightTraffic(double footprint_bytes, double sweeps) const
{
    return gpu::streamingReuseDramBytes(footprint_bytes, sweeps,
                                        static_cast<double>(cfg_.l2Bytes));
}

gpu::KernelDesc
Lowering::inputSgemm(const LstmLayerShape &shape,
                     const KernelBuildCtx &ctx) const
{
    const quant::QuantMode qm = ctx.quant;
    const double b = checkedBatch(ctx.batch);
    const double h = static_cast<double>(shape.hiddenSize);
    const double e = static_cast<double>(shape.inputSize);
    const double n = static_cast<double>(shape.length);

    const double macs = 4.0 * h * e * n * b;
    const double w_bytes = weightFootprintBytes(4.0 * h * e, 4.0 * h, qm);
    const double in_bytes = n * e * kFloat * b;
    const double out_bytes = n * 4.0 * h * kFloat * b;

    gpu::KernelDesc k;
    k.name = "Sgemm(W_fico, x)";
    k.klass = gpu::KernelClass::Sgemm;
    k.flops = 2.0 * macs;
    k.dramReadBytes = w_bytes + in_bytes;
    k.dramWeightBytes = w_bytes;
    k.weightStream = gpu::WeightStream::W;
    k.dramScaleBytes = w_bytes * scaleShare(4.0 * h * e, 4.0 * h, qm, cfg_.int8DotUnits);
    k.dramWriteBytes = out_bytes;
    k.l2AccessBytes = w_bytes + in_bytes + out_bytes;
    k.sharedBytes =
        macs * sgemmSharedBytesPerMac(shape.hiddenSize,
                                      shape.length * ctx.batch);
    if (qm != quant::QuantMode::Fp32)
        k.quantWeightElems = 4.0 * h * e;
    k.threadsPerCta = kCta;
    k.ctas = ctasFor(4.0 * h * n * b);
    k.syncsPerCta = 4;
    tagQuant(k, qm);
    tagBatch(k, ctx.batch);
    return k;
}

gpu::KernelDesc
Lowering::cellSgemv(const LstmLayerShape &shape,
                    double dram_bytes_weights,
                    const KernelBuildCtx &ctx) const
{
    const quant::QuantMode qm = ctx.quant;
    const double b = checkedBatch(ctx.batch);
    const double h = static_cast<double>(shape.hiddenSize);
    const double macs = 4.0 * h * h * b;
    const double vec_bytes = 5.0 * h * kFloat * b;  // h in, 4H out

    gpu::KernelDesc k;
    k.name = "Sgemv(U_fico, h)";
    k.klass = gpu::KernelClass::Sgemv;
    k.flops = 2.0 * macs;
    // The weight stream is fetched once and feeds every batch column.
    k.dramReadBytes = dram_bytes_weights + h * kFloat * b;
    k.dramWeightBytes = dram_bytes_weights;
    k.weightStream = gpu::WeightStream::U;
    k.dramScaleBytes =
        dram_bytes_weights * scaleShare(4.0 * h * h, 4.0 * h, qm, cfg_.int8DotUnits);
    k.dramWriteBytes = 4.0 * h * kFloat * b;
    k.l2AccessBytes =
        weightFootprintBytes(4.0 * h * h, 4.0 * h, qm) + vec_bytes;
    if (qm != quant::QuantMode::Fp32)
        k.quantWeightElems = 4.0 * h * h;
    // With B > 1 the kernel widens into a narrow Sgemm over the B
    // h-columns and inherits its shared-memory behaviour.
    k.sharedBytes =
        ctx.batch > 1
            ? macs * sgemmSharedBytesPerMac(shape.hiddenSize, ctx.batch)
            : macs * sgemvSharedBytesPerMac();
    k.threadsPerCta = kCta;
    k.ctas = ctasFor(4.0 * h * b);
    k.syncsPerCta = 2;
    tagQuant(k, qm);
    tagBatch(k, ctx.batch);
    return k;
}

gpu::KernelDesc
Lowering::tissueSgemm(const LstmLayerShape &shape, std::size_t tissue_size,
                      double dram_bytes_weights, double skip_fraction,
                      const KernelBuildCtx &ctx) const
{
    const quant::QuantMode qm = ctx.quant;
    const double b = checkedBatch(ctx.batch);
    const double h = static_cast<double>(shape.hiddenSize);
    const double tk = static_cast<double>(tissue_size);
    const double keep = 1.0 - skip_fraction;
    const double macs = 4.0 * h * h * tk * b;

    gpu::KernelDesc k;
    k.name = "Sgemm(U_fico, H_t)";
    k.klass = gpu::KernelClass::Sgemm;
    // With DRS inside the tissue, skipped rows drop their compute and
    // on-chip traffic; the weight load is shared across cells (and
    // batch columns) and only disappears for rows trivial in *every*
    // cell of every sequence — the paper's "overlap" between the two
    // optimisations (Section VI-B3).
    const double all_skip = std::pow(skip_fraction, tk * b);
    const double weight_bytes =
        dram_bytes_weights * (1.0 - 0.75 * all_skip);
    k.flops = 2.0 * macs * keep;
    k.dramReadBytes = weight_bytes + tk * h * kFloat * b;
    k.dramWeightBytes = weight_bytes;
    k.weightStream = gpu::WeightStream::U;
    k.dramScaleBytes =
        weight_bytes * scaleShare(4.0 * h * h, 4.0 * h, qm, cfg_.int8DotUnits);
    k.dramWriteBytes = tk * 4.0 * h * kFloat * b;
    k.l2AccessBytes = weightFootprintBytes(4.0 * h * h, 4.0 * h, qm) +
                      tk * 5.0 * h * kFloat * b;
    k.sharedBytes = macs * keep *
                    sgemmSharedBytesPerMac(shape.hiddenSize,
                                           tissue_size * ctx.batch);
    if (qm != quant::QuantMode::Fp32)
        k.quantWeightElems = 4.0 * h * h * (1.0 - 0.75 * all_skip);
    k.threadsPerCta = kCta;
    k.ctas = ctasFor(4.0 * h * tk * b);
    k.syncsPerCta = 4;
    if (skip_fraction > 0.0) {
        k.hasRowSkipArg = true;
        k.disabledThreads = static_cast<unsigned>(
            skip_fraction * 3.0 * h * tk * b);
    }
    tagQuant(k, qm);
    tagBatch(k, ctx.batch);
    return k;
}

gpu::KernelDesc
Lowering::elementWise(const LstmLayerShape &shape, std::size_t cells,
                      const KernelBuildCtx &ctx) const
{
    const double b = checkedBatch(ctx.batch);
    const double h = static_cast<double>(shape.hiddenSize);
    const double elems = h * static_cast<double>(cells) * b;
    const double bytes = 7.0 * elems * kFloat;  // gates + c in/out + h

    gpu::KernelDesc k;
    k.name = "lstm_ew";
    k.klass = gpu::KernelClass::ElementWise;
    k.flops = 25.0 * elems;  // activations + state update per element
    // Inputs were just produced by the preceding GEMM kernels and are
    // still L2-resident; only spill traffic reaches DRAM.
    k.dramReadBytes = 0.1 * bytes;
    k.dramWriteBytes = 0.1 * bytes;
    k.dramSpillBytes = k.dramReadBytes + k.dramWriteBytes;
    k.l2AccessBytes = bytes;
    k.sharedBytes = 0.0;
    k.threadsPerCta = kCta;
    k.ctas = ctasFor(elems);
    k.syncsPerCta = 0;
    tagBatch(k, ctx.batch);
    return k;
}

gpu::KernelDesc
Lowering::outputGateSgemv(const LstmLayerShape &shape,
                          double dram_bytes_weights,
                          const KernelBuildCtx &ctx) const
{
    const quant::QuantMode qm = ctx.quant;
    const double b = checkedBatch(ctx.batch);
    const double h = static_cast<double>(shape.hiddenSize);
    const double macs = h * h * b;

    gpu::KernelDesc k;
    k.name = ctx.fusedFlags ? "Sgemv(U_o, h)+flags" : "Sgemv(U_o, h)";
    k.klass = gpu::KernelClass::Sgemv;
    k.flops = 2.0 * macs;
    k.dramReadBytes = dram_bytes_weights + h * kFloat * b;
    k.dramWeightBytes = dram_bytes_weights;
    k.weightStream = gpu::WeightStream::U;
    k.dramScaleBytes = dram_bytes_weights * scaleShare(h * h, h, qm, cfg_.int8DotUnits);
    k.dramWriteBytes = h * kFloat * b;
    k.l2AccessBytes = weightFootprintBytes(h * h, h, qm) +
                      2.0 * h * kFloat * b;
    if (ctx.fusedFlags) {
        // sigma(o) + compare against alpha per element, one flag byte
        // out: noise next to the h^2 reduction.
        k.flops += 6.0 * h * b;
        k.dramWriteBytes += h * b;
        k.dramCrmMetaBytes = h * b;
        k.l2AccessBytes += h * b;
    }
    if (qm != quant::QuantMode::Fp32)
        k.quantWeightElems = h * h;
    k.sharedBytes =
        ctx.batch > 1
            ? macs * sgemmSharedBytesPerMac(shape.hiddenSize, ctx.batch)
            : macs * sgemvSharedBytesPerMac();
    k.threadsPerCta = kCta;
    k.ctas = ctasFor(h * b);
    k.syncsPerCta = 2;
    tagQuant(k, qm);
    tagBatch(k, ctx.batch);
    return k;
}

gpu::KernelDesc
Lowering::drsScan(const LstmLayerShape &shape,
                  const KernelBuildCtx &ctx) const
{
    const double b = checkedBatch(ctx.batch);
    const double h = static_cast<double>(shape.hiddenSize);

    gpu::KernelDesc k;
    k.name = "DRS(o_t, alpha, R)";
    k.klass = gpu::KernelClass::Drs;
    k.flops = 3.0 * h * b;  // compare + flag + compacting scan
    k.dramReadBytes = 0.0;
    k.dramWriteBytes = 0.0;
    k.l2AccessBytes = 2.0 * h * kFloat * b;
    k.threadsPerCta = kCta;
    k.ctas = ctasFor(h * b);
    k.syncsPerCta = 1;
    tagBatch(k, ctx.batch);
    return k;
}

gpu::KernelDesc
Lowering::rowSkipSgemv(const LstmLayerShape &shape,
                       double dram_bytes_weights, double skip_fraction,
                       bool hw_compacted, const KernelBuildCtx &ctx) const
{
    if (skip_fraction < 0.0 || skip_fraction > 1.0)
        throw std::invalid_argument("rowSkipSgemv: bad skip fraction");

    const quant::QuantMode qm = ctx.quant;
    const double b = checkedBatch(ctx.batch);
    const double h = static_cast<double>(shape.hiddenSize);
    const double keep = 1.0 - skip_fraction;
    const double macs = 3.0 * h * h * b;
    // A weight row stays on the bus unless every sequence in the batch
    // skips it (each sequence computes its own R from its own o_t).
    const double all_skip =
        ctx.batch > 1 ? std::pow(skip_fraction, b) : skip_fraction;

    gpu::KernelDesc k;
    k.name = "Sgemv(U_fic, h, R)";
    k.klass = gpu::KernelClass::Sgemv;
    k.flops = 2.0 * macs * keep;  // skipped rows are never computed
    k.hasRowSkipArg = true;
    k.disabledThreads =
        static_cast<unsigned>(std::round(skip_fraction * 3.0 * h * b));
    k.threadsPerCta = kCta;
    k.ctas = ctasFor(3.0 * h * b);
    k.syncsPerCta = 2;

    if (hw_compacted) {
        // CRM-compacted grid: skipped rows vanish from both the issue
        // stage and the memory stream.
        k.dramWeightBytes = dram_bytes_weights * (1.0 - all_skip);
        k.dramReadBytes = k.dramWeightBytes + h * kFloat * b;
        k.sharedBytes = macs * keep * sgemvSharedBytesPerMac();
        k.divergenceFactor = 1.0;
    } else {
        // Software path: divergent warps, and skipped rows' bytes mostly
        // still cross the bus (transaction granularity).
        const double saving = swSkipCoalescedSaving() * all_skip;
        k.dramWeightBytes = dram_bytes_weights * (1.0 - saving);
        k.dramReadBytes = k.dramWeightBytes + h * kFloat * b;
        k.sharedBytes = macs * keep * sgemvSharedBytesPerMac();
        k.divergenceFactor = 1.0 + 1.2 * skip_fraction;
    }
    k.weightStream = gpu::WeightStream::U;
    k.dramScaleBytes =
        k.dramWeightBytes * scaleShare(3.0 * h * h, 3.0 * h, qm, cfg_.int8DotUnits);
    k.dramWriteBytes = 3.0 * h * kFloat * b;
    k.l2AccessBytes =
        weightFootprintBytes(3.0 * h * h, 3.0 * h, qm) *
            (hw_compacted ? keep : 1.0) +
        4.0 * h * kFloat * b;
    // Skipped rows are never dequantized: the convert happens inside
    // the surviving rows' FMA streams on both the CRM and sw paths.
    if (qm != quant::QuantMode::Fp32)
        k.quantWeightElems = 3.0 * h * h * keep;
    tagQuant(k, qm);
    tagBatch(k, ctx.batch);
    return k;
}

gpu::KernelDesc
Lowering::relevanceKernel(const LstmLayerShape &shape,
                          const KernelBuildCtx &ctx) const
{
    const double b = checkedBatch(ctx.batch);
    const double h = static_cast<double>(shape.hiddenSize);
    const double n = static_cast<double>(shape.length);

    gpu::KernelDesc k;
    k.name = "relevance+predict";
    k.klass = gpu::KernelClass::Relevance;
    // Algorithm 2 per cell: a handful of ops per hidden element using
    // the precomputed row sums D and the Sgemm outputs X'. Pure
    // per-sequence runtime work — it scales with the batch.
    k.flops = 30.0 * h * n * b;
    k.dramReadBytes = 0.5 * n * 4.0 * h * kFloat * b;
    k.dramWriteBytes = n * kFloat * b;
    // The per-cell relevance curve is metadata of the breakpoint
    // search, not activation data the next kernel consumes.
    k.dramCrmMetaBytes = k.dramWriteBytes;
    k.l2AccessBytes = (n * 4.0 * h * kFloat + 4.0 * h * kFloat) * b;
    k.threadsPerCta = kCta;
    k.ctas = ctasFor(n * h * b / 32.0);
    k.syncsPerCta = 1;
    tagBatch(k, ctx.batch);
    return k;
}

gpu::KernelDesc
Lowering::tissueGather(const LstmLayerShape &shape,
                       std::size_t tissue_size,
                       const KernelBuildCtx &ctx) const
{
    const double b = checkedBatch(ctx.batch);
    const double h = static_cast<double>(shape.hiddenSize);
    const double tk = static_cast<double>(tissue_size);

    gpu::KernelDesc k;
    k.name = "gather(H_t, C_t)";
    k.klass = gpu::KernelClass::Other;
    k.flops = 0.0;
    k.l2AccessBytes = 4.0 * tk * h * kFloat * b;  // h and c, read + write
    k.dramReadBytes = 0.0;
    k.dramWriteBytes = 0.0;
    k.threadsPerCta = kCta;
    k.ctas = ctasFor(tk * h * b);
    tagBatch(k, ctx.batch);
    return k;
}

gpu::KernelDesc
Lowering::persistentLayerKernel(const LstmLayerShape &shape,
                                gpu::WeightResidency residency,
                                std::size_t waves,
                                const KernelBuildCtx &ctx) const
{
    if (residency == gpu::WeightResidency::None)
        throw std::invalid_argument(
            "persistentLayerKernel: residency must be shared or regfile");
    if (waves == 0)
        throw std::invalid_argument(
            "persistentLayerKernel: zero waves");

    const quant::QuantMode qm = ctx.quant;
    const double b = checkedBatch(ctx.batch);
    const double h = static_cast<double>(shape.hiddenSize);
    const double n = static_cast<double>(shape.length);
    const double w = static_cast<double>(waves);

    const double macs = 4.0 * h * h * n * b;
    // Quantized U footprint: codes + the per-row fp32 scales. The
    // resident share crosses the bus exactly once per sequence; the
    // overflow streams per wave through the same L2 model every other
    // flow uses.
    const double footprint =
        weightFootprintBytes(4.0 * h * h, 4.0 * h, qm);
    const double capacity = gpu::residencyCapacityBytes(cfg_, residency);
    const double resident = std::min(footprint, capacity);
    const double spill = footprint - resident;
    const double spill_traffic = layerWeightTraffic(spill, w);
    // Re-streaming beyond the overflow's compulsory first fetch — the
    // bytes on-chip residency failed to keep (ledger: residency-reload).
    const double reload = std::max(0.0, spill_traffic - spill);
    const double weight_bytes = resident + spill_traffic;
    const double act_in = n * h * kFloat * b;    // x' rows (gate inputs
                                                 // come precomputed from
                                                 // the input Sgemm)
    const double act_out = n * h * kFloat * b;   // h_t stream

    gpu::KernelDesc k;
    k.name = "persistent(U_fico)";
    k.name += std::string(" [") + gpu::toString(residency) + "]";
    k.klass = gpu::KernelClass::Persistent;
    // The recurrence plus the fused element-wise epilogue: no separate
    // lstm_ew kernels launch for a persistent layer.
    k.flops = 2.0 * macs + 25.0 * h * n * b;
    k.dramReadBytes = weight_bytes + act_in;
    k.dramWriteBytes = act_out;
    k.dramWeightBytes = weight_bytes;
    k.weightStream = gpu::WeightStream::U;
    // Scales quantize per row and stream with their codes on the
    // compulsory pass; the reload share is attributed whole to the
    // residency-reload cause, so the scale stream is sized on the
    // first-fetch bytes only (keeps the ledger sub-streams disjoint).
    k.dramScaleBytes = footprint * scaleShare(4.0 * h * h, 4.0 * h, qm, cfg_.int8DotUnits);
    k.dramResidencyReloadBytes = reload;
    // Gate vectors and h/c state live on chip between waves; the L2
    // sees the weight fetches plus the per-wave state round trips.
    k.l2AccessBytes = weight_bytes + n * 7.0 * h * kFloat * b;
    // Regfile residency feeds the FMAs straight from registers; shared
    // residency re-reads every weight once per use from shared memory
    // on top of the operand staging.
    k.sharedBytes =
        residency == gpu::WeightResidency::Shared ? macs * 5.0
                                                  : macs * 1.0;
    if (qm != quant::QuantMode::Fp32) {
        // Resident codes dequantize once per sequence — the point of
        // pinning them; only re-streamed overflow converts again.
        k.quantWeightElems = 4.0 * h * h * (weight_bytes / footprint);
    }
    k.residency = residency;
    k.residencyPinnedBytes = resident;
    k.threadsPerCta = kCta;
    // A persistent grid is sized to what the machine can keep resident,
    // not to the problem: every CTA must stay scheduled for the whole
    // sequence, so the grid is capped at the concurrent-CTA budget.
    const unsigned concurrent =
        cfg_.numSms * std::max(1u, std::min(cfg_.maxCtasPerSm,
                                            cfg_.maxThreadsPerSm / kCta));
    k.ctas = std::min(ctasFor(4.0 * h * b), concurrent);
    // One grid-wide barrier per wave keeps the recurrence ordered.
    k.syncsPerCta = static_cast<unsigned>(waves);
    tagQuant(k, qm);
    tagBatch(k, ctx.batch);
    return k;
}

gpu::KernelDesc
Lowering::prunedSgemv(const LstmLayerShape &shape,
                      double dram_bytes_weights, double prune_fraction,
                      const KernelBuildCtx &ctx) const
{
    const double b = checkedBatch(ctx.batch);
    const double h = static_cast<double>(shape.hiddenSize);
    const double keep = 1.0 - prune_fraction;
    const double macs = 4.0 * h * h * b;

    gpu::KernelDesc k;
    k.name = "SpMV(U_pruned, h)";
    k.klass = gpu::KernelClass::Sgemv;
    k.flops = 2.0 * macs * keep;
    // @p dram_bytes_weights is the per-cell share of the *pruned,
    // CSR-encoded* footprint's streaming traffic; the caller sizes it.
    k.dramReadBytes = dram_bytes_weights + h * kFloat * b;
    k.dramWeightBytes = dram_bytes_weights;
    // CSR values + column indices both stream the pruned U matrix.
    k.weightStream = gpu::WeightStream::U;
    k.dramWriteBytes = 4.0 * h * kFloat * b;
    k.l2AccessBytes = 4.0 * h * h * kFloat * keep * 1.5 +
                      5.0 * h * kFloat * b;
    k.sharedBytes = macs * keep * sgemvSharedBytesPerMac();
    k.coalescingFactor = 1.55;
    k.divergenceFactor = 1.6;
    k.threadsPerCta = kCta;
    k.ctas = ctasFor(4.0 * h * b);
    k.syncsPerCta = 2;
    tagBatch(k, ctx.batch);
    return k;
}

void
Lowering::lowerLayer(const LstmLayerShape &shape,
                     const ExecutionPlan &plan, std::size_t layer_index,
                     gpu::KernelTrace &out, std::size_t batch) const
{
    checkedBatch(batch);

    // Resolve the plan to this layer's explicit schedule (canonical
    // preset derivation when the plan carries no decisions) and emit
    // from it alone — the single dispatch path of DESIGN.md §14.
    LayerSchedule ls = plan.layerSchedule(layer_index);
    ls.validate();
    const std::size_t eff_batch = ls.batch ? ls.batch : batch;
    checkedBatch(eff_batch);

    const quant::QuantMode qm = ls.quant;
    const KernelBuildCtx ctx{eff_batch, qm, false};
    const double h = static_cast<double>(shape.hiddenSize);
    const double n = static_cast<double>(shape.length);
    // The U footprint that actually crosses the bus: quantized layers
    // stream integer codes plus the per-row fp32 scales (the CSR
    // comparator always stays fp32, enforced by LayerSchedule).
    const double u_bytes = weightFootprintBytes(4.0 * h * h, 4.0 * h, qm);

    // Provenance tags consumed by the observability timeline.
    const int li = static_cast<int>(layer_index);
    const auto push = [&](gpu::KernelDesc k, int timestep = -1,
                          int tissue = -1) {
        k.layer = li;
        k.timestep = timestep;
        k.tissue = tissue;
        out.push_back(std::move(k));
    };

    push(inputSgemm(shape, ctx));

    if (ls.prunedCsr) {
        // CSR storage: surviving values + 4 B column indices (1.5x the
        // surviving value bytes).
        const double pruned_footprint =
            u_bytes * (1.0 - ls.pruneFraction) * 1.5;
        const double traffic = layerWeightTraffic(pruned_footprint, n);
        for (std::size_t t = 0; t < shape.length; ++t) {
            const int ts = static_cast<int>(t);
            push(prunedSgemv(shape, traffic / n, ls.pruneFraction, ctx),
                 ts);
            push(elementWise(shape, 1, ctx), ts);
        }
        return;
    }

    if (ls.persistent()) {
        // Persistent flow: one kernel per layer keeps the resident
        // share of U on chip across every wave of the sequence. With a
        // tissue schedule the waves are the DRS-relaxed tissue waves
        // (the breakpoint search still runs to find them); without one
        // the recurrence synchronises per timestep.
        std::size_t waves = shape.length;
        if (ls.usesTissues()) {
            if (std::accumulate(ls.tissueSizes.begin(),
                                ls.tissueSizes.end(),
                                std::size_t{0}) != shape.length)
                throw std::invalid_argument(
                    "lowerLayer: tissue sizes do not cover the layer");
            waves = ls.tissueSizes.size();
            push(relevanceKernel(shape, ctx));
        }
        push(persistentLayerKernel(shape, ls.residency, waves, ctx));
        return;
    }

    // A layer the breakpoint search could not divide (all tissues of
    // size 1) gains nothing from the tissue flow but would pay its
    // per-tissue kernel overheads; usesTissues() falls back to the
    // per-cell flow.
    if (ls.usesTissues()) {
        const std::vector<std::size_t> &sizes = ls.tissueSizes;
        if (std::accumulate(sizes.begin(), sizes.end(),
                            std::size_t{0}) != shape.length)
            throw std::invalid_argument(
                "lowerLayer: tissue sizes do not cover the layer");

        push(relevanceKernel(shape, ctx));

        const double tissues = static_cast<double>(sizes.size());
        const double traffic = layerWeightTraffic(u_bytes, tissues);
        int cell = 0;
        int ti = 0;
        for (std::size_t tissue : sizes) {
            push(tissueGather(shape, tissue, ctx), cell, ti);
            if (ls.skipActive()) {
                // Combined flow: per-tissue U_o Sgemm (whose epilogue
                // applies sigma and emits relevance flags -- DRS inside
                // a tissue always dispatches through the CRM, which
                // compacts them in hardware), then the row-skipped
                // U_fic Sgemm.
                const double flag_elems =
                    h * static_cast<double>(tissue * eff_batch);
                gpu::KernelDesc uo =
                    tissueSgemm(shape, tissue, 0.0, 0.0, ctx);
                uo.name = "Sgemm(U_o, H_t)+flags";
                tagQuant(uo, qm);
                tagBatch(uo, eff_batch);
                uo.flops *= 0.25;
                uo.dramReadBytes = traffic / tissues * 0.25;
                uo.dramWeightBytes = uo.dramReadBytes;
                // The builder saw zero weight traffic; re-derive the
                // attribution sub-streams from the overridden figures
                // or the ledger's conservation check trips.
                uo.dramScaleBytes =
                    uo.dramWeightBytes * scaleShare(h * h, h, qm, cfg_.int8DotUnits);
                uo.sharedBytes *= 0.25;
                uo.l2AccessBytes *= 0.25;
                uo.quantWeightElems *= 0.25;
                uo.ctas = std::max(1u, uo.ctas / 4);
                uo.flops += 6.0 * flag_elems;
                uo.dramWriteBytes += flag_elems;
                uo.dramCrmMetaBytes = flag_elems;
                uo.l2AccessBytes += flag_elems;
                push(std::move(uo), cell, ti);

                gpu::KernelDesc fic =
                    tissueSgemm(shape, tissue, traffic / tissues * 0.75,
                                ls.skipFraction, ctx);
                fic.name = "Sgemm(U_fic, H_t, R)";
                tagQuant(fic, qm);
                tagBatch(fic, eff_batch);
                fic.flops *= 0.75;
                fic.sharedBytes *= 0.75;
                fic.l2AccessBytes *= 0.75;
                fic.quantWeightElems *= 0.75;
                push(std::move(fic), cell, ti);
            } else {
                push(tissueSgemm(shape, tissue, traffic / tissues, 0.0,
                                 ctx),
                     cell, ti);
            }
            push(elementWise(shape, tissue, ctx), cell, ti);
            cell += static_cast<int>(tissue);
            ++ti;
        }
        return;
    }

    if (ls.skipActive()) {
        // Algorithm 3, per cell.
        const bool hw = ls.skipPath == SkipPath::HwCrm;
        const bool fused = ls.flagFusion == FlagFusion::FusedEpilogue;
        const double uo_traffic = layerWeightTraffic(u_bytes * 0.25, n);
        const double fic_traffic = layerWeightTraffic(u_bytes * 0.75, n);
        KernelBuildCtx fctx = ctx;
        fctx.fusedFlags = true;
        for (std::size_t t = 0; t < shape.length; ++t) {
            const int ts = static_cast<int>(t);
            if (fused) {
                // Fused flag epilogue (Section V-B for hw-crm; on the
                // software path a searched fusion): the U_o epilogue
                // applies sigma and writes raw relevance flags, so the
                // standalone scan kernel and its extra element-wise
                // pass never launch. With the CRM the prefix-sum
                // datapath compacts the flags in the dispatch stage
                // (priced as crmCycles by the GMU model); the software
                // path keeps its divergent warps.
                push(outputGateSgemv(shape, uo_traffic / n, fctx), ts);
                push(rowSkipSgemv(shape, fic_traffic / n,
                                  ls.skipFraction, hw, ctx),
                     ts);
                push(elementWise(shape, 1, ctx), ts);
            } else {
                push(outputGateSgemv(shape, uo_traffic / n, ctx), ts);
                push(elementWise(shape, 1, ctx), ts);
                push(drsScan(shape, ctx), ts);
                push(rowSkipSgemv(shape, fic_traffic / n,
                                  ls.skipFraction, hw, ctx),
                     ts);
                push(elementWise(shape, 1, ctx), ts);
            }
        }
        return;
    }

    // Baseline: Algorithm 1.
    const double traffic = layerWeightTraffic(u_bytes, n);
    for (std::size_t t = 0; t < shape.length; ++t) {
        const int ts = static_cast<int>(t);
        push(cellSgemv(shape, traffic / n, ctx), ts);
        push(elementWise(shape, 1, ctx), ts);
    }
}

gpu::KernelTrace
Lowering::lower(const NetworkShape &shape, const ExecutionPlan &plan,
                std::size_t batch, std::size_t first_layer_index) const
{
    gpu::KernelTrace trace;
    for (std::size_t l = 0; l < shape.layers.size(); ++l)
        lowerLayer(shape.layers[l], plan, first_layer_index + l, trace,
                   batch);
    return trace;
}

} // namespace runtime
} // namespace mflstm
