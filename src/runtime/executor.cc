#include "runtime/executor.hh"

#include <stdexcept>
#include <string>

namespace mflstm {
namespace runtime {

double
speedup(const RunReport &base, const RunReport &opt)
{
    if (opt.result.timeUs <= 0.0)
        throw std::invalid_argument("speedup: zero optimized time");
    return base.result.timeUs / opt.result.timeUs;
}

double
energySavingPct(const RunReport &base, const RunReport &opt)
{
    const double base_j = base.result.energy.totalJ();
    if (base_j <= 0.0)
        throw std::invalid_argument("energySavingPct: zero base energy");
    return 100.0 * (1.0 - opt.result.energy.totalJ() / base_j);
}

RunReport
NetworkExecutor::run(const RunRequest &req) const
{
    if (req.batch == 0)
        throw std::invalid_argument("NetworkExecutor: batch must be >= 1");
    if (req.shape.layers.empty())
        throw std::invalid_argument("NetworkExecutor: empty shape");
    if (preRunHook_)
        preRunHook_(req);

    const char *kind = toString(req.plan.kind);
    gpu::Simulator sim(cfg_, req.plan.usesCrmHardware(), obs_, ledger_);
    RunReport report;
    report.kind = req.plan.kind;
    report.batch = req.batch;

    gpu::KernelTrace trace;
    {
        auto ph = obs::Observer::phase(
            obs_, std::string("lower:") + kind);
        trace = lowering_.lower(req.shape, req.plan, req.batch,
                                req.firstLayerIndex);
    }

    const double gpu_start =
        obs_ ? obs_->tracer().simCursorUs() : 0.0;
    {
        auto ph = obs::Observer::phase(
            obs_, std::string("simulate:") + kind);
        report.result = sim.runTrace(trace);
    }

    if (obs_) {
        obs_->metrics().counter("executor.runs").add(1.0);
        // Enclosing run span on its own GPU track, so the timeline shows
        // where each plan's kernels start and end.
        const int run_track = static_cast<int>(cfg_.numSms);
        obs_->tracer().setTrackName(obs::SpanTracer::kGpuPid, run_track,
                                    "runs");
        obs::TraceSpan span;
        span.name = req.batch > 1 ? std::string(kind) + " x" +
                                        std::to_string(req.batch)
                                  : std::string(kind);
        span.category = "run";
        span.pid = obs::SpanTracer::kGpuPid;
        span.tid = run_track;
        span.startUs = gpu_start;
        span.durUs = obs_->tracer().simCursorUs() - gpu_start;
        obs_->tracer().record(std::move(span));
    }
    return report;
}

RunReport
NetworkExecutor::run(const NetworkShape &shape,
                     const ExecutionPlan &plan) const
{
    return run(RunRequest::network(shape, plan));
}

RunReport
NetworkExecutor::runLayer(const LstmLayerShape &layer,
                          const ExecutionPlan &plan,
                          std::size_t layer_index) const
{
    return run(RunRequest::layer(layer, plan, layer_index));
}

} // namespace runtime
} // namespace mflstm
