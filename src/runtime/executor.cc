#include "runtime/executor.hh"

#include <stdexcept>

namespace mflstm {
namespace runtime {

double
speedup(const RunReport &base, const RunReport &opt)
{
    if (opt.result.timeUs <= 0.0)
        throw std::invalid_argument("speedup: zero optimized time");
    return base.result.timeUs / opt.result.timeUs;
}

double
energySavingPct(const RunReport &base, const RunReport &opt)
{
    const double base_j = base.result.energy.totalJ();
    if (base_j <= 0.0)
        throw std::invalid_argument("energySavingPct: zero base energy");
    return 100.0 * (1.0 - opt.result.energy.totalJ() / base_j);
}

RunReport
NetworkExecutor::run(const NetworkShape &shape,
                     const ExecutionPlan &plan) const
{
    gpu::Simulator sim(cfg_, plan.usesCrmHardware());
    RunReport report;
    report.kind = plan.kind;
    report.result = sim.runTrace(lowering_.lower(shape, plan));
    return report;
}

RunReport
NetworkExecutor::runLayer(const LstmLayerShape &layer,
                          const ExecutionPlan &plan,
                          std::size_t layer_index) const
{
    gpu::Simulator sim(cfg_, plan.usesCrmHardware());
    gpu::KernelTrace trace;
    lowering_.lowerLayer(layer, plan, layer_index, trace);

    RunReport report;
    report.kind = plan.kind;
    report.result = sim.runTrace(trace);
    return report;
}

} // namespace runtime
} // namespace mflstm
