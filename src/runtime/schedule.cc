#include "runtime/schedule.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mflstm {
namespace runtime {

const char *
toString(SkipPath path)
{
    switch (path) {
      case SkipPath::Off:
        return "off";
      case SkipPath::Software:
        return "sw";
      case SkipPath::HwCrm:
        return "hw-crm";
    }
    return "unknown";
}

const char *
toString(FlagFusion fusion)
{
    switch (fusion) {
      case FlagFusion::Standalone:
        return "standalone";
      case FlagFusion::FusedEpilogue:
        return "fused-epilogue";
    }
    return "unknown";
}

std::optional<SkipPath>
parseSkipPath(const std::string &s)
{
    if (s == "off")
        return SkipPath::Off;
    if (s == "sw")
        return SkipPath::Software;
    if (s == "hw-crm")
        return SkipPath::HwCrm;
    return std::nullopt;
}

std::optional<FlagFusion>
parseFlagFusion(const std::string &s)
{
    if (s == "standalone")
        return FlagFusion::Standalone;
    if (s == "fused-epilogue")
        return FlagFusion::FusedEpilogue;
    return std::nullopt;
}

std::optional<WeightResidency>
parseWeightResidency(const std::string &s)
{
    if (s == "none")
        return WeightResidency::None;
    if (s == "shared")
        return WeightResidency::Shared;
    if (s == "regfile")
        return WeightResidency::Regfile;
    return std::nullopt;
}

bool
LayerSchedule::usesTissues() const
{
    if (tissueSizes.empty())
        return false;
    return *std::max_element(tissueSizes.begin(), tissueSizes.end()) > 1;
}

void
LayerSchedule::validate() const
{
    if (!std::isfinite(skipFraction) || skipFraction < 0.0 ||
        skipFraction > 1.0)
        throw std::invalid_argument(
            "LayerSchedule: skipFraction outside [0, 1]");
    if (!std::isfinite(pruneFraction) || pruneFraction < 0.0 ||
        pruneFraction > 1.0)
        throw std::invalid_argument(
            "LayerSchedule: pruneFraction outside [0, 1]");
    if (skipPath == SkipPath::HwCrm &&
        flagFusion != FlagFusion::FusedEpilogue)
        throw std::invalid_argument(
            "LayerSchedule: the CRM consumes raw flags from the fused "
            "U_o epilogue (hw-crm requires fused-epilogue)");
    if (usesTissues() && skipActive() && skipPath != SkipPath::HwCrm)
        throw std::invalid_argument(
            "LayerSchedule: DRS inside a tissue dispatches through the "
            "CRM (tissues + skip require hw-crm)");
    if (prunedCsr) {
        if (!tissueSizes.empty() || skipPath != SkipPath::Off)
            throw std::invalid_argument(
                "LayerSchedule: the CSR comparator flow composes with "
                "neither tissues nor DRS");
        if (quant != quant::QuantMode::Fp32)
            throw std::invalid_argument(
                "LayerSchedule: the CSR comparator is defined on fp32 "
                "weights");
    } else if (pruneFraction != 0.0) {
        throw std::invalid_argument(
            "LayerSchedule: pruneFraction without the prunedCsr flow");
    }
    if (persistent()) {
        if (skipPath != SkipPath::Off)
            throw std::invalid_argument(
                "LayerSchedule: DRS re-dispatches per-wave grids through "
                "the GMU, but a persistent layer launches once "
                "(residency requires skipPath off)");
        if (prunedCsr)
            throw std::invalid_argument(
                "LayerSchedule: the CSR comparator's gather-indexed rows "
                "cannot be pinned as a dense resident block (residency "
                "excludes prunedCsr)");
    }
}

void
ScheduleDecisions::validate() const
{
    for (std::size_t l = 0; l < layers.size(); ++l) {
        try {
            layers[l].validate();
        } catch (const std::invalid_argument &e) {
            throw std::invalid_argument(
                "ScheduleDecisions: layer " + std::to_string(l) + ": " +
                e.what());
        }
    }
}

} // namespace runtime
} // namespace mflstm
