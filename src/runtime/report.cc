#include "runtime/report.hh"

#include <ostream>
#include <sstream>

#include "obs/json.hh"

namespace mflstm {
namespace runtime {

namespace {

void
appendLine(std::ostringstream &os, const char *key, double value,
           const char *unit)
{
    os << "  " << key << value << unit << "\n";
}

} // anonymous namespace

std::string
formatRunReport(const RunReport &report)
{
    const gpu::TraceResult &r = report.result;
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(2);

    os << "plan: " << toString(report.kind) << "\n";
    appendLine(os, "wall time          ", r.timeUs / 1e3, " ms");
    appendLine(os, "kernels            ",
               static_cast<double>(r.kernelCount), "");
    appendLine(os, "DRAM traffic       ", r.dramBytes / 1e6, " MB");
    appendLine(os, "shared traffic     ", r.sharedBytes / 1e6, " MB");
    appendLine(os, "DRAM utilisation   ", 100.0 * r.dramUtilization,
               " %");
    appendLine(os, "shared utilisation ", 100.0 * r.sharedUtilization,
               " %");
    appendLine(os, "energy             ", r.energy.totalJ() * 1e3,
               " mJ");
    os << "  time by kernel class:\n";
    for (const auto &[klass, us] : r.timePerClassUs) {
        os << "    " << gpu::toString(klass) << ": " << us / 1e3
           << " ms (" << 100.0 * r.classShare(klass) << " %)\n";
    }
    return os.str();
}

std::string
formatComparison(const RunReport &base, const RunReport &opt)
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(2);
    os << toString(opt.kind) << " vs " << toString(base.kind) << ":\n";
    os << "  time    " << base.result.timeUs / 1e3 << " ms -> "
       << opt.result.timeUs / 1e3 << " ms  (" << speedup(base, opt)
       << "x)\n";
    os << "  energy  " << base.result.energy.totalJ() * 1e3
       << " mJ -> " << opt.result.energy.totalJ() * 1e3 << " mJ  ("
       << energySavingPct(base, opt) << " % saved)\n";
    os << "  DRAM    " << base.result.dramBytes / 1e6 << " MB -> "
       << opt.result.dramBytes / 1e6 << " MB\n";
    return os.str();
}

std::string
csvEscape(const std::string &field)
{
    if (field.find_first_of(",\"\n\r") == std::string::npos)
        return field;
    std::string out;
    out.reserve(field.size() + 2);
    out += '"';
    for (char c : field) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

std::string
runCsvHeader()
{
    return "label,plan,time_us,kernels,dram_bytes,l2_bytes,"
           "shared_bytes,flops,dram_util,shared_util,energy_j,"
           "static_j,dynamic_j,dram_j,onchip_j,crm_j";
}

std::string
runCsvRow(const std::string &label, const RunReport &report)
{
    const gpu::TraceResult &r = report.result;
    std::ostringstream os;
    os << csvEscape(label) << ',' << toString(report.kind) << ','
       << r.timeUs
       << ',' << r.kernelCount << ',' << r.dramBytes << ','
       << r.l2Bytes << ',' << r.sharedBytes << ',' << r.flops << ','
       << r.dramUtilization << ',' << r.sharedUtilization << ','
       << r.energy.totalJ() << ',' << r.energy.staticJ << ','
       << r.energy.gpuDynamicJ << ',' << r.energy.dramJ << ','
       << r.energy.onChipJ << ',' << r.energy.crmJ;
    return os.str();
}

void
writeTraceCsv(std::ostream &os, const gpu::KernelTrace &trace)
{
    os << "index,name,class,ctas,threads_per_cta,flops,dram_read,"
          "dram_write,l2_bytes,shared_bytes,syncs,divergence,"
          "coalescing,row_skip,disabled_threads\n";
    std::size_t idx = 0;
    for (const gpu::KernelDesc &k : trace) {
        os << idx++ << ',' << csvEscape(k.name) << ','
           << gpu::toString(k.klass) << ',' << k.ctas << ','
           << k.threadsPerCta << ',' << k.flops << ','
           << k.dramReadBytes << ',' << k.dramWriteBytes << ','
           << k.l2AccessBytes << ',' << k.sharedBytes << ','
           << k.syncsPerCta << ',' << k.divergenceFactor << ','
           << k.coalescingFactor << ',' << (k.hasRowSkipArg ? 1 : 0)
           << ',' << k.disabledThreads << '\n';
    }
}

std::string
runReportJson(const std::string &label, const RunReport &report)
{
    const gpu::TraceResult &r = report.result;
    std::ostringstream os;
    obs::JsonWriter w(os);

    w.beginObject();
    w.key("label").value(label);
    w.key("plan").value(toString(report.kind));
    w.key("time_us").value(r.timeUs);
    w.key("cycles").value(r.cycles);
    w.key("compute_cycles").value(r.computeCycles);
    w.key("kernels").value(static_cast<std::uint64_t>(r.kernelCount));
    w.key("flops").value(r.flops);
    w.key("dram_bytes").value(r.dramBytes);
    w.key("l2_bytes").value(r.l2Bytes);
    w.key("shared_bytes").value(r.sharedBytes);
    w.key("dram_util").value(r.dramUtilization);
    w.key("shared_util").value(r.sharedUtilization);

    w.key("stall_cycles").beginObject();
    w.key("offchip_memory").value(r.stalls.offChipMemory);
    w.key("onchip_bandwidth").value(r.stalls.onChipBandwidth);
    w.key("synchronization").value(r.stalls.synchronization);
    w.key("execution_dependency").value(r.stalls.executionDependency);
    w.key("other").value(r.stalls.other);
    w.endObject();

    w.key("energy_j").beginObject();
    w.key("total").value(r.energy.totalJ());
    w.key("static").value(r.energy.staticJ);
    w.key("dynamic").value(r.energy.gpuDynamicJ);
    w.key("dram").value(r.energy.dramJ);
    w.key("onchip").value(r.energy.onChipJ);
    w.key("crm").value(r.energy.crmJ);
    w.endObject();

    w.key("crm_cycles").value(r.crmCycles);
    w.key("kernels_through_crm")
        .value(static_cast<std::uint64_t>(r.kernelsThroughCrm));

    w.key("time_per_class_us").beginObject();
    for (const auto &[klass, us] : r.timePerClassUs)
        w.key(gpu::toString(klass)).value(us);
    w.endObject();

    w.key("kernels_per_class").beginObject();
    for (const auto &[klass, count] : r.kernelsPerClass)
        w.key(gpu::toString(klass))
            .value(static_cast<std::uint64_t>(count));
    w.endObject();

    w.endObject();
    return os.str();
}

} // namespace runtime
} // namespace mflstm
