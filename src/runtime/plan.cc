#include "runtime/plan.hh"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace mflstm {
namespace runtime {

const char *
toString(PlanKind kind)
{
    switch (kind) {
      case PlanKind::Baseline:
        return "baseline";
      case PlanKind::InterCell:
        return "inter-cell";
      case PlanKind::IntraCellSw:
        return "intra-cell-sw";
      case PlanKind::IntraCellHw:
        return "intra-cell-hw";
      case PlanKind::Combined:
        return "combined";
      case PlanKind::ZeroPruning:
        return "zero-pruning";
      case PlanKind::Tuned:
        return "tuned";
      case PlanKind::Persistent:
        return "persistent";
    }
    return "unknown";
}

std::optional<PlanKind>
planKindFromString(const std::string &s)
{
    if (s == "baseline")
        return PlanKind::Baseline;
    if (s == "inter-cell" || s == "inter")
        return PlanKind::InterCell;
    if (s == "intra-cell-sw" || s == "intra-sw")
        return PlanKind::IntraCellSw;
    if (s == "intra-cell-hw" || s == "intra-hw")
        return PlanKind::IntraCellHw;
    if (s == "combined")
        return PlanKind::Combined;
    if (s == "zero-pruning")
        return PlanKind::ZeroPruning;
    if (s == "tuned")
        return PlanKind::Tuned;
    if (s == "persistent")
        return PlanKind::Persistent;
    return std::nullopt;
}

NetworkShape
NetworkShape::stacked(std::size_t embed_size, std::size_t hidden_size,
                      std::size_t num_layers, std::size_t length)
{
    if (!embed_size || !hidden_size || !num_layers || !length)
        throw std::invalid_argument("NetworkShape: zero dimension");

    NetworkShape shape;
    shape.layers.reserve(num_layers);
    for (std::size_t l = 0; l < num_layers; ++l) {
        shape.layers.push_back({l == 0 ? embed_size : hidden_size,
                                hidden_size, length});
    }
    return shape;
}

std::size_t
LayerInterPlan::totalCells() const
{
    return std::accumulate(tissueSizes.begin(), tissueSizes.end(),
                           std::size_t{0});
}

std::size_t
LayerInterPlan::maxTissue() const
{
    return tissueSizes.empty()
               ? 0
               : *std::max_element(tissueSizes.begin(), tissueSizes.end());
}

LayerSchedule
ExecutionPlan::layerSchedule(std::size_t layer_index) const
{
    LayerSchedule ls;
    if (hasExplicitDecisions()) {
        if (layer_index < decisions.layers.size())
            return decisions.layers[layer_index];
        ls.quant = quantMode;
        return ls;
    }

    // Canonical preset derivation: exactly the conventions the lowering
    // hard-coded before the decisions existed.
    ls.quant = kind == PlanKind::ZeroPruning ? quant::QuantMode::Fp32
                                             : quantMode;
    if (kind == PlanKind::ZeroPruning) {
        ls.prunedCsr = true;
        ls.pruneFraction = pruneFraction;
        return ls;
    }
    if (usesInter() && layer_index < inter.size())
        ls.tissueSizes = inter[layer_index].tissueSizes;
    if (kind == PlanKind::Persistent) {
        // The persistent preset targets the fast tier the persistent-
        // RNN literature uses; the tuner also searches the shared tier.
        ls.residency = WeightResidency::Regfile;
        return ls;
    }
    if (usesIntra() && layer_index < intra.size()) {
        ls.skipFraction = intra[layer_index].skipFraction;
        ls.skipPath = usesCrmHardware() ? SkipPath::HwCrm
                                        : SkipPath::Software;
        ls.flagFusion = usesCrmHardware() ? FlagFusion::FusedEpilogue
                                          : FlagFusion::Standalone;
    }
    return ls;
}

ScheduleDecisions
ExecutionPlan::explicitDecisions(std::size_t num_layers) const
{
    ScheduleDecisions d;
    d.layers.reserve(num_layers);
    for (std::size_t l = 0; l < num_layers; ++l)
        d.layers.push_back(layerSchedule(l));
    return d;
}

ExecutionPlan
ExecutionPlan::fromDecisions(ScheduleDecisions d)
{
    d.validate();

    ExecutionPlan plan;
    plan.kind = PlanKind::Tuned;
    if (!d.layers.empty()) {
        const quant::QuantMode q0 = d.layers.front().quant;
        const bool uniform = std::all_of(
            d.layers.begin(), d.layers.end(),
            [&](const LayerSchedule &l) { return l.quant == q0; });
        plan.quantMode = uniform ? q0 : quant::QuantMode::Fp32;
    }
    plan.decisions = std::move(d);
    return plan;
}

} // namespace runtime
} // namespace mflstm
