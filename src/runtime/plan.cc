#include "runtime/plan.hh"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace mflstm {
namespace runtime {

const char *
toString(PlanKind kind)
{
    switch (kind) {
      case PlanKind::Baseline:
        return "baseline";
      case PlanKind::InterCell:
        return "inter-cell";
      case PlanKind::IntraCellSw:
        return "intra-cell-sw";
      case PlanKind::IntraCellHw:
        return "intra-cell-hw";
      case PlanKind::Combined:
        return "combined";
      case PlanKind::ZeroPruning:
        return "zero-pruning";
    }
    return "unknown";
}

NetworkShape
NetworkShape::stacked(std::size_t embed_size, std::size_t hidden_size,
                      std::size_t num_layers, std::size_t length)
{
    if (!embed_size || !hidden_size || !num_layers || !length)
        throw std::invalid_argument("NetworkShape: zero dimension");

    NetworkShape shape;
    shape.layers.reserve(num_layers);
    for (std::size_t l = 0; l < num_layers; ++l) {
        shape.layers.push_back({l == 0 ? embed_size : hidden_size,
                                hidden_size, length});
    }
    return shape;
}

std::size_t
LayerInterPlan::totalCells() const
{
    return std::accumulate(tissueSizes.begin(), tissueSizes.end(),
                           std::size_t{0});
}

std::size_t
LayerInterPlan::maxTissue() const
{
    return tissueSizes.empty()
               ? 0
               : *std::max_element(tissueSizes.begin(), tissueSizes.end());
}

} // namespace runtime
} // namespace mflstm
