/**
 * @file
 * Execution plans: which dataflow the runtime lowers an LSTM network
 * onto. A plan is pure schedule/approximation metadata — the decisions
 * themselves (where to break context links, how many rows to skip) are
 * produced by the optimisation passes in src/core (or searched by
 * src/sched) and recorded here.
 *
 * Two equivalent surfaces coexist (DESIGN.md §14): the legacy preset
 * fields (kind + inter/intra/pruneFraction/quantMode) that every
 * existing call site and artifact schema speaks, and the explicit
 * per-layer ScheduleDecisions the lowering actually consumes. When
 * `decisions` is empty, layerSchedule() canonicalises the preset
 * fields on the fly — presets therefore lower bit-identically through
 * the decision path. A tuned plan (fromDecisions) carries explicit
 * decisions and reports PlanKind::Tuned.
 */

#ifndef MFLSTM_RUNTIME_PLAN_HH
#define MFLSTM_RUNTIME_PLAN_HH

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "quant/qformat.hh"
#include "runtime/schedule.hh"

namespace mflstm {
namespace runtime {

/** The execution schemes compared in the paper's evaluation. */
enum class PlanKind {
    Baseline,     ///< Algorithm 1: per-cell Sgemv (state of the art)
    InterCell,    ///< Section IV: layer division + tissue Sgemm
    IntraCellSw,  ///< Section V DRS, pure software (divergent)
    IntraCellHw,  ///< Section V DRS with the CRM hardware
    Combined,     ///< inter + intra(HW) together
    ZeroPruning,  ///< element-level magnitude pruning comparator [31]
    Tuned,        ///< explicit searched ScheduleDecisions (src/sched)
    Persistent,   ///< tissue waves + register-file weight residency
};

const char *toString(PlanKind kind);

/**
 * Parse a plan-kind spelling; nullopt on anything unknown. Accepts the
 * canonical toString() names plus the historical CLI short forms
 * ("inter", "intra-sw", "intra-hw") so reports and flags round-trip.
 */
std::optional<PlanKind> planKindFromString(const std::string &s);

/** Static shape of one LSTM layer on the device. */
struct LstmLayerShape
{
    std::size_t inputSize = 0;   ///< E for layer 0, H above
    std::size_t hiddenSize = 0;  ///< H
    std::size_t length = 0;      ///< cells per layer (timesteps)

    bool operator==(const LstmLayerShape &) const = default;
};

/** Shape of a whole stacked-LSTM network (Table II row). */
struct NetworkShape
{
    std::vector<LstmLayerShape> layers;

    /** Standard stack: embed-size input, uniform hidden size. */
    static NetworkShape stacked(std::size_t embed_size,
                                std::size_t hidden_size,
                                std::size_t num_layers,
                                std::size_t length);

    bool operator==(const NetworkShape &) const = default;
};

/** Inter-cell decisions for one layer: the aligned tissue schedule. */
struct LayerInterPlan
{
    /**
     * Tissue sizes in execution order; sums to the layer length. A
     * baseline layer is equivalent to all-ones. Produced by breakpoint
     * search + tissue formation + alignment (src/core/tissue).
     */
    std::vector<std::size_t> tissueSizes;

    std::size_t totalCells() const;
    std::size_t maxTissue() const;

    bool operator==(const LayerInterPlan &) const = default;
};

/** Intra-cell decisions for one layer. */
struct LayerIntraPlan
{
    /**
     * Mean fraction of U_{f,i,c} rows skipped per cell (from the
     * functional DRS pass over the model, src/core/drs).
     */
    double skipFraction = 0.0;

    bool operator==(const LayerIntraPlan &) const = default;
};

/** A full execution plan for one network. */
struct ExecutionPlan
{
    PlanKind kind = PlanKind::Baseline;
    /// one entry per layer when inter-cell optimisation is active
    std::vector<LayerInterPlan> inter;
    /// one entry per layer when DRS is active
    std::vector<LayerIntraPlan> intra;
    /// element fraction pruned by the zero-pruning comparator
    double pruneFraction = 0.0;
    /**
     * Weight precision the lowered kernels stream (DESIGN.md §12).
     * Orthogonal to the dataflow kinds above: every kind except
     * ZeroPruning (whose CSR comparator stays fp32) prices its
     * W/U traffic at quant::bytesPerWeight(quantMode). For a plan with
     * explicit per-layer decisions this is a reporting label (the
     * uniform layer precision, Fp32 when layers disagree); the
     * lowering reads LayerSchedule::quant.
     */
    quant::QuantMode quantMode = quant::QuantMode::Fp32;
    /**
     * Explicit per-layer schedule (DESIGN.md §14). Empty on preset
     * plans: layerSchedule() then derives the canonical decisions from
     * the legacy fields above. Non-empty decisions take precedence
     * over the legacy fields everywhere (lowering and the predicate
     * helpers below).
     */
    ScheduleDecisions decisions;

    /** True when this plan carries explicit per-layer decisions. */
    bool hasExplicitDecisions() const { return !decisions.empty(); }

    /**
     * The schedule the lowering executes for @p layer_index: the
     * explicit decision when present (a dense layer at the plan's
     * quantMode beyond the decision vector), else the canonical preset
     * derivation of the legacy fields — exactly the conventions the
     * pre-§14 lowering hard-coded, including the ZeroPruning fp32
     * override and the skip path / flag fusion each kind implies.
     */
    LayerSchedule layerSchedule(std::size_t layer_index) const;

    /**
     * Compatibility constructor for searched schedules: wraps explicit
     * @p d into a plan reporting PlanKind::Tuned. quantMode is set to
     * the layers' uniform precision (Fp32 when mixed) as a display
     * label. @throws std::invalid_argument via d.validate().
     */
    static ExecutionPlan fromDecisions(ScheduleDecisions d);

    /**
     * Materialise this plan's schedule for @p num_layers layers as
     * explicit decisions (layerSchedule() per layer). Lowering the
     * result via fromDecisions() is bit-identical to lowering this
     * plan — how the tuner freezes a winning preset into the tuned-plan
     * artifact.
     */
    ScheduleDecisions explicitDecisions(std::size_t num_layers) const;

    bool usesInter() const
    {
        if (hasExplicitDecisions()) {
            for (const LayerSchedule &l : decisions.layers)
                if (l.usesTissues())
                    return true;
            return false;
        }
        // The persistent preset rides the tissue schedule: its waves
        // are the DRS-relaxed tissue waves, so the planner populates
        // `inter` for it exactly as for the inter-cell preset.
        return kind == PlanKind::InterCell ||
               kind == PlanKind::Combined ||
               kind == PlanKind::Persistent;
    }
    bool usesIntra() const
    {
        if (hasExplicitDecisions()) {
            for (const LayerSchedule &l : decisions.layers)
                if (l.skipPath != SkipPath::Off)
                    return true;
            return false;
        }
        return kind == PlanKind::IntraCellSw ||
               kind == PlanKind::IntraCellHw ||
               kind == PlanKind::Combined;
    }
    /** Lowering emits HW-compacted row-skip kernels (CRM available). */
    bool usesCrmHardware() const
    {
        if (hasExplicitDecisions()) {
            for (const LayerSchedule &l : decisions.layers)
                if (l.skipPath == SkipPath::HwCrm)
                    return true;
            return false;
        }
        return kind == PlanKind::IntraCellHw ||
               kind == PlanKind::Combined;
    }

    bool operator==(const ExecutionPlan &) const = default;
};

} // namespace runtime
} // namespace mflstm

#endif // MFLSTM_RUNTIME_PLAN_HH
