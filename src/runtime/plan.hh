/**
 * @file
 * Execution plans: which dataflow the runtime lowers an LSTM network
 * onto. A plan is pure schedule/approximation metadata — the decisions
 * themselves (where to break context links, how many rows to skip) are
 * produced by the optimisation passes in src/core and recorded here.
 */

#ifndef MFLSTM_RUNTIME_PLAN_HH
#define MFLSTM_RUNTIME_PLAN_HH

#include <cstddef>
#include <string>
#include <vector>

#include "quant/qformat.hh"

namespace mflstm {
namespace runtime {

/** The execution schemes compared in the paper's evaluation. */
enum class PlanKind {
    Baseline,     ///< Algorithm 1: per-cell Sgemv (state of the art)
    InterCell,    ///< Section IV: layer division + tissue Sgemm
    IntraCellSw,  ///< Section V DRS, pure software (divergent)
    IntraCellHw,  ///< Section V DRS with the CRM hardware
    Combined,     ///< inter + intra(HW) together
    ZeroPruning,  ///< element-level magnitude pruning comparator [31]
};

const char *toString(PlanKind kind);

/** Static shape of one LSTM layer on the device. */
struct LstmLayerShape
{
    std::size_t inputSize = 0;   ///< E for layer 0, H above
    std::size_t hiddenSize = 0;  ///< H
    std::size_t length = 0;      ///< cells per layer (timesteps)

    bool operator==(const LstmLayerShape &) const = default;
};

/** Shape of a whole stacked-LSTM network (Table II row). */
struct NetworkShape
{
    std::vector<LstmLayerShape> layers;

    /** Standard stack: embed-size input, uniform hidden size. */
    static NetworkShape stacked(std::size_t embed_size,
                                std::size_t hidden_size,
                                std::size_t num_layers,
                                std::size_t length);

    bool operator==(const NetworkShape &) const = default;
};

/** Inter-cell decisions for one layer: the aligned tissue schedule. */
struct LayerInterPlan
{
    /**
     * Tissue sizes in execution order; sums to the layer length. A
     * baseline layer is equivalent to all-ones. Produced by breakpoint
     * search + tissue formation + alignment (src/core/tissue).
     */
    std::vector<std::size_t> tissueSizes;

    std::size_t totalCells() const;
    std::size_t maxTissue() const;

    bool operator==(const LayerInterPlan &) const = default;
};

/** Intra-cell decisions for one layer. */
struct LayerIntraPlan
{
    /**
     * Mean fraction of U_{f,i,c} rows skipped per cell (from the
     * functional DRS pass over the model, src/core/drs).
     */
    double skipFraction = 0.0;

    bool operator==(const LayerIntraPlan &) const = default;
};

/** A full execution plan for one network. */
struct ExecutionPlan
{
    PlanKind kind = PlanKind::Baseline;
    /// one entry per layer when inter-cell optimisation is active
    std::vector<LayerInterPlan> inter;
    /// one entry per layer when DRS is active
    std::vector<LayerIntraPlan> intra;
    /// element fraction pruned by the zero-pruning comparator
    double pruneFraction = 0.0;
    /**
     * Weight precision the lowered kernels stream (DESIGN.md §12).
     * Orthogonal to the dataflow kinds above: every kind except
     * ZeroPruning (whose CSR comparator stays fp32) prices its
     * W/U traffic at quant::bytesPerWeight(quantMode).
     */
    quant::QuantMode quantMode = quant::QuantMode::Fp32;

    bool usesInter() const
    {
        return kind == PlanKind::InterCell || kind == PlanKind::Combined;
    }
    bool usesIntra() const
    {
        return kind == PlanKind::IntraCellSw ||
               kind == PlanKind::IntraCellHw ||
               kind == PlanKind::Combined;
    }
    /** Lowering emits HW-compacted row-skip kernels (CRM available). */
    bool usesCrmHardware() const
    {
        return kind == PlanKind::IntraCellHw ||
               kind == PlanKind::Combined;
    }

    bool operator==(const ExecutionPlan &) const = default;
};

} // namespace runtime
} // namespace mflstm

#endif // MFLSTM_RUNTIME_PLAN_HH
