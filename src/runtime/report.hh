/**
 * @file
 * Result reporting: render simulation results as human-readable tables
 * or machine-readable CSV. Used by the CLI driver (tools/mflstm_cli)
 * and available to downstream users who want to post-process runs.
 */

#ifndef MFLSTM_RUNTIME_REPORT_HH
#define MFLSTM_RUNTIME_REPORT_HH

#include <iosfwd>
#include <string>

#include "gpu/simulator.hh"
#include "runtime/executor.hh"

namespace mflstm {
namespace runtime {

/** Multi-line human-readable summary of one run. */
std::string formatRunReport(const RunReport &report);

/**
 * Side-by-side comparison of an optimised run against a baseline
 * (time, speedup, energy components, traffic).
 */
std::string formatComparison(const RunReport &base, const RunReport &opt);

/**
 * Escape one CSV field (RFC 4180): fields containing commas, quotes or
 * newlines are quoted with internal quotes doubled. Labels and kernel
 * names are user-supplied (`--app`), so every text field goes through
 * this before joining a row.
 */
std::string csvEscape(const std::string &field);

/** CSV header matching writeRunCsvRow. */
std::string runCsvHeader();

/**
 * One CSV row for a run: plan, time, energy breakdown, traffic,
 * utilisations, kernel counts. @p label is the first column (app name
 * or scenario).
 */
std::string runCsvRow(const std::string &label, const RunReport &report);

/** Dump a kernel trace as CSV (one row per kernel launch). */
void writeTraceCsv(std::ostream &os, const gpu::KernelTrace &trace);

/**
 * Machine-consumable JSON object for one run: the same quantities as
 * runCsvRow plus the per-class time/kernel breakdown and the stall
 * decomposition.
 */
std::string runReportJson(const std::string &label,
                          const RunReport &report);

} // namespace runtime
} // namespace mflstm

#endif // MFLSTM_RUNTIME_REPORT_HH
