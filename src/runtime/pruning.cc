#include "runtime/pruning.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

namespace mflstm {
namespace runtime {

double
magnitudeThreshold(const tensor::Matrix &m, double target_fraction)
{
    if (target_fraction < 0.0 || target_fraction > 1.0)
        throw std::invalid_argument("magnitudeThreshold: bad fraction");
    if (m.empty() || target_fraction == 0.0)
        return 0.0;

    std::vector<float> mags(m.size());
    for (std::size_t i = 0; i < m.size(); ++i)
        mags[i] = std::fabs(m.data()[i]);

    const auto k = static_cast<std::size_t>(
        target_fraction * static_cast<double>(mags.size()));
    if (k == 0)
        return 0.0;
    const std::size_t idx = std::min(k, mags.size() - 1);
    std::nth_element(mags.begin(), mags.begin() + idx, mags.end());
    return mags[idx];
}

double
pruneBelow(tensor::Matrix &m, double threshold)
{
    if (m.empty())
        return 0.0;
    std::size_t pruned = 0;
    for (std::size_t i = 0; i < m.size(); ++i) {
        if (std::fabs(m.data()[i]) < threshold) {
            m.data()[i] = 0.0f;
            ++pruned;
        }
    }
    return static_cast<double>(pruned) / static_cast<double>(m.size());
}

PruningResult
applyZeroPruning(nn::LstmModel &model, double target_fraction)
{
    if (target_fraction < 0.0 || target_fraction > 1.0)
        throw std::invalid_argument("applyZeroPruning: bad fraction");

    // Pool all recurrent magnitudes for a single global threshold, as
    // deep-compression-style pruning does.
    std::vector<float> mags;
    for (const nn::LstmLayerParams &p : model.layers()) {
        for (const tensor::Matrix *u : {&p.uf, &p.ui, &p.uc, &p.uo}) {
            for (std::size_t i = 0; i < u->size(); ++i)
                mags.push_back(std::fabs(u->data()[i]));
        }
    }
    if (mags.empty())
        return {};

    const auto k = static_cast<std::size_t>(
        target_fraction * static_cast<double>(mags.size()));
    PruningResult res;
    if (target_fraction == 1.0) {
        // pruneBelow compares strictly, so the absmax would survive any
        // threshold drawn from the data; step just past it instead.
        const float absmax = *std::max_element(mags.begin(), mags.end());
        res.threshold = std::nextafter(
            absmax, std::numeric_limits<float>::infinity());
    } else if (k > 0) {
        const std::size_t idx = std::min(k, mags.size() - 1);
        std::nth_element(mags.begin(), mags.begin() + idx, mags.end());
        res.threshold = mags[idx];
    }

    std::size_t pruned = 0;
    std::size_t total = 0;
    for (nn::LstmLayerParams &p : model.layers()) {
        for (tensor::Matrix *u : {&p.uf, &p.ui, &p.uc, &p.uo}) {
            total += u->size();
            pruned += static_cast<std::size_t>(
                pruneBelow(*u, res.threshold) *
                static_cast<double>(u->size()) + 0.5);
        }
    }
    res.prunedFraction =
        total ? static_cast<double>(pruned) / static_cast<double>(total)
              : 0.0;
    res.compressionRatio = res.prunedFraction;
    // CSR storage: surviving values at 1.5x (value + column index).
    // Guard the division — a threshold above every magnitude leaves
    // zero survivors, and 0.0 is the defined degenerate answer.
    const std::size_t surviving = total - pruned;
    res.csrStorageRatio =
        surviving ? static_cast<double>(total) * 4.0 /
                        (static_cast<double>(surviving) * 4.0 * 1.5)
                  : 0.0;
    return res;
}

} // namespace runtime
} // namespace mflstm
