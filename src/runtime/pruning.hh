/**
 * @file
 * The zero-pruning comparator (Han et al. [31] in the paper): offline,
 * element-level magnitude pruning of the recurrent weight matrices. The
 * paper contrasts it with DRS in Fig. 16 — it compresses well but, run
 * on a GPU, pays branch divergence and lost coalescing.
 */

#ifndef MFLSTM_RUNTIME_PRUNING_HH
#define MFLSTM_RUNTIME_PRUNING_HH

#include "nn/model.hh"
#include "tensor/matrix.hh"

namespace mflstm {
namespace runtime {

/** What one pruning pass removed. */
struct PruningResult
{
    double threshold = 0.0;        ///< |w| below this was erased
    double prunedFraction = 0.0;   ///< elements removed / total
    /**
     * Weight-data compression: bytes removed / original bytes (the
     * Fig. 16(a) metric). Equals prunedFraction for dense fp32 storage.
     */
    double compressionRatio = 0.0;
    /**
     * Dense-to-CSR storage ratio: original dense bytes over the bytes
     * of the surviving values plus their 4 B column indices (the 1.5x
     * overhead the lowering charges). 0.0 marks the degenerate case of
     * zero surviving elements — guarded, never a division by zero.
     */
    double csrStorageRatio = 0.0;
};

/**
 * Magnitude threshold achieving (approximately) @p target_fraction
 * pruned elements in one matrix — the |w| quantile.
 */
double magnitudeThreshold(const tensor::Matrix &m, double target_fraction);

/** Zero all elements of @p m with |w| < threshold; @return fraction. */
double pruneBelow(tensor::Matrix &m, double threshold);

/**
 * Apply zero-pruning to every recurrent matrix (U_f, U_i, U_c, U_o) of
 * every layer of a model, targeting a global pruned fraction. This is
 * the functional (accuracy-side) half of the comparator; the timing
 * half is PlanKind::ZeroPruning in the lowering.
 */
PruningResult applyZeroPruning(nn::LstmModel &model,
                               double target_fraction);

} // namespace runtime
} // namespace mflstm

#endif // MFLSTM_RUNTIME_PRUNING_HH
