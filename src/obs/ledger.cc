#include "ledger.hh"

#include <cmath>
#include <sstream>

namespace mflstm {
namespace obs {

const char *toString(TrafficCause c)
{
    switch (c) {
    case TrafficCause::Weight: return "weight";
    case TrafficCause::Dequant: return "dequant";
    case TrafficCause::Activation: return "activation";
    case TrafficCause::CrmMetadata: return "crm-metadata";
    case TrafficCause::Spill: return "spill";
    case TrafficCause::ResidencyReload: return "residency-reload";
    }
    return "unknown";
}

const char *toString(MatrixStream m)
{
    switch (m) {
    case MatrixStream::None: return "none";
    case MatrixStream::W: return "W";
    case MatrixStream::U: return "U";
    case MatrixStream::Bias: return "bias";
    case MatrixStream::ScaleStream: return "scale-stream";
    }
    return "unknown";
}

namespace {

// A named sub-stream may exceed its sample total by at most this
// relative slack before the decomposition counts as a double-count.
// The slack absorbs the one rounding step between "component × coalesce"
// and "total × coalesce"; a real double-count (PR 5's was 4x the tissue
// read traffic) overshoots by orders of magnitude more.
constexpr double kDecompositionSlack = 1e-9;

} // namespace

void TrafficLedger::record(const TrafficSample &s)
{
    std::lock_guard<std::mutex> lock(mu_);
    ++samples_;
    // Same left-to-right accumulation order as the simulator's
    // TraceResult::dramBytes sum, so conservation is bit-exact.
    attributedTotal_ += s.totalDramBytes;

    const double named = s.weightBytes + s.scaleBytes + s.crmMetaBytes +
                         s.spillBytes + s.residencyReloadBytes;
    double activation = s.totalDramBytes - named;
    const double slack =
        kDecompositionSlack * std::max(std::abs(s.totalDramBytes), 1.0);
    if (activation < -slack) {
        std::ostringstream os;
        os << "kernel '" << s.kernel << "' (layer " << s.layer
           << "): named sub-streams (" << named
           << " B) exceed the launch total (" << s.totalDramBytes
           << " B) — double-counted attribution";
        violations_.push_back(os.str());
        activation = 0.0;
    } else if (activation < 0.0) {
        activation = 0.0;
    }

    auto add = [&](MatrixStream m, TrafficCause cause, double bytes) {
        if (bytes <= 0.0)
            return;
        NodeKey key;
        key.layer = s.layer;
        key.matrix = m;
        key.kernel = s.kernel;
        key.cause = cause;
        traffic_[key] += bytes;
    };
    add(s.matrix, TrafficCause::Weight, s.weightBytes);
    // The scale stream is its own matrix axis: it is a separate DRAM
    // object from the codes it dequantizes.
    add(MatrixStream::ScaleStream, TrafficCause::Dequant, s.scaleBytes);
    add(MatrixStream::None, TrafficCause::CrmMetadata, s.crmMetaBytes);
    add(MatrixStream::None, TrafficCause::Spill, s.spillBytes);
    // Reload bytes are weight traffic of the sample's matrix that the
    // pinned budget failed to keep on chip — attributed to the matrix
    // axis under their own cause so `mflstm profile` can show exactly
    // what residency bought (and what the overflow still costs).
    add(s.matrix, TrafficCause::ResidencyReload, s.residencyReloadBytes);
    add(MatrixStream::None, TrafficCause::Activation, activation);

    KernelKey kk;
    kk.layer = s.layer;
    kk.kernel = s.kernel;
    KernelStats &ks = kernels_[kk];
    ++ks.launches;
    ks.timeUs += s.timeUs;
    ks.dramBytes += s.totalDramBytes;
    if (!s.bottleneck.empty())
        ++ks.bottlenecks[s.bottleneck];
}

std::size_t TrafficLedger::samples() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return samples_;
}

double TrafficLedger::attributedDramBytes() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return attributedTotal_;
}

std::vector<std::string> TrafficLedger::violations() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return violations_;
}

std::map<TrafficLedger::NodeKey, double> TrafficLedger::traffic() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return traffic_;
}

std::map<TrafficLedger::KernelKey, TrafficLedger::KernelStats>
TrafficLedger::kernels() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return kernels_;
}

std::vector<std::string>
TrafficLedger::verifyConservation(double trace_dram_bytes) const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> errors = violations_;

    if (attributedTotal_ != trace_dram_bytes) {
        std::ostringstream os;
        os.precision(17);
        os << "conservation broken: ledger attributed "
           << attributedTotal_ << " B but the trace charged "
           << trace_dram_bytes << " B";
        errors.push_back(os.str());
    }

    double tree = 0.0;
    for (const auto &node : traffic_)
        tree += node.second;
    const double slack =
        1e-9 * std::max(std::abs(attributedTotal_), 1.0);
    if (std::abs(tree - attributedTotal_) > slack) {
        std::ostringstream os;
        os.precision(17);
        os << "attribution tree sums to " << tree
           << " B but the ledger attributed " << attributedTotal_
           << " B";
        errors.push_back(os.str());
    }
    return errors;
}

void TrafficLedger::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    traffic_.clear();
    kernels_.clear();
    violations_.clear();
    attributedTotal_ = 0.0;
    samples_ = 0;
}

} // namespace obs
} // namespace mflstm
