/**
 * @file
 * Span tracer: records complete spans (kernel launches on per-SM GPU
 * tracks in simulated microseconds, host phases on a wall-clock track)
 * and exports them as Chrome trace-event JSON, viewable in Perfetto or
 * chrome://tracing. The two time domains never share a track: GPU
 * tracks live under the "GPU (simulated time)" process, host phases
 * under "host".
 *
 * Thread safety: record / setTrackName / cursor ops / writeChromeTrace
 * are serialised on an internal mutex, so several engine workers can
 * trace into one sink. Concurrent batches interleave on the simulated
 * cursor (each claims its slice when it finishes). spans() hands out a
 * reference and is for quiesced readers — join the workers first.
 */

#ifndef MFLSTM_OBS_TRACE_HH
#define MFLSTM_OBS_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace mflstm {
namespace obs {

/** One completed span ("X" event in the trace-event format). */
struct TraceSpan
{
    std::string name;
    std::string category;
    int pid = 0;  ///< process track (kHostPid / kGpuPid)
    int tid = 0;  ///< thread track (SM index on the GPU process)
    double startUs = 0.0;
    double durUs = 0.0;

    std::vector<std::pair<std::string, double>> numArgs;
    std::vector<std::pair<std::string, std::string>> strArgs;
};

/** Collects spans and renders the Chrome trace-event file. */
class SpanTracer
{
  public:
    static constexpr int kHostPid = 0;
    static constexpr int kGpuPid = 1;
    /// per-request lifecycle spans of the serving layer (wall clock)
    static constexpr int kServePid = 2;
    /// safety valve against unbounded sweeps; further spans are counted
    /// but dropped
    static constexpr std::size_t kMaxSpans = 1u << 20;

    /** Name a (pid, tid) track ("SM 0", "phases", ...). */
    void setTrackName(int pid, int tid, const std::string &name);

    void record(TraceSpan span);

    /**
     * Cursor of the simulated-time domain: traces run back-to-back on
     * the GPU tracks so successive Simulator instances don't overlap.
     */
    double simCursorUs() const;
    void advanceSimCursor(double us);

    /** Quiescent readers only — join recording threads first. */
    const std::vector<TraceSpan> &spans() const { return spans_; }
    std::size_t droppedSpans() const;
    bool empty() const;

    /** Full trace-event JSON document ({"traceEvents":[...]}). */
    void writeChromeTrace(std::ostream &os) const;

  private:
    std::vector<TraceSpan> spans_;
    std::map<std::pair<int, int>, std::string> trackNames_;
    double simCursorUs_ = 0.0;
    std::size_t dropped_ = 0;
    mutable std::mutex mu_;
};

} // namespace obs
} // namespace mflstm

#endif // MFLSTM_OBS_TRACE_HH
