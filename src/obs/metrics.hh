/**
 * @file
 * Metrics registry: named counters, gauges and fixed-bucket histograms
 * registered by the simulator and runtime (DRS rows skipped, CRM
 * compaction ratio, cache hit rate, per-class stall cycles, ...).
 * Instruments are created on first use and owned by the registry;
 * returned references stay valid for the registry's lifetime. Dumps as
 * JSON (machine) or an aligned table (human).
 */

#ifndef MFLSTM_OBS_METRICS_HH
#define MFLSTM_OBS_METRICS_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace mflstm {
namespace obs {

/** Monotonically increasing sum (counts, bytes, cycles). */
class Counter
{
  public:
    void add(double delta = 1.0) { value_ += delta; }
    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/** Last-written value (ratios, rates, configuration). */
class Gauge
{
  public:
    void set(double v) { value_ = v; }
    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/**
 * Fixed-bucket histogram. Bucket i counts observations v with
 * edge[i-1] < v <= edge[i] (upper-inclusive, like Prometheus "le");
 * values above the last edge land in the overflow bucket.
 */
class Histogram
{
  public:
    /** @param edges strictly ascending upper bounds; must be non-empty. */
    explicit Histogram(std::vector<double> edges);

    /** @return @p count edges spanning [lo, hi] on a log scale. */
    static std::vector<double> exponentialEdges(double lo, double hi,
                                                std::size_t count);

    void observe(double v);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return min_; }
    double max() const { return max_; }
    const std::vector<double> &edges() const { return edges_; }
    /** Per-bucket counts; size = edges().size() + 1 (last = overflow). */
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }

  private:
    std::vector<double> edges_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Owns every named instrument of one observer. */
class MetricsRegistry
{
  public:
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    /** @p edges is only consulted when the histogram does not exist yet. */
    Histogram &histogram(const std::string &name,
                         std::vector<double> edges);

    const Counter *findCounter(const std::string &name) const;
    const Gauge *findGauge(const std::string &name) const;
    const Histogram *findHistogram(const std::string &name) const;

    bool empty() const;

    /** Machine dump: {"counters":{...},"gauges":{...},"histograms":{...}} */
    void writeJson(std::ostream &os) const;

    /** Human dump: one aligned line per instrument, sorted by name. */
    std::string formatTable() const;

  private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Gauge> gauges_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace obs
} // namespace mflstm

#endif // MFLSTM_OBS_METRICS_HH
