/**
 * @file
 * Metrics registry: named counters, gauges and fixed-bucket histograms
 * registered by the simulator and runtime (DRS rows skipped, CRM
 * compaction ratio, cache hit rate, per-class stall cycles, ...).
 * Instruments are created on first use and owned by the registry;
 * returned references stay valid for the registry's lifetime. Dumps as
 * JSON (machine) or an aligned table (human).
 *
 * Thread safety (serving layer, DESIGN.md §9): every recording path is
 * safe under concurrency — Counter::add / Gauge::set are lock-free
 * atomics, Histogram::observe takes a per-instrument mutex, and
 * instrument creation/lookup takes the registry mutex. References
 * returned by counter()/gauge()/histogram() stay valid and safe to
 * record through from any thread (std::map nodes never move). The
 * dump methods (writeJson / formatTable) snapshot under the registry
 * mutex; concurrent recording during a dump yields a consistent-enough
 * point-in-time view, not a torn data structure.
 */

#ifndef MFLSTM_OBS_METRICS_HH
#define MFLSTM_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace mflstm {
namespace obs {

/** Monotonically increasing sum (counts, bytes, cycles). */
class Counter
{
  public:
    void add(double delta = 1.0)
    {
        // CAS loop: atomic<double>::fetch_add is C++20 but not yet
        // reliably lock-free across the toolchains CI builds with.
        double cur = value_.load(std::memory_order_relaxed);
        while (!value_.compare_exchange_weak(cur, cur + delta,
                                             std::memory_order_relaxed))
            ;
    }
    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/** Last-written value (ratios, rates, configuration). */
class Gauge
{
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Fixed-bucket histogram. Bucket i counts observations v with
 * edge[i-1] < v <= edge[i] (upper-inclusive, like Prometheus "le");
 * values above the last edge land in the overflow bucket.
 * observe() and the scalar accessors are thread-safe; buckets()
 * returns a reference and should only be read once writers quiesced
 * (use snapshot() for a concurrent-safe copy).
 */
class Histogram
{
  public:
    /** @param edges strictly ascending upper bounds; must be non-empty. */
    explicit Histogram(std::vector<double> edges);

    /** @return @p count edges spanning [lo, hi] on a log scale. */
    static std::vector<double> exponentialEdges(double lo, double hi,
                                                std::size_t count);

    void observe(double v);

    std::uint64_t count() const;
    double sum() const;
    double min() const;
    double max() const;
    const std::vector<double> &edges() const { return edges_; }
    /** Per-bucket counts; size = edges().size() + 1 (last = overflow).
     *  Quiescent readers only — use snapshot() under concurrency. */
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }

    /** Point-in-time copy of the mutable state. */
    struct Snapshot
    {
        std::uint64_t count = 0;
        double sum = 0.0;
        double min = 0.0;
        double max = 0.0;
        std::vector<std::uint64_t> buckets;
    };
    Snapshot snapshot() const;

    /**
     * Approximate @p q quantile (0..1) by linear interpolation inside
     * the covering bucket (Prometheus histogram_quantile semantics).
     * Returns 0 for an empty histogram; observations in the overflow
     * bucket clamp to the last edge.
     */
    double quantile(double q) const;

  private:
    std::vector<double> edges_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    mutable std::mutex mu_;
};

/**
 * Label set attached to one series of an instrument family, e.g.
 * {{"replica", "r0"}}. Stored sorted by label name; two series of the
 * same instrument differing only in labels are distinct instruments.
 */
using Labels = std::vector<std::pair<std::string, std::string>>;

/** Identifies one (name, labels) series inside the registry. */
struct SeriesKey
{
    std::string name;
    Labels labels;  // sorted by label name

    bool operator<(const SeriesKey &o) const
    {
        if (name != o.name)
            return name < o.name;
        return labels < o.labels;
    }
};

/** Owns every named instrument of one observer. */
class MetricsRegistry
{
  public:
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    /** @p edges is only consulted when the histogram does not exist yet. */
    Histogram &histogram(const std::string &name,
                         std::vector<double> edges);

    /**
     * Labeled series of an instrument family (e.g. per-replica
     * counters in the fleet layer). Labels are sorted internally, so
     * {{"a","1"},{"b","2"}} and {{"b","2"},{"a","1"}} name the same
     * series. The unlabeled overloads are the empty-label series.
     */
    Counter &counter(const std::string &name, Labels labels);
    Gauge &gauge(const std::string &name, Labels labels);
    Histogram &histogram(const std::string &name, Labels labels,
                         std::vector<double> edges);

    const Counter *findCounter(const std::string &name) const;
    const Gauge *findGauge(const std::string &name) const;
    const Histogram *findHistogram(const std::string &name) const;
    const Counter *findCounter(const std::string &name,
                               Labels labels) const;
    const Gauge *findGauge(const std::string &name, Labels labels) const;
    const Histogram *findHistogram(const std::string &name,
                                   Labels labels) const;

    bool empty() const;

    /** Machine dump: {"counters":{...},"gauges":{...},"histograms":{...}} */
    void writeJson(std::ostream &os) const;

    /**
     * Prometheus text exposition format (version 0.0.4): counters and
     * gauges as scalar samples, histograms as cumulative `_bucket`
     * series with `le` labels plus `_sum`/`_count`. Instrument names
     * are sanitised to the Prometheus charset ([a-zA-Z0-9_:], leading
     * digits prefixed) — "serve.queue_ms" becomes "serve_queue_ms".
     * Labeled series render as name{k="v",...}; label values are
     * escaped per the exposition spec (backslash, quote, newline), and
     * one # TYPE line covers every series of the same family.
     */
    void writePrometheus(std::ostream &os) const;

    /** Human dump: one aligned line per instrument, sorted by name. */
    std::string formatTable() const;

  private:
    std::map<SeriesKey, Counter> counters_;
    std::map<SeriesKey, Gauge> gauges_;
    std::map<SeriesKey, Histogram> histograms_;
    mutable std::mutex mu_;
};

} // namespace obs
} // namespace mflstm

#endif // MFLSTM_OBS_METRICS_HH
