/**
 * @file
 * Observer: the sink handle threaded through the simulator and runtime.
 * Bundles a SpanTracer and a MetricsRegistry plus an RAII helper for
 * host-side phases (relevance scan, planning, lowering, simulation).
 *
 * Instrumented components accept an `Observer *` that defaults to
 * nullptr, so every existing call site keeps its behaviour and pays a
 * single pointer test per event. Helper guards (`if (!obs) return;`)
 * keep the instrumentation sites one-liners.
 */

#ifndef MFLSTM_OBS_OBSERVER_HH
#define MFLSTM_OBS_OBSERVER_HH

#include <chrono>
#include <string>

#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace mflstm {
namespace obs {

class Observer
{
  public:
    Observer() : epoch_(Clock::now()) {}

    Observer(const Observer &) = delete;
    Observer &operator=(const Observer &) = delete;

    SpanTracer &tracer() { return tracer_; }
    const SpanTracer &tracer() const { return tracer_; }
    MetricsRegistry &metrics() { return metrics_; }
    const MetricsRegistry &metrics() const { return metrics_; }

    /** Wall-clock microseconds since this observer was created. */
    double wallNowUs() const
    {
        return std::chrono::duration<double, std::micro>(Clock::now() -
                                                         epoch_)
            .count();
    }

    /**
     * RAII host phase: records a wall-clock span on the host track when
     * it goes out of scope. Nest freely; inner phases close first.
     */
    class Phase
    {
      public:
        Phase(Observer *obs, std::string name)
            : obs_(obs), name_(std::move(name)),
              startUs_(obs ? obs->wallNowUs() : 0.0)
        {}

        Phase(Phase &&rhs) noexcept
            : obs_(rhs.obs_), name_(std::move(rhs.name_)),
              startUs_(rhs.startUs_)
        {
            rhs.obs_ = nullptr;
        }
        Phase &operator=(Phase &&) = delete;
        Phase(const Phase &) = delete;
        Phase &operator=(const Phase &) = delete;

        ~Phase() { close(); }

        /** End the phase early (idempotent). */
        void close();

      private:
        Observer *obs_;
        std::string name_;
        double startUs_;
    };

    /**
     * Start a host phase on @p obs; safe on nullptr (the returned Phase
     * is inert). Usage: `auto ph = obs::Observer::phase(obs, "lower");`
     */
    static Phase phase(Observer *obs, std::string name)
    {
        return Phase(obs, std::move(name));
    }

  private:
    using Clock = std::chrono::steady_clock;

    SpanTracer tracer_;
    MetricsRegistry metrics_;
    Clock::time_point epoch_;
};

} // namespace obs
} // namespace mflstm

#endif // MFLSTM_OBS_OBSERVER_HH
