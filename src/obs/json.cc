#include "obs/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>

namespace mflstm {
namespace obs {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

// --- JsonWriter ---------------------------------------------------------

void
JsonWriter::separate()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return;  // value follows its key; no comma
    }
    if (!hasElement_.empty()) {
        if (hasElement_.back())
            os_ << ',';
        hasElement_.back() = true;
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    separate();
    os_ << '{';
    hasElement_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    hasElement_.pop_back();
    os_ << '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separate();
    os_ << '[';
    hasElement_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    hasElement_.pop_back();
    os_ << ']';
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    separate();
    os_ << '"' << jsonEscape(k) << "\":";
    pendingKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    separate();
    os_ << '"' << jsonEscape(v) << '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    separate();
    os_ << jsonNumber(v);
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    separate();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(int v)
{
    separate();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    separate();
    os_ << (v ? "true" : "false");
    return *this;
}

// --- Parser -------------------------------------------------------------

const JsonValue *
JsonValue::find(const std::string &key) const
{
    for (const auto &[k, v] : members)
        if (k == key)
            return &v;
    return nullptr;
}

namespace {

struct Parser
{
    const std::string &text;
    std::size_t pos = 0;
    bool ok = true;

    void skipWs()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool consume(char c)
    {
        skipWs();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool literal(const char *word)
    {
        const std::size_t n = std::char_traits<char>::length(word);
        if (text.compare(pos, n, word) != 0)
            return false;
        pos += n;
        return true;
    }

    JsonValue parseString()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        ++pos;  // opening quote, checked by caller
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos];
            if (static_cast<unsigned char>(c) < 0x20) {
                ok = false;
                return v;
            }
            if (c == '\\') {
                if (pos + 1 >= text.size()) {
                    ok = false;
                    return v;
                }
                const char esc = text[pos + 1];
                pos += 2;
                switch (esc) {
                case '"': v.str += '"'; break;
                case '\\': v.str += '\\'; break;
                case '/': v.str += '/'; break;
                case 'b': v.str += '\b'; break;
                case 'f': v.str += '\f'; break;
                case 'n': v.str += '\n'; break;
                case 'r': v.str += '\r'; break;
                case 't': v.str += '\t'; break;
                case 'u': {
                    if (pos + 4 > text.size()) {
                        ok = false;
                        return v;
                    }
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text[pos + i];
                        if (!std::isxdigit(
                                static_cast<unsigned char>(h))) {
                            ok = false;
                            return v;
                        }
                        code = code * 16 +
                               (std::isdigit(
                                    static_cast<unsigned char>(h))
                                    ? static_cast<unsigned>(h - '0')
                                    : static_cast<unsigned>(
                                          std::tolower(h) - 'a' + 10));
                    }
                    pos += 4;
                    // Tests only need byte-accurate ASCII; encode BMP
                    // code points as UTF-8.
                    if (code < 0x80) {
                        v.str += static_cast<char>(code);
                    } else if (code < 0x800) {
                        v.str += static_cast<char>(0xc0 | (code >> 6));
                        v.str +=
                            static_cast<char>(0x80 | (code & 0x3f));
                    } else {
                        v.str += static_cast<char>(0xe0 | (code >> 12));
                        v.str += static_cast<char>(
                            0x80 | ((code >> 6) & 0x3f));
                        v.str +=
                            static_cast<char>(0x80 | (code & 0x3f));
                    }
                    break;
                }
                default: ok = false; return v;
                }
            } else {
                v.str += c;
                ++pos;
            }
        }
        if (pos >= text.size()) {
            ok = false;
            return v;
        }
        ++pos;  // closing quote
        return v;
    }

    JsonValue parseNumber()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        const std::size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            ++pos;
        const auto digits = [&]() {
            std::size_t n = 0;
            while (pos < text.size() &&
                   std::isdigit(static_cast<unsigned char>(text[pos]))) {
                ++pos;
                ++n;
            }
            return n;
        };
        if (digits() == 0) {
            ok = false;
            return v;
        }
        if (pos < text.size() && text[pos] == '.') {
            ++pos;
            if (digits() == 0) {
                ok = false;
                return v;
            }
        }
        if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
            ++pos;
            if (pos < text.size() &&
                (text[pos] == '+' || text[pos] == '-'))
                ++pos;
            if (digits() == 0) {
                ok = false;
                return v;
            }
        }
        v.number = std::strtod(text.c_str() + start, nullptr);
        return v;
    }

    JsonValue parseValue(int depth)
    {
        JsonValue v;
        if (depth > 200) {  // defensive recursion bound
            ok = false;
            return v;
        }
        skipWs();
        if (pos >= text.size()) {
            ok = false;
            return v;
        }
        const char c = text[pos];
        if (c == '{') {
            ++pos;
            v.kind = JsonValue::Kind::Object;
            skipWs();
            if (consume('}'))
                return v;
            do {
                skipWs();
                if (pos >= text.size() || text[pos] != '"') {
                    ok = false;
                    return v;
                }
                JsonValue k = parseString();
                if (!ok || !consume(':')) {
                    ok = false;
                    return v;
                }
                JsonValue member = parseValue(depth + 1);
                if (!ok)
                    return v;
                v.members.emplace_back(std::move(k.str),
                                       std::move(member));
            } while (consume(','));
            if (!consume('}'))
                ok = false;
            return v;
        }
        if (c == '[') {
            ++pos;
            v.kind = JsonValue::Kind::Array;
            skipWs();
            if (consume(']'))
                return v;
            do {
                JsonValue item = parseValue(depth + 1);
                if (!ok)
                    return v;
                v.items.push_back(std::move(item));
            } while (consume(','));
            if (!consume(']'))
                ok = false;
            return v;
        }
        if (c == '"')
            return parseString();
        if (c == 't') {
            if (!literal("true"))
                ok = false;
            v.kind = JsonValue::Kind::Bool;
            v.boolean = true;
            return v;
        }
        if (c == 'f') {
            if (!literal("false"))
                ok = false;
            v.kind = JsonValue::Kind::Bool;
            return v;
        }
        if (c == 'n') {
            if (!literal("null"))
                ok = false;
            return v;
        }
        return parseNumber();
    }
};

} // anonymous namespace

std::optional<JsonValue>
parseJson(const std::string &text)
{
    Parser p{text};
    JsonValue v = p.parseValue(0);
    p.skipWs();
    if (!p.ok || p.pos != text.size())
        return std::nullopt;
    return v;
}

} // namespace obs
} // namespace mflstm
