#include "obs/metrics.hh"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/json.hh"

namespace mflstm {
namespace obs {

Histogram::Histogram(std::vector<double> edges)
    : edges_(std::move(edges)), buckets_(edges_.size() + 1, 0)
{
    if (edges_.empty())
        throw std::invalid_argument("Histogram: no bucket edges");
    if (!std::is_sorted(edges_.begin(), edges_.end()) ||
        std::adjacent_find(edges_.begin(), edges_.end()) != edges_.end())
        throw std::invalid_argument(
            "Histogram: edges must be strictly ascending");
}

std::vector<double>
Histogram::exponentialEdges(double lo, double hi, std::size_t count)
{
    if (lo <= 0.0 || hi <= lo || count < 2)
        throw std::invalid_argument("exponentialEdges: bad range");
    std::vector<double> edges(count);
    const double step =
        std::log(hi / lo) / static_cast<double>(count - 1);
    for (std::size_t i = 0; i < count; ++i)
        edges[i] = lo * std::exp(step * static_cast<double>(i));
    edges.back() = hi;  // exact despite rounding
    return edges;
}

void
Histogram::observe(double v)
{
    std::lock_guard<std::mutex> lock(mu_);
    // First bucket whose upper edge is >= v; past-the-end = overflow.
    const auto it = std::lower_bound(edges_.begin(), edges_.end(), v);
    ++buckets_[static_cast<std::size_t>(it - edges_.begin())];
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
}

std::uint64_t
Histogram::count() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
}

double
Histogram::sum() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return sum_;
}

double
Histogram::min() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return min_;
}

double
Histogram::max() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return max_;
}

Histogram::Snapshot
Histogram::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    Snapshot s;
    s.count = count_;
    s.sum = sum_;
    s.min = min_;
    s.max = max_;
    s.buckets = buckets_;
    return s;
}

double
Histogram::quantile(double q) const
{
    if (q < 0.0 || q > 1.0)
        throw std::invalid_argument("Histogram::quantile: q outside 0..1");
    const Snapshot s = snapshot();
    if (s.count == 0)
        return 0.0;

    const double rank = q * static_cast<double>(s.count);
    double seen = 0.0;
    for (std::size_t i = 0; i < s.buckets.size(); ++i) {
        const double in_bucket = static_cast<double>(s.buckets[i]);
        if (seen + in_bucket < rank || in_bucket == 0.0) {
            seen += in_bucket;
            continue;
        }
        if (i >= edges_.size())
            return edges_.back();  // overflow bucket clamps
        // Linear interpolation inside [lower, edges_[i]].
        const double hi = edges_[i];
        const double lo = i == 0 ? std::min(s.min, hi) : edges_[i - 1];
        const double frac =
            in_bucket > 0.0 ? (rank - seen) / in_bucket : 1.0;
        return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    return edges_.back();
}

namespace {

/** Canonical series key: labels sorted by name. */
SeriesKey
makeKey(const std::string &name, Labels labels)
{
    std::sort(labels.begin(), labels.end());
    return SeriesKey{name, std::move(labels)};
}

} // anonymous namespace

Counter &
MetricsRegistry::counter(const std::string &name)
{
    return counter(name, {});
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    return gauge(name, {});
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           std::vector<double> edges)
{
    return histogram(name, {}, std::move(edges));
}

Counter &
MetricsRegistry::counter(const std::string &name, Labels labels)
{
    std::lock_guard<std::mutex> lock(mu_);
    return counters_[makeKey(name, std::move(labels))];
}

Gauge &
MetricsRegistry::gauge(const std::string &name, Labels labels)
{
    std::lock_guard<std::mutex> lock(mu_);
    return gauges_[makeKey(name, std::move(labels))];
}

Histogram &
MetricsRegistry::histogram(const std::string &name, Labels labels,
                           std::vector<double> edges)
{
    std::lock_guard<std::mutex> lock(mu_);
    SeriesKey key = makeKey(name, std::move(labels));
    const auto it = histograms_.find(key);
    if (it != histograms_.end())
        return it->second;
    return histograms_.try_emplace(std::move(key), std::move(edges))
        .first->second;
}

const Counter *
MetricsRegistry::findCounter(const std::string &name) const
{
    return findCounter(name, {});
}

const Gauge *
MetricsRegistry::findGauge(const std::string &name) const
{
    return findGauge(name, {});
}

const Histogram *
MetricsRegistry::findHistogram(const std::string &name) const
{
    return findHistogram(name, {});
}

const Counter *
MetricsRegistry::findCounter(const std::string &name,
                             Labels labels) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = counters_.find(makeKey(name, std::move(labels)));
    return it == counters_.end() ? nullptr : &it->second;
}

const Gauge *
MetricsRegistry::findGauge(const std::string &name, Labels labels) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = gauges_.find(makeKey(name, std::move(labels)));
    return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram *
MetricsRegistry::findHistogram(const std::string &name,
                               Labels labels) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = histograms_.find(makeKey(name, std::move(labels)));
    return it == histograms_.end() ? nullptr : &it->second;
}

bool
MetricsRegistry::empty() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return counters_.empty() && gauges_.empty() && histograms_.empty();
}

namespace {

/**
 * Display key for JSON/table dumps: bare name for the unlabeled
 * series, name{k="v",...} otherwise. JsonWriter escapes the whole key
 * string, so raw label values are safe here.
 */
std::string
displayKey(const SeriesKey &key)
{
    if (key.labels.empty())
        return key.name;
    std::string out = key.name;
    out.push_back('{');
    bool first = true;
    for (const auto &[k, v] : key.labels) {
        if (!first)
            out.push_back(',');
        first = false;
        out += k;
        out += "=\"";
        out += v;
        out.push_back('"');
    }
    out.push_back('}');
    return out;
}

} // anonymous namespace

void
MetricsRegistry::writeJson(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mu_);
    JsonWriter w(os);
    w.beginObject();

    w.key("counters").beginObject();
    for (const auto &[key, c] : counters_)
        w.key(displayKey(key)).value(c.value());
    w.endObject();

    w.key("gauges").beginObject();
    for (const auto &[key, g] : gauges_)
        w.key(displayKey(key)).value(g.value());
    w.endObject();

    w.key("histograms").beginObject();
    for (const auto &[key, h] : histograms_) {
        const Histogram::Snapshot s = h.snapshot();
        w.key(displayKey(key)).beginObject();
        w.key("count").value(static_cast<std::uint64_t>(s.count));
        w.key("sum").value(s.sum);
        w.key("min").value(s.min);
        w.key("max").value(s.max);
        w.key("edges").beginArray();
        for (double e : h.edges())
            w.value(e);
        w.endArray();
        w.key("buckets").beginArray();
        for (std::uint64_t b : s.buckets)
            w.value(b);
        w.endArray();
        w.endObject();
    }
    w.endObject();

    w.endObject();
    os << '\n';
}

namespace {

/** Map an instrument name onto the Prometheus charset. */
std::string
promName(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == ':';
        out.push_back(ok ? c : '_');
    }
    if (out.empty() || (out.front() >= '0' && out.front() <= '9'))
        out.insert(out.begin(), '_');
    return out;
}

/** Prometheus renders numbers like Go's strconv: +Inf for infinity. */
std::string
promNumber(double v)
{
    if (std::isnan(v))
        return "NaN";
    if (std::isinf(v))
        return v > 0.0 ? "+Inf" : "-Inf";
    std::ostringstream os;
    os.precision(17);
    os << v;
    return os.str();
}

/** Exposition-format label value escaping: backslash, quote, newline. */
std::string
promLabelValue(const std::string &v)
{
    std::string out;
    out.reserve(v.size());
    for (char c : v) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '"':  out += "\\\""; break;
          case '\n': out += "\\n"; break;
          default:   out.push_back(c);
        }
    }
    return out;
}

/**
 * Label block for one series: `{k="v",...}` or empty. @p extra appends
 * one pre-rendered pair (the histogram `le` label) after the series
 * labels.
 */
std::string
promLabels(const Labels &labels, const std::string &extra = {})
{
    if (labels.empty() && extra.empty())
        return {};
    std::string out = "{";
    bool first = true;
    for (const auto &[k, v] : labels) {
        if (!first)
            out.push_back(',');
        first = false;
        out += promName(k);
        out += "=\"";
        out += promLabelValue(v);
        out.push_back('"');
    }
    if (!extra.empty()) {
        if (!first)
            out.push_back(',');
        out += extra;
    }
    out.push_back('}');
    return out;
}

} // anonymous namespace

void
MetricsRegistry::writePrometheus(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mu_);

    // Map ordering sorts by name first, so every series of one family
    // is contiguous and one # TYPE line covers them all.
    std::string last;
    for (const auto &[key, c] : counters_) {
        const std::string n = promName(key.name);
        if (n != last)
            os << "# TYPE " << n << " counter\n";
        last = n;
        os << n << promLabels(key.labels) << " "
           << promNumber(c.value()) << "\n";
    }
    last.clear();
    for (const auto &[key, g] : gauges_) {
        const std::string n = promName(key.name);
        if (n != last)
            os << "# TYPE " << n << " gauge\n";
        last = n;
        os << n << promLabels(key.labels) << " "
           << promNumber(g.value()) << "\n";
    }
    last.clear();
    for (const auto &[key, h] : histograms_) {
        const std::string n = promName(key.name);
        const Histogram::Snapshot s = h.snapshot();
        if (n != last)
            os << "# TYPE " << n << " histogram\n";
        last = n;
        // Buckets are cumulative in the exposition format; the
        // internal representation is per-bucket.
        std::uint64_t cumulative = 0;
        const std::vector<double> &edges = h.edges();
        for (std::size_t i = 0; i < edges.size(); ++i) {
            cumulative += s.buckets[i];
            os << n << "_bucket"
               << promLabels(key.labels, "le=\"" +
                             promLabelValue(promNumber(edges[i])) + "\"")
               << " " << cumulative << "\n";
        }
        cumulative += s.buckets.back();  // overflow bucket
        os << n << "_bucket" << promLabels(key.labels, "le=\"+Inf\"")
           << " " << cumulative << "\n";
        os << n << "_sum" << promLabels(key.labels) << " "
           << promNumber(s.sum) << "\n";
        os << n << "_count" << promLabels(key.labels) << " "
           << s.count << "\n";
    }
}

std::string
MetricsRegistry::formatTable() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(3);

    std::size_t width = 0;
    for (const auto &[key, c] : counters_)
        width = std::max(width, displayKey(key).size());
    for (const auto &[key, g] : gauges_)
        width = std::max(width, displayKey(key).size());
    for (const auto &[key, h] : histograms_)
        width = std::max(width, displayKey(key).size());

    const auto pad = [&](const std::string &name) {
        os << "  " << name
           << std::string(width - name.size() + 2, ' ');
    };

    for (const auto &[key, c] : counters_) {
        pad(displayKey(key));
        os << "counter  " << c.value() << "\n";
    }
    for (const auto &[key, g] : gauges_) {
        pad(displayKey(key));
        os << "gauge    " << g.value() << "\n";
    }
    for (const auto &[key, h] : histograms_) {
        const Histogram::Snapshot s = h.snapshot();
        pad(displayKey(key));
        os << "hist     count=" << s.count << " sum=" << s.sum
           << " min=" << s.min << " max=" << s.max << "\n";
    }
    return os.str();
}

} // namespace obs
} // namespace mflstm
