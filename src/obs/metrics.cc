#include "obs/metrics.hh"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/json.hh"

namespace mflstm {
namespace obs {

Histogram::Histogram(std::vector<double> edges)
    : edges_(std::move(edges)), buckets_(edges_.size() + 1, 0)
{
    if (edges_.empty())
        throw std::invalid_argument("Histogram: no bucket edges");
    if (!std::is_sorted(edges_.begin(), edges_.end()) ||
        std::adjacent_find(edges_.begin(), edges_.end()) != edges_.end())
        throw std::invalid_argument(
            "Histogram: edges must be strictly ascending");
}

std::vector<double>
Histogram::exponentialEdges(double lo, double hi, std::size_t count)
{
    if (lo <= 0.0 || hi <= lo || count < 2)
        throw std::invalid_argument("exponentialEdges: bad range");
    std::vector<double> edges(count);
    const double step =
        std::log(hi / lo) / static_cast<double>(count - 1);
    for (std::size_t i = 0; i < count; ++i)
        edges[i] = lo * std::exp(step * static_cast<double>(i));
    edges.back() = hi;  // exact despite rounding
    return edges;
}

void
Histogram::observe(double v)
{
    std::lock_guard<std::mutex> lock(mu_);
    // First bucket whose upper edge is >= v; past-the-end = overflow.
    const auto it = std::lower_bound(edges_.begin(), edges_.end(), v);
    ++buckets_[static_cast<std::size_t>(it - edges_.begin())];
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
}

std::uint64_t
Histogram::count() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
}

double
Histogram::sum() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return sum_;
}

double
Histogram::min() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return min_;
}

double
Histogram::max() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return max_;
}

Histogram::Snapshot
Histogram::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    Snapshot s;
    s.count = count_;
    s.sum = sum_;
    s.min = min_;
    s.max = max_;
    s.buckets = buckets_;
    return s;
}

double
Histogram::quantile(double q) const
{
    if (q < 0.0 || q > 1.0)
        throw std::invalid_argument("Histogram::quantile: q outside 0..1");
    const Snapshot s = snapshot();
    if (s.count == 0)
        return 0.0;

    const double rank = q * static_cast<double>(s.count);
    double seen = 0.0;
    for (std::size_t i = 0; i < s.buckets.size(); ++i) {
        const double in_bucket = static_cast<double>(s.buckets[i]);
        if (seen + in_bucket < rank || in_bucket == 0.0) {
            seen += in_bucket;
            continue;
        }
        if (i >= edges_.size())
            return edges_.back();  // overflow bucket clamps
        // Linear interpolation inside [lower, edges_[i]].
        const double hi = edges_[i];
        const double lo = i == 0 ? std::min(s.min, hi) : edges_[i - 1];
        const double frac =
            in_bucket > 0.0 ? (rank - seen) / in_bucket : 1.0;
        return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    return edges_.back();
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    return counters_[name];
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    return gauges_[name];
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           std::vector<double> edges)
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = histograms_.find(name);
    if (it != histograms_.end())
        return it->second;
    return histograms_.try_emplace(name, std::move(edges))
        .first->second;
}

const Counter *
MetricsRegistry::findCounter(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = counters_.find(name);
    return it == counters_.end() ? nullptr : &it->second;
}

const Gauge *
MetricsRegistry::findGauge(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram *
MetricsRegistry::findHistogram(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
}

bool
MetricsRegistry::empty() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return counters_.empty() && gauges_.empty() && histograms_.empty();
}

void
MetricsRegistry::writeJson(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mu_);
    JsonWriter w(os);
    w.beginObject();

    w.key("counters").beginObject();
    for (const auto &[name, c] : counters_)
        w.key(name).value(c.value());
    w.endObject();

    w.key("gauges").beginObject();
    for (const auto &[name, g] : gauges_)
        w.key(name).value(g.value());
    w.endObject();

    w.key("histograms").beginObject();
    for (const auto &[name, h] : histograms_) {
        const Histogram::Snapshot s = h.snapshot();
        w.key(name).beginObject();
        w.key("count").value(static_cast<std::uint64_t>(s.count));
        w.key("sum").value(s.sum);
        w.key("min").value(s.min);
        w.key("max").value(s.max);
        w.key("edges").beginArray();
        for (double e : h.edges())
            w.value(e);
        w.endArray();
        w.key("buckets").beginArray();
        for (std::uint64_t b : s.buckets)
            w.value(b);
        w.endArray();
        w.endObject();
    }
    w.endObject();

    w.endObject();
    os << '\n';
}

namespace {

/** Map an instrument name onto the Prometheus charset. */
std::string
promName(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == ':';
        out.push_back(ok ? c : '_');
    }
    if (out.empty() || (out.front() >= '0' && out.front() <= '9'))
        out.insert(out.begin(), '_');
    return out;
}

/** Prometheus renders numbers like Go's strconv: +Inf for infinity. */
std::string
promNumber(double v)
{
    if (std::isnan(v))
        return "NaN";
    if (std::isinf(v))
        return v > 0.0 ? "+Inf" : "-Inf";
    std::ostringstream os;
    os.precision(17);
    os << v;
    return os.str();
}

} // anonymous namespace

void
MetricsRegistry::writePrometheus(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mu_);

    for (const auto &[name, c] : counters_) {
        const std::string n = promName(name);
        os << "# TYPE " << n << " counter\n";
        os << n << " " << promNumber(c.value()) << "\n";
    }
    for (const auto &[name, g] : gauges_) {
        const std::string n = promName(name);
        os << "# TYPE " << n << " gauge\n";
        os << n << " " << promNumber(g.value()) << "\n";
    }
    for (const auto &[name, h] : histograms_) {
        const std::string n = promName(name);
        const Histogram::Snapshot s = h.snapshot();
        os << "# TYPE " << n << " histogram\n";
        // Buckets are cumulative in the exposition format; the
        // internal representation is per-bucket.
        std::uint64_t cumulative = 0;
        const std::vector<double> &edges = h.edges();
        for (std::size_t i = 0; i < edges.size(); ++i) {
            cumulative += s.buckets[i];
            os << n << "_bucket{le=\"" << promNumber(edges[i]) << "\"} "
               << cumulative << "\n";
        }
        cumulative += s.buckets.back();  // overflow bucket
        os << n << "_bucket{le=\"+Inf\"} " << cumulative << "\n";
        os << n << "_sum " << promNumber(s.sum) << "\n";
        os << n << "_count " << s.count << "\n";
    }
}

std::string
MetricsRegistry::formatTable() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(3);

    std::size_t width = 0;
    for (const auto &[name, c] : counters_)
        width = std::max(width, name.size());
    for (const auto &[name, g] : gauges_)
        width = std::max(width, name.size());
    for (const auto &[name, h] : histograms_)
        width = std::max(width, name.size());

    const auto pad = [&](const std::string &name) {
        os << "  " << name
           << std::string(width - name.size() + 2, ' ');
    };

    for (const auto &[name, c] : counters_) {
        pad(name);
        os << "counter  " << c.value() << "\n";
    }
    for (const auto &[name, g] : gauges_) {
        pad(name);
        os << "gauge    " << g.value() << "\n";
    }
    for (const auto &[name, h] : histograms_) {
        const Histogram::Snapshot s = h.snapshot();
        pad(name);
        os << "hist     count=" << s.count << " sum=" << s.sum
           << " min=" << s.min << " max=" << s.max << "\n";
    }
    return os.str();
}

} // namespace obs
} // namespace mflstm
