#include "obs/observer.hh"

namespace mflstm {
namespace obs {

void
Observer::Phase::close()
{
    if (!obs_)
        return;
    Observer *obs = obs_;
    obs_ = nullptr;

    TraceSpan span;
    span.name = std::move(name_);
    span.category = "host";
    span.pid = SpanTracer::kHostPid;
    span.tid = 0;
    span.startUs = startUs_;
    span.durUs = obs->wallNowUs() - startUs_;
    obs->tracer().setTrackName(SpanTracer::kHostPid, 0, "phases");
    obs->tracer().record(std::move(span));
}

} // namespace obs
} // namespace mflstm
