#include "obs/trace.hh"

#include <ostream>

#include "obs/json.hh"

namespace mflstm {
namespace obs {

void
SpanTracer::setTrackName(int pid, int tid, const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    trackNames_[{pid, tid}] = name;
}

void
SpanTracer::record(TraceSpan span)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (spans_.size() >= kMaxSpans) {
        ++dropped_;
        return;
    }
    spans_.push_back(std::move(span));
}

double
SpanTracer::simCursorUs() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return simCursorUs_;
}

void
SpanTracer::advanceSimCursor(double us)
{
    std::lock_guard<std::mutex> lock(mu_);
    simCursorUs_ += us;
}

std::size_t
SpanTracer::droppedSpans() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
}

bool
SpanTracer::empty() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return spans_.empty();
}

void
SpanTracer::writeChromeTrace(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mu_);
    JsonWriter w(os);
    w.beginObject();
    w.key("displayTimeUnit").value("ms");
    w.key("traceEvents").beginArray();

    // Metadata: stable process/thread names so Perfetto labels tracks.
    const auto processName = [&](int pid, const char *name) {
        w.beginObject();
        w.key("name").value("process_name");
        w.key("ph").value("M");
        w.key("pid").value(pid);
        w.key("tid").value(0);
        w.key("args").beginObject().key("name").value(name).endObject();
        w.endObject();
    };
    processName(kHostPid, "host");
    processName(kGpuPid, "GPU (simulated time)");
    // The serve process only exists in traces that served requests;
    // labelling it unconditionally would change every non-serving
    // trace byte-for-byte.
    bool has_serve = false;
    for (const auto &[track, name] : trackNames_)
        has_serve |= track.first == kServePid;
    for (const TraceSpan &s : spans_)
        has_serve |= s.pid == kServePid;
    if (has_serve)
        processName(kServePid, "serve (request lifecycle)");

    for (const auto &[track, name] : trackNames_) {
        w.beginObject();
        w.key("name").value("thread_name");
        w.key("ph").value("M");
        w.key("pid").value(track.first);
        w.key("tid").value(track.second);
        w.key("args").beginObject().key("name").value(name).endObject();
        w.endObject();
    }

    for (const TraceSpan &s : spans_) {
        w.beginObject();
        w.key("name").value(s.name);
        if (!s.category.empty())
            w.key("cat").value(s.category);
        w.key("ph").value("X");
        w.key("pid").value(s.pid);
        w.key("tid").value(s.tid);
        w.key("ts").value(s.startUs);
        w.key("dur").value(s.durUs);
        if (!s.numArgs.empty() || !s.strArgs.empty()) {
            w.key("args").beginObject();
            for (const auto &[k, v] : s.numArgs)
                w.key(k).value(v);
            for (const auto &[k, v] : s.strArgs)
                w.key(k).value(v);
            w.endObject();
        }
        w.endObject();
    }

    w.endArray();
    if (dropped_ > 0)
        w.key("droppedSpans")
            .value(static_cast<std::uint64_t>(dropped_));
    w.endObject();
    os << '\n';
}

} // namespace obs
} // namespace mflstm
