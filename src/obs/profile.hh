/**
 * @file
 * Attribution-report layer on top of the traffic ledger (DESIGN.md §13):
 * a versioned JSON schema ("mflstm.profile" v1) that snapshots one run's
 * attribution tree and per-kernel bottleneck view, plus the differential
 * mode behind `mflstm profile --baseline` — per-node byte/time deltas
 * with a relative threshold, so two builds of the same commit diff to
 * zero and a lowering change that moves traffic is flagged at the node
 * that moved.
 */

#ifndef MFLSTM_OBS_PROFILE_HH
#define MFLSTM_OBS_PROFILE_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/ledger.hh"

namespace mflstm {
namespace obs {

/** Schema identity of the attribution report. */
constexpr const char *kProfileSchema = "mflstm.profile";
constexpr int kProfileVersion = 1;

/** One run's attribution report, in serialisable form. */
struct ProfileReport
{
    /// run identity (app / plan / quant / batch), free-form strings
    std::string app;
    std::string plan;
    std::string quant;
    std::uint64_t batch = 1;

    /// trace-level totals the ledger must conserve against
    double traceTimeUs = 0.0;
    double traceDramBytes = 0.0;
    double attributedDramBytes = 0.0;
    std::uint64_t samples = 0;

    /// conservation status at build time
    std::vector<std::string> conservationErrors;

    struct TrafficNode
    {
        int layer = -1;
        std::string matrix;  ///< toString(MatrixStream)
        std::string kernel;
        std::string cause;   ///< toString(TrafficCause)
        double bytes = 0.0;
    };
    std::vector<TrafficNode> traffic;

    struct KernelRow
    {
        int layer = -1;
        std::string kernel;
        std::uint64_t launches = 0;
        double timeUs = 0.0;
        double dramBytes = 0.0;
        /// bottleneck class -> launches bound by it
        std::vector<std::pair<std::string, std::uint64_t>> bottlenecks;

        /** Modal bottleneck class ("" when empty). */
        std::string dominantBottleneck() const;
    };
    std::vector<KernelRow> kernels;

    bool conserved() const { return conservationErrors.empty(); }

    /**
     * Snapshot @p ledger into a report. @p trace_dram_bytes and
     * @p trace_time_us are the simulator's own totals; conservation is
     * verified here and the outcome embedded in the report.
     */
    static ProfileReport build(const TrafficLedger &ledger,
                               double trace_dram_bytes,
                               double trace_time_us);

    /** Serialise as schema-versioned JSON. */
    void writeJson(std::ostream &os) const;

    /**
     * Parse a report written by writeJson. Throws std::runtime_error on
     * malformed JSON, wrong schema name, or unsupported version.
     */
    static ProfileReport parseJsonText(const std::string &text);

    /** Human-readable table (top nodes by bytes, kernel bottlenecks). */
    std::string formatTable(std::size_t max_rows = 20) const;
};

/** One flagged difference between two reports. */
struct ProfileDelta
{
    std::string node;     ///< "layer/matrix/kernel/cause" or kernel id
    double baseline = 0.0;
    double current = 0.0;
    double ratio = 0.0;   ///< current / baseline
    bool regression = false;  ///< beyond tolerance in the bad direction
};

/**
 * Differential mode: compare per-node bytes and per-kernel time against
 * @p baseline. A node is a regression when current exceeds baseline by
 * more than @p tolerance_pct percent (new nodes regress from zero;
 * vanished nodes are reported as improvements, not regressions).
 */
std::vector<ProfileDelta> diffReports(const ProfileReport &baseline,
                                      const ProfileReport &current,
                                      double tolerance_pct = 0.1);

/** Render a delta list as a table; empty string when nothing changed. */
std::string formatDeltas(const std::vector<ProfileDelta> &deltas);

} // namespace obs
} // namespace mflstm

#endif // MFLSTM_OBS_PROFILE_HH
