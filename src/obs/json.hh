/**
 * @file
 * Minimal JSON support for the observability sinks: a streaming writer
 * (comma/nesting bookkeeping, string escaping, locale-independent
 * numbers) and a small recursive-descent parser used by tests to verify
 * that emitted trace/metrics files are well-formed and round-trip.
 */

#ifndef MFLSTM_OBS_JSON_HH
#define MFLSTM_OBS_JSON_HH

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace mflstm {
namespace obs {

/** Escape @p s for inclusion inside a JSON string literal (no quotes). */
std::string jsonEscape(const std::string &s);

/** Render a double the way JSON expects (finite; NaN/inf become null). */
std::string jsonNumber(double v);

/**
 * Streaming JSON writer with automatic comma placement. Keys and values
 * must alternate correctly inside objects; the writer asserts nothing
 * and trusts its caller (it is an internal sink, not a public API).
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Object key; follow with exactly one value or container. */
    JsonWriter &key(const std::string &k);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(int v);
    JsonWriter &value(bool v);

  private:
    void separate();

    std::ostream &os_;
    /// one entry per open container: true once a first element was written
    std::vector<bool> hasElement_;
    bool pendingKey_ = false;
};

/** Parsed JSON value (test/verification helper, not a full DOM API). */
struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> items;  ///< Kind::Array
    std::vector<std::pair<std::string, JsonValue>> members;  ///< Object

    /** First object member with @p key, or nullptr. */
    const JsonValue *find(const std::string &key) const;
};

/** Parse a complete JSON document; nullopt on any syntax error. */
std::optional<JsonValue> parseJson(const std::string &text);

} // namespace obs
} // namespace mflstm

#endif // MFLSTM_OBS_JSON_HH
