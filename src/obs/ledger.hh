/**
 * @file
 * Traffic-attribution ledger (DESIGN.md §13). Every simulated DRAM byte
 * is attributed to a node in a
 *
 *     layer × matrix {W, U, bias, scale-stream}
 *           × kernel × cause {weight, dequant, activation,
 *                             CRM-metadata, spill, residency-reload}
 *
 * tree, with a hard conservation invariant: the attributed bytes of a
 * run must sum to exactly the DRAM total the timing model charged. The
 * invariant exists because of a real bug class — PR 5's CRM
 * double-count silently inflated the reported uplift and was only found
 * by hand-auditing byte totals; a conservation-checked ledger turns
 * that whole class into a test failure.
 *
 * The ledger is deliberately decoupled from the gpu layer (which
 * depends on obs): the simulator flattens each kernel launch into a
 * TrafficSample whose named sub-streams (weight, scale, CRM metadata,
 * spill) carry the same coalescing inflation the timing model applied.
 * Two invariants are enforced:
 *
 *  1. Per-sample decomposition: named sub-streams must fit inside the
 *     sample's total; the residual is attributed to activations and a
 *     negative residual (a double-count) is recorded as a violation.
 *  2. Whole-run conservation: attributedDramBytes() accumulates each
 *     sample's total in record order — the same left-to-right order the
 *     simulator sums TraceResult::dramBytes — so equality against the
 *     trace total is bit-exact, not approximate.
 *
 * Thread safety: record() and every accessor take the internal mutex,
 * so one ledger can observe concurrent Simulator instances (ordering
 * across threads is then arbitrary; bit-exact conservation holds per
 * single-threaded run, which is how the profiler drives it).
 */

#ifndef MFLSTM_OBS_LEDGER_HH
#define MFLSTM_OBS_LEDGER_HH

#include <cstddef>
#include <map>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

namespace mflstm {
namespace obs {

/** Why a byte crossed the bus. */
enum class TrafficCause : std::uint8_t {
    Weight,       ///< W/U matrix codes streamed from DRAM
    Dequant,      ///< per-row scale stream of a quantized matrix
    Activation,   ///< inputs, h/c vectors, gate outputs
    CrmMetadata,  ///< relevance-flag bytes the CRM dataflow writes
    Spill,        ///< L2-capacity spills (element-wise state traffic)
    ResidencyReload,  ///< persistent-kernel weight overflow re-streamed
                      ///< because the pinned budget could not hold it
};

/** Which matrix stream a weight byte belongs to. */
enum class MatrixStream : std::uint8_t {
    None,         ///< not a matrix stream (activations, metadata)
    W,            ///< input projection W_{f,i,c,o}
    U,            ///< recurrent U_{f,i,c,o}
    Bias,         ///< biases (never streamed today; schema completeness)
    ScaleStream,  ///< fp32 per-row scales of a quantized matrix
};

const char *toString(TrafficCause c);
const char *toString(MatrixStream m);

/**
 * One kernel launch, flattened for attribution. All byte fields carry
 * the coalescing inflation the timing model applied, so they live in
 * the same unit as TraceResult::dramBytes.
 */
struct TrafficSample
{
    int layer = -1;
    MatrixStream matrix = MatrixStream::None;
    std::string kernel;       ///< lowered kernel name
    std::string kernelClass;  ///< Sgemm / Sgemv / ElementWise / ...

    /// total DRAM bytes the timing model charged for this launch
    double totalDramBytes = 0.0;
    /// named sub-streams; each a subset of totalDramBytes
    double weightBytes = 0.0;   ///< matrix codes (scales excluded)
    double scaleBytes = 0.0;    ///< per-row scale stream
    double crmMetaBytes = 0.0;  ///< relevance-flag traffic
    double spillBytes = 0.0;    ///< L2-spill traffic
    /// residency-overflow weight bytes a persistent kernel re-streamed
    double residencyReloadBytes = 0.0;

    /// wall (simulated) time and bottleneck class, for the kernel view
    double timeUs = 0.0;
    std::string bottleneck;  ///< bandwidth|occupancy|dequant-issue|...
};

class TrafficLedger
{
  public:
    /** One cell of the attribution tree. */
    struct NodeKey
    {
        int layer = -1;
        MatrixStream matrix = MatrixStream::None;
        std::string kernel;
        TrafficCause cause = TrafficCause::Activation;

        bool operator<(const NodeKey &rhs) const
        {
            return std::tie(layer, matrix, kernel, cause) <
                   std::tie(rhs.layer, rhs.matrix, rhs.kernel, rhs.cause);
        }
        bool operator==(const NodeKey &rhs) const
        {
            return std::tie(layer, matrix, kernel, cause) ==
                   std::tie(rhs.layer, rhs.matrix, rhs.kernel, rhs.cause);
        }
    };

    /** Per-(layer, kernel) timing/bottleneck aggregation. */
    struct KernelKey
    {
        int layer = -1;
        std::string kernel;

        bool operator<(const KernelKey &rhs) const
        {
            return std::tie(layer, kernel) <
                   std::tie(rhs.layer, rhs.kernel);
        }
    };
    struct KernelStats
    {
        std::size_t launches = 0;
        double timeUs = 0.0;
        double dramBytes = 0.0;
        /// bottleneck class -> launches bound by it
        std::map<std::string, std::size_t> bottlenecks;
    };

    /** Attribute one kernel launch. Never throws; a decomposition that
     *  does not fit its total is recorded in violations(). */
    void record(const TrafficSample &s);

    /** Samples recorded so far. */
    std::size_t samples() const;

    /**
     * Sum of every sample's totalDramBytes, accumulated in record
     * order. For a single-threaded run this is bit-identical to the
     * simulator's TraceResult::dramBytes accumulation.
     */
    double attributedDramBytes() const;

    /** Per-sample decomposition failures (double-counts/undercounts). */
    std::vector<std::string> violations() const;

    /** Snapshot of the attribution tree (bytes per node). */
    std::map<NodeKey, double> traffic() const;

    /** Snapshot of the per-kernel timing/bottleneck view. */
    std::map<KernelKey, KernelStats> kernels() const;

    /**
     * The conservation check: returns every violated invariant as a
     * human-readable error, or an empty vector when
     *  - attributedDramBytes() == @p trace_dram_bytes bit-exactly,
     *  - no per-sample decomposition violation was recorded, and
     *  - the tree's node sum matches the attributed total to within
     *    floating-point reassociation error (1 part in 1e9).
     */
    std::vector<std::string>
    verifyConservation(double trace_dram_bytes) const;

    /** Drop all recorded state (reuse between runs). */
    void reset();

  private:
    mutable std::mutex mu_;
    std::map<NodeKey, double> traffic_;
    std::map<KernelKey, KernelStats> kernels_;
    std::vector<std::string> violations_;
    double attributedTotal_ = 0.0;
    std::size_t samples_ = 0;
};

} // namespace obs
} // namespace mflstm

#endif // MFLSTM_OBS_LEDGER_HH
