#include "obs/profile.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/json.hh"

namespace mflstm {
namespace obs {

std::string
ProfileReport::KernelRow::dominantBottleneck() const
{
    std::string best;
    std::uint64_t best_n = 0;
    for (const auto &b : bottlenecks) {
        if (b.second > best_n) {
            best = b.first;
            best_n = b.second;
        }
    }
    return best;
}

ProfileReport
ProfileReport::build(const TrafficLedger &ledger, double trace_dram_bytes,
                     double trace_time_us)
{
    ProfileReport r;
    r.traceTimeUs = trace_time_us;
    r.traceDramBytes = trace_dram_bytes;
    r.attributedDramBytes = ledger.attributedDramBytes();
    r.samples = ledger.samples();
    r.conservationErrors = ledger.verifyConservation(trace_dram_bytes);

    for (const auto &node : ledger.traffic()) {
        TrafficNode n;
        n.layer = node.first.layer;
        n.matrix = toString(node.first.matrix);
        n.kernel = node.first.kernel;
        n.cause = toString(node.first.cause);
        n.bytes = node.second;
        r.traffic.push_back(std::move(n));
    }
    for (const auto &k : ledger.kernels()) {
        KernelRow row;
        row.layer = k.first.layer;
        row.kernel = k.first.kernel;
        row.launches = k.second.launches;
        row.timeUs = k.second.timeUs;
        row.dramBytes = k.second.dramBytes;
        for (const auto &b : k.second.bottlenecks)
            row.bottlenecks.emplace_back(b.first, b.second);
        r.kernels.push_back(std::move(row));
    }
    return r;
}

void
ProfileReport::writeJson(std::ostream &os) const
{
    JsonWriter w(os);
    w.beginObject();
    w.key("schema").value(kProfileSchema);
    w.key("version").value(kProfileVersion);
    w.key("app").value(app);
    w.key("plan").value(plan);
    w.key("quant").value(quant);
    w.key("batch").value(static_cast<std::uint64_t>(batch));
    w.key("trace_time_us").value(traceTimeUs);
    w.key("trace_dram_bytes").value(traceDramBytes);
    w.key("attributed_dram_bytes").value(attributedDramBytes);
    w.key("samples").value(static_cast<std::uint64_t>(samples));
    w.key("conserved").value(conserved());
    w.key("conservation_errors").beginArray();
    for (const auto &e : conservationErrors)
        w.value(e);
    w.endArray();
    w.key("traffic").beginArray();
    for (const auto &n : traffic) {
        w.beginObject();
        w.key("layer").value(n.layer);
        w.key("matrix").value(n.matrix);
        w.key("kernel").value(n.kernel);
        w.key("cause").value(n.cause);
        w.key("bytes").value(n.bytes);
        w.endObject();
    }
    w.endArray();
    w.key("kernels").beginArray();
    for (const auto &k : kernels) {
        w.beginObject();
        w.key("layer").value(k.layer);
        w.key("kernel").value(k.kernel);
        w.key("launches").value(static_cast<std::uint64_t>(k.launches));
        w.key("time_us").value(k.timeUs);
        w.key("dram_bytes").value(k.dramBytes);
        w.key("bottlenecks").beginObject();
        for (const auto &b : k.bottlenecks)
            w.key(b.first).value(static_cast<std::uint64_t>(b.second));
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
}

namespace {

double
numberOr(const JsonValue *v, double fallback)
{
    return v && v->kind == JsonValue::Kind::Number ? v->number : fallback;
}

std::string
stringOr(const JsonValue *v, const std::string &fallback)
{
    return v && v->kind == JsonValue::Kind::String ? v->str : fallback;
}

} // anonymous namespace

ProfileReport
ProfileReport::parseJsonText(const std::string &text)
{
    const auto doc = parseJson(text);
    if (!doc || doc->kind != JsonValue::Kind::Object)
        throw std::runtime_error("profile report: malformed JSON");
    const JsonValue &root = *doc;
    if (stringOr(root.find("schema"), "") != kProfileSchema)
        throw std::runtime_error(
            "profile report: wrong schema (want mflstm.profile)");
    const int version =
        static_cast<int>(numberOr(root.find("version"), -1));
    if (version != kProfileVersion)
        throw std::runtime_error(
            "profile report: unsupported version " +
            std::to_string(version));

    ProfileReport r;
    r.app = stringOr(root.find("app"), "");
    r.plan = stringOr(root.find("plan"), "");
    r.quant = stringOr(root.find("quant"), "");
    r.batch = static_cast<std::uint64_t>(
        numberOr(root.find("batch"), 1.0));
    r.traceTimeUs = numberOr(root.find("trace_time_us"), 0.0);
    r.traceDramBytes = numberOr(root.find("trace_dram_bytes"), 0.0);
    r.attributedDramBytes =
        numberOr(root.find("attributed_dram_bytes"), 0.0);
    r.samples =
        static_cast<std::uint64_t>(numberOr(root.find("samples"), 0.0));
    if (const JsonValue *errs = root.find("conservation_errors");
        errs && errs->kind == JsonValue::Kind::Array) {
        for (const auto &e : errs->items)
            if (e.kind == JsonValue::Kind::String)
                r.conservationErrors.push_back(e.str);
    }
    if (const JsonValue *traffic = root.find("traffic");
        traffic && traffic->kind == JsonValue::Kind::Array) {
        for (const auto &item : traffic->items) {
            if (item.kind != JsonValue::Kind::Object)
                continue;
            TrafficNode n;
            n.layer = static_cast<int>(numberOr(item.find("layer"), -1));
            n.matrix = stringOr(item.find("matrix"), "none");
            n.kernel = stringOr(item.find("kernel"), "");
            n.cause = stringOr(item.find("cause"), "");
            n.bytes = numberOr(item.find("bytes"), 0.0);
            r.traffic.push_back(std::move(n));
        }
    }
    if (const JsonValue *kernels = root.find("kernels");
        kernels && kernels->kind == JsonValue::Kind::Array) {
        for (const auto &item : kernels->items) {
            if (item.kind != JsonValue::Kind::Object)
                continue;
            KernelRow row;
            row.layer =
                static_cast<int>(numberOr(item.find("layer"), -1));
            row.kernel = stringOr(item.find("kernel"), "");
            row.launches = static_cast<std::uint64_t>(
                numberOr(item.find("launches"), 0.0));
            row.timeUs = numberOr(item.find("time_us"), 0.0);
            row.dramBytes = numberOr(item.find("dram_bytes"), 0.0);
            if (const JsonValue *b = item.find("bottlenecks");
                b && b->kind == JsonValue::Kind::Object) {
                for (const auto &member : b->members)
                    row.bottlenecks.emplace_back(
                        member.first, static_cast<std::uint64_t>(
                                          member.second.number));
            }
            r.kernels.push_back(std::move(row));
        }
    }
    return r;
}

namespace {

std::string
humanBytes(double b)
{
    std::ostringstream os;
    os << std::fixed;
    if (b >= 1e9)
        os << std::setprecision(2) << b / 1e9 << " GB";
    else if (b >= 1e6)
        os << std::setprecision(2) << b / 1e6 << " MB";
    else if (b >= 1e3)
        os << std::setprecision(1) << b / 1e3 << " KB";
    else
        os << std::setprecision(0) << b << " B";
    return os.str();
}

} // anonymous namespace

std::string
ProfileReport::formatTable(std::size_t max_rows) const
{
    std::ostringstream os;
    os << "profile: " << app << " plan=" << plan << " quant=" << quant
       << " batch=" << batch << "\n";
    os << "  trace: " << std::fixed << std::setprecision(1) << traceTimeUs
       << " us, " << humanBytes(traceDramBytes) << " DRAM, " << samples
       << " kernel launches\n";
    os << "  conservation: "
       << (conserved() ? "OK (attributed == trace total)" : "BROKEN")
       << "\n";
    for (const auto &e : conservationErrors)
        os << "    error: " << e << "\n";

    std::vector<TrafficNode> sorted = traffic;
    std::sort(sorted.begin(), sorted.end(),
              [](const TrafficNode &a, const TrafficNode &b) {
                  return a.bytes > b.bytes;
              });
    os << "  traffic (top " << std::min(max_rows, sorted.size())
       << " of " << sorted.size() << " nodes):\n";
    std::size_t shown = 0;
    for (const auto &n : sorted) {
        if (shown++ >= max_rows)
            break;
        const double pct =
            traceDramBytes > 0.0 ? 100.0 * n.bytes / traceDramBytes : 0.0;
        os << "    " << std::setw(5) << std::setprecision(1) << pct
           << "%  " << std::setw(10) << humanBytes(n.bytes) << "  L"
           << n.layer << " " << n.matrix << " " << n.kernel << " ["
           << n.cause << "]\n";
    }

    std::vector<KernelRow> krows = kernels;
    std::sort(krows.begin(), krows.end(),
              [](const KernelRow &a, const KernelRow &b) {
                  return a.timeUs > b.timeUs;
              });
    os << "  kernels (top " << std::min(max_rows, krows.size()) << " of "
       << krows.size() << " by time):\n";
    shown = 0;
    for (const auto &k : krows) {
        if (shown++ >= max_rows)
            break;
        const double pct =
            traceTimeUs > 0.0 ? 100.0 * k.timeUs / traceTimeUs : 0.0;
        os << "    " << std::setw(5) << std::setprecision(1) << pct
           << "%  " << std::setw(9) << std::setprecision(1) << k.timeUs
           << " us  x" << k.launches << "  L" << k.layer << " "
           << k.kernel << "  bound:" << k.dominantBottleneck() << "\n";
    }
    return os.str();
}

std::vector<ProfileDelta>
diffReports(const ProfileReport &baseline, const ProfileReport &current,
            double tolerance_pct)
{
    const double tol = tolerance_pct / 100.0;
    std::vector<ProfileDelta> out;

    auto compare = [&](const std::string &node, double base, double cur) {
        if (base == cur)
            return;
        ProfileDelta d;
        d.node = node;
        d.baseline = base;
        d.current = cur;
        d.ratio = base > 0.0 ? cur / base
                             : (cur > 0.0 ? std::numeric_limits<
                                                double>::infinity()
                                          : 1.0);
        // More bytes / more time than baseline is the bad direction.
        d.regression = cur > base * (1.0 + tol) ||
                       (base == 0.0 && cur > 0.0);
        out.push_back(std::move(d));
    };

    std::map<std::string, double> base_traffic;
    for (const auto &n : baseline.traffic)
        base_traffic["L" + std::to_string(n.layer) + "/" + n.matrix +
                     "/" + n.kernel + "/" + n.cause] = n.bytes;
    std::map<std::string, double> cur_traffic;
    for (const auto &n : current.traffic)
        cur_traffic["L" + std::to_string(n.layer) + "/" + n.matrix +
                    "/" + n.kernel + "/" + n.cause] = n.bytes;
    for (const auto &b : base_traffic) {
        const auto it = cur_traffic.find(b.first);
        compare(b.first, b.second,
                it == cur_traffic.end() ? 0.0 : it->second);
    }
    for (const auto &c : cur_traffic)
        if (!base_traffic.count(c.first))
            compare(c.first, 0.0, c.second);

    std::map<std::string, double> base_time;
    for (const auto &k : baseline.kernels)
        base_time["time:L" + std::to_string(k.layer) + "/" + k.kernel] =
            k.timeUs;
    std::map<std::string, double> cur_time;
    for (const auto &k : current.kernels)
        cur_time["time:L" + std::to_string(k.layer) + "/" + k.kernel] =
            k.timeUs;
    for (const auto &b : base_time) {
        const auto it = cur_time.find(b.first);
        compare(b.first, b.second,
                it == cur_time.end() ? 0.0 : it->second);
    }
    for (const auto &c : cur_time)
        if (!base_time.count(c.first))
            compare(c.first, 0.0, c.second);

    return out;
}

std::string
formatDeltas(const std::vector<ProfileDelta> &deltas)
{
    if (deltas.empty())
        return "";
    std::ostringstream os;
    os << std::fixed;
    for (const auto &d : deltas) {
        os << (d.regression ? "  REGRESSION " : "  improvement ")
           << d.node << ": " << std::setprecision(1) << d.baseline
           << " -> " << d.current;
        if (std::isfinite(d.ratio))
            os << " (" << std::setprecision(3) << d.ratio << "x)";
        else
            os << " (new)";
        os << "\n";
    }
    return os.str();
}

} // namespace obs
} // namespace mflstm
