#include "workloads/datagen.hh"

#include <algorithm>
#include <stdexcept>

#include "nn/train.hh"
#include "tensor/rng.hh"

namespace mflstm {
namespace workloads {

namespace {

using tensor::Rng;

std::vector<std::int32_t>
randomTokens(Rng &rng, std::size_t n, std::int32_t lo, std::int32_t hi)
{
    std::vector<std::int32_t> toks(n);
    for (auto &t : toks)
        t = static_cast<std::int32_t>(rng.integer(lo, hi));
    return toks;
}

} // anonymous namespace

std::vector<std::vector<std::int32_t>>
TaskData::calibrationSequences(std::size_t limit) const
{
    std::vector<std::vector<std::int32_t>> seqs;
    if (isLm) {
        for (const auto &s : lm.train) {
            if (seqs.size() == limit)
                break;
            seqs.push_back(s);
        }
    } else {
        for (const nn::Sample &s : cls.train) {
            if (seqs.size() == limit)
                break;
            seqs.push_back(s.tokens);
        }
    }
    return seqs;
}

ClassificationData
makeSentimentTask(std::size_t vocab, std::size_t length,
                  std::size_t n_train, std::size_t n_test,
                  std::uint64_t seed)
{
    if (vocab < 12)
        throw std::invalid_argument("makeSentimentTask: vocab too small");

    Rng rng(seed);
    const auto v = static_cast<std::int32_t>(vocab);
    const std::int32_t reset_tok = v - 1;           // discourse boundary
    const std::int32_t pos_hi = v / 4 - 1;          // [0, v/4)
    const std::int32_t neg_lo = v / 4;              // [v/4, v/2)
    const std::int32_t neg_hi = v / 2 - 1;

    // Episodic reviews: "however"-style discourse boundaries split the
    // text into segments. The verdict weighs the *final* segment twice
    // as heavily as the rest of the review — mostly-local structure
    // (weak links at boundaries, Section IV-A) with a genuine global
    // component that link-breaking can lose.
    auto make = [&](std::size_t n) {
        std::vector<nn::Sample> out;
        out.reserve(n);
        while (out.size() < n) {
            const bool want_positive = rng.chance(0.5);
            nn::Sample s;
            int seg = 0;     // final-segment running sentiment
            int global = 0;  // whole-review sentiment
            for (std::size_t t = 0; t < length; ++t) {
                const bool last_slot = t + 1 == length;
                if (!last_slot && t > 0 && rng.chance(0.14)) {
                    s.tokens.push_back(reset_tok);
                    seg = 0;  // a new segment starts fresh
                    continue;
                }
                const double r = rng.uniform(0.0f, 1.0f);
                const double p_pos = want_positive ? 0.40 : 0.20;
                const double p_neg = want_positive ? 0.20 : 0.40;
                if (r < p_pos) {
                    s.tokens.push_back(static_cast<std::int32_t>(
                        rng.integer(0, pos_hi)));
                    ++seg;
                    ++global;
                } else if (r < p_pos + p_neg) {
                    s.tokens.push_back(static_cast<std::int32_t>(
                        rng.integer(neg_lo, neg_hi)));
                    --seg;
                    --global;
                } else {
                    s.tokens.push_back(static_cast<std::int32_t>(
                        rng.integer(v / 2, v - 2)));
                }
            }
            const int score = 2 * seg + global;
            if (score == 0)
                continue;  // ambiguous review; redraw
            s.label = score > 0 ? 1 : 0;
            out.push_back(std::move(s));
        }
        return out;
    };

    return {make(n_train), make(n_test)};
}

ClassificationData
makeQaTask(std::size_t vocab, std::size_t num_classes, std::size_t length,
           std::size_t n_train, std::size_t n_test, std::uint64_t seed)
{
    const auto classes = static_cast<std::int32_t>(num_classes);
    if (vocab < num_classes + 6 || length < 12)
        throw std::invalid_argument("makeQaTask: config too small");

    Rng rng(seed);
    const auto v = static_cast<std::int32_t>(vocab);
    const std::int32_t key_tok = classes;        // "the fact is about X"
    const std::int32_t query_tok = classes + 1;  // "what was X?"
    const std::int32_t noise_lo = classes + 2;

    // BABI-style story: several [key, value] facts appear over the
    // story and *overwrite* each other; the query at the end asks for
    // the latest value. A trained model resets its belief at each new
    // fact, so the links into facts are weak.
    auto make = [&](std::size_t n) {
        std::vector<nn::Sample> out;
        out.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            nn::Sample s;
            s.tokens = randomTokens(rng, length, noise_lo, v - 1);
            const auto facts = static_cast<std::size_t>(
                rng.integer(2, 3));
            const std::size_t span = (length - 2) / facts;
            std::int32_t answer = 0;
            for (std::size_t f = 0; f < facts; ++f) {
                const auto at = static_cast<std::size_t>(
                    f * span +
                    rng.integer(0, static_cast<std::int64_t>(span) - 2));
                answer = static_cast<std::int32_t>(
                    rng.integer(0, classes - 1));
                s.tokens[at] = key_tok;
                s.tokens[at + 1] = answer;  // value token == class id
            }
            s.tokens[length - 1] = query_tok;
            s.label = answer;
            out.push_back(std::move(s));
        }
        return out;
    };

    return {make(n_train), make(n_test)};
}

ClassificationData
makeEntailmentTask(std::size_t vocab, std::size_t length,
                   std::size_t n_train, std::size_t n_test,
                   std::uint64_t seed)
{
    if (vocab < 20 || length < 8)
        throw std::invalid_argument("makeEntailmentTask: config too small");

    Rng rng(seed);
    const auto v = static_cast<std::int32_t>(vocab);
    // Four topic groups in [1, v); opposite(g) = g ^ 1.
    const std::int32_t group_span = (v - 1) / 4;
    const std::int32_t sep_tok = 0;

    auto group_token = [&](std::int32_t g) {
        return static_cast<std::int32_t>(
            1 + g * group_span + rng.integer(0, group_span - 1));
    };

    auto make = [&](std::size_t n) {
        std::vector<nn::Sample> out;
        out.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            nn::Sample s;
            // 0 = entailment, 1 = contradiction, 2 = neutral.
            s.label = static_cast<std::int32_t>(rng.integer(0, 2));
            const auto ga = static_cast<std::int32_t>(rng.integer(0, 3));
            std::int32_t gb;
            if (s.label == 0) {
                gb = ga;
            } else if (s.label == 1) {
                gb = ga ^ 1;
            } else {
                // Neutral: a group from the *other* pair, so it neither
                // entails nor contradicts the premise.
                const std::int32_t other_pair = ga < 2 ? 2 : 0;
                gb = other_pair +
                     static_cast<std::int32_t>(rng.integer(0, 1));
            }

            const std::size_t half = length / 2;
            for (std::size_t t = 0; t + 1 < half; ++t)
                s.tokens.push_back(group_token(ga));
            s.tokens.push_back(sep_tok);
            while (s.tokens.size() < length)
                s.tokens.push_back(group_token(gb));
            out.push_back(std::move(s));
        }
        return out;
    };

    return {make(n_train), make(n_test)};
}

LmData
makeLanguageModelTask(std::size_t vocab, std::size_t length,
                      std::size_t n_train, std::size_t n_test,
                      std::uint64_t seed)
{
    if (vocab < 8)
        throw std::invalid_argument("makeLanguageModelTask: vocab small");

    Rng rng(seed);
    const auto v = static_cast<std::int64_t>(vocab);

    // Sparse *second-order* Markov chain with sentence boundaries:
    // token 0 ends a "sentence" (p=.1), after which the next token is
    // drawn fresh — history is irrelevant across the boundary, the
    // natural weak-link structure of language-model corpora. Inside a
    // sentence the successor depends on the last *two* tokens, so the
    // recurrent state genuinely matters and broken links cost
    // predictions.
    auto step = [&](std::int64_t prev, std::int64_t cur) -> std::int64_t {
        if (cur == 0)
            return rng.integer(1, v - 1);  // fresh sentence start
        const double r = rng.uniform(0.0f, 1.0f);
        if (r < 0.10)
            return 0;  // sentence boundary
        if (r < 0.65)
            return 1 + (3 * cur + prev) % (v - 1);
        if (r < 0.88)
            return 1 + (3 * cur + prev + 7) % (v - 1);
        return rng.integer(1, v - 1);
    };

    auto make = [&](std::size_t n) {
        std::vector<std::vector<std::int32_t>> out;
        out.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            std::vector<std::int32_t> seq;
            seq.reserve(length);
            std::int64_t prev = 0;
            std::int64_t cur = rng.integer(1, v - 1);
            seq.push_back(static_cast<std::int32_t>(cur));
            while (seq.size() < length) {
                const std::int64_t next = step(prev, cur);
                prev = cur;
                cur = next;
                seq.push_back(static_cast<std::int32_t>(cur));
            }
            out.push_back(std::move(seq));
        }
        return out;
    };

    return {make(n_train), make(n_test)};
}

LmData
makeTranslationTask(std::size_t vocab, std::size_t length,
                    std::size_t n_train, std::size_t n_test,
                    std::uint64_t seed)
{
    if (vocab < 8 || length < 6)
        throw std::invalid_argument("makeTranslationTask: config small");

    Rng rng(seed);
    const auto v = static_cast<std::int32_t>(vocab);
    const std::int32_t sep_tok = 0;

    // Fixed "dictionary": target token = mapped source token. Predicting
    // the target half exactly requires remembering the source half.
    std::vector<std::int32_t> mapping(vocab);
    for (std::size_t i = 0; i < vocab; ++i)
        mapping[i] = static_cast<std::int32_t>(
            1 + (i * 7 + 3) % (vocab - 1));

    auto make = [&](std::size_t n) {
        std::vector<std::vector<std::int32_t>> out;
        out.reserve(n);
        const std::size_t half = (length - 1) / 2;
        for (std::size_t i = 0; i < n; ++i) {
            std::vector<std::int32_t> seq;
            seq.reserve(length);
            const auto src = randomTokens(rng, half, 1, v - 1);
            seq.insert(seq.end(), src.begin(), src.end());
            seq.push_back(sep_tok);
            for (std::int32_t tok : src)
                seq.push_back(mapping[static_cast<std::size_t>(tok)]);
            while (seq.size() < length)
                seq.push_back(sep_tok);  // end-of-pair padding
            out.push_back(std::move(seq));
        }
        return out;
    };

    return {make(n_train), make(n_test)};
}

TaskData
makeTask(const BenchmarkSpec &spec, std::size_t n_train,
         std::size_t n_test)
{
    TaskData data;
    switch (spec.family) {
      case TaskFamily::Sentiment:
        data.cls = makeSentimentTask(spec.vocab, spec.modelLength,
                                     n_train, n_test, spec.seed);
        break;
      case TaskFamily::Qa:
        data.cls = makeQaTask(spec.vocab, spec.numClasses,
                              spec.modelLength, n_train, n_test,
                              spec.seed);
        break;
      case TaskFamily::Entailment:
        data.cls = makeEntailmentTask(spec.vocab, spec.modelLength,
                                      n_train, n_test, spec.seed);
        break;
      case TaskFamily::LanguageModel:
        data.lm = makeLanguageModelTask(spec.vocab, spec.modelLength,
                                        n_train, n_test, spec.seed);
        data.isLm = true;
        break;
      case TaskFamily::Translation:
        data.lm = makeTranslationTask(spec.vocab, spec.modelLength,
                                      n_train, n_test, spec.seed);
        data.isLm = true;
        break;
    }
    return data;
}

nn::LstmModel
trainAccuracyModel(const BenchmarkSpec &spec, const TaskData &data,
                   std::size_t epochs)
{
    nn::LstmModel model(spec.accuracyModelConfig(), spec.seed);

    nn::TrainConfig tc;
    tc.lr = 2e-3;
    tc.shuffleSeed = spec.seed + 7;
    nn::Trainer trainer(model, tc);

    if (data.isLm)
        trainer.trainLanguageModel(data.lm.train, epochs);
    else
        trainer.trainClassification(data.cls.train, epochs);
    return model;
}

double
exactAccuracy(const nn::LstmModel &model, const TaskData &data)
{
    return data.isLm ? nn::lmNextTokenAccuracy(model, data.lm.test)
                     : nn::classificationAccuracy(model, data.cls.test);
}

} // namespace workloads
} // namespace mflstm
