#include "workloads/benchmarks.hh"

#include <stdexcept>

namespace mflstm {
namespace workloads {

runtime::NetworkShape
BenchmarkSpec::timingShape() const
{
    // The paper's models embed into the hidden dimension; layer 0's
    // input size therefore equals the hidden size.
    return runtime::NetworkShape::stacked(hiddenSize, hiddenSize,
                                          numLayers, length);
}

nn::ModelConfig
BenchmarkSpec::accuracyModelConfig() const
{
    nn::ModelConfig cfg;
    cfg.task = isLanguageModel() ? nn::TaskKind::LanguageModel
                                 : nn::TaskKind::Classification;
    cfg.vocab = vocab;
    cfg.embedSize = modelHidden;
    cfg.hiddenSize = modelHidden;
    cfg.numLayers = numLayers;  // per-layer stats must map 1:1
    cfg.numClasses = numClasses;
    return cfg;
}

const std::vector<BenchmarkSpec> &
tableII()
{
    static const std::vector<BenchmarkSpec> specs = [] {
        std::vector<BenchmarkSpec> v;

        BenchmarkSpec imdb;
        imdb.name = "IMDB";
        imdb.abbrev = "SC";
        imdb.family = TaskFamily::Sentiment;
        imdb.hiddenSize = 512;
        imdb.numLayers = 3;
        imdb.length = 80;
        imdb.modelHidden = 48;
        imdb.modelLength = 24;
        imdb.vocab = 48;
        imdb.numClasses = 2;
        imdb.seed = 101;
        v.push_back(imdb);

        BenchmarkSpec mr;
        mr.name = "MR";
        mr.abbrev = "SC";
        mr.family = TaskFamily::Sentiment;
        mr.hiddenSize = 256;
        mr.numLayers = 1;
        mr.length = 22;
        mr.modelHidden = 40;
        mr.modelLength = 16;
        mr.vocab = 40;
        mr.numClasses = 2;
        mr.seed = 102;
        v.push_back(mr);

        BenchmarkSpec babi;
        babi.name = "BABI";
        babi.abbrev = "QA";
        babi.family = TaskFamily::Qa;
        babi.hiddenSize = 256;
        babi.numLayers = 3;
        babi.length = 86;
        babi.modelHidden = 48;
        babi.modelLength = 26;
        babi.vocab = 56;
        babi.numClasses = 4;
        babi.seed = 103;
        v.push_back(babi);

        BenchmarkSpec snli;
        snli.name = "SNLI";
        snli.abbrev = "ET";
        snli.family = TaskFamily::Entailment;
        snli.hiddenSize = 300;
        snli.numLayers = 2;
        snli.length = 100;
        snli.modelHidden = 48;
        snli.modelLength = 24;
        snli.vocab = 48;
        snli.numClasses = 3;
        snli.seed = 104;
        v.push_back(snli);

        BenchmarkSpec ptb;
        ptb.name = "PTB";
        ptb.abbrev = "LM";
        ptb.family = TaskFamily::LanguageModel;
        ptb.hiddenSize = 650;
        ptb.numLayers = 3;
        ptb.length = 200;
        ptb.modelHidden = 56;
        ptb.modelLength = 32;
        ptb.vocab = 40;
        ptb.numClasses = 0;
        ptb.seed = 105;
        v.push_back(ptb);

        BenchmarkSpec mt;
        mt.name = "MT";
        mt.abbrev = "MT";
        mt.family = TaskFamily::Translation;
        mt.hiddenSize = 500;
        mt.numLayers = 4;
        mt.length = 50;
        mt.modelHidden = 48;
        mt.modelLength = 24;
        mt.vocab = 36;
        mt.numClasses = 0;
        mt.seed = 106;
        v.push_back(mt);

        return v;
    }();
    return specs;
}

const BenchmarkSpec &
benchmarkByName(const std::string &name)
{
    for (const BenchmarkSpec &spec : tableII()) {
        if (spec.name == name)
            return spec;
    }
    throw std::out_of_range("benchmarkByName: unknown benchmark " + name);
}

} // namespace workloads
} // namespace mflstm
