/**
 * @file
 * The Table II benchmark registry: the six NLP applications the paper
 * evaluates, with their full-size LSTM configurations (hidden size,
 * layer count, sequence length) used for the timing simulation, plus the
 * scaled-down accuracy-model configuration this reproduction trains on
 * synthetic tasks (DESIGN.md §2 — mirroring the paper's own split of
 * PyTorch-for-accuracy vs board-for-performance).
 */

#ifndef MFLSTM_WORKLOADS_BENCHMARKS_HH
#define MFLSTM_WORKLOADS_BENCHMARKS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "nn/model.hh"
#include "runtime/plan.hh"

namespace mflstm {
namespace workloads {

/** The synthetic task family standing in for each dataset. */
enum class TaskFamily {
    Sentiment,    ///< SC: signed-token counting (IMDB, MR)
    Qa,           ///< QA: early fact, late query (BABI)
    Entailment,   ///< ET: two-segment agreement (SNLI)
    LanguageModel,///< LM: structured Markov corpus (PTB)
    Translation,  ///< MT: source half -> mapped target half (MT)
};

/** One Table II row plus reproduction-side metadata. */
struct BenchmarkSpec
{
    std::string name;        ///< "IMDB", "MR", ...
    std::string abbrev;      ///< "SC", "QA", ...
    TaskFamily family = TaskFamily::Sentiment;

    // --- Full-size (timing) configuration: Table II -------------------
    std::size_t hiddenSize = 0;
    std::size_t numLayers = 0;
    std::size_t length = 0;   ///< cells per LSTM layer

    // --- Scaled accuracy-model configuration ---------------------------
    std::size_t modelHidden = 64;
    std::size_t modelLength = 24;
    std::size_t vocab = 64;
    std::size_t numClasses = 2;
    std::uint64_t seed = 1;

    /** Full-size network shape for the timing simulator. */
    runtime::NetworkShape timingShape() const;

    /** Configuration of the trainable accuracy model. */
    nn::ModelConfig accuracyModelConfig() const;

    bool isLanguageModel() const
    {
        return family == TaskFamily::LanguageModel ||
               family == TaskFamily::Translation;
    }
};

/** All six Table II applications, in the paper's order. */
const std::vector<BenchmarkSpec> &tableII();

/** Look up a benchmark by name; throws std::out_of_range if missing. */
const BenchmarkSpec &benchmarkByName(const std::string &name);

} // namespace workloads
} // namespace mflstm

#endif // MFLSTM_WORKLOADS_BENCHMARKS_HH
